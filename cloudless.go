// Package cloudless is a reference implementation of Cloudless Computing
// (Qiu et al., HotNets '23): cloud infrastructure management "as a service",
// covering the full IaC lifecycle the paper lays out — developing,
// validating, deploying, updating, diagnosing, and policing infrastructure.
//
// The central type is Stack: a configuration bound to a cloud, a golden-
// state database with granular locking, a policy engine, and a drift
// watcher. A typical session:
//
//	stack, err := cloudless.Open(cloudless.Options{
//		Sources: map[string]string{"main.ccl": src},
//		Cloud:   sim, // or cloud.NewClient("http://...", nil)
//	})
//	res := stack.Validate()          // compile-time cloud-level checks
//	p, diags := stack.Plan(ctx)      // diff against golden state
//	result, err := stack.Apply(ctx, p)
//
// See the examples directory for runnable end-to-end scenarios.
package cloudless

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/diagnose"
	"cloudless/internal/drift"
	"cloudless/internal/eval"
	"cloudless/internal/events"
	"cloudless/internal/guard"
	"cloudless/internal/hcl"
	"cloudless/internal/health"
	"cloudless/internal/plan"
	"cloudless/internal/policy"
	"cloudless/internal/provider"
	"cloudless/internal/rollback"
	"cloudless/internal/state"
	"cloudless/internal/statedb"
	"cloudless/internal/telemetry"
	"cloudless/internal/validate"
)

// Re-exported names so most callers only import the root package.
type (
	// Plan is an execution plan (see internal/plan).
	Plan = plan.Plan
	// ApplyResult summarizes an apply.
	ApplyResult = apply.Result
	// ValidationResult holds compile-time findings.
	ValidationResult = validate.Result
	// DriftReport is a drift detection outcome.
	DriftReport = drift.Report
	// Diagnosis explains a cloud error at the IaC level.
	Diagnosis = diagnose.Diagnosis
	// Decision is a policy decision.
	Decision = policy.Decision
	// RollbackPlan is a computed rollback.
	RollbackPlan = rollback.Plan
	// RecoverReport summarizes a crashed run's journal recovery.
	RecoverReport = apply.RecoverReport
	// Event is one live ops-plane transition (see internal/events).
	Event = events.Event
	// EventFilter selects event kinds for Subscribe.
	EventFilter = events.Filter
	// EventSubscription is a bounded live view of the stack's event bus.
	EventSubscription = events.Subscription
	// State is recorded infrastructure state.
	State = state.State
	// StaleBaseError is the typed conflict returned when an apply's plan
	// was computed against a state serial that other commits have passed.
	StaleBaseError = statedb.StaleBaseError
)

// State storage backends for Options.StateBackend.
const (
	BackendMemory = statedb.BackendMemory
	BackendMVCC   = statedb.BackendMVCC
	BackendWAL    = statedb.BackendWAL
)

// Scheduler choices for Apply.
const (
	SchedulerFIFO         = apply.FIFOScheduler
	SchedulerCriticalPath = apply.CriticalPathScheduler
)

// Options configure Open.
type Options struct {
	// Sources maps filename to CCL source. Exactly one of Sources or Dir
	// must be set.
	Sources map[string]string
	// Dir loads all .ccl files from a directory.
	Dir string
	// Vars supplies input variable values (plain Go values).
	Vars map[string]any
	// Cloud is the control plane to deploy onto. Required.
	Cloud cloud.Interface
	// Modules resolves module sources; defaults to directory resolution
	// relative to Dir when Dir is set.
	Modules config.ModuleResolver
	// InitialState seeds the golden-state database (e.g. loaded from a
	// state file); defaults to empty.
	InitialState *state.State
	// GlobalLock switches the lock manager to whole-infrastructure
	// locking (the baseline behaviour). Default: per-resource locks.
	GlobalLock bool
	// StateBackend selects the golden-state storage engine: "memory"
	// (default; sharded in-memory map), "mvcc" (copy-on-write versions per
	// commit serial, so reads pinned at a serial stay consistent during
	// concurrent applies), or "wal" (append-only durable commit log with
	// snapshot compaction and crash recovery).
	StateBackend string
	// StateDir is the durable directory for the wal backend (required for
	// it; ignored otherwise). Existing durable contents win over
	// InitialState on reopen.
	StateDir string
	// JournalPath, when set, makes mutating operations crash-safe: every
	// apply, destroy, and rollback runs under a durable write-ahead journal
	// at this path (intents and per-op begin/done records, fsynced before
	// each cloud call). The journal is discarded after a fully successful
	// commit; if it survives — the process crashed or an op failed — the
	// next Plan or Apply recovers it first (see Stack.Recover).
	JournalPath string
	// Policies is CCL policy source enforced across the lifecycle.
	Policies string
	// Principal identifies this stack's changes in cloud activity logs.
	Principal string
	// Telemetry, when set, records a lifecycle span for every facade
	// operation plus the per-layer spans and metrics the internals emit
	// (apply ops, lock waits, cloud API calls, plan scope). Nil disables
	// instrumentation at near-zero cost.
	Telemetry *telemetry.Recorder

	// Provider runtime knobs (DESIGN.md S22). Every cloud call the stack
	// makes — apply ops, drift scans, plan refresh, activity tailing — goes
	// through one shared internal/provider.Runtime that owns read caching,
	// in-flight dedup, AIMD adaptive concurrency, and retry. Zero values
	// mean the runtime defaults.

	// ProviderCacheTTL bounds read-cache entry lifetime (default 30s;
	// negative disables caching).
	ProviderCacheTTL time.Duration
	// ProviderMaxRetries bounds attempts per cloud call (default 4).
	ProviderMaxRetries int
	// ProviderRetryBase seeds full-jitter exponential backoff (default 50ms).
	ProviderRetryBase time.Duration
	// ProviderMaxInFlight is the AIMD concurrency-window ceiling per cloud
	// provider (default 64).
	ProviderMaxInFlight int

	// Guarded-apply knobs (DESIGN.md S24). When GuardApplies is set, every
	// Apply runs health-gated: each create/update is probed until the
	// resource turns ready before dependents unblock, a per-run/per-region
	// failure fuse stops admitting ops into domains that fail too much, and
	// when resources never turn ready (or a fuse trips) the touched blast
	// radius is automatically reverted under the journal.

	// GuardApplies turns guarded execution on.
	GuardApplies bool
	// GuardCanary in (0, 1) applies a dependency-closed canary fraction of
	// each changeset first and releases the rest only if the canary
	// converges healthy. Zero disables the canary split.
	GuardCanary float64
	// GuardMaxFailures trips a failure domain's fuse at this many failures
	// (default 3).
	GuardMaxFailures int
	// GuardMaxFailureFraction trips a domain when failed/planned reaches
	// this fraction of the domain's planned ops (default 0.5).
	GuardMaxFailureFraction float64
	// HealthProbeTimeout bounds the per-resource readiness wait (default 30s).
	HealthProbeTimeout time.Duration
	// HealthProbeInterval is the first probe poll gap; polls back off
	// exponentially from it (default 10ms).
	HealthProbeInterval time.Duration
}

// Stack is an infrastructure under cloudless management.
type Stack struct {
	module    *config.Module
	expansion *config.Expansion
	vars      map[string]eval.Value
	resolver  config.ModuleResolver

	cloudAPI    cloud.Interface
	db          *statedb.DB
	engine      *policy.Engine
	watcher     *drift.Watcher
	principal   string
	telemetry   *telemetry.Recorder
	journalPath string
	guardOpts   *guard.Options
	bus         *events.Bus
	flight      *events.FlightRecorder
	replanCache *plan.ReplanCache
}

// Open loads, expands, and binds a configuration.
func Open(opts Options) (*Stack, error) {
	if opts.Cloud == nil {
		return nil, fmt.Errorf("cloudless: Options.Cloud is required")
	}
	var module *config.Module
	var diags hcl.Diagnostics
	switch {
	case opts.Sources != nil:
		module, diags = config.Load(opts.Sources)
	case opts.Dir != "":
		module, diags = config.LoadDir(opts.Dir)
		if opts.Modules == nil {
			opts.Modules = config.DirResolver{Root: opts.Dir}
		}
	default:
		return nil, fmt.Errorf("cloudless: either Options.Sources or Options.Dir must be set")
	}
	if diags.HasErrors() {
		return nil, diags
	}

	vars := map[string]eval.Value{}
	for k, v := range opts.Vars {
		vars[k] = eval.FromGo(v)
	}
	// Managed variables include declared defaults, so policy scale targets
	// work without the caller re-passing every default.
	for name, decl := range module.Variables {
		if _, given := vars[name]; !given && decl.HasDefault {
			vars[name] = decl.Default
		}
	}
	principal := opts.Principal
	if principal == "" {
		principal = "cloudless"
	}

	mode := statedb.ResourceLock
	if opts.GlobalLock {
		mode = statedb.GlobalLock
	}
	engine, err := statedb.NewEngine(opts.StateBackend, opts.InitialState, statedb.EngineOptions{
		Dir: opts.StateDir,
	})
	if err != nil {
		return nil, fmt.Errorf("cloudless: %w", err)
	}

	// All cloud access routes through one provider runtime per stack; a
	// caller that passes an already-wrapped Runtime (e.g. another stack's
	// Cloud()) shares that one instead of stacking dispatchers.
	// The live ops plane: one bus per stack. Every layer below publishes
	// into it; Subscribe, ApplyOptions.OnEvent, and the flight recorder
	// consume it. Publishing with no subscribers is nearly free.
	bus := events.NewBus(nil)

	popts := provider.Options{
		CacheTTL:    opts.ProviderCacheTTL,
		MaxRetries:  opts.ProviderMaxRetries,
		RetryBase:   opts.ProviderRetryBase,
		MaxInFlight: opts.ProviderMaxInFlight,
		Bus:         bus,
	}
	if opts.Telemetry != nil {
		popts.Registry = opts.Telemetry.Metrics()
	}
	runtime := provider.New(opts.Cloud, popts)

	s := &Stack{
		module:      module,
		vars:        vars,
		resolver:    opts.Modules,
		cloudAPI:    runtime,
		db:          statedb.OpenEngine(engine, mode),
		principal:   principal,
		telemetry:   opts.Telemetry,
		journalPath: opts.JournalPath,
		bus:         bus,
		replanCache: plan.NewReplanCache(),
	}
	if opts.JournalPath != "" {
		// Flight recorder: the journal's sibling artifact. A run that dies
		// with no live subscriber still leaves its event tail for
		// post-mortem reconstruction.
		fr, err := events.NewFlightRecorder(opts.JournalPath+".events.jsonl", bus)
		if err != nil {
			return nil, fmt.Errorf("cloudless: open flight recorder: %w", err)
		}
		s.flight = fr
	}
	if opts.GuardApplies {
		s.guardOpts = &guard.Options{
			Canary:             opts.GuardCanary,
			MaxFailures:        opts.GuardMaxFailures,
			MaxFailureFraction: opts.GuardMaxFailureFraction,
			Probe: health.ProbeOptions{
				Timeout:  opts.HealthProbeTimeout,
				Interval: opts.HealthProbeInterval,
			},
		}
	}
	if sim, ok := provider.Unwrap(opts.Cloud).(*cloud.Sim); ok && opts.Telemetry != nil {
		// Route simulator counters (API calls, throttles, injected failures)
		// into the stack's registry even for calls made without a
		// telemetry-carrying context.
		sim.AttachTelemetry(opts.Telemetry.Metrics())
	}
	if err := s.reexpand(); err != nil {
		return nil, err
	}

	if opts.Policies != "" {
		ps, diags := policy.ParsePolicies("policies.ccl", opts.Policies)
		if diags.HasErrors() {
			return nil, diags
		}
		s.engine = policy.NewEngine(ps)
		for k, v := range vars {
			s.engine.Vars[k] = v
		}
	} else {
		s.engine = policy.NewEngine(nil)
	}
	return s, nil
}

// reexpand recomputes the expansion from the module and current vars.
func (s *Stack) reexpand() error {
	ex, diags := config.Expand(s.module, s.vars, s.resolver)
	if diags.HasErrors() {
		return diags
	}
	s.expansion = ex
	return nil
}

// SetVar changes an input variable (e.g. applying a policy decision) and
// re-expands the configuration.
func (s *Stack) SetVar(name string, value any) error {
	s.vars[name] = eval.FromGo(value)
	s.engine.Vars[name] = s.vars[name]
	return s.reexpand()
}

// Var reads a managed variable's current value.
func (s *Stack) Var(name string) (any, bool) {
	v, ok := s.vars[name]
	if !ok {
		return nil, false
	}
	return eval.ToGo(v), true
}

// DB exposes the golden-state database (locks, history, snapshots).
func (s *Stack) DB() *statedb.DB { return s.db }

// Close releases the stack's storage engine resources (e.g. the wal
// backend's log file), flushes the flight recorder, and shuts down the
// event bus. The stack must not be used afterwards.
func (s *Stack) Close() error {
	err := s.db.Close()
	if s.flight != nil {
		if ferr := s.flight.Close(); err == nil {
			err = ferr
		}
	}
	s.bus.Close()
	return err
}

// Telemetry exposes the stack's recorder (nil when telemetry is disabled).
func (s *Stack) Telemetry() *telemetry.Recorder { return s.telemetry }

// lifecycle attaches the stack's recorder to the context (callers may also
// supply one via telemetry.WithRecorder) and opens a span covering one
// facade operation. With no recorder anywhere it returns (ctx, nil); every
// span method is nil-safe, so call sites need no guards.
func (s *Stack) lifecycle(ctx context.Context, name string) (context.Context, *telemetry.Span) {
	if s.telemetry != nil && telemetry.FromContext(ctx) == nil {
		ctx = telemetry.WithRecorder(ctx, s.telemetry)
	}
	if events.FromContext(ctx) == nil {
		ctx = events.WithBus(ctx, s.bus)
	}
	return telemetry.StartSpan(ctx, name)
}

// Events exposes the stack's live event bus.
func (s *Stack) Events() *events.Bus { return s.bus }

// Subscribe registers a live consumer of the stack's ops-plane events. The
// returned subscription's channel receives every matching event published
// after the call; a consumer that falls behind loses oldest events first
// (see Subscription.Dropped) — publishers never block. Close the
// subscription when done.
func (s *Stack) Subscribe(filter EventFilter) *EventSubscription {
	return s.bus.Subscribe(filter, 0)
}

// FlightRecorderPath returns the JSONL events artifact location ("" when no
// journal path is configured).
func (s *Stack) FlightRecorderPath() string { return s.flight.Path() }

// Cloud exposes the bound cloud interface — the stack's provider runtime,
// so sharing it with another stack shares cache, coalescing, and the AIMD
// window too.
func (s *Stack) Cloud() cloud.Interface { return s.cloudAPI }

// Provider exposes the stack's provider runtime for stats inspection. It
// returns nil when the bound cloud interface is not a runtime (possible for
// stacks constructed through test seams or future non-runtime paths);
// callers must treat nil as "no runtime stats available".
func (s *Stack) Provider() *provider.Runtime {
	rt, ok := s.cloudAPI.(*provider.Runtime)
	if !ok {
		return nil
	}
	return rt
}

// Instances lists the expanded instance addresses.
func (s *Stack) Instances() []string {
	out := make([]string, 0, len(s.expansion.Instances))
	for _, inst := range s.expansion.Instances {
		out = append(out, inst.Addr)
	}
	sort.Strings(out)
	return out
}

// Validate runs compile-time validation: schema structure, semantic types,
// and the cloud-level knowledge base (§3.2).
func (s *Stack) Validate() *ValidationResult {
	_, span := s.lifecycle(context.Background(), "lifecycle.validate")
	res := validate.Validate(s.expansion, nil)
	span.SetAttr("findings", len(res.Findings))
	span.End()
	return res
}

// HasStaleJournal reports whether a crashed run's journal is waiting at
// Options.JournalPath.
func (s *Stack) HasStaleJournal() bool {
	if s.journalPath == "" {
		return false
	}
	js, err := apply.ReadJournal(s.journalPath)
	return err == nil && js != nil
}

// Recover reconciles a crashed run's journal (apply, destroy, or rollback)
// against the cloud and commits the reconciled state: completed ops are
// folded in from their done records, in-doubt ops are re-driven under their
// original idempotency keys, and orphaned resources are adopted or deleted
// via the activity log. Returns (nil, nil) when there is nothing to recover.
// The journal is removed only after a fully clean recovery, so a crash
// during recovery itself is handled by calling Recover again.
func (s *Stack) Recover(ctx context.Context) (*RecoverReport, error) {
	if s.journalPath == "" {
		return nil, nil
	}
	js, err := apply.ReadJournal(s.journalPath)
	if err != nil || js == nil {
		return nil, err
	}
	ctx, span := s.lifecycle(ctx, "lifecycle.recover")
	defer span.End()
	span.SetAttr("journal_id", js.Meta.ID)
	span.SetAttr("journal_kind", js.Meta.Kind)

	base := s.db.Snapshot()
	st, rep, err := apply.Recover(ctx, s.cloudAPI, js, base, apply.Options{Principal: s.principal})
	if err != nil {
		return rep, err
	}
	span.SetAttr("confirmed", rep.Confirmed)
	span.SetAttr("resumed", rep.Resumed)
	span.SetAttr("orphans_adopted", len(rep.OrphansAdopted))
	span.SetAttr("orphans_deleted", len(rep.OrphansDeleted))

	// Commit everything the reconciled state and the base disagree on.
	seen := map[string]bool{}
	var addrs []string
	for _, a := range base.Addrs() {
		seen[a] = true
		addrs = append(addrs, a)
	}
	for _, a := range st.Addrs() {
		if !seen[a] {
			addrs = append(addrs, a)
		}
	}
	sort.Strings(addrs)
	txn := s.db.Begin("recover")
	if err := txn.Lock(ctx, addrs...); err != nil {
		return rep, fmt.Errorf("cloudless: recover: acquire locks: %w", err)
	}
	defer txn.Abort()
	for _, addr := range addrs {
		if rs := st.Get(addr); rs != nil {
			if err := txn.Put(rs); err != nil {
				return rep, err
			}
		} else if err := txn.Delete(addr); err != nil {
			return rep, err
		}
	}
	if _, err := txn.Commit(); err != nil {
		return rep, err
	}
	if err := rep.Err(); err != nil {
		// Some in-doubt op could not be resolved (e.g. the cloud was
		// unreachable); keep the journal so a later Recover retries it.
		return rep, err
	}
	if err := os.Remove(s.journalPath); err != nil && !os.IsNotExist(err) {
		return rep, err
	}
	return rep, nil
}

// recoverStale runs Recover when a crashed run's journal is present; it is
// invoked automatically at the head of Plan and Apply so no run ever builds
// on a state the cloud has silently moved past.
func (s *Stack) recoverStale(ctx context.Context) (*RecoverReport, error) {
	if !s.HasStaleJournal() {
		return nil, nil
	}
	return s.Recover(ctx)
}

// Plan computes a full plan against the golden state, refreshing every
// recorded resource from the cloud first. A stale journal from a crashed
// run is recovered (and committed) before planning.
func (s *Stack) Plan(ctx context.Context) (*Plan, error) {
	if _, err := s.recoverStale(ctx); err != nil {
		return nil, err
	}
	ctx, span := s.lifecycle(ctx, "lifecycle.plan")
	defer span.End()
	p, diags := plan.Compute(ctx, s.expansion, s.db.Snapshot(), plan.Options{
		Refresh: true, Cloud: s.cloudAPI,
	})
	if diags.HasErrors() {
		return p, diags
	}
	return p, nil
}

// PlanIncremental computes an incremental plan confined to the impact scope
// of the given resource-level addresses (§3.3), skipping refresh and
// evaluation outside the scope.
func (s *Stack) PlanIncremental(ctx context.Context, changed ...string) (*Plan, error) {
	if _, err := s.recoverStale(ctx); err != nil {
		return nil, err
	}
	ctx, span := s.lifecycle(ctx, "lifecycle.plan_incremental")
	span.SetAttr("changed", len(changed))
	defer span.End()
	p, diags := plan.Compute(ctx, s.expansion, s.db.Snapshot(), plan.Options{
		Refresh: true, Cloud: s.cloudAPI, ImpactScope: changed,
	})
	if diags.HasErrors() {
		return p, diags
	}
	return p, nil
}

// Replan computes a plan through the stack's replan cache: declarations
// whose fingerprint is unchanged since the last (re)plan and whose recorded
// state has not moved replay their memoized diffs, and only the dirty
// subtree — edited decls, changed inputs, drifted or committed addresses,
// plus transitive dependents — is re-evaluated. The result is byte-identical
// to Plan; the first call after Open is effectively a full plan that warms
// the cache. Refreshes recorded state (batched) like Plan does, so drift
// observed by the refresh dirties exactly the drifted subtrees.
func (s *Stack) Replan(ctx context.Context) (*Plan, error) {
	if _, err := s.recoverStale(ctx); err != nil {
		return nil, err
	}
	ctx, span := s.lifecycle(ctx, "lifecycle.replan")
	defer span.End()
	p, diags := plan.Compute(ctx, s.expansion, s.db.Snapshot(), plan.Options{
		Refresh: true, Cloud: s.cloudAPI, Cache: s.replanCache,
	})
	if diags.HasErrors() {
		return p, diags
	}
	return p, nil
}

// ReplanOffline is Replan without the cloud refresh: it trusts recorded
// state (like PlanOffline) and re-evaluates only the subtree dirtied by
// configuration edits or state commits since the previous cached plan. This
// is the edit-loop fast path: a one-resource change in a large graph costs
// one subtree, not a full evaluation sweep.
func (s *Stack) ReplanOffline(ctx context.Context) (*Plan, error) {
	ctx, span := s.lifecycle(ctx, "lifecycle.replan_offline")
	defer span.End()
	p, diags := plan.Compute(ctx, s.expansion, s.db.Snapshot(), plan.Options{
		Cache: s.replanCache,
	})
	if diags.HasErrors() {
		return p, diags
	}
	return p, nil
}

// ReplanStats reports what the last Replan/ReplanOffline did: the
// invalidation type ("cold", "config", "state", "clean"), dirty-seed counts,
// and how many resources replayed from cache vs re-evaluated.
func (s *Stack) ReplanStats() plan.CacheStats { return s.replanCache.LastStats() }

// InvalidateReplanCache forces the next Replan to be a full replan.
func (s *Stack) InvalidateReplanCache() { s.replanCache.InvalidateAll() }

// PlanOffline plans without refreshing from the cloud (fast, trusts state).
func (s *Stack) PlanOffline(ctx context.Context) (*Plan, error) {
	ctx, span := s.lifecycle(ctx, "lifecycle.plan_offline")
	defer span.End()
	p, diags := plan.Compute(ctx, s.expansion, s.db.Snapshot(), plan.Options{})
	if diags.HasErrors() {
		return p, diags
	}
	return p, nil
}

// PlanOfflineAt plans against the golden state as of a past serial instead
// of the latest. Requires a backend with version retention (mvcc); other
// backends return statedb.ErrNoSuchSerial for anything but the current
// serial. The returned plan is pinned at that serial, so applying it against
// a state that moved on aborts with *StaleBaseError.
func (s *Stack) PlanOfflineAt(ctx context.Context, serial int) (*Plan, error) {
	ctx, span := s.lifecycle(ctx, "lifecycle.plan_offline_at")
	span.SetAttr("pinned_serial", serial)
	defer span.End()
	snap, err := s.db.SnapshotAt(serial)
	if err != nil {
		return nil, err
	}
	p, diags := plan.Compute(ctx, s.expansion, snap, plan.Options{})
	if diags.HasErrors() {
		return p, diags
	}
	return p, nil
}

// ApplyOptions tune Apply.
type ApplyOptions struct {
	Concurrency int
	Scheduler   apply.Scheduler
	// SkipPolicyCheck bypasses plan-phase policies.
	SkipPolicyCheck bool
	// BatchOps coalesces concurrent creates and reads into bulk cloud
	// calls, cutting control-plane round-trips on wide changesets (see
	// apply.Options.BatchOps).
	BatchOps bool
	// OnEvent, when set, receives every ops-plane event published during
	// this apply (run/wave lifecycle, per-op progress, health gates, fuse
	// trips, rollbacks, provider signals), in order, on a dedicated
	// goroutine. The callback must not block for long: events queue in a
	// bounded buffer and the oldest are dropped if it falls behind. Apply
	// drains the queue before returning, so the callback sees the whole run.
	OnEvent func(Event)
}

// ErrPolicyDenied is returned when a plan-phase policy denies the apply.
type ErrPolicyDenied struct{ Message string }

// Error implements error.
func (e *ErrPolicyDenied) Error() string { return "cloudless: policy denied: " + e.Message }

// ErrJournalRecovered is returned by Apply when a crashed run's journal was
// found and recovered before the apply could start. The recovery moved the
// golden state, so the plan in hand predates it — re-plan and apply again.
type ErrJournalRecovered struct{ Report *RecoverReport }

// Error implements error.
func (e *ErrJournalRecovered) Error() string {
	return "cloudless: recovered a crashed run's journal; the plan is stale — re-plan and retry"
}

// Apply executes a plan transactionally: plan-phase policies run first,
// per-resource (or global) locks are held for every pending address across
// the physical apply, and the golden state and time machine are updated
// atomically on completion. Failed operations yield IaC-level diagnoses.
func (s *Stack) Apply(ctx context.Context, p *Plan, opts ApplyOptions) (*ApplyResult, []*Diagnosis, error) {
	if s.HasStaleJournal() {
		rep, err := s.Recover(ctx)
		if err != nil {
			return nil, nil, err
		}
		return nil, nil, &ErrJournalRecovered{Report: rep}
	}
	ctx, span := s.lifecycle(ctx, "lifecycle.apply")
	span.SetAttr("pending", p.Creates+p.Updates+p.Replaces+p.Deletes)
	span.SetAttr("base_serial", p.BaseSerial)
	span.SetAttr("scheduler", opts.Scheduler.String())
	defer span.End()

	// OnEvent: a private subscription pumped to the callback. Registered
	// before run_start is published and drained after run_finish, so the
	// callback observes the complete run.
	if opts.OnEvent != nil {
		sub := s.bus.Subscribe(events.Filter{}, 4*events.DefaultBuffer)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for e := range sub.C() {
				opts.OnEvent(e)
			}
		}()
		defer func() {
			sub.Close()
			<-done
		}()
	}
	if !opts.SkipPolicyCheck {
		decisions, diags := s.engine.EvaluatePlan(p)
		if diags.HasErrors() {
			return nil, nil, diags
		}
		if denied, msg := policy.Denied(decisions); denied {
			return nil, nil, &ErrPolicyDenied{Message: msg}
		}
	}

	// The commit carries the plan's pinned serial: if other transactions
	// advanced any of these addresses past the plan's base, Commit aborts
	// with *StaleBaseError instead of clobbering their work.
	txn := s.db.Begin("apply")
	if p.BaseSerial > 0 {
		txn.SetBase(p.BaseSerial)
	}
	addrs := make([]string, 0, len(p.Changes))
	for addr, ch := range p.Changes {
		if ch.Action != plan.ActionNoop {
			addrs = append(addrs, addr)
		}
	}
	sort.Strings(addrs)
	if err := txn.Lock(ctx, addrs...); err != nil {
		return nil, nil, fmt.Errorf("cloudless: acquire locks: %w", err)
	}
	defer txn.Abort()

	var j *apply.Journal
	if s.journalPath != "" {
		nj, err := apply.NewJournal(s.journalPath, apply.Meta{
			Kind: "apply", BaseSerial: p.BaseSerial, Principal: s.principal,
		})
		if err != nil {
			return nil, nil, err
		}
		j = nj
	}
	applyOpts := apply.Options{
		Concurrency:     opts.Concurrency,
		Scheduler:       opts.Scheduler,
		Principal:       s.principal,
		ContinueOnError: true,
		Journal:         j,
		BatchOps:        opts.BatchOps,
	}
	runID := ""
	if j != nil {
		runID = j.Meta().ID
	}
	s.bus.Publish(events.Event{Kind: "apply.run_start", Run: runID,
		Principal: s.principal,
		N:         int64(p.Creates + p.Updates + p.Replaces + p.Deletes)})

	var res *ApplyResult
	if s.guardOpts != nil {
		span.SetAttr("guarded", true)
		res = guard.Run(ctx, s.cloudAPI, p, applyOpts, *s.guardOpts)
	} else {
		res = apply.Apply(ctx, s.cloudAPI, p, applyOpts)
	}
	s.publishRunFinish(runID, res)
	keepJournal := true
	if j != nil {
		// The journal is discarded after a zero-error apply whose state
		// committed, or after a guarded apply whose auto-rollback fully
		// reverted the blast radius (the cloud matches what state records
		// either way); anything less leaves it for Recover to reconcile.
		defer func() {
			if keepJournal {
				_ = j.Close()
			} else {
				_ = j.Discard()
			}
		}()
	}

	// Publish results for the locked addresses.
	for _, addr := range addrs {
		if rs := res.State.Get(addr); rs != nil {
			if err := txn.Put(rs); err != nil {
				return res, nil, err
			}
		} else if err := txn.Delete(addr); err != nil {
			return res, nil, err
		}
	}
	txn.SetOutputs(res.State.Outputs)
	if _, err := txn.Commit(); err != nil {
		return res, nil, err
	}
	if res.Err() == nil || res.Reverted {
		keepJournal = false
	}
	span.SetAttr("applied", res.Applied)
	span.SetAttr("failed", len(res.Errors))
	span.SetAttr("retries", res.Retries)
	if s.guardOpts != nil {
		span.SetAttr("gate_failures", res.GateFailures)
		span.SetAttr("fuse_tripped", len(res.FuseTripped))
		span.SetAttr("reverted", res.Reverted)
	}
	// Record outputs on the lifecycle span with the same redaction the
	// display path applies: sensitive values never reach a trace file.
	for name, v := range s.DisplayOutputs() {
		span.SetAttr("output."+name, fmt.Sprint(v))
	}

	// Advance the drift watcher past our own activity so it doesn't chew
	// through events we caused (it filters by principal anyway).
	if s.watcher == nil {
		s.resetWatcher(ctx)
	}

	var diagnoses []*Diagnosis
	for addr, applyErr := range res.Errors {
		inst := s.expansion.ByAddr[addr]
		diagnoses = append(diagnoses, diagnose.Explain(applyErr, inst, s.expansion))
	}
	sort.Slice(diagnoses, func(i, j int) bool { return diagnoses[i].Addr < diagnoses[j].Addr })
	return res, diagnoses, res.Err()
}

// publishRunFinish emits the run-terminating event plus a provider-runtime
// stats snapshot (cache hit / coalesce / throttle counters), so a watcher
// sees how the dispatch layer behaved without polling Stats itself.
func (s *Stack) publishRunFinish(runID string, res *ApplyResult) {
	fin := events.Event{Kind: "apply.run_finish", Run: runID,
		N: int64(res.Applied), Retries: int64(res.Retries),
		Ms: float64(res.Elapsed) / float64(time.Millisecond)}
	if err := res.Err(); err != nil {
		fin.Err = err.Error()
	}
	s.bus.Publish(fin)
	if rt := s.Provider(); rt != nil {
		st := rt.Stats()
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"calls", st.Calls}, {"retries", st.Retries}, {"throttles", st.Throttles},
			{"cache_hits", st.CacheHits}, {"cache_misses", st.CacheMisses},
			{"coalesced", st.Coalesced},
		} {
			s.bus.Publish(events.Event{Kind: "provider.stats", Run: runID,
				Action: c.name, N: c.v})
		}
	}
}

// Destroy deletes everything in the golden state, in reverse dependency
// order, and commits the emptied state.
func (s *Stack) Destroy(ctx context.Context) (*ApplyResult, error) {
	if s.HasStaleJournal() {
		if _, err := s.Recover(ctx); err != nil {
			return nil, err
		}
	}
	ctx, span := s.lifecycle(ctx, "lifecycle.destroy")
	defer span.End()
	snapshot := s.db.Snapshot()
	txn := s.db.BeginAt("destroy", snapshot.Serial)
	if err := txn.Lock(ctx, snapshot.Addrs()...); err != nil {
		return nil, err
	}
	defer txn.Abort()
	var j *apply.Journal
	if s.journalPath != "" {
		nj, err := apply.NewJournal(s.journalPath, apply.Meta{
			Kind: "destroy", BaseSerial: snapshot.Serial, Principal: s.principal,
		})
		if err != nil {
			return nil, err
		}
		j = nj
	}
	runID := ""
	if j != nil {
		runID = j.Meta().ID
	}
	s.bus.Publish(events.Event{Kind: "apply.run_start", Run: runID,
		Principal: s.principal, Action: "destroy",
		N: int64(len(snapshot.Addrs()))})
	res := apply.Destroy(ctx, s.cloudAPI, snapshot, apply.Options{
		Principal: s.principal, ContinueOnError: true, Journal: j,
	})
	s.publishRunFinish(runID, res)
	keepJournal := true
	if j != nil {
		defer func() {
			if keepJournal {
				_ = j.Close()
			} else {
				_ = j.Discard()
			}
		}()
	}
	for _, addr := range snapshot.Addrs() {
		if res.State.Get(addr) == nil {
			if err := txn.Delete(addr); err != nil {
				return res, err
			}
		}
	}
	if _, err := txn.Commit(); err != nil {
		return res, err
	}
	if res.Err() == nil {
		keepJournal = false
	}
	return res, res.Err()
}

// resetWatcher (re)starts the drift watcher at the cloud's current log tail.
func (s *Stack) resetWatcher(ctx context.Context) {
	tail := int64(0)
	if events, err := s.cloudAPI.Activity(ctx, 0); err == nil && len(events) > 0 {
		tail = events[len(events)-1].Seq
	}
	s.watcher = drift.NewWatcher(s.cloudAPI, s.principal, tail)
}

// WatchDrift polls the activity log for out-of-band changes (§3.5). Call
// repeatedly; the cursor advances automatically.
func (s *Stack) WatchDrift(ctx context.Context) (*DriftReport, error) {
	ctx, span := s.lifecycle(ctx, "lifecycle.watch_drift")
	defer span.End()
	if s.watcher == nil {
		s.resetWatcher(ctx)
		return &DriftReport{Method: "activity-log"}, nil
	}
	return s.watcher.Poll(ctx, s.db.Snapshot())
}

// ScanDrift performs a full driftctl-style API scan (expensive).
func (s *Stack) ScanDrift(ctx context.Context) (*DriftReport, error) {
	ctx, span := s.lifecycle(ctx, "lifecycle.scan_drift")
	defer span.End()
	rep, err := drift.FullScan(ctx, s.cloudAPI, s.db.Snapshot())
	if rep != nil {
		span.SetAttr("drift_items", len(rep.Items))
	}
	return rep, err
}

// ReconcileDrift applies drift-phase policies (or the explicit choice) to a
// report and commits the updated state.
func (s *Stack) ReconcileDrift(ctx context.Context, rep *DriftReport, action drift.Action) (*drift.ReconcileResult, error) {
	ctx, span := s.lifecycle(ctx, "lifecycle.reconcile_drift")
	defer span.End()
	snapshot := s.db.Snapshot()
	res := drift.Reconcile(ctx, s.cloudAPI, snapshot, rep, func(drift.Item) drift.Action { return action }, s.principal)
	txn := s.db.BeginAt("reconcile drift", snapshot.Serial)
	var addrs []string
	for _, it := range rep.Items {
		if it.Addr != "" {
			addrs = append(addrs, it.Addr)
		}
	}
	// Imported unmanaged resources get new addresses too.
	for _, a := range res.State.Addrs() {
		if snapshot.Get(a) == nil {
			addrs = append(addrs, a)
		}
	}
	if err := txn.Lock(ctx, addrs...); err != nil {
		return res, err
	}
	defer txn.Abort()
	for _, addr := range addrs {
		if rs := res.State.Get(addr); rs != nil {
			if err := txn.Put(rs); err != nil {
				return res, err
			}
		} else if err := txn.Delete(addr); err != nil {
			return res, err
		}
	}
	if _, err := txn.Commit(); err != nil {
		return res, err
	}
	return res, nil
}

// PolicyDecisionsForDrift evaluates drift-phase policies over a report.
func (s *Stack) PolicyDecisionsForDrift(rep *DriftReport) ([]Decision, error) {
	decs, diags := s.engine.EvaluateDrift(rep)
	if diags.HasErrors() {
		return decs, diags
	}
	return decs, nil
}

// Observe feeds runtime metrics to operate-phase policies (autoscaling).
// Returned set_variable/scale decisions are already applied to the stack's
// variables; call Plan+Apply afterwards to enact them.
func (s *Stack) Observe(metrics map[string]any) ([]Decision, error) {
	m := make(map[string]eval.Value, len(metrics))
	for k, v := range metrics {
		m[k] = eval.FromGo(v)
	}
	decs, diags := s.engine.Observe(m)
	if diags.HasErrors() {
		return decs, diags
	}
	changed := false
	for _, d := range decs {
		if d.Kind == policy.ActionScale || d.Kind == policy.ActionSetVariable {
			s.vars[d.Variable] = d.NewValue
			changed = true
		}
	}
	if changed {
		if err := s.reexpand(); err != nil {
			return decs, err
		}
	}
	return decs, nil
}

// PlanRollback computes a minimal rollback to a historical serial (§3.4).
func (s *Stack) PlanRollback(serial int) (*RollbackPlan, *State, error) {
	snap, err := s.db.History().At(serial)
	if err != nil {
		return nil, nil, err
	}
	current := s.db.Snapshot()
	return rollback.Compute(current, snap.State), snap.State, nil
}

// ExecuteRollback runs a rollback plan and commits the resulting state.
func (s *Stack) ExecuteRollback(ctx context.Context, p *RollbackPlan, target *State) error {
	ctx, span := s.lifecycle(ctx, "lifecycle.rollback")
	span.SetAttr("steps", len(p.Steps))
	defer span.End()
	current := s.db.Snapshot()
	txn := s.db.BeginAt("rollback", current.Serial)
	var addrs []string
	for _, step := range p.Steps {
		addrs = append(addrs, step.Addr)
	}
	if err := txn.Lock(ctx, addrs...); err != nil {
		return err
	}
	defer txn.Abort()
	var j *apply.Journal
	if s.journalPath != "" {
		nj, jerr := apply.NewJournal(s.journalPath, apply.Meta{
			Kind: "rollback", BaseSerial: current.Serial, Principal: s.principal,
		})
		if jerr != nil {
			return jerr
		}
		j = nj
	}
	after, err := rollback.ExecuteJournaled(ctx, s.cloudAPI, current, target, p,
		rollback.ExecOptions{Principal: s.principal, Journal: j})
	keepJournal := true
	if j != nil {
		defer func() {
			if keepJournal {
				_ = j.Close() // left for Recover
			} else {
				_ = j.Discard()
			}
		}()
	}
	if err != nil {
		return err
	}
	for _, addr := range addrs {
		if rs := after.Get(addr); rs != nil {
			if perr := txn.Put(rs); perr != nil {
				return perr
			}
		} else if derr := txn.Delete(addr); derr != nil {
			return derr
		}
	}
	if _, err = txn.Commit(); err != nil {
		return err
	}
	keepJournal = false
	return nil
}

// Outputs returns the last-applied root outputs as plain Go values.
func (s *Stack) Outputs() map[string]any {
	out := map[string]any{}
	for k, v := range s.db.Snapshot().Outputs {
		out[k] = eval.ToGo(v)
	}
	return out
}

// OutputIsSensitive reports whether an output is declared sensitive;
// display layers substitute a redaction marker for such values.
func (s *Stack) OutputIsSensitive(name string) bool {
	if spec, ok := s.expansion.Outputs[name]; ok {
		return spec.Sensitive
	}
	return false
}

// DisplayOutputs returns outputs with sensitive values redacted, for
// printing to terminals and logs.
func (s *Stack) DisplayOutputs() map[string]any {
	out := s.Outputs()
	for name := range out {
		if s.OutputIsSensitive(name) {
			out[name] = telemetry.Redacted
		}
	}
	return out
}
