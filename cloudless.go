// Package cloudless is a reference implementation of Cloudless Computing
// (Qiu et al., HotNets '23): cloud infrastructure management "as a service",
// covering the full IaC lifecycle the paper lays out — developing,
// validating, deploying, updating, diagnosing, and policing infrastructure.
//
// The central type is Stack: a configuration bound to a cloud, a golden-
// state database with granular locking, a policy engine, and a drift
// watcher. A typical session:
//
//	stack, err := cloudless.Open(cloudless.Options{
//		Sources: map[string]string{"main.ccl": src},
//		Cloud:   sim, // or cloud.NewClient("http://...", nil)
//	})
//	res := stack.Validate()          // compile-time cloud-level checks
//	p, diags := stack.Plan(ctx)      // diff against golden state
//	result, err := stack.Apply(ctx, p)
//
// Stack is a thin single-workspace client of internal/workspace, the
// hostable per-tenant core; cmd/cloudlessd hosts many workspaces in one
// process behind an HTTP API (DESIGN.md S27).
//
// See the examples directory for runnable end-to-end scenarios.
package cloudless

import (
	"context"
	"time"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/diagnose"
	"cloudless/internal/drift"
	"cloudless/internal/events"
	"cloudless/internal/plan"
	"cloudless/internal/policy"
	"cloudless/internal/provider"
	"cloudless/internal/rollback"
	"cloudless/internal/state"
	"cloudless/internal/statedb"
	"cloudless/internal/telemetry"
	"cloudless/internal/validate"
	"cloudless/internal/workspace"
)

// Re-exported names so most callers only import the root package.
type (
	// Plan is an execution plan (see internal/plan).
	Plan = plan.Plan
	// ApplyResult summarizes an apply.
	ApplyResult = apply.Result
	// ValidationResult holds compile-time findings.
	ValidationResult = validate.Result
	// DriftReport is a drift detection outcome.
	DriftReport = drift.Report
	// Diagnosis explains a cloud error at the IaC level.
	Diagnosis = diagnose.Diagnosis
	// Decision is a policy decision.
	Decision = policy.Decision
	// RollbackPlan is a computed rollback.
	RollbackPlan = rollback.Plan
	// RecoverReport summarizes a crashed run's journal recovery.
	RecoverReport = apply.RecoverReport
	// Event is one live ops-plane transition (see internal/events).
	Event = events.Event
	// EventFilter selects event kinds for Subscribe.
	EventFilter = events.Filter
	// EventSubscription is a bounded live view of the stack's event bus.
	EventSubscription = events.Subscription
	// State is recorded infrastructure state.
	State = state.State
	// StaleBaseError is the typed conflict returned when an apply's plan
	// was computed against a state serial that other commits have passed.
	StaleBaseError = statedb.StaleBaseError

	// ApplyOptions tune Apply.
	ApplyOptions = workspace.ApplyOptions
	// ErrPolicyDenied is returned when a plan-phase policy denies the apply.
	ErrPolicyDenied = workspace.ErrPolicyDenied
	// ErrJournalRecovered is returned by Apply when a crashed run's journal
	// was found and recovered before the apply could start: the recovery
	// moved the golden state, so re-plan and apply again.
	ErrJournalRecovered = workspace.ErrJournalRecovered
	// ErrStackClosed is the typed error lifecycle calls return once Close
	// has begun: the stack drains in-flight operations but admits no new
	// ones.
	ErrStackClosed = workspace.ErrClosed
)

// State storage backends for Options.StateBackend.
const (
	BackendMemory = statedb.BackendMemory
	BackendMVCC   = statedb.BackendMVCC
	BackendWAL    = statedb.BackendWAL
)

// Scheduler choices for Apply.
const (
	SchedulerFIFO         = apply.FIFOScheduler
	SchedulerCriticalPath = apply.CriticalPathScheduler
)

// Options configure Open.
type Options struct {
	// Sources maps filename to CCL source. Exactly one of Sources or Dir
	// must be set.
	Sources map[string]string
	// Dir loads all .ccl files from a directory.
	Dir string
	// Vars supplies input variable values (plain Go values).
	Vars map[string]any
	// Cloud is the control plane to deploy onto. Required.
	Cloud cloud.Interface
	// Modules resolves module sources; defaults to directory resolution
	// relative to Dir when Dir is set.
	Modules config.ModuleResolver
	// InitialState seeds the golden-state database (e.g. loaded from a
	// state file); defaults to empty.
	InitialState *state.State
	// GlobalLock switches the lock manager to whole-infrastructure
	// locking (the baseline behaviour). Default: per-resource locks.
	GlobalLock bool
	// StateBackend selects the golden-state storage engine: "memory"
	// (default; sharded in-memory map), "mvcc" (copy-on-write versions per
	// commit serial, so reads pinned at a serial stay consistent during
	// concurrent applies), or "wal" (append-only durable commit log with
	// snapshot compaction and crash recovery).
	StateBackend string
	// StateDir is the durable directory for the wal backend (required for
	// it; ignored otherwise). Existing durable contents win over
	// InitialState on reopen.
	StateDir string
	// JournalPath, when set, makes mutating operations crash-safe: every
	// apply, destroy, and rollback runs under a durable write-ahead journal
	// at this path (intents and per-op begin/done records, fsynced before
	// each cloud call). The journal is discarded after a fully successful
	// commit; if it survives — the process crashed or an op failed — the
	// next Plan or Apply recovers it first (see Stack.Recover).
	JournalPath string
	// Policies is CCL policy source enforced across the lifecycle.
	Policies string
	// Principal identifies this stack's changes in cloud activity logs.
	Principal string
	// Telemetry, when set, records a lifecycle span for every facade
	// operation plus the per-layer spans and metrics the internals emit
	// (apply ops, lock waits, cloud API calls, plan scope). Nil disables
	// instrumentation at near-zero cost.
	Telemetry *telemetry.Recorder

	// Provider runtime knobs (DESIGN.md S22). Every cloud call the stack
	// makes — apply ops, drift scans, plan refresh, activity tailing — goes
	// through one shared internal/provider.Runtime that owns read caching,
	// in-flight dedup, AIMD adaptive concurrency, and retry. Zero values
	// mean the runtime defaults.

	// ProviderCacheTTL bounds read-cache entry lifetime (default 30s;
	// negative disables caching).
	ProviderCacheTTL time.Duration
	// ProviderMaxRetries bounds attempts per cloud call (default 4).
	ProviderMaxRetries int
	// ProviderRetryBase seeds full-jitter exponential backoff (default 50ms).
	ProviderRetryBase time.Duration
	// ProviderMaxInFlight is the AIMD concurrency-window ceiling per cloud
	// provider (default 64).
	ProviderMaxInFlight int

	// Guarded-apply knobs (DESIGN.md S24). When GuardApplies is set, every
	// Apply runs health-gated: each create/update is probed until the
	// resource turns ready before dependents unblock, a per-run/per-region
	// failure fuse stops admitting ops into domains that fail too much, and
	// when resources never turn ready (or a fuse trips) the touched blast
	// radius is automatically reverted under the journal.

	// GuardApplies turns guarded execution on.
	GuardApplies bool
	// GuardCanary in (0, 1) applies a dependency-closed canary fraction of
	// each changeset first and releases the rest only if the canary
	// converges healthy. Zero disables the canary split.
	GuardCanary float64
	// GuardMaxFailures trips a failure domain's fuse at this many failures
	// (default 3).
	GuardMaxFailures int
	// GuardMaxFailureFraction trips a domain when failed/planned reaches
	// this fraction of the domain's planned ops (default 0.5).
	GuardMaxFailureFraction float64
	// HealthProbeTimeout bounds the per-resource readiness wait (default 30s).
	HealthProbeTimeout time.Duration
	// HealthProbeInterval is the first probe poll gap; polls back off
	// exponentially from it (default 10ms).
	HealthProbeInterval time.Duration
}

// config converts public options into the workspace core's config.
func (o Options) config() workspace.Config {
	return workspace.Config{
		Sources:                 o.Sources,
		Dir:                     o.Dir,
		Vars:                    o.Vars,
		Cloud:                   o.Cloud,
		Modules:                 o.Modules,
		InitialState:            o.InitialState,
		GlobalLock:              o.GlobalLock,
		StateBackend:            o.StateBackend,
		StateDir:                o.StateDir,
		JournalPath:             o.JournalPath,
		Policies:                o.Policies,
		Principal:               o.Principal,
		Telemetry:               o.Telemetry,
		ProviderCacheTTL:        o.ProviderCacheTTL,
		ProviderMaxRetries:      o.ProviderMaxRetries,
		ProviderRetryBase:       o.ProviderRetryBase,
		ProviderMaxInFlight:     o.ProviderMaxInFlight,
		GuardApplies:            o.GuardApplies,
		GuardCanary:             o.GuardCanary,
		GuardMaxFailures:        o.GuardMaxFailures,
		GuardMaxFailureFraction: o.GuardMaxFailureFraction,
		HealthProbeTimeout:      o.HealthProbeTimeout,
		HealthProbeInterval:     o.HealthProbeInterval,
	}
}

// Stack is an infrastructure under cloudless management: a thin
// single-workspace client of the internal/workspace core. The zero value
// is not usable; construct with Open.
type Stack struct {
	ws *workspace.Workspace

	// cloudAPI and bus mirror the workspace's bindings. They exist as
	// fields (rather than reads through ws) so package-internal test seams
	// can exercise Provider and event publication on a bare Stack without
	// wiring a whole workspace.
	cloudAPI cloud.Interface
	bus      *events.Bus
}

// Open loads, expands, and binds a configuration.
func Open(opts Options) (*Stack, error) {
	ws, err := workspace.New(opts.config())
	if err != nil {
		return nil, err
	}
	return &Stack{ws: ws, cloudAPI: ws.Cloud(), bus: ws.Events()}, nil
}

// SetVar changes an input variable (e.g. applying a policy decision) and
// re-expands the configuration.
func (s *Stack) SetVar(name string, value any) error { return s.ws.SetVar(name, value) }

// Var reads a managed variable's current value.
func (s *Stack) Var(name string) (any, bool) { return s.ws.Var(name) }

// DB exposes the golden-state database (locks, history, snapshots).
func (s *Stack) DB() *statedb.DB { return s.ws.DB() }

// Close drains and releases the stack: lifecycle calls made after Close
// begins fail with *ErrStackClosed, in-flight plan/apply/drift/recover
// operations run to completion first, and only then are the storage
// engine, flight recorder, and event bus released. Close is idempotent —
// concurrent and repeated calls all return the first close's error. Use
// CloseContext to bound the drain wait.
func (s *Stack) Close() error { return s.ws.Close(context.Background()) }

// CloseContext is Close with a bounded wait: when ctx expires before
// in-flight operations finish it returns ctx.Err() and the stack stays
// mid-drain (new calls still fail, resources not yet released); call it
// again to finish once the stragglers exit.
func (s *Stack) CloseContext(ctx context.Context) error { return s.ws.Close(ctx) }

// Telemetry exposes the stack's recorder (nil when telemetry is disabled).
func (s *Stack) Telemetry() *telemetry.Recorder { return s.ws.Telemetry() }

// Events exposes the stack's live event bus.
func (s *Stack) Events() *events.Bus { return s.bus }

// Subscribe registers a live consumer of the stack's ops-plane events. The
// returned subscription's channel receives every matching event published
// after the call; a consumer that falls behind loses oldest events first
// (see Subscription.Dropped) — publishers never block. Close the
// subscription when done.
func (s *Stack) Subscribe(filter EventFilter) *EventSubscription { return s.ws.Subscribe(filter) }

// FlightRecorderPath returns the JSONL events artifact location ("" when no
// journal path is configured).
func (s *Stack) FlightRecorderPath() string { return s.ws.FlightRecorderPath() }

// Cloud exposes the bound cloud interface — the stack's provider runtime,
// so sharing it with another stack shares cache, coalescing, and the AIMD
// window too.
func (s *Stack) Cloud() cloud.Interface { return s.cloudAPI }

// Provider exposes the stack's provider runtime for stats inspection. It
// returns nil when the bound cloud interface is not a runtime (possible for
// stacks constructed through test seams or future non-runtime paths);
// callers must treat nil as "no runtime stats available".
func (s *Stack) Provider() *provider.Runtime {
	rt, ok := s.cloudAPI.(*provider.Runtime)
	if !ok {
		return nil
	}
	return rt
}

// Instances lists the expanded instance addresses.
func (s *Stack) Instances() []string { return s.ws.Instances() }

// Validate runs compile-time validation: schema structure, semantic types,
// and the cloud-level knowledge base (§3.2).
func (s *Stack) Validate() *ValidationResult { return s.ws.Validate() }

// HasStaleJournal reports whether a crashed run's journal is waiting at
// Options.JournalPath.
func (s *Stack) HasStaleJournal() bool { return s.ws.HasStaleJournal() }

// Recover reconciles a crashed run's journal (apply, destroy, or rollback)
// against the cloud and commits the reconciled state: completed ops are
// folded in from their done records, in-doubt ops are re-driven under their
// original idempotency keys, and orphaned resources are adopted or deleted
// via the activity log. Returns (nil, nil) when there is nothing to recover.
// The journal is removed only after a fully clean recovery, so a crash
// during recovery itself is handled by calling Recover again.
func (s *Stack) Recover(ctx context.Context) (*RecoverReport, error) { return s.ws.Recover(ctx) }

// Plan computes a full plan against the golden state, refreshing every
// recorded resource from the cloud first. A stale journal from a crashed
// run is recovered (and committed) before planning.
func (s *Stack) Plan(ctx context.Context) (*Plan, error) { return s.ws.Plan(ctx) }

// PlanIncremental computes an incremental plan confined to the impact scope
// of the given resource-level addresses (§3.3), skipping refresh and
// evaluation outside the scope.
func (s *Stack) PlanIncremental(ctx context.Context, changed ...string) (*Plan, error) {
	return s.ws.PlanIncremental(ctx, changed...)
}

// Replan computes a plan through the stack's replan cache: declarations
// whose fingerprint is unchanged since the last (re)plan and whose recorded
// state has not moved replay their memoized diffs, and only the dirty
// subtree — edited decls, changed inputs, drifted or committed addresses,
// plus transitive dependents — is re-evaluated. The result is byte-identical
// to Plan; the first call after Open is effectively a full plan that warms
// the cache. Refreshes recorded state (batched) like Plan does, so drift
// observed by the refresh dirties exactly the drifted subtrees.
func (s *Stack) Replan(ctx context.Context) (*Plan, error) { return s.ws.Replan(ctx) }

// ReplanOffline is Replan without the cloud refresh: it trusts recorded
// state (like PlanOffline) and re-evaluates only the subtree dirtied by
// configuration edits or state commits since the previous cached plan. This
// is the edit-loop fast path: a one-resource change in a large graph costs
// one subtree, not a full evaluation sweep.
func (s *Stack) ReplanOffline(ctx context.Context) (*Plan, error) { return s.ws.ReplanOffline(ctx) }

// ReplanStats reports what the last Replan/ReplanOffline did: the
// invalidation type ("cold", "config", "state", "clean"), dirty-seed counts,
// and how many resources replayed from cache vs re-evaluated.
func (s *Stack) ReplanStats() plan.CacheStats { return s.ws.ReplanStats() }

// InvalidateReplanCache forces the next Replan to be a full replan.
func (s *Stack) InvalidateReplanCache() { s.ws.InvalidateReplanCache() }

// PlanOffline plans without refreshing from the cloud (fast, trusts state).
func (s *Stack) PlanOffline(ctx context.Context) (*Plan, error) { return s.ws.PlanOffline(ctx) }

// PlanOfflineAt plans against the golden state as of a past serial instead
// of the latest. Requires a backend with version retention (mvcc); other
// backends return statedb.ErrNoSuchSerial for anything but the current
// serial. The returned plan is pinned at that serial, so applying it against
// a state that moved on aborts with *StaleBaseError.
func (s *Stack) PlanOfflineAt(ctx context.Context, serial int) (*Plan, error) {
	return s.ws.PlanOfflineAt(ctx, serial)
}

// Apply executes a plan transactionally: plan-phase policies run first,
// per-resource (or global) locks are held for every pending address across
// the physical apply, and the golden state and time machine are updated
// atomically on completion. Failed operations yield IaC-level diagnoses.
func (s *Stack) Apply(ctx context.Context, p *Plan, opts ApplyOptions) (*ApplyResult, []*Diagnosis, error) {
	return s.ws.Apply(ctx, p, opts)
}

// publishRunFinish emits the run-terminating event plus a provider-runtime
// stats snapshot; retained as a Stack method so package-internal seams can
// drive it on a bare Stack (nil bus and non-runtime clouds are safe).
func (s *Stack) publishRunFinish(runID string, res *ApplyResult) {
	workspace.PublishRunFinish(s.bus, s.Provider(), runID, res)
}

// Destroy deletes everything in the golden state, in reverse dependency
// order, and commits the emptied state.
func (s *Stack) Destroy(ctx context.Context) (*ApplyResult, error) { return s.ws.Destroy(ctx) }

// WatchDrift polls the activity log for out-of-band changes (§3.5). Call
// repeatedly; the cursor advances automatically.
func (s *Stack) WatchDrift(ctx context.Context) (*DriftReport, error) { return s.ws.WatchDrift(ctx) }

// ScanDrift performs a full driftctl-style API scan (expensive).
func (s *Stack) ScanDrift(ctx context.Context) (*DriftReport, error) { return s.ws.ScanDrift(ctx) }

// ReconcileDrift applies drift-phase policies (or the explicit choice) to a
// report and commits the updated state.
func (s *Stack) ReconcileDrift(ctx context.Context, rep *DriftReport, action drift.Action) (*drift.ReconcileResult, error) {
	return s.ws.ReconcileDrift(ctx, rep, action)
}

// PolicyDecisionsForDrift evaluates drift-phase policies over a report.
func (s *Stack) PolicyDecisionsForDrift(rep *DriftReport) ([]Decision, error) {
	return s.ws.PolicyDecisionsForDrift(rep)
}

// Observe feeds runtime metrics to operate-phase policies (autoscaling).
// Returned set_variable/scale decisions are already applied to the stack's
// variables; call Plan+Apply afterwards to enact them.
func (s *Stack) Observe(metrics map[string]any) ([]Decision, error) { return s.ws.Observe(metrics) }

// PlanRollback computes a minimal rollback to a historical serial (§3.4).
func (s *Stack) PlanRollback(serial int) (*RollbackPlan, *State, error) {
	return s.ws.PlanRollback(serial)
}

// ExecuteRollback runs a rollback plan and commits the resulting state.
func (s *Stack) ExecuteRollback(ctx context.Context, p *RollbackPlan, target *State) error {
	return s.ws.ExecuteRollback(ctx, p, target)
}

// Outputs returns the last-applied root outputs as plain Go values.
func (s *Stack) Outputs() map[string]any { return s.ws.Outputs() }

// OutputIsSensitive reports whether an output is declared sensitive;
// display layers substitute a redaction marker for such values.
func (s *Stack) OutputIsSensitive(name string) bool { return s.ws.OutputIsSensitive(name) }

// DisplayOutputs returns outputs with sensitive values redacted, for
// printing to terminals and logs.
func (s *Stack) DisplayOutputs() map[string]any { return s.ws.DisplayOutputs() }
