package cloudless_test

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	cloudless "cloudless"
	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/plan"
	"cloudless/internal/state"
	"cloudless/internal/statedb"
	"cloudless/internal/workload"
)

// encodeFacadePlan canonically serializes everything a plan consumer can
// observe, so tests can assert byte-identity between the cached (Replan) and
// uncached (Plan) paths. EvaluatedInstances is deliberately excluded: it is
// the cost metric the cache exists to shrink, not plan content.
func encodeFacadePlan(p *cloudless.Plan) string {
	var b strings.Builder
	addrs := make([]string, 0, len(p.Changes))
	for a := range p.Changes {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	attrLine := func(m map[string]eval.Value) string {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		var sb strings.Builder
		for _, n := range names {
			fmt.Fprintf(&sb, " %s=%s", n, m[n].String())
		}
		return sb.String()
	}
	for _, a := range addrs {
		ch := p.Changes[a]
		fmt.Fprintf(&b, "%s %s type=%s region=%s id=%s\n", a, ch.Action, ch.Type, ch.Region, ch.ID)
		fmt.Fprintf(&b, "  before:%s\n  after:%s\n", attrLine(ch.Before), attrLine(ch.After))
		fmt.Fprintf(&b, "  changed=%v forced=%v deps=%v\n", ch.ChangedAttrs, ch.ForcedBy, ch.Deps)
	}
	for _, n := range p.Graph.Nodes() {
		deps := p.Graph.Dependencies(n)
		sort.Strings(deps)
		fmt.Fprintf(&b, "g %s <- %v\n", n, deps)
	}
	b.WriteString(p.Summary())
	return b.String()
}

// TestReplanMatchesFullPlanOnEveryBackend is the facade-level acceptance
// property for incremental replanning: on every storage backend (or just
// $CLOUDLESS_STATE_BACKEND under the CI matrix), Replan is byte-identical to
// Plan through the whole lifecycle — cold, clean, config edit, apply-driven
// serial advance, and out-of-band drift — while re-evaluating only dirty
// subtrees.
func TestReplanMatchesFullPlanOnEveryBackend(t *testing.T) {
	backends := statedb.Backends()
	if b := os.Getenv("CLOUDLESS_STATE_BACKEND"); b != "" {
		backends = []string{b}
	}
	for _, backend := range backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			ctx := context.Background()
			dir := ""
			if backend == cloudless.BackendWAL {
				dir = t.TempDir()
			}
			sim := newSim()
			s := openStackOn(t, sim, backend, dir)

			// Deploy, then warm the cache: the first Replan is a full plan.
			p, err := s.Plan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Apply(ctx, p, cloudless.ApplyOptions{}); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Replan(ctx); err != nil {
				t.Fatal(err)
			}
			if st := s.ReplanStats(); st.Invalidation != "cold" {
				t.Fatalf("warming invalidation = %q, want cold", st.Invalidation)
			}

			// Clean: full replay, zero evaluation, identical plan.
			rp, err := s.Replan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			fp, err := s.Plan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if encodeFacadePlan(rp) != encodeFacadePlan(fp) {
				t.Fatalf("clean replan differs from full plan:\n--- replan\n%s\n--- plan\n%s",
					encodeFacadePlan(rp), encodeFacadePlan(fp))
			}
			if st := s.ReplanStats(); st.Invalidation != "clean" {
				t.Errorf("invalidation = %q, want clean", st.Invalidation)
			}
			if rp.EvaluatedInstances != 0 {
				t.Errorf("clean replan evaluated %d instances, want 0", rp.EvaluatedInstances)
			}

			// Config edit: scaling vm_count dirties the NIC and VM decls
			// (their instance sets change); the VPC and subnet replay.
			if err := s.SetVar("vm_count", 3); err != nil {
				t.Fatal(err)
			}
			rp2, err := s.Replan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			fp2, err := s.Plan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if encodeFacadePlan(rp2) != encodeFacadePlan(fp2) {
				t.Fatalf("post-edit replan differs from full plan:\n--- replan\n%s\n--- plan\n%s",
					encodeFacadePlan(rp2), encodeFacadePlan(fp2))
			}
			if st := s.ReplanStats(); st.Invalidation != "config" {
				t.Errorf("invalidation = %q, want config", st.Invalidation)
			}
			if rp2.EvaluatedInstances >= fp2.EvaluatedInstances {
				t.Errorf("edit replan evaluated %d >= full %d: no savings",
					rp2.EvaluatedInstances, fp2.EvaluatedInstances)
			}
			if rp2.Creates != 2 { // 1 NIC + 1 VM
				t.Errorf("scale-out replan: %s", rp2.Summary())
			}

			// Apply the scale-out (batched, for good measure): the serial
			// advance dirties exactly the committed addresses.
			if _, _, err := s.Apply(ctx, rp2, cloudless.ApplyOptions{BatchOps: true}); err != nil {
				t.Fatal(err)
			}
			rp3, err := s.Replan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			fp3, err := s.Plan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if encodeFacadePlan(rp3) != encodeFacadePlan(fp3) {
				t.Fatalf("post-apply replan differs from full plan")
			}
			if rp3.PendingCount() != 0 {
				t.Errorf("post-apply replan not converged: %s", rp3.Summary())
			}
			if st := s.ReplanStats(); st.Invalidation != "state" {
				t.Errorf("post-apply invalidation = %q, want state", st.Invalidation)
			}

			// Out-of-band drift: a foreign principal's edit is observed by
			// the replan's refresh and dirties the drifted subtree.
			vpcID := s.DB().Snapshot().Get("aws_vpc.net").ID
			if _, err := sim.Update(ctx, cloud.UpdateRequest{
				Type: "aws_vpc", ID: vpcID,
				Attrs:     map[string]eval.Value{"enable_dns": eval.False},
				Principal: "legacy-script",
			}); err != nil {
				t.Fatal(err)
			}
			rp4, err := s.Replan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			fp4, err := s.Plan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if encodeFacadePlan(rp4) != encodeFacadePlan(fp4) {
				t.Fatalf("post-drift replan differs from full plan:\n--- replan\n%s\n--- plan\n%s",
					encodeFacadePlan(rp4), encodeFacadePlan(fp4))
			}
			if st := s.ReplanStats(); st.Invalidation != "state" {
				t.Errorf("post-drift invalidation = %q, want state", st.Invalidation)
			}
		})
	}
}

// TestReplanCacheEquivalenceProperty: across randomized DAG workloads, a
// shared replan cache fed a stream of config edits and state perturbations
// always produces plans byte-identical to uncached full plans, with strictly
// less evaluation on the incremental steps.
func TestReplanCacheEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			ctx := context.Background()
			files := workload.RandomDAG(20, seed)
			ex := expandFiles(t, files)
			sim := newSim()
			p, diags := plan.Compute(ctx, ex, state.New(), plan.Options{})
			if diags.HasErrors() {
				t.Fatal(diags.Error())
			}
			res := apply.Apply(ctx, sim, p, apply.Options{Principal: "cloudless"})
			if err := res.Err(); err != nil {
				t.Fatal(err)
			}
			st := res.State

			cache := plan.NewReplanCache()
			computeCached := func(ex2 *config.Expansion, prior *state.State) *cloudless.Plan {
				t.Helper()
				cp, diags := plan.Compute(ctx, ex2, prior, plan.Options{Cache: cache})
				if diags.HasErrors() {
					t.Fatal(diags.Error())
				}
				return cp
			}
			computeFull := func(ex2 *config.Expansion, prior *state.State) *cloudless.Plan {
				t.Helper()
				fp, diags := plan.Compute(ctx, ex2, prior, plan.Options{})
				if diags.HasErrors() {
					t.Fatal(diags.Error())
				}
				return fp
			}

			// Warm, then clean replay.
			computeCached(ex, st)
			cp := computeCached(ex, st)
			fp := computeFull(ex, st)
			if encodeFacadePlan(cp) != encodeFacadePlan(fp) {
				t.Fatalf("clean replay differs from full plan")
			}
			if cp.EvaluatedInstances != 0 {
				t.Errorf("clean replay evaluated %d instances", cp.EvaluatedInstances)
			}

			// Config edit: rename one VM.
			target := int(seed) % 3
			files["rand.ccl"] = replaceOnce(files["rand.ccl"],
				fmt.Sprintf(`name    = "r-vm-%d"`, target),
				fmt.Sprintf(`name    = "r-vm-%d-edited"`, target))
			ex2 := expandFiles(t, files)
			cp2 := computeCached(ex2, st)
			fp2 := computeFull(ex2, st)
			if encodeFacadePlan(cp2) != encodeFacadePlan(fp2) {
				t.Fatalf("post-edit cached plan differs from full plan:\n--- cached\n%s\n--- full\n%s",
					encodeFacadePlan(cp2), encodeFacadePlan(fp2))
			}
			if cp2.EvaluatedInstances >= fp2.EvaluatedInstances {
				t.Errorf("edit: cached evaluated %d >= full %d",
					cp2.EvaluatedInstances, fp2.EvaluatedInstances)
			}

			// State perturbation at an advanced serial (what an external
			// commit looks like): dirty exactly the perturbed subtree.
			moved := st.Clone()
			moved.Serial++
			addrs := moved.Addrs()
			perturbed := addrs[int(seed)%len(addrs)]
			moved.Get(perturbed).Attrs["name"] = eval.String("perturbed-" + perturbed)
			cp3 := computeCached(ex2, moved)
			fp3 := computeFull(ex2, moved)
			if encodeFacadePlan(cp3) != encodeFacadePlan(fp3) {
				t.Fatalf("post-perturbation cached plan differs from full plan:\n--- cached\n%s\n--- full\n%s",
					encodeFacadePlan(cp3), encodeFacadePlan(fp3))
			}
			if cp3.EvaluatedInstances >= fp3.EvaluatedInstances {
				t.Errorf("perturbation: cached evaluated %d >= full %d",
					cp3.EvaluatedInstances, fp3.EvaluatedInstances)
			}
		})
	}
}
