// Package reconcile implements the continuous reconciliation controller
// (DESIGN.md S29): the converge loop that turns one-shot apply/drift/repair
// into a self-healing workspace. A Controller subscribes to the cloud's
// activity log (cloud.WaitActivity) and the workspace's ops-plane bus
// (drift.detected), maps foreign events to impacted state addresses,
// debounces them into batches, verifies just those addresses with a scoped
// drift scan (drift.ScanAddrs), and repairs confirmed drift through the
// guarded apply path the workspace provides.
//
// The controller is built so auto-repair can never make things worse:
//
//   - every repair runs guarded (canary + fuse + journal-backed rollback) —
//     the Repair hook is required to provide that;
//   - each address backs off exponentially after failed repairs;
//   - an address that keeps re-drifting after successful repairs (a flap —
//     usually a fight with another controller) is suppressed and surfaced
//     instead of hammered;
//   - repeated repair failures trip a circuit breaker that degrades the
//     whole controller to detect-only mode for a cooloff, then half-opens
//     with a single trial batch.
//
// A low-frequency FullScan safety net catches what events cannot: unmanaged
// creates, events lost to a subscriber overflow (Subscription.Dropped), and
// anything missed while the daemon was down. The activity watermark is
// acknowledged through OnCheckpoint only once every event at or below it has
// been verified (and repaired, when repair is on), so a restarted controller
// resumes from its journaled watermark with no missed drift, and re-verifies
// instead of re-repairing anything the previous life already fixed.
package reconcile

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/drift"
	"cloudless/internal/events"
	"cloudless/internal/state"
	"cloudless/internal/telemetry"
)

// Controller modes.
const (
	// ModeRepair verifies and auto-repairs through the guarded apply path.
	ModeRepair = "repair"
	// ModeDetect verifies and surfaces drift but never mutates the cloud.
	ModeDetect = "detect"
)

// Tuning holds the controller's timing and damping knobs. Zero values take
// the defaults below; FullScanEvery < 0 disables the periodic safety net.
type Tuning struct {
	// Debounce batches a burst of foreign events into one scoped scan.
	Debounce time.Duration `json:"debounce,omitempty"`
	// PollWait bounds one activity long-poll.
	PollWait time.Duration `json:"poll_wait,omitempty"`
	// FullScanEvery schedules the periodic FullScan safety net.
	FullScanEvery time.Duration `json:"full_scan_every,omitempty"`
	// BackoffBase/BackoffMax bound the per-address exponential backoff
	// after failed repairs.
	BackoffBase time.Duration `json:"backoff_base,omitempty"`
	BackoffMax  time.Duration `json:"backoff_max,omitempty"`
	// FlapThreshold repairs of one address within FlapWindow suppress it.
	FlapWindow    time.Duration `json:"flap_window,omitempty"`
	FlapThreshold int           `json:"flap_threshold,omitempty"`
	// BreakerThreshold consecutive failed repair batches open the circuit
	// breaker (detect-only) for BreakerCooloff.
	BreakerThreshold int           `json:"breaker_threshold,omitempty"`
	BreakerCooloff   time.Duration `json:"breaker_cooloff,omitempty"`
	// BusBuffer sizes the drift.detected subscription (0 = bus default).
	BusBuffer int `json:"bus_buffer,omitempty"`
}

func (t *Tuning) fill() {
	if t.Debounce <= 0 {
		t.Debounce = 100 * time.Millisecond
	}
	if t.PollWait <= 0 {
		t.PollWait = 2 * time.Second
	}
	if t.FullScanEvery == 0 {
		t.FullScanEvery = 5 * time.Minute
	}
	if t.BackoffBase <= 0 {
		t.BackoffBase = time.Second
	}
	if t.BackoffMax <= 0 {
		t.BackoffMax = 2 * time.Minute
	}
	if t.FlapWindow <= 0 {
		t.FlapWindow = time.Minute
	}
	if t.FlapThreshold <= 0 {
		t.FlapThreshold = 3
	}
	if t.BreakerThreshold <= 0 {
		t.BreakerThreshold = 3
	}
	if t.BreakerCooloff <= 0 {
		t.BreakerCooloff = time.Minute
	}
}

// RepairOutcome is what one guarded repair attempt reports back. The
// controller trusts its own confirmation scan (not the outcome) to decide
// per-address success; the outcome supplies error detail and the rollback
// flag.
type RepairOutcome struct {
	// Applied counts cloud operations performed before any rollback.
	Applied int
	// Reverted reports that the guard's auto-rollback undid the batch.
	Reverted bool
	// Errors carries per-address failure detail.
	Errors map[string]string
}

// Checkpoint is the durable resume state a host persists via OnCheckpoint
// and feeds back through Config on restart.
type Checkpoint struct {
	Enabled   bool    `json:"enabled"`
	Mode      string  `json:"mode"`
	Watermark int64   `json:"watermark"`
	Tuning    *Tuning `json:"tuning,omitempty"`
}

// Config wires a Controller to its workspace. The function hooks keep this
// package free of a workspace dependency (workspace imports reconcile, not
// the other way around).
type Config struct {
	// Name labels logs and status output (usually the workspace name).
	Name string
	// Principal is "us": activity by this principal is expected, not drift.
	Principal string
	// Cloud is the activity-log source (long-polled via cloud.WaitActivity).
	Cloud cloud.Interface
	// Bus, when set, feeds externally-detected drift (one-shot drift/scan
	// jobs) into the converge loop and receives reconcile.* progress events.
	Bus *events.Bus
	// Registry, when set, receives the reconcile.* counters and histograms.
	Registry *telemetry.Registry

	// Snapshot returns the current golden state (for event -> addr mapping).
	Snapshot func() *state.State
	// Verify runs a scoped drift scan over the given addresses.
	Verify func(ctx context.Context, addrs []string) (*drift.Report, error)
	// FullScan runs the expensive full-API safety-net scan.
	FullScan func(ctx context.Context) (*drift.Report, error)
	// Repair reverts a drift report through the guarded apply path. Only
	// consulted in ModeRepair. A returned *drift.ErrStaleReport is not a
	// failure: the baseline moved and the controller re-verifies.
	Repair func(ctx context.Context, rep *drift.Report) (*RepairOutcome, error)

	// Mode is ModeRepair (default) or ModeDetect.
	Mode string
	// Watermark resumes the activity cursor; -1 anchors at the log tail
	// (first enable: pre-existing history is not replayed).
	Watermark int64
	// OnCheckpoint receives the acknowledged watermark whenever it
	// advances — everything at or below it has been fully handled.
	OnCheckpoint func(watermark int64)

	Tuning Tuning
}

// addrState is the per-address controller state machine:
//
//	ok -> pending -> (verifying) -> drifted -> (repairing) -> ok
//	                                   |-> backoff ----------^
//	                                   |-> suppressed (flap) -> pending
type addrState struct {
	status     string // "pending" | "drifted" | "backoff" | "suppressed" | "ok"
	kind       string
	firstSeq   int64     // earliest unacknowledged activity seq implicating this addr
	eventTime  time.Time // earliest implicating event time (time-to-detect)
	detectedAt time.Time // when the current drift was first confirmed
	drifts     int
	repairs    int
	failures   int
	attempts   int       // consecutive failed repairs (backoff exponent)
	next       time.Time // no repair before this (backoff gate)
	recent     []time.Time
	suppressed time.Time // suppressed until (zero = not suppressed)
	lastErr    string
	lastActor  string
}

// AddrStatus is one address's externally visible state.
type AddrStatus struct {
	Addr       string  `json:"addr"`
	State      string  `json:"state"`
	Kind       string  `json:"kind,omitempty"`
	Drifts     int     `json:"drifts"`
	Repairs    int     `json:"repairs"`
	Failures   int     `json:"failures"`
	LastActor  string  `json:"last_actor,omitempty"`
	LastError  string  `json:"last_error,omitempty"`
	RetryInMs  float64 `json:"retry_in_ms,omitempty"`
	SuppressMs float64 `json:"suppressed_for_ms,omitempty"`
}

// Status is a point-in-time snapshot of the controller.
type Status struct {
	Enabled bool   `json:"enabled"`
	Mode    string `json:"mode"`
	State   string `json:"state"` // idle | verifying | repairing
	// DetectOnly reports that repairs are currently off — either by mode
	// or because the circuit breaker is open.
	DetectOnly  bool  `json:"detect_only"`
	BreakerOpen bool  `json:"breaker_open"`
	Watermark   int64 `json:"watermark"`  // acknowledged (durable) cursor
	IngestSeq   int64 `json:"ingest_seq"` // highest activity seq seen

	EventsSeen     int64 `json:"events_seen"`
	EventsDropped  int64 `json:"events_dropped"`
	Detected       int64 `json:"detected"`
	Repaired       int64 `json:"repaired"`
	RepairFailures int64 `json:"repair_failures"`
	Suppressed     int64 `json:"suppressed"`
	BreakerTrips   int64 `json:"breaker_trips"`
	ScopedScans    int64 `json:"scoped_scans"`
	FullScans      int64 `json:"full_scans"`
	Unmanaged      int64 `json:"unmanaged"` // unmanaged sightings (events + scans)

	Addrs []AddrStatus `json:"addrs,omitempty"`
}

// Controller is one workspace's converge loop. Create with Start; stop with
// Stop. All methods are safe for concurrent use.
type Controller struct {
	cfg Config
	tun Tuning

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	wake   chan struct{}

	mu        sync.Mutex
	addrs     map[string]*addrState
	dirty     map[string]bool
	state     string
	ack       int64
	ingestSeq int64
	retryAt   time.Time // converge-loop error backoff

	breakerOpen  bool
	breakerUntil time.Time
	consecFails  int

	needFullScan   bool
	fullScanReason string
	fullScanAt     time.Time

	st Status // counter fields only
}

// Start validates the config, anchors the watermark, and spawns the
// controller's loops.
func Start(cfg Config) (*Controller, error) {
	if cfg.Cloud == nil || cfg.Snapshot == nil || cfg.Verify == nil || cfg.FullScan == nil {
		return nil, errors.New("reconcile: Cloud, Snapshot, Verify and FullScan are required")
	}
	switch cfg.Mode {
	case "":
		cfg.Mode = ModeRepair
	case ModeRepair, ModeDetect:
	default:
		return nil, fmt.Errorf("reconcile: unknown mode %q (%s|%s)", cfg.Mode, ModeRepair, ModeDetect)
	}
	if cfg.Mode == ModeRepair && cfg.Repair == nil {
		return nil, errors.New("reconcile: ModeRepair requires a Repair hook")
	}
	tun := cfg.Tuning
	tun.fill()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Controller{
		cfg:    cfg,
		tun:    tun,
		ctx:    ctx,
		cancel: cancel,
		wake:   make(chan struct{}, 1),
		addrs:  map[string]*addrState{},
		dirty:  map[string]bool{},
		state:  "idle",
	}
	if tun.FullScanEvery > 0 {
		c.fullScanAt = time.Now().Add(tun.FullScanEvery)
	}

	// Anchor the cursor. A fresh enable (Watermark < 0) starts at the log
	// tail: pre-existing history is not drift we missed, it is history.
	start := cfg.Watermark
	if start < 0 {
		start = 0
		actx, acancel := context.WithTimeout(ctx, 10*time.Second)
		if evs, err := cfg.Cloud.Activity(actx, 0); err == nil && len(evs) > 0 {
			start = evs[len(evs)-1].Seq
		}
		acancel()
	}
	c.ack = start
	c.ingestSeq = start
	c.checkpoint(start)

	c.wg.Add(2)
	go c.activityLoop(start)
	go c.convergeLoop()
	if cfg.Bus != nil {
		// Subscribe before Start returns, so drift published right after
		// enabling cannot slip past an unregistered subscription.
		sub := cfg.Bus.Subscribe(events.Filter{Kinds: []string{"drift.detected"}}, tun.BusBuffer)
		c.wg.Add(1)
		go c.busLoop(sub)
	}
	return c, nil
}

// Stop shuts the controller down and waits (bounded by ctx) for its loops
// to exit. In-flight verify/repair calls see a cancelled context.
func (c *Controller) Stop(ctx context.Context) error {
	c.cancel()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Mode returns the configured mode (not the breaker-degraded one).
func (c *Controller) Mode() string { return c.cfg.Mode }

// Watermark returns the acknowledged activity cursor.
func (c *Controller) Watermark() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ack
}

// Status snapshots the controller, per-address states sorted by address.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := c.st
	out.Enabled = c.ctx.Err() == nil
	out.Mode = c.cfg.Mode
	out.State = c.state
	out.BreakerOpen = c.breakerOpen
	out.DetectOnly = c.cfg.Mode == ModeDetect || c.breakerOpen
	out.Watermark = c.ack
	out.IngestSeq = c.ingestSeq
	for addr, as := range c.addrs {
		st := AddrStatus{
			Addr: addr, State: as.status, Kind: as.kind,
			Drifts: as.drifts, Repairs: as.repairs, Failures: as.failures,
			LastActor: as.lastActor, LastError: as.lastErr,
		}
		if c.dirty[addr] && (as.status == "ok" || as.status == "") {
			st.State = "pending"
		}
		if as.status == "backoff" && as.next.After(now) {
			st.RetryInMs = float64(as.next.Sub(now)) / float64(time.Millisecond)
		}
		if as.status == "suppressed" && as.suppressed.After(now) {
			st.SuppressMs = float64(as.suppressed.Sub(now)) / float64(time.Millisecond)
		}
		out.Addrs = append(out.Addrs, st)
	}
	sort.Slice(out.Addrs, func(i, j int) bool { return out.Addrs[i].Addr < out.Addrs[j].Addr })
	return out
}

// ---- event ingestion ----

// activityLoop tails the cloud activity log from start, mapping foreign
// events to state addresses.
func (c *Controller) activityLoop(start int64) {
	defer c.wg.Done()
	cursor := start
	for c.ctx.Err() == nil {
		evs, err := cloud.WaitActivity(c.ctx, c.cfg.Cloud, cursor, c.tun.PollWait)
		if err != nil {
			if c.ctx.Err() != nil {
				return
			}
			// Transient (throttle, restartings sim): back off briefly.
			sleepCtx(c.ctx, c.tun.PollWait)
			continue
		}
		if len(evs) == 0 {
			continue
		}
		cursor = c.ingest(evs, cursor)
	}
}

// ingest folds one activity batch into the dirty set and advances the
// in-memory cursor (the durable ack lags until the work is done).
func (c *Controller) ingest(evs []cloud.Event, cursor int64) int64 {
	snap := c.cfg.Snapshot()
	marked := false
	c.mu.Lock()
	for _, ev := range evs {
		if ev.Seq > cursor {
			cursor = ev.Seq
		}
		c.st.EventsSeen++
		c.counter("reconcile.events").Inc()
		if ev.Principal == c.cfg.Principal {
			continue
		}
		rs := snap.ByID(ev.ID)
		if rs == nil {
			if ev.Op == cloud.OpCreate {
				// Unmanaged create: invisible to a scoped verify; the
				// FullScan safety net owns it. Count the sighting.
				c.st.Unmanaged++
			}
			continue
		}
		c.markLocked(rs.Addr, ev.Seq, ev.Time, ev.Principal)
		marked = true
	}
	c.ingestSeq = cursor
	c.mu.Unlock()
	if marked {
		c.kick()
	} else {
		// Nothing to verify: the batch was our own echo or unmanaged churn,
		// so it is already fully handled and the ack can advance past it.
		c.recomputeAck()
	}
	return cursor
}

// busLoop feeds externally-detected drift (one-shot drift/scan jobs on the
// same workspace) into the converge loop and watches its own subscription
// for overflow: dropped events mean silently missed drift, so a gap
// schedules a catch-up FullScan.
func (c *Controller) busLoop(sub *events.Subscription) {
	defer c.wg.Done()
	defer sub.Close()
	var seenDropped int64
	for {
		select {
		case <-c.ctx.Done():
			return
		case e, ok := <-sub.C():
			if !ok {
				return
			}
			if d := sub.Dropped(); d > seenDropped {
				delta := d - seenDropped
				seenDropped = d
				c.mu.Lock()
				c.st.EventsDropped += delta
				c.needFullScan = true
				c.fullScanReason = "events-dropped"
				c.mu.Unlock()
				c.counter("reconcile.events_dropped").Add(delta)
				c.publish(events.Event{Kind: "reconcile.gap", N: delta})
				c.kick()
			}
			// Our own scoped verifier publishes drift.detected too; feeding
			// it back would make the loop chase its own tail.
			if e.Wave == "scoped" || e.Addr == "" {
				continue
			}
			c.mu.Lock()
			c.markLocked(e.Addr, 0, time.Unix(0, e.Time), e.Principal)
			if e.Action != "" {
				c.addrs[e.Addr].kind = e.Action
			}
			c.mu.Unlock()
			c.kick()
		}
	}
}

// markLocked flags one address for scoped verification. seq 0 means the mark
// did not come from the activity stream and must not pin the watermark.
func (c *Controller) markLocked(addr string, seq int64, at time.Time, actor string) {
	as := c.addrs[addr]
	if as == nil {
		as = &addrState{status: "ok"}
		c.addrs[addr] = as
	}
	if seq > 0 && (as.firstSeq == 0 || seq < as.firstSeq) {
		as.firstSeq = seq
	}
	if !at.IsZero() && at.Unix() > 0 && (as.eventTime.IsZero() || at.Before(as.eventTime)) {
		as.eventTime = at
	}
	if actor != "" {
		as.lastActor = actor
	}
	c.dirty[addr] = true
}

// kick nudges the converge loop.
func (c *Controller) kick() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// ---- converge loop ----

func (c *Controller) convergeLoop() {
	defer c.wg.Done()
	for {
		d := c.untilNextDeadline()
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-c.ctx.Done():
				t.Stop()
				return
			case <-c.wake:
				t.Stop()
				// Debounce: let a burst of foreign events accumulate into
				// one scoped scan instead of one scan per event.
				if !sleepCtx(c.ctx, c.tun.Debounce) {
					return
				}
			case <-t.C:
			}
		}
		if c.ctx.Err() != nil {
			return
		}
		c.round()
	}
}

// untilNextDeadline computes how long the converge loop may sleep: zero
// when work is already due.
func (c *Controller) untilNextDeadline() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	next := now.Add(time.Minute) // re-evaluate at least this often
	due := func(t time.Time) {
		if !t.IsZero() && t.Before(next) {
			next = t
		}
	}
	if len(c.dirty) > 0 || c.needFullScan {
		if c.retryAt.After(now) {
			due(c.retryAt)
		} else {
			return 0
		}
	}
	for _, as := range c.addrs {
		switch as.status {
		case "backoff":
			due(as.next)
		case "suppressed":
			due(as.suppressed)
		}
	}
	if c.tun.FullScanEvery > 0 {
		due(c.fullScanAt)
	}
	d := time.Until(next)
	if d < 0 {
		d = 0
	}
	return d
}

// round runs one converge iteration: safety-net scan if due, then a scoped
// verify over the batch, then guarded repair of what is eligible.
func (c *Controller) round() {
	now := time.Now()
	c.mu.Lock()
	if c.retryAt.After(now) {
		c.mu.Unlock()
		return
	}
	runFull, reason := false, ""
	if c.needFullScan {
		runFull, reason = true, c.fullScanReason
		c.needFullScan = false
	} else if c.tun.FullScanEvery > 0 && !c.fullScanAt.After(now) {
		runFull, reason = true, "periodic"
	}
	c.mu.Unlock()
	if runFull {
		c.fullScan(reason)
		now = time.Now()
	}

	batch := c.takeBatch(now)
	if len(batch) == 0 {
		c.recomputeAck()
		return
	}

	c.setState("verifying")
	defer c.setState("idle")
	rep, err := c.verify(batch)
	if err != nil {
		c.deferBatch(batch)
		return
	}
	drifted := c.recordVerify(batch, rep, time.Now())

	eligible := c.eligibleRepairs(drifted)
	if len(eligible) > 0 {
		c.setState("repairing")
		c.repairBatch(rep, eligible)
	}
	c.recomputeAck()
}

// takeBatch drains the dirty set plus every address whose backoff or
// suppression window has expired.
func (c *Controller) takeBatch(now time.Time) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := map[string]bool{}
	for addr := range c.dirty {
		set[addr] = true
	}
	c.dirty = map[string]bool{}
	for addr, as := range c.addrs {
		switch as.status {
		case "drifted":
			set[addr] = true
		case "backoff":
			if !as.next.After(now) {
				set[addr] = true
			}
		case "suppressed":
			if !as.suppressed.After(now) {
				as.status = "drifted"
				as.suppressed = time.Time{}
				as.recent = nil // a fresh chance: flap memory resets
				set[addr] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for addr := range set {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// deferBatch re-queues a batch after a transient verify failure, with a
// short delay so a persistent error cannot hot-spin the loop.
func (c *Controller) deferBatch(batch []string) {
	c.mu.Lock()
	for _, addr := range batch {
		c.dirty[addr] = true
	}
	c.retryAt = time.Now().Add(c.tun.BackoffBase)
	c.mu.Unlock()
}

func (c *Controller) verify(addrs []string) (*drift.Report, error) {
	c.mu.Lock()
	c.st.ScopedScans++
	c.mu.Unlock()
	c.counter("reconcile.scoped_scans").Inc()
	return c.cfg.Verify(c.busCtx(), addrs)
}

// recordVerify folds a scoped report into the per-address states, returning
// the set of currently drifted addresses.
func (c *Controller) recordVerify(batch []string, rep *drift.Report, now time.Time) map[string]drift.Item {
	drifted := map[string]drift.Item{}
	for _, it := range rep.Items {
		if it.Addr != "" {
			drifted[it.Addr] = it
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, addr := range batch {
		as := c.addrs[addr]
		if as == nil {
			as = &addrState{status: "ok"}
			c.addrs[addr] = as
		}
		it, isDrifted := drifted[addr]
		if !isDrifted {
			// Clean: either never really drifted, repaired by an earlier
			// round, or healed externally. Resolved either way.
			c.resolveLocked(addr, as)
			continue
		}
		as.kind = it.Kind.String()
		if it.Actor != "" {
			as.lastActor = it.Actor
		}
		if as.status != "drifted" && as.status != "backoff" && as.status != "suppressed" {
			// Fresh detection (not a retry of known drift).
			as.status = "drifted"
			as.detectedAt = now
			as.drifts++
			c.st.Detected++
			c.counter("reconcile.detected").Inc()
			if !as.eventTime.IsZero() {
				ttd := now.Sub(as.eventTime)
				c.histogram("reconcile.ttd_ms").Observe(float64(ttd) / float64(time.Millisecond))
			}
		}
	}
	return drifted
}

// resolveLocked clears an address's drift bookkeeping (it is clean now) and
// releases its watermark pin.
func (c *Controller) resolveLocked(addr string, as *addrState) {
	as.status = "ok"
	as.firstSeq = 0
	as.eventTime = time.Time{}
	as.attempts = 0
	as.next = time.Time{}
	as.lastErr = ""
	_ = addr
}

// eligibleRepairs filters the drifted set down to what may be repaired now:
// repair mode, breaker closed (or half-open trial), no backoff gate, not
// flap-suppressed.
func (c *Controller) eligibleRepairs(drifted map[string]drift.Item) []string {
	if c.cfg.Mode != ModeRepair || len(drifted) == 0 {
		return nil
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.breakerOpen && c.breakerUntil.After(now) {
		return nil // open: detect-only until the cooloff expires
	}
	var out []string
	for addr := range drifted {
		as := c.addrs[addr]
		if as == nil {
			continue
		}
		if as.status == "suppressed" && as.suppressed.After(now) {
			continue
		}
		if as.next.After(now) {
			as.status = "backoff"
			continue
		}
		// Flap damping: an address we keep successfully repairing that
		// keeps coming back is a fight with some other actor. Suppress it
		// and surface it instead of joining the fight.
		recent := as.recent[:0]
		for _, t := range as.recent {
			if now.Sub(t) <= c.tun.FlapWindow {
				recent = append(recent, t)
			}
		}
		as.recent = recent
		if len(as.recent) >= c.tun.FlapThreshold {
			as.status = "suppressed"
			as.suppressed = now.Add(c.tun.FlapWindow)
			as.firstSeq = 0 // surfaced, not missed: don't pin the watermark
			c.st.Suppressed++
			c.counter("reconcile.suppressions").Inc()
			c.publish(events.Event{Kind: "reconcile.suppressed", Addr: addr,
				Action: as.kind, N: int64(len(as.recent))})
			continue
		}
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// repairBatch runs one guarded repair over the eligible addresses and
// confirms the result with a second scoped scan — the confirmation, not the
// apply result, decides per-address success.
func (c *Controller) repairBatch(rep *drift.Report, eligible []string) {
	inBatch := map[string]bool{}
	for _, addr := range eligible {
		inBatch[addr] = true
	}
	sub := &drift.Report{Method: rep.Method, BaseSerial: rep.BaseSerial}
	for _, it := range rep.Items {
		if inBatch[it.Addr] {
			sub.Items = append(sub.Items, it)
		}
	}

	out, err := c.cfg.Repair(c.busCtx(), sub)
	var stale *drift.ErrStaleReport
	if errors.As(err, &stale) {
		// The golden state advanced between verify and repair (a concurrent
		// apply). Not a repair failure — re-verify against the new baseline.
		c.deferBatch(eligible)
		return
	}
	halfOpenTrial := false
	c.mu.Lock()
	if c.breakerOpen && !c.breakerUntil.After(time.Now()) {
		halfOpenTrial = true
	}
	c.mu.Unlock()

	conf, cerr := c.verify(eligible)
	now := time.Now()
	still := map[string]bool{}
	if cerr == nil {
		for _, it := range conf.Items {
			if it.Addr != "" {
				still[it.Addr] = true
			}
		}
	}

	succeeded, failed := 0, 0
	c.mu.Lock()
	for _, addr := range eligible {
		as := c.addrs[addr]
		if as == nil {
			continue
		}
		if cerr == nil && !still[addr] {
			succeeded++
			as.repairs++
			as.recent = append(as.recent, now)
			ttr := now.Sub(as.detectedAt)
			kind := as.kind
			c.st.Repaired++
			c.resolveLocked(addr, as)
			c.mu.Unlock()
			c.counter("reconcile.repaired").Inc()
			c.histogram("reconcile.ttr_ms").Observe(float64(ttr) / float64(time.Millisecond))
			c.publish(events.Event{Kind: "reconcile.repaired", Addr: addr,
				Action: kind, Ms: float64(ttr) / float64(time.Millisecond)})
			c.mu.Lock()
			continue
		}
		failed++
		as.failures++
		as.attempts++
		as.status = "backoff"
		as.next = now.Add(backoff(c.tun.BackoffBase, c.tun.BackoffMax, as.attempts))
		switch {
		case out != nil && out.Errors[addr] != "":
			as.lastErr = out.Errors[addr]
		case err != nil:
			as.lastErr = err.Error()
		case cerr != nil:
			as.lastErr = "confirmation scan failed: " + cerr.Error()
		case out != nil && out.Reverted:
			as.lastErr = "guarded repair rolled back"
		default:
			as.lastErr = "drift persisted after repair"
		}
		c.st.RepairFailures++
		lastErr, attempts := as.lastErr, as.attempts
		c.mu.Unlock()
		c.counter("reconcile.repair_failures").Inc()
		c.publish(events.Event{Kind: "reconcile.repair_fail", Addr: addr,
			Err: lastErr, N: int64(attempts)})
		c.mu.Lock()
	}

	// Circuit breaker: batch-level accounting. Any success proves the
	// repair path works and resets the streak (closing a half-open
	// breaker); an all-failure batch extends it.
	if succeeded > 0 {
		c.consecFails = 0
		if c.breakerOpen {
			c.breakerOpen = false
			c.mu.Unlock()
			c.publish(events.Event{Kind: "reconcile.breaker_close"})
			c.mu.Lock()
		}
	} else if failed > 0 {
		c.consecFails++
		trip := false
		if halfOpenTrial {
			// The trial failed: stay open for another cooloff.
			c.breakerUntil = now.Add(c.tun.BreakerCooloff)
		} else if !c.breakerOpen && c.consecFails >= c.tun.BreakerThreshold {
			c.breakerOpen = true
			c.breakerUntil = now.Add(c.tun.BreakerCooloff)
			c.st.BreakerTrips++
			trip = true
		}
		if trip {
			fails := c.consecFails
			c.mu.Unlock()
			c.counter("reconcile.breaker_trips").Inc()
			c.publish(events.Event{Kind: "reconcile.breaker_open", N: int64(fails)})
			c.mu.Lock()
		}
	}
	c.mu.Unlock()
}

// fullScan runs the safety-net scan: managed drift feeds the normal scoped
// verify -> repair path; unmanaged sightings are counted and surfaced.
func (c *Controller) fullScan(reason string) {
	c.mu.Lock()
	c.st.FullScans++
	if c.tun.FullScanEvery > 0 {
		c.fullScanAt = time.Now().Add(c.tun.FullScanEvery)
	}
	c.mu.Unlock()
	c.counter("reconcile.full_scans").Inc()
	rep, err := c.cfg.FullScan(c.busCtx())
	if err != nil {
		c.mu.Lock()
		c.retryAt = time.Now().Add(c.tun.BackoffBase)
		c.mu.Unlock()
		return
	}
	marked := int64(0)
	c.mu.Lock()
	for _, it := range rep.Items {
		if it.Addr == "" {
			c.st.Unmanaged++
			continue
		}
		c.markLocked(it.Addr, 0, time.Time{}, it.Actor)
		c.addrs[it.Addr].kind = it.Kind.String()
		marked++
	}
	c.mu.Unlock()
	c.publish(events.Event{Kind: "reconcile.full_scan", Action: reason, N: marked})
}

// ---- watermark acknowledgment ----

// recomputeAck advances the durable watermark to the highest activity seq
// with no unresolved work at or below it, and checkpoints when it moved.
func (c *Controller) recomputeAck() {
	c.mu.Lock()
	cand := c.ingestSeq
	for addr, as := range c.addrs {
		if as.firstSeq > 0 && (c.dirty[addr] || as.status != "ok") {
			if as.firstSeq-1 < cand {
				cand = as.firstSeq - 1
			}
		}
	}
	advanced := cand > c.ack
	if advanced {
		c.ack = cand
	}
	c.mu.Unlock()
	if advanced {
		c.checkpoint(cand)
	}
}

func (c *Controller) checkpoint(wm int64) {
	if c.cfg.OnCheckpoint != nil {
		c.cfg.OnCheckpoint(wm)
	}
}

// ---- plumbing ----

func (c *Controller) setState(s string) {
	c.mu.Lock()
	c.state = s
	c.mu.Unlock()
}

// busCtx attaches the workspace bus so drift scans running under the
// controller publish drift.detected like any other detection pass.
func (c *Controller) busCtx() context.Context {
	if c.cfg.Bus == nil {
		return c.ctx
	}
	return events.WithBus(c.ctx, c.cfg.Bus)
}

func (c *Controller) publish(e events.Event) {
	if c.cfg.Bus != nil {
		c.cfg.Bus.Publish(e)
	}
}

func (c *Controller) counter(name string) *telemetry.Counter {
	return c.cfg.Registry.Counter(name)
}

func (c *Controller) histogram(name string) *telemetry.Histogram {
	return c.cfg.Registry.Histogram(name)
}

// backoff computes the capped exponential delay for the n-th consecutive
// failure (n >= 1).
func backoff(base, max time.Duration, n int) time.Duration {
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// sleepCtx sleeps d or until ctx is done; false means ctx fired.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
