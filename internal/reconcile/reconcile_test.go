package reconcile

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/drift"
	"cloudless/internal/events"
	"cloudless/internal/state"
	"cloudless/internal/telemetry"
)

// fakeCloud is an in-memory activity log implementing the long-poll
// extension, so tests wake the controller instantly instead of riding the
// jittered poll fallback.
type fakeCloud struct {
	mu   sync.Mutex
	evs  []cloud.Event
	wake chan struct{}
}

func newFakeCloud() *fakeCloud { return &fakeCloud{wake: make(chan struct{}, 1)} }

func (f *fakeCloud) emit(e cloud.Event) {
	f.mu.Lock()
	e.Seq = int64(len(f.evs) + 1)
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	f.evs = append(f.evs, e)
	f.mu.Unlock()
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

func (f *fakeCloud) Activity(_ context.Context, afterSeq int64) ([]cloud.Event, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []cloud.Event
	for _, e := range f.evs {
		if e.Seq > afterSeq {
			out = append(out, e)
		}
	}
	return out, nil
}

func (f *fakeCloud) WaitActivity(ctx context.Context, afterSeq int64, wait time.Duration) ([]cloud.Event, error) {
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		evs, err := f.Activity(ctx, afterSeq)
		if err != nil || len(evs) > 0 {
			return evs, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-deadline.C:
			return nil, nil
		case <-f.wake:
		}
	}
}

func (f *fakeCloud) Create(context.Context, cloud.CreateRequest) (*cloud.Resource, error) {
	return nil, errors.New("not implemented")
}
func (f *fakeCloud) Get(context.Context, string, string) (*cloud.Resource, error) {
	return nil, errors.New("not implemented")
}
func (f *fakeCloud) Update(context.Context, cloud.UpdateRequest) (*cloud.Resource, error) {
	return nil, errors.New("not implemented")
}
func (f *fakeCloud) Delete(context.Context, string, string, string) error {
	return errors.New("not implemented")
}
func (f *fakeCloud) List(context.Context, string, string) ([]*cloud.Resource, error) {
	return nil, errors.New("not implemented")
}
func (f *fakeCloud) Health(context.Context, string, string) (*cloud.HealthReport, error) {
	return nil, errors.New("not implemented")
}

// harness fakes the workspace side: a golden state, a mutable drifted set,
// and Verify/FullScan/Repair hooks backed by it.
type harness struct {
	t     *testing.T
	cloud *fakeCloud
	bus   *events.Bus
	reg   *telemetry.Registry
	snap  *state.State

	mu        sync.Mutex
	drifted   map[string]drift.Item
	repairErr error // returned by Repair (nil = success)
	repairFix bool  // whether Repair actually clears the drift
	verifies  int
	fulls     int
	repairs   int
}

func newHarness(t *testing.T) *harness {
	h := &harness{
		t: t, cloud: newFakeCloud(), bus: events.NewBus(nil),
		reg: telemetry.NewRegistry(), snap: state.New(),
		drifted: map[string]drift.Item{}, repairFix: true,
	}
	t.Cleanup(h.bus.Close)
	return h
}

// manage registers a managed resource in the golden state.
func (h *harness) manage(addr, typ, id string) {
	h.snap.Set(&state.ResourceState{Addr: addr, Type: typ, ID: id, Region: "r1"})
}

// drift marks an address as actually drifted in the fake cloud and emits the
// corresponding foreign activity event.
func (h *harness) drift(addr, id string) {
	h.mu.Lock()
	h.drifted[addr] = drift.Item{Kind: drift.Modified, Addr: addr, ID: id, Actor: "intruder"}
	h.mu.Unlock()
	h.cloud.emit(cloud.Event{Op: cloud.OpUpdate, ID: id, Principal: "intruder"})
}

func (h *harness) config(mode string) Config {
	return Config{
		Name: "test", Principal: "us", Cloud: h.cloud, Bus: h.bus, Registry: h.reg,
		Snapshot: func() *state.State { return h.snap },
		Verify: func(_ context.Context, addrs []string) (*drift.Report, error) {
			h.mu.Lock()
			defer h.mu.Unlock()
			h.verifies++
			rep := &drift.Report{Method: "scoped", BaseSerial: 1}
			for _, a := range addrs {
				if it, ok := h.drifted[a]; ok {
					rep.Items = append(rep.Items, it)
				}
			}
			return rep, nil
		},
		FullScan: func(context.Context) (*drift.Report, error) {
			h.mu.Lock()
			defer h.mu.Unlock()
			h.fulls++
			rep := &drift.Report{Method: "full-scan", BaseSerial: 1}
			for _, it := range h.drifted {
				rep.Items = append(rep.Items, it)
			}
			return rep, nil
		},
		Repair: func(_ context.Context, rep *drift.Report) (*RepairOutcome, error) {
			h.mu.Lock()
			defer h.mu.Unlock()
			h.repairs++
			if h.repairErr != nil {
				return &RepairOutcome{}, h.repairErr
			}
			out := &RepairOutcome{}
			for _, it := range rep.Items {
				if h.repairFix {
					delete(h.drifted, it.Addr)
					out.Applied++
				}
			}
			return out, nil
		},
		Mode: mode,
		// Fast knobs: the converge loop settles in tens of milliseconds.
		Tuning: Tuning{
			Debounce: time.Millisecond, PollWait: 50 * time.Millisecond,
			FullScanEvery: -1, BackoffBase: 5 * time.Millisecond,
			BackoffMax: 20 * time.Millisecond, FlapWindow: time.Minute,
			FlapThreshold: 3, BreakerThreshold: 2, BreakerCooloff: 50 * time.Millisecond,
		},
	}
}

func (h *harness) start(cfg Config) *Controller {
	c, err := Start(cfg)
	if err != nil {
		h.t.Fatalf("Start: %v", err)
	}
	h.t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Stop(ctx)
	})
	return c
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestEventDrivenRepair is the happy path: a foreign activity event maps to
// a managed address, a scoped verify confirms drift, the guarded repair
// fixes it, and the durable watermark advances past the event.
func TestEventDrivenRepair(t *testing.T) {
	h := newHarness(t)
	h.manage("aws_vpc.main", "aws_vpc", "vpc-1")

	var mu sync.Mutex
	var checkpoints []int64
	cfg := h.config(ModeRepair)
	cfg.OnCheckpoint = func(wm int64) {
		mu.Lock()
		checkpoints = append(checkpoints, wm)
		mu.Unlock()
	}
	c := h.start(cfg)

	h.drift("aws_vpc.main", "vpc-1")
	waitFor(t, "repair", func() bool { return c.Status().Repaired == 1 })
	waitFor(t, "watermark ack", func() bool { return c.Watermark() == 1 })

	st := c.Status()
	if st.Detected != 1 || st.RepairFailures != 0 {
		t.Fatalf("counters: %+v", st)
	}
	if len(st.Addrs) != 1 || st.Addrs[0].State != "ok" || st.Addrs[0].Repairs != 1 {
		t.Fatalf("addr status: %+v", st.Addrs)
	}
	h.mu.Lock()
	left := len(h.drifted)
	h.mu.Unlock()
	if left != 0 {
		t.Fatalf("drift not actually repaired")
	}
	mu.Lock()
	last := checkpoints[len(checkpoints)-1]
	mu.Unlock()
	if last != 1 {
		t.Fatalf("checkpoint watermark = %d, want 1", last)
	}
	if got := h.reg.CounterSum("reconcile.repaired"); got != 1 {
		t.Fatalf("reconcile.repaired = %d", got)
	}
}

// TestOwnActivityIgnored: events by our own principal are not drift and the
// watermark acks them without any verification.
func TestOwnActivityIgnored(t *testing.T) {
	h := newHarness(t)
	h.manage("aws_vpc.main", "aws_vpc", "vpc-1")
	c := h.start(h.config(ModeRepair))

	h.cloud.emit(cloud.Event{Op: cloud.OpUpdate, ID: "vpc-1", Principal: "us"})
	waitFor(t, "own event acked", func() bool { return c.Watermark() == 1 })
	h.mu.Lock()
	verifies := h.verifies
	h.mu.Unlock()
	if verifies != 0 {
		t.Fatalf("own activity triggered %d verifies", verifies)
	}
}

// TestDetectModeNeverRepairs: ModeDetect surfaces drift but the Repair hook
// is never consulted, and the address stays drifted (pinning the watermark).
func TestDetectModeNeverRepairs(t *testing.T) {
	h := newHarness(t)
	h.manage("aws_vpc.main", "aws_vpc", "vpc-1")
	cfg := h.config(ModeDetect)
	cfg.Repair = nil // legal in detect mode
	c := h.start(cfg)

	h.drift("aws_vpc.main", "vpc-1")
	waitFor(t, "detection", func() bool { return c.Status().Detected == 1 })
	st := c.Status()
	if !st.DetectOnly || st.Repaired != 0 {
		t.Fatalf("status: %+v", st)
	}
	if st.Addrs[0].State != "drifted" {
		t.Fatalf("addr state = %q, want drifted", st.Addrs[0].State)
	}
	if c.Watermark() != 0 {
		t.Fatalf("watermark advanced past unresolved drift: %d", c.Watermark())
	}
	h.mu.Lock()
	repairs := h.repairs
	h.mu.Unlock()
	if repairs != 0 {
		t.Fatalf("detect mode called Repair %d times", repairs)
	}
}

// TestBackoffAndBreaker: repairs that never stick push the address into
// exponential backoff and, after BreakerThreshold consecutive all-fail
// rounds, trip the circuit breaker into detect-only.
func TestBackoffAndBreaker(t *testing.T) {
	h := newHarness(t)
	h.manage("aws_vpc.main", "aws_vpc", "vpc-1")
	h.repairFix = false // repairs "succeed" but the drift persists
	c := h.start(h.config(ModeRepair))

	h.drift("aws_vpc.main", "vpc-1")
	waitFor(t, "breaker trip", func() bool { return c.Status().BreakerTrips >= 1 })
	st := c.Status()
	if !st.BreakerOpen || !st.DetectOnly {
		t.Fatalf("breaker should be open: %+v", st)
	}
	if st.RepairFailures < 2 {
		t.Fatalf("RepairFailures = %d, want >= 2", st.RepairFailures)
	}
	if st.Addrs[0].Failures < 2 || st.Addrs[0].LastError == "" {
		t.Fatalf("addr: %+v", st.Addrs[0])
	}
	// The unresolved address keeps pinning the durable watermark.
	if c.Watermark() != 0 {
		t.Fatalf("watermark = %d, want 0 while drift is unresolved", c.Watermark())
	}

	// Heal the cause; after the cooloff the breaker half-opens, the trial
	// repair succeeds, and the breaker closes.
	h.mu.Lock()
	h.repairFix = true
	h.mu.Unlock()
	waitFor(t, "breaker close + repair", func() bool {
		st := c.Status()
		return !st.BreakerOpen && st.Repaired >= 1
	})
	waitFor(t, "watermark after recovery", func() bool { return c.Watermark() == 1 })
	if got := h.reg.CounterSum("reconcile.breaker_trips"); got < 1 {
		t.Fatalf("reconcile.breaker_trips = %d", got)
	}
}

// TestFlapSuppression: an address that keeps re-drifting after successful
// repairs is suppressed (surfaced, not hammered) and released after the flap
// window with a clean slate.
func TestFlapSuppression(t *testing.T) {
	h := newHarness(t)
	h.manage("aws_vpc.main", "aws_vpc", "vpc-1")
	cfg := h.config(ModeRepair)
	cfg.Tuning.FlapThreshold = 2
	cfg.Tuning.FlapWindow = 30 * time.Second // long: suppression visible
	c := h.start(cfg)

	// Two successful repairs inside the window...
	for i := 0; i < 2; i++ {
		h.drift("aws_vpc.main", "vpc-1")
		want := int64(i + 1)
		waitFor(t, fmt.Sprintf("repair %d", i+1), func() bool { return c.Status().Repaired == want })
	}
	// ...then the third recurrence is suppressed instead of repaired.
	h.drift("aws_vpc.main", "vpc-1")
	waitFor(t, "suppression", func() bool { return c.Status().Suppressed == 1 })
	st := c.Status()
	if st.Addrs[0].State != "suppressed" || st.Addrs[0].SuppressMs <= 0 {
		t.Fatalf("addr: %+v", st.Addrs[0])
	}
	if st.Repaired != 2 {
		t.Fatalf("suppressed addr was repaired anyway: %+v", st)
	}
	// Suppressed means surfaced, not missed: the watermark is released.
	waitFor(t, "watermark released", func() bool { return c.Watermark() == 3 })
}

// TestDroppedBusEventsTriggerCatchUpFullScan (satellite: events.Subscription
// Dropped surfacing): overflowing the controller's drift.detected
// subscription must be detected as a gap — counted in telemetry — and
// answered with a catch-up FullScan, because dropped events are silently
// missed drift.
func TestDroppedBusEventsTriggerCatchUpFullScan(t *testing.T) {
	h := newHarness(t)
	h.manage("aws_vpc.main", "aws_vpc", "vpc-1")
	cfg := h.config(ModeRepair)
	cfg.Tuning.BusBuffer = 1 // tiny buffer: a burst must overflow
	c := h.start(cfg)

	// A synchronous burst against a 1-slot buffer: the busLoop cannot drain
	// fast enough, so the bus evicts and counts drops.
	for i := 0; i < 500; i++ {
		h.bus.Publish(events.Event{Kind: "drift.detected", Addr: "aws_vpc.other", Action: "modified"})
	}
	waitFor(t, "gap detected", func() bool { return c.Status().EventsDropped > 0 })
	waitFor(t, "catch-up full scan", func() bool { return c.Status().FullScans >= 1 })
	if got := h.reg.CounterSum("reconcile.events_dropped"); got == 0 {
		t.Fatalf("reconcile.events_dropped counter not incremented")
	}
	if got := h.reg.CounterSum("reconcile.full_scans"); got == 0 {
		t.Fatalf("reconcile.full_scans counter not incremented")
	}
}

// TestBusDriftFeedsConvergeLoop: a drift.detected event from a one-shot
// drift job (not the activity stream) is verified and repaired, while the
// controller's own scoped-wave detections are not fed back (no self-chase).
func TestBusDriftFeedsConvergeLoop(t *testing.T) {
	h := newHarness(t)
	h.manage("aws_vpc.main", "aws_vpc", "vpc-1")
	c := h.start(h.config(ModeRepair))

	h.mu.Lock()
	h.drifted["aws_vpc.main"] = drift.Item{Kind: drift.Modified, Addr: "aws_vpc.main", ID: "vpc-1", Actor: "intruder"}
	h.mu.Unlock()
	// As published by a one-shot drift job (Wave "poll"/"scan", not "scoped").
	h.bus.Publish(events.Event{Kind: "drift.detected", Addr: "aws_vpc.main", Action: "modified", Wave: "poll", Principal: "intruder"})

	waitFor(t, "bus-fed repair", func() bool { return c.Status().Repaired == 1 })
	// The repair's own confirmation scans published scoped drift.detected
	// events; none may have re-dirtied the loop.
	time.Sleep(20 * time.Millisecond)
	if st := c.Status(); st.Repaired != 1 || st.Detected != 1 {
		t.Fatalf("self-feedback: %+v", st)
	}
}

// TestPeriodicFullScanSafetyNet: with no events at all, the periodic
// FullScan still finds drift (e.g. from an actor bypassing the activity
// log) and routes it through repair.
func TestPeriodicFullScanSafetyNet(t *testing.T) {
	h := newHarness(t)
	h.manage("aws_vpc.main", "aws_vpc", "vpc-1")
	cfg := h.config(ModeRepair)
	cfg.Tuning.FullScanEvery = 20 * time.Millisecond
	c := h.start(cfg)

	// Drift with no activity event (invisible to the event path).
	h.mu.Lock()
	h.drifted["aws_vpc.main"] = drift.Item{Kind: drift.Modified, Addr: "aws_vpc.main", ID: "vpc-1"}
	h.mu.Unlock()

	waitFor(t, "safety-net repair", func() bool { return c.Status().Repaired == 1 })
	if st := c.Status(); st.FullScans < 1 {
		t.Fatalf("no full scan ran: %+v", st)
	}
}

// TestStaleRepairReVerifies: a Repair returning drift.ErrStaleReport (the
// golden state moved underneath) is not a failure — the controller re-runs
// the verify/repair cycle against the fresh baseline.
func TestStaleRepairReVerifies(t *testing.T) {
	h := newHarness(t)
	h.manage("aws_vpc.main", "aws_vpc", "vpc-1")
	h.repairErr = &drift.ErrStaleReport{ReportSerial: 1, CurrentSerial: 2}
	c := h.start(h.config(ModeRepair))

	h.drift("aws_vpc.main", "vpc-1")
	waitFor(t, "stale retries", func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.repairs >= 2
	})
	if st := c.Status(); st.RepairFailures != 0 || st.BreakerTrips != 0 {
		t.Fatalf("stale report counted as failure: %+v", st)
	}
	// Once the baseline settles the repair goes through.
	h.mu.Lock()
	h.repairErr = nil
	h.mu.Unlock()
	waitFor(t, "repair after stale", func() bool { return c.Status().Repaired == 1 })
}

// TestResumeFromWatermark: a controller restarted with the previous life's
// acknowledged watermark re-verifies events past it and skips everything
// before it — no duplicate repairs, no missed drift.
func TestResumeFromWatermark(t *testing.T) {
	h := newHarness(t)
	h.manage("aws_vpc.a", "aws_vpc", "vpc-a")
	h.manage("aws_vpc.b", "aws_vpc", "vpc-b")

	c := h.start(h.config(ModeRepair))
	h.drift("aws_vpc.a", "vpc-a") // seq 1: repaired by the first life
	waitFor(t, "first-life repair", func() bool { return c.Status().Repaired == 1 })
	waitFor(t, "first-life ack", func() bool { return c.Watermark() == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = c.Stop(ctx)
	cancel()

	// While "down": new foreign drift lands at seq 2.
	h.drift("aws_vpc.b", "vpc-b")

	// Second life: same cloud, golden state and drifted set, fresh counters.
	h2 := &harness{
		t: t, cloud: h.cloud, bus: events.NewBus(nil), reg: telemetry.NewRegistry(),
		snap: h.snap, drifted: h.drifted, repairFix: true,
	}
	defer h2.bus.Close()
	cfg := h2.config(ModeRepair)
	cfg.Watermark = 1 // resume from the journaled ack
	c2, err := Start(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c2.Stop(ctx)
	}()
	waitFor(t, "second-life repair", func() bool { return c2.Status().Repaired == 1 })
	waitFor(t, "second-life ack", func() bool { return c2.Watermark() == 2 })
	// The second life never re-repaired the first life's address: only one
	// address ever entered its state table.
	st := c2.Status()
	if len(st.Addrs) != 1 || st.Addrs[0].Addr != "aws_vpc.b" {
		t.Fatalf("resume replayed acked history: %+v", st.Addrs)
	}
}

// TestFreshEnableAnchorsAtTail: Watermark -1 (operator enable) starts at the
// activity-log tail — pre-existing history is not treated as missed drift.
func TestFreshEnableAnchorsAtTail(t *testing.T) {
	h := newHarness(t)
	h.manage("aws_vpc.main", "aws_vpc", "vpc-1")
	h.cloud.emit(cloud.Event{Op: cloud.OpUpdate, ID: "vpc-1", Principal: "old-intruder"})
	h.cloud.emit(cloud.Event{Op: cloud.OpUpdate, ID: "vpc-1", Principal: "old-intruder"})

	cfg := h.config(ModeRepair)
	cfg.Watermark = -1
	c := h.start(cfg)
	if c.Watermark() != 2 {
		t.Fatalf("fresh enable watermark = %d, want 2 (log tail)", c.Watermark())
	}
	time.Sleep(20 * time.Millisecond)
	h.mu.Lock()
	verifies := h.verifies
	h.mu.Unlock()
	if verifies != 0 {
		t.Fatalf("fresh enable replayed history: %d verifies", verifies)
	}
}

// TestBackoffHelper pins the capped exponential schedule.
func TestBackoffHelper(t *testing.T) {
	base, max := time.Second, 10*time.Second
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 10 * time.Second, 10 * time.Second}
	for i, w := range want {
		if got := backoff(base, max, i+1); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}
