package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// ChromeEvent is one trace event in Chrome trace-event format ("X" complete
// events), viewable in chrome://tracing and Perfetto.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds from trace start
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
	CName string         `json:"cname,omitempty"` // viewer color override
}

// ChromeTrace is the exported trace file: standard traceEvents plus a
// cloudlessMetrics extension block (extra top-level keys are legal in the
// object form of the format and ignored by viewers).
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
	Metrics         []MetricPoint `json:"cloudlessMetrics,omitempty"`
	DroppedSpans    int64         `json:"cloudlessDroppedSpans,omitempty"`
}

// criticalPathAttr marks spans on the deployment critical path; the exporter
// colors them so the E2 answer is visible at a glance in Perfetto.
const criticalPathAttr = "critical_path"

// ChromeTrace renders every ended span plus the metrics snapshot. Spans are
// assigned to display lanes (tids) so that a child nests inside its parent's
// lane when the lane is free, and overlapping siblings spread across lanes —
// a swimlane view of the parallel applier.
func (r *Recorder) ChromeTrace() *ChromeTrace {
	out := &ChromeTrace{DisplayTimeUnit: "ms"}
	if r == nil {
		return out
	}
	spans := r.Spans()
	out.Metrics = r.Metrics().Snapshot()
	out.DroppedSpans = r.Dropped()
	if len(spans) == 0 {
		return out
	}

	// Sort by start; parents before their children on ties (a parent starts
	// no later and ends no earlier than its children).
	sort.Slice(spans, func(i, j int) bool {
		si, sj := spans[i], spans[j]
		if !si.StartTime().Equal(sj.StartTime()) {
			return si.StartTime().Before(sj.StartTime())
		}
		if !si.EndTime().Equal(sj.EndTime()) {
			return si.EndTime().After(sj.EndTime())
		}
		return si.ID() < sj.ID()
	})
	epoch := spans[0].StartTime()

	lanes := assignLanes(spans)
	for _, sp := range spans {
		args := map[string]any{}
		for k, v := range sp.Attrs() {
			args[k] = v
		}
		args["span_id"] = uint64(sp.ID())
		if sp.ParentID() != 0 {
			args["parent_id"] = uint64(sp.ParentID())
		}
		ev := ChromeEvent{
			Name:  sp.Name(),
			Cat:   "cloudless",
			Phase: "X",
			TS:    float64(sp.StartTime().Sub(epoch)) / float64(time.Microsecond),
			Dur:   float64(sp.Duration()) / float64(time.Microsecond),
			PID:   1,
			TID:   lanes[sp.ID()],
			Args:  args,
		}
		if crit, _ := sp.Attr(criticalPathAttr).(bool); crit {
			ev.CName = "terrible" // red in the trace viewer palette
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	return out
}

// assignLanes gives each span a display lane. Each lane holds a stack of
// open intervals: a span joins a lane when every still-open interval there
// is an ancestor that fully contains it (it nests) — preferring its parent's
// lane — otherwise it opens a new lane. Overlapping siblings therefore fan
// out across lanes like workers.
func assignLanes(sorted []*Span) map[SpanID]int {
	type frame struct {
		id  SpanID
		end time.Time
	}
	laneOf := make(map[SpanID]int, len(sorted))
	ancestors := make(map[SpanID]map[SpanID]bool, len(sorted))
	parents := make(map[SpanID]SpanID, len(sorted))
	for _, sp := range sorted {
		parents[sp.ID()] = sp.ParentID()
	}
	ancestorOf := func(id SpanID) map[SpanID]bool {
		if a, ok := ancestors[id]; ok {
			return a
		}
		a := map[SpanID]bool{}
		for p := parents[id]; p != 0; p = parents[p] {
			a[p] = true
			if len(a) > len(sorted) {
				break // defensive: corrupt parent chain
			}
		}
		ancestors[id] = a
		return a
	}

	var stacks [][]frame
	fits := func(lane int, sp *Span) bool {
		st := stacks[lane]
		// Pop finished intervals.
		for len(st) > 0 && !st[len(st)-1].end.After(sp.StartTime()) {
			st = st[:len(st)-1]
		}
		stacks[lane] = st
		if len(st) == 0 {
			return true
		}
		top := st[len(st)-1]
		return ancestorOf(sp.ID())[top.id] && !top.end.Before(sp.EndTime())
	}
	for _, sp := range sorted {
		lane := -1
		if pl, ok := laneOf[sp.ParentID()]; ok && fits(pl, sp) {
			lane = pl
		} else {
			for l := range stacks {
				if fits(l, sp) {
					lane = l
					break
				}
			}
		}
		if lane == -1 {
			stacks = append(stacks, nil)
			lane = len(stacks) - 1
		}
		stacks[lane] = append(stacks[lane], frame{id: sp.ID(), end: sp.EndTime()})
		laneOf[sp.ID()] = lane
	}
	return laneOf
}

// WriteChromeTrace writes the trace as JSON.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.ChromeTrace())
}

// WriteChromeTraceFile writes the trace to a file.
func (r *Recorder) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: write trace: %w", err)
	}
	if err := r.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadChromeTraceFile parses a trace file written by WriteChromeTraceFile.
func ReadChromeTraceFile(path string) (*ChromeTrace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: read trace: %w", err)
	}
	var tr ChromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("telemetry: parse trace %s: %w", path, err)
	}
	return &tr, nil
}

// TraceSummary computes per-name span stats from an exported trace, so the
// `cloudlessctl metrics` command can summarize a previously captured file.
func TraceSummary(tr *ChromeTrace) []SpanStat {
	durs := map[string][]float64{}
	for _, ev := range tr.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		durs[ev.Name] = append(durs[ev.Name], ev.Dur*float64(time.Microsecond))
	}
	return summarize(durs)
}
