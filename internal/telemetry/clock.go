// Package telemetry is the observability substrate for the whole stack: a
// dependency-free tracing and metrics layer (§3.3 critical-path deployment,
// §3.5 activity-log-native diagnosis both presuppose that operators can see
// where time and API calls go inside a lifecycle run).
//
// The package provides three cooperating pieces:
//
//   - Spans with parent/child links, recorded by a bounded in-memory
//     Recorder and exported as plain JSON or Chrome-trace format
//     (chrome://tracing / Perfetto).
//   - A Registry of counters, gauges, and histograms for control-plane
//     accounting (API calls, 429 throttles, lock waits, deadlock aborts).
//   - A Clock abstraction so benchmarks and tests run on a deterministic
//     virtual clock while production uses wall time.
//
// Instrumented packages never hold a Recorder directly: the recorder rides
// the context (WithRecorder/FromContext), and every method in this package
// is safe on a nil receiver, so instrumentation is free when telemetry is
// not enabled.
package telemetry

import (
	"sync"
	"time"
)

// Clock supplies timestamps for spans and metrics. Production code uses
// System; tests and deterministic benches inject a VirtualClock.
type Clock interface {
	Now() time.Time
}

// systemClock reads the wall clock.
type systemClock struct{}

// Now returns the current wall time.
func (systemClock) Now() time.Time { return time.Now() }

// System is the wall clock.
var System Clock = systemClock{}

// VirtualClock is a deterministic manual clock. Each Now() call returns the
// current virtual time and then advances it by Step, so consecutive reads
// are strictly ordered and span durations are exact multiples of Step —
// benches and -race tests get reproducible timings with no sleeping.
type VirtualClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

// NewVirtualClock starts a virtual clock at start, auto-advancing by step on
// every Now() read (step 0 means reads do not advance time).
func NewVirtualClock(start time.Time, step time.Duration) *VirtualClock {
	return &VirtualClock{now: start, step: step}
}

// Now returns the virtual time and advances it by the configured step.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

// Advance moves the virtual clock forward by d.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}
