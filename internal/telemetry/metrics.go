package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges, and histograms. Instruments are
// created on first use and identified by name plus an optional sorted label
// set, Prometheus-style: Counter("cloud.api_calls", "type", "aws_vpc").
// All methods are safe for concurrent use and on a nil receiver.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// metricKey renders "name{k=v,k=v}" with label pairs sorted by key.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter for name+labels. Labels
// are alternating key, value strings. Nil registries return a shared inert
// counter so call sites need no checks.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for name+labels.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		h = newHistogram()
		r.histograms[key] = h
	}
	return h
}

// CounterValue reads a counter without creating it.
func (r *Registry) CounterValue(name string, labels ...string) int64 {
	if r == nil {
		return 0
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	c := r.counters[key]
	r.mu.Unlock()
	return c.Value()
}

// CounterSum sums every counter whose name matches (across all label sets).
func (r *Registry) CounterSum(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum int64
	for key, c := range r.counters {
		if key == name || strings.HasPrefix(key, name+"{") {
			sum += c.Value()
		}
	}
	return sum
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histogramSamples bounds the retained observations per histogram; beyond it
// new observations overwrite the oldest (count/sum/min/max stay exact).
const histogramSamples = 2048

// Histogram records float64 observations with exact count/sum/min/max and a
// bounded sample ring for quantile estimation.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	samples []float64
	next    int
}

func newHistogram() *Histogram {
	return &Histogram{min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < histogramSamples {
		h.samples = append(h.samples, v)
	} else {
		h.samples[h.next] = v
		h.next = (h.next + 1) % histogramSamples
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0..1) from the retained samples.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	cp := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	return quantile(cp, q)
}

// quantile computes the q-quantile of an unsorted sample set.
func quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	if q <= 0 {
		return samples[0]
	}
	if q >= 1 {
		return samples[len(samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return samples[idx]
}

// MetricPoint is one exported instrument value.
type MetricPoint struct {
	Name  string  `json:"name"` // metricKey form: name{k=v,...}
	Kind  string  `json:"kind"` // "counter", "gauge", "histogram"
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
}

// Snapshot exports every instrument, sorted by name.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricPoint, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for key, c := range r.counters {
		out = append(out, MetricPoint{Name: key, Kind: "counter", Value: float64(c.Value())})
	}
	for key, g := range r.gauges {
		out = append(out, MetricPoint{Name: key, Kind: "gauge", Value: g.Value()})
	}
	for key, h := range r.histograms {
		h.mu.Lock()
		mp := MetricPoint{
			Name: key, Kind: "histogram",
			Count: h.count, Sum: h.sum,
		}
		if h.count > 0 {
			mp.Min, mp.Max = h.min, h.max
			cp := append([]float64(nil), h.samples...)
			mp.P50 = quantile(cp, 0.50)
			mp.P95 = quantile(append([]float64(nil), h.samples...), 0.95)
			mp.Value = h.sum / float64(h.count)
		}
		h.mu.Unlock()
		out = append(out, mp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
