package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func virtualRecorder(step time.Duration) *Recorder {
	return NewRecorder(Config{
		Clock: NewVirtualClock(time.Unix(1000, 0), step),
	})
}

func TestSpanNestingAndDurations(t *testing.T) {
	rec := virtualRecorder(time.Millisecond)
	ctx, root := rec.StartSpan(context.Background(), "root")
	ctx2, child := StartSpan(ctx, "child")
	_, grand := StartSpan(ctx2, "grandchild")

	if child.ParentID() != root.ID() {
		t.Fatalf("child parent = %d, want %d", child.ParentID(), root.ID())
	}
	if grand.ParentID() != child.ID() {
		t.Fatalf("grandchild parent = %d, want %d", grand.ParentID(), child.ID())
	}
	grand.End()
	child.End()
	root.End()

	if got := rec.SpanCount(); got != 3 {
		t.Fatalf("recorded %d spans, want 3", got)
	}
	// Virtual clock auto-steps 1ms per read: every duration is a positive
	// multiple of the step, and parents span their children.
	for _, sp := range rec.Spans() {
		d := sp.Duration()
		if d <= 0 || d%time.Millisecond != 0 {
			t.Errorf("span %s duration %s not a positive multiple of the virtual step", sp.Name(), d)
		}
	}
	if root.StartTime().After(grand.StartTime()) || root.EndTime().Before(grand.EndTime()) {
		t.Error("root span does not cover its grandchild")
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	ctx, sp := rec.StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil recorder produced a span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("nil recorder attached to context")
	}
	// All of these must be no-ops, not panics.
	sp.SetAttr("k", "v")
	sp.End()
	sp.EndErr(fmt.Errorf("boom"))
	if sp.Duration() != 0 || sp.Name() != "" || sp.ID() != 0 {
		t.Fatal("nil span returned non-zero values")
	}
	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(1)
	if reg.CounterValue("c") != 0 || reg.Snapshot() != nil {
		t.Fatal("nil registry returned data")
	}
	if rec.SpanCount() != 0 || rec.Spans() != nil || rec.Metrics() != nil {
		t.Fatal("nil recorder returned data")
	}
	if rec.Now().IsZero() {
		t.Fatal("nil recorder clock returned zero time")
	}
	ctx2, sp2 := StartSpan(context.Background(), "no-recorder")
	if sp2 != nil || ctx2 == nil {
		t.Fatal("StartSpan without recorder must return (ctx, nil)")
	}
}

func TestRecorderBound(t *testing.T) {
	rec := NewRecorder(Config{Clock: NewVirtualClock(time.Unix(0, 0), time.Microsecond), MaxSpans: 4})
	for i := 0; i < 10; i++ {
		_, sp := rec.StartSpan(context.Background(), "s")
		sp.End()
	}
	if rec.SpanCount() != 4 {
		t.Fatalf("recorded %d spans, want bound of 4", rec.SpanCount())
	}
	if rec.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", rec.Dropped())
	}
	tr := rec.ChromeTrace()
	if tr.DroppedSpans != 6 {
		t.Fatalf("export dropped = %d, want 6", tr.DroppedSpans)
	}
}

func TestRegistryInstruments(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cloud.api_calls", "type", "aws_vpc").Add(3)
	reg.Counter("cloud.api_calls", "type", "aws_subnet").Add(2)
	// Label order must not matter.
	reg.Counter("x", "b", "2", "a", "1").Inc()
	reg.Counter("x", "a", "1", "b", "2").Inc()
	if got := reg.CounterValue("x", "a", "1", "b", "2"); got != 2 {
		t.Fatalf("label-order-insensitive counter = %d, want 2", got)
	}
	if got := reg.CounterSum("cloud.api_calls"); got != 5 {
		t.Fatalf("CounterSum = %d, want 5", got)
	}
	reg.Gauge("plan.graph_size").Set(42)
	if reg.Gauge("plan.graph_size").Value() != 42 {
		t.Fatal("gauge set/read failed")
	}

	h := reg.Histogram("lock_wait")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Fatalf("histogram count/sum = %d/%f", h.Count(), h.Sum())
	}
	if p50 := h.Quantile(0.5); p50 != 50 {
		t.Fatalf("p50 = %f, want 50", p50)
	}
	if p95 := h.Quantile(0.95); p95 != 95 {
		t.Fatalf("p95 = %f, want 95", p95)
	}

	snap := reg.Snapshot()
	var found bool
	for _, mp := range snap {
		if mp.Name == "lock_wait" && mp.Kind == "histogram" {
			found = true
			if mp.P95 != 95 || mp.Min != 1 || mp.Max != 100 {
				t.Fatalf("snapshot histogram fields wrong: %+v", mp)
			}
		}
	}
	if !found {
		t.Fatal("histogram missing from snapshot")
	}
}

func TestHistogramRingBound(t *testing.T) {
	h := newHistogram()
	for i := 0; i < histogramSamples*2; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != int64(histogramSamples*2) {
		t.Fatalf("count = %d", h.Count())
	}
	if len(h.samples) != histogramSamples {
		t.Fatalf("retained %d samples, want %d", len(h.samples), histogramSamples)
	}
}

func TestConcurrentRecording(t *testing.T) {
	rec := NewRecorder(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx, sp := rec.StartSpan(context.Background(), "op")
				_, inner := StartSpan(ctx, "inner")
				rec.Metrics().Counter("n").Inc()
				rec.Metrics().Histogram("h").Observe(float64(i))
				inner.End()
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if rec.SpanCount() != 3200 {
		t.Fatalf("span count = %d, want 3200", rec.SpanCount())
	}
	if rec.Metrics().CounterValue("n") != 1600 {
		t.Fatalf("counter = %d, want 1600", rec.Metrics().CounterValue("n"))
	}
}

func TestChromeTraceExport(t *testing.T) {
	rec := virtualRecorder(time.Millisecond)
	ctx, root := rec.StartSpan(context.Background(), "lifecycle.apply")
	_, op1 := StartSpan(ctx, "apply.op")
	op1.SetAttr("addr", "aws_vpc.main")
	op1.SetAttr(criticalPathAttr, true)
	op1.End()
	_, op2 := StartSpan(ctx, "apply.op")
	op2.SetAttr("password", Redacted)
	op2.End()
	root.End()

	var buf strings.Builder
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// Must be valid JSON in Chrome trace-event object form.
	var parsed map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %s", err)
	}
	events, ok := parsed["traceEvents"].([]any)
	if !ok || len(events) != 3 {
		t.Fatalf("traceEvents missing or wrong length: %v", parsed["traceEvents"])
	}
	tr := rec.ChromeTrace()
	var critFound bool
	for _, ev := range tr.TraceEvents {
		if ev.Phase != "X" {
			t.Errorf("unexpected phase %q", ev.Phase)
		}
		if ev.Dur <= 0 {
			t.Errorf("event %s has non-positive duration", ev.Name)
		}
		if ev.CName == "terrible" {
			critFound = true
		}
	}
	if !critFound {
		t.Error("critical-path span not color-marked")
	}

	// Round trip through a file and summarize.
	path := t.TempDir() + "/trace.json"
	if err := rec.WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadChromeTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.TraceEvents) != 3 {
		t.Fatalf("round-tripped %d events, want 3", len(rt.TraceEvents))
	}
	stats := TraceSummary(rt)
	if len(stats) != 2 {
		t.Fatalf("summary groups = %d, want 2", len(stats))
	}
	if stats[0].Name != "lifecycle.apply" {
		t.Fatalf("summary not sorted by total time: %+v", stats)
	}
}

func TestLaneAssignmentNesting(t *testing.T) {
	rec := virtualRecorder(0) // manual clock
	clk := rec.clock.(*VirtualClock)
	ctx, root := rec.StartSpan(context.Background(), "root")
	clk.Advance(time.Millisecond)
	// Two overlapping children.
	_, a := StartSpan(ctx, "a")
	_, b := StartSpan(ctx, "b")
	clk.Advance(time.Millisecond)
	a.End()
	b.End()
	clk.Advance(time.Millisecond)
	// A child starting after both ended: can share a lane.
	_, c := StartSpan(ctx, "c")
	clk.Advance(time.Millisecond)
	c.End()
	clk.Advance(time.Millisecond)
	root.End()

	tr := rec.ChromeTrace()
	tidOf := map[string]int{}
	for _, ev := range tr.TraceEvents {
		tidOf[ev.Name] = ev.TID
	}
	if tidOf["a"] == tidOf["b"] {
		t.Errorf("overlapping siblings share lane %d", tidOf["a"])
	}
	if tidOf["a"] != tidOf["root"] && tidOf["b"] != tidOf["root"] {
		t.Error("no child nested in the root lane")
	}
}

func TestSpanAttrTruncationAndRedaction(t *testing.T) {
	rec := virtualRecorder(time.Microsecond)
	_, sp := rec.StartSpan(context.Background(), "s")
	long := strings.Repeat("x", 2*maxAttrLen)
	sp.SetAttr("big", long)
	sp.SetAttr("secret", Redacted)
	sp.End()
	got := sp.Attr("big").(string)
	if len(got) > maxAttrLen+3 {
		t.Fatalf("attribute not truncated: %d bytes", len(got))
	}
	if sp.Attr("secret") != "(sensitive)" {
		t.Fatalf("redaction marker = %v", sp.Attr("secret"))
	}
}

func TestDoubleEndIsNoop(t *testing.T) {
	rec := virtualRecorder(time.Millisecond)
	_, sp := rec.StartSpan(context.Background(), "s")
	sp.End()
	end := sp.EndTime()
	sp.End()
	if !sp.EndTime().Equal(end) {
		t.Fatal("second End moved the end time")
	}
	if rec.SpanCount() != 1 {
		t.Fatalf("span recorded %d times", rec.SpanCount())
	}
}
