package telemetry

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// defaultMaxSpans bounds the recorder's in-memory span buffer.
const defaultMaxSpans = 65536

// Config tunes a Recorder.
type Config struct {
	// Clock supplies timestamps; defaults to the wall clock.
	Clock Clock
	// MaxSpans bounds retained spans (default 65536); spans started past the
	// bound still function but are dropped from the export, counted in
	// Dropped.
	MaxSpans int
}

// Recorder owns one run's telemetry: a bounded span store plus a metrics
// registry. It is safe for concurrent use; every method is safe on nil.
type Recorder struct {
	clock Clock
	max   int
	reg   *Registry

	mu      sync.Mutex
	spans   []*Span
	nextID  atomic.Uint64
	dropped atomic.Int64
}

// NewRecorder builds a recorder.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Clock == nil {
		cfg.Clock = System
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = defaultMaxSpans
	}
	return &Recorder{clock: cfg.Clock, max: cfg.MaxSpans, reg: NewRegistry()}
}

// Metrics returns the recorder's registry (nil-safe).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Now reads the recorder's clock; a nil recorder reads the wall clock.
func (r *Recorder) Now() time.Time {
	if r == nil {
		return time.Now()
	}
	return r.clock.Now()
}

// StartSpan opens a span as a child of ctx's current span, and returns a
// context carrying both this recorder and the new span, so downstream
// instrumentation nests under it.
func (r *Recorder) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	return StartSpan(WithRecorder(ctx, r), name)
}

// newSpan allocates and registers a started span.
func (r *Recorder) newSpan(name string, parent *Span) *Span {
	sp := &Span{
		id:    SpanID(r.nextID.Add(1)),
		name:  name,
		start: r.clock.Now(),
		rec:   r,
	}
	if parent != nil {
		sp.parent = parent.id
	}
	return sp
}

// record stores an ended span, honoring the buffer bound.
func (r *Recorder) record(s *Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.spans) >= r.max {
		r.mu.Unlock()
		r.dropped.Add(1)
		return
	}
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Spans returns the recorded (ended) spans in completion order.
func (r *Recorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Span(nil), r.spans...)
}

// SpanCount returns how many spans were recorded.
func (r *Recorder) SpanCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped returns how many spans exceeded the buffer bound.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// SpanStat summarizes all spans sharing one name.
type SpanStat struct {
	Name  string        `json:"name"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Summary groups recorded spans by name with duration percentiles, sorted by
// total time descending — the per-stage attribution table the bench harness
// and `cloudlessctl metrics` print.
func (r *Recorder) Summary() []SpanStat {
	if r == nil {
		return nil
	}
	durs := map[string][]float64{}
	for _, sp := range r.Spans() {
		durs[sp.Name()] = append(durs[sp.Name()], float64(sp.Duration()))
	}
	return summarize(durs)
}

// summarize turns name → duration samples (ns) into sorted SpanStats.
func summarize(durs map[string][]float64) []SpanStat {
	out := make([]SpanStat, 0, len(durs))
	for name, ds := range durs {
		var total float64
		var maxD float64
		for _, d := range ds {
			total += d
			if d > maxD {
				maxD = d
			}
		}
		out = append(out, SpanStat{
			Name:  name,
			Count: len(ds),
			Total: time.Duration(total),
			P50:   time.Duration(quantile(append([]float64(nil), ds...), 0.50)),
			P95:   time.Duration(quantile(append([]float64(nil), ds...), 0.95)),
			Max:   time.Duration(maxD),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}
