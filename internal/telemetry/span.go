package telemetry

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Redacted is the marker substituted for sensitive values in every display
// path: CLI output, span attributes, and exported traces. It matches the
// marker the root facade uses for `sensitive = true` outputs, so a secret
// that is redacted on the terminal is redacted in a trace file too.
const Redacted = "(sensitive)"

// maxAttrLen bounds one attribute value in a span, so traces stay small even
// when a resource carries a large attribute.
const maxAttrLen = 256

// SpanID identifies a span within one Recorder.
type SpanID uint64

// Span is one timed operation. Spans are created through StartSpan, carry
// string/number attributes, and are recorded when End is called. All methods
// are safe on a nil *Span, so instrumentation sites need no nil checks.
type Span struct {
	mu     sync.Mutex
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	end    time.Time
	ended  bool
	attrs  map[string]any
	rec    *Recorder
}

// ID returns the span's identifier (0 for nil spans).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// ParentID returns the parent span's identifier (0 = root).
func (s *Span) ParentID() SpanID {
	if s == nil {
		return 0
	}
	return s.parent
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartTime returns when the span started.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// EndTime returns when the span ended (zero while still open).
func (s *Span) EndTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// Duration returns end-start for ended spans, 0 otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return 0
	}
	return s.end.Sub(s.start)
}

// SetAttr attaches an attribute. Strings are truncated to a bounded length;
// values may be set until the recorder is exported (the applier tags the
// critical path post-hoc this way).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	if str, ok := value.(string); ok && len(str) > maxAttrLen {
		value = str[:maxAttrLen] + "..."
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
}

// Attr reads an attribute value (nil when absent).
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// Attrs returns a copy of the attribute map.
func (s *Span) Attrs() map[string]any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]any, len(s.attrs))
	for k, v := range s.attrs {
		out[k] = v
	}
	return out
}

// AttrKeys returns the attribute names, sorted.
func (s *Span) AttrKeys() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.attrs))
	for k := range s.attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// End closes the span at the recorder clock's current time. Ending twice is
// a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.rec.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = now
	s.mu.Unlock()
	s.rec.record(s)
}

// EndErr closes the span, attaching the error (if any) as an attribute.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetAttr("error", fmt.Sprint(err))
	}
	s.End()
}

// Ended reports whether End was called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// recorderKey and spanKey carry telemetry through call chains.
type recorderKey struct{}
type spanKey struct{}

// WithRecorder returns a context carrying the recorder, making every
// instrumentation site below it live. A nil recorder returns ctx unchanged.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, rec)
}

// FromContext extracts the recorder (nil when telemetry is off).
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}

// SpanFromContext returns the current span (nil when none).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan opens a child of the context's current span on the context's
// recorder. When no recorder rides the context it returns (ctx, nil) and the
// nil span swallows every later call — instrumentation costs two context
// lookups when telemetry is disabled.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	rec := FromContext(ctx)
	if rec == nil {
		return ctx, nil
	}
	sp := rec.newSpan(name, SpanFromContext(ctx))
	return context.WithValue(ctx, spanKey{}, sp), sp
}
