package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders a metric snapshot in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges map directly; histograms are
// rendered summary-style with quantile series plus _sum and _count. Metric
// names are sanitized (dots and other invalid runes become underscores) and
// label values escaped per the format rules.
func WritePrometheus(w io.Writer, points []MetricPoint) error {
	for _, p := range points {
		name, labels := splitMetricKey(p.Name)
		pname := promName(name)
		switch p.Kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %s\n",
				pname, pname, promLabels(labels, "", ""), promFloat(p.Value)); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %s\n",
				pname, pname, promLabels(labels, "", ""), promFloat(p.Value)); err != nil {
				return err
			}
		case "histogram":
			if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pname); err != nil {
				return err
			}
			if p.Count > 0 {
				for _, q := range []struct {
					q string
					v float64
				}{{"0.5", p.P50}, {"0.95", p.P95}} {
					if _, err := fmt.Fprintf(w, "%s%s %s\n",
						pname, promLabels(labels, "quantile", q.q), promFloat(q.v)); err != nil {
						return err
					}
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
				pname, promLabels(labels, "", ""), promFloat(p.Sum),
				pname, promLabels(labels, "", ""), p.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Prometheus writes the registry's current snapshot to w in text exposition
// format. Safe on a nil registry (writes nothing).
func (r *Registry) Prometheus(w io.Writer) error {
	return WritePrometheus(w, r.Snapshot())
}

// Relabel returns a copy of points with an extra label pair injected into
// every metric key, preserving the registry's canonical sorted-label form.
// A multi-workspace host uses this to merge per-workspace registries into
// one scrape with a distinguishing label.
func Relabel(points []MetricPoint, key, value string) []MetricPoint {
	out := make([]MetricPoint, len(points))
	for i, p := range points {
		name, labels := splitMetricKey(p.Name)
		at := len(labels)
		for j, kv := range labels {
			if kv[0] >= key {
				at = j
				break
			}
		}
		labels = append(labels[:at], append([][2]string{{key, value}}, labels[at:]...)...)
		var b strings.Builder
		b.WriteString(name)
		b.WriteByte('{')
		for j, kv := range labels {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(kv[0])
			b.WriteByte('=')
			b.WriteString(kv[1])
		}
		b.WriteByte('}')
		p.Name = b.String()
		out[i] = p
	}
	return out
}

// splitMetricKey parses the registry's "name{k=v,k=v}" key form back into
// the bare name and label pairs.
func splitMetricKey(key string) (string, [][2]string) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	name := key[:open]
	body := key[open+1 : len(key)-1]
	if body == "" {
		return name, nil
	}
	var labels [][2]string
	for _, pair := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		labels = append(labels, [2]string{k, v})
	}
	return name, labels
}

// promName sanitizes a metric name to [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set (plus an optional extra pair, used for
// quantiles) as {k="v",...}, or "" when empty.
func promLabels(labels [][2]string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	write := func(k, v string) {
		if n > 0 {
			b.WriteByte(',')
		}
		n++
		b.WriteString(promName(k))
		b.WriteString(`="`)
		b.WriteString(promEscape(v))
		b.WriteByte('"')
	}
	for _, kv := range labels {
		write(kv[0], kv[1])
	}
	if extraK != "" {
		write(extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the exposition format: backslash,
// double-quote, and newline.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promFloat renders a float the way Prometheus expects (no exponent for
// integral values in the common range).
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
