package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("cloud.api_calls", "type", "aws_vpc", "op", "create").Add(7)
	r.Gauge("provider.gate_window", "provider", "aws").Set(3.5)
	h := r.Histogram("apply.op_ms")
	for _, v := range []float64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.Prometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE cloud_api_calls counter",
		`cloud_api_calls{op="create",type="aws_vpc"} 7`,
		"# TYPE provider_gate_window gauge",
		`provider_gate_window{provider="aws"} 3.5`,
		"# TYPE apply_op_ms summary",
		`apply_op_ms{quantile="0.5"}`,
		`apply_op_ms{quantile="0.95"}`,
		"apply_op_ms_sum 110",
		"apply_op_ms_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird.name-2", "path", `a\b"c`).Inc()
	var b strings.Builder
	if err := r.Prometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `weird_name_2{path="a\\b\"c"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestNilRegistryPrometheus(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.Prometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote %q (err %v)", b.String(), err)
	}
}

// TestRegistryPrometheusRace races concurrent counter/histogram writers
// against a Prometheus snapshot reader; run with -race. The assertions are
// deliberately light — the test's value is the race detector's verdict on
// the Snapshot/Observe/Add interleavings.
func TestRegistryPrometheusRace(t *testing.T) {
	r := NewRegistry()
	r.Counter("race.calls", "worker", "seed").Inc() // non-empty before readers start
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Counter("race.calls", "worker", string(rune('a'+w))).Inc()
				r.Histogram("race.latency_ms").Observe(float64(i % 50))
				r.Gauge("race.depth").Set(float64(i))
			}
		}(w)
	}

	for i := 0; i < 200; i++ {
		var b strings.Builder
		if err := r.Prometheus(&b); err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 {
			t.Fatal("snapshot empty despite seeded counter")
		}
	}
	wg.Wait()

	var b strings.Builder
	if err := r.Prometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "race_calls{") || !strings.Contains(b.String(), "race_latency_ms_count") {
		t.Fatalf("final exposition incomplete:\n%s", b.String())
	}
}
