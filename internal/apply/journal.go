// Apply journal: a durable write-ahead record of every operation an apply
// intends to perform, begins, and finishes, using the same CRC-framed log
// format as the golden-state WAL (internal/wal). The contract that makes
// applies crash-safe:
//
//  1. The full op list ("intents") is journaled and fsynced before the first
//     cloud call, so recovery always knows what the plan was going to do.
//  2. A "begin" record is journaled and fsynced BEFORE the op touches the
//     cloud. A crash can therefore never leave a cloud mutation the journal
//     does not know about.
//  3. A "done" record is appended after the op (no fsync — losing one only
//     makes recovery re-check an op that turns out to be complete, which the
//     idempotency machinery absorbs).
//
// An op with a begin but no done is "in doubt": the process died somewhere
// between issuing the call and recording the response. Recovery re-issues
// in-doubt creates under their original idempotency keys and re-checks
// updates/deletes, then sweeps the activity log for orphans (see recover.go).
package apply

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"cloudless/internal/eval"
	"cloudless/internal/plan"
	"cloudless/internal/wal"
)

// ErrJournalKilled is returned by appends after Kill — the chaos harness's
// stand-in for the process being dead. An applier seeing it must abort the
// op before touching the cloud, exactly as a dead process would.
var ErrJournalKilled = errors.New("apply: journal killed (simulated crash)")

// Journal record kinds.
const (
	recMeta    = "meta"
	recIntents = "intents"
	recBegin   = "begin"
	recDone    = "done"
	recFail    = "fail"
)

// Meta identifies one apply run. Its ID seeds every idempotency key
// (ID + "/" + addr), so a restarted recovery retries creates under the keys
// the crashed run used.
type Meta struct {
	ID         string    `json:"id"`
	Kind       string    `json:"kind"` // "apply", "destroy", "rollback"
	CreatedAt  time.Time `json:"created_at"`
	BaseSerial int       `json:"base_serial"`
	Principal  string    `json:"principal"`
}

// Intent is one planned operation, recorded before any execution. Name is
// the planned "name" attribute when known — the orphan sweep uses
// (type, region, name) to match an unclaimed cloud resource back to the
// plan entry that wanted it.
type Intent struct {
	Addr   string   `json:"addr"`
	Action string   `json:"action"`
	Type   string   `json:"type"`
	Region string   `json:"region"`
	ID     string   `json:"id,omitempty"`
	Name   string   `json:"name,omitempty"`
	Deps   []string `json:"deps,omitempty"`
}

// OpRecord is a begin or done entry for one operation. For begin, ID is the
// pre-existing target (update/delete/replace) and Attrs the resolved values
// about to be sent; for done, ID/Region/Attrs describe the resulting
// resource (empty for deletes).
type OpRecord struct {
	Addr    string         `json:"addr"`
	Action  string         `json:"action"`
	Type    string         `json:"type"`
	Region  string         `json:"region,omitempty"`
	ID      string         `json:"id,omitempty"`
	IdemKey string         `json:"idem_key,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Deps    []string       `json:"deps,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// journalRecord is the JSON payload of one frame.
type journalRecord struct {
	Kind    string    `json:"kind"`
	Meta    *Meta     `json:"meta,omitempty"`
	Intents []Intent  `json:"intents,omitempty"`
	Op      *OpRecord `json:"op,omitempty"`
}

// Journal is the write side, safe for concurrent use by the apply walk.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	meta   Meta
	killed bool
}

// NewJournal creates a journal file (truncating any stale one — the caller
// must have recovered it first) and durably writes the meta record.
func NewJournal(path string, meta Meta) (*Journal, error) {
	if meta.ID == "" {
		meta.ID = fmt.Sprintf("%s-%d", meta.Kind, time.Now().UnixNano())
	}
	if meta.Kind == "" {
		meta.Kind = "apply"
	}
	if meta.CreatedAt.IsZero() {
		meta.CreatedAt = time.Now()
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("apply: create journal: %w", err)
	}
	j := &Journal{f: f, path: path, meta: meta}
	if err := j.append(journalRecord{Kind: recMeta, Meta: &meta}, true); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// Meta returns the run identity.
func (j *Journal) Meta() Meta { return j.meta }

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// IdemKey derives the idempotency key for a create at addr. Stable across
// crash and recovery of the same run — that stability is the whole point.
func (j *Journal) IdemKey(addr string) string { return j.meta.ID + "/" + addr }

// LogIntents durably records the full op list in one frame, before any op
// runs.
func (j *Journal) LogIntents(intents []Intent) error {
	return j.append(journalRecord{Kind: recIntents, Intents: intents}, true)
}

// Begin durably records that an op is about to touch the cloud. MUST be
// fsynced before the call goes out: this is the invariant recovery leans on.
func (j *Journal) Begin(op OpRecord) error {
	op.Action = normalizeAction(op.Action)
	return j.append(journalRecord{Kind: recBegin, Op: &op}, true)
}

// Done records that an op completed, with the resulting resource identity.
// Not fsynced: losing a done record is safe (recovery re-checks the op).
func (j *Journal) Done(op OpRecord) error {
	op.Action = normalizeAction(op.Action)
	return j.append(journalRecord{Kind: recDone, Op: &op}, false)
}

// Fail records a definitive op failure (the cloud rejected it; nothing was
// mutated or the error is terminal). Best-effort, not fsynced.
func (j *Journal) Fail(addr, action string, err error) error {
	return j.append(journalRecord{Kind: recFail,
		Op: &OpRecord{Addr: addr, Action: normalizeAction(action), Error: err.Error()}}, false)
}

func normalizeAction(a string) string {
	if a == "" {
		return plan.ActionCreate.String()
	}
	return a
}

func (j *Journal) append(rec journalRecord, sync bool) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("apply: encode journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.killed {
		return ErrJournalKilled
	}
	if j.f == nil {
		return errors.New("apply: journal closed")
	}
	if _, err := j.f.Write(wal.Encode(payload)); err != nil {
		return fmt.Errorf("apply: append journal: %w", err)
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("apply: sync journal: %w", err)
		}
	}
	return nil
}

// Sync flushes the journal to disk (graceful-shutdown path).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.killed || j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the file, leaving it on disk for recovery to
// inspect.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	if !j.killed {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// Discard closes and deletes the journal — called only after the apply's
// outcome is durably committed to the golden state, at which point the
// journal has nothing left to say.
func (j *Journal) Discard() error {
	if err := j.Close(); err != nil {
		return err
	}
	if err := os.Remove(j.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Kill simulates the process dying: every subsequent append fails with
// ErrJournalKilled and nothing more reaches the disk. Chaos harness only.
func (j *Journal) Kill() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.killed = true
}

// KillTorn is Kill preceded by a half-written frame, simulating death in the
// middle of a journal write. Replay must drop the torn tail.
func (j *Journal) KillTorn() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.killed && j.f != nil {
		frame := wal.Encode([]byte(`{"kind":"done","op":{"addr":"torn"}}`))
		j.f.Write(frame[:len(frame)/2])
	}
	j.killed = true
}

// OpStatus aggregates the journal's knowledge of one op.
type OpStatus struct {
	Begin *OpRecord
	Done  *OpRecord
	// FailError is non-empty when the op failed definitively.
	FailError string
}

// InDoubt reports whether the op started but never (durably) finished.
func (s *OpStatus) InDoubt() bool {
	return s.Begin != nil && s.Done == nil && s.FailError == ""
}

// JournalState is the replayed contents of a journal file.
type JournalState struct {
	Meta    Meta
	Intents []Intent
	// Ops indexes begin/done/fail records by address.
	Ops map[string]*OpStatus
	// Path is the file the state was read from.
	Path string
}

// IntentFor returns the recorded intent for addr, or nil.
func (js *JournalState) IntentFor(addr string) *Intent {
	for i := range js.Intents {
		if js.Intents[i].Addr == addr {
			return &js.Intents[i]
		}
	}
	return nil
}

// InDoubt lists addresses whose ops began but never durably finished, in
// intent order.
func (js *JournalState) InDoubt() []string {
	var out []string
	for _, in := range js.Intents {
		if st := js.Ops[in.Addr]; st != nil && st.InDoubt() {
			out = append(out, in.Addr)
		}
	}
	return out
}

// ReadJournal replays a journal file, dropping any torn tail. A missing file
// returns (nil, nil): nothing to recover.
func ReadJournal(path string) (*JournalState, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("apply: read journal: %w", err)
	}
	js := &JournalState{Ops: map[string]*OpStatus{}, Path: path}
	wal.Scan(data, func(payload []byte) bool {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return false // CRC-intact but undecodable: treat as torn
		}
		switch rec.Kind {
		case recMeta:
			if rec.Meta != nil {
				js.Meta = *rec.Meta
			}
		case recIntents:
			js.Intents = append(js.Intents, rec.Intents...)
		case recBegin, recDone, recFail:
			if rec.Op == nil {
				break
			}
			st := js.Ops[rec.Op.Addr]
			if st == nil {
				st = &OpStatus{}
				js.Ops[rec.Op.Addr] = st
			}
			op := *rec.Op
			switch rec.Kind {
			case recBegin:
				// A fresh begin supersedes any earlier completed op on the
				// same address (rollback journals a recreate as a delete op
				// followed by a create op under one addr).
				st.Begin = &op
				st.Done = nil
				st.FailError = ""
			case recDone:
				st.Done = &op
			case recFail:
				st.FailError = op.Error
			}
		}
		return true
	})
	if js.Meta.ID == "" && len(js.Intents) == 0 && len(js.Ops) == 0 {
		// Nothing durable survived (e.g. a journal torn inside its first
		// frame): treat as absent.
		return nil, nil
	}
	return js, nil
}

// AttrsOut converts resolved attribute values to their wire (JSON) form for
// journaling. Unknown sentinels survive the round-trip, though by the time
// an op begins every attr must already be known.
// AttrsOut converts resolved attribute values to their wire (JSON) form for
// journaling.
func AttrsOut(attrs map[string]eval.Value) map[string]any {
	out := make(map[string]any, len(attrs))
	for k, v := range attrs {
		out[k] = eval.ToGo(v)
	}
	return out
}

// AttrsIn converts journaled attributes back to eval values.
func AttrsIn(attrs map[string]any) map[string]eval.Value {
	out := make(map[string]eval.Value, len(attrs))
	for k, v := range attrs {
		out[k] = eval.FromGoWithUnknowns(v)
	}
	return out
}
