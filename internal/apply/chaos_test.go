package apply

// Chaos harness: randomized kill/restart/recover cycles over the apply
// engine. Each trial builds a fresh simulated cloud, starts an apply under a
// journal, kills the "process" at a randomized crash point (before an op
// reaches the cloud, after it landed but before the response was recorded,
// or mid-journal-write with a torn frame), then restarts: replay the
// journal, recover (sometimes crashing *during* recovery too, then
// recovering again), re-plan, and finish. Every trial must converge to
// exactly the desired resources — zero orphans, zero duplicate creates,
// zero lost ops.
//
// Trial count defaults low for the inner dev loop; CI and the CR experiment
// raise it via CLOUDLESS_CHAOS_TRIALS.

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"cloudless/internal/cloud"
	"cloudless/internal/plan"
	"cloudless/internal/state"
)

// webConfigV2 mutates webConfig with an in-place update (nic name), a
// forced replacement (vm image), and a deletion (subnet count 2 -> 1), so
// mutation-phase crashes cover update, replace, and delete ops.
var webConfigV2 = func() string {
	s := strings.Replace(webConfig, `name      = "nic"`, `name      = "nic-v2"`, 1)
	s = strings.Replace(s, `nic_ids = [aws_network_interface.nic.id]`,
		"nic_ids = [aws_network_interface.nic.id]\n  image   = \"ami-linux-2027\"", 1)
	return strings.Replace(s, `count      = 2`, `count      = 1`, 1)
}()

func chaosTrials(t *testing.T, def int) int {
	if v := os.Getenv("CLOUDLESS_CHAOS_TRIALS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("CLOUDLESS_CHAOS_TRIALS=%q: not a positive integer", v)
		}
		return n
	}
	if testing.Short() {
		return def / 2
	}
	return def
}

// crashMode is how the simulated process dies.
type crashMode int

const (
	crashBefore crashMode = iota // before the op reaches the cloud
	crashAfter                   // op landed, response lost (in doubt)
	crashTorn                    // mid-journal-write: torn frame then death
)

// runCrashedApply starts an apply under a journal and kills it at the given
// point. Returns whether the crash actually fired (a countdown beyond the
// op count means the apply just succeeds).
func runCrashedApply(t *testing.T, sim *cloud.Sim, p *plan.Plan, journalPath string,
	mode crashMode, point cloud.CrashPoint, afterN int) (crashFired bool) {
	t.Helper()
	j, err := NewJournal(journalPath, Meta{Kind: "apply", Principal: "cloudless"})
	if err != nil {
		t.Fatalf("new journal: %s", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := false
	sim.InjectCrash(point, afterN, func() {
		fired = true
		if mode == crashTorn {
			j.KillTorn()
		} else {
			j.Kill()
		}
		cancel()
	})
	res := Apply(ctx, sim, p, Options{Journal: j, ContinueOnError: true})
	sim.ClearCrash()
	j.Close()
	if fired && res.Err() == nil {
		t.Fatal("apply reported success despite an injected crash")
	}
	if fired {
		return true
	}
	// Crash never fired: the apply completed, but the harness models the
	// process dying before the result reached the golden state — the journal
	// stays, and recovery must reconstruct the whole run from done records.
	if err := res.Err(); err != nil {
		t.Fatalf("crash-free apply failed: %s", err)
	}
	return false
}

// recoverAndFinish restarts from the journal: recover (optionally crashing
// once mid-recovery), commit nothing (the harness owns state), re-plan, and
// run the remaining ops. Returns the converged state.
func recoverAndFinish(t *testing.T, sim *cloud.Sim, src string, base *state.State,
	journalPath string, rng *rand.Rand, crashRecovery bool) *state.State {
	t.Helper()
	reconciled := base
	js, err := ReadJournal(journalPath)
	if err != nil {
		t.Fatalf("read journal: %s", err)
	}
	if js != nil {
		if crashRecovery {
			// Kill recovery itself partway through its cloud work, then run
			// it again — recovery must be idempotent under its own crashes.
			rctx, rcancel := context.WithCancel(context.Background())
			point := cloud.CrashBeforeOp
			if rng.Intn(2) == 0 {
				point = cloud.CrashAfterOp
			}
			sim.InjectCrash(point, 1+rng.Intn(2), rcancel)
			_, _, _ = Recover(rctx, sim, js, base, Options{})
			sim.ClearCrash()
			rcancel()
		}
		st, rep, err := Recover(context.Background(), sim, js, base, Options{})
		if err != nil {
			t.Fatalf("recover: %s", err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("recover report: %s", err)
		}
		reconciled = st
		if err := os.Remove(journalPath); err != nil {
			t.Fatal(err)
		}
	}
	p := planFor(t, src, reconciled)
	res := Apply(context.Background(), sim, p, Options{})
	if err := res.Err(); err != nil {
		t.Fatalf("continuation apply: %s", err)
	}
	return res.State
}

// TestChaosKillRestartRecover is the convergence sweep: randomized crash
// points across create, update, replace, and delete ops, torn journal
// frames, and crashes during recovery itself.
func TestChaosKillRestartRecover(t *testing.T) {
	trials := chaosTrials(t, 24)
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(strconv.Itoa(trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			sim := newSim()
			dir := t.TempDir()
			journalPath := filepath.Join(dir, "apply.journal")

			// Phase selection: half the trials crash the initial create
			// apply, half first converge and then crash a mutation apply.
			mutationPhase := trial%2 == 1
			base := state.New()
			src := webConfig
			if mutationPhase {
				p := planFor(t, webConfig, base)
				res := Apply(context.Background(), sim, p, Options{})
				if err := res.Err(); err != nil {
					t.Fatalf("baseline apply: %s", err)
				}
				base = res.State
				src = webConfigV2
			}

			mode := crashMode(rng.Intn(3))
			point := cloud.CrashBeforeOp
			if mode == crashAfter {
				point = cloud.CrashAfterOp
			} else if mode == crashTorn && rng.Intn(2) == 0 {
				point = cloud.CrashAfterOp
			}
			// webConfig has 5 mutating calls; V2 has 4 (update, delete,
			// replace = delete+create). Aim inside that window.
			afterN := 1 + rng.Intn(5)

			p := planFor(t, src, base)
			fired := runCrashedApply(t, sim, p, journalPath, mode, point, afterN)
			crashRecovery := fired && rng.Intn(3) == 0

			final := recoverAndFinish(t, sim, src, base, journalPath, rng, crashRecovery)
			assertConverged(t, sim, src, final)
		})
	}
}

// TestChaosRepeatedCrashesSameRun crashes, recovers, crashes the follow-up
// apply again, and recovers again — a run may die more than once before it
// converges.
func TestChaosRepeatedCrashesSameRun(t *testing.T) {
	trials := chaosTrials(t, 8)
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(strconv.Itoa(trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(9000 + trial)))
			sim := newSim()
			journalPath := filepath.Join(t.TempDir(), "apply.journal")
			base := state.New()

			for round := 0; round < 2; round++ {
				// Recover whatever the previous round left behind.
				if js, err := ReadJournal(journalPath); err != nil {
					t.Fatal(err)
				} else if js != nil {
					st, rep, err := Recover(context.Background(), sim, js, base, Options{})
					if err != nil || rep.Err() != nil {
						t.Fatalf("round %d recover: %v / %v", round, err, rep.Err())
					}
					base = st
					if err := os.Remove(journalPath); err != nil {
						t.Fatal(err)
					}
				}
				p := planFor(t, webConfig, base)
				if len(nonNoop(p)) == 0 {
					break
				}
				point := cloud.CrashBeforeOp
				if rng.Intn(2) == 0 {
					point = cloud.CrashAfterOp
				}
				runCrashedApply(t, sim, p, journalPath, crashMode(rng.Intn(3)), point, 1+rng.Intn(3))
			}

			final := recoverAndFinish(t, sim, webConfig, base, journalPath, rng, false)
			assertConverged(t, sim, webConfig, final)
		})
	}
}
