package apply

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"cloudless/internal/cloud"
	"cloudless/internal/graph"
	"cloudless/internal/health"
	"cloudless/internal/state"
)

func TestGuardedApplyAllHealthy(t *testing.T) {
	sim := newSim()
	p := planFor(t, webConfig, state.New())
	res := Apply(context.Background(), sim, p, Options{Guard: &GuardConfig{}})
	if err := res.Err(); err != nil {
		t.Fatalf("guarded apply of a healthy plan failed: %s", err)
	}
	if res.GateFailures != 0 || len(res.FuseTripped) != 0 {
		t.Errorf("healthy run reports gate failures %d / trips %v", res.GateFailures, res.FuseTripped)
	}
	if sim.Metrics().HealthReads == 0 {
		t.Error("guarded apply issued no readiness probes")
	}
}

func TestGuardedApplyGateFailureSkipsDependents(t *testing.T) {
	sim := newSim()
	sim.InjectUnhealthy(cloud.UnhealthySpec{Type: "aws_network_interface"})
	p := planFor(t, webConfig, state.New())
	res := Apply(context.Background(), sim, p, Options{
		ContinueOnError: true,
		Guard:           &GuardConfig{},
	})

	nicErr := res.Errors["aws_network_interface.nic"]
	if !health.IsGateError(nicErr) {
		t.Fatalf("nic error = %v, want a gate error", nicErr)
	}
	var ge *health.GateError
	errors.As(nicErr, &ge)
	if ge.Addr != "aws_network_interface.nic" {
		t.Errorf("gate error addr = %q", ge.Addr)
	}
	if res.GateFailures != 1 {
		t.Errorf("GateFailures = %d, want 1", res.GateFailures)
	}
	// The unhealthy resource exists and its identity is recorded — never an
	// orphan.
	rs := res.State.Get("aws_network_interface.nic")
	if rs == nil || rs.ID == "" {
		t.Fatal("never-ready resource missing from state")
	}
	if _, err := sim.Get(context.Background(), rs.Type, rs.ID); err != nil {
		t.Errorf("recorded unhealthy resource not in cloud: %s", err)
	}
	// Its dependent never ran; independent branches completed.
	if got := res.Report.Status["aws_virtual_machine.web"]; got != graph.StatusSkipped {
		t.Errorf("vm status = %s, want skipped", got)
	}
	for _, addr := range []string{"aws_vpc.main", "aws_subnet.s[0]", "aws_subnet.s[1]"} {
		if got := res.Report.Status[addr]; got != graph.StatusDone {
			t.Errorf("%s status = %s, want done", addr, got)
		}
	}
	if res.HealthWait <= 0 {
		t.Error("HealthWait not accounted")
	}
}

func flatVPCs(n int, prefix, region string) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `
resource "aws_vpc" %q {
  name       = %q
  region     = %q
  cidr_block = "10.%d.0.0/16"
}
`, fmt.Sprintf("%s%d", prefix, i), fmt.Sprintf("%s%d", prefix, i), region, i+byteOffset(prefix))
	}
	return b.String()
}

func byteOffset(prefix string) int {
	if len(prefix) == 0 {
		return 0
	}
	return int(prefix[0]) % 100
}

func TestGuardedFuseStopsAdmission(t *testing.T) {
	sim := newSim()
	sim.InjectUnhealthy(cloud.UnhealthySpec{Count: 3, Type: "aws_vpc"})
	p := planFor(t, flatVPCs(6, "v", "us-east-1"), state.New())
	res := Apply(context.Background(), sim, p, Options{
		Concurrency:     1, // deterministic creation order
		ContinueOnError: true,
		Guard:           &GuardConfig{}, // default MaxFailures 3
	})

	done, failed, skipped := res.Report.Counts()
	if failed != 3 {
		t.Errorf("failed = %d, want 3", failed)
	}
	if skipped != 3 {
		t.Errorf("skipped = %d, want 3 (fuse should refuse admission)", skipped)
	}
	if done != 0 {
		t.Errorf("done = %d, want 0", done)
	}
	if len(res.FuseTripped) == 0 {
		t.Fatal("fuse never tripped")
	}
	found := false
	for _, d := range res.FuseTripped {
		if d == health.RunDomain {
			found = true
		}
	}
	if !found {
		t.Errorf("run domain not tripped: %v", res.FuseTripped)
	}
}

func TestGuardedFuseRegionIsolation(t *testing.T) {
	sim := newSim()
	// Every us-west-2 create lands broken; us-east-1 is healthy. The west ops
	// sort first, so by the time east ops are admitted its sibling's fuse
	// has already tripped — they must still run.
	sim.InjectUnhealthy(cloud.UnhealthySpec{Count: 2, Region: "us-west-2"})
	src := flatVPCs(2, "awest", "us-west-2") + flatVPCs(4, "zeast", "us-east-1")
	p := planFor(t, src, state.New())
	res := Apply(context.Background(), sim, p, Options{
		Concurrency:     1,
		ContinueOnError: true,
		Guard:           &GuardConfig{}, // us-west-2 trips on fraction 2/2
	})

	if got := res.FuseTripped; len(got) != 1 || got[0] != health.RegionDomain("us-west-2") {
		t.Fatalf("FuseTripped = %v, want [region:us-west-2]", got)
	}
	for i := 0; i < 4; i++ {
		addr := fmt.Sprintf("aws_vpc.zeast%d", i)
		if got := res.Report.Status[addr]; got != graph.StatusDone {
			t.Errorf("%s = %s, want done (healthy region starved by sibling trip)", addr, got)
		}
	}
	// The first west failure already crosses the 0.5 fraction of the
	// region's 2 planned ops, so the second west op is refused admission.
	if res.GateFailures != 1 {
		t.Errorf("GateFailures = %d, want 1", res.GateFailures)
	}
	if got := res.Report.Status["aws_vpc.awest1"]; got != graph.StatusSkipped {
		t.Errorf("awest1 = %s, want skipped by the tripped region fuse", got)
	}
}

// Satellite: Result.Err must be deterministic regardless of map iteration
// order — sorted addresses, stable count.
func TestResultErrDeterministic(t *testing.T) {
	res := &Result{Errors: map[string]error{
		"c.z": errors.New("zerr"),
		"a.b": errors.New("aerr"),
		"b.m": errors.New("merr"),
	}}
	want := "3 operations failed (first: a.b: aerr)"
	for i := 0; i < 20; i++ {
		if got := res.Err().Error(); got != want {
			t.Fatalf("Err() = %q, want %q", got, want)
		}
	}
	one := &Result{Errors: map[string]error{"a.b": errors.New("boom")}}
	if got := one.Err().Error(); got != "1 operation failed: a.b: boom" {
		t.Errorf("single-error fold = %q", got)
	}
	if (&Result{}).Err() != nil {
		t.Error("empty result yields an error")
	}
}

// Satellite: ContinueOnError × journal. One branch fails definitively while
// another commits; recovery must replay the journal without re-driving the
// committed branch.
func TestContinueOnErrorJournalRecoverSkipsCommitted(t *testing.T) {
	const src = `
resource "aws_vpc" "a" {
  name       = "a"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "bad" {
  name       = "bad"
  vpc_id     = aws_vpc.a.id
  cidr_block = "192.168.0.0/24"
}

resource "aws_vpc" "b" {
  name       = "b"
  cidr_block = "10.1.0.0/16"
}
`
	sim := newSim()
	path := filepath.Join(t.TempDir(), "apply.journal")
	j, err := NewJournal(path, Meta{Kind: "apply", Principal: "cloudless"})
	if err != nil {
		t.Fatal(err)
	}
	p := planFor(t, src, state.New())
	res := Apply(context.Background(), sim, p, Options{ContinueOnError: true, Journal: j})
	if res.Err() == nil {
		t.Fatal("out-of-range subnet CIDR was accepted")
	}
	if res.State.Get("aws_vpc.b") == nil {
		t.Fatal("independent branch did not commit")
	}
	j.Close()

	createsBefore := sim.Metrics().Creates

	js, err := ReadJournal(path)
	if err != nil || js == nil {
		t.Fatalf("read journal: %v, %v", js, err)
	}
	// The definitive rejection is journaled as failed, not in doubt.
	if got := js.InDoubt(); len(got) != 0 {
		t.Fatalf("in-doubt ops after definitive failure: %v", got)
	}
	if js.Ops["aws_subnet.bad"] == nil || js.Ops["aws_subnet.bad"].FailError == "" {
		t.Fatal("failed op carries no fail record")
	}

	recovered, rep, err := Recover(context.Background(), sim, js, state.New(), Options{})
	if err != nil {
		t.Fatalf("recover: %s", err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("recover report: %s", err)
	}
	if rep.Confirmed != 2 {
		t.Errorf("Confirmed = %d, want 2 (both vpcs)", rep.Confirmed)
	}
	if rep.Resumed != 0 {
		t.Errorf("Resumed = %d, want 0 — nothing was in doubt", rep.Resumed)
	}
	// Committed branches are folded in from done records, never re-driven.
	if got := sim.Metrics().Creates; got != createsBefore {
		t.Errorf("recover issued %d extra creates", got-createsBefore)
	}
	if sim.Metrics().IdemReplays != 0 {
		t.Errorf("IdemReplays = %d, want 0", sim.Metrics().IdemReplays)
	}
	for _, addr := range []string{"aws_vpc.a", "aws_vpc.b"} {
		if recovered.Get(addr) == nil {
			t.Errorf("%s missing from reconciled state", addr)
		}
	}
	if recovered.Get("aws_subnet.bad") != nil {
		t.Error("definitively-rejected op reappeared in reconciled state")
	}
}
