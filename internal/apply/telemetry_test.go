package apply

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"cloudless/internal/plan"
	"cloudless/internal/state"
	"cloudless/internal/telemetry"
)

// fanConfig is a wide, shallow graph: one VPC, then fanWidth independent
// buckets, so a concurrency-16 walk genuinely runs 16 ops at once.
func fanConfig(fanWidth int) string {
	var b strings.Builder
	b.WriteString(`resource "aws_vpc" "main" {
  name       = "fan"
  cidr_block = "10.0.0.0/16"
}
`)
	for i := 0; i < fanWidth; i++ {
		fmt.Fprintf(&b, `resource "aws_storage_bucket" "b%d" {
  name       = "bucket-%d"
  depends_on = [aws_vpc.main]
}
`, i, i)
	}
	return b.String()
}

func TestApplySpanCorrectnessUnderParallelism(t *testing.T) {
	const fanWidth = 32
	rec := telemetry.NewRecorder(telemetry.Config{
		Clock: telemetry.NewVirtualClock(time.Unix(5000, 0), time.Microsecond),
	})
	ctx := telemetry.WithRecorder(context.Background(), rec)

	sim := newSim()
	ex := expandSrc(t, fanConfig(fanWidth))
	p, diags := plan.Compute(ctx, ex, state.New(), plan.Options{})
	if diags.HasErrors() {
		t.Fatalf("plan: %s", diags.Error())
	}
	res := Apply(ctx, sim, p, Options{Concurrency: 16, Scheduler: CriticalPathScheduler})
	if err := res.Err(); err != nil {
		t.Fatalf("apply: %s", err)
	}

	spans := rec.Spans()
	byID := map[telemetry.SpanID]*telemetry.Span{}
	var exec *telemetry.Span
	var ops []*telemetry.Span
	for _, sp := range spans {
		byID[sp.ID()] = sp
		switch sp.Name() {
		case "apply.execute":
			exec = sp
		case "apply.op":
			ops = append(ops, sp)
		}
	}
	if exec == nil {
		t.Fatal("no apply.execute span recorded")
	}
	if len(ops) != fanWidth+1 {
		t.Fatalf("recorded %d op spans, want %d", len(ops), fanWidth+1)
	}

	// No orphans: every span's parent is 0 (a root) or itself recorded, and
	// every op hangs off the execute span.
	for _, sp := range spans {
		if pid := sp.ParentID(); pid != 0 {
			if _, ok := byID[pid]; !ok {
				t.Errorf("span %s has unrecorded parent %d", sp.Name(), pid)
			}
		}
	}
	for _, op := range ops {
		if op.ParentID() != exec.ID() {
			t.Errorf("op %v not parented to apply.execute", op.Attr("addr"))
		}
	}

	// Virtual-clock consistency: strictly positive durations, exact
	// multiples of the clock step, nested inside the execute span.
	for _, op := range ops {
		d := op.Duration()
		if d <= 0 || d%time.Microsecond != 0 {
			t.Errorf("op %v duration %s not a positive step multiple", op.Attr("addr"), d)
		}
		if op.StartTime().Before(exec.StartTime()) || op.EndTime().After(exec.EndTime()) {
			t.Errorf("op %v not nested inside apply.execute", op.Attr("addr"))
		}
	}

	// Queue-wait vs execute split and scheduler attribution.
	var critical int
	for _, op := range ops {
		qw, ok := op.Attr("queue_wait_ms").(float64)
		if !ok || qw < 0 {
			t.Errorf("op %v queue_wait_ms = %v", op.Attr("addr"), op.Attr("queue_wait_ms"))
		}
		if _, ok := op.Attr("exec_ms").(float64); !ok {
			t.Errorf("op %v missing exec_ms", op.Attr("addr"))
		}
		if op.Attr("scheduler") != CriticalPathScheduler.String() {
			t.Errorf("op %v scheduler attr = %v", op.Attr("addr"), op.Attr("scheduler"))
		}
		if op.Attr("critical_path") == true {
			critical++
		}
	}
	if critical == 0 {
		t.Error("no op tagged critical_path")
	}

	// The registry saw every operation.
	if got := rec.Metrics().CounterValue("apply.operations"); got != int64(fanWidth+1) {
		t.Errorf("apply.operations = %d, want %d", got, fanWidth+1)
	}
}

func TestApplyCriticalPathIsDependencyChain(t *testing.T) {
	rec := telemetry.NewRecorder(telemetry.Config{
		Clock: telemetry.NewVirtualClock(time.Unix(5000, 0), time.Microsecond),
	})
	ctx := telemetry.WithRecorder(context.Background(), rec)
	sim := newSim()
	ex := expandSrc(t, webConfig)
	p, diags := plan.Compute(ctx, ex, state.New(), plan.Options{})
	if diags.HasErrors() {
		t.Fatalf("plan: %s", diags.Error())
	}
	if err := Apply(ctx, sim, p, Options{Concurrency: 4}).Err(); err != nil {
		t.Fatalf("apply: %s", err)
	}

	critical := map[string]bool{}
	for _, sp := range rec.Spans() {
		if sp.Name() == "apply.op" && sp.Attr("critical_path") == true {
			critical[sp.Attr("addr").(string)] = true
		}
	}
	// The longest chain in webConfig is vpc -> subnet -> nic -> vm; the
	// tagged path must include both endpoints and be a connected chain.
	if !critical["aws_virtual_machine.web"] {
		t.Errorf("terminal op not on critical path: %v", critical)
	}
	if !critical["aws_vpc.main"] {
		t.Errorf("root op not on critical path: %v", critical)
	}
	for addr := range critical {
		if p.Graph.HasNode(addr) {
			continue
		}
		t.Errorf("critical-path addr %s not in plan graph", addr)
	}
}

func TestApplySensitiveAttrsRedactedInSpans(t *testing.T) {
	const secret = "hunter2-super-secret"
	src := `
resource "aws_vpc" "main" {
  name       = "v"
  cidr_block = "10.0.0.0/16"
}
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.main.id
  cidr_block = "10.0.1.0/24"
}
resource "aws_database_instance" "db" {
  name       = "db"
  engine     = "postgres"
  password   = "` + secret + `"
  subnet_ids = [aws_subnet.s.id]
}
`
	rec := telemetry.NewRecorder(telemetry.Config{})
	ctx := telemetry.WithRecorder(context.Background(), rec)
	sim := newSim()
	ex := expandSrc(t, src)
	p, diags := plan.Compute(ctx, ex, state.New(), plan.Options{})
	if diags.HasErrors() {
		t.Fatalf("plan: %s", diags.Error())
	}
	if err := Apply(ctx, sim, p, Options{}).Err(); err != nil {
		t.Fatalf("apply: %s", err)
	}

	var sawMarker bool
	for _, sp := range rec.Spans() {
		for _, k := range sp.AttrKeys() {
			v := fmt.Sprint(sp.Attr(k))
			if strings.Contains(v, secret) {
				t.Errorf("span %s attr %s leaks the secret: %q", sp.Name(), k, v)
			}
			if k == "attr.password" && v == telemetry.Redacted {
				sawMarker = true
			}
		}
	}
	if !sawMarker {
		t.Error("sensitive attribute not recorded with the redaction marker")
	}
}
