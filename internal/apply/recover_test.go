package apply

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	"cloudless/internal/plan"
	"cloudless/internal/state"
)

// planFor computes a plan for src against prior state.
func planFor(t *testing.T, src string, prior *state.State) *plan.Plan {
	t.Helper()
	ex := expandSrc(t, src)
	p, diags := plan.Compute(context.Background(), ex, prior, plan.Options{})
	if diags.HasErrors() {
		t.Fatalf("plan: %s", diags.Error())
	}
	return p
}

// assertConverged verifies the cloud holds exactly the desired resources:
// re-planning yields no changes, every state entry exists in the cloud, and
// the cloud has no resources state does not know about.
func assertConverged(t *testing.T, sim *cloud.Sim, src string, st *state.State) {
	t.Helper()
	p := planFor(t, src, st)
	if n := len(nonNoop(p)); n != 0 {
		t.Errorf("re-plan has %d pending changes, want 0: %v", n, nonNoop(p))
	}
	ctx := context.Background()
	inCloud := 0
	for _, addr := range st.Addrs() {
		rs := st.Get(addr)
		if _, err := sim.Get(ctx, rs.Type, rs.ID); err != nil {
			t.Errorf("state entry %s (%s) missing from cloud: %s", addr, rs.ID, err)
		}
	}
	inCloud = sim.TotalResources()
	if inCloud != st.Len() {
		t.Errorf("cloud holds %d resources, state holds %d (orphans or losses)", inCloud, st.Len())
	}
}

func nonNoop(p *plan.Plan) []string {
	var out []string
	for addr, ch := range p.Changes {
		if ch.Action != plan.ActionNoop {
			out = append(out, addr)
		}
	}
	return out
}

func TestApplyWithJournalDiscardAfterSuccess(t *testing.T) {
	sim := newSim()
	path := filepath.Join(t.TempDir(), "apply.journal")
	j, err := NewJournal(path, Meta{Kind: "apply", Principal: "cloudless"})
	if err != nil {
		t.Fatal(err)
	}
	p := planFor(t, webConfig, state.New())
	res := Apply(context.Background(), sim, p, Options{Journal: j})
	if err := res.Err(); err != nil {
		t.Fatalf("apply: %s", err)
	}

	// Every non-noop op has durable begin + done before discard.
	js, err := ReadJournal(path)
	if err != nil || js == nil {
		t.Fatalf("read journal: %v, %v", js, err)
	}
	if len(js.Intents) != 5 {
		t.Errorf("%d intents, want 5", len(js.Intents))
	}
	if got := js.InDoubt(); len(got) != 0 {
		t.Errorf("in-doubt after clean apply: %v", got)
	}
	for _, in := range js.Intents {
		st := js.Ops[in.Addr]
		if st == nil || st.Begin == nil || st.Done == nil {
			t.Errorf("%s: incomplete journal entry %+v", in.Addr, st)
		}
	}
	if err := j.Discard(); err != nil {
		t.Fatal(err)
	}
}

// Crash after the cloud committed a create but before the done record: the
// op is in doubt, and recovery must resume it without a duplicate.
func TestRecoverResumesInDoubtCreate(t *testing.T) {
	sim := newSim()
	path := filepath.Join(t.TempDir(), "apply.journal")
	j, err := NewJournal(path, Meta{Kind: "apply", Principal: "cloudless"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Kill on the 3rd mutating op, after it lands server-side.
	sim.InjectCrash(cloud.CrashAfterOp, 3, func() { j.Kill(); cancel() })

	p := planFor(t, webConfig, state.New())
	res := Apply(ctx, sim, p, Options{Journal: j, ContinueOnError: true})
	if res.Err() == nil {
		t.Fatal("apply survived an injected crash")
	}
	j.Close()

	created := sim.TotalResources()
	if created == 0 {
		t.Fatal("crash fired before anything landed")
	}

	// --- restart ---
	js, err := ReadJournal(path)
	if err != nil || js == nil {
		t.Fatalf("read journal: %v, %v", js, err)
	}
	if len(js.InDoubt()) == 0 {
		t.Fatal("no in-doubt ops recorded")
	}
	recovered, rep, err := Recover(context.Background(), sim, js, state.New(), Options{})
	if err != nil {
		t.Fatalf("recover: %s", err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("recover report: %s", err)
	}
	if rep.Resumed == 0 {
		t.Error("nothing resumed")
	}
	// The in-doubt create was answered from the idempotency index.
	if sim.Metrics().IdemReplays == 0 {
		t.Error("in-doubt create was not replayed idempotently")
	}

	// Continue: re-plan from the reconciled state and finish the remainder.
	p2 := planFor(t, webConfig, recovered)
	res2 := Apply(context.Background(), sim, p2, Options{})
	if err := res2.Err(); err != nil {
		t.Fatalf("continuation apply: %s", err)
	}
	assertConverged(t, sim, webConfig, res2.State)
	// Zero duplicate creates: exactly the 5 desired resources exist.
	if sim.TotalResources() != 5 {
		t.Errorf("cloud holds %d resources, want 5", sim.TotalResources())
	}
}

// Crash before the op reaches the cloud: begin is journaled but nothing
// mutated; recovery provisions it fresh under the journaled idempotency key.
func TestRecoverRunsNeverStartedOp(t *testing.T) {
	sim := newSim()
	path := filepath.Join(t.TempDir(), "apply.journal")
	j, err := NewJournal(path, Meta{Kind: "apply", Principal: "cloudless"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sim.InjectCrash(cloud.CrashBeforeOp, 1, func() { j.Kill(); cancel() })

	p := planFor(t, webConfig, state.New())
	res := Apply(ctx, sim, p, Options{Journal: j})
	if res.Err() == nil {
		t.Fatal("apply survived an injected crash")
	}
	j.Close()
	if sim.TotalResources() != 0 {
		t.Fatalf("before-op crash still mutated the cloud: %d resources", sim.TotalResources())
	}

	js, err := ReadJournal(path)
	if err != nil || js == nil {
		t.Fatalf("read journal: %v, %v", js, err)
	}
	recovered, rep, err := Recover(context.Background(), sim, js, state.New(), Options{})
	if err != nil {
		t.Fatalf("recover: %s", err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("recover report: %s", err)
	}
	p2 := planFor(t, webConfig, recovered)
	res2 := Apply(context.Background(), sim, p2, Options{})
	if err := res2.Err(); err != nil {
		t.Fatalf("continuation apply: %s", err)
	}
	assertConverged(t, sim, webConfig, res2.State)
}

// A resource in the cloud that neither state nor a done record accounts for
// is adopted when it matches a journaled intent, deleted otherwise.
func TestRecoverOrphanSweep(t *testing.T) {
	sim := newSim()
	ctx := context.Background()

	// An orphan that matches a planned intent (type+region+name)...
	wanted, err := sim.Create(ctx, cloud.CreateRequest{
		Type: "aws_vpc", Region: "us-east-1",
		Attrs:     map[string]eval.Value{"name": eval.String("main"), "cidr_block": eval.String("10.0.0.0/16")},
		Principal: "cloudless",
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...and one no intent wants.
	stray, err := sim.Create(ctx, cloud.CreateRequest{
		Type: "aws_vpc", Region: "us-east-1",
		Attrs:     map[string]eval.Value{"name": eval.String("stray"), "cidr_block": eval.String("10.9.0.0/16")},
		Principal: "cloudless",
	})
	if err != nil {
		t.Fatal(err)
	}

	js := &JournalState{
		Meta: Meta{ID: "apply-test", Kind: "apply", Principal: "cloudless"},
		Intents: []Intent{
			{Addr: "aws_vpc.main", Action: "create", Type: "aws_vpc", Region: "us-east-1", Name: "main"},
		},
		Ops: map[string]*OpStatus{},
	}
	recovered, rep, err := Recover(ctx, sim, js, state.New(), Options{})
	if err != nil {
		t.Fatalf("recover: %s", err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("recover report: %s", err)
	}
	if len(rep.OrphansAdopted) != 1 || rep.OrphansAdopted[0] != wanted.ID {
		t.Errorf("adopted = %v, want [%s]", rep.OrphansAdopted, wanted.ID)
	}
	if len(rep.OrphansDeleted) != 1 || rep.OrphansDeleted[0] != stray.ID {
		t.Errorf("deleted = %v, want [%s]", rep.OrphansDeleted, stray.ID)
	}
	if got := recovered.Get("aws_vpc.main"); got == nil || got.ID != wanted.ID {
		t.Errorf("adopted state = %+v", got)
	}
	if _, err := sim.Get(ctx, "aws_vpc", stray.ID); !cloud.IsNotFound(err) {
		t.Errorf("stray still exists: %v", err)
	}
	// Foreign-principal resources are out of scope for the sweep.
	foreign, err := sim.Create(ctx, cloud.CreateRequest{
		Type: "aws_vpc", Region: "us-east-1",
		Attrs:     map[string]eval.Value{"name": eval.String("theirs"), "cidr_block": eval.String("10.8.0.0/16")},
		Principal: "legacy-script",
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rep2, err := Recover(ctx, sim, js, recovered, Options{})
	if err != nil {
		t.Fatalf("second recover: %s", err)
	}
	for _, id := range rep2.OrphansDeleted {
		if id == foreign.ID {
			t.Error("sweep deleted a foreign principal's resource")
		}
	}
	if _, err := sim.Get(ctx, "aws_vpc", foreign.ID); err != nil {
		t.Errorf("foreign resource gone: %v", err)
	}
}

// Recovery is idempotent: running it twice from the same journal converges
// to the same state with no extra cloud damage — the property that makes a
// crash during recovery itself safe.
func TestRecoverIdempotent(t *testing.T) {
	sim := newSim()
	path := filepath.Join(t.TempDir(), "apply.journal")
	j, err := NewJournal(path, Meta{Kind: "apply", Principal: "cloudless"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sim.InjectCrash(cloud.CrashAfterOp, 2, func() { j.Kill(); cancel() })
	p := planFor(t, webConfig, state.New())
	if res := Apply(ctx, sim, p, Options{Journal: j}); res.Err() == nil {
		t.Fatal("apply survived an injected crash")
	}
	j.Close()

	js, err := ReadJournal(path)
	if err != nil || js == nil {
		t.Fatalf("read journal: %v, %v", js, err)
	}
	st1, rep1, err := Recover(context.Background(), sim, js, state.New(), Options{})
	if err != nil || rep1.Err() != nil {
		t.Fatalf("first recover: %v / %v", err, rep1.Err())
	}
	resourcesAfterFirst := sim.TotalResources()
	st2, rep2, err := Recover(context.Background(), sim, js, state.New(), Options{})
	if err != nil || rep2.Err() != nil {
		t.Fatalf("second recover: %v / %v", err, rep2.Err())
	}
	if sim.TotalResources() != resourcesAfterFirst {
		t.Errorf("second recovery changed the cloud: %d -> %d", resourcesAfterFirst, sim.TotalResources())
	}
	if st1.Fingerprint() != st2.Fingerprint() {
		t.Error("recoveries diverged")
	}
}

// An op the cloud definitively rejected (journaled fail) is not re-driven.
func TestRecoverSkipsDefinitiveFailures(t *testing.T) {
	sim := newSim()
	js := &JournalState{
		Meta: Meta{ID: "apply-test", Kind: "apply", Principal: "cloudless"},
		Intents: []Intent{
			{Addr: "aws_vpc.bad", Action: "create", Type: "aws_vpc", Region: "us-east-1", Name: "bad"},
		},
		Ops: map[string]*OpStatus{
			"aws_vpc.bad": {
				Begin:     &OpRecord{Addr: "aws_vpc.bad", Action: "create", Type: "aws_vpc", Region: "us-east-1"},
				FailError: "InvalidParameter: required property \"cidr_block\" was not provided",
			},
		},
	}
	st, rep, err := Recover(context.Background(), sim, js, state.New(), Options{})
	if err != nil || rep.Err() != nil {
		t.Fatalf("recover: %v / %v", err, rep.Err())
	}
	if rep.Resumed != 0 || st.Len() != 0 || sim.TotalResources() != 0 {
		t.Errorf("failed op was re-driven: resumed=%d state=%d cloud=%d",
			rep.Resumed, st.Len(), sim.TotalResources())
	}
}

func TestDefinitiveFailureClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&cloud.APIError{Code: cloud.CodeInvalid}, true},
		{&cloud.APIError{Code: cloud.CodeConflict}, true},
		{&cloud.APIError{Code: cloud.CodeNotFound}, true},
		{&cloud.APIError{Code: cloud.CodeThrottled, Retryable: true}, false},
		{&cloud.APIError{Code: cloud.CodeInternal, Retryable: true}, false},
		{cloud.ErrCrashed, false},
		{context.Canceled, false},
		{errors.New("transport: connection reset"), false},
	}
	for _, c := range cases {
		if got := DefinitiveFailure(c.err); got != c.want {
			t.Errorf("DefinitiveFailure(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
