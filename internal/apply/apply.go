// Package apply executes plans against a cloud: a concurrency-bounded
// parallel walk over the plan graph with pluggable scheduling (the baseline
// FIFO graph walk vs the §3.3 critical-path-first scheduler) and value
// propagation so attributes referencing freshly-created resources resolve
// to real IDs. Retry, backoff, and adaptive cloud concurrency live in the
// provider runtime (internal/provider), which every operation routes
// through — the walk's Concurrency only governs graph-ordering parallelism.
package apply

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	"cloudless/internal/events"
	"cloudless/internal/graph"
	"cloudless/internal/health"
	"cloudless/internal/plan"
	"cloudless/internal/provider"
	"cloudless/internal/schema"
	"cloudless/internal/state"
	"cloudless/internal/telemetry"
)

// Scheduler selects the ready-node ordering policy.
type Scheduler int

// Schedulers.
const (
	// FIFOScheduler mimics today's best-effort graph walk: ready nodes run
	// in address order with no cost model.
	FIFOScheduler Scheduler = iota
	// CriticalPathScheduler prioritizes ready nodes by the length of the
	// longest remaining dependency chain hanging off them.
	CriticalPathScheduler
)

// String names the scheduler.
func (s Scheduler) String() string {
	if s == CriticalPathScheduler {
		return "critical-path"
	}
	return "fifo"
}

// Options configure an apply.
type Options struct {
	// Concurrency bounds simultaneous cloud operations (default 10, the
	// same default Terraform uses).
	Concurrency int
	Scheduler   Scheduler
	// MaxRetries bounds attempts per operation on retryable errors. It is
	// forwarded to the provider runtime when the applier has to wrap a bare
	// cloud itself; a caller-supplied runtime keeps its own policy.
	MaxRetries int
	// RetryBase seeds the runtime's full-jitter exponential backoff.
	RetryBase time.Duration
	// Principal is recorded in the cloud activity log.
	Principal string
	// ContinueOnError keeps independent branches running after a failure.
	ContinueOnError bool
	// Journal, when set, makes the apply crash-safe: intents are durably
	// recorded before the first op, a begin record is fsynced before every
	// cloud call, and creates carry idempotency keys derived from the
	// journal's run ID so a crashed run's retry never duplicates.
	Journal *Journal
	// Guard, when set, enables health-gated execution (DESIGN.md S24):
	// every create/update is probed until ready before its op counts as
	// done and dependents unblock, and a per-run/per-region failure fuse
	// stops admitting new ops in a domain that has failed too much.
	Guard *GuardConfig
	// Wave labels this execution's events on the bus ("canary", "main");
	// empty means the whole changeset runs as one wave ("all").
	Wave string
	// BatchOps coalesces concurrent creates and reads into bulk cloud
	// calls (cloud.BatchCreate / cloud.BatchGet): a wave of independent
	// creates the walker unblocks together costs one admitted round-trip
	// instead of one per resource. Per-op semantics — journal begin/done
	// records, idempotency keys, health gating — are untouched; only the
	// wire dispatch is shared.
	BatchOps bool
	// BatchLinger overrides how long the first op of a batching window
	// waits for company (default 2ms).
	BatchLinger time.Duration

	// idemPrefix seeds per-op idempotency keys; set by Apply from the
	// journal's run ID, or generated fresh so even journal-less applies get
	// replay-safe creates (a transport error mid-create retried by the
	// provider runtime is the same in-doubt problem at smaller scale).
	idemPrefix string
	// healthWaitNs accumulates readiness-probe wait across ops; set by
	// Apply.
	healthWaitNs *int64
}

// GuardConfig configures health-gated execution.
type GuardConfig struct {
	// Probe bounds the per-resource readiness wait.
	Probe health.ProbeOptions
	// MaxFailures and MaxFailureFraction are the fuse trip thresholds,
	// applied per failure domain (the whole run, and each region). Zero
	// means the health package defaults (3 failures / 0.5 of the domain's
	// planned ops).
	MaxFailures        int
	MaxFailureFraction float64
	// Fuse, when set, is used instead of building one from the thresholds.
	// The canary orchestration in internal/guard shares one fuse across
	// waves so failure counts accumulate over the whole changeset.
	Fuse *health.Fuse
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Concurrency <= 0 {
		out.Concurrency = 10
	}
	if out.MaxRetries <= 0 {
		out.MaxRetries = 4
	}
	if out.RetryBase <= 0 {
		out.RetryBase = 50 * time.Millisecond
	}
	if out.Principal == "" {
		out.Principal = "cloudless"
	}
	return out
}

// Result summarizes an apply.
type Result struct {
	State   *state.State
	Report  *graph.WalkReport
	Applied int
	Retries int
	Elapsed time.Duration
	// Outputs holds evaluated root outputs.
	Outputs map[string]eval.Value
	// Errors by address.
	Errors map[string]error

	// Guarded-apply accounting (zero values when Guard is off).
	//
	// HealthWait is the total time spent in readiness probes; GateFailures
	// counts ops whose resource never turned ready despite the API ACK;
	// FuseTripped lists failure domains whose circuit breaker opened.
	HealthWait   time.Duration
	GateFailures int
	FuseTripped  []string
	// RolledBack lists the addresses reverted by the auto-rollback, and
	// Reverted reports that the rollback completed cleanly — both set by
	// the orchestration in internal/guard, never by Apply itself.
	RolledBack []string
	Reverted   bool
}

// Err folds failures into one error, deterministically: addresses are
// folded in sorted order with a count, so CLI output and test assertions
// are stable run-to-run.
func (r *Result) Err() error {
	if r.Report != nil {
		return r.Report.Err()
	}
	if len(r.Errors) == 0 {
		return nil
	}
	addrs := make([]string, 0, len(r.Errors))
	for a := range r.Errors {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	first := r.Errors[addrs[0]]
	if len(addrs) == 1 {
		return fmt.Errorf("1 operation failed: %s: %w", addrs[0], first)
	}
	return fmt.Errorf("%d operations failed (first: %s: %s)", len(addrs), addrs[0], first)
}

// Apply executes the plan and returns the new state. The returned state
// reflects every operation that completed, even when some failed — exactly
// like real IaC engines, partial progress is recorded.
func Apply(ctx context.Context, cl cloud.Interface, p *plan.Plan, opts Options) *Result {
	o := (&opts).withDefaults()
	start := time.Now()

	// All cloud I/O goes through the provider runtime: callers that hand us
	// a bare simulator or HTTP client get one wrapped on the spot (retry
	// policy from our options); a runtime handed down from the facade is
	// used as-is, so its cache and AIMD window are shared across layers.
	cl = provider.New(cl, provider.Options{MaxRetries: o.MaxRetries, RetryBase: o.RetryBase})

	// Batched dispatch sits above the runtime: ops still arrive one per
	// graph node, but concurrent calls share wire batches (which the
	// runtime admits through its gate as single requests).
	if o.BatchOps {
		cl = cloud.NewCoalescer(cl, cloud.CoalescerOptions{Linger: o.BatchLinger})
	}

	newState := p.PriorState.Clone()
	var stateMu sync.Mutex
	var retries int64

	res := &Result{State: newState, Errors: map[string]error{}, Outputs: map[string]eval.Value{}}

	// Idempotency keys: the journal's run ID when journaling (stable across
	// crash and recovery), a fresh run ID otherwise.
	if o.Journal != nil {
		o.idemPrefix = o.Journal.Meta().ID
		if err := o.Journal.LogIntents(planIntents(p)); err != nil {
			res.Errors["journal"] = err
			res.Elapsed = time.Since(start)
			return res
		}
	} else if o.idemPrefix == "" {
		o.idemPrefix = fmt.Sprintf("run-%d", time.Now().UnixNano())
	}

	// Event bus: every lifecycle transition below is published for live
	// consumers (Stack.Subscribe, -watch, the flight recorder). A nil bus
	// makes each Publish a no-op, so the unwatched hot path stays clean.
	bus := events.FromContext(ctx)
	wave := o.Wave
	if wave == "" {
		wave = "all"
	}
	waveOps := p.Creates + p.Updates + p.Replaces + p.Deletes
	bus.Publish(events.Event{Kind: "apply.wave_start", Run: o.idemPrefix,
		Wave: wave, N: int64(waveOps)})

	// Guarded mode: every op reports into the fuse, and the walk consults
	// it before admitting new ops. The fuse is usually built here from the
	// plan's per-domain op counts; the canary orchestration passes a shared
	// one spanning all waves.
	var fuse *health.Fuse
	var healthWait int64
	if o.Guard != nil {
		o.healthWaitNs = &healthWait
		fuse = o.Guard.Fuse
		if fuse == nil {
			reg := telemetry.FromContext(ctx).Metrics()
			fuse = health.NewFuse(health.FuseOptions{
				MaxFailures:        o.Guard.MaxFailures,
				MaxFailureFraction: o.Guard.MaxFailureFraction,
				OnTrip: func(domain string) {
					reg.Counter("apply.fuse_trips", "domain", domain).Inc()
					bus.Publish(events.Event{Kind: "apply.fuse_trip",
						Run: o.idemPrefix, Domain: domain})
				},
			})
			SeedFuse(fuse, p)
		}
	}

	var priority func(string) float64
	if o.Scheduler == CriticalPathScheduler {
		levels, _, err := p.Graph.CriticalPath(p.Costs())
		if err == nil {
			priority = func(addr string) float64 { return float64(levels[addr]) }
		}
	}

	// Telemetry: one span for the whole execution, one per resource
	// operation, with the scheduler queue-wait vs execute split recorded as
	// attributes. Everything below is a no-op when no recorder rides ctx.
	rec := telemetry.FromContext(ctx)
	execCtx, execSpan := telemetry.StartSpan(ctx, "apply.execute")
	execSpan.SetAttr("scheduler", o.Scheduler.String())
	execSpan.SetAttr("concurrency", o.Concurrency)
	execSpan.SetAttr("operations", p.Graph.Len())
	var readyMu sync.Mutex
	readyAt := map[string]time.Time{}
	spanByAddr := map[string]*telemetry.Span{}
	walkOpts := graph.WalkOptions{
		Concurrency:     o.Concurrency,
		Priority:        priority,
		ContinueOnError: o.ContinueOnError,
	}
	if fuse != nil {
		walkOpts.Admit = func(addr string) bool {
			ch := p.Changes[addr]
			if ch == nil || ch.Action == plan.ActionNoop {
				return true
			}
			return fuse.Allow(changeDomains(ch)...)
		}
	}
	if rec != nil {
		walkOpts.OnReady = func(node string) {
			now := rec.Now()
			readyMu.Lock()
			readyAt[node] = now
			readyMu.Unlock()
		}
	}

	report := p.Graph.Walk(ctx, walkOpts, func(addr string) error {
		ch := p.Changes[addr]
		if ch == nil {
			return fmt.Errorf("apply: no change for %s", addr)
		}
		opCtx, sp := telemetry.StartSpan(execCtx, "apply.op")
		opCtx, opRetries := provider.WithRetryCounter(opCtx)
		opStart := time.Now()
		if ch.Action != plan.ActionNoop {
			bus.Publish(events.Event{Kind: "apply.op_begin", Run: o.idemPrefix,
				Wave: wave, Addr: addr, Type: ch.Type, Action: ch.Action.String()})
		}
		if sp != nil {
			sp.SetAttr("addr", addr)
			sp.SetAttr("action", ch.Action.String())
			sp.SetAttr("type", ch.Type)
			sp.SetAttr("scheduler", o.Scheduler.String())
			readyMu.Lock()
			ready, ok := readyAt[addr]
			readyMu.Unlock()
			if ok {
				sp.SetAttr("queue_wait_ms", durMillis(sp.StartTime().Sub(ready)))
			}
		}
		err := applyChange(opCtx, cl, p, ch, o, newState, &stateMu)
		atomic.AddInt64(&retries, opRetries.Load())
		if ch.Action != plan.ActionNoop {
			ev := events.Event{Kind: "apply.op_done", Run: o.idemPrefix,
				Wave: wave, Addr: addr, Type: ch.Type, Action: ch.Action.String(),
				Retries: opRetries.Load(), Ms: durMillis(time.Since(opStart))}
			if err != nil {
				ev.Kind, ev.Err = "apply.op_fail", err.Error()
			}
			bus.Publish(ev)
		}
		if fuse != nil && ch.Action != plan.ActionNoop {
			if err != nil {
				fuse.Failure(changeDomains(ch)...)
			} else {
				fuse.Success(changeDomains(ch)...)
			}
		}
		if err != nil {
			stateMu.Lock()
			res.Errors[addr] = err
			stateMu.Unlock()
		}
		if sp != nil {
			sp.SetAttr("retries", opRetries.Load())
			sp.EndErr(err)
			sp.SetAttr("exec_ms", durMillis(sp.Duration()))
			readyMu.Lock()
			spanByAddr[addr] = sp
			readyMu.Unlock()
		}
		return err
	})

	res.Report = report
	done, _, _ := report.Counts()
	res.Applied = done
	res.Retries = int(atomic.LoadInt64(&retries))
	res.Elapsed = time.Since(start)
	if fuse != nil {
		res.HealthWait = time.Duration(atomic.LoadInt64(&healthWait))
		res.FuseTripped = fuse.Tripped()
		for _, err := range res.Errors {
			if health.IsGateError(err) {
				res.GateFailures++
			}
		}
	}

	if rec != nil {
		markCriticalPath(p.Graph, spanByAddr)
		failed := len(res.Errors)
		execSpan.SetAttr("applied", done)
		execSpan.SetAttr("failed", failed)
		execSpan.SetAttr("retries", res.Retries)
		execSpan.End()
		reg := rec.Metrics()
		reg.Counter("apply.operations").Add(int64(done))
		reg.Counter("apply.retries").Add(int64(res.Retries))
		reg.Counter("apply.failures").Add(int64(failed))
	}

	// Evaluate root outputs against final values.
	for name, spec := range p.Values.RootOutputs() {
		res.Outputs[name] = p.Values.OutputValue(spec)
		newState.Outputs[name] = res.Outputs[name]
	}
	bus.Publish(events.Event{Kind: "apply.wave_finish", Run: o.idemPrefix,
		Wave: wave, N: int64(res.Applied), Retries: int64(res.Retries),
		Ms: durMillis(res.Elapsed)})
	return res
}

// durMillis renders a duration as float milliseconds for span attributes.
func durMillis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// markCriticalPath walks backwards from the operation that finished last,
// at each step following the dependency that finished latest, and tags the
// chain's spans — so an exported trace visually answers "which chain bounded
// the makespan" (the E2 question) without re-running the scheduler.
func markCriticalPath(g *graph.Graph, spanByAddr map[string]*telemetry.Span) {
	var cur string
	var curEnd time.Time
	for addr, sp := range spanByAddr {
		if end := sp.EndTime(); cur == "" || end.After(curEnd) {
			cur, curEnd = addr, end
		}
	}
	for cur != "" {
		spanByAddr[cur].SetAttr("critical_path", true)
		next := ""
		var nextEnd time.Time
		for _, dep := range g.Dependencies(cur) {
			sp, ok := spanByAddr[dep]
			if !ok {
				continue
			}
			if end := sp.EndTime(); next == "" || end.After(nextEnd) {
				next, nextEnd = dep, end
			}
		}
		cur = next
	}
}

// changeDomains returns the failure domains an op belongs to: the whole run
// plus its region.
func changeDomains(ch *plan.Change) []string {
	attrs := ch.After
	if ch.Action == plan.ActionDelete {
		attrs = ch.Before
	}
	return health.Domains(regionOf(ch, attrs))
}

// SeedFuse registers the plan's non-noop op counts into the fuse's failure
// domains, so fractional trip thresholds are relative to what the run (and
// each region) actually planned to do.
func SeedFuse(f *health.Fuse, p *plan.Plan) {
	for _, ch := range p.Changes {
		if ch.Action == plan.ActionNoop {
			continue
		}
		for _, d := range changeDomains(ch) {
			f.Plan(d, 1)
		}
	}
}

// planIntents flattens the plan's non-noop changes into journal intents,
// sorted by address for deterministic journals.
func planIntents(p *plan.Plan) []Intent {
	var out []Intent
	for addr, ch := range p.Changes {
		if ch.Action == plan.ActionNoop {
			continue
		}
		in := Intent{Addr: addr, Action: ch.Action.String(), Type: ch.Type,
			Region: ch.Region, ID: ch.ID, Deps: ch.Deps}
		attrs := ch.After
		if ch.Action == plan.ActionDelete {
			attrs = ch.Before
		}
		if v, ok := attrs["name"]; ok && v.IsKnown() && v.Kind() == eval.KindString {
			in.Name = v.AsString()
		}
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// DefinitiveFailure reports whether an op error proves the cloud rejected
// the request without mutating anything — only those may be journaled as
// "fail". Everything else (transport faults, cancellation, simulated
// crashes) leaves the op in doubt, and recovery must re-check it.
func DefinitiveFailure(err error) bool {
	var ae *cloud.APIError
	if !errors.As(err, &ae) {
		return false
	}
	return ae.Code >= 400 && ae.Code < 500 && ae.Code != cloud.CodeThrottled && !ae.Retryable
}

// applyChange performs one operation; the provider runtime behind cl owns
// retries and backoff.
func applyChange(ctx context.Context, cl cloud.Interface, p *plan.Plan, ch *plan.Change,
	o Options, newState *state.State, stateMu *sync.Mutex) error {

	j := o.Journal
	switch ch.Action {
	case plan.ActionDelete:
		if j != nil {
			if err := j.Begin(OpRecord{Addr: ch.Addr, Action: ch.Action.String(),
				Type: ch.Type, Region: ch.Region, ID: ch.ID}); err != nil {
				return err
			}
		}
		if err := cl.Delete(ctx, ch.Type, ch.ID, o.Principal); err != nil && !cloud.IsNotFound(err) {
			if j != nil && DefinitiveFailure(err) {
				_ = j.Fail(ch.Addr, ch.Action.String(), err)
			}
			return err
		}
		// A 404 means already gone: deletion is idempotent.
		stateMu.Lock()
		newState.Remove(ch.Addr)
		stateMu.Unlock()
		if j != nil {
			if err := j.Done(OpRecord{Addr: ch.Addr, Action: ch.Action.String(),
				Type: ch.Type, Region: ch.Region, ID: ch.ID}); err != nil {
				return err
			}
		}
		return nil

	case plan.ActionCreate, plan.ActionUpdate, plan.ActionReplace:
		// Re-evaluate attributes now that dependencies hold concrete values.
		attrs, diags := p.Values.EvaluateAttrs(ch.Instance)
		if diags.HasErrors() {
			return fmt.Errorf("evaluate %s: %w", ch.Addr, diags.Err())
		}
		rs, _ := schema.LookupResource(ch.Type)
		for name, a := range rs.Attrs {
			if _, set := attrs[name]; !set && a.HasDefault {
				attrs[name] = a.Default
			}
		}
		for name, v := range attrs {
			if !v.IsKnown() {
				return fmt.Errorf("apply %s: attribute %q is still unknown after dependencies resolved", ch.Addr, name)
			}
			if v.IsNull() {
				delete(attrs, name)
			}
		}
		region := regionOf(ch, attrs)

		// Record the attribute values this operation sends on its span,
		// redacting schema-declared secrets with the same marker the display
		// path uses — a trace file must never leak what the terminal hides.
		if sp := telemetry.SpanFromContext(ctx); sp != nil {
			sp.SetAttr("region", region)
			for name, v := range attrs {
				if a := rs.Attr(name); a != nil && a.Sensitive {
					sp.SetAttr("attr."+name, telemetry.Redacted)
				} else {
					sp.SetAttr("attr."+name, v.String())
				}
			}
		}

		// The idempotency key is stable for this run+address: a crashed run
		// recovering under the same journal ID retries the create under the
		// same key and gets the original resource back.
		idemKey := o.idemPrefix + "/" + ch.Addr

		// For updates, compute the delta up front so the journal records
		// exactly what is about to be sent.
		var delta map[string]eval.Value
		if ch.Action == plan.ActionUpdate {
			// Only send genuinely-changed, non-computed attributes.
			delta = map[string]eval.Value{}
			for _, name := range ch.ChangedAttrs {
				a := rs.Attr(name)
				if a == nil || a.Computed {
					continue
				}
				v, ok := attrs[name]
				if !ok {
					continue
				}
				if before, had := ch.Before[name]; had && before.Equal(v) {
					continue // resolved to the same value: no change
				}
				delta[name] = v
			}
		}

		if j != nil {
			rec := OpRecord{Addr: ch.Addr, Action: ch.Action.String(), Type: ch.Type,
				Region: region, ID: ch.ID, Deps: ch.Deps}
			switch ch.Action {
			case plan.ActionCreate, plan.ActionReplace:
				rec.IdemKey = idemKey
				rec.Attrs = AttrsOut(attrs)
			case plan.ActionUpdate:
				rec.Attrs = AttrsOut(delta)
			}
			if err := j.Begin(rec); err != nil {
				return err
			}
		}

		var created *cloud.Resource
		op := func() error {
			var err error
			switch ch.Action {
			case plan.ActionCreate:
				created, err = cl.Create(ctx, cloud.CreateRequest{
					Type: ch.Type, Region: region, Attrs: attrs, Principal: o.Principal,
					IdempotencyKey: idemKey,
				})
			case plan.ActionUpdate:
				if len(delta) == 0 {
					created, err = cl.Get(ctx, ch.Type, ch.ID)
					return err
				}
				created, err = cl.Update(ctx, cloud.UpdateRequest{
					Type: ch.Type, ID: ch.ID, Attrs: delta, Principal: o.Principal,
				})
			case plan.ActionReplace:
				if derr := cl.Delete(ctx, ch.Type, ch.ID, o.Principal); derr != nil && !cloud.IsNotFound(derr) {
					return derr
				}
				created, err = cl.Create(ctx, cloud.CreateRequest{
					Type: ch.Type, Region: region, Attrs: attrs, Principal: o.Principal,
					IdempotencyKey: idemKey,
				})
			}
			return err
		}
		if err := op(); err != nil {
			if j != nil && DefinitiveFailure(err) {
				_ = j.Fail(ch.Addr, ch.Action.String(), err)
			}
			return err
		}

		// Health gate: the API ACKed, but in guarded mode the op is not done
		// until the resource turns ready. A resource that never does is a
		// failure — but it exists, so its identity is recorded in state and
		// journal below either way; the blast radius (dependents) is cut by
		// returning the gate error, and cleanup is the auto-rollback's job.
		var gateErr error
		if o.Guard != nil {
			waited, perr := health.Probe(ctx, cl, ch.Type, created.ID, o.Guard.Probe)
			if o.healthWaitNs != nil {
				atomic.AddInt64(o.healthWaitNs, int64(waited))
			}
			if sp := telemetry.SpanFromContext(ctx); sp != nil {
				sp.SetAttr("health_wait_ms", durMillis(waited))
			}
			if rec := telemetry.FromContext(ctx); rec != nil {
				rec.Metrics().Histogram("apply.health_wait_ms", "type", ch.Type).
					Observe(durMillis(waited))
			}
			gateEv := events.Event{Kind: "apply.gate_pass", Run: o.idemPrefix,
				Addr: ch.Addr, Type: ch.Type, ID: created.ID, Region: created.Region,
				Ms: durMillis(waited)}
			if perr != nil {
				var ge *health.GateError
				if errors.As(perr, &ge) {
					ge.Addr = ch.Addr
				}
				gateErr = perr
				gateEv.Kind, gateEv.Err = "apply.gate_fail", perr.Error()
			}
			events.FromContext(ctx).Publish(gateEv)
		}

		stateMu.Lock()
		prev := newState.Get(ch.Addr)
		rsState := &state.ResourceState{
			Addr: ch.Addr, Type: ch.Type, ID: created.ID, Region: created.Region,
			Attrs: created.Attrs, Dependencies: ch.Deps,
			UpdatedAt: time.Now(),
		}
		if prev != nil && ch.Action == plan.ActionUpdate {
			rsState.CreatedAt = prev.CreatedAt
		} else {
			rsState.CreatedAt = time.Now()
		}
		newState.Set(rsState)
		stateMu.Unlock()

		if j != nil {
			if err := j.Done(OpRecord{Addr: ch.Addr, Action: ch.Action.String(),
				Type: ch.Type, Region: created.Region, ID: created.ID,
				Attrs: AttrsOut(created.Attrs), Deps: ch.Deps}); err != nil {
				return err
			}
		}
		if gateErr != nil {
			// State and journal know the resource; dependents must not run.
			return gateErr
		}
		p.Values.Set(ch.Addr, eval.Object(created.Attrs))
		return nil

	default:
		return nil
	}
}

func regionOf(ch *plan.Change, attrs map[string]eval.Value) string {
	for _, name := range []string{"region", "location"} {
		if v, ok := attrs[name]; ok && v.Kind() == eval.KindString {
			return v.AsString()
		}
	}
	return ch.Region
}

// Destroy builds and applies a plan that deletes everything in the state,
// in reverse dependency order.
func Destroy(ctx context.Context, cl cloud.Interface, prior *state.State, opts Options) *Result {
	p := &plan.Plan{
		Changes:    map[string]*plan.Change{},
		Graph:      graph.New(),
		PriorState: prior.Clone(),
		Values:     plan.NewEmptyValueStore(),
	}
	for _, addr := range prior.Addrs() {
		rs := prior.Get(addr)
		p.Changes[addr] = &plan.Change{
			Addr: addr, Action: plan.ActionDelete, Type: rs.Type,
			Region: rs.Region, ID: rs.ID, Before: rs.Attrs, Deps: rs.Dependencies,
		}
		p.Deletes++
		p.Graph.AddNode(addr)
	}
	// Reverse edges: dependents first.
	instancesOf := map[string][]string{}
	for _, addr := range prior.Addrs() {
		r := plan.ResourceAddrOf(addr)
		instancesOf[r] = append(instancesOf[r], addr)
	}
	for _, addr := range prior.Addrs() {
		for _, depResource := range prior.Get(addr).Dependencies {
			for _, depInst := range instancesOf[depResource] {
				if depInst == addr {
					continue
				}
				_ = p.Graph.AddEdge(depInst, addr)
			}
		}
	}
	return Apply(ctx, cl, p, opts)
}
