package apply

import (
	"fmt"
	"testing"
	"time"

	"cloudless/internal/graph"
)

func secCost(m map[string]int) func(string) time.Duration {
	return func(n string) time.Duration { return time.Duration(m[n]) * time.Second }
}

func TestSimulateScheduleSerial(t *testing.T) {
	g := graph.New()
	_ = g.AddEdge("b", "a")
	_ = g.AddEdge("c", "b")
	res, err := SimulateSchedule(g, secCost(map[string]int{"a": 1, "b": 2, "c": 3}), 4, FIFOScheduler)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6*time.Second {
		t.Errorf("makespan = %v, want 6s (pure chain)", res.Makespan)
	}
	if res.Start["b"] != 1*time.Second || res.Finish["c"] != 6*time.Second {
		t.Errorf("schedule: %v %v", res.Start, res.Finish)
	}
}

func TestSimulateScheduleParallel(t *testing.T) {
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	costs := secCost(map[string]int{"n0": 5, "n1": 5, "n2": 5, "n3": 5})
	unlimited, _ := SimulateSchedule(g, costs, 4, FIFOScheduler)
	if unlimited.Makespan != 5*time.Second {
		t.Errorf("4 workers: %v", unlimited.Makespan)
	}
	two, _ := SimulateSchedule(g, costs, 2, FIFOScheduler)
	if two.Makespan != 10*time.Second {
		t.Errorf("2 workers: %v", two.Makespan)
	}
	if unlimited.TotalWork != 20*time.Second {
		t.Errorf("total work = %v", unlimited.TotalWork)
	}
}

// TestCriticalPathBeatsFIFO reproduces the §3.3 claim on the classic
// adversarial shape: one long chain plus many short independent tasks, with
// bounded workers. FIFO (lexicographic) starts the short tasks first and
// delays the chain; critical-path-first starts the chain immediately.
func TestCriticalPathBeatsFIFO(t *testing.T) {
	g := graph.New()
	costs := map[string]int{}
	// Long chain z0 <- z1 <- z2 (named so FIFO picks them LAST).
	_ = g.AddEdge("z1", "z0")
	_ = g.AddEdge("z2", "z1")
	costs["z0"], costs["z1"], costs["z2"] = 10, 10, 10
	// Many short independent tasks named to sort first.
	for i := 0; i < 8; i++ {
		n := fmt.Sprintf("a%d", i)
		g.AddNode(n)
		costs[n] = 10
	}
	fifo, err := SimulateSchedule(g, secCost(costs), 2, FIFOScheduler)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := SimulateSchedule(g, secCost(costs), 2, CriticalPathScheduler)
	if err != nil {
		t.Fatal(err)
	}
	// CP starts the chain immediately: one worker runs the 30s chain then
	// picks up short tasks; the optimum for 110s of work with a 30s chain
	// on 2 workers is 60s, and CP achieves it.
	if cp.Makespan != 60*time.Second {
		t.Errorf("critical-path makespan = %v, want 60s", cp.Makespan)
	}
	// FIFO (lexicographic) drains all eight short tasks first, so the chain
	// only starts at t=40 and finishes at t=70.
	if fifo.Makespan != 70*time.Second {
		t.Errorf("fifo makespan = %v, want 70s", fifo.Makespan)
	}
}

func TestSimulateScheduleDeterministic(t *testing.T) {
	g := graph.New()
	for i := 0; i < 20; i++ {
		g.AddNode(fmt.Sprintf("n%02d", i))
		if i > 0 && i%3 == 0 {
			_ = g.AddEdge(fmt.Sprintf("n%02d", i), fmt.Sprintf("n%02d", i-1))
		}
	}
	cost := func(string) time.Duration { return time.Second }
	a, _ := SimulateSchedule(g, cost, 3, CriticalPathScheduler)
	b, _ := SimulateSchedule(g, cost, 3, CriticalPathScheduler)
	if a.Makespan != b.Makespan {
		t.Error("simulation not deterministic")
	}
	for n := range a.Start {
		if a.Start[n] != b.Start[n] {
			t.Fatalf("start time of %s differs", n)
		}
	}
}

func TestSimulateScheduleRejectsCycle(t *testing.T) {
	g := graph.New()
	_ = g.AddEdge("a", "b")
	_ = g.AddEdge("b", "a")
	if _, err := SimulateSchedule(g, func(string) time.Duration { return time.Second }, 1, FIFOScheduler); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestSimulateScheduleEmpty(t *testing.T) {
	res, err := SimulateSchedule(graph.New(), func(string) time.Duration { return 0 }, 1, FIFOScheduler)
	if err != nil || res.Makespan != 0 {
		t.Errorf("empty graph: %v, %v", res, err)
	}
}
