package apply

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cloudless/internal/eval"
)

func tempJournal(t *testing.T) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "apply.journal")
	j, err := NewJournal(path, Meta{Kind: "apply", Principal: "cloudless", BaseSerial: 3})
	if err != nil {
		t.Fatalf("new journal: %s", err)
	}
	return j, path
}

func TestJournalRoundTrip(t *testing.T) {
	j, path := tempJournal(t)
	intents := []Intent{
		{Addr: "aws_vpc.main", Action: "create", Type: "aws_vpc", Region: "us-east-1", Name: "main"},
		{Addr: "aws_subnet.s[0]", Action: "create", Type: "aws_subnet", Region: "us-east-1",
			Name: "s-0", Deps: []string{"aws_vpc.main"}},
		{Addr: "aws_vpc.old", Action: "delete", Type: "aws_vpc", Region: "us-east-1", ID: "vpc-00000009"},
	}
	if err := j.LogIntents(intents); err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(OpRecord{Addr: "aws_vpc.main", Action: "create", Type: "aws_vpc",
		Region: "us-east-1", IdemKey: j.IdemKey("aws_vpc.main"),
		Attrs: AttrsOut(map[string]eval.Value{"name": eval.String("main")})}); err != nil {
		t.Fatal(err)
	}
	if err := j.Done(OpRecord{Addr: "aws_vpc.main", Action: "create", Type: "aws_vpc",
		Region: "us-east-1", ID: "vpc-00000001"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(OpRecord{Addr: "aws_subnet.s[0]", Action: "create", Type: "aws_subnet",
		Region: "us-east-1", IdemKey: j.IdemKey("aws_subnet.s[0]")}); err != nil {
		t.Fatal(err)
	}
	if err := j.Fail("aws_vpc.old", "delete", errors.New("Conflict: in use")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	js, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if js == nil {
		t.Fatal("journal read back nil")
	}
	if js.Meta.Kind != "apply" || js.Meta.BaseSerial != 3 || js.Meta.ID == "" {
		t.Errorf("meta = %+v", js.Meta)
	}
	if len(js.Intents) != 3 {
		t.Fatalf("%d intents, want 3", len(js.Intents))
	}
	if js.IntentFor("aws_subnet.s[0]").Name != "s-0" {
		t.Errorf("intent lookup: %+v", js.IntentFor("aws_subnet.s[0]"))
	}
	vpc := js.Ops["aws_vpc.main"]
	if vpc == nil || vpc.Begin == nil || vpc.Done == nil || vpc.InDoubt() {
		t.Errorf("vpc status = %+v", vpc)
	}
	if got := AttrsIn(vpc.Begin.Attrs); !got["name"].Equal(eval.String("main")) {
		t.Errorf("begin attrs = %v", got)
	}
	if vpc.Begin.IdemKey != js.Meta.ID+"/aws_vpc.main" {
		t.Errorf("idem key = %q", vpc.Begin.IdemKey)
	}
	sub := js.Ops["aws_subnet.s[0]"]
	if sub == nil || !sub.InDoubt() {
		t.Errorf("subnet status = %+v", sub)
	}
	if got := js.InDoubt(); len(got) != 1 || got[0] != "aws_subnet.s[0]" {
		t.Errorf("in-doubt = %v", got)
	}
	if old := js.Ops["aws_vpc.old"]; old == nil || old.FailError == "" || old.InDoubt() {
		t.Errorf("failed op status = %+v", old)
	}
}

func TestJournalTornTailDropped(t *testing.T) {
	j, path := tempJournal(t)
	if err := j.Begin(OpRecord{Addr: "aws_vpc.a", Action: "create", Type: "aws_vpc"}); err != nil {
		t.Fatal(err)
	}
	j.KillTorn() // half-written frame, then dead
	j.Close()

	js, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if js == nil {
		t.Fatal("journal read back nil")
	}
	if st := js.Ops["aws_vpc.a"]; st == nil || !st.InDoubt() {
		t.Errorf("status = %+v", st)
	}
	if _, ok := js.Ops["torn"]; ok {
		t.Error("torn frame surfaced in replay")
	}
}

func TestJournalKillStopsAppends(t *testing.T) {
	j, path := tempJournal(t)
	j.Kill()
	if err := j.Begin(OpRecord{Addr: "aws_vpc.a"}); !errors.Is(err, ErrJournalKilled) {
		t.Errorf("err = %v, want ErrJournalKilled", err)
	}
	if err := j.Sync(); err != nil {
		t.Errorf("sync after kill: %v", err)
	}
	_ = path
}

func TestJournalDiscardRemovesFile(t *testing.T) {
	j, path := tempJournal(t)
	if err := j.Discard(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("journal still on disk: %v", err)
	}
	if js, err := ReadJournal(path); err != nil || js != nil {
		t.Errorf("read discarded journal: %v, %v", js, err)
	}
}

func TestReadJournalMissingFile(t *testing.T) {
	js, err := ReadJournal(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil || js != nil {
		t.Errorf("got %v, %v; want nil, nil", js, err)
	}
}
