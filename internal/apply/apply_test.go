package apply

import (
	"context"
	"strings"
	"testing"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/plan"
	"cloudless/internal/state"
)

const webConfig = `
data "aws_region" "current" {}

resource "aws_vpc" "main" {
  name       = "main"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "s" {
  count      = 2
  name       = "s-${count.index}"
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(aws_vpc.main.cidr_block, 8, count.index)
}

resource "aws_network_interface" "nic" {
  name      = "nic"
  subnet_id = aws_subnet.s[0].id
}

resource "aws_virtual_machine" "web" {
  name    = "web"
  nic_ids = [aws_network_interface.nic.id]
}

output "vm_id"     { value = aws_virtual_machine.web.id }
output "subnet_ids" { value = aws_subnet.s[*].id }
`

func newSim() *cloud.Sim {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	return cloud.NewSim(opts)
}

func expandSrc(t *testing.T, src string) *config.Expansion {
	t.Helper()
	m, diags := config.Load(map[string]string{"main.ccl": src})
	if diags.HasErrors() {
		t.Fatalf("load: %s", diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatalf("expand: %s", diags.Error())
	}
	return ex
}

func planAndApply(t *testing.T, sim cloud.Interface, src string, prior *state.State, opts Options) (*plan.Plan, *Result) {
	t.Helper()
	ex := expandSrc(t, src)
	p, diags := plan.Compute(context.Background(), ex, prior, plan.Options{})
	if diags.HasErrors() {
		t.Fatalf("plan: %s", diags.Error())
	}
	res := Apply(context.Background(), sim, p, opts)
	return p, res
}

func TestApplyEndToEnd(t *testing.T) {
	sim := newSim()
	p, res := planAndApply(t, sim, webConfig, state.New(), Options{})
	if err := res.Err(); err != nil {
		t.Fatalf("apply: %s", err)
	}
	if res.Applied != 5 {
		t.Errorf("applied = %d", res.Applied)
	}
	_ = p

	// The state holds cloud IDs and full attribute sets.
	vm := res.State.Get("aws_virtual_machine.web")
	if vm == nil || vm.ID == "" {
		t.Fatalf("vm state = %+v", vm)
	}
	// References resolved to the real NIC ID.
	nic := res.State.Get("aws_network_interface.nic")
	gotNics := vm.Attr("nic_ids")
	if gotNics.Kind() != eval.KindList || gotNics.AsList()[0].AsString() != nic.ID {
		t.Errorf("nic_ids = %v, want [%s]", gotNics, nic.ID)
	}
	// The cloud actually holds the resources.
	cl, err := sim.Get(context.Background(), "aws_virtual_machine", vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Attr("state").AsString() != "running" {
		t.Errorf("vm cloud state = %v", cl.Attr("state"))
	}
	// Outputs.
	if res.Outputs["vm_id"].AsString() != vm.ID {
		t.Errorf("vm_id output = %v", res.Outputs["vm_id"])
	}
	ids := res.Outputs["subnet_ids"]
	if ids.Kind() != eval.KindList || len(ids.AsList()) != 2 {
		t.Errorf("subnet_ids output = %v", ids)
	}
	// Dependencies recorded for destroy ordering.
	if deps := res.State.Get("aws_subnet.s[0]").Dependencies; len(deps) != 1 || deps[0] != "aws_vpc.main" {
		t.Errorf("recorded deps = %v", deps)
	}
}

func TestApplyThenPlanIsNoop(t *testing.T) {
	sim := newSim()
	_, res := planAndApply(t, sim, webConfig, state.New(), Options{})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	ex := expandSrc(t, webConfig)
	p2, diags := plan.Compute(context.Background(), ex, res.State, plan.Options{})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	if p2.PendingCount() != 0 {
		for a, c := range p2.Changes {
			if c.Action != plan.ActionNoop {
				t.Logf("%s -> %s %v", a, c.Action, c.ChangedAttrs)
			}
		}
		t.Fatalf("re-plan after apply: %s", p2.Summary())
	}
}

func TestApplyUpdateInPlace(t *testing.T) {
	sim := newSim()
	_, res := planAndApply(t, sim, webConfig, state.New(), Options{})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	oldID := res.State.Get("aws_virtual_machine.web").ID

	updated := strings.Replace(webConfig, `name    = "web"`, `name    = "web-v2"`, 1)
	_, res2 := planAndApply(t, sim, updated, res.State, Options{})
	if err := res2.Err(); err != nil {
		t.Fatal(err)
	}
	vm := res2.State.Get("aws_virtual_machine.web")
	if vm.ID != oldID {
		t.Error("in-place update must keep the cloud ID")
	}
	if vm.Attr("name").AsString() != "web-v2" {
		t.Errorf("name = %v", vm.Attr("name"))
	}
}

func TestApplyReplaceOnForceNew(t *testing.T) {
	sim := newSim()
	_, res := planAndApply(t, sim, webConfig, state.New(), Options{})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	oldID := res.State.Get("aws_virtual_machine.web").ID

	updated := strings.Replace(webConfig, `nic_ids = [aws_network_interface.nic.id]`,
		"nic_ids = [aws_network_interface.nic.id]\n  image   = \"ami-linux-2027\"", 1)
	ex := expandSrc(t, updated)
	p, diags := plan.Compute(context.Background(), ex, res.State, plan.Options{})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	if p.Changes["aws_virtual_machine.web"].Action != plan.ActionReplace {
		t.Fatalf("action = %s", p.Changes["aws_virtual_machine.web"].Action)
	}
	res2 := Apply(context.Background(), sim, p, Options{})
	if err := res2.Err(); err != nil {
		t.Fatal(err)
	}
	vm := res2.State.Get("aws_virtual_machine.web")
	if vm.ID == oldID {
		t.Error("replace must produce a new cloud ID")
	}
}

func TestApplyRemovalDeletes(t *testing.T) {
	sim := newSim()
	_, res := planAndApply(t, sim, webConfig, state.New(), Options{})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	vmID := res.State.Get("aws_virtual_machine.web").ID

	// Remove the VM (and its output, which references it) from the config.
	shrunk := strings.Replace(webConfig, `resource "aws_virtual_machine" "web" {
  name    = "web"
  nic_ids = [aws_network_interface.nic.id]
}`, "", 1)
	shrunk = strings.Replace(shrunk, `output "vm_id"     { value = aws_virtual_machine.web.id }`, "", 1)
	_, res2 := planAndApply(t, sim, shrunk, res.State, Options{})
	if err := res2.Err(); err != nil {
		t.Fatal(err)
	}
	if res2.State.Get("aws_virtual_machine.web") != nil {
		t.Error("vm still in state")
	}
	if _, err := sim.Get(context.Background(), "aws_virtual_machine", vmID); !cloud.IsNotFound(err) {
		t.Errorf("vm still in cloud: %v", err)
	}
}

func TestDestroyReverseOrder(t *testing.T) {
	// The simulator enforces DependencyViolation, so destroy only succeeds
	// if the applier deletes dependents before dependencies.
	sim := newSim()
	_, res := planAndApply(t, sim, webConfig, state.New(), Options{})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	dres := Destroy(context.Background(), sim, res.State, Options{})
	if err := dres.Err(); err != nil {
		t.Fatalf("destroy: %s", err)
	}
	if dres.State.Len() != 0 {
		t.Errorf("state not empty after destroy: %v", dres.State.Addrs())
	}
	if sim.TotalResources() != 0 {
		t.Errorf("cloud not empty after destroy: %d", sim.TotalResources())
	}
}

func TestApplyRetriesTransientFailures(t *testing.T) {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	opts.FailureRate = 0.3
	opts.Seed = 7
	sim := cloud.NewSim(opts)
	_, res := planAndApply(t, sim, webConfig, state.New(), Options{
		MaxRetries: 8, RetryBase: time.Millisecond,
	})
	if err := res.Err(); err != nil {
		t.Fatalf("apply with fault injection: %s", err)
	}
	if res.Retries == 0 {
		t.Error("expected at least one retry at 30% failure rate")
	}
}

func TestApplyFailureSkipsDependents(t *testing.T) {
	// Make every mutation fail: the VPC create fails, so everything
	// downstream must be skipped and reported.
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	opts.FailureRate = 1.0
	sim := cloud.NewSim(opts)
	_, res := planAndApply(t, sim, webConfig, state.New(), Options{
		MaxRetries: 2, RetryBase: time.Millisecond, ContinueOnError: true,
	})
	if res.Err() == nil {
		t.Fatal("expected failure")
	}
	_, failed, skipped := res.Report.Counts()
	if failed == 0 || skipped == 0 {
		t.Errorf("failed=%d skipped=%d", failed, skipped)
	}
}

func TestApplySchedulerPriority(t *testing.T) {
	// Both schedulers must produce a correct deployment; the performance
	// comparison lives in the benchmarks.
	for _, sched := range []Scheduler{FIFOScheduler, CriticalPathScheduler} {
		sim := newSim()
		_, res := planAndApply(t, sim, webConfig, state.New(), Options{Scheduler: sched})
		if err := res.Err(); err != nil {
			t.Fatalf("%s: %s", sched, err)
		}
	}
}

func TestApplyModuleConfig(t *testing.T) {
	resolver := config.MapResolver{
		"./modules/net": {"net.ccl": `
variable "cidr" {}
resource "aws_vpc" "main" {
  name       = "mod-vpc"
  cidr_block = var.cidr
}
output "vpc_id" { value = aws_vpc.main.id }
`},
	}
	m, diags := config.Load(map[string]string{"main.ccl": `
module "net" {
  source = "./modules/net"
  cidr   = "10.5.0.0/16"
}
resource "aws_security_group" "sg" {
  name   = "app"
  vpc_id = module.net.vpc_id
}
`})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	ex, diags := config.Expand(m, nil, resolver)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	sim := newSim()
	p, diags := plan.Compute(context.Background(), ex, state.New(), plan.Options{})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	res := Apply(context.Background(), sim, p, Options{})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	sg := res.State.Get("aws_security_group.sg")
	vpc := res.State.Get("module.net.aws_vpc.main")
	if sg == nil || vpc == nil {
		t.Fatalf("state = %v", res.State.Addrs())
	}
	if sg.Attr("vpc_id").AsString() != vpc.ID {
		t.Errorf("cross-module reference: vpc_id = %v, want %s", sg.Attr("vpc_id"), vpc.ID)
	}
}

func TestApplyRefreshDetectsOutOfBandDeletion(t *testing.T) {
	sim := newSim()
	_, res := planAndApply(t, sim, webConfig, state.New(), Options{})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	// Someone deletes the VM outside IaC.
	vmID := res.State.Get("aws_virtual_machine.web").ID
	if err := sim.Delete(context.Background(), "aws_virtual_machine", vmID, "legacy-script"); err != nil {
		t.Fatal(err)
	}
	// A refreshing plan recreates it.
	ex := expandSrc(t, webConfig)
	p, diags := plan.Compute(context.Background(), ex, res.State, plan.Options{
		Refresh: true, Cloud: sim,
	})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	if ch := p.Changes["aws_virtual_machine.web"]; ch == nil || ch.Action != plan.ActionCreate {
		t.Fatalf("expected re-create after out-of-band deletion, got %+v", ch)
	}
	if p.RefreshReads == 0 {
		t.Error("refresh did not read the cloud")
	}
	res2 := Apply(context.Background(), sim, p, Options{})
	if err := res2.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyBatchOpsCoalescesCreates: a wide changeset applied with BatchOps
// must land its creates in bulk cloud calls — at least a 5x reduction in
// admitted control-plane calls versus the unbatched walker — while the apply
// itself behaves identically (same ops applied, same state shape).
func TestApplyBatchOpsCoalescesCreates(t *testing.T) {
	const wideConfig = `
resource "aws_vpc" "v" {
  count      = 40
  name       = "v-${count.index}"
  cidr_block = "10.0.0.0/16"
}
`
	// Baseline: unbatched walker, one admitted call per create.
	simA := newSim()
	_, resA := planAndApply(t, simA, wideConfig, state.New(), Options{Concurrency: 64})
	if err := resA.Err(); err != nil {
		t.Fatal(err)
	}
	callsA := simA.Metrics().Calls

	// Batched walker: same plan shape, coalesced dispatch.
	simB := newSim()
	_, resB := planAndApply(t, simB, wideConfig, state.New(), Options{
		Concurrency: 64, BatchOps: true, BatchLinger: 30 * time.Millisecond,
	})
	if err := resB.Err(); err != nil {
		t.Fatal(err)
	}
	if resB.Applied != resA.Applied || resB.Applied != 40 {
		t.Fatalf("applied: batched=%d unbatched=%d, want 40", resB.Applied, resA.Applied)
	}
	for _, addr := range resA.State.Addrs() {
		if resB.State.Get(addr) == nil {
			t.Errorf("batched apply missing %s", addr)
		}
	}

	mB := simB.Metrics()
	if mB.BatchItems != 40 {
		t.Errorf("batched items = %d, want 40 (creates escaped the coalescer)", mB.BatchItems)
	}
	if mB.Calls*5 > callsA {
		t.Errorf("batched apply admitted %d calls vs %d unbatched: below the 5x reduction", mB.Calls, callsA)
	}
}
