// Crash recovery: reconciling a crashed apply's journal against the cloud.
//
// The recovery state machine, per journaled op:
//
//	no begin        → the op never started; the follow-up re-plan redoes it.
//	begin + done    → complete; fold the recorded result into state.
//	begin + fail    → the cloud definitively rejected it; nothing mutated.
//	begin only      → IN DOUBT: the process died between issuing the call
//	                  and recording the response. Re-drive it idempotently —
//	                  creates retry under their original idempotency key (the
//	                  cloud returns the original resource if the first attempt
//	                  landed), updates re-send the recorded delta, deletes
//	                  tolerate 404.
//
// After the per-op pass, an orphan sweep cross-checks the cloud activity log
// (§3.5's log-native observation channel): any resource created by our
// principal that neither the reconciled state nor the journal accounts for
// is adopted into state when it matches a journaled intent (type, region,
// name), and deleted otherwise. Every step is idempotent, so a crash during
// recovery itself is recovered by running recovery again.
package apply

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cloudless/internal/cloud"
	evbus "cloudless/internal/events"
	"cloudless/internal/plan"
	"cloudless/internal/provider"
	"cloudless/internal/state"
)

// RecoverReport summarizes what recovery found and did.
type RecoverReport struct {
	JournalID string `json:"journal_id"`
	Kind      string `json:"kind"`
	// Confirmed counts ops the journal proved complete (done records).
	Confirmed int `json:"confirmed"`
	// Resumed counts in-doubt ops re-driven to completion.
	Resumed int `json:"resumed"`
	// OrphansAdopted / OrphansDeleted list cloud IDs the sweep reconciled.
	OrphansAdopted []string `json:"orphans_adopted,omitempty"`
	OrphansDeleted []string `json:"orphans_deleted,omitempty"`
	// Errors maps addresses (or cloud IDs, for sweep failures) to what went
	// wrong; the reconciled state is still valid for everything else.
	Errors map[string]error `json:"-"`
	// Elapsed is wall-clock recovery time.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Err folds recovery failures into one error.
func (r *RecoverReport) Err() error {
	for key, err := range r.Errors {
		return fmt.Errorf("recover %s: %w", key, err)
	}
	return nil
}

// Recover reconciles a crashed run's journal against the cloud, returning
// the reconciled state (base plus everything the crashed run is proven or
// re-driven to have done). The caller commits that state and then re-plans:
// ops the crashed run never started become ordinary plan changes.
func Recover(ctx context.Context, cl cloud.Interface, js *JournalState,
	base *state.State, opts Options) (*state.State, *RecoverReport, error) {

	o := (&opts).withDefaults()
	start := time.Now()
	cl = provider.New(cl, provider.Options{MaxRetries: o.MaxRetries, RetryBase: o.RetryBase})
	// Recovery reasons about what is actually in the cloud; never serve it
	// from a warm read cache.
	ctx = provider.WithFresh(ctx)

	rep := &RecoverReport{JournalID: js.Meta.ID, Kind: js.Meta.Kind, Errors: map[string]error{}}
	st := base.Clone()

	bus := evbus.FromContext(ctx)
	bus.Publish(evbus.Event{Kind: "recover.start", Run: js.Meta.ID,
		Action: js.Meta.Kind, N: int64(len(js.Intents))})

	for i := range js.Intents {
		in := &js.Intents[i]
		ops := js.Ops[in.Addr]
		if ops == nil || ops.Begin == nil {
			continue // never started; the re-plan will handle it
		}
		if ops.Done != nil {
			applyDoneRecord(st, ops.Done)
			rep.Confirmed++
			bus.Publish(evbus.Event{Kind: "recover.op", Run: js.Meta.ID,
				Addr: in.Addr, Type: in.Type, Action: "confirmed"})
			continue
		}
		if ops.FailError != "" {
			continue // definitively rejected, nothing mutated
		}
		if err := redriveOp(ctx, cl, st, js, ops.Begin, o); err != nil {
			rep.Errors[in.Addr] = err
			bus.Publish(evbus.Event{Kind: "recover.op", Run: js.Meta.ID,
				Addr: in.Addr, Type: in.Type, Action: "failed", Err: err.Error()})
			continue
		}
		rep.Resumed++
		bus.Publish(evbus.Event{Kind: "recover.op", Run: js.Meta.ID,
			Addr: in.Addr, Type: in.Type, Action: "resumed"})
	}

	err := sweepOrphans(ctx, cl, st, js, o, rep)
	rep.Elapsed = time.Since(start)
	bus.Publish(evbus.Event{Kind: "recover.finish", Run: js.Meta.ID,
		N: int64(rep.Confirmed + rep.Resumed), Ms: durMillis(rep.Elapsed)})
	if err != nil {
		return st, rep, err
	}
	return st, rep, nil
}

// applyDoneRecord folds a completed op's recorded result into state.
func applyDoneRecord(st *state.State, done *OpRecord) {
	if done.Action == plan.ActionDelete.String() {
		st.Remove(done.Addr)
		return
	}
	now := time.Now()
	st.Set(&state.ResourceState{
		Addr: done.Addr, Type: done.Type, ID: done.ID, Region: done.Region,
		Attrs: AttrsIn(done.Attrs), Dependencies: done.Deps,
		CreatedAt: now, UpdatedAt: now,
	})
}

// redriveOp idempotently re-executes an in-doubt op.
func redriveOp(ctx context.Context, cl cloud.Interface, st *state.State,
	js *JournalState, begin *OpRecord, o Options) error {

	switch begin.Action {
	case plan.ActionDelete.String():
		if err := cl.Delete(ctx, begin.Type, begin.ID, o.Principal); err != nil && !cloud.IsNotFound(err) {
			return err
		}
		st.Remove(begin.Addr)
		return nil

	case plan.ActionCreate.String(), plan.ActionReplace.String():
		if begin.Action == plan.ActionReplace.String() && begin.ID != "" {
			if err := cl.Delete(ctx, begin.Type, begin.ID, o.Principal); err != nil && !cloud.IsNotFound(err) {
				return err
			}
		}
		// The original idempotency key makes this safe: if the crashed run's
		// create landed, the cloud hands back that resource; if it never
		// landed, this provisions it.
		res, err := cl.Create(ctx, cloud.CreateRequest{
			Type: begin.Type, Region: begin.Region, Attrs: AttrsIn(begin.Attrs),
			Principal: o.Principal, IdempotencyKey: begin.IdemKey,
		})
		if err != nil {
			return err
		}
		setFromResource(st, begin, res)
		return nil

	case plan.ActionUpdate.String():
		var res *cloud.Resource
		var err error
		if len(begin.Attrs) == 0 {
			res, err = cl.Get(ctx, begin.Type, begin.ID)
		} else {
			// Re-sending the recorded delta is idempotent: attribute writes
			// are absolute values, not increments.
			res, err = cl.Update(ctx, cloud.UpdateRequest{
				Type: begin.Type, ID: begin.ID, Attrs: AttrsIn(begin.Attrs),
				Principal: o.Principal,
			})
		}
		if err != nil {
			if cloud.IsNotFound(err) {
				// The target vanished mid-flight; drop it from state and let
				// the re-plan recreate it.
				st.Remove(begin.Addr)
				return nil
			}
			return err
		}
		setFromResource(st, begin, res)
		return nil

	default:
		return nil
	}
}

func setFromResource(st *state.State, begin *OpRecord, res *cloud.Resource) {
	now := time.Now()
	deps := begin.Deps
	if prev := st.Get(begin.Addr); prev != nil && len(deps) == 0 {
		deps = prev.Dependencies
	}
	st.Set(&state.ResourceState{
		Addr: begin.Addr, Type: res.Type, ID: res.ID, Region: res.Region,
		Attrs: res.Attrs, Dependencies: deps,
		CreatedAt: now, UpdatedAt: now,
	})
}

// sweepOrphans cross-checks the activity log for resources our principal
// created that neither the reconciled state nor the journal accounts for.
// A full-log scan is safe here: resources from earlier healthy applies are
// already in state and skipped by the ID check.
func sweepOrphans(ctx context.Context, cl cloud.Interface, st *state.State,
	js *JournalState, o Options, rep *RecoverReport) error {

	events, err := cl.Activity(ctx, 0)
	if err != nil {
		return fmt.Errorf("recover: read activity log: %w", err)
	}

	// Alive-and-ours candidates: created by our principal, no later delete.
	candidates := map[string]cloud.Event{}
	for _, ev := range events {
		switch ev.Op {
		case cloud.OpCreate:
			if ev.Principal == o.Principal {
				candidates[ev.ID] = ev
			}
		case cloud.OpDelete:
			delete(candidates, ev.ID)
		}
	}
	for id := range candidates {
		if st.ByID(id) != nil {
			delete(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return nil
	}

	// Later-created first, so dependency-violating deletes cannot happen
	// (a dependent is always newer than what it references).
	ordered := make([]cloud.Event, 0, len(candidates))
	for _, ev := range candidates {
		ordered = append(ordered, ev)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Seq > ordered[j].Seq })

	for _, ev := range ordered {
		res, err := cl.Get(ctx, ev.Type, ev.ID)
		if cloud.IsNotFound(err) {
			continue // already gone
		}
		if err != nil {
			rep.Errors[ev.ID] = err
			continue
		}
		if addr := matchIntent(js, st, res); addr != "" {
			// The plan wanted exactly this resource: adopt it instead of
			// destroying work the crashed run already paid for.
			now := time.Now()
			var deps []string
			if in := js.IntentFor(addr); in != nil {
				deps = in.Deps
			}
			st.Set(&state.ResourceState{
				Addr: addr, Type: res.Type, ID: res.ID, Region: res.Region,
				Attrs: res.Attrs, Dependencies: deps,
				CreatedAt: now, UpdatedAt: now,
			})
			rep.OrphansAdopted = append(rep.OrphansAdopted, res.ID)
			evbus.FromContext(ctx).Publish(evbus.Event{Kind: "recover.op",
				Run: js.Meta.ID, Addr: addr, Type: res.Type, ID: res.ID, Action: "adopted"})
			continue
		}
		if err := cl.Delete(ctx, res.Type, res.ID, o.Principal); err != nil && !cloud.IsNotFound(err) {
			rep.Errors[res.ID] = err
			continue
		}
		rep.OrphansDeleted = append(rep.OrphansDeleted, res.ID)
		evbus.FromContext(ctx).Publish(evbus.Event{Kind: "recover.op",
			Run: js.Meta.ID, Type: res.Type, ID: res.ID, Action: "deleted"})
	}
	return nil
}

// matchIntent finds an unclaimed create/replace intent that describes the
// orphan: same type and region, and the same planned name when one was
// journaled. Returns the address to adopt under, or "".
func matchIntent(js *JournalState, st *state.State, res *cloud.Resource) string {
	name := ""
	if v := res.Attr("name"); !v.IsNull() {
		name = v.AsString()
	}
	for i := range js.Intents {
		in := &js.Intents[i]
		if in.Action != plan.ActionCreate.String() && in.Action != plan.ActionReplace.String() {
			continue
		}
		if in.Type != res.Type || (in.Region != "" && in.Region != res.Region) {
			continue
		}
		if in.Name != "" && in.Name != name {
			continue
		}
		if existing := st.Get(in.Addr); existing != nil && existing.ID != res.ID {
			continue // address already satisfied by another resource
		}
		return in.Addr
	}
	return ""
}
