package apply

import (
	"container/heap"
	"fmt"
	"time"

	"cloudless/internal/graph"
)

// ScheduleResult is the outcome of a deterministic scheduling simulation.
type ScheduleResult struct {
	// Makespan is the simulated end-to-end completion time.
	Makespan time.Duration
	// TotalWork is the sum of all node costs (the serial lower bound).
	TotalWork time.Duration
	// Start and Finish give each node's simulated schedule.
	Start, Finish map[string]time.Duration
}

// SimulateSchedule runs deterministic list scheduling of the graph on
// `concurrency` workers under the given policy, without sleeping: it answers
// "how long would this deployment take" exactly, using the same readiness
// and priority rules as the real executor. The E1/E2 experiments use it to
// regenerate the paper's deployment-time comparisons precisely and fast.
func SimulateSchedule(g *graph.Graph, cost func(string) time.Duration, concurrency int, sched Scheduler) (*ScheduleResult, error) {
	if concurrency <= 0 {
		concurrency = g.Len()
		if concurrency == 0 {
			concurrency = 1
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}

	var priority func(string) float64
	switch sched {
	case CriticalPathScheduler:
		levels, _, err := g.CriticalPath(cost)
		if err != nil {
			return nil, err
		}
		priority = func(n string) float64 { return float64(levels[n]) }
	default:
		priority = func(string) float64 { return 0 }
	}

	res := &ScheduleResult{
		Start:  make(map[string]time.Duration, g.Len()),
		Finish: make(map[string]time.Duration, g.Len()),
	}

	pending := map[string]int{}
	for _, n := range g.Nodes() {
		pending[n] = len(g.Dependencies(n))
		res.TotalWork += cost(n)
	}

	var ready schedReadyHeap
	for n, d := range pending {
		if d == 0 {
			heap.Push(&ready, schedReady{id: n, prio: priority(n)})
		}
	}

	var running schedRunningHeap
	now := time.Duration(0)
	completed := 0

	for completed < g.Len() {
		// Fill free workers from the ready queue.
		for running.Len() < concurrency && ready.Len() > 0 {
			item := heap.Pop(&ready).(schedReady)
			res.Start[item.id] = now
			finish := now + cost(item.id)
			res.Finish[item.id] = finish
			heap.Push(&running, schedRunning{id: item.id, finish: finish})
		}
		if running.Len() == 0 {
			return nil, fmt.Errorf("scheduling stalled with %d/%d nodes complete", completed, g.Len())
		}
		// Advance virtual time to the next completion.
		job := heap.Pop(&running).(schedRunning)
		now = job.finish
		completed++
		for _, dep := range g.Dependents(job.id) {
			pending[dep]--
			if pending[dep] == 0 {
				heap.Push(&ready, schedReady{id: dep, prio: priority(dep)})
			}
		}
	}
	res.Makespan = now
	return res, nil
}

type schedReady struct {
	id   string
	prio float64
}

type schedReadyHeap []schedReady

func (h schedReadyHeap) Len() int { return len(h) }
func (h schedReadyHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].id < h[j].id
}
func (h schedReadyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *schedReadyHeap) Push(x any)   { *h = append(*h, x.(schedReady)) }
func (h *schedReadyHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

type schedRunning struct {
	id     string
	finish time.Duration
}

type schedRunningHeap []schedRunning

func (h schedRunningHeap) Len() int { return len(h) }
func (h schedRunningHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].id < h[j].id
}
func (h schedRunningHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *schedRunningHeap) Push(x any)   { *h = append(*h, x.(schedRunning)) }
func (h *schedRunningHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
