package config

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cloudless/internal/hcl"
)

// ModuleResolver loads the source files of a child module given the source
// string from a module block.
type ModuleResolver interface {
	// Resolve returns filename -> source for the module.
	Resolve(source string) (map[string]string, error)
}

// MapResolver resolves module sources from an in-memory map, used by tests
// and by the porter when it synthesizes modular programs.
type MapResolver map[string]map[string]string

// Resolve implements ModuleResolver.
func (m MapResolver) Resolve(source string) (map[string]string, error) {
	files, ok := m[source]
	if !ok {
		return nil, fmt.Errorf("module source %q not found", source)
	}
	return files, nil
}

// DirResolver resolves module sources as directories relative to a root.
type DirResolver struct{ Root string }

// Resolve implements ModuleResolver.
func (d DirResolver) Resolve(source string) (map[string]string, error) {
	dir := filepath.Join(d.Root, filepath.FromSlash(source))
	return readDirSources(dir)
}

func readDirSources(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("read module directory: %w", err)
	}
	files := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ccl") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		files[e.Name()] = string(b)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .ccl files in %s", dir)
	}
	return files, nil
}

// Load parses a set of sources (filename -> content) into a Module.
// Files are processed in filename order so diagnostics are deterministic.
func Load(sources map[string]string) (*Module, hcl.Diagnostics) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*hcl.File
	var diags hcl.Diagnostics
	for _, n := range names {
		f, d := hcl.Parse(n, sources[n])
		diags = diags.Extend(d)
		files = append(files, f)
	}
	mod, d := decodeFiles(files)
	return mod, diags.Extend(d)
}

// LoadDir loads every .ccl file in a directory as the root module.
func LoadDir(dir string) (*Module, hcl.Diagnostics) {
	sources, err := readDirSources(dir)
	if err != nil {
		return newModule(), hcl.Diagnostics{hcl.Errorf(hcl.Range{Filename: dir},
			"cannot load configuration: %s", err)}
	}
	return Load(sources)
}
