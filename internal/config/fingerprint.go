package config

import (
	"hash/fnv"
	"sort"

	"cloudless/internal/hcl"
)

// Declaration fingerprinting for incremental replanning. A decl hash digests
// everything on the configuration side that can change a resource's plan
// outcome: the printed attribute expressions, count/for_each, the dependency
// set, the resolved instance addresses and regions, and — crucially — the
// VALUES of every variable and local the expressions reference, so editing a
// tfvars-style input dirties exactly the decls that read it, not the whole
// graph. What a decl hash deliberately excludes is source position: moving a
// block or reformatting a file re-plans nothing.

// DeclHashes fingerprints every resource-level address of the expansion.
// Two expansions that assign the same hash to an address are guaranteed to
// plan identically for it given identical prior state and identical planned
// values of its dependencies (which the dirty-subtree closure accounts for).
func (ex *Expansion) DeclHashes() map[string]uint64 {
	insts := map[string][]*Instance{}
	for _, inst := range ex.Instances {
		r := inst.ResourceAddr()
		insts[r] = append(insts[r], inst)
	}
	out := make(map[string]uint64, len(insts))
	for r, list := range insts {
		out[r] = declHash(list)
	}
	return out
}

// declHash digests one declaration through its (sorted, shared-decl)
// instances.
func declHash(insts []*Instance) uint64 {
	h := fnv.New64a()
	w := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	first := insts[0]
	w(first.ModulePath, string(rune(first.Mode)), first.Type, first.Name)

	// Attribute expressions, printed canonically, in name order. The
	// instances of one decl share the expression map, so this runs once.
	names := make([]string, 0, len(first.Attrs))
	for name := range first.Attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w("a:"+name, hcl.FormatExpr(first.Attrs[name]))
	}
	w(first.DependsOn...)

	// Referenced variable and local VALUES: a changed input must dirty its
	// readers even though the printed expressions are unchanged. The values
	// come from the instance scope, which bound them at expansion; hashing
	// the referenced root attribute (var.zones, local.tags) is granular
	// enough that unrelated inputs stay clean.
	for _, ref := range scopeRefs(first) {
		w("v:" + ref.name)
		writeU64(h, ref.hash)
	}

	// Instance addressing: count/for_each changes surface here (and in the
	// printed expressions above), as do provider-driven region moves.
	sort.Slice(insts, func(i, j int) bool { return insts[i].Addr < insts[j].Addr })
	for _, inst := range insts {
		w("i:"+inst.Addr, inst.Region)
	}
	return h.Sum64()
}

type scopeRef struct {
	name string
	hash uint64
}

// scopeRefs collects the var.<name> / local.<name> roots referenced by the
// declaration's expressions, with the hash of each referenced value.
func scopeRefs(inst *Instance) []scopeRef {
	seen := map[string]uint64{}
	collect := func(e hcl.Expression) {
		for _, tr := range e.Variables() {
			root := tr.RootName()
			if root != "var" && root != "local" {
				continue
			}
			if len(tr) < 2 {
				continue
			}
			attr, ok := tr[1].(hcl.TraverseAttr)
			if !ok {
				continue
			}
			key := root + "." + attr.Name
			if _, done := seen[key]; done {
				continue
			}
			var hv uint64
			if obj, ok := inst.Scope.Lookup(root); ok {
				if v, err := obj.GetAttr(attr.Name); err == nil {
					hv = v.Hash()
				}
			}
			seen[key] = hv
		}
	}
	for _, e := range inst.Attrs {
		collect(e)
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]scopeRef, len(keys))
	for i, k := range keys {
		out[i] = scopeRef{name: k, hash: seen[k]}
	}
	return out
}

func writeU64(h interface{ Write([]byte) (int, error) }, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// DirtyDecls compares two hash sets and returns the resource-level addresses
// that changed, appeared, or disappeared, sorted — the seed set for the
// incremental planner's impact-scope closure.
func DirtyDecls(old, new map[string]uint64) []string {
	set := map[string]bool{}
	for addr, h := range new {
		if oh, ok := old[addr]; !ok || oh != h {
			set[addr] = true
		}
	}
	for addr := range old {
		if _, ok := new[addr]; !ok {
			set[addr] = true
		}
	}
	out := make([]string, 0, len(set))
	for addr := range set {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}
