// Package config loads CCL source into configuration declarations and
// expands them into concrete resource instances: it evaluates variables and
// locals, applies count/for_each multiplicity, instantiates modules, and
// extracts the cross-resource references that later become the dependency
// graph. This is the front half of the Figure 1 pipeline — everything that
// happens before planning.
package config

import (
	"fmt"
	"strings"

	"cloudless/internal/eval"
	"cloudless/internal/hcl"
	"cloudless/internal/schema"
)

// Mode distinguishes managed resources from read-only data sources.
type Mode int

// Resource modes.
const (
	ManagedMode Mode = iota
	DataMode
)

// Variable is a "variable" block declaration.
type Variable struct {
	Name        string
	Type        string // "string", "number", "bool", "list", "map" or ""
	Default     eval.Value
	HasDefault  bool
	Description string
	DeclRange   hcl.Range
}

// Local is one entry of a "locals" block.
type Local struct {
	Name      string
	Expr      hcl.Expression
	DeclRange hcl.Range
}

// Output is an "output" block declaration.
type Output struct {
	Name      string
	Expr      hcl.Expression
	Sensitive bool
	DeclRange hcl.Range
}

// ProviderCfg is a "provider" block: per-provider settings such as region.
type ProviderCfg struct {
	Name      string
	Attrs     map[string]hcl.Expression
	DeclRange hcl.Range
}

// Resource is a "resource" or "data" block declaration.
type Resource struct {
	Mode      Mode
	Type      string
	Name      string
	Attrs     map[string]hcl.Expression
	AttrOrder []string // source order, for stable diagnostics
	Count     hcl.Expression
	ForEach   hcl.Expression
	DependsOn []hcl.Traversal
	DeclRange hcl.Range
	AttrRange map[string]hcl.Range
}

// Key returns "type.name".
func (r *Resource) Key() string { return r.Type + "." + r.Name }

// ModuleCall is a "module" block: an instantiation of a child configuration.
type ModuleCall struct {
	Name      string
	Source    string
	Args      map[string]hcl.Expression
	DeclRange hcl.Range
}

// Module is a parsed configuration: the root module or a child.
type Module struct {
	Variables map[string]*Variable
	Locals    map[string]*Local
	Resources map[string]*Resource // key "type.name", managed mode
	Data      map[string]*Resource // key "type.name", data mode
	Outputs   map[string]*Output
	Providers map[string]*ProviderCfg
	Calls     map[string]*ModuleCall
}

func newModule() *Module {
	return &Module{
		Variables: map[string]*Variable{},
		Locals:    map[string]*Local{},
		Resources: map[string]*Resource{},
		Data:      map[string]*Resource{},
		Outputs:   map[string]*Output{},
		Providers: map[string]*ProviderCfg{},
		Calls:     map[string]*ModuleCall{},
	}
}

// decodeFiles merges parsed files into a Module.
func decodeFiles(files []*hcl.File) (*Module, hcl.Diagnostics) {
	m := newModule()
	var diags hcl.Diagnostics
	for _, f := range files {
		diags = diags.Extend(m.decodeBody(f.Body))
	}
	return m, diags
}

func (m *Module) decodeBody(body *hcl.Body) hcl.Diagnostics {
	var diags hcl.Diagnostics
	for _, attr := range body.Attributes {
		diags = diags.Append(hcl.Errorf(attr.Rng,
			"unexpected top-level attribute %q; only blocks are allowed at the top level", attr.Name))
	}
	for _, blk := range body.Blocks {
		switch blk.Type {
		case "variable":
			diags = diags.Extend(m.decodeVariable(blk))
		case "locals":
			diags = diags.Extend(m.decodeLocals(blk))
		case "resource":
			diags = diags.Extend(m.decodeResource(blk, ManagedMode))
		case "data":
			diags = diags.Extend(m.decodeResource(blk, DataMode))
		case "output":
			diags = diags.Extend(m.decodeOutput(blk))
		case "provider":
			diags = diags.Extend(m.decodeProvider(blk))
		case "module":
			diags = diags.Extend(m.decodeModuleCall(blk))
		default:
			diags = diags.Append(hcl.Errorf(blk.TypeRange,
				"unsupported block type %q; expected variable, locals, resource, data, output, provider, or module", blk.Type))
		}
	}
	return diags
}

func (m *Module) decodeVariable(blk *hcl.Block) hcl.Diagnostics {
	var diags hcl.Diagnostics
	if len(blk.Labels) != 1 {
		return diags.Append(hcl.Errorf(blk.DefRange(), "variable blocks need exactly one label (the variable name)"))
	}
	v := &Variable{Name: blk.Labels[0], DeclRange: blk.DefRange()}
	if dup, exists := m.Variables[v.Name]; exists {
		return diags.Append(hcl.Errorf(blk.DefRange(),
			"duplicate variable %q; previously declared at %s", v.Name, dup.DeclRange))
	}
	for _, attr := range blk.Body.Attributes {
		switch attr.Name {
		case "type":
			if lit, ok := attr.Expr.(*hcl.LiteralExpr); ok {
				if s, ok := lit.Val.(string); ok {
					v.Type = s
					continue
				}
			}
			if tr, ok := attr.Expr.(*hcl.ScopeTraversalExpr); ok {
				v.Type = tr.Traversal.RootName() // bare keyword style: type = string
				continue
			}
			diags = diags.Append(hcl.Errorf(attr.Rng, "variable type must be a type keyword or string"))
		case "default":
			val, d := eval.Evaluate(attr.Expr, eval.NewContext())
			diags = diags.Extend(d)
			if !d.HasErrors() {
				v.Default = val
				v.HasDefault = true
			}
		case "description":
			if lit, ok := attr.Expr.(*hcl.LiteralExpr); ok {
				if s, ok := lit.Val.(string); ok {
					v.Description = s
				}
			}
		default:
			diags = diags.Append(hcl.Errorf(attr.NameRange,
				"unsupported argument %q in variable block", attr.Name))
		}
	}
	m.Variables[v.Name] = v
	return diags
}

func (m *Module) decodeLocals(blk *hcl.Block) hcl.Diagnostics {
	var diags hcl.Diagnostics
	if len(blk.Labels) != 0 {
		diags = diags.Append(hcl.Errorf(blk.DefRange(), "locals blocks take no labels"))
	}
	for _, attr := range blk.Body.Attributes {
		if dup, exists := m.Locals[attr.Name]; exists {
			diags = diags.Append(hcl.Errorf(attr.NameRange,
				"duplicate local value %q; previously declared at %s", attr.Name, dup.DeclRange))
			continue
		}
		m.Locals[attr.Name] = &Local{Name: attr.Name, Expr: attr.Expr, DeclRange: attr.NameRange}
	}
	return diags
}

func (m *Module) decodeResource(blk *hcl.Block, mode Mode) hcl.Diagnostics {
	var diags hcl.Diagnostics
	kind := "resource"
	if mode == DataMode {
		kind = "data"
	}
	if len(blk.Labels) != 2 {
		return diags.Append(hcl.Errorf(blk.DefRange(),
			"%s blocks need exactly two labels: %s \"<type>\" \"<name>\"", kind, kind))
	}
	r := &Resource{
		Mode: mode, Type: blk.Labels[0], Name: blk.Labels[1],
		Attrs:     map[string]hcl.Expression{},
		AttrRange: map[string]hcl.Range{},
		DeclRange: blk.DefRange(),
	}
	target := m.Resources
	if mode == DataMode {
		target = m.Data
	}
	if dup, exists := target[r.Key()]; exists {
		return diags.Append(hcl.Errorf(blk.DefRange(),
			"duplicate %s %q; previously declared at %s", kind, r.Key(), dup.DeclRange))
	}
	if _, ok := schema.LookupResource(r.Type); !ok {
		diags = diags.Append(hcl.Errorf(blk.LabelRanges[0],
			"unknown resource type %q; is the provider registered?", r.Type))
	}
	diags = diags.Extend(r.decodeBody(blk.Body))
	target[r.Key()] = r
	return diags
}

func (r *Resource) decodeBody(body *hcl.Body) hcl.Diagnostics {
	var diags hcl.Diagnostics
	for _, attr := range body.Attributes {
		switch attr.Name {
		case "count":
			r.Count = attr.Expr
		case "for_each":
			r.ForEach = attr.Expr
		case "depends_on":
			tup, ok := attr.Expr.(*hcl.TupleExpr)
			if !ok {
				diags = diags.Append(hcl.Errorf(attr.Rng, "depends_on must be a list of resource references"))
				continue
			}
			for _, item := range tup.Items {
				ref, ok := item.(*hcl.ScopeTraversalExpr)
				if !ok {
					diags = diags.Append(hcl.Errorf(item.Range(), "depends_on entries must be bare resource references"))
					continue
				}
				r.DependsOn = append(r.DependsOn, ref.Traversal)
			}
		default:
			r.setAttr(attr.Name, attr.Expr, attr.Rng)
		}
	}
	if r.Count != nil && r.ForEach != nil {
		diags = diags.Append(hcl.Errorf(r.DeclRange, `"count" and "for_each" cannot both be set`))
	}
	// Nested blocks become object-valued attributes: tags { a = 1 } is
	// sugar for tags = { a = 1 }.
	for _, sub := range body.Blocks {
		items := make([]hcl.ObjectItem, 0, len(sub.Body.Attributes))
		for _, a := range sub.Body.Attributes {
			items = append(items, hcl.ObjectItem{
				Key:   &hcl.LiteralExpr{Val: a.Name, Rng: a.NameRange},
				Value: a.Expr,
			})
		}
		if len(sub.Body.Blocks) > 0 {
			diags = diags.Append(hcl.Errorf(sub.DefRange(), "nested blocks may not themselves contain blocks"))
		}
		r.setAttr(sub.Type, &hcl.ObjectExpr{Items: items, Rng: sub.Rng}, sub.Rng)
	}
	return diags
}

func (r *Resource) setAttr(name string, expr hcl.Expression, rng hcl.Range) {
	if _, exists := r.Attrs[name]; !exists {
		r.AttrOrder = append(r.AttrOrder, name)
	}
	r.Attrs[name] = expr
	r.AttrRange[name] = rng
}

func (m *Module) decodeOutput(blk *hcl.Block) hcl.Diagnostics {
	var diags hcl.Diagnostics
	if len(blk.Labels) != 1 {
		return diags.Append(hcl.Errorf(blk.DefRange(), "output blocks need exactly one label"))
	}
	o := &Output{Name: blk.Labels[0], DeclRange: blk.DefRange()}
	valAttr := blk.Body.Attribute("value")
	if valAttr == nil {
		return diags.Append(hcl.Errorf(blk.DefRange(), "output %q is missing its value attribute", o.Name))
	}
	o.Expr = valAttr.Expr
	if s := blk.Body.Attribute("sensitive"); s != nil {
		if lit, ok := s.Expr.(*hcl.LiteralExpr); ok {
			if b, ok := lit.Val.(bool); ok {
				o.Sensitive = b
			}
		}
	}
	m.Outputs[o.Name] = o
	return diags
}

func (m *Module) decodeProvider(blk *hcl.Block) hcl.Diagnostics {
	var diags hcl.Diagnostics
	if len(blk.Labels) != 1 {
		return diags.Append(hcl.Errorf(blk.DefRange(), "provider blocks need exactly one label"))
	}
	p := &ProviderCfg{Name: blk.Labels[0], Attrs: map[string]hcl.Expression{}, DeclRange: blk.DefRange()}
	if _, ok := schema.LookupProvider(p.Name); !ok {
		diags = diags.Append(hcl.Errorf(blk.LabelRanges[0],
			"unknown provider %q; registered providers: %s", p.Name, strings.Join(schema.Providers(), ", ")))
	}
	for _, attr := range blk.Body.Attributes {
		p.Attrs[attr.Name] = attr.Expr
	}
	m.Providers[p.Name] = p
	return diags
}

func (m *Module) decodeModuleCall(blk *hcl.Block) hcl.Diagnostics {
	var diags hcl.Diagnostics
	if len(blk.Labels) != 1 {
		return diags.Append(hcl.Errorf(blk.DefRange(), "module blocks need exactly one label"))
	}
	call := &ModuleCall{Name: blk.Labels[0], Args: map[string]hcl.Expression{}, DeclRange: blk.DefRange()}
	if dup, exists := m.Calls[call.Name]; exists {
		return diags.Append(hcl.Errorf(blk.DefRange(),
			"duplicate module %q; previously declared at %s", call.Name, dup.DeclRange))
	}
	for _, attr := range blk.Body.Attributes {
		if attr.Name == "source" {
			lit, ok := attr.Expr.(*hcl.LiteralExpr)
			if !ok {
				diags = diags.Append(hcl.Errorf(attr.Rng, "module source must be a literal string"))
				continue
			}
			s, ok := lit.Val.(string)
			if !ok {
				diags = diags.Append(hcl.Errorf(attr.Rng, "module source must be a string"))
				continue
			}
			call.Source = s
			continue
		}
		call.Args[attr.Name] = attr.Expr
	}
	if call.Source == "" {
		diags = diags.Append(hcl.Errorf(blk.DefRange(), "module %q is missing its source attribute", call.Name))
	}
	m.Calls[call.Name] = call
	return diags
}

// typeCheckValue verifies a variable value against a declared type keyword.
func typeCheckValue(v eval.Value, typ string) error {
	if typ == "" || v.IsUnknown() || v.IsNull() {
		return nil
	}
	want := map[string]eval.Kind{
		"string": eval.KindString,
		"number": eval.KindNumber,
		"bool":   eval.KindBool,
		"list":   eval.KindList,
		"map":    eval.KindObject,
		"object": eval.KindObject,
	}
	k, ok := want[typ]
	if !ok {
		return fmt.Errorf("unknown type keyword %q", typ)
	}
	if v.Kind() != k {
		return fmt.Errorf("expected %s, got %s", typ, v.Kind())
	}
	return nil
}
