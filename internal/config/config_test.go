package config

import (
	"strings"
	"testing"

	"cloudless/internal/eval"
)

// figure2 is the paper's Figure 2 program in CCL.
const figure2 = `
data "aws_region" "current" {}

variable "vmName" {
  type    = string
  default = "cloudless"
}

resource "aws_network_interface" "n1" {
  name      = "example-nic"
  region    = data.aws_region.current.name
  subnet_id = aws_subnet.s1.id
}

resource "aws_subnet" "s1" {
  vpc_id     = aws_vpc.main.id
  cidr_block = "10.0.1.0/24"
}

resource "aws_vpc" "main" {
  name       = "main"
  cidr_block = "10.0.0.0/16"
}

resource "aws_virtual_machine" "vm1" {
  name    = var.vmName
  nic_ids = [aws_network_interface.n1.id]
}
`

func loadOK(t *testing.T, src string) *Module {
	t.Helper()
	m, diags := Load(map[string]string{"main.ccl": src})
	if diags.HasErrors() {
		t.Fatalf("load: %s", diags.Error())
	}
	return m
}

func expandOK(t *testing.T, src string, vars map[string]eval.Value) *Expansion {
	t.Helper()
	m := loadOK(t, src)
	ex, diags := Expand(m, vars, nil)
	if diags.HasErrors() {
		t.Fatalf("expand: %s", diags.Error())
	}
	return ex
}

func TestLoadFigure2(t *testing.T) {
	m := loadOK(t, figure2)
	if len(m.Resources) != 4 || len(m.Data) != 1 || len(m.Variables) != 1 {
		t.Fatalf("resources=%d data=%d vars=%d", len(m.Resources), len(m.Data), len(m.Variables))
	}
	v := m.Variables["vmName"]
	if v.Type != "string" || !v.HasDefault || v.Default.AsString() != "cloudless" {
		t.Errorf("vmName = %+v", v)
	}
}

func TestExpandFigure2(t *testing.T) {
	ex := expandOK(t, figure2, nil)
	if len(ex.Instances) != 5 {
		t.Fatalf("got %d instances", len(ex.Instances))
	}
	vm := ex.ByAddr["aws_virtual_machine.vm1"]
	if vm == nil {
		t.Fatal("vm1 instance missing")
	}
	if len(vm.DependsOn) != 1 || vm.DependsOn[0] != "aws_network_interface.n1" {
		t.Errorf("vm deps = %v", vm.DependsOn)
	}
	nic := ex.ByAddr["aws_network_interface.n1"]
	wantDeps := []string{"aws_subnet.s1", "data.aws_region.current"}
	if strings.Join(nic.DependsOn, ",") != strings.Join(wantDeps, ",") {
		t.Errorf("nic deps = %v", nic.DependsOn)
	}
	// var.vmName evaluates in the instance scope.
	v, d := eval.Evaluate(vm.Attrs["name"], vm.Scope)
	if d.HasErrors() || v.AsString() != "cloudless" {
		t.Errorf("name = %v, %v", v, d)
	}
	if vm.Region != "us-east-1" {
		t.Errorf("region = %q (provider default expected)", vm.Region)
	}
	if vm.Provider != "aws" {
		t.Errorf("provider = %q", vm.Provider)
	}
}

func TestVariableOverrideAndTypeCheck(t *testing.T) {
	ex := expandOK(t, figure2, map[string]eval.Value{"vmName": eval.String("prod-vm")})
	vm := ex.ByAddr["aws_virtual_machine.vm1"]
	v, _ := eval.Evaluate(vm.Attrs["name"], vm.Scope)
	if v.AsString() != "prod-vm" {
		t.Errorf("name = %v", v)
	}
	m := loadOK(t, figure2)
	_, diags := Expand(m, map[string]eval.Value{"vmName": eval.Int(3)}, nil)
	if !diags.HasErrors() {
		t.Error("type mismatch not caught")
	}
}

func TestMissingRequiredVariable(t *testing.T) {
	m := loadOK(t, `
variable "required_thing" {}
resource "aws_vpc" "v" { cidr_block = var.required_thing }
`)
	_, diags := Expand(m, nil, nil)
	if !diags.HasErrors() || !strings.Contains(diags.Error(), "required_thing") {
		t.Fatalf("diags = %v", diags)
	}
}

func TestUndeclaredVariableValueRejected(t *testing.T) {
	m := loadOK(t, `resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }`)
	_, diags := Expand(m, map[string]eval.Value{"nope": eval.Int(1)}, nil)
	if !diags.HasErrors() {
		t.Error("undeclared variable value accepted")
	}
}

func TestLocalsChainAndCycle(t *testing.T) {
	ex := expandOK(t, `
variable "env" { default = "prod" }
locals {
  base   = "app-${var.env}"
  full   = "${local.base}-v2"
}
resource "aws_vpc" "v" {
  name       = local.full
  cidr_block = "10.0.0.0/16"
}
`, nil)
	v := ex.ByAddr["aws_vpc.v"]
	got, d := eval.Evaluate(v.Attrs["name"], v.Scope)
	if d.HasErrors() || got.AsString() != "app-prod-v2" {
		t.Errorf("name = %v %v", got, d)
	}

	m := loadOK(t, `
locals {
  a = local.b
  b = local.a
}
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
`)
	_, diags := Expand(m, nil, nil)
	if !diags.HasErrors() || !strings.Contains(diags.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", diags)
	}
}

func TestLocalsCannotReferenceResources(t *testing.T) {
	m := loadOK(t, `
locals { vpc = aws_vpc.v.id }
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
`)
	_, diags := Expand(m, nil, nil)
	if !diags.HasErrors() {
		t.Error("resource reference in local accepted")
	}
}

func TestCountExpansion(t *testing.T) {
	ex := expandOK(t, `
variable "n" { default = 3 }
resource "aws_vpc" "v" {
  count      = var.n
  name       = "vpc-${count.index}"
  cidr_block = "10.${count.index}.0.0/16"
}
`, nil)
	if len(ex.Instances) != 3 {
		t.Fatalf("got %d instances", len(ex.Instances))
	}
	inst := ex.ByAddr["aws_vpc.v[2]"]
	if inst == nil {
		t.Fatal("aws_vpc.v[2] missing")
	}
	name, _ := eval.Evaluate(inst.Attrs["name"], inst.Scope)
	cidr, _ := eval.Evaluate(inst.Attrs["cidr_block"], inst.Scope)
	if name.AsString() != "vpc-2" || cidr.AsString() != "10.2.0.0/16" {
		t.Errorf("instance 2: name=%v cidr=%v", name, cidr)
	}
	if inst.ResourceAddr() != "aws_vpc.v" {
		t.Errorf("resource addr = %q", inst.ResourceAddr())
	}
}

func TestCountZeroProducesNoInstances(t *testing.T) {
	ex := expandOK(t, `
resource "aws_vpc" "v" {
  count      = 0
  cidr_block = "10.0.0.0/16"
}
`, nil)
	if len(ex.Instances) != 0 {
		t.Fatalf("got %d instances", len(ex.Instances))
	}
}

func TestCountCannotReferenceResources(t *testing.T) {
	m := loadOK(t, `
resource "aws_vpc" "a" { cidr_block = "10.0.0.0/16" }
resource "aws_subnet" "s" {
  count      = length(aws_vpc.a.id)
  vpc_id     = aws_vpc.a.id
  cidr_block = "10.0.1.0/24"
}
`)
	_, diags := Expand(m, nil, nil)
	if !diags.HasErrors() {
		t.Error("count referencing a resource accepted")
	}
}

func TestForEachMapExpansion(t *testing.T) {
	ex := expandOK(t, `
variable "zones" {
  default = { a = "10.0.1.0/24", b = "10.0.2.0/24" }
}
resource "aws_subnet" "s" {
  for_each   = var.zones
  vpc_id     = aws_vpc.v.id
  cidr_block = each.value
  name       = "subnet-${each.key}"
}
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
`, nil)
	if len(ex.Instances) != 3 {
		t.Fatalf("got %d instances", len(ex.Instances))
	}
	sb := ex.ByAddr[`aws_subnet.s["b"]`]
	if sb == nil {
		t.Fatalf("keyed instance missing; have %v", addrsOf(ex))
	}
	cidr, _ := eval.Evaluate(sb.Attrs["cidr_block"], sb.Scope)
	if cidr.AsString() != "10.0.2.0/24" {
		t.Errorf("cidr = %v", cidr)
	}
}

func TestForEachListDuplicateRejected(t *testing.T) {
	m := loadOK(t, `
variable "names" { default = ["x", "x"] }
resource "aws_vpc" "v" {
  for_each   = var.names
  name       = each.key
  cidr_block = "10.0.0.0/16"
}
`)
	_, diags := Expand(m, nil, nil)
	if !diags.HasErrors() || !strings.Contains(diags.Error(), "duplicate") {
		t.Fatalf("diags = %v", diags)
	}
}

func TestCountAndForEachMutuallyExclusive(t *testing.T) {
	_, diags := Load(map[string]string{"m.ccl": `
resource "aws_vpc" "v" {
  count      = 1
  for_each   = ["a"]
  cidr_block = "10.0.0.0/16"
}
`})
	if !diags.HasErrors() {
		t.Error("count+for_each accepted")
	}
}

func TestProviderRegionConfiguration(t *testing.T) {
	ex := expandOK(t, `
provider "aws" { region = "eu-west-1" }
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.v.id
  cidr_block = "10.0.1.0/24"
  region     = "us-west-2"
}
`, nil)
	if ex.Providers["aws"].Region != "eu-west-1" {
		t.Errorf("provider region = %q", ex.Providers["aws"].Region)
	}
	if ex.ByAddr["aws_vpc.v"].Region != "eu-west-1" {
		t.Errorf("vpc region = %q", ex.ByAddr["aws_vpc.v"].Region)
	}
	if ex.ByAddr["aws_subnet.s"].Region != "us-west-2" {
		t.Errorf("subnet region override = %q", ex.ByAddr["aws_subnet.s"].Region)
	}
}

func TestDependsOnExplicit(t *testing.T) {
	ex := expandOK(t, `
resource "aws_vpc" "a" { cidr_block = "10.0.0.0/16" }
resource "aws_vpc" "b" {
  cidr_block = "10.1.0.0/16"
  depends_on = [aws_vpc.a]
}
`, nil)
	b := ex.ByAddr["aws_vpc.b"]
	if len(b.DependsOn) != 1 || b.DependsOn[0] != "aws_vpc.a" {
		t.Errorf("deps = %v", b.DependsOn)
	}
}

func TestNestedBlockBecomesObjectAttr(t *testing.T) {
	m := loadOK(t, `
resource "aws_vpc" "v" {
  cidr_block = "10.0.0.0/16"
  tags {
    env = "prod"
  }
}
`)
	r := m.Resources["aws_vpc.v"]
	if _, ok := r.Attrs["tags"]; !ok {
		t.Fatal("tags block not lifted to attribute")
	}
}

func TestModuleExpansion(t *testing.T) {
	resolver := MapResolver{
		"./modules/network": {
			"net.ccl": `
variable "cidr" {}
variable "name" { default = "net" }
resource "aws_vpc" "main" {
  name       = var.name
  cidr_block = var.cidr
}
resource "aws_subnet" "a" {
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(var.cidr, 8, 1)
}
output "vpc_id" { value = aws_vpc.main.id }
`,
		},
	}
	m := loadOK(t, `
variable "base" { default = "10.42.0.0/16" }
module "network" {
  source = "./modules/network"
  cidr   = var.base
  name   = "prod-net"
}
resource "aws_security_group" "sg" {
  name   = "app"
  vpc_id = module.network.vpc_id
}
`)
	ex, diags := Expand(m, nil, resolver)
	if diags.HasErrors() {
		t.Fatalf("expand: %s", diags.Error())
	}
	vpc := ex.ByAddr["module.network.aws_vpc.main"]
	if vpc == nil {
		t.Fatalf("module vpc missing; have %v", addrsOf(ex))
	}
	name, _ := eval.Evaluate(vpc.Attrs["name"], vpc.Scope)
	if name.AsString() != "prod-net" {
		t.Errorf("module arg not bound: name = %v", name)
	}
	sub := ex.ByAddr["module.network.aws_subnet.a"]
	if len(sub.DependsOn) != 1 || sub.DependsOn[0] != "module.network.aws_vpc.main" {
		t.Errorf("module-internal deps = %v", sub.DependsOn)
	}
	// The root SG depends, through the module output, on the module's VPC.
	sg := ex.ByAddr["aws_security_group.sg"]
	if len(sg.DependsOn) != 1 || sg.DependsOn[0] != "module.network.aws_vpc.main" {
		t.Errorf("cross-module deps = %v", sg.DependsOn)
	}
	// Module outputs recorded.
	if _, ok := ex.ModuleOutputs["network"]["vpc_id"]; !ok {
		t.Error("module output spec missing")
	}
}

func TestModuleArgCannotReferenceResources(t *testing.T) {
	resolver := MapResolver{"./m": {"m.ccl": `
variable "x" {}
resource "aws_vpc" "v" { cidr_block = var.x }
`}}
	m := loadOK(t, `
resource "aws_vpc" "root" { cidr_block = "10.0.0.0/16" }
module "child" {
  source = "./m"
  x      = aws_vpc.root.cidr_block
}
`)
	_, diags := Expand(m, nil, resolver)
	if !diags.HasErrors() {
		t.Error("module arg referencing a resource accepted")
	}
}

func TestUnknownResourceTypeDiagnostic(t *testing.T) {
	_, diags := Load(map[string]string{"m.ccl": `
resource "gcp_instance" "x" { name = "y" }
`})
	if !diags.HasErrors() || !strings.Contains(diags.Error(), "gcp_instance") {
		t.Fatalf("diags = %v", diags)
	}
}

func TestDuplicateResourceRejected(t *testing.T) {
	_, diags := Load(map[string]string{"m.ccl": `
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
resource "aws_vpc" "v" { cidr_block = "10.1.0.0/16" }
`})
	if !diags.HasErrors() || !strings.Contains(diags.Error(), "duplicate") {
		t.Fatalf("diags = %v", diags)
	}
}

func TestOutputsRecorded(t *testing.T) {
	ex := expandOK(t, `
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
output "vpc_id" {
  value     = aws_vpc.v.id
  sensitive = false
}
`, nil)
	out := ex.Outputs["vpc_id"]
	if out == nil {
		t.Fatal("output missing")
	}
	if len(out.Deps) != 1 || out.Deps[0] != "aws_vpc.v" {
		t.Errorf("output deps = %v", out.Deps)
	}
}

func TestLoadDeterministicDiagOrder(t *testing.T) {
	files := map[string]string{
		"b.ccl": `resource "aws_vpc" "b" { bad`,
		"a.ccl": `resource "aws_vpc" "a" { bad`,
	}
	_, d1 := Load(files)
	_, d2 := Load(files)
	if d1.Error() != d2.Error() {
		t.Error("diagnostics order not deterministic")
	}
}

func addrsOf(ex *Expansion) []string {
	var out []string
	for _, i := range ex.Instances {
		out = append(out, i.Addr)
	}
	return out
}
