package config

import (
	"fmt"
	"sort"
	"strings"

	"cloudless/internal/eval"
	"cloudless/internal/hcl"
	"cloudless/internal/schema"
)

// Instance is one concrete resource instance after expansion: a single
// cloud object to be planned and applied.
type Instance struct {
	// Addr uniquely identifies the instance, e.g. "aws_vpc.main",
	// "aws_subnet.s[2]", `aws_vm.web["blue"]`, "data.aws_region.current",
	// or "module.net.aws_vpc.main".
	Addr string
	// ModulePath is "" for the root module or the module call name.
	ModulePath string
	Mode       Mode
	Type       string
	Name       string
	// Scope is the evaluation context carrying var/local/count/each
	// bindings. Resource values are layered on top by the planner.
	Scope *eval.Context
	// Attrs are the configured attribute expressions.
	Attrs     map[string]hcl.Expression
	AttrRange map[string]hcl.Range
	// DependsOn lists resource-level addresses (no instance index) this
	// instance depends on, sorted and de-duplicated.
	DependsOn []string
	DeclRange hcl.Range
	// Provider is the owning provider's name.
	Provider string
	// Region is the resolved region for the instance: explicit attribute,
	// then provider configuration, then provider default. Explicit
	// region/location attributes that reference resources stay unresolved
	// here and are re-derived at apply time.
	Region string
}

// ResourceAddr returns the instance's resource-level address (no index).
func (i *Instance) ResourceAddr() string {
	if idx := strings.IndexByte(i.Addr, '['); idx >= 0 {
		return i.Addr[:idx]
	}
	return i.Addr
}

// OutputSpec is an evaluated-later output: a root output or a module output
// consulted by module.<name>.<output> references.
type OutputSpec struct {
	ModulePath string
	Name       string
	Expr       hcl.Expression
	Scope      *eval.Context
	Deps       []string
	Sensitive  bool
	DeclRange  hcl.Range
}

// ProviderSettings is the evaluated provider configuration.
type ProviderSettings struct {
	Name   string
	Region string
	Attrs  map[string]eval.Value
}

// Expansion is the fully-expanded configuration: every instance, output,
// and provider setting, ready for planning.
type Expansion struct {
	Instances []*Instance
	ByAddr    map[string]*Instance
	// Outputs are the root module's outputs.
	Outputs map[string]*OutputSpec
	// ModuleOutputs maps module call name -> output name -> spec.
	ModuleOutputs map[string]map[string]*OutputSpec
	Providers     map[string]ProviderSettings
}

// InstancesOf returns the instances of a resource-level address, sorted.
func (e *Expansion) InstancesOf(resourceAddr string) []*Instance {
	var out []*Instance
	for _, inst := range e.Instances {
		if inst.ResourceAddr() == resourceAddr {
			out = append(out, inst)
		}
	}
	return out
}

// Expand evaluates the root module with the given variable values and
// produces the instance set. The resolver loads child modules; it may be nil
// when the configuration has no module calls.
func Expand(root *Module, vars map[string]eval.Value, resolver ModuleResolver) (*Expansion, hcl.Diagnostics) {
	ex := &Expansion{
		ByAddr:        map[string]*Instance{},
		Outputs:       map[string]*OutputSpec{},
		ModuleOutputs: map[string]map[string]*OutputSpec{},
		Providers:     map[string]ProviderSettings{},
	}
	var diags hcl.Diagnostics

	rootScope, d := moduleScope(root, vars, hcl.Range{})
	diags = diags.Extend(d)
	if diags.HasErrors() {
		return ex, diags
	}

	// Provider settings come from the root module only; child modules
	// inherit them (per-module providers are future work, as in early
	// Terraform).
	for _, name := range schema.Providers() {
		prov, _ := schema.LookupProvider(name)
		settings := ProviderSettings{Name: name, Region: prov.DefaultRegion, Attrs: map[string]eval.Value{}}
		if cfg, ok := root.Providers[name]; ok {
			for attr, expr := range cfg.Attrs {
				v, d := eval.Evaluate(expr, rootScope)
				diags = diags.Extend(d)
				if d.HasErrors() {
					continue
				}
				settings.Attrs[attr] = v
				if (attr == "region" || attr == "location") && v.Kind() == eval.KindString {
					settings.Region = v.AsString()
				}
			}
		}
		ex.Providers[name] = settings
	}

	// Child modules are expanded before the root module so that root
	// references to module outputs can resolve against the recorded
	// output specs.
	for _, callName := range sortedCallNames(root.Calls) {
		call := root.Calls[callName]
		if resolver == nil {
			diags = diags.Append(hcl.Errorf(call.DeclRange,
				"module %q cannot be loaded: no module resolver configured", call.Name))
			continue
		}
		files, err := resolver.Resolve(call.Source)
		if err != nil {
			diags = diags.Append(hcl.Errorf(call.DeclRange, "module %q: %s", call.Name, err))
			continue
		}
		child, d := Load(files)
		diags = diags.Extend(d)
		if d.HasErrors() {
			continue
		}
		if len(child.Calls) > 0 {
			diags = diags.Append(hcl.Errorf(call.DeclRange,
				"module %q: nested module calls are not supported (one level of modules only)", call.Name))
			continue
		}
		// Module arguments must be derivable before deployment: they may
		// reference variables and locals but not resources.
		args := map[string]eval.Value{}
		for argName, expr := range call.Args {
			for _, tr := range expr.Variables() {
				root := tr.RootName()
				if root != "var" && root != "local" {
					diags = diags.Append(hcl.Errorf(expr.Range(),
						"module argument %q may only reference variables and locals, not %q", argName, root))
				}
			}
			v, d := eval.Evaluate(expr, rootScope)
			diags = diags.Extend(d)
			args[argName] = v
		}
		childScope, d := moduleScope(child, args, call.DeclRange)
		diags = diags.Extend(d)
		if d.HasErrors() {
			continue
		}
		diags = diags.Extend(ex.expandModule(child, childScope, call.Name))
	}

	diags = diags.Extend(ex.expandModule(root, rootScope, ""))

	sort.Slice(ex.Instances, func(i, j int) bool { return ex.Instances[i].Addr < ex.Instances[j].Addr })
	return ex, diags
}

// moduleScope binds variables and locals for one module.
func moduleScope(m *Module, vars map[string]eval.Value, at hcl.Range) (*eval.Context, hcl.Diagnostics) {
	var diags hcl.Diagnostics
	scope := eval.NewContext()

	varObj := map[string]eval.Value{}
	for name, decl := range m.Variables {
		v, given := vars[name]
		switch {
		case given:
			if err := typeCheckValue(v, decl.Type); err != nil {
				diags = diags.Append(hcl.Errorf(decl.DeclRange,
					"invalid value for variable %q: %s", name, err))
			}
			varObj[name] = v
		case decl.HasDefault:
			varObj[name] = decl.Default
		default:
			diags = diags.Append(hcl.Errorf(decl.DeclRange,
				"variable %q has no value and no default", name))
		}
	}
	for name := range vars {
		if _, declared := m.Variables[name]; !declared {
			diags = diags.Append(hcl.Errorf(at, "value provided for undeclared variable %q", name))
		}
	}
	scope.Variables["var"] = eval.Object(varObj)

	// Locals may reference variables and other locals; evaluate to a fixed
	// point and report cycles. Resources are deliberately out of scope for
	// locals so the instance set is computable before deployment.
	localObj := map[string]eval.Value{}
	remaining := map[string]*Local{}
	for name, l := range m.Locals {
		for _, tr := range l.Expr.Variables() {
			if r := tr.RootName(); r != "var" && r != "local" {
				diags = diags.Append(hcl.Errorf(l.Expr.Range(),
					"local %q may only reference variables and other locals, not %q", name, r))
			}
		}
		remaining[name] = l
	}
	if diags.HasErrors() {
		return scope, diags
	}
	for len(remaining) > 0 {
		progressed := false
		for name, l := range remaining {
			ready := true
			for _, tr := range l.Expr.Variables() {
				if tr.RootName() != "local" || len(tr) < 2 {
					continue
				}
				attr, ok := tr[1].(hcl.TraverseAttr)
				if !ok {
					continue
				}
				if _, done := localObj[attr.Name]; !done {
					if _, pending := remaining[attr.Name]; pending {
						ready = false
						break
					}
				}
			}
			if !ready {
				continue
			}
			scope.Variables["local"] = eval.Object(localObj)
			v, d := eval.Evaluate(l.Expr, scope)
			diags = diags.Extend(d)
			localObj[name] = v
			delete(remaining, name)
			progressed = true
		}
		if !progressed {
			var names []string
			for name := range remaining {
				names = append(names, name)
			}
			sort.Strings(names)
			diags = diags.Append(hcl.Errorf(m.Locals[names[0]].DeclRange,
				"dependency cycle among locals: %s", strings.Join(names, ", ")))
			break
		}
	}
	scope.Variables["local"] = eval.Object(localObj)
	return scope, diags
}

// expandModule expands every resource and data source of one module.
func (ex *Expansion) expandModule(m *Module, scope *eval.Context, modulePath string) hcl.Diagnostics {
	var diags hcl.Diagnostics
	prefix := ""
	if modulePath != "" {
		prefix = "module." + modulePath + "."
	}

	expandOne := func(r *Resource) {
		keys, d := instanceKeys(r, scope)
		diags = diags.Extend(d)
		if d.HasErrors() {
			return
		}
		deps := ex.resourceDeps(r, m, modulePath)
		provName := ""
		if p, ok := schema.ProviderForType(r.Type); ok {
			provName = p.Name
		}
		for _, key := range keys {
			inst := &Instance{
				ModulePath: modulePath,
				Mode:       r.Mode,
				Type:       r.Type,
				Name:       r.Name,
				Attrs:      r.Attrs,
				AttrRange:  r.AttrRange,
				DependsOn:  deps,
				DeclRange:  r.DeclRange,
				Provider:   provName,
			}
			base := prefix + r.Key()
			if r.Mode == DataMode {
				base = prefix + "data." + r.Key()
			}
			instScope := scope.Child()
			switch k := key.(type) {
			case noKey:
				inst.Addr = base
			case intKey:
				inst.Addr = fmt.Sprintf("%s[%d]", base, int(k))
				instScope.Variables["count"] = eval.Object(map[string]eval.Value{"index": eval.Int(int(k))})
			case strKey:
				inst.Addr = fmt.Sprintf("%s[%q]", base, k.key)
				instScope.Variables["each"] = eval.Object(map[string]eval.Value{
					"key":   eval.String(k.key),
					"value": k.value,
				})
			}
			inst.Scope = instScope
			inst.Region = ex.regionFor(inst)
			if dup, exists := ex.ByAddr[inst.Addr]; exists {
				diags = diags.Append(hcl.Errorf(r.DeclRange,
					"duplicate instance address %q (also declared at %s)", inst.Addr, dup.DeclRange))
				continue
			}
			ex.ByAddr[inst.Addr] = inst
			ex.Instances = append(ex.Instances, inst)
		}
	}

	for _, key := range sortedResourceKeys(m.Data) {
		expandOne(m.Data[key])
	}
	for _, key := range sortedResourceKeys(m.Resources) {
		expandOne(m.Resources[key])
	}

	// Outputs.
	outs := map[string]*OutputSpec{}
	for name, o := range m.Outputs {
		spec := &OutputSpec{
			ModulePath: modulePath,
			Name:       name,
			Expr:       o.Expr,
			Scope:      scope,
			Sensitive:  o.Sensitive,
			DeclRange:  o.DeclRange,
		}
		spec.Deps = ex.exprDeps(o.Expr, m, modulePath)
		outs[name] = spec
	}
	if modulePath == "" {
		ex.Outputs = outs
	} else {
		ex.ModuleOutputs[modulePath] = outs
	}
	return diags
}

// regionFor resolves the region of an instance when it is statically known.
func (ex *Expansion) regionFor(inst *Instance) string {
	for _, attrName := range []string{"region", "location"} {
		expr, ok := inst.Attrs[attrName]
		if !ok {
			continue
		}
		// Only statically-evaluable regions resolve here; expressions that
		// reference resources resolve at apply time.
		refsResources := false
		for _, tr := range expr.Variables() {
			switch tr.RootName() {
			case "var", "local", "count", "each":
			default:
				refsResources = true
			}
		}
		if refsResources {
			return ""
		}
		v, d := eval.Evaluate(expr, inst.Scope)
		if !d.HasErrors() && v.Kind() == eval.KindString {
			return v.AsString()
		}
	}
	if p, ok := ex.Providers[inst.Provider]; ok {
		return p.Region
	}
	return ""
}

// instance key variants
type noKey struct{}
type intKey int
type strKey struct {
	key   string
	value eval.Value
}

func (s strKey) String() string { return s.key }

type instKey interface{}

func instanceKeys(r *Resource, scope *eval.Context) ([]instKey, hcl.Diagnostics) {
	var diags hcl.Diagnostics
	switch {
	case r.Count != nil:
		for _, tr := range r.Count.Variables() {
			if root := tr.RootName(); root != "var" && root != "local" {
				return nil, diags.Append(hcl.Errorf(r.Count.Range(),
					"count may only reference variables and locals, not %q", root))
			}
		}
		v, d := eval.Evaluate(r.Count, scope)
		diags = diags.Extend(d)
		if d.HasErrors() {
			return nil, diags
		}
		n, err := eval.ToNumberValue(v)
		if err != nil || n.IsUnknown() {
			return nil, diags.Append(hcl.Errorf(r.Count.Range(), "count must be a known number"))
		}
		c := n.AsInt()
		if c < 0 {
			return nil, diags.Append(hcl.Errorf(r.Count.Range(), "count cannot be negative (got %d)", c))
		}
		keys := make([]instKey, c)
		for i := 0; i < c; i++ {
			keys[i] = intKey(i)
		}
		return keys, diags
	case r.ForEach != nil:
		for _, tr := range r.ForEach.Variables() {
			if root := tr.RootName(); root != "var" && root != "local" {
				return nil, diags.Append(hcl.Errorf(r.ForEach.Range(),
					"for_each may only reference variables and locals, not %q", root))
			}
		}
		v, d := eval.Evaluate(r.ForEach, scope)
		diags = diags.Extend(d)
		if d.HasErrors() {
			return nil, diags
		}
		switch v.Kind() {
		case eval.KindObject:
			obj := v.AsObject()
			names := make([]string, 0, len(obj))
			for k := range obj {
				names = append(names, k)
			}
			sort.Strings(names)
			keys := make([]instKey, len(names))
			for i, k := range names {
				keys[i] = strKey{key: k, value: obj[k]}
			}
			return keys, diags
		case eval.KindList:
			var keys []instKey
			seen := map[string]bool{}
			for _, e := range v.AsList() {
				s, err := eval.ToStringValue(e)
				if err != nil || s.IsUnknown() {
					return nil, diags.Append(hcl.Errorf(r.ForEach.Range(),
						"for_each list elements must be known strings"))
				}
				if seen[s.AsString()] {
					return nil, diags.Append(hcl.Errorf(r.ForEach.Range(),
						"duplicate for_each key %q", s.AsString()))
				}
				seen[s.AsString()] = true
				keys = append(keys, strKey{key: s.AsString(), value: s})
			}
			return keys, diags
		default:
			return nil, diags.Append(hcl.Errorf(r.ForEach.Range(),
				"for_each requires a map or a list of strings, got %s", v.Kind()))
		}
	default:
		return []instKey{noKey{}}, diags
	}
}

// resourceDeps computes the resource-level dependency addresses of a
// declaration: explicit depends_on plus every reference in its expressions.
func (ex *Expansion) resourceDeps(r *Resource, m *Module, modulePath string) []string {
	set := map[string]bool{}
	for _, tr := range r.DependsOn {
		if addr, ok := ex.refToAddr(tr, m, modulePath); ok {
			for _, a := range addr {
				set[a] = true
			}
		}
	}
	exprs := make([]hcl.Expression, 0, len(r.Attrs)+2)
	for _, e := range r.Attrs {
		exprs = append(exprs, e)
	}
	if r.Count != nil {
		exprs = append(exprs, r.Count)
	}
	if r.ForEach != nil {
		exprs = append(exprs, r.ForEach)
	}
	for _, e := range exprs {
		for _, tr := range e.Variables() {
			if addrs, ok := ex.refToAddr(tr, m, modulePath); ok {
				for _, a := range addrs {
					set[a] = true
				}
			}
		}
	}
	self := r.Key()
	if modulePath != "" {
		self = "module." + modulePath + "." + self
	}
	delete(set, self)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// exprDeps resolves the dependencies of a standalone expression (outputs).
func (ex *Expansion) exprDeps(e hcl.Expression, m *Module, modulePath string) []string {
	set := map[string]bool{}
	for _, tr := range e.Variables() {
		if addrs, ok := ex.refToAddr(tr, m, modulePath); ok {
			for _, a := range addrs {
				set[a] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// refToAddr maps a traversal to the resource-level addresses it depends on.
func (ex *Expansion) refToAddr(tr hcl.Traversal, m *Module, modulePath string) ([]string, bool) {
	prefix := ""
	if modulePath != "" {
		prefix = "module." + modulePath + "."
	}
	root := tr.RootName()
	switch root {
	case "var", "local", "count", "each", "path":
		return nil, false
	case "data":
		if len(tr) >= 3 {
			typ, ok1 := tr[1].(hcl.TraverseAttr)
			name, ok2 := tr[2].(hcl.TraverseAttr)
			if ok1 && ok2 {
				return []string{prefix + "data." + typ.Name + "." + name.Name}, true
			}
		}
		return nil, false
	case "module":
		// module.<call>.<output>: depend on whatever the output depends on.
		if len(tr) >= 2 {
			call, ok := tr[1].(hcl.TraverseAttr)
			if !ok {
				return nil, false
			}
			outs := ex.ModuleOutputs[call.Name]
			if len(tr) >= 3 {
				if outName, ok := tr[2].(hcl.TraverseAttr); ok {
					if spec, exists := outs[outName.Name]; exists {
						return spec.Deps, true
					}
				}
			}
			var all []string
			for _, spec := range outs {
				all = append(all, spec.Deps...)
			}
			return all, len(all) > 0
		}
		return nil, false
	default:
		// A resource-type root such as aws_vpc.
		if _, isType := schema.LookupResource(root); !isType {
			return nil, false
		}
		if len(tr) >= 2 {
			if name, ok := tr[1].(hcl.TraverseAttr); ok {
				return []string{prefix + root + "." + name.Name}, true
			}
		}
		return nil, false
	}
}

func sortedResourceKeys(m map[string]*Resource) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedCallNames(m map[string]*ModuleCall) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
