// Package validate implements compile-time validation of CCL configurations:
// structural schema checks, the semantic type system of §3.2 (references are
// typed by what they refer to, not just "string"), and the knowledge-base
// cloud-level constraint rules — so that the deploy-time surprises the paper
// describes (region mismatches, co-requirement violations, overlapping
// peered address spaces) are caught before a single API call is made.
package validate

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/hcl"
	"cloudless/internal/schema"
)

// Finding is one validation result.
type Finding struct {
	// RuleID identifies the check: a knowledge-base rule ID or a built-in
	// check name like "schema/required".
	RuleID   string
	Severity hcl.Severity
	// Addr is the instance the finding is about.
	Addr string
	// Attr is the offending attribute, when attributable.
	Attr    string
	Summary string
	Detail  string
	Range   hcl.Range
}

// Error renders the finding like a compiler diagnostic.
func (f Finding) Error() string {
	return fmt.Sprintf("%s: %s: [%s] %s", f.Range, f.Severity, f.RuleID, f.Summary)
}

// Result is a set of findings.
type Result struct {
	Findings []Finding
}

// HasErrors reports whether any finding is error-severity.
func (r *Result) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Severity == hcl.DiagError {
			return true
		}
	}
	return false
}

// Errors returns only error-severity findings.
func (r *Result) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == hcl.DiagError {
			out = append(out, f)
		}
	}
	return out
}

// Diagnostics converts findings to hcl diagnostics.
func (r *Result) Diagnostics() hcl.Diagnostics {
	var out hcl.Diagnostics
	for _, f := range r.Findings {
		out = append(out, &hcl.Diagnostic{
			Severity: f.Severity,
			Summary:  fmt.Sprintf("[%s] %s", f.RuleID, f.Summary),
			Detail:   f.Detail,
			Subject:  f.Range,
		})
	}
	return out
}

// validator carries shared lookup tables across checks.
type validator struct {
	ex       *config.Expansion
	kb       *schema.KnowledgeBase
	findings []Finding
	// static attribute values per instance (unknown where not statically
	// evaluable).
	static map[string]map[string]eval.Value
}

// Validate checks an expanded configuration against the schema registry and
// a knowledge base. It never contacts a cloud.
func Validate(ex *config.Expansion, kb *schema.KnowledgeBase) *Result {
	if kb == nil {
		kb = schema.DefaultKB()
	}
	v := &validator{ex: ex, kb: kb, static: map[string]map[string]eval.Value{}}
	for _, inst := range ex.Instances {
		v.static[inst.Addr] = v.staticAttrs(inst)
	}
	for _, inst := range ex.Instances {
		if inst.Mode == config.DataMode {
			continue
		}
		v.checkSchema(inst)
		v.checkSemanticRefs(inst)
		v.checkValueSemantics(inst)
		v.checkRules(inst)
	}
	sort.SliceStable(v.findings, func(i, j int) bool {
		if v.findings[i].Addr != v.findings[j].Addr {
			return v.findings[i].Addr < v.findings[j].Addr
		}
		return v.findings[i].RuleID < v.findings[j].RuleID
	})
	return &Result{Findings: v.findings}
}

func (v *validator) add(f Finding) { v.findings = append(v.findings, f) }

// staticAttrs evaluates attributes as far as possible without a cloud:
// references to other resources become unknown instead of erroring.
func (v *validator) staticAttrs(inst *config.Instance) map[string]eval.Value {
	out := map[string]eval.Value{}
	rs, ok := schema.LookupResource(inst.Type)
	if ok {
		for name, a := range rs.Attrs {
			if a.HasDefault {
				out[name] = a.Default
			}
		}
	}
	for name, expr := range inst.Attrs {
		val, diags := eval.Evaluate(expr, scopeWithUnknownResources(inst, expr))
		if diags.HasErrors() {
			out[name] = eval.Unknown
			continue
		}
		out[name] = val
	}
	return out
}

// scopeWithUnknownResources builds a scope where every resource-ish root the
// expression mentions resolves to Unknown, so static evaluation never fails
// on cross-resource references.
func scopeWithUnknownResources(inst *config.Instance, expr hcl.Expression) *eval.Context {
	scope := inst.Scope.Child()
	for _, tr := range expr.Variables() {
		root := tr.RootName()
		if _, exists := scope.Lookup(root); exists {
			continue
		}
		scope.Variables[root] = eval.Unknown
	}
	return scope
}

// --- structural schema checks ---------------------------------------------

func (v *validator) checkSchema(inst *config.Instance) {
	rs, ok := schema.LookupResource(inst.Type)
	if !ok {
		v.add(Finding{
			RuleID: "schema/unknown-type", Severity: hcl.DiagError,
			Addr: inst.Addr, Range: inst.DeclRange,
			Summary: fmt.Sprintf("unknown resource type %q", inst.Type),
		})
		return
	}
	for _, name := range rs.RequiredAttrs() {
		if _, set := inst.Attrs[name]; !set {
			v.add(Finding{
				RuleID: "schema/required", Severity: hcl.DiagError,
				Addr: inst.Addr, Attr: name, Range: inst.DeclRange,
				Summary: fmt.Sprintf("required attribute %q is not set", name),
				Detail:  fmt.Sprintf("%s requires: %s", inst.Type, strings.Join(rs.RequiredAttrs(), ", ")),
			})
		}
	}
	statics := v.static[inst.Addr]
	for name := range inst.Attrs {
		a := rs.Attr(name)
		rng := inst.AttrRange[name]
		if a == nil {
			v.add(Finding{
				RuleID: "schema/unknown-attribute", Severity: hcl.DiagError,
				Addr: inst.Addr, Attr: name, Range: rng,
				Summary: fmt.Sprintf("%s has no attribute %q", inst.Type, name),
			})
			continue
		}
		if a.Computed {
			v.add(Finding{
				RuleID: "schema/computed-readonly", Severity: hcl.DiagError,
				Addr: inst.Addr, Attr: name, Range: rng,
				Summary: fmt.Sprintf("attribute %q is assigned by the cloud and cannot be configured", name),
			})
			continue
		}
		val := statics[name]
		if !val.IsKnown() || val.IsNull() {
			continue
		}
		if !typeMatches(a, val) {
			v.add(Finding{
				RuleID: "schema/type", Severity: hcl.DiagError,
				Addr: inst.Addr, Attr: name, Range: rng,
				Summary: fmt.Sprintf("attribute %q expects %s, got %s", name, a.Type, val.Kind()),
			})
			continue
		}
		if len(a.OneOf) > 0 && val.Kind() == eval.KindString && !containsStr(a.OneOf, val.AsString()) {
			v.add(Finding{
				RuleID: "schema/one-of", Severity: hcl.DiagError,
				Addr: inst.Addr, Attr: name, Range: rng,
				Summary: fmt.Sprintf("%q is not a valid value for %q", val.AsString(), name),
				Detail:  "allowed: " + strings.Join(a.OneOf, ", "),
			})
		}
	}
}

func typeMatches(a *schema.AttrSchema, v eval.Value) bool {
	switch a.Type {
	case schema.TypeString:
		// Numbers and bools convert implicitly, matching the evaluator.
		return v.Kind() == eval.KindString || v.Kind() == eval.KindNumber || v.Kind() == eval.KindBool
	case schema.TypeNumber:
		if v.Kind() == eval.KindString {
			_, err := eval.ToNumberValue(v)
			return err == nil
		}
		return v.Kind() == eval.KindNumber
	case schema.TypeBool:
		return v.Kind() == eval.KindBool
	case schema.TypeList:
		return v.Kind() == eval.KindList
	case schema.TypeMap:
		return v.Kind() == eval.KindObject
	}
	return true
}

func containsStr(list []string, s string) bool {
	for _, e := range list {
		if e == s {
			return true
		}
	}
	return false
}

// --- semantic reference checks (§3.2) --------------------------------------

// refTargets extracts the resource references inside an expression: pairs of
// (resource type, referenced attribute).
type refTarget struct {
	typ      string
	name     string
	lastAttr string
	rng      hcl.Range
}

func refTargetsOf(expr hcl.Expression) []refTarget {
	var out []refTarget
	for _, tr := range expr.Variables() {
		root := tr.RootName()
		if _, isType := schema.LookupResource(root); !isType {
			continue
		}
		t := refTarget{typ: root, rng: expr.Range()}
		if len(tr) >= 2 {
			if a, ok := tr[1].(hcl.TraverseAttr); ok {
				t.name = a.Name
			}
		}
		for _, step := range tr[2:] {
			if a, ok := step.(hcl.TraverseAttr); ok {
				t.lastAttr = a.Name
			}
		}
		out = append(out, t)
	}
	return out
}

// checkSemanticRefs verifies that reference-typed attributes reference the
// right kind of resource — the paper's "this string is specifically a
// network interface" typing.
func (v *validator) checkSemanticRefs(inst *config.Instance) {
	rs, ok := schema.LookupResource(inst.Type)
	if !ok {
		return
	}
	for name, expr := range inst.Attrs {
		a := rs.Attr(name)
		if a == nil || a.Semantic.Kind != schema.SemResourceRef {
			continue
		}
		for _, target := range refTargetsOf(expr) {
			if !a.Semantic.Accepts(target.typ) {
				v.add(Finding{
					RuleID: "semantic/ref-type", Severity: hcl.DiagError,
					Addr: inst.Addr, Attr: name, Range: inst.AttrRange[name],
					Summary: fmt.Sprintf("attribute %q expects a reference to %s, but references a %s",
						name, strings.Join(a.Semantic.RefTypes, " or "), target.typ),
					Detail: "resource IDs are semantically typed; passing the ID of a different resource type would fail at deploy time",
				})
				continue
			}
			if target.lastAttr != "" && target.lastAttr != "id" {
				v.add(Finding{
					RuleID: "semantic/ref-attr", Severity: hcl.DiagWarning,
					Addr: inst.Addr, Attr: name, Range: inst.AttrRange[name],
					Summary: fmt.Sprintf("attribute %q expects a resource ID but references %s.%s.%s",
						name, target.typ, target.name, target.lastAttr),
				})
			}
		}
	}
}

// checkValueSemantics validates CIDR/IP/region-valued attributes statically.
func (v *validator) checkValueSemantics(inst *config.Instance) {
	rs, ok := schema.LookupResource(inst.Type)
	if !ok {
		return
	}
	prov, _ := schema.ProviderForType(inst.Type)
	statics := v.static[inst.Addr]
	for name := range inst.Attrs {
		a := rs.Attr(name)
		if a == nil {
			continue
		}
		val := statics[name]
		if !val.IsKnown() || val.IsNull() {
			continue
		}
		rng := inst.AttrRange[name]
		switch a.Semantic.Kind {
		case schema.SemCIDR:
			for _, s := range stringsOf(val) {
				if _, err := netip.ParsePrefix(s); err != nil {
					v.add(Finding{
						RuleID: "semantic/cidr", Severity: hcl.DiagError,
						Addr: inst.Addr, Attr: name, Range: rng,
						Summary: fmt.Sprintf("%q is not a valid CIDR block", s),
					})
				}
			}
		case schema.SemIPAddress:
			for _, s := range stringsOf(val) {
				if _, err := netip.ParseAddr(s); err != nil {
					v.add(Finding{
						RuleID: "semantic/ip", Severity: hcl.DiagError,
						Addr: inst.Addr, Attr: name, Range: rng,
						Summary: fmt.Sprintf("%q is not a valid IP address", s),
					})
				}
			}
		case schema.SemRegion:
			if prov != nil && val.Kind() == eval.KindString && !containsStr(prov.Regions, val.AsString()) {
				v.add(Finding{
					RuleID: "semantic/region", Severity: hcl.DiagError,
					Addr: inst.Addr, Attr: name, Range: rng,
					Summary: fmt.Sprintf("%q is not a region of provider %q", val.AsString(), prov.Name),
					Detail:  "available: " + strings.Join(prov.Regions, ", "),
				})
			}
		}
	}
}

// --- knowledge-base rules ---------------------------------------------------

// resolveRefInstances maps a reference attribute of an instance to the
// configuration instances it refers to.
func (v *validator) resolveRefInstances(inst *config.Instance, attr string) []*config.Instance {
	expr, ok := inst.Attrs[attr]
	if !ok {
		return nil
	}
	var out []*config.Instance
	for _, target := range refTargetsOf(expr) {
		if target.name == "" {
			continue
		}
		addr := target.typ + "." + target.name
		if inst.ModulePath != "" {
			addr = "module." + inst.ModulePath + "." + addr
		}
		out = append(out, v.ex.InstancesOf(addr)...)
	}
	return out
}

func (v *validator) checkRules(inst *config.Instance) {
	for _, rule := range v.kb.RulesFor(inst.Type) {
		switch rule.Kind {
		case schema.RuleSameRegion:
			v.checkSameRegion(inst, rule)
		case schema.RuleAttrRequiresValue:
			v.checkCoRequirement(inst, rule)
		case schema.RuleNoCIDROverlapWhenPeered:
			v.checkPeeringOverlap(inst, rule)
		case schema.RuleCIDRWithinParent:
			v.checkCIDRWithinParent(inst, rule)
		}
	}
}

func (v *validator) checkSameRegion(inst *config.Instance, rule *schema.Rule) {
	if inst.Region == "" {
		return // not statically known
	}
	for _, ref := range v.resolveRefInstances(inst, rule.RefAttr) {
		if ref.Region == "" || ref.Region == inst.Region {
			continue
		}
		v.add(Finding{
			RuleID: rule.ID, Severity: hcl.DiagError,
			Addr: inst.Addr, Attr: rule.RefAttr, Range: inst.AttrRange[rule.RefAttr],
			Summary: fmt.Sprintf("%s is in %q but referenced %s %s is in %q; %s",
				inst.Addr, inst.Region, ref.Type, ref.Addr, ref.Region, rule.Description),
			Detail: "at deploy time the cloud would report the referenced resource as \"not found\", hiding the real cause",
		})
	}
}

func (v *validator) checkCoRequirement(inst *config.Instance, rule *schema.Rule) {
	statics := v.static[inst.Addr]
	val, set := statics[rule.Attr]
	if !set || val.IsNull() {
		return
	}
	if _, configured := inst.Attrs[rule.Attr]; !configured {
		return // only a default; nothing the user wrote
	}
	actual, ok := statics[rule.RequiresAttr]
	if !ok {
		actual = eval.Null
	}
	if !actual.IsKnown() {
		return
	}
	if !actual.Equal(rule.RequiresValue) {
		v.add(Finding{
			RuleID: rule.ID, Severity: hcl.DiagError,
			Addr: inst.Addr, Attr: rule.Attr, Range: inst.AttrRange[rule.Attr],
			Summary: fmt.Sprintf("attribute %q may only be set when %q is %s (currently %s)",
				rule.Attr, rule.RequiresAttr, rule.RequiresValue, actual),
			Detail: rule.Description,
		})
	}
}

func (v *validator) checkPeeringOverlap(inst *config.Instance, rule *schema.Rule) {
	as := v.resolveRefInstances(inst, rule.PeerAttrA)
	bs := v.resolveRefInstances(inst, rule.PeerAttrB)
	for _, a := range as {
		for _, b := range bs {
			if a.Addr == b.Addr {
				continue
			}
			for _, ca := range stringsOf(v.static[a.Addr][rule.CIDRAttr]) {
				for _, cb := range stringsOf(v.static[b.Addr][rule.CIDRAttr]) {
					over, err := eval.PrefixesOverlap(ca, cb)
					if err != nil || !over {
						continue
					}
					v.add(Finding{
						RuleID: rule.ID, Severity: hcl.DiagError,
						Addr: inst.Addr, Range: inst.DeclRange,
						Summary: fmt.Sprintf("peered networks %s (%s) and %s (%s) have overlapping address spaces",
							a.Addr, ca, b.Addr, cb),
						Detail: rule.Description,
					})
				}
			}
		}
	}
}

func (v *validator) checkCIDRWithinParent(inst *config.Instance, rule *schema.Rule) {
	child := v.static[inst.Addr][rule.Attr]
	if !child.IsKnown() || child.Kind() != eval.KindString {
		return
	}
	for _, parent := range v.resolveRefInstances(inst, rule.RefAttr) {
		parentCIDRs := stringsOf(v.static[parent.Addr][rule.CIDRAttr])
		if len(parentCIDRs) == 0 {
			continue
		}
		contained := false
		for _, pc := range parentCIDRs {
			if over, err := eval.PrefixesOverlap(pc, child.AsString()); err == nil && over {
				contained = true
				break
			}
		}
		if !contained {
			v.add(Finding{
				RuleID: rule.ID, Severity: hcl.DiagError,
				Addr: inst.Addr, Attr: rule.Attr, Range: inst.AttrRange[rule.Attr],
				Summary: fmt.Sprintf("%q is outside the parent network's address space %v",
					child.AsString(), parentCIDRs),
				Detail: rule.Description,
			})
		}
	}
}

// stringsOf flattens a string or list-of-strings value into known strings.
func stringsOf(v eval.Value) []string {
	switch v.Kind() {
	case eval.KindString:
		return []string{v.AsString()}
	case eval.KindList:
		var out []string
		for _, e := range v.AsList() {
			if e.Kind() == eval.KindString {
				out = append(out, e.AsString())
			}
		}
		return out
	default:
		return nil
	}
}
