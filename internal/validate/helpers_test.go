package validate

import (
	"testing"

	"cloudless/internal/schema"
)

// Aliases keeping the custom-rule test readable.
type schemaRule = schema.Rule

const ruleAttrRequiresValue = schema.RuleAttrRequiresValue

// cloneDefaultKB copies the built-in knowledge base so tests can extend it
// without mutating global state.
func cloneDefaultKB(t *testing.T) *schema.KnowledgeBase {
	t.Helper()
	kb := schema.NewKnowledgeBase()
	for _, r := range schema.DefaultKB().All() {
		cp := *r
		if err := kb.Add(&cp); err != nil {
			t.Fatal(err)
		}
	}
	return kb
}
