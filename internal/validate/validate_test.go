package validate

import (
	"strings"
	"testing"

	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/hcl"
)

func validateSrc(t *testing.T, src string) *Result {
	t.Helper()
	m, diags := config.Load(map[string]string{"main.ccl": src})
	if diags.HasErrors() {
		t.Fatalf("load: %s", diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatalf("expand: %s", diags.Error())
	}
	return Validate(ex, nil)
}

func hasFinding(r *Result, ruleID string) bool {
	for _, f := range r.Findings {
		if f.RuleID == ruleID {
			return true
		}
	}
	return false
}

func findingsByRule(r *Result, ruleID string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.RuleID == ruleID {
			out = append(out, f)
		}
	}
	return out
}

const azureBase = `
resource "azure_resource_group" "rg" {
  name     = "rg"
  location = "eastus"
}

resource "azure_virtual_network" "vnet" {
  name           = "vnet"
  location       = "eastus"
  resource_group = azure_resource_group.rg.id
  address_space  = ["10.0.0.0/16"]
}

resource "azure_subnet" "subnet" {
  virtual_network_id = azure_virtual_network.vnet.id
  address_prefix     = "10.0.1.0/24"
  location           = "eastus"
}

resource "azure_network_interface" "nic" {
  name      = "nic"
  location  = "eastus"
  subnet_id = azure_subnet.subnet.id
}
`

func TestValidateCleanConfig(t *testing.T) {
	r := validateSrc(t, azureBase+`
resource "azure_virtual_machine" "vm" {
  name     = "vm"
  location = "eastus"
  nic_ids  = [azure_network_interface.nic.id]
}
`)
	if r.HasErrors() {
		t.Fatalf("clean config produced errors: %+v", r.Errors())
	}
}

// TestVMNICRegionMismatch is the paper's first §3.2 example: a VM and its
// NIC in different regions must be rejected at compile time.
func TestVMNICRegionMismatch(t *testing.T) {
	r := validateSrc(t, azureBase+`
resource "azure_virtual_machine" "vm" {
  name     = "vm"
  location = "westus"
  nic_ids  = [azure_network_interface.nic.id]
}
`)
	fs := findingsByRule(r, "azure/vm-nic-same-region")
	if len(fs) != 1 {
		t.Fatalf("findings = %+v", r.Findings)
	}
	f := fs[0]
	if f.Severity != hcl.DiagError || f.Addr != "azure_virtual_machine.vm" {
		t.Errorf("finding = %+v", f)
	}
	// The finding points at the nic_ids attribute's source line.
	if f.Range.Start.Line == 0 {
		t.Error("finding has no source position")
	}
}

// TestPasswordCoRequirement is the paper's second §3.2 example.
func TestPasswordCoRequirement(t *testing.T) {
	r := validateSrc(t, azureBase+`
resource "azure_virtual_machine" "vm" {
  name           = "vm"
  location       = "eastus"
  nic_ids        = [azure_network_interface.nic.id]
  admin_password = "hunter2"
}
`)
	if !hasFinding(r, "azure/vm-password-requires-enable") {
		t.Fatalf("co-requirement not caught: %+v", r.Findings)
	}
	// Setting disable_password = false fixes it.
	r = validateSrc(t, azureBase+`
resource "azure_virtual_machine" "vm" {
  name             = "vm"
  location         = "eastus"
  nic_ids          = [azure_network_interface.nic.id]
  admin_password   = "hunter2"
  disable_password = false
}
`)
	if hasFinding(r, "azure/vm-password-requires-enable") {
		t.Fatal("false positive after fix")
	}
}

// TestPeeringOverlap is the paper's third §3.2 example.
func TestPeeringOverlap(t *testing.T) {
	r := validateSrc(t, `
resource "azure_resource_group" "rg" {
  name     = "rg"
  location = "eastus"
}
resource "azure_virtual_network" "a" {
  name           = "a"
  resource_group = azure_resource_group.rg.id
  address_space  = ["10.0.0.0/16"]
}
resource "azure_virtual_network" "b" {
  name           = "b"
  resource_group = azure_resource_group.rg.id
  address_space  = ["10.0.128.0/17"]
}
resource "azure_vnet_peering" "p" {
  vnet_a_id = azure_virtual_network.a.id
  vnet_b_id = azure_virtual_network.b.id
}
`)
	if !hasFinding(r, "azure/peered-vnets-no-cidr-overlap") {
		t.Fatalf("overlap not caught: %+v", r.Findings)
	}
}

func TestSemanticRefTypeMisuse(t *testing.T) {
	// Passing a VPC id where a subnet id is expected: exactly the §3.2
	// "this reference could be easily misused" scenario.
	r := validateSrc(t, `
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
resource "aws_network_interface" "nic" {
  subnet_id = aws_vpc.v.id
}
`)
	fs := findingsByRule(r, "semantic/ref-type")
	if len(fs) != 1 || !strings.Contains(fs[0].Summary, "aws_subnet") {
		t.Fatalf("findings = %+v", r.Findings)
	}
}

func TestSemanticRefAttrWarning(t *testing.T) {
	r := validateSrc(t, `
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.v.arn
  cidr_block = "10.0.1.0/24"
}
`)
	fs := findingsByRule(r, "semantic/ref-attr")
	if len(fs) != 1 || fs[0].Severity != hcl.DiagWarning {
		t.Fatalf("findings = %+v", r.Findings)
	}
}

func TestSchemaChecks(t *testing.T) {
	r := validateSrc(t, `
resource "aws_vpc" "v" {
  enable_dns = "not-a-bool-at-all"
  bogus_attr = 1
  id         = "vpc-forged"
}
`)
	for _, want := range []string{
		"schema/required",          // cidr_block missing
		"schema/unknown-attribute", // bogus_attr
		"schema/computed-readonly", // id
		"schema/type",              // enable_dns
	} {
		if !hasFinding(r, want) {
			t.Errorf("missing finding %s in %+v", want, r.Findings)
		}
	}
}

func TestOneOfCheck(t *testing.T) {
	r := validateSrc(t, azureBase+`
resource "azure_virtual_machine" "vm" {
  name     = "vm"
  location = "eastus"
  nic_ids  = [azure_network_interface.nic.id]
  size     = "Standard_Imaginary"
}
`)
	if !hasFinding(r, "schema/one-of") {
		t.Fatalf("one-of not caught: %+v", r.Findings)
	}
}

func TestCIDRSyntaxCheck(t *testing.T) {
	r := validateSrc(t, `
resource "aws_vpc" "v" { cidr_block = "10.0.0.0" }
`)
	if !hasFinding(r, "semantic/cidr") {
		t.Fatalf("bad CIDR not caught: %+v", r.Findings)
	}
}

func TestRegionValueCheck(t *testing.T) {
	r := validateSrc(t, `
resource "aws_vpc" "v" {
  cidr_block = "10.0.0.0/16"
  region     = "mars-north-1"
}
`)
	if !hasFinding(r, "semantic/region") {
		t.Fatalf("bad region not caught: %+v", r.Findings)
	}
}

func TestSubnetOutsideVPCCIDR(t *testing.T) {
	r := validateSrc(t, `
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.v.id
  cidr_block = "192.168.1.0/24"
}
`)
	if !hasFinding(r, "aws/subnet-cidr-within-vpc") {
		t.Fatalf("containment not caught: %+v", r.Findings)
	}
}

func TestUnknownValuesAreNotFlagged(t *testing.T) {
	// CIDRs computed from another resource are unknown at validation time
	// and must not produce false positives.
	r := validateSrc(t, `
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.v.id
  cidr_block = cidrsubnet(aws_vpc.v.cidr_block, 8, 1)
}
`)
	if r.HasErrors() {
		t.Fatalf("false positives on unknown values: %+v", r.Errors())
	}
}

func TestValidateCountInstances(t *testing.T) {
	// Rule checks apply per instance; two of three VMs are misplaced.
	r := validateSrc(t, azureBase+`
resource "azure_virtual_machine" "vm" {
  count    = 3
  name     = "vm-${count.index}"
  location = count.index > 0 ? "westus" : "eastus"
  nic_ids  = [azure_network_interface.nic.id]
}
`)
	fs := findingsByRule(r, "azure/vm-nic-same-region")
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(fs), fs)
	}
}

func TestFindingsSortedDeterministically(t *testing.T) {
	src := azureBase + `
resource "azure_virtual_machine" "vm" {
  name           = "vm"
  location       = "westus"
  nic_ids        = [azure_network_interface.nic.id]
  admin_password = "x"
}
`
	a := validateSrc(t, src)
	b := validateSrc(t, src)
	if len(a.Findings) != len(b.Findings) {
		t.Fatal("nondeterministic count")
	}
	for i := range a.Findings {
		if a.Findings[i].RuleID != b.Findings[i].RuleID {
			t.Fatal("nondeterministic order")
		}
	}
}

func TestDiagnosticsConversion(t *testing.T) {
	r := validateSrc(t, `resource "aws_vpc" "v" {}`)
	diags := r.Diagnostics()
	if !diags.HasErrors() {
		t.Fatal("expected error diagnostics")
	}
	if !strings.Contains(diags.Error(), "schema/required") {
		t.Errorf("diag = %s", diags.Error())
	}
}

func TestCustomKnowledgeBaseRule(t *testing.T) {
	// The knowledge base is extensible at runtime: add a rule constraining
	// bucket versioning and watch it fire.
	kb := cloneDefaultKB(t)
	_ = kb.Add(&schemaRule{
		ID:            "corp/buckets-must-version",
		Description:   "corporate policy: buckets must enable versioning",
		Kind:          ruleAttrRequiresValue,
		ResourceType:  "aws_storage_bucket",
		Attr:          "name",
		RequiresAttr:  "versioning",
		RequiresValue: eval.True,
	})
	m, _ := config.Load(map[string]string{"main.ccl": `
resource "aws_storage_bucket" "b" { name = "data" }
`})
	ex, _ := config.Expand(m, nil, nil)
	r := Validate(ex, kb)
	if !hasFinding(r, "corp/buckets-must-version") {
		t.Fatalf("custom rule did not fire: %+v", r.Findings)
	}
}
