package eval

import (
	"fmt"
	"math"
	"sort"

	"cloudless/internal/hcl"
)

// Context supplies variable bindings and functions to the evaluator.
// Contexts nest: comprehension variables shadow the parent scope.
type Context struct {
	Variables map[string]Value
	Functions map[string]Function
	parent    *Context
}

// NewContext builds a root context with the standard function library.
func NewContext() *Context {
	return &Context{
		Variables: map[string]Value{},
		Functions: Stdlib(),
	}
}

// Child creates a nested scope.
func (c *Context) Child() *Context {
	return &Context{Variables: map[string]Value{}, parent: c}
}

// Lookup resolves a root variable name through the scope chain.
func (c *Context) Lookup(name string) (Value, bool) {
	for s := c; s != nil; s = s.parent {
		if v, ok := s.Variables[name]; ok {
			return v, true
		}
	}
	return Value{}, false
}

// Function resolves a function name through the scope chain.
func (c *Context) Function(name string) (Function, bool) {
	for s := c; s != nil; s = s.parent {
		if f, ok := s.Functions[name]; ok {
			return f, true
		}
	}
	return Function{}, false
}

// Evaluate computes the value of an expression within a context.
func Evaluate(expr hcl.Expression, ctx *Context) (Value, hcl.Diagnostics) {
	switch e := expr.(type) {
	case *hcl.LiteralExpr:
		return FromGo(e.Val), nil

	case *hcl.TemplateExpr:
		return evalTemplate(e, ctx)

	case *hcl.ScopeTraversalExpr:
		return evalTraversal(e.Traversal, e.Rng, ctx)

	case *hcl.RelativeTraversalExpr:
		base, diags := Evaluate(e.Source, ctx)
		if diags.HasErrors() {
			return Value{}, diags
		}
		v, err := applySteps(base, e.Traversal)
		if err != nil {
			return Value{}, diags.Append(hcl.Errorf(e.Rng, "%s", err))
		}
		return v, diags

	case *hcl.IndexExpr:
		coll, diags := Evaluate(e.Collection, ctx)
		key, kd := Evaluate(e.Key, ctx)
		diags = diags.Extend(kd)
		if diags.HasErrors() {
			return Value{}, diags
		}
		v, err := coll.Index(key)
		if err != nil {
			return Value{}, diags.Append(hcl.Errorf(e.Rng, "%s", err))
		}
		return v, diags

	case *hcl.SplatExpr:
		return evalSplat(e, ctx)

	case *hcl.FunctionCallExpr:
		return evalCall(e, ctx)

	case *hcl.BinaryExpr:
		return evalBinary(e, ctx)

	case *hcl.UnaryExpr:
		return evalUnary(e, ctx)

	case *hcl.ConditionalExpr:
		return evalConditional(e, ctx)

	case *hcl.TupleExpr:
		items := make([]Value, 0, len(e.Items))
		var diags hcl.Diagnostics
		for _, it := range e.Items {
			v, d := Evaluate(it, ctx)
			diags = diags.Extend(d)
			items = append(items, v)
		}
		if diags.HasErrors() {
			return Value{}, diags
		}
		return ListOf(items), diags

	case *hcl.ObjectExpr:
		obj := make(map[string]Value, len(e.Items))
		var diags hcl.Diagnostics
		for _, it := range e.Items {
			kv, d := Evaluate(it.Key, ctx)
			diags = diags.Extend(d)
			vv, d := Evaluate(it.Value, ctx)
			diags = diags.Extend(d)
			if diags.HasErrors() {
				continue
			}
			ks, err := ToStringValue(kv)
			if err != nil {
				diags = diags.Append(hcl.Errorf(it.Key.Range(), "invalid object key: %s", err))
				continue
			}
			if ks.IsUnknown() {
				diags = diags.Append(hcl.Errorf(it.Key.Range(), "object key cannot be derived from a value known only after apply"))
				continue
			}
			obj[ks.AsString()] = vv
		}
		if diags.HasErrors() {
			return Value{}, diags
		}
		return Object(obj), diags

	case *hcl.ForExpr:
		return evalFor(e, ctx)

	default:
		return Value{}, hcl.Diagnostics{hcl.Errorf(expr.Range(), "unsupported expression type %T", expr)}
	}
}

func evalTemplate(e *hcl.TemplateExpr, ctx *Context) (Value, hcl.Diagnostics) {
	var diags hcl.Diagnostics
	out := ""
	unknown := false
	for _, p := range e.Parts {
		v, d := Evaluate(p, ctx)
		diags = diags.Extend(d)
		if d.HasErrors() {
			continue
		}
		if v.IsUnknown() {
			unknown = true
			continue
		}
		s, err := ToStringValue(v)
		if err != nil {
			diags = diags.Append(hcl.Errorf(p.Range(), "cannot interpolate: %s", err))
			continue
		}
		out += s.AsString()
	}
	if diags.HasErrors() {
		return Value{}, diags
	}
	if unknown {
		return Unknown, diags
	}
	return String(out), diags
}

func evalTraversal(tr hcl.Traversal, rng hcl.Range, ctx *Context) (Value, hcl.Diagnostics) {
	root := tr.RootName()
	base, ok := ctx.Lookup(root)
	if !ok {
		return Value{}, hcl.Diagnostics{hcl.Errorf(rng, "reference to undeclared name %q", root)}
	}
	v, err := applySteps(base, tr[1:])
	if err != nil {
		return Value{}, hcl.Diagnostics{hcl.Errorf(rng, "invalid reference %s: %s", tr, err)}
	}
	return v, nil
}

func applySteps(v Value, steps []hcl.Traverser) (Value, error) {
	for _, step := range steps {
		var err error
		switch s := step.(type) {
		case hcl.TraverseAttr:
			// Attribute syntax also reaches object members and, as a
			// convenience shared with HCL, list indices via .N handled in
			// the parser. For lists a trailing attr maps over elements only
			// via splat, not here.
			v, err = v.GetAttr(s.Name)
		case hcl.TraverseIndex:
			switch k := s.Key.(type) {
			case string:
				v, err = v.Index(String(k))
			case int:
				v, err = v.Index(Int(k))
			default:
				err = fmt.Errorf("unsupported index key %v", s.Key)
			}
		default:
			err = fmt.Errorf("unsupported traversal step")
		}
		if err != nil {
			return Value{}, err
		}
	}
	return v, nil
}

func evalSplat(e *hcl.SplatExpr, ctx *Context) (Value, hcl.Diagnostics) {
	src, diags := Evaluate(e.Source, ctx)
	if diags.HasErrors() {
		return Value{}, diags
	}
	if src.IsUnknown() {
		return Unknown, diags
	}
	var elems []Value
	switch src.Kind() {
	case KindList:
		elems = src.AsList()
	case KindNull:
		return List(), diags
	default:
		// A non-list value splats as a single-element list, matching HCL.
		elems = []Value{src}
	}
	out := make([]Value, 0, len(elems))
	for _, el := range elems {
		v, err := applySteps(el, e.Each)
		if err != nil {
			return Value{}, diags.Append(hcl.Errorf(e.Rng, "in splat expression: %s", err))
		}
		out = append(out, v)
	}
	return ListOf(out), diags
}

func evalCall(e *hcl.FunctionCallExpr, ctx *Context) (Value, hcl.Diagnostics) {
	fn, ok := ctx.Function(e.Name)
	if !ok {
		return Value{}, hcl.Diagnostics{hcl.Errorf(e.NameRange, "call to unknown function %q", e.Name)}
	}
	var diags hcl.Diagnostics
	args := make([]Value, 0, len(e.Args))
	for i, a := range e.Args {
		v, d := Evaluate(a, ctx)
		diags = diags.Extend(d)
		if d.HasErrors() {
			continue
		}
		if e.ExpandFinal && i == len(e.Args)-1 {
			if v.IsUnknown() {
				return Unknown, diags
			}
			if v.Kind() != KindList {
				diags = diags.Append(hcl.Errorf(a.Range(), `"..." requires a list, got %s`, v.Kind()))
				continue
			}
			args = append(args, v.AsList()...)
			continue
		}
		args = append(args, v)
	}
	if diags.HasErrors() {
		return Value{}, diags
	}
	out, err := fn.Call(args)
	if err != nil {
		return Value{}, diags.Append(hcl.Errorf(e.Rng, "in function %q: %s", e.Name, err))
	}
	return out, diags
}

func evalUnary(e *hcl.UnaryExpr, ctx *Context) (Value, hcl.Diagnostics) {
	v, diags := Evaluate(e.Operand, ctx)
	if diags.HasErrors() {
		return Value{}, diags
	}
	if v.IsUnknown() {
		return Unknown, diags
	}
	switch e.Op {
	case hcl.OpNegate:
		n, err := ToNumberValue(v)
		if err != nil {
			return Value{}, diags.Append(hcl.Errorf(e.Rng, "unary -: %s", err))
		}
		return Number(-n.AsNumber()), diags
	case hcl.OpNot:
		b, err := ToBoolValue(v)
		if err != nil {
			return Value{}, diags.Append(hcl.Errorf(e.Rng, "unary !: %s", err))
		}
		return Bool(!b.AsBool()), diags
	}
	return Value{}, diags.Append(hcl.Errorf(e.Rng, "unsupported unary operator"))
}

func evalConditional(e *hcl.ConditionalExpr, ctx *Context) (Value, hcl.Diagnostics) {
	cond, diags := Evaluate(e.Cond, ctx)
	if diags.HasErrors() {
		return Value{}, diags
	}
	if cond.IsUnknown() {
		// Cannot choose a branch yet; the overall result is unknown.
		return Unknown, diags
	}
	b, err := ToBoolValue(cond)
	if err != nil {
		return Value{}, diags.Append(hcl.Errorf(e.Cond.Range(), "condition: %s", err))
	}
	if b.AsBool() {
		return Evaluate(e.True, ctx)
	}
	return Evaluate(e.False, ctx)
}

func evalBinary(e *hcl.BinaryExpr, ctx *Context) (Value, hcl.Diagnostics) {
	lhs, diags := Evaluate(e.LHS, ctx)
	rhs, rd := Evaluate(e.RHS, ctx)
	diags = diags.Extend(rd)
	if diags.HasErrors() {
		return Value{}, diags
	}

	// Short-circuit-adjacent semantics for known boolean operands even when
	// the other side is unknown.
	if e.Op == hcl.OpAnd || e.Op == hcl.OpOr {
		return evalLogical(e, lhs, rhs, diags)
	}
	if e.Op == hcl.OpEq {
		if lhs.IsUnknown() || rhs.IsUnknown() {
			return Unknown, diags
		}
		return Bool(lhs.Equal(rhs)), diags
	}
	if e.Op == hcl.OpNotEq {
		if lhs.IsUnknown() || rhs.IsUnknown() {
			return Unknown, diags
		}
		return Bool(!lhs.Equal(rhs)), diags
	}
	if lhs.IsUnknown() || rhs.IsUnknown() {
		return Unknown, diags
	}

	// String concatenation via "+" when either operand is a string.
	if e.Op == hcl.OpAdd && (lhs.Kind() == KindString || rhs.Kind() == KindString) {
		ls, el := ToStringValue(lhs)
		rs, er := ToStringValue(rhs)
		if el == nil && er == nil {
			return String(ls.AsString() + rs.AsString()), diags
		}
	}

	ln, err := ToNumberValue(lhs)
	if err != nil {
		return Value{}, diags.Append(hcl.Errorf(e.LHS.Range(), "left operand of %q: %s", e.Op, err))
	}
	rn, err := ToNumberValue(rhs)
	if err != nil {
		return Value{}, diags.Append(hcl.Errorf(e.RHS.Range(), "right operand of %q: %s", e.Op, err))
	}
	a, b := ln.AsNumber(), rn.AsNumber()
	switch e.Op {
	case hcl.OpAdd:
		return Number(a + b), diags
	case hcl.OpSub:
		return Number(a - b), diags
	case hcl.OpMul:
		return Number(a * b), diags
	case hcl.OpDiv:
		if b == 0 {
			return Value{}, diags.Append(hcl.Errorf(e.Rng, "division by zero"))
		}
		return Number(a / b), diags
	case hcl.OpMod:
		if b == 0 {
			return Value{}, diags.Append(hcl.Errorf(e.Rng, "division by zero"))
		}
		return Number(math.Mod(a, b)), diags
	case hcl.OpLT:
		return Bool(a < b), diags
	case hcl.OpGT:
		return Bool(a > b), diags
	case hcl.OpLTE:
		return Bool(a <= b), diags
	case hcl.OpGTE:
		return Bool(a >= b), diags
	}
	return Value{}, diags.Append(hcl.Errorf(e.Rng, "unsupported binary operator"))
}

func evalLogical(e *hcl.BinaryExpr, lhs, rhs Value, diags hcl.Diagnostics) (Value, hcl.Diagnostics) {
	toBool := func(v Value, rng hcl.Range) (Value, bool) {
		if v.IsUnknown() {
			return Unknown, true
		}
		b, err := ToBoolValue(v)
		if err != nil {
			diags = diags.Append(hcl.Errorf(rng, "operand of %q: %s", e.Op, err))
			return Value{}, false
		}
		return b, true
	}
	lb, ok := toBool(lhs, e.LHS.Range())
	if !ok {
		return Value{}, diags
	}
	rb, ok := toBool(rhs, e.RHS.Range())
	if !ok {
		return Value{}, diags
	}
	if e.Op == hcl.OpAnd {
		// false && anything == false, even unknown.
		if (!lb.IsUnknown() && !lb.AsBool()) || (!rb.IsUnknown() && !rb.AsBool()) {
			return False, diags
		}
		if lb.IsUnknown() || rb.IsUnknown() {
			return Unknown, diags
		}
		return Bool(lb.AsBool() && rb.AsBool()), diags
	}
	// OpOr: true || anything == true, even unknown.
	if (!lb.IsUnknown() && lb.AsBool()) || (!rb.IsUnknown() && rb.AsBool()) {
		return True, diags
	}
	if lb.IsUnknown() || rb.IsUnknown() {
		return Unknown, diags
	}
	return Bool(lb.AsBool() || rb.AsBool()), diags
}

func evalFor(e *hcl.ForExpr, ctx *Context) (Value, hcl.Diagnostics) {
	coll, diags := Evaluate(e.Coll, ctx)
	if diags.HasErrors() {
		return Value{}, diags
	}
	if coll.IsUnknown() {
		return Unknown, diags
	}

	type kv struct {
		k Value
		v Value
	}
	var items []kv
	switch coll.Kind() {
	case KindList:
		for i, el := range coll.AsList() {
			items = append(items, kv{Int(i), el})
		}
	case KindObject:
		obj := coll.AsObject()
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			items = append(items, kv{String(k), obj[k]})
		}
	default:
		return Value{}, diags.Append(hcl.Errorf(e.Coll.Range(),
			"cannot iterate over a %s value", coll.Kind()))
	}

	child := ctx.Child()
	var listOut []Value
	objOut := map[string]Value{}
	for _, it := range items {
		if e.KeyVar != "" {
			child.Variables[e.KeyVar] = it.k
			child.Variables[e.ValVar] = it.v
		} else {
			child.Variables[e.ValVar] = it.v
		}
		if e.CondExpr != nil {
			cv, d := Evaluate(e.CondExpr, child)
			diags = diags.Extend(d)
			if d.HasErrors() {
				return Value{}, diags
			}
			keep, err := Truthiness(cv)
			if err != nil {
				return Value{}, diags.Append(hcl.Errorf(e.CondExpr.Range(), "comprehension filter: %s", err))
			}
			if !keep {
				continue
			}
		}
		vv, d := Evaluate(e.ValExpr, child)
		diags = diags.Extend(d)
		if d.HasErrors() {
			return Value{}, diags
		}
		if e.KeyExpr == nil {
			listOut = append(listOut, vv)
			continue
		}
		kvV, d := Evaluate(e.KeyExpr, child)
		diags = diags.Extend(d)
		if d.HasErrors() {
			return Value{}, diags
		}
		ks, err := ToStringValue(kvV)
		if err != nil {
			return Value{}, diags.Append(hcl.Errorf(e.KeyExpr.Range(), "comprehension key: %s", err))
		}
		if ks.IsUnknown() {
			return Unknown, diags
		}
		objOut[ks.AsString()] = vv
	}
	if e.KeyExpr == nil {
		return ListOf(listOut), diags
	}
	return Object(objOut), diags
}
