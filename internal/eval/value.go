// Package eval implements the dynamic value system and expression evaluator
// for CCL configurations.
//
// Values are immutable. A dedicated "unknown" value models attributes whose
// concrete value only materializes at apply time (e.g. a cloud-assigned
// resource ID); unknowns propagate through every operation, which is what
// lets the planner reason about not-yet-created resources, exactly as
// Terraform's "(known after apply)" does.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types of CCL values.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindNumber
	KindString
	KindList
	KindObject
	KindUnknown
)

var kindNames = map[Kind]string{
	KindNull:    "null",
	KindBool:    "bool",
	KindNumber:  "number",
	KindString:  "string",
	KindList:    "list",
	KindObject:  "object",
	KindUnknown: "unknown",
}

// String returns the kind's name.
func (k Kind) String() string { return kindNames[k] }

// Value is an immutable CCL runtime value.
type Value struct {
	kind Kind
	b    bool
	num  float64
	str  string
	list []Value
	obj  map[string]Value
}

// Null is the null value.
var Null = Value{kind: KindNull}

// Unknown is the "known after apply" placeholder value.
var Unknown = Value{kind: KindUnknown}

// True and False are the boolean constants.
var (
	True  = Value{kind: KindBool, b: true}
	False = Value{kind: KindBool, b: false}
)

// Bool builds a boolean value.
func Bool(b bool) Value {
	if b {
		return True
	}
	return False
}

// Number builds a numeric value.
func Number(f float64) Value { return Value{kind: KindNumber, num: f} }

// Int builds a numeric value from an int.
func Int(i int) Value { return Number(float64(i)) }

// String builds a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// List builds a list value. The slice is copied.
func List(items ...Value) Value {
	cp := make([]Value, len(items))
	copy(cp, items)
	return Value{kind: KindList, list: cp}
}

// ListOf builds a list from an existing slice without re-wrapping each item.
func ListOf(items []Value) Value { return List(items...) }

// Object builds an object value. The map is copied.
func Object(attrs map[string]Value) Value {
	cp := make(map[string]Value, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	return Value{kind: KindObject, obj: cp}
}

// Strings builds a list of string values.
func Strings(ss ...string) Value {
	items := make([]Value, len(ss))
	for i, s := range ss {
		items[i] = String(s)
	}
	return Value{kind: KindList, list: items}
}

// Kind returns the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsUnknown reports whether the value is the unknown placeholder.
func (v Value) IsUnknown() bool { return v.kind == KindUnknown }

// IsKnown reports whether the value and, for collections, all of its
// elements are known.
func (v Value) IsKnown() bool {
	switch v.kind {
	case KindUnknown:
		return false
	case KindList:
		for _, e := range v.list {
			if !e.IsKnown() {
				return false
			}
		}
	case KindObject:
		for _, e := range v.obj {
			if !e.IsKnown() {
				return false
			}
		}
	}
	return true
}

// AsBool returns the boolean payload; it panics on other kinds.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("eval: AsBool on " + v.kind.String())
	}
	return v.b
}

// AsNumber returns the numeric payload; it panics on other kinds.
func (v Value) AsNumber() float64 {
	if v.kind != KindNumber {
		panic("eval: AsNumber on " + v.kind.String())
	}
	return v.num
}

// AsInt returns the numeric payload truncated to int.
func (v Value) AsInt() int { return int(v.AsNumber()) }

// AsString returns the string payload; it panics on other kinds.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("eval: AsString on " + v.kind.String())
	}
	return v.str
}

// AsList returns the element slice; callers must not mutate it.
func (v Value) AsList() []Value {
	if v.kind != KindList {
		panic("eval: AsList on " + v.kind.String())
	}
	return v.list
}

// AsObject returns the attribute map; callers must not mutate it.
func (v Value) AsObject() map[string]Value {
	if v.kind != KindObject {
		panic("eval: AsObject on " + v.kind.String())
	}
	return v.obj
}

// Length returns the number of elements of a list/object, or the length in
// bytes of a string.
func (v Value) Length() (int, error) {
	switch v.kind {
	case KindList:
		return len(v.list), nil
	case KindObject:
		return len(v.obj), nil
	case KindString:
		return len(v.str), nil
	default:
		return 0, fmt.Errorf("cannot take length of %s value", v.kind)
	}
}

// GetAttr fetches an object attribute. Unknown objects yield Unknown.
func (v Value) GetAttr(name string) (Value, error) {
	switch v.kind {
	case KindObject:
		if e, ok := v.obj[name]; ok {
			return e, nil
		}
		return Value{}, fmt.Errorf("object has no attribute %q", name)
	case KindUnknown:
		return Unknown, nil
	default:
		return Value{}, fmt.Errorf("cannot access attribute %q on %s value", name, v.kind)
	}
}

// Index fetches a list element or object member by key.
func (v Value) Index(key Value) (Value, error) {
	if v.kind == KindUnknown || key.kind == KindUnknown {
		return Unknown, nil
	}
	switch v.kind {
	case KindList:
		if key.kind != KindNumber {
			return Value{}, fmt.Errorf("list index must be a number, got %s", key.kind)
		}
		i := int(key.num)
		if i < 0 || i >= len(v.list) {
			return Value{}, fmt.Errorf("list index %d out of range (length %d)", i, len(v.list))
		}
		return v.list[i], nil
	case KindObject:
		if key.kind != KindString {
			return Value{}, fmt.Errorf("object key must be a string, got %s", key.kind)
		}
		e, ok := v.obj[key.str]
		if !ok {
			return Value{}, fmt.Errorf("object has no member %q", key.str)
		}
		return e, nil
	default:
		return Value{}, fmt.Errorf("cannot index a %s value", v.kind)
	}
}

// Equal reports deep equality. Unknown compares equal only to Unknown, which
// matches its use for diff suppression in the planner.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull, KindUnknown:
		return true
	case KindBool:
		return v.b == o.b
	case KindNumber:
		return v.num == o.num
	case KindString:
		return v.str == o.str
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	case KindObject:
		if len(v.obj) != len(o.obj) {
			return false
		}
		for k, e := range v.obj {
			oe, ok := o.obj[k]
			if !ok || !e.Equal(oe) {
				return false
			}
		}
		return true
	}
	return false
}

// GoString renders the value in an unambiguous debugging form.
func (v Value) GoString() string { return v.String() }

// String renders the value in a compact, human-readable form.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindUnknown:
		return "(known after apply)"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindNumber:
		if v.num == math.Trunc(v.num) && math.Abs(v.num) < 1e15 {
			return strconv.FormatInt(int64(v.num), 10)
		}
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.str)
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KindObject:
		keys := make([]string, 0, len(v.obj))
		for k := range v.obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + " = " + v.obj[k].String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	return "<invalid>"
}

// Hash returns a stable FNV-1a hash of the value, used by template-outlier
// detection and state fingerprinting.
func (v Value) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
	}
	mix(v.kind.String())
	switch v.kind {
	case KindBool:
		mix(strconv.FormatBool(v.b))
	case KindNumber:
		mix(strconv.FormatFloat(v.num, 'b', -1, 64))
	case KindString:
		mix(v.str)
	case KindList:
		for _, e := range v.list {
			mix(strconv.FormatUint(e.Hash(), 16))
		}
	case KindObject:
		keys := make([]string, 0, len(v.obj))
		for k := range v.obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			mix(k)
			mix(strconv.FormatUint(v.obj[k].Hash(), 16))
		}
	}
	return h
}

// --- Go interop -----------------------------------------------------------

// FromGo converts a native Go value (as produced by encoding/json or the
// hcl literal parser) into a Value.
func FromGo(v any) Value {
	switch t := v.(type) {
	case nil:
		return Null
	case bool:
		return Bool(t)
	case float64:
		return Number(t)
	case int:
		return Int(t)
	case int64:
		return Number(float64(t))
	case string:
		return String(t)
	case []any:
		items := make([]Value, len(t))
		for i, e := range t {
			items[i] = FromGo(e)
		}
		return Value{kind: KindList, list: items}
	case []string:
		return Strings(t...)
	case map[string]any:
		obj := make(map[string]Value, len(t))
		for k, e := range t {
			obj[k] = FromGo(e)
		}
		return Value{kind: KindObject, obj: obj}
	case Value:
		return t
	default:
		return String(fmt.Sprintf("%v", t))
	}
}

// ToGo converts a Value to a plain Go value suitable for encoding/json.
// Unknown becomes the sentinel string used in state files.
func ToGo(v Value) any {
	switch v.kind {
	case KindNull:
		return nil
	case KindUnknown:
		return UnknownSentinel
	case KindBool:
		return v.b
	case KindNumber:
		return v.num
	case KindString:
		return v.str
	case KindList:
		out := make([]any, len(v.list))
		for i, e := range v.list {
			out[i] = ToGo(e)
		}
		return out
	case KindObject:
		out := make(map[string]any, len(v.obj))
		for k, e := range v.obj {
			out[k] = ToGo(e)
		}
		return out
	}
	return nil
}

// UnknownSentinel is the JSON representation of an unknown value in
// serialized plans. It is deliberately implausible as real data.
const UnknownSentinel = "\u0000cloudless:unknown\u0000"

// FromGoWithUnknowns is FromGo but resurrects unknown sentinels.
func FromGoWithUnknowns(v any) Value {
	if s, ok := v.(string); ok && s == UnknownSentinel {
		return Unknown
	}
	switch t := v.(type) {
	case []any:
		items := make([]Value, len(t))
		for i, e := range t {
			items[i] = FromGoWithUnknowns(e)
		}
		return Value{kind: KindList, list: items}
	case map[string]any:
		obj := make(map[string]Value, len(t))
		for k, e := range t {
			obj[k] = FromGoWithUnknowns(e)
		}
		return Value{kind: KindObject, obj: obj}
	default:
		return FromGo(v)
	}
}
