package eval

import (
	"strings"
	"testing"

	"cloudless/internal/hcl"
)

func evalSrc(t *testing.T, src string, ctx *Context) Value {
	t.Helper()
	expr, diags := hcl.ParseExpression("test.ccl", src)
	if diags.HasErrors() {
		t.Fatalf("parse %q: %s", src, diags.Error())
	}
	v, diags := Evaluate(expr, ctx)
	if diags.HasErrors() {
		t.Fatalf("eval %q: %s", src, diags.Error())
	}
	return v
}

func evalErr(t *testing.T, src string, ctx *Context) hcl.Diagnostics {
	t.Helper()
	expr, diags := hcl.ParseExpression("test.ccl", src)
	if diags.HasErrors() {
		t.Fatalf("parse %q: %s", src, diags.Error())
	}
	_, diags = Evaluate(expr, ctx)
	if !diags.HasErrors() {
		t.Fatalf("eval %q: expected error", src)
	}
	return diags
}

func testCtx() *Context {
	ctx := NewContext()
	ctx.Variables["var"] = Object(map[string]Value{
		"name":   String("cloudless"),
		"count":  Int(3),
		"zones":  Strings("us-east-1a", "us-east-1b"),
		"m":      Object(map[string]Value{"a": Int(1), "b": Int(2)}),
		"secret": Unknown,
	})
	return ctx
}

func TestEvalArithmetic(t *testing.T) {
	ctx := testCtx()
	cases := []struct {
		src  string
		want Value
	}{
		{"1 + 2 * 3", Int(7)},
		{"(1 + 2) * 3", Int(9)},
		{"10 / 4", Number(2.5)},
		{"7 % 3", Int(1)},
		{"-var.count", Int(-3)},
		{"2 < 3", True},
		{"2 >= 3", False},
		{`"a" == "a"`, True},
		{`"a" != "b"`, True},
		{"true && false", False},
		{"true || false", True},
		{"!false", True},
	}
	for _, c := range cases {
		got := evalSrc(t, c.src, ctx)
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalDivisionByZero(t *testing.T) {
	d := evalErr(t, "1 / 0", testCtx())
	if !strings.Contains(d.Error(), "division by zero") {
		t.Errorf("diag = %s", d.Error())
	}
}

func TestEvalStringConcat(t *testing.T) {
	got := evalSrc(t, `"vm-" + var.name`, testCtx())
	if got.AsString() != "vm-cloudless" {
		t.Errorf("got %v", got)
	}
}

func TestEvalTemplate(t *testing.T) {
	got := evalSrc(t, `"name-${var.name}-${var.count + 1}"`, testCtx())
	if got.AsString() != "name-cloudless-4" {
		t.Errorf("got %v", got)
	}
}

func TestEvalTemplateUnknownPropagates(t *testing.T) {
	got := evalSrc(t, `"id-${var.secret}"`, testCtx())
	if !got.IsUnknown() {
		t.Errorf("template with unknown part must be unknown, got %v", got)
	}
}

func TestEvalTraversals(t *testing.T) {
	ctx := testCtx()
	if got := evalSrc(t, "var.zones[1]", ctx); got.AsString() != "us-east-1b" {
		t.Errorf("got %v", got)
	}
	if got := evalSrc(t, "var.zones.0", ctx); got.AsString() != "us-east-1a" {
		t.Errorf("got %v", got)
	}
	if got := evalSrc(t, `var.m["b"]`, ctx); got.AsInt() != 2 {
		t.Errorf("got %v", got)
	}
}

func TestEvalUndeclaredReference(t *testing.T) {
	d := evalErr(t, "nosuch.thing", testCtx())
	if !strings.Contains(d.Error(), "undeclared name") {
		t.Errorf("diag = %s", d.Error())
	}
}

func TestEvalDynamicIndex(t *testing.T) {
	ctx := testCtx()
	ctx.Variables["i"] = Int(1)
	if got := evalSrc(t, "var.zones[i]", ctx); got.AsString() != "us-east-1b" {
		t.Errorf("got %v", got)
	}
}

func TestEvalConditional(t *testing.T) {
	ctx := testCtx()
	if got := evalSrc(t, `var.count > 2 ? "many" : "few"`, ctx); got.AsString() != "many" {
		t.Errorf("got %v", got)
	}
	// The untaken branch must not be evaluated (it would error).
	if got := evalSrc(t, `true ? 1 : nosuch.ref`, ctx); got.AsInt() != 1 {
		t.Errorf("got %v", got)
	}
	// Unknown condition yields unknown.
	if got := evalSrc(t, `var.secret == "x" ? 1 : 2`, ctx); !got.IsUnknown() {
		t.Errorf("got %v", got)
	}
}

func TestEvalLogicalWithUnknown(t *testing.T) {
	ctx := testCtx()
	ctx.Variables["u"] = Unknown
	if got := evalSrc(t, "false && u", ctx); !got.Equal(False) {
		t.Errorf("false && unknown = %v, want false", got)
	}
	if got := evalSrc(t, "true || u", ctx); !got.Equal(True) {
		t.Errorf("true || unknown = %v, want true", got)
	}
	if got := evalSrc(t, "true && u", ctx); !got.IsUnknown() {
		t.Errorf("true && unknown = %v, want unknown", got)
	}
}

func TestEvalTupleObject(t *testing.T) {
	ctx := testCtx()
	got := evalSrc(t, `[var.count, "x", true]`, ctx)
	want := List(Int(3), String("x"), True)
	if !got.Equal(want) {
		t.Errorf("got %v", got)
	}
	got = evalSrc(t, `{ name = var.name, n = 1 }`, ctx)
	if got.AsObject()["name"].AsString() != "cloudless" {
		t.Errorf("got %v", got)
	}
}

func TestEvalForList(t *testing.T) {
	ctx := testCtx()
	got := evalSrc(t, `[for z in var.zones : upper(z)]`, ctx)
	want := Strings("US-EAST-1A", "US-EAST-1B")
	if !got.Equal(want) {
		t.Errorf("got %v", got)
	}
}

func TestEvalForListWithIndexAndFilter(t *testing.T) {
	ctx := testCtx()
	got := evalSrc(t, `[for i, z in var.zones : "${i}-${z}" if i > 0]`, ctx)
	want := Strings("1-us-east-1b")
	if !got.Equal(want) {
		t.Errorf("got %v", got)
	}
}

func TestEvalForObject(t *testing.T) {
	ctx := testCtx()
	got := evalSrc(t, `{for k, v in var.m : upper(k) => v * 10}`, ctx)
	want := Object(map[string]Value{"A": Int(10), "B": Int(20)})
	if !got.Equal(want) {
		t.Errorf("got %v", got)
	}
}

func TestEvalForOverObjectOrdered(t *testing.T) {
	// Object iteration is sorted by key, so list results are deterministic.
	ctx := testCtx()
	got := evalSrc(t, `[for k, v in var.m : k]`, ctx)
	if !got.Equal(Strings("a", "b")) {
		t.Errorf("got %v", got)
	}
}

func TestEvalSplat(t *testing.T) {
	ctx := testCtx()
	ctx.Variables["aws_vm"] = Object(map[string]Value{
		"web": List(
			Object(map[string]Value{"id": String("vm-0")}),
			Object(map[string]Value{"id": String("vm-1")}),
		),
	})
	got := evalSrc(t, "aws_vm.web[*].id", ctx)
	if !got.Equal(Strings("vm-0", "vm-1")) {
		t.Errorf("got %v", got)
	}
}

func TestEvalSplatOnSingleValue(t *testing.T) {
	ctx := testCtx()
	ctx.Variables["one"] = Object(map[string]Value{"id": String("x")})
	got := evalSrc(t, "one[*].id", ctx)
	if !got.Equal(Strings("x")) {
		t.Errorf("single-value splat = %v", got)
	}
}

func TestEvalScopes(t *testing.T) {
	parent := testCtx()
	child := parent.Child()
	child.Variables["var"] = Object(map[string]Value{"name": String("shadowed")})
	got := evalSrc(t, "var.name", child)
	if got.AsString() != "shadowed" {
		t.Errorf("child scope should shadow parent, got %v", got)
	}
	// Functions resolve through the chain.
	if got := evalSrc(t, `upper("x")`, child); got.AsString() != "X" {
		t.Errorf("function lookup through chain failed: %v", got)
	}
}

func TestEvalUnknownFunction(t *testing.T) {
	d := evalErr(t, "frobnicate(1)", testCtx())
	if !strings.Contains(d.Error(), "unknown function") {
		t.Errorf("diag = %s", d.Error())
	}
}

func TestEvalDiagnosticPositions(t *testing.T) {
	expr, _ := hcl.ParseExpression("pos.ccl", "1 + nosuch.ref")
	_, diags := Evaluate(expr, testCtx())
	if !diags.HasErrors() {
		t.Fatal("expected error")
	}
	d := diags[0]
	if d.Subject.Start.Column != 5 {
		t.Errorf("error column = %d, want 5", d.Subject.Start.Column)
	}
}

func TestEvalFunctionExpansion(t *testing.T) {
	ctx := testCtx()
	ctx.Variables["nums"] = List(Int(3), Int(9), Int(4))
	if got := evalSrc(t, "max(nums...)", ctx); got.AsInt() != 9 {
		t.Errorf("got %v", got)
	}
}
