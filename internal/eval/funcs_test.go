package eval

import (
	"strings"
	"testing"
	"testing/quick"
)

func call(t *testing.T, name string, args ...Value) Value {
	t.Helper()
	fn, ok := Stdlib()[name]
	if !ok {
		t.Fatalf("no function %q", name)
	}
	v, err := fn.Call(args)
	if err != nil {
		t.Fatalf("%s: %s", name, err)
	}
	return v
}

func callErr(t *testing.T, name string, args ...Value) error {
	t.Helper()
	fn, ok := Stdlib()[name]
	if !ok {
		t.Fatalf("no function %q", name)
	}
	_, err := fn.Call(args)
	if err == nil {
		t.Fatalf("%s: expected error", name)
	}
	return err
}

func TestStringFunctions(t *testing.T) {
	if got := call(t, "upper", String("abc")); got.AsString() != "ABC" {
		t.Errorf("upper = %v", got)
	}
	if got := call(t, "lower", String("ABC")); got.AsString() != "abc" {
		t.Errorf("lower = %v", got)
	}
	if got := call(t, "title", String("hello cloud world")); got.AsString() != "Hello Cloud World" {
		t.Errorf("title = %v", got)
	}
	if got := call(t, "trimspace", String("  x \n")); got.AsString() != "x" {
		t.Errorf("trimspace = %v", got)
	}
	if got := call(t, "replace", String("a-b-c"), String("-"), String(".")); got.AsString() != "a.b.c" {
		t.Errorf("replace = %v", got)
	}
	if got := call(t, "substr", String("cloudless"), Int(0), Int(5)); got.AsString() != "cloud" {
		t.Errorf("substr = %v", got)
	}
	if got := call(t, "format", String("vm-%02d-%s"), Int(7), String("web")); got.AsString() != "vm-07-web" {
		t.Errorf("format = %v", got)
	}
	if got := call(t, "join", String(","), Strings("a", "b")); got.AsString() != "a,b" {
		t.Errorf("join = %v", got)
	}
	if got := call(t, "split", String(","), String("a,b")); !got.Equal(Strings("a", "b")) {
		t.Errorf("split = %v", got)
	}
	if got := call(t, "startswith", String("aws_vm"), String("aws_")); !got.AsBool() {
		t.Errorf("startswith = %v", got)
	}
}

func TestCollectionFunctions(t *testing.T) {
	if got := call(t, "length", Strings("a", "b", "c")); got.AsInt() != 3 {
		t.Errorf("length = %v", got)
	}
	if got := call(t, "concat", Strings("a"), Strings("b", "c")); !got.Equal(Strings("a", "b", "c")) {
		t.Errorf("concat = %v", got)
	}
	if got := call(t, "element", Strings("a", "b"), Int(3)); got.AsString() != "b" {
		t.Errorf("element wraps: %v", got)
	}
	if got := call(t, "contains", Strings("a", "b"), String("b")); !got.AsBool() {
		t.Errorf("contains = %v", got)
	}
	if got := call(t, "flatten", List(Strings("a"), List(Strings("b", "c")))); !got.Equal(Strings("a", "b", "c")) {
		t.Errorf("flatten = %v", got)
	}
	if got := call(t, "distinct", Strings("a", "b", "a")); !got.Equal(Strings("a", "b")) {
		t.Errorf("distinct = %v", got)
	}
	if got := call(t, "compact", List(String("a"), String(""), Null, String("b"))); !got.Equal(Strings("a", "b")) {
		t.Errorf("compact = %v", got)
	}
	if got := call(t, "sort", Strings("b", "a", "c")); !got.Equal(Strings("a", "b", "c")) {
		t.Errorf("sort = %v", got)
	}
	if got := call(t, "reverse", Strings("a", "b")); !got.Equal(Strings("b", "a")) {
		t.Errorf("reverse = %v", got)
	}
	if got := call(t, "slice", Strings("a", "b", "c"), Int(1), Int(3)); !got.Equal(Strings("b", "c")) {
		t.Errorf("slice = %v", got)
	}
	if got := call(t, "range", Int(3)); !got.Equal(List(Int(0), Int(1), Int(2))) {
		t.Errorf("range = %v", got)
	}
	if got := call(t, "range", Int(1), Int(7), Int(3)); !got.Equal(List(Int(1), Int(4))) {
		t.Errorf("range step = %v", got)
	}
	if got := call(t, "index", Strings("a", "b"), String("b")); got.AsInt() != 1 {
		t.Errorf("index = %v", got)
	}
	callErr(t, "index", Strings("a"), String("z"))
}

func TestObjectFunctions(t *testing.T) {
	m := Object(map[string]Value{"b": Int(2), "a": Int(1)})
	if got := call(t, "keys", m); !got.Equal(Strings("a", "b")) {
		t.Errorf("keys = %v", got)
	}
	if got := call(t, "values", m); !got.Equal(List(Int(1), Int(2))) {
		t.Errorf("values = %v", got)
	}
	if got := call(t, "lookup", m, String("a")); got.AsInt() != 1 {
		t.Errorf("lookup = %v", got)
	}
	if got := call(t, "lookup", m, String("z"), Int(9)); got.AsInt() != 9 {
		t.Errorf("lookup default = %v", got)
	}
	callErr(t, "lookup", m, String("z"))
	merged := call(t, "merge", m, Object(map[string]Value{"a": Int(10), "c": Int(3)}))
	if merged.AsObject()["a"].AsInt() != 10 || merged.AsObject()["c"].AsInt() != 3 {
		t.Errorf("merge = %v", merged)
	}
	zm := call(t, "zipmap", Strings("x", "y"), List(Int(1), Int(2)))
	if zm.AsObject()["y"].AsInt() != 2 {
		t.Errorf("zipmap = %v", zm)
	}
}

func TestNumericFunctions(t *testing.T) {
	if got := call(t, "min", Int(3), Int(1), Int(2)); got.AsInt() != 1 {
		t.Errorf("min = %v", got)
	}
	if got := call(t, "max", Int(3), Int(1)); got.AsInt() != 3 {
		t.Errorf("max = %v", got)
	}
	if got := call(t, "abs", Int(-4)); got.AsInt() != 4 {
		t.Errorf("abs = %v", got)
	}
	if got := call(t, "ceil", Number(1.1)); got.AsInt() != 2 {
		t.Errorf("ceil = %v", got)
	}
	if got := call(t, "floor", Number(1.9)); got.AsInt() != 1 {
		t.Errorf("floor = %v", got)
	}
	if got := call(t, "pow", Int(2), Int(10)); got.AsInt() != 1024 {
		t.Errorf("pow = %v", got)
	}
	if got := call(t, "sum", List(Int(1), Int(2), Int(3))); got.AsInt() != 6 {
		t.Errorf("sum = %v", got)
	}
}

func TestEncodingFunctions(t *testing.T) {
	v := Object(map[string]Value{"a": Int(1)})
	enc := call(t, "jsonencode", v)
	dec := call(t, "jsondecode", enc)
	if !dec.Equal(v) {
		t.Errorf("json round trip = %v", dec)
	}
	b64 := call(t, "base64encode", String("cloudless"))
	if got := call(t, "base64decode", b64); got.AsString() != "cloudless" {
		t.Errorf("base64 round trip = %v", got)
	}
	callErr(t, "base64decode", String("!!not base64!!"))
	h := call(t, "sha256", String("x"))
	if len(h.AsString()) != 64 {
		t.Errorf("sha256 length = %d", len(h.AsString()))
	}
}

func TestCoalesce(t *testing.T) {
	if got := call(t, "coalesce", Null, String(""), String("x")); got.AsString() != "x" {
		t.Errorf("coalesce = %v", got)
	}
	if got := call(t, "coalesce", Unknown, String("y")); got.AsString() != "y" {
		t.Errorf("coalesce must skip unknown: %v", got)
	}
	callErr(t, "coalesce", Null, String(""))
}

func TestUnknownPropagationThroughFunctions(t *testing.T) {
	for _, name := range []string{"upper", "length", "jsonencode"} {
		fn := Stdlib()[name]
		v, err := fn.Call([]Value{Unknown})
		if err != nil || !v.IsUnknown() {
			t.Errorf("%s(unknown) = %v, %v; want unknown", name, v, err)
		}
	}
}

func TestArityChecking(t *testing.T) {
	if err := callErr(t, "join", String(",")); !strings.Contains(err.Error(), "at least 2") {
		t.Errorf("err = %v", err)
	}
	if err := callErr(t, "upper", String("a"), String("b")); !strings.Contains(err.Error(), "at most 1") {
		t.Errorf("err = %v", err)
	}
}

func TestCIDRSubnet(t *testing.T) {
	cases := []struct {
		base    string
		newbits int
		netnum  int
		want    string
	}{
		{"10.0.0.0/16", 8, 0, "10.0.0.0/24"},
		{"10.0.0.0/16", 8, 3, "10.0.3.0/24"},
		{"10.0.0.0/16", 4, 15, "10.0.240.0/20"},
		{"192.168.0.0/24", 2, 1, "192.168.0.64/26"},
		{"fd00::/48", 16, 5, "fd00:0:0:5::/64"},
	}
	for _, c := range cases {
		got := call(t, "cidrsubnet", String(c.base), Int(c.newbits), Int(c.netnum))
		if got.AsString() != c.want {
			t.Errorf("cidrsubnet(%s,%d,%d) = %v, want %s", c.base, c.newbits, c.netnum, got, c.want)
		}
	}
	callErr(t, "cidrsubnet", String("10.0.0.0/16"), Int(8), Int(256))
	callErr(t, "cidrsubnet", String("not-a-cidr"), Int(8), Int(0))
}

func TestCIDRHost(t *testing.T) {
	if got := call(t, "cidrhost", String("10.0.1.0/24"), Int(5)); got.AsString() != "10.0.1.5" {
		t.Errorf("cidrhost = %v", got)
	}
	callErr(t, "cidrhost", String("10.0.1.0/24"), Int(300))
}

func TestCIDRContains(t *testing.T) {
	if got := call(t, "cidrcontains", String("10.0.0.0/16"), String("10.0.3.7")); !got.AsBool() {
		t.Errorf("cidrcontains addr = %v", got)
	}
	if got := call(t, "cidrcontains", String("10.0.0.0/16"), String("10.0.3.0/24")); !got.AsBool() {
		t.Errorf("cidrcontains prefix = %v", got)
	}
	if got := call(t, "cidrcontains", String("10.0.0.0/24"), String("10.1.0.0/16")); got.AsBool() {
		t.Errorf("cidrcontains disjoint = %v", got)
	}
}

func TestPrefixesOverlap(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"10.0.0.0/16", "10.0.1.0/24", true},
		{"10.0.0.0/16", "10.1.0.0/16", false},
		{"10.0.0.0/8", "10.200.0.0/16", true},
	}
	for _, c := range cases {
		got, err := PrefixesOverlap(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("overlap(%s,%s) = %v, %v", c.a, c.b, got, err)
		}
	}
	if _, err := PrefixesOverlap("junk", "10.0.0.0/8"); err == nil {
		t.Error("invalid CIDR must error")
	}
}

// Property: cidrsubnet results are always contained in the base prefix and
// sibling subnets never overlap.
func TestCIDRSubnetPropertiesQuick(t *testing.T) {
	fn := Stdlib()["cidrsubnet"]
	prop := func(netnumRaw uint8, sibRaw uint8) bool {
		netnum := int(netnumRaw)
		sib := int(sibRaw)
		a, err := fn.Call([]Value{String("10.0.0.0/16"), Int(8), Int(netnum)})
		if err != nil {
			return false
		}
		contained, err := PrefixesOverlap("10.0.0.0/16", a.AsString())
		if err != nil || !contained {
			return false
		}
		if sib == netnum {
			return true
		}
		b, err := fn.Call([]Value{String("10.0.0.0/16"), Int(8), Int(sib)})
		if err != nil {
			return false
		}
		overlap, err := PrefixesOverlap(a.AsString(), b.AsString())
		return err == nil && !overlap
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrimAndRegexFunctions(t *testing.T) {
	if got := call(t, "trimprefix", String("aws_vpc"), String("aws_")); got.AsString() != "vpc" {
		t.Errorf("trimprefix = %v", got)
	}
	if got := call(t, "trimsuffix", String("name-0"), String("-0")); got.AsString() != "name" {
		t.Errorf("trimsuffix = %v", got)
	}
	if got := call(t, "regexmatch", String(`^vm-\d+$`), String("vm-42")); !got.AsBool() {
		t.Errorf("regexmatch = %v", got)
	}
	if got := call(t, "regexmatch", String(`^vm-\d+$`), String("web-42")); got.AsBool() {
		t.Errorf("regexmatch negative = %v", got)
	}
	callErr(t, "regexmatch", String("(unclosed"), String("x"))
}
