package eval

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/netip"
	"regexp"
	"sort"
	"strings"
)

// Function is a callable available to CCL expressions.
type Function struct {
	// Name is the function's CCL-visible name.
	Name string
	// MinArgs and MaxArgs bound the argument count; MaxArgs < 0 means
	// variadic.
	MinArgs, MaxArgs int
	// Impl computes the result. Arguments are pre-evaluated.
	Impl func(args []Value) (Value, error)
	// KnownOnUnknown, when true, lets the function run even when some
	// arguments are unknown (used by coalesce-like functions). Otherwise an
	// unknown argument makes the result unknown.
	KnownOnUnknown bool
}

// Call validates arity and unknown-propagation, then invokes the function.
func (f Function) Call(args []Value) (Value, error) {
	if len(args) < f.MinArgs {
		return Value{}, fmt.Errorf("needs at least %d argument(s), got %d", f.MinArgs, len(args))
	}
	if f.MaxArgs >= 0 && len(args) > f.MaxArgs {
		return Value{}, fmt.Errorf("accepts at most %d argument(s), got %d", f.MaxArgs, len(args))
	}
	if !f.KnownOnUnknown {
		for _, a := range args {
			if !a.IsKnown() {
				return Unknown, nil
			}
		}
	}
	return f.Impl(args)
}

// Stdlib returns the standard CCL function library. The map is freshly
// allocated so callers may add or override entries.
func Stdlib() map[string]Function {
	fns := []Function{
		{Name: "length", MinArgs: 1, MaxArgs: 1, Impl: fnLength},
		{Name: "upper", MinArgs: 1, MaxArgs: 1, Impl: stringFn(strings.ToUpper)},
		{Name: "lower", MinArgs: 1, MaxArgs: 1, Impl: stringFn(strings.ToLower)},
		{Name: "trimspace", MinArgs: 1, MaxArgs: 1, Impl: stringFn(strings.TrimSpace)},
		{Name: "trimprefix", MinArgs: 2, MaxArgs: 2, Impl: fnTrimPrefix},
		{Name: "trimsuffix", MinArgs: 2, MaxArgs: 2, Impl: fnTrimSuffix},
		{Name: "regexmatch", MinArgs: 2, MaxArgs: 2, Impl: fnRegexMatch},
		{Name: "title", MinArgs: 1, MaxArgs: 1, Impl: stringFn(titleCase)},
		{Name: "join", MinArgs: 2, MaxArgs: 2, Impl: fnJoin},
		{Name: "split", MinArgs: 2, MaxArgs: 2, Impl: fnSplit},
		{Name: "replace", MinArgs: 3, MaxArgs: 3, Impl: fnReplace},
		{Name: "substr", MinArgs: 3, MaxArgs: 3, Impl: fnSubstr},
		{Name: "format", MinArgs: 1, MaxArgs: -1, Impl: fnFormat},
		{Name: "startswith", MinArgs: 2, MaxArgs: 2, Impl: fnStartsWith},
		{Name: "endswith", MinArgs: 2, MaxArgs: 2, Impl: fnEndsWith},
		{Name: "concat", MinArgs: 1, MaxArgs: -1, Impl: fnConcat},
		{Name: "element", MinArgs: 2, MaxArgs: 2, Impl: fnElement},
		{Name: "contains", MinArgs: 2, MaxArgs: 2, Impl: fnContains},
		{Name: "keys", MinArgs: 1, MaxArgs: 1, Impl: fnKeys},
		{Name: "values", MinArgs: 1, MaxArgs: 1, Impl: fnValues},
		{Name: "lookup", MinArgs: 2, MaxArgs: 3, Impl: fnLookup},
		{Name: "merge", MinArgs: 1, MaxArgs: -1, Impl: fnMerge},
		{Name: "flatten", MinArgs: 1, MaxArgs: 1, Impl: fnFlatten},
		{Name: "distinct", MinArgs: 1, MaxArgs: 1, Impl: fnDistinct},
		{Name: "compact", MinArgs: 1, MaxArgs: 1, Impl: fnCompact},
		{Name: "sort", MinArgs: 1, MaxArgs: 1, Impl: fnSort},
		{Name: "reverse", MinArgs: 1, MaxArgs: 1, Impl: fnReverse},
		{Name: "slice", MinArgs: 3, MaxArgs: 3, Impl: fnSlice},
		{Name: "range", MinArgs: 1, MaxArgs: 3, Impl: fnRange},
		{Name: "zipmap", MinArgs: 2, MaxArgs: 2, Impl: fnZipmap},
		{Name: "index", MinArgs: 2, MaxArgs: 2, Impl: fnIndex},
		{Name: "min", MinArgs: 1, MaxArgs: -1, Impl: numericFold(math.Min)},
		{Name: "max", MinArgs: 1, MaxArgs: -1, Impl: numericFold(math.Max)},
		{Name: "abs", MinArgs: 1, MaxArgs: 1, Impl: numericFn(math.Abs)},
		{Name: "ceil", MinArgs: 1, MaxArgs: 1, Impl: numericFn(math.Ceil)},
		{Name: "floor", MinArgs: 1, MaxArgs: 1, Impl: numericFn(math.Floor)},
		{Name: "pow", MinArgs: 2, MaxArgs: 2, Impl: fnPow},
		{Name: "sum", MinArgs: 1, MaxArgs: 1, Impl: fnSum},
		{Name: "tostring", MinArgs: 1, MaxArgs: 1, Impl: convFn(ToStringValue)},
		{Name: "tonumber", MinArgs: 1, MaxArgs: 1, Impl: convFn(ToNumberValue)},
		{Name: "tobool", MinArgs: 1, MaxArgs: 1, Impl: convFn(ToBoolValue)},
		{Name: "coalesce", MinArgs: 1, MaxArgs: -1, Impl: fnCoalesce, KnownOnUnknown: true},
		{Name: "try", MinArgs: 1, MaxArgs: -1, Impl: fnCoalesce, KnownOnUnknown: true},
		{Name: "jsonencode", MinArgs: 1, MaxArgs: 1, Impl: fnJSONEncode},
		{Name: "jsondecode", MinArgs: 1, MaxArgs: 1, Impl: fnJSONDecode},
		{Name: "base64encode", MinArgs: 1, MaxArgs: 1, Impl: fnBase64Encode},
		{Name: "base64decode", MinArgs: 1, MaxArgs: 1, Impl: fnBase64Decode},
		{Name: "sha256", MinArgs: 1, MaxArgs: 1, Impl: fnSHA256},
		{Name: "cidrsubnet", MinArgs: 3, MaxArgs: 3, Impl: fnCIDRSubnet},
		{Name: "cidrhost", MinArgs: 2, MaxArgs: 2, Impl: fnCIDRHost},
		{Name: "cidrcontains", MinArgs: 2, MaxArgs: 2, Impl: fnCIDRContains},
	}
	out := make(map[string]Function, len(fns))
	for _, f := range fns {
		out[f.Name] = f
	}
	return out
}

func titleCase(s string) string {
	prevSpace := true
	return strings.Map(func(r rune) rune {
		if prevSpace && r >= 'a' && r <= 'z' {
			r -= 'a' - 'A'
		}
		prevSpace = r == ' ' || r == '\t' || r == '-' || r == '_'
		return r
	}, s)
}

func stringFn(fn func(string) string) func([]Value) (Value, error) {
	return func(args []Value) (Value, error) {
		s, err := ToStringValue(args[0])
		if err != nil {
			return Value{}, err
		}
		return String(fn(s.AsString())), nil
	}
}

func numericFn(fn func(float64) float64) func([]Value) (Value, error) {
	return func(args []Value) (Value, error) {
		n, err := ToNumberValue(args[0])
		if err != nil {
			return Value{}, err
		}
		return Number(fn(n.AsNumber())), nil
	}
}

func numericFold(fn func(float64, float64) float64) func([]Value) (Value, error) {
	return func(args []Value) (Value, error) {
		acc := math.NaN()
		for i, a := range args {
			n, err := ToNumberValue(a)
			if err != nil {
				return Value{}, fmt.Errorf("argument %d: %s", i+1, err)
			}
			if i == 0 {
				acc = n.AsNumber()
			} else {
				acc = fn(acc, n.AsNumber())
			}
		}
		return Number(acc), nil
	}
}

func convFn(fn func(Value) (Value, error)) func([]Value) (Value, error) {
	return func(args []Value) (Value, error) { return fn(args[0]) }
}

func fnLength(args []Value) (Value, error) {
	n, err := args[0].Length()
	if err != nil {
		return Value{}, err
	}
	return Int(n), nil
}

func fnJoin(args []Value) (Value, error) {
	sep, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	if args[1].Kind() != KindList {
		return Value{}, fmt.Errorf("second argument must be a list, got %s", args[1].Kind())
	}
	parts := make([]string, 0, len(args[1].AsList()))
	for _, e := range args[1].AsList() {
		s, err := ToStringValue(e)
		if err != nil {
			return Value{}, err
		}
		parts = append(parts, s.AsString())
	}
	return String(strings.Join(parts, sep.AsString())), nil
}

func fnSplit(args []Value) (Value, error) {
	sep, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	s, err := ToStringValue(args[1])
	if err != nil {
		return Value{}, err
	}
	return Strings(strings.Split(s.AsString(), sep.AsString())...), nil
}

func fnReplace(args []Value) (Value, error) {
	var ss [3]string
	for i := 0; i < 3; i++ {
		v, err := ToStringValue(args[i])
		if err != nil {
			return Value{}, err
		}
		ss[i] = v.AsString()
	}
	return String(strings.ReplaceAll(ss[0], ss[1], ss[2])), nil
}

func fnSubstr(args []Value) (Value, error) {
	s, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	off, err := ToNumberValue(args[1])
	if err != nil {
		return Value{}, err
	}
	length, err := ToNumberValue(args[2])
	if err != nil {
		return Value{}, err
	}
	str := s.AsString()
	o, l := off.AsInt(), length.AsInt()
	if o < 0 || o > len(str) {
		return Value{}, fmt.Errorf("offset %d out of range for string of length %d", o, len(str))
	}
	if l < 0 || o+l > len(str) {
		return String(str[o:]), nil
	}
	return String(str[o : o+l]), nil
}

func fnFormat(args []Value) (Value, error) {
	f, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	rest := make([]any, len(args)-1)
	for i, a := range args[1:] {
		rest[i] = formatArg(a)
	}
	return String(fmt.Sprintf(f.AsString(), rest...)), nil
}

func formatArg(v Value) any {
	switch v.Kind() {
	case KindString:
		return v.AsString()
	case KindNumber:
		n := v.AsNumber()
		if n == math.Trunc(n) {
			return int64(n)
		}
		return n
	case KindBool:
		return v.AsBool()
	default:
		return v.String()
	}
}

func fnTrimPrefix(args []Value) (Value, error) {
	s, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	p, err := ToStringValue(args[1])
	if err != nil {
		return Value{}, err
	}
	return String(strings.TrimPrefix(s.AsString(), p.AsString())), nil
}

func fnTrimSuffix(args []Value) (Value, error) {
	s, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	p, err := ToStringValue(args[1])
	if err != nil {
		return Value{}, err
	}
	return String(strings.TrimSuffix(s.AsString(), p.AsString())), nil
}

// fnRegexMatch implements regexmatch(pattern, s); patterns are compiled per
// call, which is fine for configuration-scale evaluation.
func fnRegexMatch(args []Value) (Value, error) {
	pat, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	s, err := ToStringValue(args[1])
	if err != nil {
		return Value{}, err
	}
	re, err := regexp.Compile(pat.AsString())
	if err != nil {
		return Value{}, fmt.Errorf("invalid pattern %q: %s", pat.AsString(), err)
	}
	return Bool(re.MatchString(s.AsString())), nil
}

func fnStartsWith(args []Value) (Value, error) {
	s, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	p, err := ToStringValue(args[1])
	if err != nil {
		return Value{}, err
	}
	return Bool(strings.HasPrefix(s.AsString(), p.AsString())), nil
}

func fnEndsWith(args []Value) (Value, error) {
	s, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	p, err := ToStringValue(args[1])
	if err != nil {
		return Value{}, err
	}
	return Bool(strings.HasSuffix(s.AsString(), p.AsString())), nil
}

func fnConcat(args []Value) (Value, error) {
	var out []Value
	for i, a := range args {
		if a.Kind() != KindList {
			return Value{}, fmt.Errorf("argument %d must be a list, got %s", i+1, a.Kind())
		}
		out = append(out, a.AsList()...)
	}
	return ListOf(out), nil
}

func fnElement(args []Value) (Value, error) {
	if args[0].Kind() != KindList {
		return Value{}, fmt.Errorf("first argument must be a list, got %s", args[0].Kind())
	}
	idx, err := ToNumberValue(args[1])
	if err != nil {
		return Value{}, err
	}
	list := args[0].AsList()
	if len(list) == 0 {
		return Value{}, fmt.Errorf("cannot take element of empty list")
	}
	// element() wraps around, matching Terraform.
	i := idx.AsInt() % len(list)
	if i < 0 {
		i += len(list)
	}
	return list[i], nil
}

func fnContains(args []Value) (Value, error) {
	switch args[0].Kind() {
	case KindList:
		for _, e := range args[0].AsList() {
			if e.Equal(args[1]) {
				return True, nil
			}
		}
		return False, nil
	case KindString:
		sub, err := ToStringValue(args[1])
		if err != nil {
			return Value{}, err
		}
		return Bool(strings.Contains(args[0].AsString(), sub.AsString())), nil
	default:
		return Value{}, fmt.Errorf("first argument must be a list or string, got %s", args[0].Kind())
	}
}

func fnKeys(args []Value) (Value, error) {
	if args[0].Kind() != KindObject {
		return Value{}, fmt.Errorf("argument must be an object, got %s", args[0].Kind())
	}
	obj := args[0].AsObject()
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return Strings(keys...), nil
}

func fnValues(args []Value) (Value, error) {
	if args[0].Kind() != KindObject {
		return Value{}, fmt.Errorf("argument must be an object, got %s", args[0].Kind())
	}
	obj := args[0].AsObject()
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Value, len(keys))
	for i, k := range keys {
		out[i] = obj[k]
	}
	return ListOf(out), nil
}

func fnLookup(args []Value) (Value, error) {
	if args[0].Kind() != KindObject {
		return Value{}, fmt.Errorf("first argument must be an object, got %s", args[0].Kind())
	}
	key, err := ToStringValue(args[1])
	if err != nil {
		return Value{}, err
	}
	if v, ok := args[0].AsObject()[key.AsString()]; ok {
		return v, nil
	}
	if len(args) == 3 {
		return args[2], nil
	}
	return Value{}, fmt.Errorf("object has no member %q and no default was given", key.AsString())
}

func fnMerge(args []Value) (Value, error) {
	out := map[string]Value{}
	for i, a := range args {
		if a.IsNull() {
			continue
		}
		if a.Kind() != KindObject {
			return Value{}, fmt.Errorf("argument %d must be an object, got %s", i+1, a.Kind())
		}
		for k, v := range a.AsObject() {
			out[k] = v
		}
	}
	return Object(out), nil
}

func fnFlatten(args []Value) (Value, error) {
	if args[0].Kind() != KindList {
		return Value{}, fmt.Errorf("argument must be a list, got %s", args[0].Kind())
	}
	var out []Value
	var walk func(items []Value)
	walk = func(items []Value) {
		for _, e := range items {
			if e.Kind() == KindList {
				walk(e.AsList())
			} else {
				out = append(out, e)
			}
		}
	}
	walk(args[0].AsList())
	return ListOf(out), nil
}

func fnDistinct(args []Value) (Value, error) {
	if args[0].Kind() != KindList {
		return Value{}, fmt.Errorf("argument must be a list, got %s", args[0].Kind())
	}
	var out []Value
	for _, e := range args[0].AsList() {
		dup := false
		for _, seen := range out {
			if seen.Equal(e) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e)
		}
	}
	return ListOf(out), nil
}

func fnCompact(args []Value) (Value, error) {
	if args[0].Kind() != KindList {
		return Value{}, fmt.Errorf("argument must be a list, got %s", args[0].Kind())
	}
	var out []Value
	for _, e := range args[0].AsList() {
		if e.IsNull() {
			continue
		}
		if e.Kind() == KindString && e.AsString() == "" {
			continue
		}
		out = append(out, e)
	}
	return ListOf(out), nil
}

func fnSort(args []Value) (Value, error) {
	if args[0].Kind() != KindList {
		return Value{}, fmt.Errorf("argument must be a list, got %s", args[0].Kind())
	}
	ss := make([]string, 0, len(args[0].AsList()))
	for _, e := range args[0].AsList() {
		s, err := ToStringValue(e)
		if err != nil {
			return Value{}, err
		}
		ss = append(ss, s.AsString())
	}
	sort.Strings(ss)
	return Strings(ss...), nil
}

func fnReverse(args []Value) (Value, error) {
	if args[0].Kind() != KindList {
		return Value{}, fmt.Errorf("argument must be a list, got %s", args[0].Kind())
	}
	in := args[0].AsList()
	out := make([]Value, len(in))
	for i, e := range in {
		out[len(in)-1-i] = e
	}
	return ListOf(out), nil
}

func fnSlice(args []Value) (Value, error) {
	if args[0].Kind() != KindList {
		return Value{}, fmt.Errorf("first argument must be a list, got %s", args[0].Kind())
	}
	from, err := ToNumberValue(args[1])
	if err != nil {
		return Value{}, err
	}
	to, err := ToNumberValue(args[2])
	if err != nil {
		return Value{}, err
	}
	list := args[0].AsList()
	f, t := from.AsInt(), to.AsInt()
	if f < 0 || t > len(list) || f > t {
		return Value{}, fmt.Errorf("slice bounds [%d:%d] out of range for list of length %d", f, t, len(list))
	}
	return ListOf(list[f:t]), nil
}

func fnRange(args []Value) (Value, error) {
	nums := make([]float64, len(args))
	for i, a := range args {
		n, err := ToNumberValue(a)
		if err != nil {
			return Value{}, err
		}
		nums[i] = n.AsNumber()
	}
	start, limit, step := 0.0, 0.0, 1.0
	switch len(args) {
	case 1:
		limit = nums[0]
	case 2:
		start, limit = nums[0], nums[1]
	case 3:
		start, limit, step = nums[0], nums[1], nums[2]
	}
	if step == 0 {
		return Value{}, fmt.Errorf("step cannot be zero")
	}
	var out []Value
	if step > 0 {
		for v := start; v < limit; v += step {
			out = append(out, Number(v))
		}
	} else {
		for v := start; v > limit; v += step {
			out = append(out, Number(v))
		}
	}
	return ListOf(out), nil
}

func fnZipmap(args []Value) (Value, error) {
	if args[0].Kind() != KindList || args[1].Kind() != KindList {
		return Value{}, fmt.Errorf("both arguments must be lists")
	}
	keys, vals := args[0].AsList(), args[1].AsList()
	if len(keys) != len(vals) {
		return Value{}, fmt.Errorf("key list length %d does not match value list length %d", len(keys), len(vals))
	}
	out := make(map[string]Value, len(keys))
	for i, k := range keys {
		ks, err := ToStringValue(k)
		if err != nil {
			return Value{}, err
		}
		out[ks.AsString()] = vals[i]
	}
	return Object(out), nil
}

func fnIndex(args []Value) (Value, error) {
	if args[0].Kind() != KindList {
		return Value{}, fmt.Errorf("first argument must be a list, got %s", args[0].Kind())
	}
	for i, e := range args[0].AsList() {
		if e.Equal(args[1]) {
			return Int(i), nil
		}
	}
	return Value{}, fmt.Errorf("value %s not found in list", args[1])
}

func fnPow(args []Value) (Value, error) {
	a, err := ToNumberValue(args[0])
	if err != nil {
		return Value{}, err
	}
	b, err := ToNumberValue(args[1])
	if err != nil {
		return Value{}, err
	}
	return Number(math.Pow(a.AsNumber(), b.AsNumber())), nil
}

func fnSum(args []Value) (Value, error) {
	if args[0].Kind() != KindList {
		return Value{}, fmt.Errorf("argument must be a list, got %s", args[0].Kind())
	}
	total := 0.0
	for _, e := range args[0].AsList() {
		n, err := ToNumberValue(e)
		if err != nil {
			return Value{}, err
		}
		total += n.AsNumber()
	}
	return Number(total), nil
}

func fnCoalesce(args []Value) (Value, error) {
	for _, a := range args {
		if a.IsNull() || a.IsUnknown() {
			continue
		}
		if a.Kind() == KindString && a.AsString() == "" {
			continue
		}
		return a, nil
	}
	return Value{}, fmt.Errorf("no non-empty argument")
}

func fnJSONEncode(args []Value) (Value, error) {
	b, err := json.Marshal(ToGo(args[0]))
	if err != nil {
		return Value{}, err
	}
	return String(string(b)), nil
}

func fnJSONDecode(args []Value) (Value, error) {
	s, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	var out any
	if err := json.Unmarshal([]byte(s.AsString()), &out); err != nil {
		return Value{}, fmt.Errorf("invalid JSON: %s", err)
	}
	return FromGo(out), nil
}

func fnBase64Encode(args []Value) (Value, error) {
	s, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	return String(base64.StdEncoding.EncodeToString([]byte(s.AsString()))), nil
}

func fnBase64Decode(args []Value) (Value, error) {
	s, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	b, err := base64.StdEncoding.DecodeString(s.AsString())
	if err != nil {
		return Value{}, fmt.Errorf("invalid base64: %s", err)
	}
	return String(string(b)), nil
}

func fnSHA256(args []Value) (Value, error) {
	s, err := ToStringValue(args[0])
	if err != nil {
		return Value{}, err
	}
	sum := sha256.Sum256([]byte(s.AsString()))
	return String(hex.EncodeToString(sum[:])), nil
}

// --- CIDR functions -------------------------------------------------------

func parsePrefix(v Value) (netip.Prefix, error) {
	s, err := ToStringValue(v)
	if err != nil {
		return netip.Prefix{}, err
	}
	p, err := netip.ParsePrefix(s.AsString())
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("invalid CIDR %q: %s", s.AsString(), err)
	}
	return p, nil
}

// fnCIDRSubnet implements cidrsubnet(prefix, newbits, netnum).
func fnCIDRSubnet(args []Value) (Value, error) {
	p, err := parsePrefix(args[0])
	if err != nil {
		return Value{}, err
	}
	newbits, err := ToNumberValue(args[1])
	if err != nil {
		return Value{}, err
	}
	netnum, err := ToNumberValue(args[2])
	if err != nil {
		return Value{}, err
	}
	nb, nn := newbits.AsInt(), netnum.AsInt()
	newLen := p.Bits() + nb
	if nb < 0 || newLen > p.Addr().BitLen() {
		return Value{}, fmt.Errorf("cannot extend /%d prefix by %d bits", p.Bits(), nb)
	}
	if nn < 0 || nb < 63 && nn >= 1<<uint(nb) {
		return Value{}, fmt.Errorf("network number %d out of range for %d new bits", nn, nb)
	}
	addr := p.Masked().Addr().As16()
	// Write the network number into bits [p.Bits(), newLen) of the address.
	base := 0
	if p.Addr().Is4() {
		base = 96 // IPv4-mapped offset within the 16-byte form
	}
	for i := 0; i < nb; i++ {
		bitIndex := base + p.Bits() + i
		bit := (nn >> uint(nb-1-i)) & 1
		byteIndex := bitIndex / 8
		mask := byte(1 << uint(7-bitIndex%8))
		if bit == 1 {
			addr[byteIndex] |= mask
		} else {
			addr[byteIndex] &^= mask
		}
	}
	out := netip.AddrFrom16(addr)
	if p.Addr().Is4() {
		out = out.Unmap()
	}
	return String(netip.PrefixFrom(out, newLen).String()), nil
}

// fnCIDRHost implements cidrhost(prefix, hostnum).
func fnCIDRHost(args []Value) (Value, error) {
	p, err := parsePrefix(args[0])
	if err != nil {
		return Value{}, err
	}
	hostnum, err := ToNumberValue(args[1])
	if err != nil {
		return Value{}, err
	}
	hn := hostnum.AsInt()
	hostBits := p.Addr().BitLen() - p.Bits()
	if hn < 0 || hostBits < 63 && hn >= 1<<uint(hostBits) {
		return Value{}, fmt.Errorf("host number %d out of range for /%d", hn, p.Bits())
	}
	addr := p.Masked().Addr().As16()
	for i := 15; i >= 0 && hn > 0; i-- {
		addr[i] |= byte(hn & 0xff)
		hn >>= 8
	}
	out := netip.AddrFrom16(addr)
	if p.Addr().Is4() {
		out = out.Unmap()
	}
	return String(out.String()), nil
}

// fnCIDRContains reports whether a prefix contains an address or wholly
// contains another prefix.
func fnCIDRContains(args []Value) (Value, error) {
	p, err := parsePrefix(args[0])
	if err != nil {
		return Value{}, err
	}
	s, err := ToStringValue(args[1])
	if err != nil {
		return Value{}, err
	}
	if inner, err := netip.ParsePrefix(s.AsString()); err == nil {
		ok := p.Contains(inner.Addr()) && p.Bits() <= inner.Bits()
		return Bool(ok), nil
	}
	addr, err := netip.ParseAddr(s.AsString())
	if err != nil {
		return Value{}, fmt.Errorf("second argument must be an address or CIDR, got %q", s.AsString())
	}
	return Bool(p.Contains(addr)), nil
}

// PrefixesOverlap reports whether two CIDR blocks share any addresses; the
// validator's VNet-peering rule (§3.2) uses this.
func PrefixesOverlap(a, b string) (bool, error) {
	pa, err := netip.ParsePrefix(a)
	if err != nil {
		return false, fmt.Errorf("invalid CIDR %q: %s", a, err)
	}
	pb, err := netip.ParsePrefix(b)
	if err != nil {
		return false, fmt.Errorf("invalid CIDR %q: %s", b, err)
	}
	return pa.Overlaps(pb), nil
}
