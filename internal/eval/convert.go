package eval

import (
	"fmt"
	"strconv"
)

// ToStringValue converts a value to its string form following CCL's implicit
// conversion rules (numbers and bools convert; collections do not).
func ToStringValue(v Value) (Value, error) {
	switch v.kind {
	case KindUnknown:
		return Unknown, nil
	case KindString:
		return v, nil
	case KindNumber:
		return String(Number(v.num).String()), nil
	case KindBool:
		return String(strconv.FormatBool(v.b)), nil
	case KindNull:
		return Value{}, fmt.Errorf("cannot convert null to string")
	default:
		return Value{}, fmt.Errorf("cannot convert %s to string", v.kind)
	}
}

// ToNumberValue converts a value to a number, accepting numeric strings.
func ToNumberValue(v Value) (Value, error) {
	switch v.kind {
	case KindUnknown:
		return Unknown, nil
	case KindNumber:
		return v, nil
	case KindString:
		f, err := strconv.ParseFloat(v.str, 64)
		if err != nil {
			return Value{}, fmt.Errorf("cannot convert %q to number", v.str)
		}
		return Number(f), nil
	case KindBool:
		if v.b {
			return Number(1), nil
		}
		return Number(0), nil
	default:
		return Value{}, fmt.Errorf("cannot convert %s to number", v.kind)
	}
}

// ToBoolValue converts a value to a bool, accepting "true"/"false" strings.
func ToBoolValue(v Value) (Value, error) {
	switch v.kind {
	case KindUnknown:
		return Unknown, nil
	case KindBool:
		return v, nil
	case KindString:
		switch v.str {
		case "true":
			return True, nil
		case "false":
			return False, nil
		}
		return Value{}, fmt.Errorf("cannot convert %q to bool", v.str)
	default:
		return Value{}, fmt.Errorf("cannot convert %s to bool", v.kind)
	}
}

// Truthiness returns the boolean meaning of a condition value; only booleans
// (and convertible strings) are accepted — numbers are deliberately not
// truthy, avoiding a classic configuration-language footgun.
func Truthiness(v Value) (bool, error) {
	b, err := ToBoolValue(v)
	if err != nil {
		return false, err
	}
	if b.IsUnknown() {
		return false, fmt.Errorf("condition depends on a value known only after apply")
	}
	return b.AsBool(), nil
}
