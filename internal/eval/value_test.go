package eval

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Unknown, KindUnknown},
		{True, KindBool},
		{Number(3.5), KindNumber},
		{String("x"), KindString},
		{List(Int(1)), KindList},
		{Object(map[string]Value{"a": Int(1)}), KindObject},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v kind = %s, want %s", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !List(Int(1), String("a")).Equal(List(Int(1), String("a"))) {
		t.Error("equal lists compare unequal")
	}
	if List(Int(1)).Equal(List(Int(2))) {
		t.Error("different lists compare equal")
	}
	if Int(1).Equal(String("1")) {
		t.Error("number equals string")
	}
	a := Object(map[string]Value{"x": Int(1), "y": List(String("z"))})
	b := Object(map[string]Value{"y": List(String("z")), "x": Int(1)})
	if !a.Equal(b) {
		t.Error("object equality must be order-insensitive")
	}
	if !Null.Equal(Null) || !Unknown.Equal(Unknown) {
		t.Error("null/unknown self-equality")
	}
	if Null.Equal(Unknown) {
		t.Error("null must not equal unknown")
	}
}

func TestIsKnownDeep(t *testing.T) {
	v := Object(map[string]Value{"ids": List(String("a"), Unknown)})
	if v.IsKnown() {
		t.Error("object containing a nested unknown must not be known")
	}
	if v.IsUnknown() {
		t.Error("a partially-known object is not itself the unknown value")
	}
}

func TestIndexAndGetAttr(t *testing.T) {
	list := Strings("a", "b", "c")
	v, err := list.Index(Int(1))
	if err != nil || v.AsString() != "b" {
		t.Errorf("Index = %v, %v", v, err)
	}
	if _, err := list.Index(Int(3)); err == nil {
		t.Error("out-of-range index must error")
	}
	if _, err := list.Index(String("x")); err == nil {
		t.Error("string index on list must error")
	}
	obj := Object(map[string]Value{"name": String("n")})
	v, err = obj.GetAttr("name")
	if err != nil || v.AsString() != "n" {
		t.Errorf("GetAttr = %v, %v", v, err)
	}
	if _, err := obj.GetAttr("missing"); err == nil {
		t.Error("missing attribute must error")
	}
	// Unknown propagation through indexing and attributes.
	if v, _ := Unknown.GetAttr("anything"); !v.IsUnknown() {
		t.Error("attr on unknown must be unknown")
	}
	if v, _ := list.Index(Unknown); !v.IsUnknown() {
		t.Error("unknown index must yield unknown")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "null"},
		{Unknown, "(known after apply)"},
		{Int(42), "42"},
		{Number(2.5), "2.5"},
		{String("hi"), `"hi"`},
		{Strings("a", "b"), `["a", "b"]`},
		{Object(map[string]Value{"b": Int(2), "a": Int(1)}), "{a = 1, b = 2}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestGoRoundTrip(t *testing.T) {
	orig := Object(map[string]Value{
		"name":  String("web"),
		"count": Int(3),
		"live":  True,
		"none":  Null,
		"tags":  Strings("a", "b"),
		"id":    Unknown,
	})
	back := FromGoWithUnknowns(ToGo(orig))
	if !orig.Equal(back) {
		t.Errorf("round trip mismatch:\n  orig: %v\n  back: %v", orig, back)
	}
}

func TestHashStability(t *testing.T) {
	a := Object(map[string]Value{"x": Int(1), "y": Strings("a")})
	b := Object(map[string]Value{"y": Strings("a"), "x": Int(1)})
	if a.Hash() != b.Hash() {
		t.Error("hash must be key-order independent")
	}
	c := Object(map[string]Value{"x": Int(2), "y": Strings("a")})
	if a.Hash() == c.Hash() {
		t.Error("different values should hash differently")
	}
}

// Property: Equal is reflexive and Hash is Equal-consistent for values built
// from arbitrary primitives.
func TestEqualHashConsistencyQuick(t *testing.T) {
	f := func(s string, n float64, b bool) bool {
		v := Object(map[string]Value{"s": String(s), "n": Number(n), "b": Bool(b)})
		w := Object(map[string]Value{"s": String(s), "n": Number(n), "b": Bool(b)})
		return v.Equal(w) && v.Hash() == w.Hash() && v.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConversions(t *testing.T) {
	if v, err := ToNumberValue(String("42")); err != nil || v.AsNumber() != 42 {
		t.Errorf("ToNumber(\"42\") = %v, %v", v, err)
	}
	if _, err := ToNumberValue(String("nope")); err == nil {
		t.Error("non-numeric string must not convert")
	}
	if v, err := ToStringValue(Number(2)); err != nil || v.AsString() != "2" {
		t.Errorf("ToString(2) = %v, %v", v, err)
	}
	if v, err := ToBoolValue(String("true")); err != nil || !v.AsBool() {
		t.Errorf("ToBool(\"true\") = %v, %v", v, err)
	}
	if _, err := ToStringValue(List()); err == nil {
		t.Error("list must not convert to string")
	}
	for _, conv := range []func(Value) (Value, error){ToStringValue, ToNumberValue, ToBoolValue} {
		v, err := conv(Unknown)
		if err != nil || !v.IsUnknown() {
			t.Error("conversions must pass unknown through")
		}
	}
}

func TestTruthiness(t *testing.T) {
	if ok, err := Truthiness(True); err != nil || !ok {
		t.Error("true must be truthy")
	}
	if _, err := Truthiness(Int(1)); err == nil {
		t.Error("numbers must not be truthy")
	}
	if _, err := Truthiness(Unknown); err == nil {
		t.Error("unknown conditions must be rejected with a clear error")
	}
}
