package port

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cloudless/internal/hcl"
)

// renderOptimized compacts homogeneous fleets into count form before
// rendering: resources of the same type whose attributes are identical
// except for a shared "<prefix><index><suffix>" pattern become one block
// with count and ${count.index} templates — the compact structure the paper
// says ported programs should use instead of "a straight enumeration of all
// resources one by one". The returned renames map original block addresses
// to the compacted instance addresses so the generated state stays aligned
// with the generated program.
func renderOptimized(blocks []*resBlock) (*hcl.File, map[string]string) {
	f := &hcl.File{Body: &hcl.Body{}}
	renames := map[string]string{}
	for _, item := range compactBlocks(blocks, renames) {
		f.Body.Blocks = append(f.Body.Blocks, item)
	}
	return f, renames
}

// compactBlocks groups compatible blocks and emits count-form blocks where
// possible, preserving deterministic order. Address renames for compacted
// members are recorded into renames when it is non-nil.
func compactBlocks(blocks []*resBlock, renames map[string]string) []*hcl.Block {
	type groupKey struct {
		typ   string
		attrs string
	}
	groups := map[groupKey][]*resBlock{}
	var keyOrder []groupKey
	for _, b := range blocks {
		names := append([]string(nil), b.order...)
		sort.Strings(names)
		k := groupKey{typ: b.typ, attrs: strings.Join(names, ",")}
		if _, seen := groups[k]; !seen {
			keyOrder = append(keyOrder, k)
		}
		groups[k] = append(groups[k], b)
	}
	sort.Slice(keyOrder, func(i, j int) bool {
		if keyOrder[i].typ != keyOrder[j].typ {
			return keyOrder[i].typ < keyOrder[j].typ
		}
		return keyOrder[i].attrs < keyOrder[j].attrs
	})

	var out []*hcl.Block
	for _, k := range keyOrder {
		members := groups[k]
		if len(members) < 2 {
			out = append(out, plainBlock(members[0]))
			continue
		}
		if blk, order, ok := compactToCount(members); ok {
			out = append(out, blk)
			if renames != nil {
				for i, m := range order {
					renames[m.addr] = fmt.Sprintf("%s.%s[%d]", m.typ, blk.Labels[1], i)
				}
			}
			continue
		}
		for _, m := range members {
			out = append(out, plainBlock(m))
		}
	}
	return out
}

func plainBlock(b *resBlock) *hcl.Block {
	blk := hcl.NewBlock("resource", b.typ, b.name)
	for _, attr := range b.order {
		blk.Body.SetAttr(attr, b.attrs[attr])
	}
	return blk
}

// indexedPattern captures "<prefix><int><suffix>" decomposition.
type indexedPattern struct {
	prefix, suffix string
	index          int
}

// decomposeIndexed splits a string at its last integer run.
func decomposeIndexed(s string) (indexedPattern, bool) {
	end := -1
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] >= '0' && s[i] <= '9' {
			end = i + 1
			break
		}
	}
	if end < 0 {
		return indexedPattern{}, false
	}
	start := end
	for start > 0 && s[start-1] >= '0' && s[start-1] <= '9' {
		start--
	}
	n, err := strconv.Atoi(s[start:end])
	if err != nil {
		return indexedPattern{}, false
	}
	return indexedPattern{prefix: s[:start], suffix: s[end:], index: n}, true
}

// compactToCount attempts to merge the member blocks into one count-form
// block, also returning the members in index order. All attributes must
// either be identical across members or be string literals following one
// shared indexed pattern whose indices are a permutation of 0..n-1.
func compactToCount(members []*resBlock) (*hcl.Block, []*resBlock, bool) {
	n := len(members)
	attrNames := members[0].order

	// Find the ordering attribute: the first attr whose literals decompose
	// into a consistent indexed pattern covering 0..n-1.
	var orderIdx []int // position in members -> index value
	for _, attr := range attrNames {
		idxs, ok := consistentIndexes(members, attr)
		if !ok {
			continue
		}
		orderIdx = idxs
		break
	}
	if orderIdx == nil {
		return nil, nil, false
	}
	// Order members by their index value.
	ordered := make([]*resBlock, n)
	for pos, idx := range orderIdx {
		if idx < 0 || idx >= n || ordered[idx] != nil {
			return nil, nil, false
		}
		ordered[idx] = members[pos]
	}

	blk := hcl.NewBlock("resource", members[0].typ, countGroupName(ordered[0]))
	blk.Body.SetAttr("count", hcl.NewLiteral(n))
	for _, attr := range attrNames {
		expr, ok := countAttrExpr(ordered, attr)
		if !ok {
			return nil, nil, false
		}
		blk.Body.SetAttr(attr, expr)
	}
	return blk, ordered, true
}

// consistentIndexes checks whether attr decomposes across members into one
// shared prefix/suffix with distinct indexes, returning them.
func consistentIndexes(members []*resBlock, attr string) ([]int, bool) {
	var prefix, suffix string
	idxs := make([]int, len(members))
	seen := map[int]bool{}
	for i, m := range members {
		lit, ok := m.attrs[attr].(*hcl.LiteralExpr)
		if !ok {
			return nil, false
		}
		s, ok := lit.Val.(string)
		if !ok {
			return nil, false
		}
		p, ok := decomposeIndexed(s)
		if !ok {
			return nil, false
		}
		if i == 0 {
			prefix, suffix = p.prefix, p.suffix
		} else if p.prefix != prefix || p.suffix != suffix {
			return nil, false
		}
		if seen[p.index] {
			return nil, false
		}
		seen[p.index] = true
		idxs[i] = p.index
	}
	for i := range members {
		if !seen[i] {
			return nil, false // indexes must cover 0..n-1
		}
	}
	return idxs, true
}

// countAttrExpr builds the attribute expression for the compacted block:
// either the shared constant or a "${prefix}${count.index}${suffix}"
// template.
func countAttrExpr(ordered []*resBlock, attr string) (hcl.Expression, bool) {
	first := hcl.FormatExpr(ordered[0].attrs[attr])
	allEqual := true
	for _, m := range ordered[1:] {
		if hcl.FormatExpr(m.attrs[attr]) != first {
			allEqual = false
			break
		}
	}
	if allEqual {
		return ordered[0].attrs[attr], true
	}
	// Must follow the indexed pattern in member order.
	var prefix, suffix string
	for i, m := range ordered {
		lit, ok := m.attrs[attr].(*hcl.LiteralExpr)
		if !ok {
			return nil, false
		}
		s, ok := lit.Val.(string)
		if !ok {
			return nil, false
		}
		p, ok := decomposeIndexed(s)
		if !ok || p.index != i {
			return nil, false
		}
		if i == 0 {
			prefix, suffix = p.prefix, p.suffix
		} else if p.prefix != prefix || p.suffix != suffix {
			return nil, false
		}
	}
	parts := []hcl.Expression{}
	if prefix != "" {
		parts = append(parts, hcl.NewLiteral(prefix))
	}
	parts = append(parts, hcl.NewTraversalExpr("count", "index"))
	if suffix != "" {
		parts = append(parts, hcl.NewLiteral(suffix))
	}
	return &hcl.TemplateExpr{Parts: parts}, true
}

// countGroupName derives the block name for a compacted group from the
// zero-index member, stripping its trailing index.
func countGroupName(first *resBlock) string {
	if p, ok := decomposeIndexed(first.name); ok {
		name := strings.Trim(p.prefix+p.suffix, "_-")
		if name != "" {
			return name
		}
	}
	return first.name
}

// --- module extraction ------------------------------------------------------

// renderWithModules first extracts repeated closed components into modules,
// then compacts what remains. The renames map records how every original
// block address moved (into a module instance or a count index) so the
// generated state can be rewritten to match.
func renderWithModules(blocks []*resBlock) (*hcl.File, map[string]string, map[string]string) {
	comps := components(blocks)

	// Group components by structural signature.
	bySig := map[string][][]*resBlock{}
	var sigOrder []string
	for _, comp := range comps {
		sig, ok := componentSignature(comp)
		if !ok {
			sig = fmt.Sprintf("opaque-%s", comp[0].addr)
		}
		if _, seen := bySig[sig]; !seen {
			sigOrder = append(sigOrder, sig)
		}
		bySig[sig] = append(bySig[sig], comp)
	}
	sort.Strings(sigOrder)

	f := &hcl.File{Body: &hcl.Body{}}
	moduleFiles := map[string]string{}
	renames := map[string]string{}
	modCount := 0

	var leftover []*resBlock
	for _, sig := range sigOrder {
		group := bySig[sig]
		if len(group) < 2 || strings.HasPrefix(sig, "opaque-") || len(group[0]) < 2 {
			for _, comp := range group {
				leftover = append(leftover, comp...)
			}
			continue
		}
		modName := fmt.Sprintf("stack_%d", modCount)
		modCount++
		modSrc, calls := extractModule(modName, group)
		moduleFiles["modules/"+modName+"/main.ccl"] = modSrc
		f.Body.Blocks = append(f.Body.Blocks, calls...)
		for i, comp := range group {
			for _, b := range comp {
				renames[b.addr] = fmt.Sprintf("module.%s_%d.%s.%s", modName, i, b.typ, shortName(b.typ))
			}
		}
	}
	for _, blk := range compactBlocks(sortBlocks(leftover), renames) {
		f.Body.Blocks = append(f.Body.Blocks, blk)
	}
	return f, moduleFiles, renames
}

func sortBlocks(blocks []*resBlock) []*resBlock {
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].addr < blocks[j].addr })
	return blocks
}

// components computes connected components of the reference graph.
func components(blocks []*resBlock) [][]*resBlock {
	byAddr := map[string]*resBlock{}
	for _, b := range blocks {
		byAddr[b.addr] = b
	}
	adj := map[string]map[string]bool{}
	link := func(a, b string) {
		if adj[a] == nil {
			adj[a] = map[string]bool{}
		}
		adj[a][b] = true
	}
	for _, b := range blocks {
		for _, ref := range blockRefs(b) {
			if _, ok := byAddr[ref]; ok {
				link(b.addr, ref)
				link(ref, b.addr)
			}
		}
	}
	seen := map[string]bool{}
	var comps [][]*resBlock
	for _, b := range sortBlocks(append([]*resBlock(nil), blocks...)) {
		if seen[b.addr] {
			continue
		}
		var comp []*resBlock
		stack := []string{b.addr}
		seen[b.addr] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, byAddr[cur])
			for next := range adj[cur] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		comps = append(comps, sortBlocks(comp))
	}
	return comps
}

// blockRefs lists the addresses a block's expressions reference.
func blockRefs(b *resBlock) []string {
	set := map[string]bool{}
	for _, expr := range b.attrs {
		for _, tr := range expr.Variables() {
			root := tr.RootName()
			if !strings.Contains(root, "_") || len(tr) < 2 {
				continue
			}
			if a, ok := tr[1].(hcl.TraverseAttr); ok {
				set[root+"."+a.Name] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// componentSignature canonicalizes a component's structure. Extraction
// requires each type to appear exactly once in the component so matching
// across components is unambiguous.
func componentSignature(comp []*resBlock) (string, bool) {
	typeCount := map[string]int{}
	for _, b := range comp {
		typeCount[b.typ]++
	}
	for _, c := range typeCount {
		if c > 1 {
			return "", false
		}
	}
	byType := map[string]*resBlock{}
	var types []string
	for _, b := range comp {
		byType[b.typ] = b
		types = append(types, b.typ)
	}
	sort.Strings(types)
	var sb strings.Builder
	for _, t := range types {
		b := byType[t]
		names := append([]string(nil), b.order...)
		sort.Strings(names)
		fmt.Fprintf(&sb, "%s(%s)", t, strings.Join(names, ","))
		// Reference shape: which types this block references.
		var refTypes []string
		for _, ref := range blockRefs(b) {
			refTypes = append(refTypes, strings.SplitN(ref, ".", 2)[0])
		}
		sort.Strings(refTypes)
		fmt.Fprintf(&sb, "->[%s];", strings.Join(refTypes, ","))
	}
	return sb.String(), true
}

// extractModule builds the module source for a group of isomorphic
// components, plus one module call per component. Attributes that are
// identical across all components stay literal in the module; differing
// attributes become module variables.
func extractModule(modName string, group [][]*resBlock) (string, []*hcl.Block) {
	rep := group[0]
	byTypeAll := make([]map[string]*resBlock, len(group))
	for i, comp := range group {
		byTypeAll[i] = map[string]*resBlock{}
		for _, b := range comp {
			byTypeAll[i][b.typ] = b
		}
	}

	modFile := &hcl.File{Body: &hcl.Body{}}
	type varSpec struct {
		name   string
		values []hcl.Expression // per component
	}
	var vars []varSpec

	for _, repBlock := range rep {
		// Internal references keep the representative's names; normalize
		// names to short type-derived ones.
		blk := hcl.NewBlock("resource", repBlock.typ, shortName(repBlock.typ))
		for _, attr := range repBlock.order {
			allEqual := true
			first := hcl.FormatExpr(repBlock.attrs[attr])
			for i := 1; i < len(group); i++ {
				other := byTypeAll[i][repBlock.typ]
				if hcl.FormatExpr(other.attrs[attr]) != first {
					allEqual = false
					break
				}
			}
			// Reference expressions are rewritten to module-local names.
			expr := repBlock.attrs[attr]
			if isRefExpr(expr) {
				blk.Body.SetAttr(attr, rewriteRefs(expr, rep))
				continue
			}
			if allEqual {
				blk.Body.SetAttr(attr, expr)
				continue
			}
			vName := shortName(repBlock.typ) + "_" + attr
			values := make([]hcl.Expression, len(group))
			for i := range group {
				values[i] = byTypeAll[i][repBlock.typ].attrs[attr]
			}
			vars = append(vars, varSpec{name: vName, values: values})
			blk.Body.SetAttr(attr, hcl.NewTraversalExpr("var", vName))
		}
		modFile.Body.Blocks = append(modFile.Body.Blocks, blk)
	}

	// Variable declarations at the top of the module.
	var varBlocks []*hcl.Block
	for _, v := range vars {
		vb := hcl.NewBlock("variable", v.name)
		varBlocks = append(varBlocks, vb)
	}
	modFile.Body.Blocks = append(varBlocks, modFile.Body.Blocks...)

	// Module calls.
	var calls []*hcl.Block
	for i := range group {
		call := hcl.NewBlock("module", fmt.Sprintf("%s_%d", modName, i))
		call.Body.SetAttr("source", hcl.NewLiteral("./modules/"+modName))
		for _, v := range vars {
			call.Body.SetAttr(v.name, v.values[i])
		}
		calls = append(calls, call)
	}
	return hcl.Format(modFile), calls
}

func isRefExpr(e hcl.Expression) bool {
	for _, tr := range e.Variables() {
		if strings.Contains(tr.RootName(), "_") {
			return true
		}
	}
	return false
}

// rewriteRefs renames component-internal references to the module's
// normalized block names.
func rewriteRefs(e hcl.Expression, comp []*resBlock) hcl.Expression {
	rename := map[string]string{} // addr -> new name
	for _, b := range comp {
		rename[b.addr] = shortName(b.typ)
	}
	switch t := e.(type) {
	case *hcl.ScopeTraversalExpr:
		tr := t.Traversal
		if len(tr) >= 2 {
			root := tr.RootName()
			if a, ok := tr[1].(hcl.TraverseAttr); ok {
				if newName, ok := rename[root+"."+a.Name]; ok {
					out := append(hcl.Traversal{hcl.TraverseRoot{Name: root}, hcl.TraverseAttr{Name: newName}}, tr[2:]...)
					return &hcl.ScopeTraversalExpr{Traversal: out}
				}
			}
		}
		return t
	case *hcl.TupleExpr:
		items := make([]hcl.Expression, len(t.Items))
		for i, it := range t.Items {
			items[i] = rewriteRefs(it, comp)
		}
		return &hcl.TupleExpr{Items: items}
	default:
		return e
	}
}

func shortName(typ string) string {
	if i := strings.Index(typ, "_"); i >= 0 {
		return typ[i+1:]
	}
	return typ
}
