package port

import (
	"strings"

	"cloudless/internal/hcl"
)

// QualityMetrics quantify generated-program quality — the paper's open
// question "how should we formally define and quantify these code metrics?"
// answered with concrete, comparable numbers.
type QualityMetrics struct {
	// Lines of generated CCL across all files.
	Lines int
	// Blocks is the number of resource + module blocks.
	Blocks int
	// ResourceInstances is how many cloud resources the program describes
	// (the denominator for compaction).
	ResourceInstances int
	// CompactionRatio = ResourceInstances / Blocks; 1.0 means straight
	// enumeration, higher is more compact.
	CompactionRatio float64
	// ReferenceRatio is the fraction of inter-resource links expressed as
	// references rather than hard-coded IDs, in [0,1].
	ReferenceRatio float64
	// HardcodedIDs counts remaining literal cloud IDs.
	HardcodedIDs int
	// References counts expression references between resources.
	References int
	// ModuleCount is the number of extracted modules.
	ModuleCount int
}

// MeasureFiles computes metrics over generated sources.
func MeasureFiles(files map[string]string, resourceInstances int) QualityMetrics {
	m := QualityMetrics{ResourceInstances: resourceInstances}
	modules := map[string]bool{}
	for name, src := range files {
		m.Lines += strings.Count(src, "\n")
		f, diags := hcl.Parse(name, src)
		if diags.HasErrors() {
			continue
		}
		for _, blk := range f.Body.Blocks {
			switch blk.Type {
			case "resource":
				m.Blocks++
				countRefs(&m, blk)
			case "module":
				m.Blocks++
				if src := blk.Body.Attribute("source"); src != nil {
					if lit, ok := src.Expr.(*hcl.LiteralExpr); ok {
						if s, ok := lit.Val.(string); ok {
							modules[s] = true
						}
					}
				}
			case "variable", "output", "locals", "provider":
				// declarations are not counted as blocks for compaction
			}
		}
	}
	m.ModuleCount = len(modules)
	if m.Blocks > 0 {
		m.CompactionRatio = float64(resourceInstances) / float64(m.Blocks)
	}
	if total := m.References + m.HardcodedIDs; total > 0 {
		m.ReferenceRatio = float64(m.References) / float64(total)
	} else {
		m.ReferenceRatio = 1
	}
	return m
}

// countRefs tallies reference expressions vs hard-coded cloud IDs inside a
// resource block.
func countRefs(m *QualityMetrics, blk *hcl.Block) {
	var walkExpr func(e hcl.Expression)
	walkExpr = func(e hcl.Expression) {
		switch t := e.(type) {
		case *hcl.LiteralExpr:
			if s, ok := t.Val.(string); ok && looksLikeCloudID(s) {
				m.HardcodedIDs++
			}
		case *hcl.TupleExpr:
			for _, it := range t.Items {
				walkExpr(it)
			}
		case *hcl.TemplateExpr:
			for _, p := range t.Parts {
				walkExpr(p)
			}
		case *hcl.ScopeTraversalExpr:
			root := t.Traversal.RootName()
			if strings.Contains(root, "_") {
				m.References++
			}
		}
	}
	for _, attr := range blk.Body.Attributes {
		walkExpr(attr.Expr)
	}
}

// looksLikeCloudID matches the simulator's "<shorttype>-<8 digits>" IDs.
func looksLikeCloudID(s string) bool {
	i := strings.LastIndexByte(s, '-')
	if i <= 0 || len(s)-i-1 != 8 {
		return false
	}
	for _, c := range s[i+1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
