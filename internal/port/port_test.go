package port

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/plan"
	"cloudless/internal/policy"
	"cloudless/internal/state"
)

func newSim() *cloud.Sim {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	return cloud.NewSim(opts)
}

// populateFleet creates a VPC, a subnet, and n uniformly-named NICs
// directly through the cloud API (non-IaC infrastructure).
func populateFleet(t *testing.T, sim *cloud.Sim, n int) {
	t.Helper()
	ctx := context.Background()
	vpc, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_vpc", Region: "us-east-1",
		Attrs: map[string]eval.Value{"name": eval.String("legacy-net"), "cidr_block": eval.String("10.0.0.0/16")}})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_subnet", Region: "us-east-1",
		Attrs: map[string]eval.Value{"vpc_id": eval.String(vpc.ID), "cidr_block": eval.String("10.0.1.0/24")}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_network_interface", Region: "us-east-1",
			Attrs: map[string]eval.Value{
				"name":      eval.String(fmt.Sprintf("web-nic-%d", i)),
				"subnet_id": eval.String(sub.ID),
			}})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestImportNaive(t *testing.T) {
	sim := newSim()
	populateFleet(t, sim, 3)
	res, err := Import(context.Background(), sim, ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := res.Files["main.ccl"]
	// Every resource appears; references are linked, not hard-coded.
	if got := strings.Count(src, `resource "aws_network_interface"`); got != 3 {
		t.Errorf("nic blocks = %d\n%s", got, src)
	}
	if !strings.Contains(src, "aws_vpc.legacy_net.id") {
		t.Errorf("vpc reference not linked:\n%s", src)
	}
	if strings.Contains(src, `vpc_id     = "vpc-`) || strings.Contains(src, `vpc_id = "vpc-`) {
		t.Errorf("hard-coded vpc id remains:\n%s", src)
	}
	// Computed attrs pruned.
	if strings.Contains(src, "mac_address") || strings.Contains(src, `id = "`) {
		t.Errorf("computed attributes not pruned:\n%s", src)
	}
	// Default-valued attrs pruned.
	if strings.Contains(src, "enable_dns") {
		t.Errorf("default attribute not pruned:\n%s", src)
	}
	// State recorded with dependencies.
	if res.State.Len() != 5 {
		t.Errorf("state len = %d", res.State.Len())
	}
	// Metrics.
	if res.Metrics.ReferenceRatio < 0.99 {
		t.Errorf("reference ratio = %f", res.Metrics.ReferenceRatio)
	}
}

// TestImportedProgramPlansClean is the import fidelity property: planning
// the generated program against the generated state must be a no-op.
func TestImportedProgramPlansClean(t *testing.T) {
	sim := newSim()
	populateFleet(t, sim, 3)
	res, err := Import(context.Background(), sim, ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, diags := config.Load(res.Files)
	if diags.HasErrors() {
		t.Fatalf("generated program does not load: %s\n%s", diags.Error(), res.Files["main.ccl"])
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	p, diags := plan.Compute(context.Background(), ex, res.State, plan.Options{})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	if p.PendingCount() != 0 {
		for a, c := range p.Changes {
			if c.Action != plan.ActionNoop {
				t.Logf("%s -> %s (%v)", a, c.Action, c.ChangedAttrs)
			}
		}
		t.Fatalf("imported program is not a fixpoint: %s", p.Summary())
	}
}

func TestImportCountCompaction(t *testing.T) {
	sim := newSim()
	populateFleet(t, sim, 8)
	res, err := Import(context.Background(), sim, ImportOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	src := res.Files["main.ccl"]
	// Eight NICs compact into one count-form block.
	if got := strings.Count(src, `resource "aws_network_interface"`); got != 1 {
		t.Fatalf("nic blocks = %d, want 1:\n%s", got, src)
	}
	if !strings.Contains(src, "count") || !strings.Contains(src, "${count.index}") {
		t.Errorf("count form missing:\n%s", src)
	}
	// Compaction ratio: 10 resources in 3 blocks.
	if res.Metrics.CompactionRatio < 3 {
		t.Errorf("compaction ratio = %f\n%s", res.Metrics.CompactionRatio, src)
	}
	// The compacted program still loads, expands to 10 instances, and is
	// deployable.
	m, diags := config.Load(res.Files)
	if diags.HasErrors() {
		t.Fatalf("%s\n%s", diags.Error(), src)
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	if len(ex.Instances) != 10 {
		t.Errorf("expanded to %d instances, want 10", len(ex.Instances))
	}
	// Deploy the compacted program to a FRESH cloud to prove executability.
	sim2 := newSim()
	p, diags := plan.Compute(context.Background(), ex, state.New(), plan.Options{})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	ares := apply.Apply(context.Background(), sim2, p, apply.Options{})
	if err := ares.Err(); err != nil {
		t.Fatalf("compacted program not deployable: %s", err)
	}
}

func TestImportModuleExtraction(t *testing.T) {
	sim := newSim()
	ctx := context.Background()
	// Three identical "stacks": vpc + subnet, in different CIDRs.
	for i := 0; i < 3; i++ {
		vpc, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_vpc", Region: "us-east-1",
			Attrs: map[string]eval.Value{
				"name":       eval.String(fmt.Sprintf("tenant-%d", i)),
				"cidr_block": eval.String(fmt.Sprintf("10.%d.0.0/16", i)),
			}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_subnet", Region: "us-east-1",
			Attrs: map[string]eval.Value{
				"vpc_id":     eval.String(vpc.ID),
				"cidr_block": eval.String(fmt.Sprintf("10.%d.1.0/24", i)),
			}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Import(ctx, sim, ImportOptions{ExtractModules: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ModuleCount != 1 {
		t.Fatalf("modules = %d\nfiles: %v\n%s", res.Metrics.ModuleCount,
			fileNames(res.Files), res.Files["main.ccl"])
	}
	main := res.Files["main.ccl"]
	if got := strings.Count(main, `module "stack_0_`); got != 3 {
		t.Errorf("module calls = %d\n%s", got, main)
	}
	// The modular program loads and expands through the module resolver.
	resolver := config.MapResolver{}
	for name, src := range res.Files {
		if strings.HasPrefix(name, "modules/") {
			dir := strings.TrimSuffix(name, "/main.ccl")
			resolver["./"+dir] = map[string]string{"main.ccl": src}
		}
	}
	m, diags := config.Load(map[string]string{"main.ccl": main})
	if diags.HasErrors() {
		t.Fatalf("%s\n%s", diags.Error(), main)
	}
	ex, diags := config.Expand(m, nil, resolver)
	if diags.HasErrors() {
		t.Fatalf("%s\n%s", diags.Error(), main)
	}
	if len(ex.Instances) != 6 {
		t.Errorf("instances = %d, want 6", len(ex.Instances))
	}
}

func fileNames(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestQualityMetricsComparison(t *testing.T) {
	// The E9 shape: optimized output is strictly more compact.
	sim := newSim()
	populateFleet(t, sim, 12)
	naive, err := Import(context.Background(), sim, ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Import(context.Background(), sim, ImportOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Metrics.Lines >= naive.Metrics.Lines {
		t.Errorf("optimized %d lines >= naive %d lines", opt.Metrics.Lines, naive.Metrics.Lines)
	}
	if opt.Metrics.CompactionRatio <= naive.Metrics.CompactionRatio {
		t.Errorf("compaction %f <= %f", opt.Metrics.CompactionRatio, naive.Metrics.CompactionRatio)
	}
}

func TestSynthesizeWebService(t *testing.T) {
	files, err := Synthesize(SynthSpec{
		Name: "shop", Template: "web-service", VMCount: 3,
		WithDatabase: true, WithLoadBalancer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := files["main.ccl"]
	for _, want := range []string{"aws_vpc", "aws_subnet", "aws_virtual_machine",
		"aws_load_balancer", "aws_database_instance", "cidrsubnet"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %s:\n%s", want, src)
		}
	}
	// The synthesized program deploys end to end.
	sim := newSim()
	m, diags := config.Load(files)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	p, diags := plan.Compute(context.Background(), ex, state.New(), plan.Options{})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	res := apply.Apply(context.Background(), sim, p, apply.Options{})
	if err := res.Err(); err != nil {
		t.Fatalf("synthesized program failed to deploy: %s", err)
	}
	if len(res.Outputs["vm_ids"].AsList()) != 3 {
		t.Errorf("vm_ids = %v", res.Outputs["vm_ids"])
	}
}

func TestSynthesizeVPNMesh(t *testing.T) {
	files, err := Synthesize(SynthSpec{Name: "edge", Template: "vpn-mesh", TunnelCount: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(files["main.ccl"], "aws_vpn_tunnel") {
		t.Errorf("%s", files["main.ccl"])
	}
}

func TestSynthesizeUnknownTemplate(t *testing.T) {
	if _, err := Synthesize(SynthSpec{Template: "quantum-cluster"}); err == nil {
		t.Fatal("unknown template accepted")
	}
}

func TestDecomposeIndexed(t *testing.T) {
	cases := []struct {
		in     string
		prefix string
		suffix string
		idx    int
		ok     bool
	}{
		{"web-nic-3", "web-nic-", "", 3, true},
		{"10.2.0.0/16", "10.2.0.0/", "", 16, true}, // splits at the LAST int run
		{"nothing", "", "", 0, false},
		{"n7x", "n", "x", 7, true},
	}
	for _, c := range cases {
		p, ok := decomposeIndexed(c.in)
		if !ok && c.ok {
			t.Errorf("decompose(%q) failed", c.in)
			continue
		}
		if ok && c.ok && (p.prefix != c.prefix || p.suffix != c.suffix || p.index != c.idx) {
			t.Errorf("decompose(%q) = %+v", c.in, p)
		}
	}
}

// TestSynthesizeWithConventions verifies corpus personalization: the
// generator adopts the organization's dominant instance type instead of
// the library default.
func TestSynthesizeWithConventions(t *testing.T) {
	corpusSrc := `
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.v.id
  cidr_block = "10.0.1.0/24"
}
`
	for i := 0; i < 6; i++ {
		corpusSrc += fmt.Sprintf(`
resource "aws_network_interface" "n%[1]d" {
  name      = "n-%[1]d"
  subnet_id = aws_subnet.s.id
}
resource "aws_virtual_machine" "vm%[1]d" {
  name          = "vm-%[1]d"
  instance_type = "m5.large"
  nic_ids       = [aws_network_interface.n%[1]d.id]
}
`, i)
	}
	m, diags := config.Load(map[string]string{"corpus.ccl": corpusSrc})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	corpus, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	ts := policy.NewTemplateSet()
	ts.Learn(corpus)

	files, err := Synthesize(SynthSpec{Name: "app", Template: "web-service", Conventions: ts})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(files["main.ccl"], `"m5.large"`) {
		t.Errorf("convention not applied:\n%s", files["main.ccl"])
	}
	// Without the corpus, the library default stands.
	plain, err := Synthesize(SynthSpec{Name: "app", Template: "web-service"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain["main.ccl"], `"m5.large"`) {
		t.Error("default generation should not use the corpus value")
	}
}

// TestImportFixpointAllModes: for every import mode, the generated program
// plus generated state must plan clean against the live cloud — the
// optimizer may restructure the program, but never its meaning.
func TestImportFixpointAllModes(t *testing.T) {
	sim := newSim()
	ctx := context.Background()
	// A mixed estate: repeated stacks (module candidates), a uniform fleet
	// (count candidate), and a singleton.
	for i := 0; i < 3; i++ {
		vpc, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_vpc", Region: "us-east-1",
			Attrs: map[string]eval.Value{
				"name":       eval.String(fmt.Sprintf("stack-%d", i)),
				"cidr_block": eval.String(fmt.Sprintf("10.%d.0.0/16", i)),
			}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_subnet", Region: "us-east-1",
			Attrs: map[string]eval.Value{
				"vpc_id":     eval.String(vpc.ID),
				"cidr_block": eval.String(fmt.Sprintf("10.%d.1.0/24", i)),
			}}); err != nil {
			t.Fatal(err)
		}
	}
	shared, _ := sim.Create(ctx, cloud.CreateRequest{Type: "aws_vpc", Region: "us-east-1",
		Attrs: map[string]eval.Value{"name": eval.String("shared"), "cidr_block": eval.String("10.200.0.0/16")}})
	sub, _ := sim.Create(ctx, cloud.CreateRequest{Type: "aws_subnet", Region: "us-east-1",
		Attrs: map[string]eval.Value{"vpc_id": eval.String(shared.ID), "cidr_block": eval.String("10.200.1.0/24")}})
	for i := 0; i < 5; i++ {
		if _, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_network_interface", Region: "us-east-1",
			Attrs: map[string]eval.Value{
				"name":      eval.String(fmt.Sprintf("fleet-%d", i)),
				"subnet_id": eval.String(sub.ID),
			}}); err != nil {
			t.Fatal(err)
		}
	}

	for _, mode := range []struct {
		name string
		opts ImportOptions
	}{
		{"naive", ImportOptions{}},
		{"optimized", ImportOptions{Optimize: true}},
		{"modules", ImportOptions{ExtractModules: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			res, err := Import(ctx, sim, mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			resolver := config.MapResolver{}
			mainSrc := map[string]string{}
			for name, src := range res.Files {
				if strings.HasPrefix(name, "modules/") {
					resolver["./"+strings.TrimSuffix(name, "/main.ccl")] = map[string]string{"main.ccl": src}
				} else {
					mainSrc[name] = src
				}
			}
			m, diags := config.Load(mainSrc)
			if diags.HasErrors() {
				t.Fatalf("%s\n%s", diags.Error(), res.Files["main.ccl"])
			}
			ex, diags := config.Expand(m, nil, resolver)
			if diags.HasErrors() {
				t.Fatal(diags.Error())
			}
			p, diags := plan.Compute(ctx, ex, res.State, plan.Options{Refresh: true, Cloud: sim})
			if diags.HasErrors() {
				t.Fatal(diags.Error())
			}
			if p.PendingCount() != 0 {
				for a, c := range p.Changes {
					if c.Action != plan.ActionNoop {
						t.Logf("%s -> %s (%v)", a, c.Action, c.ChangedAttrs)
					}
				}
				t.Fatalf("not a fixpoint: %s\n%s", p.Summary(), res.Files["main.ccl"])
			}
		})
	}
}
