// Package port implements §3.1: bringing existing, non-IaC infrastructure
// under IaC management, and generating IaC programs in the first place.
//
// The importer reads the live cloud and produces a CCL program plus the
// matching state. Unlike static-template porters (aztfy, terraformer), the
// output is then run through a program optimizer whose objective is code
// quality: computed and default attributes are pruned, hard-coded resource
// IDs become references, homogeneous fleets compact into count/for_each
// forms, and repeated structures are extracted into modules. The package
// also quantifies "quality" (the paper's open research question) with
// concrete metrics, and includes a deterministic template-based synthesizer
// standing in for LLM-based generation.
package port

import (
	"context"
	"fmt"
	"regexp"
	"sort"
	"strings"

	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	"cloudless/internal/hcl"
	"cloudless/internal/schema"
	"cloudless/internal/state"
)

// ImportOptions control an import.
type ImportOptions struct {
	// Providers restricts which providers to scan (default: all).
	Providers []string
	// Regions restricts which regions to scan (default: all of each
	// provider's regions).
	Regions []string
	// Optimize runs the refactoring optimizer on the generated program.
	Optimize bool
	// ExtractModules enables repeated-structure module extraction
	// (implies Optimize).
	ExtractModules bool
}

// ImportResult is the outcome of an import.
type ImportResult struct {
	// Files maps filename to generated CCL source ("main.ccl" plus one
	// file per extracted module under "modules/<name>/main.ccl").
	Files map[string]string
	// State maps the generated addresses to the live resources.
	State *state.State
	// APICalls spent scanning.
	APICalls int
	// Metrics quantify the generated program's quality.
	Metrics QualityMetrics
}

// importedResource is the working representation during porting.
type importedResource struct {
	res  *cloud.Resource
	addr string // generated "type.name"
	name string
	// attrs not yet pruned.
	attrs map[string]eval.Value
}

// Import scans the cloud and generates a CCL program plus state.
func Import(ctx context.Context, cl cloud.Interface, opts ImportOptions) (*ImportResult, error) {
	provs := opts.Providers
	if len(provs) == 0 {
		provs = schema.Providers()
	}
	var imported []*importedResource
	apiCalls := 0

	for _, provName := range provs {
		prov, ok := schema.LookupProvider(provName)
		if !ok {
			return nil, fmt.Errorf("port: unknown provider %q", provName)
		}
		regions := opts.Regions
		if len(regions) == 0 {
			regions = prov.Regions
		}
		types := make([]string, 0, len(prov.Resources))
		for typ, rs := range prov.Resources {
			if !rs.DataSource {
				types = append(types, typ)
			}
		}
		sort.Strings(types)
		for _, typ := range types {
			for _, region := range regions {
				list, err := cl.List(ctx, typ, region)
				apiCalls++
				if err != nil {
					return nil, fmt.Errorf("port: list %s in %s: %w", typ, region, err)
				}
				for _, res := range list {
					imported = append(imported, &importedResource{res: res, attrs: res.Attrs})
				}
			}
		}
	}

	assignNames(imported)

	result := &ImportResult{
		Files:    map[string]string{},
		State:    state.New(),
		APICalls: apiCalls,
	}

	idToAddr := map[string]string{}
	for _, ir := range imported {
		idToAddr[ir.res.ID] = ir.addr
	}

	// Build one block per resource: prune computed/default attributes and
	// link literal IDs into references.
	blocks := make([]*resBlock, 0, len(imported))
	for _, ir := range imported {
		blocks = append(blocks, buildBlock(ir, idToAddr))
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].addr < blocks[j].addr })

	var file *hcl.File
	var moduleFiles map[string]string
	renames := map[string]string{}
	switch {
	case opts.ExtractModules:
		file, moduleFiles, renames = renderWithModules(blocks)
	case opts.Optimize:
		file, renames = renderOptimized(blocks)
	default:
		file = renderNaive(blocks)
	}

	// State entries, with addresses rewritten to wherever the optimizer
	// moved each resource (count index or module instance), so the
	// generated program + state pair is a planning fixpoint.
	rename := func(addr string) string {
		if na, ok := renames[addr]; ok {
			return na
		}
		return addr
	}
	for _, ir := range imported {
		var deps []string
		for _, dep := range referencedAddrs(ir, idToAddr) {
			deps = append(deps, stripIndex(rename(dep)))
		}
		sort.Strings(deps)
		result.State.Set(&state.ResourceState{
			Addr: rename(ir.addr), Type: ir.res.Type, ID: ir.res.ID, Region: ir.res.Region,
			Attrs: ir.res.Attrs, Dependencies: deps,
			CreatedAt: ir.res.CreatedAt, UpdatedAt: ir.res.UpdatedAt,
		})
	}
	result.Files["main.ccl"] = hcl.Format(file)
	for name, src := range moduleFiles {
		result.Files[name] = src
	}
	result.Metrics = MeasureFiles(result.Files, len(imported))
	return result, nil
}

// assignNames gives each imported resource a readable, unique block name
// derived from its name attribute or cloud ID.
func assignNames(imported []*importedResource) {
	sort.Slice(imported, func(i, j int) bool { return imported[i].res.ID < imported[j].res.ID })
	used := map[string]bool{}
	for _, ir := range imported {
		base := ""
		if v, ok := ir.res.Attrs["name"]; ok && v.Kind() == eval.KindString {
			base = sanitizeName(v.AsString())
		}
		if base == "" {
			base = sanitizeName(ir.res.ID)
		}
		name := base
		for i := 2; used[ir.res.Type+"."+name]; i++ {
			name = fmt.Sprintf("%s_%d", base, i)
		}
		used[ir.res.Type+"."+name] = true
		ir.name = name
		ir.addr = ir.res.Type + "." + name
	}
}

// stripIndex reduces an instance address to its resource-level address.
func stripIndex(addr string) string {
	if i := strings.IndexByte(addr, '['); i >= 0 {
		return addr[:i]
	}
	return addr
}

var nonIdent = regexp.MustCompile(`[^a-zA-Z0-9_]+`)

func sanitizeName(s string) string {
	out := nonIdent.ReplaceAllString(s, "_")
	out = strings.Trim(out, "_")
	if out == "" {
		return "r"
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "r_" + out
	}
	return strings.ToLower(out)
}

// resBlock is a generated resource block before rendering.
type resBlock struct {
	typ   string
	name  string
	addr  string
	attrs map[string]hcl.Expression // pruned, linked
	order []string
}

// buildBlock prunes and links one resource.
func buildBlock(ir *importedResource, idToAddr map[string]string) *resBlock {
	rs, _ := schema.LookupResource(ir.res.Type)
	b := &resBlock{typ: ir.res.Type, name: ir.name, addr: ir.addr,
		attrs: map[string]hcl.Expression{}}
	names := make([]string, 0, len(ir.attrs))
	for n := range ir.attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, attr := range names {
		v := ir.attrs[attr]
		var as *schema.AttrSchema
		if rs != nil {
			as = rs.Attr(attr)
		}
		// Prune: computed attributes are reconstructed by the cloud, and
		// values equal to schema defaults are noise (§3.1: "many of its
		// cloud-level attributes could be removed when porting").
		if as != nil {
			if as.Computed {
				continue
			}
			if as.HasDefault && as.Default.Equal(v) {
				continue
			}
		}
		if v.IsNull() {
			continue
		}
		b.attrs[attr] = linkValue(v, idToAddr)
		b.order = append(b.order, attr)
	}
	return b
}

// linkValue converts literal cloud IDs into references to the imported
// resources that own them.
func linkValue(v eval.Value, idToAddr map[string]string) hcl.Expression {
	switch v.Kind() {
	case eval.KindString:
		if addr, ok := idToAddr[v.AsString()]; ok {
			parts := strings.SplitN(addr, ".", 2)
			return hcl.NewTraversalExpr(parts[0], parts[1], "id")
		}
		return hcl.NewLiteral(v.AsString())
	case eval.KindList:
		items := make([]hcl.Expression, 0, len(v.AsList()))
		for _, e := range v.AsList() {
			items = append(items, linkValue(e, idToAddr))
		}
		return hcl.NewTuple(items...)
	case eval.KindObject:
		obj := &hcl.ObjectExpr{}
		keys := make([]string, 0, len(v.AsObject()))
		for k := range v.AsObject() {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			obj.Items = append(obj.Items, hcl.ObjectItem{
				Key:   hcl.NewLiteral(k),
				Value: linkValue(v.AsObject()[k], idToAddr),
			})
		}
		return obj
	case eval.KindBool:
		return hcl.NewLiteral(v.AsBool())
	case eval.KindNumber:
		return hcl.NewLiteral(v.AsNumber())
	default:
		return hcl.NewLiteral(nil)
	}
}

// referencedAddrs lists the imported addresses a resource references.
func referencedAddrs(ir *importedResource, idToAddr map[string]string) []string {
	rs, ok := schema.LookupResource(ir.res.Type)
	if !ok {
		return nil
	}
	set := map[string]bool{}
	for attr, a := range rs.Attrs {
		if a.Semantic.Kind != schema.SemResourceRef {
			continue
		}
		v, exists := ir.res.Attrs[attr]
		if !exists {
			continue
		}
		for _, id := range stringsIn(v) {
			if addr, ok := idToAddr[id]; ok && addr != ir.addr {
				set[addr] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func stringsIn(v eval.Value) []string {
	switch v.Kind() {
	case eval.KindString:
		return []string{v.AsString()}
	case eval.KindList:
		var out []string
		for _, e := range v.AsList() {
			if e.Kind() == eval.KindString {
				out = append(out, e.AsString())
			}
		}
		return out
	default:
		return nil
	}
}

// renderNaive emits one block per resource, aztfy-style (but already pruned
// and linked).
func renderNaive(blocks []*resBlock) *hcl.File {
	f := &hcl.File{Body: &hcl.Body{}}
	for _, b := range blocks {
		blk := hcl.NewBlock("resource", b.typ, b.name)
		for _, attr := range b.order {
			blk.Body.SetAttr(attr, b.attrs[attr])
		}
		f.Body.Blocks = append(f.Body.Blocks, blk)
	}
	return f
}
