package port

import (
	"fmt"

	"cloudless/internal/config"
	"cloudless/internal/hcl"
	"cloudless/internal/policy"
	"cloudless/internal/schema"
	"cloudless/internal/validate"
)

// SynthSpec describes the infrastructure to synthesize. This deterministic,
// grammar-guided synthesizer stands in for the LLM-assisted generation of
// §3.1 (see DESIGN.md substitutions): what matters architecturally is the
// decomposition into component templates and the generate→validate loop
// that guarantees the emitted program passes compile-time validation.
type SynthSpec struct {
	// Name prefixes generated resource names.
	Name string
	// Template selects the shape: "web-service" or "vpn-mesh".
	Template string
	// Region places the infrastructure (default: provider default).
	Region string
	// VMCount sizes the web tier (default 2).
	VMCount int
	// WithDatabase adds a database to web-service.
	WithDatabase bool
	// WithLoadBalancer fronts the web tier with a load balancer.
	WithLoadBalancer bool
	// TunnelCount sizes vpn-mesh tunnels (default 2).
	TunnelCount int
	// Conventions, when set, personalizes generation to an organization's
	// existing programs: attributes the spec leaves open take the dominant
	// value learned from the corpus (≥80% share) instead of the library
	// default — the §3.1 idea of injecting the user's existing
	// infrastructure as context.
	Conventions *policy.TemplateSet
}

// Synthesize generates a CCL program for the spec and validates it before
// returning; generation bugs surface as errors here, never at deploy time.
func Synthesize(spec SynthSpec) (map[string]string, error) {
	if spec.Name == "" {
		spec.Name = "app"
	}
	if spec.VMCount <= 0 {
		spec.VMCount = 2
	}
	if spec.TunnelCount <= 0 {
		spec.TunnelCount = 2
	}
	if spec.Region == "" {
		spec.Region = "us-east-1"
	}

	var f *hcl.File
	switch spec.Template {
	case "", "web-service":
		f = synthWebService(spec)
	case "vpn-mesh":
		f = synthVPNMesh(spec)
	default:
		return nil, fmt.Errorf("port: unknown synthesis template %q", spec.Template)
	}
	if spec.Conventions != nil {
		applyConventions(f, spec.Conventions)
	}

	files := map[string]string{"main.ccl": hcl.Format(f)}

	// Generate → validate: the synthesizer's own output must load, expand,
	// and pass semantic validation.
	mod, diags := config.Load(files)
	if diags.HasErrors() {
		return nil, fmt.Errorf("port: synthesized program does not parse: %s", diags.Error())
	}
	ex, diags := config.Expand(mod, nil, nil)
	if diags.HasErrors() {
		return nil, fmt.Errorf("port: synthesized program does not expand: %s", diags.Error())
	}
	if res := validate.Validate(ex, nil); res.HasErrors() {
		return nil, fmt.Errorf("port: synthesized program fails validation: %s", res.Errors()[0].Error())
	}
	return files, nil
}

func lit(v any) *hcl.LiteralExpr { return hcl.NewLiteral(v) }

// applyConventions fills unset, non-required attributes of every generated
// resource with the corpus's dominant value when one exists with ≥80% share.
func applyConventions(f *hcl.File, ts *policy.TemplateSet) {
	const minShare = 0.8
	for _, blk := range f.Body.Blocks {
		if blk.Type != "resource" || len(blk.Labels) != 2 {
			continue
		}
		typ := blk.Labels[0]
		rs, ok := schema.LookupResource(typ)
		if !ok || ts.Samples(typ) == 0 {
			continue
		}
		for _, attrName := range rs.AttrNames() {
			a := rs.Attr(attrName)
			if a.Computed || a.Semantic.Kind == schema.SemResourceRef ||
				a.Semantic.Kind == schema.SemName || blk.Body.Attribute(attrName) != nil {
				continue
			}
			rendered, share, ok := ts.Convention(typ, attrName)
			if !ok || share < minShare {
				continue
			}
			expr, diags := hcl.ParseExpression("convention", rendered)
			if diags.HasErrors() {
				continue
			}
			blk.Body.SetAttr(attrName, expr)
		}
	}
}

func synthWebService(spec SynthSpec) *hcl.File {
	f := &hcl.File{Body: &hcl.Body{}}
	add := func(b *hcl.Block) { f.Body.Blocks = append(f.Body.Blocks, b) }

	prov := hcl.NewBlock("provider", "aws")
	prov.Body.SetAttr("region", lit(spec.Region))
	add(prov)

	nVar := hcl.NewBlock("variable", "vm_count")
	nVar.Body.SetAttr("type", lit("number"))
	nVar.Body.SetAttr("default", lit(spec.VMCount))
	add(nVar)

	vpc := hcl.NewBlock("resource", "aws_vpc", "net")
	vpc.Body.SetAttr("name", lit(spec.Name+"-net"))
	vpc.Body.SetAttr("cidr_block", lit("10.0.0.0/16"))
	add(vpc)

	subnet := hcl.NewBlock("resource", "aws_subnet", "app")
	subnet.Body.SetAttr("vpc_id", hcl.NewTraversalExpr("aws_vpc", "net", "id"))
	subnet.Body.SetAttr("cidr_block", &hcl.FunctionCallExpr{
		Name: "cidrsubnet",
		Args: []hcl.Expression{
			hcl.NewTraversalExpr("aws_vpc", "net", "cidr_block"), lit(8), lit(1),
		},
	})
	add(subnet)

	sg := hcl.NewBlock("resource", "aws_security_group", "web")
	sg.Body.SetAttr("name", lit(spec.Name+"-web"))
	sg.Body.SetAttr("vpc_id", hcl.NewTraversalExpr("aws_vpc", "net", "id"))
	sg.Body.SetAttr("ingress_ports", hcl.NewTuple(lit(80), lit(443)))
	add(sg)

	nic := hcl.NewBlock("resource", "aws_network_interface", "web")
	nic.Body.SetAttr("count", hcl.NewTraversalExpr("var", "vm_count"))
	nic.Body.SetAttr("name", &hcl.TemplateExpr{Parts: []hcl.Expression{
		lit(spec.Name + "-nic-"), hcl.NewTraversalExpr("count", "index"),
	}})
	nic.Body.SetAttr("subnet_id", hcl.NewTraversalExpr("aws_subnet", "app", "id"))
	nic.Body.SetAttr("security_group_ids", hcl.NewTuple(hcl.NewTraversalExpr("aws_security_group", "web", "id")))
	add(nic)

	vm := hcl.NewBlock("resource", "aws_virtual_machine", "web")
	vm.Body.SetAttr("count", hcl.NewTraversalExpr("var", "vm_count"))
	vm.Body.SetAttr("name", &hcl.TemplateExpr{Parts: []hcl.Expression{
		lit(spec.Name + "-web-"), hcl.NewTraversalExpr("count", "index"),
	}})
	vm.Body.SetAttr("nic_ids", hcl.NewTuple(&hcl.RelativeTraversalExpr{
		Source: &hcl.IndexExpr{
			Collection: hcl.NewTraversalExpr("aws_network_interface", "web"),
			Key:        hcl.NewTraversalExpr("count", "index"),
		},
		Traversal: hcl.Traversal{hcl.TraverseAttr{Name: "id"}},
	}))
	add(vm)

	if spec.WithLoadBalancer {
		lb := hcl.NewBlock("resource", "aws_load_balancer", "front")
		lb.Body.SetAttr("name", lit(spec.Name+"-lb"))
		lb.Body.SetAttr("subnet_ids", hcl.NewTuple(hcl.NewTraversalExpr("aws_subnet", "app", "id")))
		lb.Body.SetAttr("target_ids", &hcl.SplatExpr{
			Source: hcl.NewTraversalExpr("aws_virtual_machine", "web"),
			Each:   hcl.Traversal{hcl.TraverseAttr{Name: "id"}},
		})
		add(lb)
	}
	if spec.WithDatabase {
		db := hcl.NewBlock("resource", "aws_database_instance", "main")
		db.Body.SetAttr("name", lit(spec.Name+"-db"))
		db.Body.SetAttr("engine", lit("postgres"))
		db.Body.SetAttr("subnet_ids", hcl.NewTuple(hcl.NewTraversalExpr("aws_subnet", "app", "id")))
		add(db)
	}

	out := hcl.NewBlock("output", "vm_ids")
	out.Body.SetAttr("value", &hcl.SplatExpr{
		Source: hcl.NewTraversalExpr("aws_virtual_machine", "web"),
		Each:   hcl.Traversal{hcl.TraverseAttr{Name: "id"}},
	})
	add(out)
	return f
}

func synthVPNMesh(spec SynthSpec) *hcl.File {
	f := &hcl.File{Body: &hcl.Body{}}
	add := func(b *hcl.Block) { f.Body.Blocks = append(f.Body.Blocks, b) }

	prov := hcl.NewBlock("provider", "aws")
	prov.Body.SetAttr("region", lit(spec.Region))
	add(prov)

	tVar := hcl.NewBlock("variable", "tunnel_count")
	tVar.Body.SetAttr("type", lit("number"))
	tVar.Body.SetAttr("default", lit(spec.TunnelCount))
	add(tVar)

	vpc := hcl.NewBlock("resource", "aws_vpc", "hub")
	vpc.Body.SetAttr("name", lit(spec.Name+"-hub"))
	vpc.Body.SetAttr("cidr_block", lit("10.8.0.0/16"))
	add(vpc)

	gw := hcl.NewBlock("resource", "aws_vpn_gateway", "hub")
	gw.Body.SetAttr("vpc_id", hcl.NewTraversalExpr("aws_vpc", "hub", "id"))
	add(gw)

	tun := hcl.NewBlock("resource", "aws_vpn_tunnel", "mesh")
	tun.Body.SetAttr("count", hcl.NewTraversalExpr("var", "tunnel_count"))
	tun.Body.SetAttr("vpn_gateway_id", hcl.NewTraversalExpr("aws_vpn_gateway", "hub", "id"))
	tun.Body.SetAttr("peer_ip", &hcl.TemplateExpr{Parts: []hcl.Expression{
		lit("198.51.100."), hcl.NewTraversalExpr("count", "index"),
	}})
	add(tun)

	out := hcl.NewBlock("output", "tunnel_ids")
	out.Body.SetAttr("value", &hcl.SplatExpr{
		Source: hcl.NewTraversalExpr("aws_vpn_tunnel", "mesh"),
		Each:   hcl.Traversal{hcl.TraverseAttr{Name: "id"}},
	})
	add(out)
	return f
}
