package policy

import (
	"fmt"
	"sort"

	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/hcl"
)

// TemplateSet learns, per resource type and attribute, the distribution of
// configured values across a corpus of configurations. New programs are
// compared against the learned templates: a value that deviates from a
// dominant convention is flagged as an outlier — the §3.6 "turn policy
// writing into outlier detection" idea.
type TemplateSet struct {
	// counts: type -> attr -> rendered value -> occurrences.
	counts map[string]map[string]map[string]int
	// totals: type -> number of instances seen.
	totals map[string]int
}

// NewTemplateSet builds an empty template set.
func NewTemplateSet() *TemplateSet {
	return &TemplateSet{
		counts: map[string]map[string]map[string]int{},
		totals: map[string]int{},
	}
}

// Learn ingests every managed instance of an expansion.
func (ts *TemplateSet) Learn(ex *config.Expansion) {
	for _, inst := range ex.Instances {
		if inst.Mode != config.ManagedMode {
			continue
		}
		ts.totals[inst.Type]++
		for name, val := range staticInstanceAttrs(inst) {
			if !val.IsKnown() || val.IsNull() {
				continue
			}
			if ts.counts[inst.Type] == nil {
				ts.counts[inst.Type] = map[string]map[string]int{}
			}
			if ts.counts[inst.Type][name] == nil {
				ts.counts[inst.Type][name] = map[string]int{}
			}
			ts.counts[inst.Type][name][val.String()]++
		}
	}
}

// Corpus size for a type.
func (ts *TemplateSet) Samples(typ string) int { return ts.totals[typ] }

// Convention returns the dominant rendered value for (type, attr) and its
// share of the corpus, when one exists. The rendered form is valid CCL
// expression syntax, so generators can parse it straight back — this is how
// synthesis personalizes its output to an organization's existing programs
// (the paper's retrieval-augmented generation idea, §3.1).
func (ts *TemplateSet) Convention(typ, attr string) (value string, share float64, ok bool) {
	hist := ts.counts[typ][attr]
	if hist == nil {
		return "", 0, false
	}
	total, domCount := 0, 0
	for v, c := range hist {
		total += c
		if c > domCount || (c == domCount && v < value) {
			value, domCount = v, c
		}
	}
	if total == 0 {
		return "", 0, false
	}
	return value, float64(domCount) / float64(total), true
}

// Outlier is one deviation from a learned convention.
type Outlier struct {
	Addr string
	Type string
	Attr string
	// Value is the deviating value; Dominant is the corpus convention and
	// Share its frequency in [0,1].
	Value    string
	Dominant string
	Share    float64
	Range    hcl.Range
}

// String renders the outlier.
func (o Outlier) String() string {
	return fmt.Sprintf("%s: %s = %s deviates from the convention %s (%.0f%% of corpus)",
		o.Addr, o.Attr, o.Value, o.Dominant, o.Share*100)
}

// DetectOptions tune outlier detection.
type DetectOptions struct {
	// MinSamples is the minimum corpus size per type before conventions
	// are trusted (default 5).
	MinSamples int
	// DominanceThreshold is the minimum share a value needs to count as
	// the convention (default 0.8).
	DominanceThreshold float64
}

func (o DetectOptions) withDefaults() DetectOptions {
	if o.MinSamples <= 0 {
		o.MinSamples = 5
	}
	if o.DominanceThreshold <= 0 {
		o.DominanceThreshold = 0.8
	}
	return o
}

// Detect compares a new configuration against the learned templates.
func (ts *TemplateSet) Detect(ex *config.Expansion, opts DetectOptions) []Outlier {
	o := opts.withDefaults()
	var out []Outlier
	for _, inst := range ex.Instances {
		if inst.Mode != config.ManagedMode {
			continue
		}
		if ts.totals[inst.Type] < o.MinSamples {
			continue
		}
		attrs := staticInstanceAttrs(inst)
		for name, val := range attrs {
			if !val.IsKnown() || val.IsNull() {
				continue
			}
			hist := ts.counts[inst.Type][name]
			if hist == nil {
				continue
			}
			domVal, domCount := "", 0
			total := 0
			for v, c := range hist {
				total += c
				if c > domCount || (c == domCount && v < domVal) {
					domVal, domCount = v, c
				}
			}
			if total < o.MinSamples {
				continue
			}
			share := float64(domCount) / float64(total)
			if share < o.DominanceThreshold {
				continue // no convention to deviate from
			}
			if val.String() == domVal {
				continue
			}
			out = append(out, Outlier{
				Addr: inst.Addr, Type: inst.Type, Attr: name,
				Value: val.String(), Dominant: domVal, Share: share,
				Range: inst.AttrRange[name],
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// staticInstanceAttrs evaluates an instance's attributes with resource
// references treated as unknown, like the validator does.
func staticInstanceAttrs(inst *config.Instance) map[string]eval.Value {
	out := map[string]eval.Value{}
	for name, expr := range inst.Attrs {
		scope := inst.Scope.Child()
		for _, tr := range expr.Variables() {
			root := tr.RootName()
			if _, exists := scope.Lookup(root); !exists {
				scope.Variables[root] = eval.Unknown
			}
		}
		v, diags := eval.Evaluate(expr, scope)
		if diags.HasErrors() {
			out[name] = eval.Unknown
			continue
		}
		out[name] = v
	}
	return out
}
