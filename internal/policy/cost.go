package policy

import (
	"cloudless/internal/eval"
	"cloudless/internal/plan"
)

// Hourly base cost model in dollars, by resource type, mirroring the rough
// shape of public cloud pricing. Instance-size multipliers refine VMs and
// databases. Budget policies reason about these estimates.
var hourlyBase = map[string]float64{
	"aws_vpc":                 0,
	"aws_subnet":              0,
	"aws_internet_gateway":    0,
	"aws_route_table":         0,
	"aws_route":               0,
	"aws_security_group":      0,
	"aws_network_interface":   0.005,
	"aws_nat_gateway":         0.045,
	"aws_virtual_machine":     0.0104, // t3.micro base
	"aws_load_balancer":       0.0225,
	"aws_database_instance":   0.017, // db.t3.micro base
	"aws_storage_bucket":      0.003,
	"aws_vpn_gateway":         0.05,
	"aws_vpn_tunnel":          0.05,
	"aws_dns_record":          0.0007,
	"azure_resource_group":    0,
	"azure_virtual_network":   0,
	"azure_subnet":            0,
	"azure_network_interface": 0.004,
	"azure_public_ip":         0.005,
	"azure_virtual_machine":   0.0104, // Standard_B1s base
	"azure_vnet_peering":      0.01,
	"azure_storage_account":   0.002,
	"azure_sql_server":        0.02,
	"azure_vpn_gateway":       0.19,
}

var sizeMultiplier = map[string]float64{
	// AWS instance types.
	"t3.micro": 1, "t3.small": 2, "t3.medium": 4, "m5.large": 9.2, "m5.xlarge": 18.5, "c5.xlarge": 16.3,
	// Azure VM sizes.
	"Standard_B1s": 1, "Standard_B2s": 4, "Standard_D2s_v3": 9.2, "Standard_F4s": 19,
	// Database classes.
	"db.t3.micro": 1, "db.t3.medium": 4, "db.m5.large": 10,
	// VPN gateway SKUs.
	"VpnGw1": 1, "VpnGw2": 2.6, "VpnGw3": 6.6,
}

const hoursPerMonth = 730

// HourlyCost estimates one resource instance's hourly cost from its type
// and attributes.
func HourlyCost(typ string, attrs map[string]eval.Value) float64 {
	base := hourlyBase[typ]
	mult := 1.0
	for _, attr := range []string{"instance_type", "size", "instance_class", "sku"} {
		if v, ok := attrs[attr]; ok && v.Kind() == eval.KindString {
			if m, ok := sizeMultiplier[v.AsString()]; ok {
				mult = m
			}
		}
	}
	cost := base * mult
	// Storage scales with capacity.
	if v, ok := attrs["storage_gb"]; ok && v.Kind() == eval.KindNumber {
		cost += v.AsNumber() * 0.000158 // ~$0.115/GB-month
	}
	if v, ok := attrs["multi_az"]; ok && v.Kind() == eval.KindBool && v.AsBool() {
		cost *= 2
	}
	return cost
}

// EstimateMonthlyCost estimates the monthly cost of the infrastructure a
// plan produces: everything that will exist after apply (creates, updates,
// replaces, and untouched resources), excluding deletions.
func EstimateMonthlyCost(p *plan.Plan) float64 {
	total := 0.0
	for _, ch := range p.Changes {
		if ch.Action == plan.ActionDelete {
			continue
		}
		attrs := ch.After
		if ch.Action == plan.ActionNoop {
			attrs = ch.Before
		}
		total += HourlyCost(ch.Type, attrs) * hoursPerMonth
	}
	// Resources outside the plan's changes (e.g. out of an incremental
	// plan's scope) still cost money.
	if p.PriorState != nil {
		for _, addr := range p.PriorState.Addrs() {
			if _, covered := p.Changes[addr]; covered {
				continue
			}
			rs := p.PriorState.Get(addr)
			total += HourlyCost(rs.Type, rs.Attrs) * hoursPerMonth
		}
	}
	return total
}
