package policy

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/plan"
	"cloudless/internal/state"
)

func parseOK(t *testing.T, src string) []*Policy {
	t.Helper()
	ps, diags := ParsePolicies("policies.ccl", src)
	if diags.HasErrors() {
		t.Fatalf("parse: %s", diags.Error())
	}
	return ps
}

func planFor(t *testing.T, src string) *plan.Plan {
	t.Helper()
	m, diags := config.Load(map[string]string{"main.ccl": src})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	p, diags := plan.Compute(context.Background(), ex, state.New(), plan.Options{})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	return p
}

func TestParsePolicies(t *testing.T) {
	ps := parseOK(t, `
policy "budget" {
  phase = "plan"
  when  = plan.monthly_cost > 500
  deny { message = "cost ${plan.monthly_cost} over budget" }
}

policy "scale-out" {
  phase = "operate"
  when  = metric.vpn_utilization > 0.8
  scale {
    variable = "tunnel_count"
    delta    = 1
    max      = 8
  }
  notify { message = "scaling out tunnels" }
}
`)
	if len(ps) != 2 {
		t.Fatalf("got %d policies", len(ps))
	}
	if ps[0].Phase != PhasePlan || len(ps[0].Actions) != 1 || ps[0].Actions[0].Kind != ActionDeny {
		t.Errorf("policy 0 = %+v", ps[0])
	}
	if ps[1].Phase != PhaseOperate || len(ps[1].Actions) != 2 {
		t.Errorf("policy 1 = %+v", ps[1])
	}
	sc := ps[1].Actions[0]
	if sc.Variable != "tunnel_count" || sc.Delta != 1 || !sc.HasMax || sc.Max != 8 {
		t.Errorf("scale = %+v", sc)
	}
}

func TestParsePolicyErrors(t *testing.T) {
	cases := []string{
		`policy "p" { when = true
  deny {} }`, // missing phase
		`policy "p" { phase = "plan"
  deny {} }`, // missing when
		`policy "p" { phase = "bogus"
  when = true
  deny {} }`, // bad phase
		`policy "p" { phase = "plan"
  when = true }`, // no actions
		`policy "p" { phase = "plan"
  when = true
  explode {} }`, // unknown action
	}
	for i, src := range cases {
		if _, diags := ParsePolicies("p.ccl", src); !diags.HasErrors() {
			t.Errorf("case %d accepted: %s", i, src)
		}
	}
}

func TestBudgetPolicyDeniesExpensivePlan(t *testing.T) {
	ps := parseOK(t, `
policy "budget" {
  phase = "plan"
  when  = plan.monthly_cost > 100
  deny { message = "too expensive" }
}
`)
	eng := NewEngine(ps)

	cheap := planFor(t, `
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
`)
	decs, diags := eng.EvaluatePlan(cheap)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	if denied, _ := Denied(decs); denied {
		t.Error("cheap plan denied")
	}

	// A fleet of large VMs: m5.xlarge ~ $0.19/h * 10 * 730 ≈ $1400/mo.
	expensive := planFor(t, `
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.v.id
  cidr_block = "10.0.1.0/24"
}
resource "aws_network_interface" "n" {
  count     = 10
  name      = "n-${count.index}"
  subnet_id = aws_subnet.s.id
}
resource "aws_virtual_machine" "vm" {
  count         = 10
  name          = "vm-${count.index}"
  instance_type = "m5.xlarge"
  nic_ids       = [aws_network_interface.n[count.index].id]
}
`)
	decs, diags = eng.EvaluatePlan(expensive)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	denied, msg := Denied(decs)
	if !denied || msg != "too expensive" {
		t.Errorf("decisions = %+v", decs)
	}
}

func TestResourceCountPolicy(t *testing.T) {
	ps := parseOK(t, `
policy "no-nat-sprawl" {
  phase = "plan"
  when  = lookup(plan.resource_counts, "aws_nat_gateway", 0) > 2
  deny { message = "too many NAT gateways" }
}
`)
	eng := NewEngine(ps)
	p := planFor(t, `
resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }
resource "aws_subnet" "s" {
  vpc_id     = aws_vpc.v.id
  cidr_block = "10.0.1.0/24"
}
resource "aws_nat_gateway" "n" {
  count     = 3
  subnet_id = aws_subnet.s.id
}
`)
	decs, diags := eng.EvaluatePlan(p)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	if denied, _ := Denied(decs); !denied {
		t.Errorf("decisions = %+v", decs)
	}
}

// TestAutoscalingPolicy exercises the paper's own example: "scale out the
// number of VPN gateways and attached tunnels if traffic throughput is
// close to their capacity".
func TestAutoscalingPolicy(t *testing.T) {
	ps := parseOK(t, `
policy "vpn-scale-out" {
  phase = "operate"
  when  = metric.vpn_utilization > 0.8
  scale {
    variable = "tunnel_count"
    delta    = 1
    max      = 4
  }
}
policy "vpn-scale-in" {
  phase = "operate"
  when  = metric.vpn_utilization < 0.2
  scale {
    variable = "tunnel_count"
    delta    = -1
    min      = 1
  }
}
`)
	eng := NewEngine(ps)
	eng.Vars["tunnel_count"] = eval.Int(2)

	// High load scales out.
	decs, diags := eng.Observe(map[string]eval.Value{"vpn_utilization": eval.Number(0.93)})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	if len(decs) != 1 || decs[0].NewValue.AsInt() != 3 {
		t.Fatalf("decisions = %+v", decs)
	}
	// Engine state advanced.
	if eng.Vars["tunnel_count"].AsInt() != 3 {
		t.Error("variable not updated")
	}
	// Scaling clamps at max.
	eng.Observe(map[string]eval.Value{"vpn_utilization": eval.Number(0.95)})
	decs, _ = eng.Observe(map[string]eval.Value{"vpn_utilization": eval.Number(0.95)})
	if len(decs) != 0 {
		t.Errorf("scale past max produced decisions: %+v", decs)
	}
	if eng.Vars["tunnel_count"].AsInt() != 4 {
		t.Errorf("tunnel_count = %v", eng.Vars["tunnel_count"])
	}
	// Low load scales in, bounded at min.
	for i := 0; i < 6; i++ {
		eng.Observe(map[string]eval.Value{"vpn_utilization": eval.Number(0.05)})
	}
	if eng.Vars["tunnel_count"].AsInt() != 1 {
		t.Errorf("tunnel_count after scale-in = %v", eng.Vars["tunnel_count"])
	}
}

func TestSetVariablePolicy(t *testing.T) {
	ps := parseOK(t, `
policy "pin-large" {
  phase = "operate"
  when  = metric.p99_latency_ms > 250
  set_variable {
    name  = "instance_type"
    value = "m5.large"
  }
}
`)
	eng := NewEngine(ps)
	decs, diags := eng.Observe(map[string]eval.Value{"p99_latency_ms": eval.Int(400)})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	if len(decs) != 1 || decs[0].Variable != "instance_type" || decs[0].NewValue.AsString() != "m5.large" {
		t.Fatalf("decisions = %+v", decs)
	}
}

func TestHourlyCostModel(t *testing.T) {
	micro := HourlyCost("aws_virtual_machine", map[string]eval.Value{
		"instance_type": eval.String("t3.micro"),
	})
	xlarge := HourlyCost("aws_virtual_machine", map[string]eval.Value{
		"instance_type": eval.String("m5.xlarge"),
	})
	if xlarge <= micro*10 {
		t.Errorf("m5.xlarge (%f) should cost far more than t3.micro (%f)", xlarge, micro)
	}
	free := HourlyCost("aws_vpc", nil)
	if free != 0 {
		t.Errorf("vpc cost = %f", free)
	}
	db := HourlyCost("aws_database_instance", map[string]eval.Value{
		"instance_class": eval.String("db.t3.micro"),
		"storage_gb":     eval.Int(100),
		"multi_az":       eval.True,
	})
	dbSingle := HourlyCost("aws_database_instance", map[string]eval.Value{
		"instance_class": eval.String("db.t3.micro"),
		"storage_gb":     eval.Int(100),
	})
	if db != dbSingle*2 {
		t.Errorf("multi-az should double cost: %f vs %f", db, dbSingle)
	}
}

func TestOutlierDetection(t *testing.T) {
	// Corpus: 9 buckets with versioning on, conventionally.
	corpusSrc := "resource \"aws_vpc\" \"v\" { cidr_block = \"10.0.0.0/16\" }\n"
	for i := 0; i < 9; i++ {
		corpusSrc += fmt.Sprintf(`
resource "aws_storage_bucket" "b%d" {
  name       = "bucket-%d"
  versioning = true
}
`, i, i)
	}
	m, diags := config.Load(map[string]string{"corpus.ccl": corpusSrc})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	corpus, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	ts := NewTemplateSet()
	ts.Learn(corpus)
	if ts.Samples("aws_storage_bucket") != 9 {
		t.Fatalf("samples = %d", ts.Samples("aws_storage_bucket"))
	}

	// New program: one conventional bucket, one with versioning off.
	m2, _ := config.Load(map[string]string{"new.ccl": `
resource "aws_storage_bucket" "good" {
  name       = "bucket-good"
  versioning = true
}
resource "aws_storage_bucket" "sketchy" {
  name       = "bucket-sketchy"
  versioning = false
}
`})
	ex2, _ := config.Expand(m2, nil, nil)
	outliers := ts.Detect(ex2, DetectOptions{})
	if len(outliers) != 1 {
		t.Fatalf("outliers = %+v", outliers)
	}
	o := outliers[0]
	if o.Addr != "aws_storage_bucket.sketchy" || o.Attr != "versioning" {
		t.Errorf("outlier = %+v", o)
	}
	if o.Dominant != "true" || o.Share < 0.99 {
		t.Errorf("dominant = %q share = %f", o.Dominant, o.Share)
	}
	if !strings.Contains(o.String(), "deviates") {
		t.Errorf("render = %q", o.String())
	}
	// Unique names must NOT be flagged (no dominant value).
	for _, o := range outliers {
		if o.Attr == "name" {
			t.Error("names flagged as outliers despite no convention")
		}
	}
}

func TestOutlierRequiresMinSamples(t *testing.T) {
	ts := NewTemplateSet()
	m, _ := config.Load(map[string]string{"c.ccl": `
resource "aws_storage_bucket" "one" {
  name       = "b1"
  versioning = true
}
`})
	ex, _ := config.Expand(m, nil, nil)
	ts.Learn(ex)
	m2, _ := config.Load(map[string]string{"n.ccl": `
resource "aws_storage_bucket" "x" {
  name       = "b2"
  versioning = false
}
`})
	ex2, _ := config.Expand(m2, nil, nil)
	if got := ts.Detect(ex2, DetectOptions{}); len(got) != 0 {
		t.Errorf("tiny corpus produced outliers: %+v", got)
	}
}

func TestDriftPhasePolicies(t *testing.T) {
	ps := parseOK(t, `
policy "revert-rogue" {
  phase = "drift"
  when  = drift.modified > 0 && contains(drift.actors, "legacy-script")
  revert {}
  notify { message = "reverting ${drift.modified} modification(s) by legacy-script" }
}
`)
	eng := NewEngine(ps)
	rep := driftReport(1, "legacy-script")
	decs, diags := eng.EvaluateDrift(rep)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	if len(decs) != 2 || decs[0].Kind != ActionRevert {
		t.Fatalf("decisions = %+v", decs)
	}
	if !strings.Contains(decs[1].Message, "1 modification") {
		t.Errorf("message = %q", decs[1].Message)
	}
	// Drift by a trusted team does not fire.
	decs, _ = eng.EvaluateDrift(driftReport(1, "platform-team"))
	if len(decs) != 0 {
		t.Errorf("decisions = %+v", decs)
	}
}
