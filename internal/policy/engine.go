package policy

import (
	"fmt"

	"cloudless/internal/drift"
	"cloudless/internal/eval"
	"cloudless/internal/hcl"
	"cloudless/internal/plan"
)

// Engine evaluates a set of policies against lifecycle observations.
type Engine struct {
	policies []*Policy
	// Vars holds the current variable values the controller manages;
	// scale/set_variable decisions read and write here.
	Vars map[string]eval.Value
}

// NewEngine builds an engine over policies.
func NewEngine(policies []*Policy) *Engine {
	return &Engine{policies: policies, Vars: map[string]eval.Value{}}
}

// Policies returns the engine's policies.
func (e *Engine) Policies() []*Policy { return e.policies }

// EvaluatePlan runs plan-phase policies against a computed plan. Returned
// deny decisions mean the plan must not be applied.
func (e *Engine) EvaluatePlan(p *plan.Plan) ([]Decision, hcl.Diagnostics) {
	scope := eval.NewContext()
	scope.Variables["plan"] = PlanObservations(p)
	scope.Variables["var"] = eval.Object(e.Vars)
	return e.run(PhasePlan, scope)
}

// EvaluateDrift runs drift-phase policies against a drift report.
func (e *Engine) EvaluateDrift(rep *drift.Report) ([]Decision, hcl.Diagnostics) {
	scope := eval.NewContext()
	scope.Variables["drift"] = DriftObservations(rep)
	scope.Variables["var"] = eval.Object(e.Vars)
	return e.run(PhaseDrift, scope)
}

// Observe runs operate-phase policies against a metric sample set, e.g.
// {"vpn_utilization": 0.92, "nic_load": 0.4}. This is where autoscaling
// policies over arbitrary metrics live — including metrics today's cloud
// autoscalers do not expose.
func (e *Engine) Observe(metrics map[string]eval.Value) ([]Decision, hcl.Diagnostics) {
	scope := eval.NewContext()
	scope.Variables["metric"] = eval.Object(metrics)
	scope.Variables["var"] = eval.Object(e.Vars)
	return e.run(PhaseOperate, scope)
}

func (e *Engine) run(phase Phase, scope *eval.Context) ([]Decision, hcl.Diagnostics) {
	var out []Decision
	var diags hcl.Diagnostics
	for _, p := range e.policies {
		if p.Phase != phase || p.When == nil {
			continue
		}
		cond, d := eval.Evaluate(p.When, scope)
		if d.HasErrors() {
			diags = diags.Extend(d)
			continue
		}
		fire, err := eval.Truthiness(cond)
		if err != nil {
			diags = diags.Append(hcl.Errorf(p.When.Range(), "policy %q condition: %s", p.Name, err))
			continue
		}
		if !fire {
			continue
		}
		for _, a := range p.Actions {
			dec, d := e.decide(p, a, scope)
			diags = diags.Extend(d)
			if dec != nil {
				out = append(out, *dec)
			}
		}
	}
	return out, diags
}

func (e *Engine) decide(p *Policy, a Action, scope *eval.Context) (*Decision, hcl.Diagnostics) {
	var diags hcl.Diagnostics
	dec := &Decision{Policy: p.Name, Kind: a.Kind}
	switch a.Kind {
	case ActionDeny, ActionNotify:
		dec.Message = p.Name
		if a.Message != nil {
			v, d := eval.Evaluate(a.Message, scope)
			diags = diags.Extend(d)
			if !d.HasErrors() {
				if s, err := eval.ToStringValue(v); err == nil && s.IsKnown() {
					dec.Message = s.AsString()
				}
			}
		}
	case ActionSetVariable:
		v, d := eval.Evaluate(a.Value, scope)
		if d.HasErrors() {
			return nil, diags.Extend(d)
		}
		dec.Variable = a.Variable
		dec.NewValue = v
		e.Vars[a.Variable] = v
	case ActionScale:
		cur, ok := e.Vars[a.Variable]
		if !ok || cur.Kind() != eval.KindNumber {
			return nil, diags.Append(hcl.Errorf(p.DeclRange,
				"policy %q: scale target %q is not a managed numeric variable", p.Name, a.Variable))
		}
		next := cur.AsNumber() + a.Delta
		if a.HasMin && next < a.Min {
			next = a.Min
		}
		if a.HasMax && next > a.Max {
			next = a.Max
		}
		if next == cur.AsNumber() {
			return nil, diags // clamped to no-op: no decision
		}
		dec.Variable = a.Variable
		dec.NewValue = eval.Number(next)
		dec.Message = fmt.Sprintf("scale %s: %s -> %s", a.Variable, cur, dec.NewValue)
		e.Vars[a.Variable] = dec.NewValue
	case ActionRevert, ActionAdopt:
		dec.Message = a.Kind.String() + " drift"
	}
	return dec, diags
}

// Denied reports whether any decision is a deny, with its message.
func Denied(decisions []Decision) (bool, string) {
	for _, d := range decisions {
		if d.Kind == ActionDeny {
			return true, d.Message
		}
	}
	return false, ""
}

// PlanObservations exposes a plan as an observation object: counts, the
// estimated monthly cost delta, and per-type resource counts.
func PlanObservations(p *plan.Plan) eval.Value {
	byType := map[string]int{}
	for _, ch := range p.Changes {
		if ch.Action == plan.ActionCreate || ch.Action == plan.ActionReplace || ch.Action == plan.ActionUpdate || ch.Action == plan.ActionNoop {
			byType[ch.Type]++
		}
	}
	counts := map[string]eval.Value{}
	for t, n := range byType {
		counts[t] = eval.Int(n)
	}
	return eval.Object(map[string]eval.Value{
		"creates":         eval.Int(p.Creates),
		"updates":         eval.Int(p.Updates),
		"replaces":        eval.Int(p.Replaces),
		"deletes":         eval.Int(p.Deletes),
		"pending":         eval.Int(p.PendingCount()),
		"monthly_cost":    eval.Number(EstimateMonthlyCost(p)),
		"resource_counts": eval.Object(counts),
	})
}

// DriftObservations exposes a drift report as an observation object.
func DriftObservations(rep *drift.Report) eval.Value {
	kinds := map[string]int{}
	actors := map[string]bool{}
	for _, it := range rep.Items {
		kinds[it.Kind.String()]++
		if it.Actor != "" {
			actors[it.Actor] = true
		}
	}
	actorList := make([]string, 0, len(actors))
	for a := range actors {
		actorList = append(actorList, a)
	}
	return eval.Object(map[string]eval.Value{
		"total":     eval.Int(len(rep.Items)),
		"modified":  eval.Int(kinds["modified"]),
		"deleted":   eval.Int(kinds["deleted"]),
		"unmanaged": eval.Int(kinds["unmanaged"]),
		"actors":    eval.Strings(actorList...),
	})
}
