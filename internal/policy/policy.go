// Package policy implements the §3.6 "infrastructure controller": an
// SDN-controller-like component that enforces user policies across the
// cloud lifecycle. Policies cleanly separate *observations* (plan statistics,
// cost estimates, drift events, arbitrary runtime metrics) from *actions*
// (deny a plan, notify, set a variable, scale a count), and are written in
// CCL itself rather than a separate Datalog-like language — the paper's
// "higher-level abstractions for authoring policies".
package policy

import (
	"fmt"

	"cloudless/internal/eval"
	"cloudless/internal/hcl"
)

// Phase is the lifecycle stage a policy attaches to.
type Phase int

// Lifecycle phases.
const (
	// PhasePlan policies run against a computed plan, before apply
	// (budget guards, change windows, resource requirements).
	PhasePlan Phase = iota
	// PhaseDrift policies run against drift reports.
	PhaseDrift
	// PhaseOperate policies run against runtime metric observations
	// (autoscaling).
	PhaseOperate
)

var phaseNames = map[Phase]string{
	PhasePlan:    "plan",
	PhaseDrift:   "drift",
	PhaseOperate: "operate",
}

var phaseByName = map[string]Phase{
	"plan": PhasePlan, "drift": PhaseDrift, "operate": PhaseOperate,
}

// String names the phase.
func (p Phase) String() string { return phaseNames[p] }

// ActionKind enumerates the supported policy actions.
type ActionKind int

// Action kinds.
const (
	// ActionDeny blocks the lifecycle operation (plan phase).
	ActionDeny ActionKind = iota
	// ActionNotify emits a message for humans.
	ActionNotify
	// ActionSetVariable sets a configuration variable to an expression's
	// value, evolving the IaC program.
	ActionSetVariable
	// ActionScale adjusts a numeric variable by a delta within bounds —
	// the autoscaling primitive ("scale out the number of VPN tunnels").
	ActionScale
	// ActionRevert asks reconciliation to revert drift (drift phase).
	ActionRevert
	// ActionAdopt asks reconciliation to adopt drift (drift phase).
	ActionAdopt
)

var actionNames = map[ActionKind]string{
	ActionDeny: "deny", ActionNotify: "notify", ActionSetVariable: "set_variable",
	ActionScale: "scale", ActionRevert: "revert", ActionAdopt: "adopt",
}

// String names the action kind.
func (a ActionKind) String() string { return actionNames[a] }

// Action is one declared action of a policy.
type Action struct {
	Kind ActionKind
	// Message for deny/notify (a CCL expression, may interpolate
	// observations).
	Message hcl.Expression
	// Variable is the target variable for set_variable/scale.
	Variable string
	// Value is the expression for set_variable.
	Value hcl.Expression
	// Delta/Min/Max bound scale actions.
	Delta    float64
	Min, Max float64
	HasMin   bool
	HasMax   bool
}

// Policy is one declared policy.
type Policy struct {
	Name string
	// Phase selects which observations the policy sees.
	Phase Phase
	// When is the condition expression over the phase's observation scope.
	When hcl.Expression
	// Actions run when the condition holds.
	Actions   []Action
	DeclRange hcl.Range
}

// ParsePolicies loads policy declarations from CCL source. Policies use
// the block form:
//
//	policy "budget-guard" {
//	  phase = "plan"
//	  when  = plan.monthly_cost > 500
//	  deny { message = "monthly cost ${plan.monthly_cost} exceeds budget" }
//	}
func ParsePolicies(filename, src string) ([]*Policy, hcl.Diagnostics) {
	f, diags := hcl.Parse(filename, src)
	if diags.HasErrors() {
		return nil, diags
	}
	var out []*Policy
	for _, blk := range f.Body.Blocks {
		if blk.Type != "policy" {
			diags = diags.Append(hcl.Errorf(blk.TypeRange,
				"unsupported block %q in policy file; expected policy", blk.Type))
			continue
		}
		p, d := decodePolicy(blk)
		diags = diags.Extend(d)
		if p != nil {
			out = append(out, p)
		}
	}
	return out, diags
}

func decodePolicy(blk *hcl.Block) (*Policy, hcl.Diagnostics) {
	var diags hcl.Diagnostics
	if len(blk.Labels) != 1 {
		return nil, diags.Append(hcl.Errorf(blk.DefRange(), "policy blocks need exactly one label (the policy name)"))
	}
	p := &Policy{Name: blk.Labels[0], DeclRange: blk.DefRange()}

	phaseAttr := blk.Body.Attribute("phase")
	if phaseAttr == nil {
		diags = diags.Append(hcl.Errorf(blk.DefRange(), "policy %q is missing its phase attribute", p.Name))
	} else if lit, ok := phaseAttr.Expr.(*hcl.LiteralExpr); ok {
		if s, ok := lit.Val.(string); ok {
			ph, known := phaseByName[s]
			if !known {
				diags = diags.Append(hcl.Errorf(phaseAttr.Rng,
					"unknown phase %q; expected plan, drift, or operate", s))
			}
			p.Phase = ph
		}
	} else {
		diags = diags.Append(hcl.Errorf(phaseAttr.Rng, "phase must be a literal string"))
	}

	whenAttr := blk.Body.Attribute("when")
	if whenAttr == nil {
		diags = diags.Append(hcl.Errorf(blk.DefRange(), "policy %q is missing its when condition", p.Name))
	} else {
		p.When = whenAttr.Expr
	}

	for _, sub := range blk.Body.Blocks {
		var a Action
		switch sub.Type {
		case "deny":
			a.Kind = ActionDeny
			if m := sub.Body.Attribute("message"); m != nil {
				a.Message = m.Expr
			}
		case "notify":
			a.Kind = ActionNotify
			if m := sub.Body.Attribute("message"); m != nil {
				a.Message = m.Expr
			}
		case "set_variable":
			a.Kind = ActionSetVariable
			if v := sub.Body.Attribute("name"); v != nil {
				if lit, ok := v.Expr.(*hcl.LiteralExpr); ok {
					a.Variable, _ = lit.Val.(string)
				}
			}
			if v := sub.Body.Attribute("value"); v != nil {
				a.Value = v.Expr
			}
			if a.Variable == "" || a.Value == nil {
				diags = diags.Append(hcl.Errorf(sub.DefRange(), "set_variable needs name and value"))
				continue
			}
		case "scale":
			a.Kind = ActionScale
			if v := sub.Body.Attribute("variable"); v != nil {
				if lit, ok := v.Expr.(*hcl.LiteralExpr); ok {
					a.Variable, _ = lit.Val.(string)
				}
			}
			if a.Variable == "" {
				diags = diags.Append(hcl.Errorf(sub.DefRange(), "scale needs a variable"))
				continue
			}
			readNum := func(name string) (float64, bool) {
				attr := sub.Body.Attribute(name)
				if attr == nil {
					return 0, false
				}
				v, d := eval.Evaluate(attr.Expr, eval.NewContext())
				if d.HasErrors() || v.Kind() != eval.KindNumber {
					diags = diags.Append(hcl.Errorf(attr.Rng, "%s must be a number", name))
					return 0, false
				}
				return v.AsNumber(), true
			}
			if d, ok := readNum("delta"); ok {
				a.Delta = d
			} else {
				a.Delta = 1
			}
			a.Min, a.HasMin = readNum("min")
			a.Max, a.HasMax = readNum("max")
		case "revert":
			a.Kind = ActionRevert
		case "adopt":
			a.Kind = ActionAdopt
		default:
			diags = diags.Append(hcl.Errorf(sub.DefRange(),
				"unknown action block %q; expected deny, notify, set_variable, scale, revert, or adopt", sub.Type))
			continue
		}
		p.Actions = append(p.Actions, a)
	}
	if len(p.Actions) == 0 {
		diags = diags.Append(hcl.Errorf(blk.DefRange(), "policy %q declares no actions", p.Name))
	}
	return p, diags
}

// Decision is one concrete action produced by evaluating policies against
// observations.
type Decision struct {
	Policy  string
	Kind    ActionKind
	Message string
	// Variable/NewValue carry set_variable and scale outcomes.
	Variable string
	NewValue eval.Value
}

// String renders the decision.
func (d Decision) String() string {
	switch d.Kind {
	case ActionSetVariable, ActionScale:
		return fmt.Sprintf("[%s] %s %s = %s", d.Policy, d.Kind, d.Variable, d.NewValue)
	default:
		return fmt.Sprintf("[%s] %s: %s", d.Policy, d.Kind, d.Message)
	}
}
