package policy

import "cloudless/internal/drift"

// driftReport fabricates a drift report with n modifications by one actor.
func driftReport(n int, actor string) *drift.Report {
	rep := &drift.Report{Method: "test"}
	for i := 0; i < n; i++ {
		rep.Items = append(rep.Items, drift.Item{
			Kind: drift.Modified, Addr: "aws_vpc.main", Type: "aws_vpc",
			ID: "vpc-1", ChangedAttrs: []string{"enable_dns"}, Actor: actor,
		})
	}
	return rep
}
