package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testJob(tenant, id string) *Job {
	return &Job{id: id, tenant: tenant, done: make(chan struct{})}
}

// TestSFQLightTenantOvertakesBacklog is the deterministic fairness proof:
// a tenant that saturated the queue with 100 jobs before a light tenant
// showed up cannot delay the light tenant's k-th job beyond its fair share —
// with equal weights, one heavy dispatch per light dispatch.
func TestSFQLightTenantOvertakesBacklog(t *testing.T) {
	s := newSFQ()
	for i := 0; i < 100; i++ {
		s.push("heavy", 1, 1, testJob("heavy", fmt.Sprintf("h%d", i)))
	}
	for i := 0; i < 5; i++ {
		s.push("light", 1, 1, testJob("light", fmt.Sprintf("l%d", i)))
	}
	pos := map[string]int{}
	for i := 0; s.len() > 0; i++ {
		pos[s.pop().id] = i
	}
	// light's k-th job has finish tag k+1, tying heavy's k-th (which wins
	// the tie on submission order), so it must dispatch by position 2k+1.
	for k := 0; k < 5; k++ {
		id := fmt.Sprintf("l%d", k)
		if worst := 2*k + 1; pos[id] > worst {
			t.Errorf("light job %s dispatched at %d, fair-share bound is %d", id, pos[id], worst)
		}
	}
}

// TestSFQWeights: a weight-4 tenant gets ~4 dispatches for every 1 a
// weight-1 tenant gets while both stay backlogged.
func TestSFQWeights(t *testing.T) {
	s := newSFQ()
	for i := 0; i < 40; i++ {
		s.push("gold", 4, 1, testJob("gold", fmt.Sprintf("g%d", i)))
	}
	for i := 0; i < 40; i++ {
		s.push("bronze", 1, 1, testJob("bronze", fmt.Sprintf("b%d", i)))
	}
	gold := 0
	for i := 0; i < 20; i++ {
		if j := s.pop(); j.tenant == "gold" {
			gold++
		}
	}
	if gold < 14 || gold > 18 {
		t.Errorf("gold got %d of the first 20 slots, want ~16 (4:1 share)", gold)
	}
}

// TestSFQCostChargesVirtualTime: expensive jobs push their tenant's virtual
// clock further, so a tenant submitting one 10-cost apply yields the next
// slots to a tenant with cheap plans.
func TestSFQCostChargesVirtualTime(t *testing.T) {
	s := newSFQ()
	s.push("bulk", 1, 10, testJob("bulk", "big0"))
	s.push("bulk", 1, 10, testJob("bulk", "big1"))
	for i := 0; i < 5; i++ {
		s.push("interactive", 1, 1, testJob("interactive", fmt.Sprintf("q%d", i)))
	}
	// One bulk job dispatches (lowest seq at the shared start), then every
	// interactive job beats the second 10-cost one.
	var order []string
	for s.len() > 0 {
		order = append(order, s.pop().id)
	}
	if order[0] != "q0" && order[0] != "big0" {
		t.Fatalf("unexpected first dispatch %s", order[0])
	}
	if last := order[len(order)-1]; last != "big1" {
		t.Errorf("second bulk job dispatched at %v, want last", order)
	}
}

// TestSFQRemoveKeepsCharge: cancelling a queued job doesn't refund the
// tenant's virtual time.
func TestSFQRemoveKeepsCharge(t *testing.T) {
	s := newSFQ()
	j0, j1 := testJob("a", "a0"), testJob("a", "a1")
	s.push("a", 1, 1, j0)
	s.push("a", 1, 1, j1)
	if !s.remove(j0) {
		t.Fatal("remove missed a queued job")
	}
	if s.remove(j0) {
		t.Fatal("double remove succeeded")
	}
	if got := s.pop(); got != j1 {
		t.Fatalf("pop after remove = %v", got)
	}
	// a1 kept its second-slot finish tag: a fresh tenant's first job ties
	// it at best, it was not promoted to the front of virtual time.
	if s.len() != 0 {
		t.Fatal("queue not drained")
	}
}

// TestQueueRunsJobs: submit -> run -> result round-trip, including the job
// ID travelling in the work context.
func TestQueueRunsJobs(t *testing.T) {
	q := New(Options{Workers: 2, FixedAdmission: true})
	defer q.Shutdown(context.Background())
	j, err := q.Submit(Request{Tenant: "t", Kind: "echo", Fn: func(ctx context.Context) (any, error) {
		return "id=" + JobID(ctx), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	view, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusSucceeded {
		t.Fatalf("status = %s (%s)", view.Status, view.Err)
	}
	res, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res != "id="+j.ID() {
		t.Fatalf("result = %v, want job id %s in context", res, j.ID())
	}
}

// TestQueueFairStartOrder runs the scheduler end to end with one worker:
// while a heavy tenant's backlog is parked, a light tenant's jobs start
// within their fair-share bound of arrival.
func TestQueueFairStartOrder(t *testing.T) {
	q := New(Options{Workers: 1, FixedAdmission: true})
	defer q.Shutdown(context.Background())

	var mu sync.Mutex
	var starts []string
	gate := make(chan struct{})
	record := func(tenant string) func(ctx context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			<-gate
			mu.Lock()
			starts = append(starts, tenant)
			mu.Unlock()
			return nil, nil
		}
	}
	// The first submit may dispatch immediately (the worker is idle), so
	// park the worker on the gate while the rest of the backlog queues.
	var all []*Job
	submit := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			j, err := q.Submit(Request{Tenant: tenant, Fn: record(tenant)})
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, j)
		}
	}
	submit("heavy", 1) // grabbed by the worker, blocks on gate
	time.Sleep(10 * time.Millisecond)
	submit("heavy", 30)
	submit("light", 4)
	close(gate)
	for _, j := range all {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	lightSeen := 0
	for i, tenant := range starts {
		if tenant == "light" {
			lightSeen++
			// Fair share with equal weights: light's k-th start within
			// ~2k+2 dispatches (one heavy ran before light even arrived).
			if bound := 2*lightSeen + 1; i > bound {
				t.Errorf("light start #%d at dispatch %d, fair bound %d (order %v)",
					lightSeen, i, bound, starts)
			}
		}
	}
	if lightSeen != 4 {
		t.Fatalf("light ran %d jobs, want 4", lightSeen)
	}
}

// TestQueueBacklogAdmission: a tenant over its backlog limit gets the typed
// 429-able error while other tenants keep submitting.
func TestQueueBacklogAdmission(t *testing.T) {
	q := New(Options{Workers: 1, FixedAdmission: true, MaxQueuedPerTenant: 2})
	defer q.Shutdown(context.Background())
	gate := make(chan struct{})
	defer close(gate)
	blocked := func(ctx context.Context) (any, error) { <-gate; return nil, nil }

	if _, err := q.Submit(Request{Tenant: "a", Fn: blocked}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the worker park on it
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(Request{Tenant: "a", Fn: blocked}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := q.Submit(Request{Tenant: "a", Fn: blocked})
	var full *ErrQueueFull
	if !errors.As(err, &full) {
		t.Fatalf("over-backlog submit: got %v, want *ErrQueueFull", err)
	}
	if full.Tenant != "a" || full.Limit != 2 {
		t.Fatalf("ErrQueueFull = %+v", full)
	}
	if _, err := q.Submit(Request{Tenant: "b", Fn: blocked}); err != nil {
		t.Fatalf("other tenant blocked by a's backlog: %v", err)
	}
}

// TestQueueCancelDuringDispatch targets the claim window: a worker has
// popped the job (backlog already decremented) but is parked on the
// admission gate, so the job's status still reads "queued". Cancel here
// used to take the queued branch — double-decrementing the backlog and
// closing done a second time when the worker finished (panic). Now the
// claimed job's context is canceled and the worker resolves it exactly
// once, without running Fn.
func TestQueueCancelDuringDispatch(t *testing.T) {
	q := New(Options{Workers: 1, FixedAdmission: true})
	defer q.Shutdown(context.Background())

	// Occupy the single admission slot so the worker blocks in
	// gate.Acquire after claiming the job.
	if err := q.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	slotHeld := true
	defer func() {
		if slotHeld {
			q.gate.Release()
		}
	}()

	ran := make(chan struct{}, 1)
	j, err := q.Submit(Request{Tenant: "t", Fn: func(ctx context.Context) (any, error) {
		ran <- struct{}{}
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	// The worker has claimed the job once it leaves the scheduler.
	for deadline := time.Now().Add(5 * time.Second); q.QueuedLen() != 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never claimed the job")
		}
		time.Sleep(time.Millisecond)
	}

	if !q.Cancel(j.ID()) {
		t.Fatal("cancel missed the claimed job")
	}
	view, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusCanceled {
		t.Fatalf("claimed-then-canceled job status = %s, want canceled", view.Status)
	}
	select {
	case <-ran:
		t.Fatal("canceled job ran anyway")
	default:
	}
	q.mu.Lock()
	backlog := q.backlog["t"]
	q.mu.Unlock()
	if backlog != 0 {
		t.Fatalf("backlog after claimed cancel = %d, want 0 (admission corrupted)", backlog)
	}

	// The freed worker still dispatches future work.
	q.gate.Release()
	slotHeld = false
	j2, err := q.Submit(Request{Tenant: "t", Fn: func(ctx context.Context) (any, error) { return "ok", nil }})
	if err != nil {
		t.Fatal(err)
	}
	if view, err := j2.Wait(context.Background()); err != nil || view.Status != StatusSucceeded {
		t.Fatalf("post-cancel job: %v %s", err, view.Status)
	}
}

// TestQueueCancelStress races Cancel against claim/run/finish across
// tenants; under -race this flushes out double-close and double-decrement
// bugs in the dispatch window. Every job must resolve terminal and every
// backlog count must return to zero.
func TestQueueCancelStress(t *testing.T) {
	q := New(Options{Workers: 4, FixedAdmission: true})
	defer q.Shutdown(context.Background())

	var wg sync.WaitGroup
	all := make([]*Job, 0, 200)
	for i := 0; i < 200; i++ {
		j, err := q.Submit(Request{Tenant: fmt.Sprintf("t%d", i%4), Fn: func(ctx context.Context) (any, error) {
			return nil, ctx.Err()
		}})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, j)
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			q.Cancel(id)
		}(j.ID())
	}
	wg.Wait()
	for _, j := range all {
		view, err := j.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !view.Status.Terminal() {
			t.Fatalf("job %s not terminal after cancel storm: %s", j.ID(), view.Status)
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for tenant, n := range q.backlog {
		if n != 0 {
			t.Errorf("tenant %s backlog = %d after drain, want 0", tenant, n)
		}
	}
}

// TestQueueTerminalRetention: terminal jobs are retained per tenant up to
// MaxFinishedPerTenant and then evicted oldest-first, so a long-running
// queue doesn't grow without bound.
func TestQueueTerminalRetention(t *testing.T) {
	q := New(Options{Workers: 1, FixedAdmission: true, MaxFinishedPerTenant: 3})
	defer q.Shutdown(context.Background())

	var ids []string
	for i := 0; i < 8; i++ {
		j, err := q.Submit(Request{Tenant: "t", Fn: func(ctx context.Context) (any, error) { return nil, nil }})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}
	if got := len(q.List("t")); got != 3 {
		t.Fatalf("retained %d terminal jobs, want 3", got)
	}
	if _, ok := q.Get(ids[0]); ok {
		t.Fatal("oldest terminal job survived past the retention cap")
	}
	if _, ok := q.Get(ids[len(ids)-1]); !ok {
		t.Fatal("newest terminal job was evicted")
	}
}

// TestQueueCancelAndShutdown: cancelling a queued job resolves it without
// running; shutdown cancels the rest and refuses new work.
func TestQueueCancelAndShutdown(t *testing.T) {
	q := New(Options{Workers: 1, FixedAdmission: true})
	gate := make(chan struct{})
	ran := make(chan string, 16)
	blocked := func(ctx context.Context) (any, error) { <-gate; return nil, nil }

	first, err := q.Submit(Request{Tenant: "t", Fn: blocked})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	victim, err := q.Submit(Request{Tenant: "t", Fn: func(ctx context.Context) (any, error) {
		ran <- "victim"
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Cancel(victim.ID()) {
		t.Fatal("cancel of queued job failed")
	}
	view, err := victim.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusCanceled {
		t.Fatalf("cancelled job status = %s", view.Status)
	}

	close(gate)
	if _, err := first.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := q.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case who := <-ran:
		t.Fatalf("cancelled job ran: %s", who)
	default:
	}
	if _, err := q.Submit(Request{Tenant: "t", Fn: blocked}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after shutdown: got %v, want ErrClosed", err)
	}
}
