package jobs

import "encoding/json"

// reconcilerID is the reserved record ID that carries a tenant's reconciler
// checkpoint inside the same jobs journal. Riding the journal (instead of a
// sibling file) buys the checkpoint the journal's whole durability story —
// CRC framing, fsync, torn-tail truncation, crash-safe compaction — for
// free. The record is non-terminal so retention never retires it, it
// survives compaction like any live record, and Replay filters it out so
// the queue never mistakes it for a job.
const reconcilerID = "_reconciler"

// SaveReconciler durably records a tenant's reconciler checkpoint (an
// opaque JSON document: enabled flag, mode, acknowledged watermark, tuning).
// Last write wins, exactly like any other journal record.
func (s *Store) SaveReconciler(tenant string, checkpoint json.RawMessage) error {
	return s.Append(StoredJob{
		ID:     reconcilerID,
		Tenant: tenant,
		Kind:   "reconciler",
		Status: StatusRunning,
		Params: checkpoint,
	})
}

// LoadReconciler returns the tenant's last saved reconciler checkpoint, or
// nil when none was ever saved.
func (s *Store) LoadReconciler(tenant string) (json.RawMessage, error) {
	if s == nil {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tl, err := s.open(tenant)
	if err != nil {
		return nil, err
	}
	j := tl.live[reconcilerID]
	if j == nil || len(j.Params) == 0 {
		return nil, nil
	}
	cp := make(json.RawMessage, len(j.Params))
	copy(cp, j.Params)
	return cp, nil
}
