// Package jobs is an async job queue with per-tenant weighted fair
// scheduling and adaptive admission control (DESIGN.md S27). cloudlessd
// runs every lifecycle operation — plan, apply, drift, recover — as a job
// here, so one tenant's 10k-resource apply cannot starve another tenant's
// one-line plan: dispatch order is start-time fair queueing over tenants
// (sched.go), and the worker pool sits behind the provider runtime's AIMD
// gate so sustained congestion shrinks effective concurrency instead of
// piling on.
//
// Durability is opt-in via Options.Store (DESIGN.md S28): with a store
// attached, every transition (submitted -> running -> terminal) is appended
// to a per-tenant CRC-framed journal and fsynced before the transition is
// acknowledged, and Restore rebuilds the job table from a replayed journal
// after a daemon restart. Without a store the queue persists nothing and
// resumability comes from the layer below (a crashed apply job leaves its
// workspace journal, and a recover job resumes it).
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/provider"
)

// Status is a job's lifecycle state.
type Status string

// Job states. Terminal states are succeeded, failed, and canceled.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
	StatusCanceled  Status = "canceled"
)

// Terminal reports whether a status is final.
func (s Status) Terminal() bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCanceled
}

// ErrClosed is returned by Submit after Shutdown has begun.
var ErrClosed = errors.New("jobs: queue closed")

type jobIDKey struct{}

// JobID returns the running job's ID from a context passed to Request.Fn
// ("" outside a job). Fns use it to key artifacts they produce.
func JobID(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}

// ErrQueueFull is the typed admission error for a tenant over its backlog
// limit. Callers should back off and resubmit.
type ErrQueueFull struct {
	Tenant string
	Limit  int
}

// Error implements error.
func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("jobs: tenant %s backlog full (limit %d)", e.Tenant, e.Limit)
}

// Request describes one job to submit.
type Request struct {
	// Tenant is the fairness bucket (workspace name in cloudlessd).
	Tenant string
	// Kind labels the work ("plan", "apply", "drift", "recover", ...).
	Kind string
	// Cost is the job's scheduling cost in abstract units (default 1).
	// Bigger jobs push their tenant's virtual time further ahead, so a
	// tenant submitting heavy applies yields dispatch slots to tenants
	// submitting cheap plans.
	Cost float64
	// IdemKey is an optional client-supplied idempotency key. Submitting a
	// second job with the same (tenant, key) returns the original job
	// instead of creating a new one, making submit retries safe across
	// timeouts and daemon restarts.
	IdemKey string
	// Params is the submitter's request payload, persisted opaquely with
	// the job so restart recovery can rebuild Fn for jobs that still need
	// to run.
	Params json.RawMessage
	// Fn does the work. The context is canceled by Cancel and by queue
	// shutdown; Fn must honor it.
	Fn func(ctx context.Context) (any, error)
}

// View is a copyable snapshot of a job.
type View struct {
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant"`
	Kind      string    `json:"kind"`
	Status    Status    `json:"status"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	Err       string    `json:"error,omitempty"`
}

// Job is one unit of queued work. All state is guarded by the queue's
// lock; read it through Snapshot/Result/Wait.
type Job struct {
	q       *Queue
	id      string
	tenant  string
	kind    string
	idemKey string
	params  json.RawMessage
	cost    float64
	fn      func(ctx context.Context) (any, error)

	status    Status
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       error
	result    any
	// noRecord suppresses the terminal store record for this job: the
	// shutdown checkpoint writes a queued record instead, so the job is
	// re-enqueued (not replayed as canceled) after a clean restart.
	noRecord bool
	// claimed flips when a worker pops the job in next(); from then on the
	// job's terminal transition belongs to that worker alone (Cancel only
	// cancels ctx) so done is closed exactly once.
	claimed bool
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}
}

// ID returns the job's queue-unique identifier.
func (j *Job) ID() string { return j.id }

// Snapshot returns a copy of the job's current state.
func (j *Job) Snapshot() View {
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	return j.viewLocked()
}

func (j *Job) viewLocked() View {
	v := View{
		ID: j.id, Tenant: j.tenant, Kind: j.kind, Status: j.status,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		v.Err = j.err.Error()
	}
	return v
}

// Wait blocks until the job reaches a terminal state or ctx is done, then
// returns the final snapshot.
func (j *Job) Wait(ctx context.Context) (View, error) {
	select {
	case <-j.done:
		return j.Snapshot(), nil
	case <-ctx.Done():
		return j.Snapshot(), ctx.Err()
	}
}

// Result returns the Fn return values once the job is terminal (nil, nil
// before that, and for canceled jobs).
func (j *Job) Result() (any, error) {
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	if !j.status.Terminal() {
		return nil, nil
	}
	return j.result, j.err
}

// Options tune New.
type Options struct {
	// Workers is the dispatch ceiling (default 4). The effective ceiling
	// adapts below this under congestion unless FixedAdmission is set.
	Workers int
	// FixedAdmission pins concurrency at Workers (no AIMD adaptation).
	FixedAdmission bool
	// MaxQueuedPerTenant bounds one tenant's backlog (default 256);
	// Submit past it fails with *ErrQueueFull.
	MaxQueuedPerTenant int
	// MaxFinishedPerTenant bounds how many terminal jobs a tenant retains
	// for Get/List (default 256). Older terminal jobs are evicted
	// oldest-first so a long-running daemon's job table stays bounded.
	MaxFinishedPerTenant int
	// DefaultWeight is the fair-share weight for tenants not in Weights
	// (default 1).
	DefaultWeight float64
	// Weights grants specific tenants a larger or smaller fair share.
	Weights map[string]float64
	// Clock supplies timestamps (default time.Now); tests pin it.
	Clock func() time.Time
	// Store, when set, makes the queue durable: transitions are journaled
	// and fsynced, and Restore can rebuild the job table after a restart.
	Store *Store
}

// Queue runs submitted jobs on a worker pool in fair-share order.
type Queue struct {
	opts Options
	gate *provider.AdmissionGate

	mu         sync.Mutex
	cond       *sync.Cond
	sched      *sfq
	jobs       map[string]*Job
	backlog    map[string]int               // queued per tenant, for admission
	finished   map[string][]string          // terminal job IDs per tenant, oldest first
	idem       map[string]map[string]string // tenant -> idem key -> job ID
	nextID     int
	closed     bool
	wg         sync.WaitGroup
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// New builds and starts a queue.
func New(opts Options) *Queue {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.MaxQueuedPerTenant <= 0 {
		opts.MaxQueuedPerTenant = 256
	}
	if opts.MaxFinishedPerTenant <= 0 {
		opts.MaxFinishedPerTenant = 256
	}
	if opts.DefaultWeight <= 0 {
		opts.DefaultWeight = 1
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	q := &Queue{
		opts:     opts,
		gate:     provider.NewAdmissionGate(opts.Workers, opts.FixedAdmission),
		sched:    newSFQ(),
		jobs:     map[string]*Job{},
		backlog:  map[string]int{},
		finished: map[string][]string{},
		idem:     map[string]map[string]string{},
	}
	q.cond = sync.NewCond(&q.mu)
	q.baseCtx, q.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < opts.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Gate exposes the admission gate (window/queue introspection).
func (q *Queue) Gate() *provider.AdmissionGate { return q.gate }

// Store exposes the durable store (nil when the queue is in-memory only).
func (q *Queue) Store() *Store { return q.opts.Store }

// storedLocked snapshots a job as its durable record.
func (j *Job) storedLocked() StoredJob {
	s := StoredJob{
		ID: j.id, Tenant: j.tenant, Kind: j.kind, Status: j.status,
		IdemKey: j.idemKey, Params: j.params, Cost: j.cost,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		s.Err = j.err.Error()
	}
	if j.status.Terminal() && j.result != nil {
		// Best-effort: a result that doesn't marshal still persists the
		// status and error.
		if raw, err := json.Marshal(j.result); err == nil {
			s.Result = raw
		}
	}
	return s
}

// appendLocked journals the job's current state. Transition appends after
// a successful submit are best-effort: a disk error must not wedge the
// worker pool, and replay treats a missing later record as "the earlier
// state stood at the crash", which recovery already handles.
func (q *Queue) appendLocked(j *Job) {
	if q.opts.Store == nil {
		return
	}
	_ = q.opts.Store.Append(j.storedLocked())
}

func (q *Queue) weight(tenant string) float64 {
	if w, ok := q.opts.Weights[tenant]; ok && w > 0 {
		return w
	}
	return q.opts.DefaultWeight
}

// Submit enqueues a job. It fails fast with ErrClosed after Shutdown and
// with *ErrQueueFull when the tenant's backlog is at its limit.
func (q *Queue) Submit(req Request) (*Job, error) {
	if req.Fn == nil {
		return nil, errors.New("jobs: Request.Fn is required")
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	// Idempotent resubmission: a retry carrying the original key dedups to
	// the original job — the caller re-observes it rather than re-running.
	if req.IdemKey != "" {
		if id, ok := q.idem[req.Tenant][req.IdemKey]; ok {
			if j, ok := q.jobs[id]; ok {
				return j, nil
			}
		}
	}
	if q.backlog[req.Tenant] >= q.opts.MaxQueuedPerTenant {
		return nil, &ErrQueueFull{Tenant: req.Tenant, Limit: q.opts.MaxQueuedPerTenant}
	}
	q.nextID++
	j := &Job{
		q: q, id: fmt.Sprintf("j-%06d", q.nextID),
		tenant: req.Tenant, kind: req.Kind, fn: req.Fn,
		idemKey: req.IdemKey, params: req.Params, cost: req.Cost,
		status: StatusQueued, submitted: q.opts.Clock(),
		done: make(chan struct{}),
	}
	// Durability before acknowledgment: an accepted submit must survive a
	// crash, so a failed journal append rejects the submit outright.
	if q.opts.Store != nil {
		if err := q.opts.Store.Append(j.storedLocked()); err != nil {
			q.nextID--
			return nil, fmt.Errorf("jobs: persist submit: %w", err)
		}
	}
	q.jobs[j.id] = j
	q.backlog[req.Tenant]++
	q.registerIdemLocked(j)
	q.sched.push(req.Tenant, q.weight(req.Tenant), req.Cost, j)
	q.cond.Signal()
	return j, nil
}

func (q *Queue) registerIdemLocked(j *Job) {
	if j.idemKey == "" {
		return
	}
	m := q.idem[j.tenant]
	if m == nil {
		m = map[string]string{}
		q.idem[j.tenant] = m
	}
	m[j.idemKey] = j.id
}

// Get returns a job by ID.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// List snapshots jobs, newest first; tenant "" lists all tenants.
func (q *Queue) List(tenant string) []View {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []View
	for _, j := range q.jobs {
		if tenant == "" || j.tenant == tenant {
			out = append(out, j.viewLocked())
		}
	}
	// Deterministic order: IDs are zero-padded sequence numbers.
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// Cancel stops a job: a still-queued job is removed and marked canceled;
// a job already claimed by a worker (dispatching or running) has its
// context canceled and the worker resolves it to a terminal state.
// Canceling a terminal job is a no-op. Reports whether the job exists.
func (q *Queue) Cancel(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return false
	}
	switch {
	case j.status.Terminal():
		// Nothing to do.
	case j.claimed:
		// A worker owns the job's terminal transition (it may be parked on
		// the admission gate with status still "queued"); cancel its context
		// and let the worker finish it. Touching backlog or done here would
		// double-decrement admission counts and double-close done.
		j.cancel()
	default:
		// Still in the scheduler. Honor remove's verdict: claim and remove
		// are serialized under q.mu, so a miss means inconsistent state —
		// leave the job alone rather than corrupting backlog counts.
		if q.sched.remove(j) {
			q.backlog[j.tenant]--
			q.finishLocked(j, nil, context.Canceled)
		}
	}
	return true
}

// next blocks for the next dispatchable job; nil means the queue closed.
func (q *Queue) next() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if j := q.sched.pop(); j != nil {
			q.backlog[j.tenant]--
			// Claim atomically with the pop: the job gets its context here so
			// Cancel can interrupt it even while the worker is still parked
			// on the admission gate, and the queued branch of Cancel (which
			// decrements backlog and closes done) can never run for it.
			j.claimed = true
			j.ctx, j.cancel = context.WithCancel(context.WithValue(q.baseCtx, jobIDKey{}, j.id))
			return j
		}
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		j := q.next()
		if j == nil {
			return
		}
		// Admission: under congestion the AIMD window drops below the
		// worker count and excess workers block here, shrinking effective
		// concurrency without abandoning the job they already claimed.
		// Waiting on the job's own context lets Cancel unblock the wait.
		if err := q.gate.Acquire(j.ctx); err != nil {
			j.cancel()
			q.finish(j, nil, err)
			continue
		}
		// Canceled between claim and admission: resolve without running.
		if err := j.ctx.Err(); err != nil {
			q.gate.Release()
			j.cancel()
			q.finish(j, nil, err)
			continue
		}
		q.mu.Lock()
		j.status = StatusRunning
		j.started = q.opts.Clock()
		q.appendLocked(j)
		q.mu.Unlock()

		res, err := j.fn(j.ctx)
		latency := q.opts.Clock().Sub(j.started)
		j.cancel()
		q.gate.Release()
		now := q.opts.Clock()
		if cloud.IsThrottled(err) {
			q.gate.OnCongestion(now)
		} else {
			q.gate.OnSuccess(latency, now)
		}
		q.finish(j, res, err)
	}
}

// finish moves a dispatched job to its terminal state.
func (q *Queue) finish(j *Job, res any, err error) {
	q.mu.Lock()
	q.finishLocked(j, res, err)
	q.mu.Unlock()
}

func (q *Queue) finishLocked(j *Job, res any, err error) {
	j.result = res
	j.err = err
	j.finished = q.opts.Clock()
	switch {
	case errors.Is(err, context.Canceled):
		j.status = StatusCanceled
	case err != nil:
		j.status = StatusFailed
	default:
		j.status = StatusSucceeded
	}
	if !j.noRecord {
		q.appendLocked(j)
	}
	close(j.done)
	q.retireLocked(j)
}

// retireLocked records a newly-terminal job and evicts the tenant's oldest
// terminal jobs past the retention cap, so job records, results, and errors
// don't accumulate without bound in a long-running daemon.
func (q *Queue) retireLocked(j *Job) {
	ids := append(q.finished[j.tenant], j.id)
	for len(ids) > q.opts.MaxFinishedPerTenant {
		if old := q.jobs[ids[0]]; old != nil && old.idemKey != "" {
			delete(q.idem[old.tenant], old.idemKey)
		}
		delete(q.jobs, ids[0])
		ids = ids[1:]
	}
	q.finished[j.tenant] = ids
}

// QueuedLen reports how many jobs are waiting for dispatch.
func (q *Queue) QueuedLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sched.len()
}

// Shutdown stops the queue: new submits fail, still-queued jobs are
// canceled, and running jobs get until ctx expires to finish before their
// contexts are canceled. Always waits for workers to exit.
//
// With a store attached, still-queued jobs get a graceful-shutdown
// checkpoint: a clean "queued" record is journaled (instead of a canceled
// terminal record) so the next daemon start re-enqueues them, while local
// waiters see them resolve canceled. Running jobs that drain in time write
// terminal records through the normal finish path.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		for {
			j := q.sched.pop()
			if j == nil {
				break
			}
			q.backlog[j.tenant]--
			if q.opts.Store != nil {
				q.appendLocked(j) // status still queued: the restart checkpoint
				j.noRecord = true
			}
			q.finishLocked(j, nil, context.Canceled)
		}
		q.cond.Broadcast()
	}
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		q.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Restore rebuilds one replayed job in the queue after a daemon restart,
// preserving its pre-crash ID, timestamps, and idempotency key so clients
// re-polling old job IDs (or retrying old submits) see the original job.
//
//   - Terminal records become history: Get/List/Wait serve them immediately.
//   - Non-terminal records (queued at the crash, or running mid-flight) are
//     re-enqueued with fn as the work function; the caller chooses fn — for
//     a job that was mid-apply, that is the workspace recovery path, so the
//     resumed job completes under its original apply idempotency keys. A
//     nil fn marks the job failed with the given reason instead (e.g. its
//     workspace no longer exists).
//
// Restore must run before the queue takes live submissions: it advances
// the ID sequence past every restored ID so new jobs never collide.
func (q *Queue) Restore(stored StoredJob, fn func(ctx context.Context) (any, error), failReason string) (*Job, error) {
	if stored.ID == "" || stored.Tenant == "" {
		return nil, errors.New("jobs: restore needs an ID and tenant")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	if _, dup := q.jobs[stored.ID]; dup {
		return nil, fmt.Errorf("jobs: restore: %s already present", stored.ID)
	}
	// Keep the ID sequence ahead of everything replayed.
	if n, ok := parseJobID(stored.ID); ok && n > q.nextID {
		q.nextID = n
	}
	j := &Job{
		q: q, id: stored.ID, tenant: stored.Tenant, kind: stored.Kind,
		idemKey: stored.IdemKey, params: stored.Params, cost: stored.Cost,
		status: stored.Status, submitted: stored.Submitted,
		started: stored.Started, finished: stored.Finished,
		done: make(chan struct{}),
	}
	if stored.Err != "" {
		j.err = errors.New(stored.Err)
	}
	if len(stored.Result) > 0 {
		// Decode into any: the same shape a result has after one wire
		// round-trip, which is what JobStatus.Result carries anyway.
		var res any
		if json.Unmarshal(stored.Result, &res) == nil {
			j.result = res
		}
	}
	q.jobs[j.id] = j
	q.registerIdemLocked(j)
	switch {
	case stored.Status.Terminal():
		close(j.done)
		q.retireLocked(j)
	case fn == nil:
		if failReason == "" {
			failReason = "not recoverable after restart"
		}
		q.finishLocked(j, nil, errors.New(failReason))
	default:
		j.fn = fn
		j.status = StatusQueued
		q.backlog[j.tenant]++
		q.sched.push(j.tenant, q.weight(j.tenant), j.cost, j)
		q.cond.Signal()
	}
	return j, nil
}

// parseJobID extracts the sequence number from a "j-%06d" job ID.
func parseJobID(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// ActiveForTenant counts the tenant's non-terminal jobs (queued, claimed,
// or running). Workspace deletion refuses while this is non-zero.
func (q *Queue) ActiveForTenant(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, j := range q.jobs {
		if j.tenant == tenant && !j.status.Terminal() {
			n++
		}
	}
	return n
}

// DropTenant forgets a tenant's job history — memory and journal — after
// its workspace is deleted, so a recreated workspace with the same name
// starts clean. The caller must ensure the tenant has no active jobs.
func (q *Queue) DropTenant(tenant string) error {
	q.mu.Lock()
	for id, j := range q.jobs {
		if j.tenant == tenant && j.status.Terminal() {
			delete(q.jobs, id)
		}
	}
	delete(q.finished, tenant)
	delete(q.idem, tenant)
	q.mu.Unlock()
	if q.opts.Store != nil {
		return q.opts.Store.Drop(tenant)
	}
	return nil
}
