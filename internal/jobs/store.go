// Durable job store (DESIGN.md S28). The queue itself is an in-memory
// scheduler; this file gives cloudlessd a crash-safe ledger under it: every
// job transition (submitted -> running -> terminal) is appended to a
// CRC-framed per-tenant journal (internal/wal) and fsynced, so a SIGKILL'd
// daemon can replay the journals at startup and rebuild its entire job
// table — queued jobs are re-enqueued, jobs that were mid-flight are routed
// through recovery, and a client re-polling a pre-crash job ID sees the
// real outcome instead of a 404.
//
// Record format: each frame's payload is one JSON StoredJob snapshot (the
// full folded state at that transition, not a delta). Replay folds by job
// ID with last-record-wins, which makes the fold trivially idempotent and
// keeps torn-tail handling entirely inside internal/wal. Terminal records
// past the retention cap are compacted away by rewriting the journal once
// dead frames dominate, so a long-lived daemon's journal stays bounded.
package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cloudless/internal/wal"
)

// storeFile is the per-tenant journal filename under Root/<tenant>/.
const storeFile = "jobs.journal"

// StoredJob is the durable snapshot of one job at one transition. It is
// both the on-disk payload and what Replay hands back after folding.
type StoredJob struct {
	ID      string `json:"id"`
	Tenant  string `json:"tenant"`
	Kind    string `json:"kind"`
	Status  Status `json:"status"`
	IdemKey string `json:"idem_key,omitempty"`
	// Params is the submitter's request, opaque to the queue. The server
	// stores the wire JobRequest here so restart recovery can rebuild the
	// work function for jobs that still need to run.
	Params    json.RawMessage `json:"params,omitempty"`
	Cost      float64         `json:"cost,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Started   time.Time       `json:"started,omitempty"`
	Finished  time.Time       `json:"finished,omitempty"`
	Err       string          `json:"error,omitempty"`
	// Result is the JSON-rendered job result for terminal records ("" when
	// the result did not marshal — the status and error still persist).
	Result json.RawMessage `json:"result,omitempty"`
}

// StoreOptions tune OpenStore.
type StoreOptions struct {
	// MaxFinishedPerTenant mirrors the queue's terminal-job retention cap
	// (default 256): compaction drops the oldest terminal jobs past it.
	MaxFinishedPerTenant int
	// NoSync disables fsync (tests only; the daemon always syncs).
	NoSync bool
}

// Store manages the per-tenant job journals under one root directory
// (Root/<tenant>/jobs.journal — the same layout the workspace manager uses
// for its own artifacts). Safe for concurrent use.
type Store struct {
	root string
	opts StoreOptions

	mu      sync.Mutex
	tenants map[string]*tenantLog
	closed  bool
}

// tenantLog is one tenant's open journal plus the folded live view that
// drives compaction.
type tenantLog struct {
	f      *os.File
	path   string
	live   map[string]*StoredJob // folded job state, retention already applied
	order  []string              // terminal job IDs, oldest first
	frames int                   // frames in the file since last compaction
}

// OpenStore opens (or creates) a job store rooted at dir.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: store root is required")
	}
	if opts.MaxFinishedPerTenant <= 0 {
		opts.MaxFinishedPerTenant = 256
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: open store: %w", err)
	}
	return &Store{root: dir, opts: opts, tenants: map[string]*tenantLog{}}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// tenantPath returns the journal path for a tenant. Tenant names are
// workspace names, already validated path-safe by workspace.ValidName; a
// name that still smuggles a separator is rejected.
func (s *Store) tenantPath(tenant string) (string, error) {
	if tenant == "" || tenant != filepath.Base(tenant) || tenant == "." || tenant == ".." {
		return "", fmt.Errorf("jobs: invalid tenant %q", tenant)
	}
	return filepath.Join(s.root, tenant, storeFile), nil
}

// open returns the tenant's log, replaying the existing journal on first
// touch so the live view (and compaction bookkeeping) starts correct.
func (s *Store) open(tenant string) (*tenantLog, error) {
	if tl := s.tenants[tenant]; tl != nil {
		return tl, nil
	}
	path, err := s.tenantPath(tenant)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	live, frames, durable, err := readJournal(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	// Drop a torn tail left by a crash mid-append before appending past it.
	if fi, statErr := f.Stat(); statErr == nil && fi.Size() > int64(durable) {
		if err := f.Truncate(int64(durable)); err != nil {
			f.Close()
			return nil, fmt.Errorf("jobs: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	tl := &tenantLog{f: f, path: path, live: live, frames: frames}
	for _, j := range jobsInOrder(live) {
		if j.Status.Terminal() {
			tl.order = append(tl.order, j.ID)
		}
	}
	s.tenants[tenant] = tl
	s.retire(tl)
	return tl, nil
}

// readJournal folds one journal file into job state. Returns the folded
// jobs, the number of intact frames, and the durable byte prefix.
func readJournal(path string) (map[string]*StoredJob, int, int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]*StoredJob{}, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("jobs: read journal: %w", err)
	}
	live := map[string]*StoredJob{}
	frames := 0
	durable := wal.Scan(data, func(payload []byte) bool {
		var j StoredJob
		if json.Unmarshal(payload, &j) == nil && j.ID != "" {
			cp := j
			live[j.ID] = &cp
		}
		frames++
		return true
	})
	return live, frames, durable, nil
}

// jobsInOrder sorts folded jobs by ID (zero-padded sequence numbers, so
// lexicographic order is submission order).
func jobsInOrder(live map[string]*StoredJob) []StoredJob {
	out := make([]StoredJob, 0, len(live))
	for _, j := range live {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Append durably records one job transition: the frame is written and
// fsynced before Append returns, so an acknowledged submit (or an observed
// state change) survives a SIGKILL immediately after.
func (s *Store) Append(j StoredJob) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("jobs: store closed")
	}
	tl, err := s.open(j.Tenant)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("jobs: encode record: %w", err)
	}
	if _, err := tl.f.Write(wal.Encode(payload)); err != nil {
		return fmt.Errorf("jobs: append record: %w", err)
	}
	if !s.opts.NoSync {
		if err := tl.f.Sync(); err != nil {
			return fmt.Errorf("jobs: sync journal: %w", err)
		}
	}
	tl.frames++
	cp := j
	if prev := tl.live[j.ID]; prev == nil || !prev.Status.Terminal() {
		if j.Status.Terminal() {
			tl.order = append(tl.order, j.ID)
		}
	}
	tl.live[j.ID] = &cp
	s.retire(tl)
	return s.maybeCompact(tl)
}

// retire drops the oldest terminal jobs past the retention cap from the
// live view; the dead frames are reclaimed by the next compaction.
func (s *Store) retire(tl *tenantLog) {
	for len(tl.order) > s.opts.MaxFinishedPerTenant {
		delete(tl.live, tl.order[0])
		tl.order = tl.order[1:]
	}
}

// maybeCompact rewrites the journal once dead frames dominate: more than
// twice the live-job count (plus slack so small journals never churn).
// The rewrite is crash-safe: new file, fsync, rename over the old one.
func (s *Store) maybeCompact(tl *tenantLog) error {
	if tl.frames <= 2*len(tl.live)+64 {
		return nil
	}
	tmp := tl.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: compact: %w", err)
	}
	frames := 0
	for _, j := range jobsInOrder(tl.live) {
		payload, err := json.Marshal(j)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("jobs: compact: %w", err)
		}
		if _, err := f.Write(wal.Encode(payload)); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("jobs: compact: %w", err)
		}
		frames++
	}
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("jobs: compact: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: compact: %w", err)
	}
	if err := os.Rename(tmp, tl.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: compact: %w", err)
	}
	old := tl.f
	nf, err := os.OpenFile(tl.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: compact reopen: %w", err)
	}
	if _, err := nf.Seek(0, 2); err != nil {
		nf.Close()
		return err
	}
	old.Close()
	tl.f = nf
	tl.frames = frames
	return nil
}

// Replay folds a tenant's journal into its job history, oldest submission
// first. Safe to call for tenants with no journal (returns nil).
func (s *Store) Replay(tenant string) ([]StoredJob, error) {
	if s == nil {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tl, err := s.open(tenant)
	if err != nil {
		return nil, err
	}
	jobs := jobsInOrder(tl.live)
	// The reconciler checkpoint shares the journal under a reserved ID; it
	// is resume state, not a job, so replay must not hand it to the queue.
	out := jobs[:0]
	for _, j := range jobs {
		if j.ID != reconcilerID {
			out = append(out, j)
		}
	}
	return out, nil
}

// Tenants lists every tenant with a job journal under the root.
func (s *Store) Tenants() ([]string, error) {
	if s == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(s.root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.root, e.Name(), storeFile)); err == nil {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Drop closes and deletes a tenant's journal (workspace deletion): a later
// workspace reusing the name must not inherit the old one's job history.
func (s *Store) Drop(tenant string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if tl := s.tenants[tenant]; tl != nil {
		tl.f.Close()
		delete(s.tenants, tenant)
	}
	path, err := s.tenantPath(tenant)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Close releases every open journal. Appends after Close fail.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for name, tl := range s.tenants {
		if err := tl.f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.tenants, name)
	}
	return first
}
