package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cloudless/internal/wal"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestStoreSubmitSurvivesReplay: a queued record appended before a "crash"
// (new store over the same directory) replays intact.
func TestStoreSubmitSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := StoredJob{
		ID: "j-000001", Tenant: "ws-a", Kind: "apply", Status: StatusQueued,
		IdemKey: "k1", Params: json.RawMessage(`{"kind":"apply"}`),
		Submitted: time.Now().UTC().Truncate(time.Millisecond),
	}
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	s.Close() // simulate crash + restart: reopen cold

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs, err := s2.Replay("ws-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(jobs))
	}
	got := jobs[0]
	if got.ID != rec.ID || got.Status != StatusQueued || got.IdemKey != "k1" ||
		string(got.Params) != `{"kind":"apply"}` || !got.Submitted.Equal(rec.Submitted) {
		t.Fatalf("replayed record mismatch: %+v", got)
	}
}

// TestStoreLastRecordWins: transitions are full snapshots; replay folds to
// the latest one per job.
func TestStoreLastRecordWins(t *testing.T) {
	s := testStore(t)
	base := StoredJob{ID: "j-000001", Tenant: "t", Kind: "plan", Status: StatusQueued}
	for _, st := range []Status{StatusQueued, StatusRunning, StatusSucceeded} {
		base.Status = st
		if err := s.Append(base); err != nil {
			t.Fatal(err)
		}
	}
	jobs, err := s.Replay("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Status != StatusSucceeded {
		t.Fatalf("fold = %+v, want one succeeded job", jobs)
	}
}

// TestStoreTornTailTruncated: a partial final frame (crash mid-append) is
// dropped on reopen; the intact prefix survives and new appends land after
// the durable prefix.
func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(StoredJob{ID: "j-000001", Tenant: "t", Status: StatusQueued}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the tail: append a frame, then chop bytes off the end.
	path := filepath.Join(dir, "t", storeFile)
	torn := wal.Encode([]byte(`{"id":"j-000002","tenant":"t","status":"queued"}`))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs, err := s2.Replay("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "j-000001" {
		t.Fatalf("after torn tail replay = %+v, want only j-000001", jobs)
	}
	// The reopened journal must be appendable past the truncation.
	if err := s2.Append(StoredJob{ID: "j-000003", Tenant: "t", Status: StatusQueued}); err != nil {
		t.Fatal(err)
	}
	jobs, _ = s2.Replay("t")
	if len(jobs) != 2 {
		t.Fatalf("after post-truncate append replay = %+v, want 2 jobs", jobs)
	}
}

// TestStoreCompaction: a long history of terminal jobs is bounded — the
// journal file shrinks once dead frames dominate, and replay still returns
// only the retained window.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{MaxFinishedPerTenant: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 500; i++ {
		id := jobID(i)
		for _, st := range []Status{StatusQueued, StatusRunning, StatusSucceeded} {
			if err := s.Append(StoredJob{ID: id, Tenant: "t", Status: st}); err != nil {
				t.Fatal(err)
			}
		}
	}
	jobs, err := s.Replay("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 16 {
		t.Fatalf("retained %d jobs, want 16", len(jobs))
	}
	if jobs[len(jobs)-1].ID != jobID(500) || jobs[0].ID != jobID(485) {
		t.Fatalf("retained window [%s..%s], want [%s..%s]",
			jobs[0].ID, jobs[len(jobs)-1].ID, jobID(485), jobID(500))
	}
	// 500 jobs x 3 records each would be ~1500 frames; compaction must keep
	// the file within the live window plus slack.
	fi, err := os.Stat(filepath.Join(dir, "t", storeFile))
	if err != nil {
		t.Fatal(err)
	}
	maxFrames := 2*16 + 64 + 1
	maxBytes := int64(maxFrames) * 256 // generous per-record ceiling
	if fi.Size() > maxBytes {
		t.Fatalf("journal is %d bytes after compaction, want <= %d", fi.Size(), maxBytes)
	}
}

func jobID(n int) string { return fmt.Sprintf("j-%06d", n) }

// TestQueueDurableLifecycle: a queue wired to a store journals submit,
// start, and finish; a second queue restored from the replay serves the
// original job ID with the original result.
func TestQueueDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := New(Options{Workers: 1, FixedAdmission: true, Store: st})
	j, err := q.Submit(Request{
		Tenant: "ws", Kind: "plan", IdemKey: "idem-1",
		Fn: func(ctx context.Context) (any, error) { return map[string]any{"adds": 3.0}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := q.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Restart: fresh store + queue over the same directory.
	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q2 := New(Options{Workers: 1, FixedAdmission: true, Store: st2})
	defer q2.Shutdown(context.Background())
	replayed, err := st2.Replay("ws")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range replayed {
		if _, err := q2.Restore(rec, nil, ""); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := q2.Get(j.ID())
	if !ok {
		t.Fatalf("restored queue lost job %s", j.ID())
	}
	v := got.Snapshot()
	if v.Status != StatusSucceeded {
		t.Fatalf("restored job status %s, want succeeded", v.Status)
	}
	res, _ := got.Result()
	m, _ := res.(map[string]any)
	if m["adds"] != 3.0 {
		t.Fatalf("restored result = %#v, want map with adds=3", res)
	}
	// Retrying the original submit must dedup to the restored job, not run.
	j2, err := q2.Submit(Request{
		Tenant: "ws", Kind: "plan", IdemKey: "idem-1",
		Fn: func(ctx context.Context) (any, error) { return nil, errors.New("must not run") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() != j.ID() {
		t.Fatalf("idem resubmit created %s, want original %s", j2.ID(), j.ID())
	}
	// And new jobs must not collide with replayed IDs.
	j3, err := q2.Submit(Request{Tenant: "ws", Kind: "plan",
		Fn: func(ctx context.Context) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID() <= j.ID() {
		t.Fatalf("post-restore job ID %s does not advance past %s", j3.ID(), j.ID())
	}
}

// TestQueueRestoreReenqueues: a job whose last record is non-terminal is
// re-enqueued with the supplied fn and runs to completion under its
// original ID.
func TestQueueRestoreReenqueues(t *testing.T) {
	st := testStore(t)
	q := New(Options{Workers: 1, FixedAdmission: true, Store: st})
	defer q.Shutdown(context.Background())
	ran := make(chan struct{})
	j, err := q.Restore(StoredJob{
		ID: "j-000042", Tenant: "ws", Kind: "apply", Status: StatusRunning,
		Submitted: time.Now(),
	}, func(ctx context.Context) (any, error) {
		close(ran)
		return "resumed", nil
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("restored job never ran")
	}
	v, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusSucceeded || v.ID != "j-000042" {
		t.Fatalf("restored run = %+v, want j-000042 succeeded", v)
	}
	res, _ := j.Result()
	if res != "resumed" {
		t.Fatalf("result = %v, want resumed", res)
	}
}

// TestQueueRestoreNilFnFails: a non-terminal job whose workspace is gone
// resolves failed with the caller's reason instead of staying queued.
func TestQueueRestoreNilFnFails(t *testing.T) {
	st := testStore(t)
	q := New(Options{Workers: 1, FixedAdmission: true, Store: st})
	defer q.Shutdown(context.Background())
	j, err := q.Restore(StoredJob{
		ID: "j-000007", Tenant: "gone", Kind: "apply", Status: StatusQueued,
	}, nil, "workspace deleted before restart")
	if err != nil {
		t.Fatal(err)
	}
	v := j.Snapshot()
	if v.Status != StatusFailed || v.Err != "workspace deleted before restart" {
		t.Fatalf("restore with nil fn = %+v, want failed with reason", v)
	}
}

// TestShutdownCheckpointsQueuedJobs: the graceful-shutdown path journals a
// clean queued record for admitted-but-unstarted jobs (so restart
// re-enqueues them) instead of a canceled terminal record.
func TestShutdownCheckpointsQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Zero workers: submitted jobs can never dispatch.
	q := New(Options{Workers: 1, FixedAdmission: true, Store: st})
	block := make(chan struct{})
	if _, err := q.Submit(Request{Tenant: "ws", Kind: "apply",
		Fn: func(ctx context.Context) (any, error) { <-block; return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to claim the blocker so the next submit stays
	// queued in the scheduler.
	for i := 0; ; i++ {
		if q.QueuedLen() == 0 {
			break
		}
		if i > 1000 {
			t.Fatal("blocker never claimed")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := q.Submit(Request{Tenant: "ws", Kind: "plan",
		Fn: func(ctx context.Context) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	replayed, err := st2.Replay("ws")
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]StoredJob{}
	for _, r := range replayed {
		byID[r.ID] = r
	}
	if got := byID[queued.ID()]; got.Status != StatusQueued {
		t.Fatalf("drained-queued job replays as %s, want queued checkpoint", got.Status)
	}
}

// TestDropTenant: deletion wipes history and journal so a reused name
// starts clean.
func TestDropTenant(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	q := New(Options{Workers: 1, FixedAdmission: true, Store: st})
	defer q.Shutdown(context.Background())
	j, err := q.Submit(Request{Tenant: "ws", Kind: "plan", IdemKey: "k",
		Fn: func(ctx context.Context) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if q.ActiveForTenant("ws") != 0 {
		t.Fatal("job should be terminal")
	}
	if err := q.DropTenant("ws"); err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Get(j.ID()); ok {
		t.Fatal("dropped tenant's job still resolvable")
	}
	if _, err := os.Stat(filepath.Join(dir, "ws", storeFile)); !os.IsNotExist(err) {
		t.Fatalf("journal still present after drop: %v", err)
	}
	if len(q.List("ws")) != 0 {
		t.Fatal("dropped tenant still has listed jobs")
	}
}
