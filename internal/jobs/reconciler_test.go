package jobs

import (
	"encoding/json"
	"testing"
)

// TestReconcilerCheckpointDurability: the reconciler checkpoint rides the
// jobs journal — last write wins, it survives a crash/reopen and heavy
// compaction pressure, and Replay never surfaces it as a job.
func TestReconcilerCheckpointDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{MaxFinishedPerTenant: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveReconciler("ws-a", json.RawMessage(`{"enabled":true,"watermark":1}`)); err != nil {
		t.Fatal(err)
	}
	// Churn enough terminal jobs to force several compactions; the
	// non-terminal checkpoint record must ride through every rewrite.
	for i := 1; i <= 200; i++ {
		id := jobID(i)
		for _, st := range []Status{StatusQueued, StatusRunning, StatusSucceeded} {
			if err := s.Append(StoredJob{ID: id, Tenant: "ws-a", Status: st}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.SaveReconciler("ws-a", json.RawMessage(`{"enabled":true,"watermark":42}`)); err != nil {
		t.Fatal(err)
	}
	s.Close() // crash + restart

	s2, err := OpenStore(dir, StoreOptions{MaxFinishedPerTenant: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cp, err := s2.LoadReconciler("ws-a")
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Enabled   bool  `json:"enabled"`
		Watermark int64 `json:"watermark"`
	}
	if err := json.Unmarshal(cp, &got); err != nil {
		t.Fatalf("checkpoint did not survive: %v (raw %q)", err, cp)
	}
	if !got.Enabled || got.Watermark != 42 {
		t.Fatalf("checkpoint = %+v, want enabled watermark 42 (last write wins)", got)
	}
	// The checkpoint is resume state, not a job: replay must filter it out.
	jobs, err := s2.Replay("ws-a")
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.ID == reconcilerID {
			t.Fatalf("replay surfaced the checkpoint as a job: %+v", j)
		}
	}
	if len(jobs) != 8 {
		t.Fatalf("replayed %d jobs, want the 8 retained", len(jobs))
	}
}

// TestLoadReconcilerEmpty: a tenant with no saved checkpoint (or a nil
// store) loads nil without error.
func TestLoadReconcilerEmpty(t *testing.T) {
	s := testStore(t)
	cp, err := s.LoadReconciler("nobody")
	if err != nil || cp != nil {
		t.Fatalf("LoadReconciler = %q, %v; want nil, nil", cp, err)
	}
	var nilStore *Store
	cp, err = nilStore.LoadReconciler("nobody")
	if err != nil || cp != nil {
		t.Fatalf("nil store LoadReconciler = %q, %v; want nil, nil", cp, err)
	}
}
