package jobs

// Start-time fair queueing (SFQ) over per-tenant FIFOs. Each queued job
// gets a virtual start tag S = max(virtual time, tenant's last finish tag)
// and a finish tag F = S + cost/weight; dispatch always picks the smallest
// finish tag (ties broken by submission order). The virtual clock advances
// to the start tag of whatever is dispatched, so an idle tenant that comes
// back starts at "now" rather than burning accumulated credit, and a
// saturating tenant's backlog parks ever further in the virtual future —
// a light tenant's next job overtakes it by construction, bounding the
// light tenant's wait to roughly one job per competing tenant regardless
// of backlog depth.
//
// The scheduler is purely deterministic: tags depend only on the push/pop
// sequence, never on wall time, which is what makes the fairness tests
// exact rather than statistical.

// item is one scheduled entry.
type item struct {
	job    *Job
	start  float64
	finish float64
	seq    int // global submission order, the tie-break
}

// tenantQueue holds one tenant's backlog in submission order.
type tenantQueue struct {
	weight     float64
	lastFinish float64
	fifo       []*item
}

// sfq is the scheduler core. Not goroutine-safe; the Queue serializes
// access under its own lock.
type sfq struct {
	vtime   float64
	seq     int
	tenants map[string]*tenantQueue
	queued  int
}

func newSFQ() *sfq {
	return &sfq{tenants: map[string]*tenantQueue{}}
}

// push tags and enqueues a job for its tenant.
func (s *sfq) push(tenant string, weight, cost float64, j *Job) {
	if weight <= 0 {
		weight = 1
	}
	if cost <= 0 {
		cost = 1
	}
	tq := s.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{weight: weight}
		s.tenants[tenant] = tq
	}
	tq.weight = weight
	start := s.vtime
	if tq.lastFinish > start {
		start = tq.lastFinish
	}
	it := &item{job: j, start: start, finish: start + cost/tq.weight, seq: s.seq}
	s.seq++
	tq.lastFinish = it.finish
	tq.fifo = append(tq.fifo, it)
	s.queued++
}

// pop dispatches the job with the smallest finish tag, or nil when empty.
func (s *sfq) pop() *Job {
	var best *item
	for _, tq := range s.tenants {
		if len(tq.fifo) == 0 {
			continue
		}
		head := tq.fifo[0]
		if best == nil || head.finish < best.finish ||
			(head.finish == best.finish && head.seq < best.seq) {
			best = head
		}
	}
	if best == nil {
		return nil
	}
	tq := s.tenants[best.job.tenant]
	tq.fifo = tq.fifo[1:]
	s.queued--
	if best.start > s.vtime {
		s.vtime = best.start
	}
	return best.job
}

// remove drops a still-queued job (cancellation), reporting whether it was
// found. Its tags stay consumed — cancelling work doesn't refund virtual
// time already charged to the tenant.
func (s *sfq) remove(j *Job) bool {
	tq := s.tenants[j.tenant]
	if tq == nil {
		return false
	}
	for i, it := range tq.fifo {
		if it.job == j {
			tq.fifo = append(tq.fifo[:i], tq.fifo[i+1:]...)
			s.queued--
			return true
		}
	}
	return false
}

// len reports the number of queued jobs.
func (s *sfq) len() int { return s.queued }
