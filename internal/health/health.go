// Package health implements the guarded-apply primitives layered on the
// cloud's readiness lifecycle (DESIGN.md S24):
//
//   - Probe: poll a resource's health with timeout and backoff until it turns
//     ready, fails, or the deadline passes — the gate between "the API ACKed"
//     and "the op is done";
//   - Fuse: a per-domain failure-rate circuit breaker (per run and per
//     region) that stops admitting new ops once a domain has failed too much,
//     while in-flight ops drain;
//   - CanaryWave: a dependency-closed selection of the changeset applied
//     first, gating the release of the rest.
//
// The orchestration that composes these with the journal-backed rollback
// lives in internal/guard.
package health

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/provider"
)

// ProbeOptions bound one readiness probe loop.
type ProbeOptions struct {
	// Timeout is the total time a resource gets to turn ready (default 30s).
	Timeout time.Duration
	// Interval is the first poll gap; subsequent polls back off
	// exponentially (default 10ms).
	Interval time.Duration
	// MaxInterval caps the poll gap (default 500ms).
	MaxInterval time.Duration
}

func (o ProbeOptions) withDefaults() ProbeOptions {
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Interval <= 0 {
		o.Interval = 10 * time.Millisecond
	}
	if o.MaxInterval <= 0 {
		o.MaxInterval = 500 * time.Millisecond
	}
	return o
}

// GateError is the failure of a health gate: the cloud ACKed the op but the
// resource never turned ready. The resource exists — callers must record it
// (state, journal) before propagating the error, or it becomes an orphan.
type GateError struct {
	Addr   string
	Type   string
	ID     string
	Status cloud.HealthStatus
	Reason string
	// Waited is how long the probe loop watched before giving up.
	Waited time.Duration
}

// Error implements the error interface.
func (e *GateError) Error() string {
	msg := fmt.Sprintf("health gate: %s %s is %s after %s", e.Type, e.ID, e.Status, e.Waited.Round(time.Millisecond))
	if e.Addr != "" {
		msg = e.Addr + ": " + msg
	}
	if e.Reason != "" {
		msg += " (" + e.Reason + ")"
	}
	return msg
}

// IsGateError reports whether err is (or wraps) a health-gate failure.
func IsGateError(err error) bool {
	var ge *GateError
	return errors.As(err, &ge)
}

// Probe polls a resource's health until it is ready (nil error), definitively
// failed, or the timeout passes (*GateError), or ctx is canceled (ctx error).
// Probes run under provider.WithFresh: a cached "provisioning" report must
// never satisfy — or starve — the gate; fresh reads still coalesce across
// concurrent probes of the same resource.
func Probe(ctx context.Context, cl cloud.Interface, typ, id string, o ProbeOptions) (time.Duration, error) {
	o = o.withDefaults()
	ctx = provider.WithFresh(ctx)
	start := time.Now()
	deadline := start.Add(o.Timeout)
	interval := o.Interval
	last := cloud.HealthUnknown
	reason := ""
	for {
		rep, err := cl.Health(ctx, typ, id)
		switch {
		case err == nil:
			last, reason = rep.Status, rep.Reason
			if rep.Status.Ready() {
				return time.Since(start), nil
			}
			if rep.Status == cloud.HealthFailed {
				// Terminal: no point burning the rest of the timeout.
				return time.Since(start), &GateError{Type: typ, ID: id,
					Status: rep.Status, Reason: rep.Reason, Waited: time.Since(start)}
			}
		case ctx.Err() != nil:
			return time.Since(start), ctx.Err()
		default:
			// Transient probe failure (the runtime already retried): keep
			// polling until the deadline — an unreachable health endpoint is
			// not evidence the resource is broken.
		}
		now := time.Now()
		if now.Add(interval).After(deadline) {
			return time.Since(start), &GateError{Type: typ, ID: id,
				Status: last, Reason: reason, Waited: time.Since(start)}
		}
		t := time.NewTimer(interval)
		select {
		case <-ctx.Done():
			t.Stop()
			return time.Since(start), ctx.Err()
		case <-t.C:
		}
		interval *= 2
		if interval > o.MaxInterval {
			interval = o.MaxInterval
		}
	}
}
