package health

import (
	"math"
	"sort"

	"cloudless/internal/graph"
)

// CanaryWave picks a dependency-closed first wave from the pending change
// set: roughly fraction·len(pending) addresses such that every dependency a
// wave member has inside pending is also in the wave. Selection is by whole
// dependency chains — each pending node is considered with its full closure
// of pending dependencies — so a canary exercises complete vertical slices
// (vpc → subnet → vm), not just a layer of roots. Deterministic: pending is
// walked in sorted order, smallest-closure-first, so repeated plans canary
// the same slice.
//
// The graph is the plan graph; dependencies through nodes outside pending
// (noops) are followed transitively. fraction <= 0 or >= 1, or a pending set
// of size <= 1, yields no split (nil wave, everything released at once).
func CanaryWave(g *graph.Graph, pending []string, fraction float64) (wave, rest []string) {
	if fraction <= 0 || fraction >= 1 || len(pending) <= 1 {
		return nil, append([]string(nil), pending...)
	}
	inPending := make(map[string]bool, len(pending))
	for _, a := range pending {
		inPending[a] = true
	}
	target := int(math.Ceil(fraction * float64(len(pending))))
	if target < 1 {
		target = 1
	}

	// Closure of each pending node: itself plus its transitive pending
	// dependencies.
	type cand struct {
		addr    string
		closure []string
	}
	cands := make([]cand, 0, len(pending))
	for _, a := range pending {
		cl := []string{a}
		if g.HasNode(a) {
			for dep := range g.TransitiveDependencies(a) {
				if inPending[dep] {
					cl = append(cl, dep)
				}
			}
		}
		cands = append(cands, cand{addr: a, closure: cl})
	}
	// Largest closure first: a leaf drags its whole chain in, so the wave
	// prefers one complete slice over a layer of disconnected roots. A
	// candidate is taken only if its unchosen remainder fits the budget;
	// when nothing fits, the smallest candidate is taken so the wave is
	// never empty.
	sort.Slice(cands, func(i, j int) bool {
		if len(cands[i].closure) != len(cands[j].closure) {
			return len(cands[i].closure) > len(cands[j].closure)
		}
		return cands[i].addr < cands[j].addr
	})

	chosen := map[string]bool{}
	for _, c := range cands {
		added := 0
		for _, a := range c.closure {
			if !chosen[a] {
				added++
			}
		}
		if added == 0 || len(chosen)+added > target {
			continue
		}
		for _, a := range c.closure {
			chosen[a] = true
		}
	}
	if len(chosen) == 0 {
		small := cands[len(cands)-1]
		for _, a := range small.closure {
			chosen[a] = true
		}
	}
	if len(chosen) >= len(pending) {
		// The closures swallowed everything: no meaningful split.
		return nil, append([]string(nil), pending...)
	}
	for _, a := range pending {
		if chosen[a] {
			wave = append(wave, a)
		} else {
			rest = append(rest, a)
		}
	}
	sort.Strings(wave)
	sort.Strings(rest)
	return wave, rest
}
