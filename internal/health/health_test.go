package health

import (
	"context"
	"errors"
	"testing"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/graph"
)

// scriptedCloud serves a fixed sequence of health reports (last repeats).
type scriptedCloud struct {
	cloud.Interface // nil: only Health is implemented
	reports         []cloud.HealthReport
	errs            []error
	calls           int
}

func (s *scriptedCloud) Health(ctx context.Context, typ, id string) (*cloud.HealthReport, error) {
	i := s.calls
	s.calls++
	if i < len(s.errs) && s.errs[i] != nil {
		return nil, s.errs[i]
	}
	if i >= len(s.reports) {
		i = len(s.reports) - 1
	}
	rep := s.reports[i]
	return &rep, nil
}

func TestProbeWaitsForReady(t *testing.T) {
	cl := &scriptedCloud{reports: []cloud.HealthReport{
		{Status: cloud.HealthProvisioning},
		{Status: cloud.HealthProvisioning},
		{Status: cloud.HealthReady},
	}}
	waited, err := Probe(context.Background(), cl, "aws_vpc", "vpc-1", ProbeOptions{
		Timeout: time.Second, Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("probe: %s", err)
	}
	if cl.calls != 3 {
		t.Errorf("calls = %d, want 3", cl.calls)
	}
	if waited <= 0 {
		t.Errorf("waited = %s, want > 0", waited)
	}
}

func TestProbeFailedIsTerminal(t *testing.T) {
	cl := &scriptedCloud{reports: []cloud.HealthReport{
		{Status: cloud.HealthFailed, Reason: "InjectedFault"},
	}}
	start := time.Now()
	_, err := Probe(context.Background(), cl, "aws_vm", "i-1", ProbeOptions{
		Timeout: 10 * time.Second, Interval: time.Millisecond,
	})
	var ge *GateError
	if !errors.As(err, &ge) {
		t.Fatalf("err = %v, want *GateError", err)
	}
	if ge.Status != cloud.HealthFailed || ge.Reason != "InjectedFault" {
		t.Errorf("gate error %+v lost status/reason", ge)
	}
	if time.Since(start) > time.Second {
		t.Error("terminal failure burned the timeout instead of returning immediately")
	}
	if !IsGateError(err) {
		t.Error("IsGateError is false for a GateError")
	}
}

func TestProbeTimesOutOnEndlessProvisioning(t *testing.T) {
	cl := &scriptedCloud{reports: []cloud.HealthReport{{Status: cloud.HealthProvisioning}}}
	_, err := Probe(context.Background(), cl, "aws_vm", "i-1", ProbeOptions{
		Timeout: 30 * time.Millisecond, Interval: 2 * time.Millisecond,
	})
	var ge *GateError
	if !errors.As(err, &ge) {
		t.Fatalf("err = %v, want *GateError", err)
	}
	if ge.Status != cloud.HealthProvisioning {
		t.Errorf("gate status = %s, want provisioning", ge.Status)
	}
}

func TestProbeToleratesTransientErrors(t *testing.T) {
	cl := &scriptedCloud{
		errs: []error{errors.New("transport hiccup"), nil},
		reports: []cloud.HealthReport{
			{Status: cloud.HealthReady}, // consumed on the 1st (errored) call's index
			{Status: cloud.HealthReady},
		},
	}
	if _, err := Probe(context.Background(), cl, "aws_vm", "i-1", ProbeOptions{
		Timeout: time.Second, Interval: time.Millisecond,
	}); err != nil {
		t.Fatalf("probe gave up on a transient error: %s", err)
	}
}

func TestProbeHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cl := &scriptedCloud{errs: []error{ctx.Err()}, reports: []cloud.HealthReport{{}}}
	_, err := Probe(ctx, cl, "aws_vm", "i-1", ProbeOptions{Timeout: time.Second})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFuseAbsoluteThreshold(t *testing.T) {
	var trips []string
	f := NewFuse(FuseOptions{MaxFailures: 2, MaxFailureFraction: -1,
		OnTrip: func(d string) { trips = append(trips, d) }})
	doms := Domains("us-east-1")
	f.Plan(RunDomain, 10)
	if !f.Allow(doms...) {
		t.Fatal("fresh fuse refuses admission")
	}
	f.Failure(doms...)
	if !f.Allow(doms...) {
		t.Fatal("tripped after 1 failure with MaxFailures=2")
	}
	f.Failure(doms...)
	if f.Allow(doms...) {
		t.Fatal("not tripped after 2 failures")
	}
	if len(trips) != 2 { // run + region trip together here
		t.Errorf("OnTrip fired %d times, want 2 (%v)", len(trips), trips)
	}
	if got := f.Tripped(); len(got) != 2 {
		t.Errorf("Tripped() = %v", got)
	}
	if f.Failures() != 2 {
		t.Errorf("Failures() = %d, want 2", f.Failures())
	}
}

func TestFuseFractionIsPerDomain(t *testing.T) {
	// 2 of 10 run ops fail — under the 0.5 run fraction. But both failures
	// are the sick region's only 2 planned ops: its domain trips alone.
	f := NewFuse(FuseOptions{MaxFailures: -1, MaxFailureFraction: 0.5})
	f.Plan(RunDomain, 10)
	f.Plan(RegionDomain("westus"), 2)
	f.Plan(RegionDomain("eastus"), 8)
	f.Failure(RunDomain, RegionDomain("westus"))
	f.Failure(RunDomain, RegionDomain("westus"))
	if f.Allow(RunDomain, RegionDomain("westus")) {
		t.Error("sick region still admitting")
	}
	if !f.Allow(RunDomain, RegionDomain("eastus")) {
		t.Error("healthy sibling region blocked")
	}
	if got := f.Tripped(); len(got) != 1 || got[0] != "region:westus" {
		t.Errorf("Tripped() = %v, want [region:westus]", got)
	}
}

func TestRegionDomainDefault(t *testing.T) {
	if got := RegionDomain(""); got != "region:default" {
		t.Errorf("RegionDomain(\"\") = %q", got)
	}
}

func waveGraph(t *testing.T) *graph.Graph {
	t.Helper()
	// Two disconnected slices: vpcA -> subnetA -> vmA, and vpcB -> subnetB.
	g := graph.New()
	for _, n := range []string{"vpcA", "subnetA", "vmA", "vpcB", "subnetB"} {
		g.AddNode(n)
	}
	mustEdge := func(from, to string) {
		if err := g.AddEdge(from, to); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge("subnetA", "vpcA")
	mustEdge("vmA", "subnetA")
	mustEdge("subnetB", "vpcB")
	return g
}

func TestCanaryWaveIsDependencyClosed(t *testing.T) {
	g := waveGraph(t)
	pending := []string{"vpcA", "subnetA", "vmA", "vpcB", "subnetB"}
	wave, rest := CanaryWave(g, pending, 0.6)
	if len(wave) == 0 || len(rest) == 0 {
		t.Fatalf("no split: wave=%v rest=%v", wave, rest)
	}
	inWave := map[string]bool{}
	for _, a := range wave {
		inWave[a] = true
	}
	for _, a := range wave {
		for dep := range g.TransitiveDependencies(a) {
			if !inWave[dep] {
				t.Errorf("wave member %s depends on %s outside the wave", a, dep)
			}
		}
	}
	if len(wave)+len(rest) != len(pending) {
		t.Errorf("wave %v + rest %v does not cover pending", wave, rest)
	}
	// Largest-closure-first: the 3-node A slice fits the ceil(0.6*5)=3 budget.
	want := map[string]bool{"vpcA": true, "subnetA": true, "vmA": true}
	for _, a := range wave {
		if !want[a] {
			t.Errorf("wave picked %s; want the full A slice %v", a, wave)
		}
	}
}

func TestCanaryWaveDeterministic(t *testing.T) {
	g := waveGraph(t)
	pending := []string{"vpcB", "vmA", "subnetA", "subnetB", "vpcA"}
	w1, r1 := CanaryWave(g, pending, 0.4)
	w2, r2 := CanaryWave(g, pending, 0.4)
	if len(w1) != len(w2) || len(r1) != len(r2) {
		t.Fatalf("nondeterministic split: %v/%v vs %v/%v", w1, r1, w2, r2)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("nondeterministic wave: %v vs %v", w1, w2)
		}
	}
}

func TestCanaryWaveNoSplitCases(t *testing.T) {
	g := waveGraph(t)
	pending := []string{"vpcA", "subnetA"}
	if wave, _ := CanaryWave(g, pending, 0); wave != nil {
		t.Errorf("fraction 0 split: %v", wave)
	}
	if wave, _ := CanaryWave(g, pending, 1); wave != nil {
		t.Errorf("fraction 1 split: %v", wave)
	}
	if wave, _ := CanaryWave(g, []string{"vpcA"}, 0.5); wave != nil {
		t.Errorf("singleton split: %v", wave)
	}
	// A fully connected chain cannot be split below its closure size: the
	// fallback takes the smallest candidate, and if that swallows everything
	// there is no split.
	chain := graph.New()
	chain.AddNode("a")
	chain.AddNode("b")
	_ = chain.AddEdge("b", "a")
	wave, rest := CanaryWave(chain, []string{"a", "b"}, 0.5)
	if wave == nil {
		// Acceptable: closure swallowed everything is only for full cover.
		if len(rest) != 2 {
			t.Errorf("rest = %v", rest)
		}
	} else if len(wave) != 1 || wave[0] != "a" {
		t.Errorf("chain wave = %v, want [a]", wave)
	}
}
