package health

import (
	"sort"
	"sync"
)

// RunDomain is the whole-run failure domain every op belongs to; regional
// domains are "region:<name>".
const RunDomain = "run"

// RegionDomain names the failure domain of one region.
func RegionDomain(region string) string {
	if region == "" {
		region = "default"
	}
	return "region:" + region
}

// Domains returns the failure domains an op in the given region belongs to.
func Domains(region string) []string {
	return []string{RunDomain, RegionDomain(region)}
}

// FuseOptions configure the circuit breaker's trip thresholds. Both apply
// per domain; a domain trips when either is crossed.
type FuseOptions struct {
	// MaxFailures trips a domain at this many failures (default 3;
	// negative disables the absolute threshold).
	MaxFailures int
	// MaxFailureFraction trips a domain when failed/planned reaches this
	// fraction of the domain's planned ops (default 0.5; negative or zero
	// with no planned counts disables the fractional threshold). Because
	// the fraction is of the domain's own planned ops, a small region trips
	// on fewer failures than the whole run — which is what keeps a sick
	// region from dragging healthy ones down with it.
	MaxFailureFraction float64
	// OnTrip, when set, is called once per domain at the moment it trips
	// (telemetry, logging). Called without internal locks held.
	OnTrip func(domain string)
}

func (o FuseOptions) withDefaults() FuseOptions {
	if o.MaxFailures == 0 {
		o.MaxFailures = 3
	}
	if o.MaxFailureFraction == 0 {
		o.MaxFailureFraction = 0.5
	}
	return o
}

// Fuse is the failure-rate circuit breaker guarding an apply run. Every op
// reports its domains (run + region); once a domain accumulates too many
// failures the fuse trips for that domain and Allow refuses new admissions
// there, while ops already in flight drain normally. A tripped fuse stays
// tripped for the life of the run — there is no half-open probe state,
// because the run's remedy is rollback, not patience.
type Fuse struct {
	opts FuseOptions

	mu      sync.Mutex
	planned map[string]int
	failed  map[string]int
	done    map[string]int
	tripped map[string]bool
}

// NewFuse builds a fuse.
func NewFuse(opts FuseOptions) *Fuse {
	return &Fuse{
		opts:    opts.withDefaults(),
		planned: map[string]int{},
		failed:  map[string]int{},
		done:    map[string]int{},
		tripped: map[string]bool{},
	}
}

// Plan registers n planned ops in a domain; the fractional threshold is
// relative to these counts.
func (f *Fuse) Plan(domain string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.planned[domain] += n
}

// Allow reports whether a new op touching the given domains may be admitted.
func (f *Fuse) Allow(domains ...string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, d := range domains {
		if f.tripped[d] {
			return false
		}
	}
	return true
}

// Success records a completed op in its domains.
func (f *Fuse) Success(domains ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, d := range domains {
		f.done[d]++
	}
}

// Failure records a failed op in its domains, tripping any domain that
// crosses a threshold.
func (f *Fuse) Failure(domains ...string) {
	f.mu.Lock()
	var newlyTripped []string
	for _, d := range domains {
		f.done[d]++
		f.failed[d]++
		if f.tripped[d] {
			continue
		}
		if f.crossedLocked(d) {
			f.tripped[d] = true
			newlyTripped = append(newlyTripped, d)
		}
	}
	f.mu.Unlock()
	if f.opts.OnTrip != nil {
		for _, d := range newlyTripped {
			f.opts.OnTrip(d)
		}
	}
}

func (f *Fuse) crossedLocked(d string) bool {
	if f.opts.MaxFailures > 0 && f.failed[d] >= f.opts.MaxFailures {
		return true
	}
	if f.opts.MaxFailureFraction > 0 {
		if planned := f.planned[d]; planned > 0 &&
			float64(f.failed[d])/float64(planned) >= f.opts.MaxFailureFraction {
			return true
		}
	}
	return false
}

// Tripped returns the tripped domains, sorted.
func (f *Fuse) Tripped() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for d := range f.tripped {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Failures returns the total failure count in the run domain.
func (f *Fuse) Failures() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed[RunDomain]
}
