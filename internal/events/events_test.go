package events

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestPublishSequencesMonotonic(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	sub := b.Subscribe(Filter{}, 16)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: "test.tick"})
	}
	for i := 1; i <= 10; i++ {
		e := <-sub.C()
		if e.Seq != int64(i) {
			t.Fatalf("seq %d, want %d", e.Seq, i)
		}
		if e.Time == 0 {
			t.Fatal("timestamp not assigned")
		}
	}
	if got := b.LastSeq(); got != 10 {
		t.Fatalf("LastSeq=%d, want 10", got)
	}
}

func TestFilterKindsAndPrefix(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	sub := b.Subscribe(Filter{Kinds: []string{"apply.", "drift.detected"}}, 16)
	b.Publish(Event{Kind: "apply.op_done"})
	b.Publish(Event{Kind: "provider.throttled"}) // filtered out
	b.Publish(Event{Kind: "drift.detected"})
	b.Publish(Event{Kind: "drift.other"}) // filtered out
	e1, e2 := <-sub.C(), <-sub.C()
	if e1.Kind != "apply.op_done" || e2.Kind != "drift.detected" {
		t.Fatalf("got %q, %q", e1.Kind, e2.Kind)
	}
	select {
	case e := <-sub.C():
		t.Fatalf("unexpected event %q", e.Kind)
	default:
	}
}

func TestSlowSubscriberDropsOldest(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	sub := b.Subscribe(Filter{}, 4)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: "test.tick"})
	}
	if got := sub.Dropped(); got != 6 {
		t.Fatalf("Dropped=%d, want 6", got)
	}
	// Oldest were evicted: the buffer holds the newest 4 (seqs 7..10).
	var seqs []int64
	for i := 0; i < 4; i++ {
		seqs = append(seqs, (<-sub.C()).Seq)
	}
	want := []int64{7, 8, 9, 10}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("buffered seqs %v, want %v", seqs, want)
		}
	}
}

func TestDropAccountingExact(t *testing.T) {
	// received + dropped == published, under concurrent publishers.
	b := NewBus(nil)
	sub := b.Subscribe(Filter{}, 8)
	const publishers, per = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish(Event{Kind: "test.tick"})
			}
		}()
	}
	var received int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.C() {
			received++
			time.Sleep(10 * time.Microsecond) // deliberately slow consumer
		}
	}()
	wg.Wait()
	dropped := sub.Dropped()
	sub.Close()
	<-done
	if received+dropped != publishers*per {
		t.Fatalf("received %d + dropped %d != published %d", received, dropped, publishers*per)
	}
	if dropped == 0 {
		t.Log("warning: slow consumer kept up; drop path not exercised")
	}
}

func TestSinceWatermarkResume(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	for i := 0; i < 20; i++ {
		b.Publish(Event{Kind: "test.tick"})
	}
	got := b.Since(12)
	if len(got) != 8 {
		t.Fatalf("Since(12) returned %d events, want 8", len(got))
	}
	for i, e := range got {
		if e.Seq != int64(13+i) {
			t.Fatalf("event %d has seq %d, want %d (gap or duplicate)", i, e.Seq, 13+i)
		}
	}
	if extra := b.Since(20); len(extra) != 0 {
		t.Fatalf("Since(last) returned %d events, want 0", len(extra))
	}
}

func TestNilBusSafe(t *testing.T) {
	var b *Bus
	if seq := b.Publish(Event{Kind: "x"}); seq != 0 {
		t.Fatal("nil publish returned nonzero seq")
	}
	if b.LastSeq() != 0 || b.Since(0) != nil {
		t.Fatal("nil bus not inert")
	}
	sub := b.Subscribe(Filter{}, 1)
	select {
	case <-sub.C():
		t.Fatal("nil-bus subscription delivered")
	default:
	}
	sub.Close()
	b.Close()
	FromContext(WithBus(nil, nil)) // no panic
}

func TestCloseUnblocksSubscribers(t *testing.T) {
	b := NewBus(nil)
	sub := b.Subscribe(Filter{}, 4)
	done := make(chan struct{})
	go func() {
		for range sub.C() {
		}
		close(done)
	}()
	b.Publish(Event{Kind: "x"})
	b.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("subscriber not released on bus close")
	}
	if b.Publish(Event{Kind: "x"}) != 0 {
		t.Fatal("publish after close assigned a seq")
	}
	// Subscribe after close yields a closed channel, not a hang.
	if _, ok := <-b.Subscribe(Filter{}, 1).C(); ok {
		t.Fatal("post-close subscription delivered an event")
	}
}

func TestConcurrentPublishSubscribeRace(t *testing.T) {
	b := NewBus(nil)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Publish(Event{Kind: "test.tick"})
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sub := b.Subscribe(Filter{}, 8)
				for j := 0; j < 5; j++ {
					select {
					case <-sub.C():
					default:
					}
				}
				sub.Dropped()
				sub.Close()
			}
		}()
	}
	wg.Wait()
	b.Close()
	// All sequence numbers were assigned exactly once.
	if got := b.LastSeq(); got != 800 {
		t.Fatalf("LastSeq=%d, want 800", got)
	}
}

func TestFlightRecorderPersistsAndRotates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.events.jsonl")
	b := NewBus(nil)
	rec, err := NewFlightRecorder(path, b)
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(Event{Kind: "apply.run_start", Run: "r1"})
	b.Publish(Event{Kind: "apply.op_done", Addr: "aws_vpc.main"})
	b.Publish(Event{Kind: "apply.run_finish", Run: "r1"})
	// Second run truncates: artifact should hold only r2's events after.
	b.Publish(Event{Kind: "apply.run_start", Run: "r2"})
	b.Publish(Event{Kind: "apply.run_finish", Run: "r2"})
	b.Close()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlightLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Kind != "apply.run_start" || got[0].Run != "r2" {
		t.Fatalf("flight log = %+v, want r2's 2 events", got)
	}
}

func TestFlightRecorderBoundsTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.events.jsonl")
	b := NewBus(nil)
	rec, err := NewFlightRecorder(path, b)
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(Event{Kind: "apply.run_start"})
	for i := 0; i < flightKeep+500; i++ {
		b.Publish(Event{Kind: "test.tick", N: int64(i)})
	}
	b.Close()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlightLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > flightKeep {
		t.Fatalf("flight log holds %d events, want <= %d", len(got), flightKeep)
	}
	// The tail is the NEWEST events.
	if last := got[len(got)-1]; last.N != flightKeep+500-1 {
		t.Fatalf("last event N=%d, want %d", last.N, flightKeep+500-1)
	}
	fi, _ := os.Stat(path)
	if fi.Size() == 0 {
		t.Fatal("artifact empty")
	}
}

func TestReadFlightLogToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.jsonl")
	body := ""
	for i := 0; i < 3; i++ {
		body += fmt.Sprintf(`{"seq":%d,"time":1,"kind":"test.tick"}`+"\n", i+1)
	}
	body += `{"seq":4,"ti` // torn mid-write
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlightLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d events, want 3", len(got))
	}
}
