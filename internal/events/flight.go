package events

import (
	"bufio"
	"encoding/json"
	"os"
	"sync"
	"time"
)

func wallClock() int64 { return time.Now().UnixNano() }

// flightKeep bounds the events a FlightRecorder retains per run.
const flightKeep = 2048

// FlightRecorder persists a bounded tail of bus events to a JSONL artifact
// next to the journal, for post-mortem reconstruction of a run that died
// with no live subscriber attached. Events are written through on arrival
// (crash-safe up to OS buffering); when a new run starts (apply.run_start or
// recover.start) the file is rewritten from the retained tail so one
// artifact never grows without bound across runs.
type FlightRecorder struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
	tail []Event // bounded at flightKeep
	sub  *Subscription
	done chan struct{}
}

// NewFlightRecorder opens (creating or appending) the artifact at path and
// starts consuming the bus in a goroutine. Close flushes and detaches.
func NewFlightRecorder(path string, bus *Bus) (*FlightRecorder, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	r := &FlightRecorder{
		path: path,
		f:    f,
		w:    bufio.NewWriter(f),
		sub:  bus.Subscribe(Filter{}, 1024),
		done: make(chan struct{}),
	}
	go r.run()
	return r, nil
}

// Path returns the artifact location.
func (r *FlightRecorder) Path() string {
	if r == nil {
		return ""
	}
	return r.path
}

func (r *FlightRecorder) run() {
	defer close(r.done)
	for e := range r.sub.C() {
		r.record(e)
	}
}

func (r *FlightRecorder) record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.Kind == "apply.run_start" || e.Kind == "recover.start" {
		// New run: restart the artifact so it holds this run's events (the
		// retained tail of the previous run stays in memory only).
		r.tail = r.tail[:0]
		r.w.Flush()
		if err := r.f.Truncate(0); err == nil {
			r.f.Seek(0, 0)
			r.w.Reset(r.f)
		}
	}
	r.tail = append(r.tail, e)
	if len(r.tail) > flightKeep {
		// Over budget: rewrite the file from the bounded tail.
		r.tail = append(r.tail[:0], r.tail[len(r.tail)-flightKeep:]...)
		r.w.Flush()
		if err := r.f.Truncate(0); err == nil {
			r.f.Seek(0, 0)
			r.w.Reset(r.f)
			for _, te := range r.tail {
				r.writeLine(te)
			}
			r.w.Flush()
			return
		}
	}
	r.writeLine(e)
	r.w.Flush()
}

func (r *FlightRecorder) writeLine(e Event) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	r.w.Write(b)
	r.w.WriteByte('\n')
}

// Close detaches from the bus, drains buffered events, flushes, and closes
// the artifact.
func (r *FlightRecorder) Close() error {
	if r == nil {
		return nil
	}
	r.sub.Close()
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	r.w.Flush()
	return r.f.Close()
}

// ReadFlightLog loads a flight-recorder artifact back into events, tolerant
// of a torn final line from a crash mid-write.
func ReadFlightLog(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e Event
		if json.Unmarshal(sc.Bytes(), &e) == nil && e.Kind != "" {
			out = append(out, e)
		}
	}
	return out, sc.Err()
}
