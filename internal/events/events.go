// Package events is the live ops plane's spine (DESIGN.md S25): a typed,
// monotonically-sequenced in-process pub/sub bus. Every interesting
// transition in the system — apply lifecycle, health gates, fuse trips,
// auto-rollbacks, journal recovery, drift detections, provider-runtime
// signals, and the cloud activity tail — is published here, and every
// consumer surface (Stack.Subscribe, ApplyOptions.OnEvent, the flight
// recorder, cloudlessctl apply -watch) is a subscriber.
//
// Design constraints, in priority order:
//
//  1. The apply hot path never blocks on a consumer. Each subscription has a
//     bounded buffer; when it fills, the oldest buffered event is dropped and
//     a per-subscription drop counter increments. Publish is O(subscribers).
//  2. Sequence numbers are monotonic and gapless per bus, so a consumer that
//     reconnects can resume from a watermark via Since and detect loss.
//  3. Everything is nil-safe: a nil *Bus accepts Publish and Subscribe calls
//     as no-ops, so call sites need no plumbing checks (same convention as
//     internal/telemetry).
package events

import (
	"context"
	"strings"
	"sync"
)

// Event is one observed transition. Kind is dot-namespaced
// ("apply.op_done", "provider.throttled", "cloud.activity", ...); the
// remaining fields are optional context, populated per kind and omitted from
// JSON when empty so flight-recorder artifacts stay compact.
type Event struct {
	Seq  int64  `json:"seq"`
	Time int64  `json:"time"` // unix nanoseconds
	Kind string `json:"kind"`

	Run       string  `json:"run,omitempty"`       // journal/run identifier
	Addr      string  `json:"addr,omitempty"`      // resource address (aws_vpc.main)
	Type      string  `json:"type,omitempty"`      // resource type
	ID        string  `json:"id,omitempty"`        // cloud-assigned resource id
	Region    string  `json:"region,omitempty"`    // failure domain / placement
	Action    string  `json:"action,omitempty"`    // create/update/delete/... or drift kind
	Wave      string  `json:"wave,omitempty"`      // canary | main | all
	Domain    string  `json:"domain,omitempty"`    // fuse failure domain
	Provider  string  `json:"provider,omitempty"`  // provider gate name
	Principal string  `json:"principal,omitempty"` // actor on cloud.activity events
	Err       string  `json:"err,omitempty"`       // error text on *_fail events
	N         int64   `json:"n,omitempty"`         // generic count (ops in wave, items recovered, ...)
	Retries   int64   `json:"retries,omitempty"`   // retry count on op_done/op_fail
	Ms        float64 `json:"ms,omitempty"`        // duration in milliseconds
	Window    float64 `json:"window,omitempty"`    // AIMD gate window after a resize
	CloudSeq  int64   `json:"cloud_seq,omitempty"` // activity-log seq on cloud.activity events
}

// Filter selects a subset of events for a subscription. The zero Filter
// matches everything. Kinds entries match exactly, or by namespace when they
// end in '.' ("apply." matches every apply.* event).
type Filter struct {
	Kinds []string
}

// Match reports whether the filter admits the event.
func (f Filter) Match(e Event) bool {
	if len(f.Kinds) == 0 {
		return true
	}
	for _, k := range f.Kinds {
		if k == e.Kind {
			return true
		}
		if strings.HasSuffix(k, ".") && strings.HasPrefix(e.Kind, k) {
			return true
		}
	}
	return false
}

// DefaultBuffer is the per-subscription channel capacity when Subscribe is
// called with size <= 0.
const DefaultBuffer = 256

// replayRing bounds the events retained for watermark resume via Since.
const replayRing = 4096

// Bus is the pub/sub hub. The zero value is NOT usable; call NewBus. All
// methods are safe for concurrent use and on a nil receiver.
type Bus struct {
	mu     sync.Mutex
	seq    int64
	subs   map[*Subscription]struct{}
	ring   []Event // replay buffer, oldest first
	start  int     // ring read index
	count  int     // live entries in ring
	nowNS  func() int64
	closed bool
}

// NewBus builds an empty bus. now supplies event timestamps (unix ns); nil
// uses the wall clock.
func NewBus(now func() int64) *Bus {
	b := &Bus{subs: map[*Subscription]struct{}{}, ring: make([]Event, replayRing), nowNS: now}
	if b.nowNS == nil {
		b.nowNS = wallClock
	}
	return b
}

// Publish assigns the next sequence number and timestamp to e and delivers
// it to every matching subscription without blocking. Returns the assigned
// sequence (0 on a nil or closed bus).
func (b *Bus) Publish(e Event) int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0
	}
	b.seq++
	e.Seq = b.seq
	if e.Time == 0 {
		e.Time = b.nowNS()
	}
	// Retain for Since; overwrite oldest when full.
	if b.count < len(b.ring) {
		b.ring[(b.start+b.count)%len(b.ring)] = e
		b.count++
	} else {
		b.ring[b.start] = e
		b.start = (b.start + 1) % len(b.ring)
	}
	for s := range b.subs {
		s.offer(e)
	}
	return b.seq
}

// LastSeq returns the highest sequence number assigned so far.
func (b *Bus) LastSeq() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// OldestSeq returns the oldest sequence number still in the replay ring
// (0 when nothing is retained). A watermark below OldestSeq()-1 cannot be
// resumed gaplessly: the ring has dropped events past its capacity.
func (b *Bus) OldestSeq() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.count == 0 {
		return 0
	}
	return b.ring[b.start].Seq
}

// Since returns the retained events with Seq > after, oldest first, and the
// oldest sequence still retained. If after is older than the retention
// window the caller can detect the gap by comparing after+1 with the first
// returned Seq.
func (b *Bus) Since(after int64) []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for i := 0; i < b.count; i++ {
		e := b.ring[(b.start+i)%len(b.ring)]
		if e.Seq > after {
			out = append(out, e)
		}
	}
	return out
}

// Subscribe registers a new subscription with the given filter and buffer
// size (<= 0 means DefaultBuffer). Events published after the call are
// delivered to the subscription's channel; when the buffer is full the
// oldest buffered event is dropped and the drop counter increments. A nil
// bus returns a subscription whose channel never delivers.
func (b *Bus) Subscribe(f Filter, size int) *Subscription {
	if size <= 0 {
		size = DefaultBuffer
	}
	s := &Subscription{ch: make(chan Event, size), filter: f, bus: b}
	if b == nil {
		return s
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(s.ch)
		s.done = true
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// Close shuts the bus down: every subscription channel is closed and further
// publishes are dropped.
func (b *Bus) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		if !s.done {
			close(s.ch)
			s.done = true
		}
		delete(b.subs, s)
	}
}

// Subscription is one consumer's bounded view of the bus.
type Subscription struct {
	ch      chan Event
	filter  Filter
	bus     *Bus
	dropped int64 // guarded by bus.mu (or unshared once done)
	done    bool  // guarded by bus.mu
}

// C is the delivery channel. It is closed when the subscription or the bus
// closes.
func (s *Subscription) C() <-chan Event { return s.ch }

// offer delivers without blocking: on a full buffer it evicts the oldest
// buffered event. Called with bus.mu held, which also makes the evict+send
// pair race-free against concurrent publishers.
func (s *Subscription) offer(e Event) {
	if s.done || !s.filter.Match(e) {
		return
	}
	for {
		select {
		case s.ch <- e:
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped++
		default:
		}
	}
}

// Dropped reports how many events were evicted from this subscription's
// buffer because the consumer fell behind.
func (s *Subscription) Dropped() int64 {
	if s == nil || s.bus == nil {
		return 0
	}
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription from the bus and closes its channel.
// Buffered events remain readable until drained.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	if s.bus == nil {
		if !s.done {
			close(s.ch)
			s.done = true
		}
		return
	}
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.done {
		return
	}
	delete(s.bus.subs, s)
	close(s.ch)
	s.done = true
}

// ---- context carriage (mirrors internal/telemetry) ----

type ctxKey struct{}

// WithBus returns a context carrying the bus.
func WithBus(ctx context.Context, b *Bus) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, b)
}

// FromContext extracts the bus, or nil — whose methods are all no-ops — when
// none is attached.
func FromContext(ctx context.Context) *Bus {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(ctxKey{}).(*Bus)
	return b
}
