package plan

import (
	"context"
	"strings"
	"testing"

	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/state"
)

const webConfig = `
data "aws_region" "current" {}

resource "aws_vpc" "main" {
  name       = "main"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "s" {
  count      = 2
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(aws_vpc.main.cidr_block, 8, count.index)
  region     = data.aws_region.current.name
}

resource "aws_network_interface" "nic" {
  name      = "nic"
  subnet_id = aws_subnet.s[0].id
}

resource "aws_virtual_machine" "web" {
  name    = "web"
  nic_ids = [aws_network_interface.nic.id]
}

output "vm_name" { value = aws_virtual_machine.web.name }
`

func expandSrc(t *testing.T, src string) *config.Expansion {
	t.Helper()
	m, diags := config.Load(map[string]string{"main.ccl": src})
	if diags.HasErrors() {
		t.Fatalf("load: %s", diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatalf("expand: %s", diags.Error())
	}
	return ex
}

func computeOK(t *testing.T, ex *config.Expansion, prior *state.State, opts Options) *Plan {
	t.Helper()
	p, diags := Compute(context.Background(), ex, prior, opts)
	if diags.HasErrors() {
		t.Fatalf("plan: %s", diags.Error())
	}
	return p
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
	}{
		{"aws_vpc.main", Addr{Type: "aws_vpc", Name: "main"}},
		{"aws_subnet.s[2]", Addr{Type: "aws_subnet", Name: "s", Key: 2}},
		{`aws_vm.w["blue"]`, Addr{Type: "aws_vm", Name: "w", Key: "blue"}},
		{"data.aws_region.current", Addr{Data: true, Type: "aws_region", Name: "current"}},
		{"module.net.aws_vpc.main", Addr{ModulePath: "net", Type: "aws_vpc", Name: "main"}},
		{"module.net.data.aws_region.r", Addr{ModulePath: "net", Data: true, Type: "aws_region", Name: "r"}},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if err != nil {
			t.Errorf("ParseAddr(%q): %s", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseAddr(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"aws_vpc", "a.b.c.d.e", "aws_vpc.main[", "aws_vpc.main[x]"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) should fail", bad)
		}
	}
}

func TestPlanInitialCreate(t *testing.T) {
	ex := expandSrc(t, webConfig)
	p := computeOK(t, ex, state.New(), Options{})
	if p.Creates != 5 || p.Updates != 0 || p.Deletes != 0 {
		t.Fatalf("summary: %s", p.Summary())
	}
	vm := p.Changes["aws_virtual_machine.web"]
	if vm == nil || vm.Action != ActionCreate {
		t.Fatalf("vm change = %+v", vm)
	}
	// nic_ids references an uncreated NIC: unknown at plan time.
	if !vm.After["nic_ids"].IsUnknown() && vm.After["nic_ids"].IsKnown() {
		t.Errorf("nic_ids should be (known after apply), got %v", vm.After["nic_ids"])
	}
	// Graph: vm depends on nic; subnets depend on vpc.
	deps := p.Graph.Dependencies("aws_virtual_machine.web")
	if len(deps) != 1 || deps[0] != "aws_network_interface.nic" {
		t.Errorf("vm graph deps = %v", deps)
	}
	if got := p.Graph.Dependencies("aws_subnet.s[0]"); len(got) != 1 || got[0] != "aws_vpc.main" {
		t.Errorf("subnet deps = %v", got)
	}
	// cidrsubnet over a known literal resolves at plan time.
	s1 := p.Changes["aws_subnet.s[1]"]
	if !s1.After["cidr_block"].Equal(eval.String("10.0.1.0/24")) {
		t.Errorf("subnet cidr = %v", s1.After["cidr_block"])
	}
	// Data source resolved locally at plan time.
	if v, ok := p.Values.Get("data.aws_region.current"); !ok || v.AsObject()["name"].AsString() != "us-east-1" {
		t.Errorf("data source value = %v", v)
	}
}

func TestPlanIdempotentNoop(t *testing.T) {
	ex := expandSrc(t, webConfig)
	prior := stateFromPlanAssumingIDs(t, ex)
	p := computeOK(t, ex, prior, Options{})
	if p.PendingCount() != 0 {
		for a, c := range p.Changes {
			if c.Action != ActionNoop {
				t.Logf("%s -> %s (%v)", a, c.Action, c.ChangedAttrs)
			}
		}
		t.Fatalf("expected all no-op, got %s", p.Summary())
	}
}

// stateFromPlanAssumingIDs fabricates the state an apply of the initial plan
// would produce, wiring fake IDs through references.
func stateFromPlanAssumingIDs(t *testing.T, ex *config.Expansion) *state.State {
	t.Helper()
	st := state.New()
	ids := map[string]string{
		"aws_vpc.main":              "vpc-1",
		"aws_subnet.s[0]":           "subnet-0",
		"aws_subnet.s[1]":           "subnet-1",
		"aws_network_interface.nic": "nic-1",
		"aws_virtual_machine.web":   "vm-1",
	}
	attrs := map[string]map[string]eval.Value{
		"aws_vpc.main": {
			"name": eval.String("main"), "cidr_block": eval.String("10.0.0.0/16"),
			"enable_dns": eval.True, "region": eval.String("us-east-1"),
		},
		"aws_subnet.s[0]": {
			"vpc_id": eval.String("vpc-1"), "cidr_block": eval.String("10.0.0.0/24"),
			"region": eval.String("us-east-1"),
		},
		"aws_subnet.s[1]": {
			"vpc_id": eval.String("vpc-1"), "cidr_block": eval.String("10.0.1.0/24"),
			"region": eval.String("us-east-1"),
		},
		"aws_network_interface.nic": {
			"name": eval.String("nic"), "subnet_id": eval.String("subnet-0"),
		},
		"aws_virtual_machine.web": {
			"name": eval.String("web"), "nic_ids": eval.Strings("nic-1"),
			"instance_type": eval.String("t3.micro"), "image": eval.String("ami-linux-2026"),
		},
	}
	for addr, id := range ids {
		a := attrs[addr]
		a["id"] = eval.String(id)
		typ := strings.SplitN(ResourceAddrOf(addr), ".", 2)[0]
		st.Set(&state.ResourceState{Addr: addr, Type: typ, ID: id, Region: "us-east-1", Attrs: a})
	}
	return st
}

func TestPlanUpdateAndReplace(t *testing.T) {
	ex := expandSrc(t, webConfig)
	prior := stateFromPlanAssumingIDs(t, ex)
	// In-place change: VM name is updatable.
	prior.Get("aws_virtual_machine.web").Attrs["name"] = eval.String("old-name")
	// ForceNew change: VPC cidr_block forces replacement.
	prior.Get("aws_vpc.main").Attrs["cidr_block"] = eval.String("10.9.0.0/16")

	p := computeOK(t, ex, prior, Options{})
	vm := p.Changes["aws_virtual_machine.web"]
	if vm.Action != ActionUpdate {
		t.Errorf("vm action = %s", vm.Action)
	}
	vpc := p.Changes["aws_vpc.main"]
	if vpc.Action != ActionReplace || len(vpc.ForcedBy) == 0 || vpc.ForcedBy[0] != "cidr_block" {
		t.Errorf("vpc action = %s forcedBy=%v", vpc.Action, vpc.ForcedBy)
	}
	// Replacing the VPC regenerates its id, so subnets see unknown vpc_id
	// and must be planned for update too.
	s0 := p.Changes["aws_subnet.s[0]"]
	if s0.Action == ActionNoop {
		t.Error("subnet should be affected by vpc replacement")
	}
}

func TestPlanDeleteOrphans(t *testing.T) {
	ex := expandSrc(t, webConfig)
	prior := stateFromPlanAssumingIDs(t, ex)
	prior.Set(&state.ResourceState{
		Addr: "aws_storage_bucket.old", Type: "aws_storage_bucket", ID: "bucket-9",
		Region: "us-east-1",
		Attrs:  map[string]eval.Value{"id": eval.String("bucket-9"), "name": eval.String("old")},
	})
	p := computeOK(t, ex, prior, Options{})
	ch := p.Changes["aws_storage_bucket.old"]
	if ch == nil || ch.Action != ActionDelete {
		t.Fatalf("orphan not planned for deletion: %+v", ch)
	}
}

func TestPlanDeleteOrdering(t *testing.T) {
	// Removing both subnet and vpc: subnet (dependent) must delete first,
	// i.e. vpc's delete depends on subnet's delete.
	prior := state.New()
	prior.Set(&state.ResourceState{Addr: "aws_vpc.v", Type: "aws_vpc", ID: "vpc-1",
		Attrs: map[string]eval.Value{"id": eval.String("vpc-1"), "cidr_block": eval.String("10.0.0.0/16")}})
	prior.Set(&state.ResourceState{Addr: "aws_subnet.s", Type: "aws_subnet", ID: "sub-1",
		Attrs:        map[string]eval.Value{"id": eval.String("sub-1"), "vpc_id": eval.String("vpc-1")},
		Dependencies: []string{"aws_vpc.v"}})
	ex := expandSrc(t, `# empty config`)
	p := computeOK(t, ex, prior, Options{})
	if p.Deletes != 2 {
		t.Fatalf("summary = %s", p.Summary())
	}
	deps := p.Graph.Dependencies("aws_vpc.v")
	if len(deps) != 1 || deps[0] != "aws_subnet.s" {
		t.Errorf("vpc delete deps = %v (must wait for subnet)", deps)
	}
}

func TestIncrementalPlanConfinesWork(t *testing.T) {
	ex := expandSrc(t, webConfig)
	prior := stateFromPlanAssumingIDs(t, ex)
	// Out-of-scope drift that a full plan would catch:
	prior.Get("aws_vpc.main").Attrs["name"] = eval.String("renamed-out-of-band")
	// In-scope change:
	prior.Get("aws_virtual_machine.web").Attrs["name"] = eval.String("old")

	p := computeOK(t, ex, prior, Options{
		ImpactScope: []string{"aws_virtual_machine.web"},
	})
	if p.Changes["aws_virtual_machine.web"].Action != ActionUpdate {
		t.Error("in-scope change missed")
	}
	if ch, ok := p.Changes["aws_vpc.main"]; ok && ch.Action != ActionNoop {
		t.Error("out-of-scope resource was planned")
	}
	// The incremental plan evaluated only the VM, not all five instances.
	if p.EvaluatedInstances != 1 {
		t.Errorf("evaluated %d instances, want 1", p.EvaluatedInstances)
	}
}

func TestIncrementalScopeIncludesDependents(t *testing.T) {
	ex := expandSrc(t, webConfig)
	prior := stateFromPlanAssumingIDs(t, ex)
	p := computeOK(t, ex, prior, Options{
		ImpactScope: []string{"aws_network_interface.nic"},
	})
	// The VM transitively depends on the NIC, so it must be in scope
	// (2 instances evaluated: nic + vm).
	if p.EvaluatedInstances != 2 {
		t.Errorf("evaluated %d instances, want 2", p.EvaluatedInstances)
	}
}

func TestPlanCosts(t *testing.T) {
	ex := expandSrc(t, webConfig)
	p := computeOK(t, ex, state.New(), Options{})
	costs := p.Costs()
	if costs("aws_virtual_machine.web") <= costs("aws_subnet.s[0]") {
		t.Error("VM creation must cost more than subnet creation in the model")
	}
	if costs("not-a-node") != 0 {
		t.Error("unknown node cost must be zero")
	}
}

func TestPlanGraphExcludesNoops(t *testing.T) {
	ex := expandSrc(t, webConfig)
	prior := stateFromPlanAssumingIDs(t, ex)
	prior.Get("aws_virtual_machine.web").Attrs["name"] = eval.String("old")
	p := computeOK(t, ex, prior, Options{})
	if p.Graph.Len() != 1 || !p.Graph.HasNode("aws_virtual_machine.web") {
		t.Errorf("graph nodes = %v", p.Graph.Nodes())
	}
}
