package plan

import (
	"hash/fnv"
	"sort"
	"sync"

	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/state"
)

// ReplanCache makes consecutive plans incremental: it remembers, from the
// last successful Compute, each declaration's fingerprint and each instance's
// diff and planned value, keyed by (decl hash, prior-state identity). On the
// next plan only the dirty subtree — declarations whose fingerprint moved,
// instances whose recorded state moved, and their transitive dependents —
// is re-evaluated; everything else replays its cached diff, producing a plan
// byte-identical to a full replan at a fraction of the evaluation cost.
//
// Invalidation is typed, and the layers compose:
//
//   - config: a decl-hash mismatch (edit, variable change, count change)
//     dirties that declaration and, via the graph closure, its dependents.
//   - state: a statedb serial advance (apply, drift reconcile, rollback,
//     concurrent writer) triggers per-address revalidation against each
//     entry's recorded state fingerprint, so a commit that touched three
//     addresses dirties three subtrees, not the world.
//   - scope: an explicit -target scope intersects — a clean in-target
//     resource replays, a dirty out-of-target resource stays unplanned
//     exactly as it would in an uncached targeted plan.
//   - explicit: InvalidateAll / InvalidateAddrs for callers that know
//     something the fingerprints cannot see.
//
// A ReplanCache is safe for concurrent use, but cached plans build on each
// other: use one cache per stack.
type ReplanCache struct {
	mu     sync.Mutex
	hashes map[string]uint64 // resource addr -> decl hash
	serial int               // statedb serial entries were validated at
	// refreshed records whether the cached plan ran against a cloud-refreshed
	// prior. If so, stored fingerprints may differ from the statedb content
	// at the same serial, and the serial fast-path below is not sound.
	refreshed bool
	entries   map[string]*cacheEntry
	stats     CacheStats
}

// cacheEntry is one instance's memoized plan outcome.
type cacheEntry struct {
	declHash uint64
	stateFP  uint64 // fingerprint of the prior state entry (0 = absent)
	change   *Change
	value    eval.Value
	hasValue bool
}

// CacheStats describes the last cached Compute for observability and tests.
type CacheStats struct {
	// Invalidation is the dominant reason work was redone: "cold" (no prior
	// plan), "config" (decl edits), "state" (serial moved), "explicit"
	// (forced), or "clean" (full replay).
	Invalidation string
	// DirtyConfig / DirtyState count seed resources per invalidation type.
	DirtyConfig, DirtyState int
	// Replayed / Evaluated count resource-level addresses served from cache
	// vs re-evaluated.
	Replayed, Evaluated int
}

// NewReplanCache returns an empty cache; the first Compute through it is a
// full plan that seeds it.
func NewReplanCache() *ReplanCache { return &ReplanCache{} }

// LastStats returns the stats of the most recent Compute that used the cache.
func (c *ReplanCache) LastStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// InvalidateAll drops everything; the next plan is a full replan.
func (c *ReplanCache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hashes = nil
	c.entries = nil
	c.stats = CacheStats{Invalidation: "explicit"}
}

// InvalidateAddrs drops the entries of specific resource-level addresses
// (e.g. from a drift watcher's findings) so they re-evaluate next plan.
func (c *ReplanCache) InvalidateAddrs(addrs ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hashes == nil {
		return
	}
	for _, r := range addrs {
		delete(c.hashes, r)
	}
}

// dirtySeeds compares the cache against the current expansion and (already
// refreshed) prior state, returning the seed set of resource-level addresses
// that must re-plan. cold reports that the cache has no usable prior plan.
// Drift surfaces here naturally: a refresh that changed recorded attributes
// changes the state fingerprint, dirtying exactly the drifted addresses.
func (c *ReplanCache) dirtySeeds(hashes map[string]uint64, instsByResource map[string][]*config.Instance, prior *state.State, refreshed bool) (seeds []string, cold bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hashes == nil {
		c.stats = CacheStats{Invalidation: "cold"}
		return nil, true
	}
	// The serial fast-path (state unmoved, skip per-address fingerprints) is
	// sound only when neither side's prior was refreshed from the cloud: a
	// refresh can change recorded attributes without moving the serial.
	serialMatch := prior.Serial == c.serial && !refreshed && !c.refreshed
	var cfgDirty, stateDirty int
	for r, insts := range instsByResource {
		h := hashes[r]
		if oh, ok := c.hashes[r]; !ok || oh != h {
			seeds = append(seeds, r)
			cfgDirty++
			continue
		}
		for _, inst := range insts {
			if inst.Mode == config.DataMode {
				continue
			}
			e := c.entries[inst.Addr]
			if e == nil || e.declHash != h {
				seeds = append(seeds, r)
				cfgDirty++
				break
			}
			if !serialMatch && e.stateFP != stateFingerprint(prior.Get(inst.Addr)) {
				seeds = append(seeds, r)
				stateDirty++
				break
			}
		}
	}
	sort.Strings(seeds)
	st := CacheStats{DirtyConfig: cfgDirty, DirtyState: stateDirty}
	switch {
	case cfgDirty == 0 && stateDirty == 0:
		st.Invalidation = "clean"
	case stateDirty > cfgDirty:
		st.Invalidation = "state"
	default:
		st.Invalidation = "config"
	}
	c.stats = st
	return seeds, false
}

// replay returns the cached entries for a clean resource's instances, or
// (nil, false) if any instance is missing — in which case the caller must
// evaluate the resource after all.
func (c *ReplanCache) replay(insts []*config.Instance) ([]*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*cacheEntry, 0, len(insts))
	for _, inst := range insts {
		if inst.Mode == config.DataMode {
			out = append(out, nil)
			continue
		}
		e := c.entries[inst.Addr]
		if e == nil {
			return nil, false
		}
		out = append(out, e)
	}
	return out, true
}

// replanOutcome is what happened to one resource during a cached Compute.
type replanOutcome int

const (
	outcomeSkipped   replanOutcome = iota // out of target scope: nothing cached
	outcomeReplayed                       // served from cache, entries still valid
	outcomeEvaluated                      // evaluated fresh, cacheable
	outcomeFailed                         // evaluated with diagnostics: never cache
)

// commit records a finished Compute: fresh evaluations insert entries,
// replays are kept, and anything skipped or failed is dropped so the next
// plan re-derives it.
func (c *ReplanCache) commit(hashes map[string]uint64, prior *state.State, instsByResource map[string][]*config.Instance, outcomes map[string]replanOutcome, p *Plan, refreshed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = map[string]*cacheEntry{}
	}
	replayed, evaluated := 0, 0
	for r, insts := range instsByResource {
		switch outcomes[r] {
		case outcomeReplayed:
			replayed++
			continue
		case outcomeSkipped, outcomeFailed:
			for _, inst := range insts {
				delete(c.entries, inst.Addr)
			}
			delete(hashes, r)
			continue
		}
		evaluated++
		h := hashes[r]
		for _, inst := range insts {
			if inst.Mode == config.DataMode {
				continue
			}
			e := &cacheEntry{
				declHash: h,
				stateFP:  stateFingerprint(prior.Get(inst.Addr)),
			}
			if ch, ok := p.Changes[inst.Addr]; ok {
				e.change = cloneChange(ch)
			}
			if v, ok := p.Values.Get(inst.Addr); ok {
				e.value, e.hasValue = v, true
			}
			c.entries[inst.Addr] = e
		}
	}
	// Entries of resources that left the configuration entirely.
	current := map[string]bool{}
	for _, insts := range instsByResource {
		for _, inst := range insts {
			current[inst.Addr] = true
		}
	}
	for addr := range c.entries {
		if !current[addr] {
			delete(c.entries, addr)
		}
	}
	c.hashes = hashes
	c.serial = prior.Serial
	c.refreshed = refreshed
	c.stats.Replayed = replayed
	c.stats.Evaluated = evaluated
}

// stateFingerprint digests one recorded resource: identity plus the full
// attribute set. Refresh folds out-of-band cloud changes into the prior
// state, so drifted addresses change fingerprints even at the same serial.
func stateFingerprint(rs *state.ResourceState) uint64 {
	if rs == nil {
		return 0
	}
	h := fnv.New64a()
	for _, s := range []string{rs.Addr, rs.Type, rs.ID, rs.Region} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	names := make([]string, 0, len(rs.Attrs))
	for name := range rs.Attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h.Write([]byte(name))
		writeU64(h, rs.Attrs[name].Hash())
	}
	for _, d := range rs.Dependencies {
		h.Write([]byte(d))
		h.Write([]byte{0})
	}
	fp := h.Sum64()
	if fp == 0 {
		fp = 1 // reserve 0 for "no prior state"
	}
	return fp
}

func writeU64(h interface{ Write([]byte) (int, error) }, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// cloneChange copies a change deeply enough that cache and plan never share
// mutable structure (eval.Value is immutable; maps and slices are not).
func cloneChange(ch *Change) *Change {
	cp := *ch
	cp.Before = cloneAttrMap(ch.Before)
	cp.After = cloneAttrMap(ch.After)
	cp.ChangedAttrs = append([]string(nil), ch.ChangedAttrs...)
	cp.ForcedBy = append([]string(nil), ch.ForcedBy...)
	cp.Deps = append([]string(nil), ch.Deps...)
	return &cp
}

func cloneAttrMap(m map[string]eval.Value) map[string]eval.Value {
	if m == nil {
		return nil
	}
	out := make(map[string]eval.Value, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
