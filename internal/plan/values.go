// Package plan computes execution plans: it diffs the desired configuration
// against recorded state, decides create/update/replace/delete actions,
// builds the dependency graph over pending changes, and — the §3.3
// optimization — supports incremental planning that confines evaluation and
// state refresh to the impact scope of a change.
package plan

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/hcl"
)

// Addr decomposes an instance address.
type Addr struct {
	ModulePath string // "" for root
	Data       bool
	Type       string
	Name       string
	// Key is the instance key: nil, int, or string.
	Key any
}

// ParseAddr parses addresses like `module.net.aws_subnet.s[2]` or
// `data.aws_region.current`.
func ParseAddr(addr string) (Addr, error) {
	var out Addr
	rest := addr
	if idx := strings.IndexByte(rest, '['); idx >= 0 {
		if !strings.HasSuffix(rest, "]") || len(rest)-1 <= idx+1 {
			return out, fmt.Errorf("malformed address %q", addr)
		}
		keyRaw := rest[idx+1 : len(rest)-1]
		rest = rest[:idx]
		if strings.HasPrefix(keyRaw, `"`) {
			s, err := strconv.Unquote(keyRaw)
			if err != nil {
				return out, fmt.Errorf("malformed key in address %q", addr)
			}
			out.Key = s
		} else {
			n, err := strconv.Atoi(keyRaw)
			if err != nil {
				return out, fmt.Errorf("malformed index in address %q", addr)
			}
			out.Key = n
		}
	}
	parts := strings.Split(rest, ".")
	if len(parts) >= 2 && parts[0] == "module" {
		out.ModulePath = parts[1]
		parts = parts[2:]
	}
	if len(parts) >= 1 && parts[0] == "data" {
		out.Data = true
		parts = parts[1:]
	}
	if len(parts) != 2 {
		return out, fmt.Errorf("malformed address %q", addr)
	}
	out.Type, out.Name = parts[0], parts[1]
	return out, nil
}

// groupKey identifies one resource-level group within a module.
type groupKey struct {
	data bool
	typ  string
	name string
}

// memberRef locates an instance within the group index.
type memberRef struct {
	modulePath string
	gk         groupKey
	keyRepr    string
	key        any // nil, int, or string
}

// ValueStore holds the evaluated object value of every resource instance and
// provides evaluation scopes that expose them to expressions. It is safe for
// concurrent use (the applier writes from many workers).
//
// Scope roots are cached at group granularity: Set(addr) re-assembles only
// the group containing addr and marks its root dirty, so building N scopes
// interleaved with N writes costs O(N·groupSize) instead of O(N²) — the
// difference between a 100-resource plan taking milliseconds and taking
// seconds.
type ValueStore struct {
	mu   sync.Mutex
	vals map[string]eval.Value // instance addr -> object value
	ex   *config.Expansion

	// Static index, built once from the expansion.
	memberOf map[string]memberRef
	groups   map[string]map[groupKey][]memberRef // modulePath -> group -> members

	// Caches.
	assembled    map[string]map[groupKey]eval.Value // group value cache
	roots        map[string]map[string]eval.Value   // modulePath -> root name -> value
	dirtyRoots   map[string]map[string]bool         // modulePath -> root name -> dirty
	moduleDirty  bool                               // "module" root of the root module
	moduleCached eval.Value
}

// NewValueStore builds a store for an expansion.
func NewValueStore(ex *config.Expansion) *ValueStore {
	vs := &ValueStore{
		vals:        map[string]eval.Value{},
		ex:          ex,
		memberOf:    map[string]memberRef{},
		groups:      map[string]map[groupKey][]memberRef{},
		assembled:   map[string]map[groupKey]eval.Value{},
		roots:       map[string]map[string]eval.Value{},
		dirtyRoots:  map[string]map[string]bool{},
		moduleDirty: true,
	}
	for _, inst := range ex.Instances {
		pa, err := ParseAddr(inst.Addr)
		if err != nil {
			continue
		}
		ref := memberRef{
			modulePath: inst.ModulePath,
			gk:         groupKey{data: pa.Data, typ: pa.Type, name: pa.Name},
			keyRepr:    fmt.Sprintf("%v", pa.Key),
			key:        pa.Key,
		}
		vs.memberOf[inst.Addr] = ref
		if vs.groups[ref.modulePath] == nil {
			vs.groups[ref.modulePath] = map[groupKey][]memberRef{}
			vs.assembled[ref.modulePath] = map[groupKey]eval.Value{}
			vs.dirtyRoots[ref.modulePath] = map[string]bool{}
			vs.roots[ref.modulePath] = map[string]eval.Value{}
		}
		vs.groups[ref.modulePath][ref.gk] = append(vs.groups[ref.modulePath][ref.gk], ref)
	}
	// Everything starts dirty (all values unknown).
	for mp, byGroup := range vs.groups {
		for gk := range byGroup {
			vs.markDirtyLocked(mp, gk)
		}
	}
	return vs
}

func rootNameOf(gk groupKey) string {
	if gk.data {
		return "data"
	}
	return gk.typ
}

func (vs *ValueStore) markDirtyLocked(modulePath string, gk groupKey) {
	delete(vs.assembled[modulePath], gk)
	vs.dirtyRoots[modulePath][rootNameOf(gk)] = true
	if modulePath != "" {
		vs.moduleDirty = true
	}
}

// assembleGroupLocked computes the value of one group: a single object,
// an index-ordered list, or a key-addressed map.
func (vs *ValueStore) assembleGroupLocked(modulePath string, gk groupKey) eval.Value {
	if v, ok := vs.assembled[modulePath][gk]; ok {
		return v
	}
	members := vs.groups[modulePath][gk]
	var out eval.Value
	switch members[0].key.(type) {
	case nil:
		out = vs.valueOfLocked(modulePath, gk, members[0])
	case int:
		maxIdx := -1
		for _, m := range members {
			if i := m.key.(int); i > maxIdx {
				maxIdx = i
			}
		}
		list := make([]eval.Value, maxIdx+1)
		for i := range list {
			list[i] = eval.Unknown
		}
		for _, m := range members {
			list[m.key.(int)] = vs.valueOfLocked(modulePath, gk, m)
		}
		out = eval.ListOf(list)
	case string:
		obj := map[string]eval.Value{}
		for _, m := range members {
			obj[m.key.(string)] = vs.valueOfLocked(modulePath, gk, m)
		}
		out = eval.Object(obj)
	}
	vs.assembled[modulePath][gk] = out
	return out
}

func (vs *ValueStore) valueOfLocked(modulePath string, gk groupKey, m memberRef) eval.Value {
	addr := instanceAddr(modulePath, gk, m)
	if v, ok := vs.vals[addr]; ok {
		return v
	}
	return eval.Unknown
}

func instanceAddr(modulePath string, gk groupKey, m memberRef) string {
	base := gk.typ + "." + gk.name
	if gk.data {
		base = "data." + base
	}
	if modulePath != "" {
		base = "module." + modulePath + "." + base
	}
	switch k := m.key.(type) {
	case nil:
		return base
	case int:
		return fmt.Sprintf("%s[%d]", base, k)
	default:
		return fmt.Sprintf("%s[%q]", base, k)
	}
}

// refreshRootsLocked rebuilds the dirty root objects of one module.
func (vs *ValueStore) refreshRootsLocked(modulePath string) {
	dirty := vs.dirtyRoots[modulePath]
	if len(dirty) == 0 {
		return
	}
	for rootName := range dirty {
		byName := map[string]eval.Value{}
		if rootName == "data" {
			byType := map[string]map[string]eval.Value{}
			for gk := range vs.groups[modulePath] {
				if !gk.data {
					continue
				}
				if byType[gk.typ] == nil {
					byType[gk.typ] = map[string]eval.Value{}
				}
				byType[gk.typ][gk.name] = vs.assembleGroupLocked(modulePath, gk)
			}
			dr := map[string]eval.Value{}
			for typ, names := range byType {
				dr[typ] = eval.Object(names)
			}
			vs.roots[modulePath]["data"] = eval.Object(dr)
			continue
		}
		for gk := range vs.groups[modulePath] {
			if gk.data || gk.typ != rootName {
				continue
			}
			byName[gk.name] = vs.assembleGroupLocked(modulePath, gk)
		}
		vs.roots[modulePath][rootName] = eval.Object(byName)
	}
	vs.dirtyRoots[modulePath] = map[string]bool{}
}

// NewEmptyValueStore builds a store with no configuration behind it, used
// by destroy plans that never evaluate expressions.
func NewEmptyValueStore() *ValueStore {
	return NewValueStore(&config.Expansion{ByAddr: map[string]*config.Instance{}})
}

// RootOutputs exposes the expansion's root output specs.
func (vs *ValueStore) RootOutputs() map[string]*config.OutputSpec {
	if vs.ex == nil || vs.ex.Outputs == nil {
		return nil
	}
	return vs.ex.Outputs
}

// OutputValue evaluates an output spec against current values.
func (vs *ValueStore) OutputValue(spec *config.OutputSpec) eval.Value {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.evaluateOutputLocked(spec)
}

// ResourceAddrOf strips the instance key from an address.
func ResourceAddrOf(addr string) string {
	if i := strings.IndexByte(addr, '['); i >= 0 {
		return addr[:i]
	}
	return addr
}

// Set records the current object value of an instance and invalidates the
// caches covering it.
func (vs *ValueStore) Set(addr string, v eval.Value) {
	vs.mu.Lock()
	vs.vals[addr] = v
	if ref, ok := vs.memberOf[addr]; ok {
		vs.markDirtyLocked(ref.modulePath, ref.gk)
	}
	vs.mu.Unlock()
}

// Get returns the instance's object value, or false.
func (vs *ValueStore) Get(addr string) (eval.Value, bool) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	v, ok := vs.vals[addr]
	return v, ok
}

// ScopeFor builds the evaluation context for an instance: its configuration
// scope (vars, locals, count/each) extended with every resource, data
// source, and module output visible from its module. Root objects come from
// the group cache; only groups written since the last call are reassembled.
func (vs *ValueStore) ScopeFor(inst *config.Instance) *eval.Context {
	scope := inst.Scope.Child()
	vs.mu.Lock()
	defer vs.mu.Unlock()

	vs.refreshRootsLocked(inst.ModulePath)
	for rootName, v := range vs.roots[inst.ModulePath] {
		scope.Variables[rootName] = v
	}
	if _, ok := scope.Variables["data"]; !ok {
		scope.Variables["data"] = eval.Object(nil)
	}

	// Module outputs are visible from the root module only.
	if inst.ModulePath == "" && len(vs.ex.ModuleOutputs) > 0 {
		if vs.moduleDirty {
			modRoot := map[string]eval.Value{}
			for callName, outs := range vs.ex.ModuleOutputs {
				outVals := map[string]eval.Value{}
				for name, spec := range outs {
					outVals[name] = vs.evaluateOutputLocked(spec)
				}
				modRoot[callName] = eval.Object(outVals)
			}
			vs.moduleCached = eval.Object(modRoot)
			vs.moduleDirty = false
		}
		scope.Variables["module"] = vs.moduleCached
	}
	return scope
}

// evaluateOutputLocked computes a module output against current values.
// Callers hold vs.mu (at least RLock); the nested ScopeFor-like assembly is
// done through a pseudo instance bound to the module path.
func (vs *ValueStore) evaluateOutputLocked(spec *config.OutputSpec) eval.Value {
	// Build a minimal scope: the module's own resources.
	scope := spec.Scope.Child()
	roots := map[string]map[string]map[string]eval.Value{} // type -> name -> key -> val
	for _, other := range vs.ex.Instances {
		if other.ModulePath != spec.ModulePath {
			continue
		}
		pa, err := ParseAddr(other.Addr)
		if err != nil || pa.Data {
			continue
		}
		v, ok := vs.vals[other.Addr]
		if !ok {
			v = eval.Unknown
		}
		if roots[pa.Type] == nil {
			roots[pa.Type] = map[string]map[string]eval.Value{}
		}
		if roots[pa.Type][pa.Name] == nil {
			roots[pa.Type][pa.Name] = map[string]eval.Value{}
		}
		roots[pa.Type][pa.Name][fmt.Sprintf("%v", pa.Key)] = v
	}
	for typ, byName := range roots {
		obj := map[string]eval.Value{}
		for name, members := range byName {
			if v, single := members["<nil>"]; single && len(members) == 1 {
				obj[name] = v
				continue
			}
			// Indexed: decide list vs map by key shape.
			isList := true
			for k := range members {
				if _, err := strconv.Atoi(k); err != nil {
					isList = false
					break
				}
			}
			if isList {
				keys := make([]int, 0, len(members))
				for k := range members {
					n, _ := strconv.Atoi(k)
					keys = append(keys, n)
				}
				sort.Ints(keys)
				list := make([]eval.Value, len(keys))
				for i, k := range keys {
					list[i] = members[strconv.Itoa(k)]
				}
				obj[name] = eval.ListOf(list)
			} else {
				m := map[string]eval.Value{}
				for k, v := range members {
					m[k] = v
				}
				obj[name] = eval.Object(m)
			}
		}
		scope.Variables[typ] = eval.Object(obj)
	}
	v, diags := eval.Evaluate(spec.Expr, scope)
	if diags.HasErrors() {
		return eval.Unknown
	}
	return v
}

// EvaluateAttrs computes the concrete attribute values of an instance under
// the current value store, returning per-attribute diagnostics.
func (vs *ValueStore) EvaluateAttrs(inst *config.Instance) (map[string]eval.Value, hcl.Diagnostics) {
	scope := vs.ScopeFor(inst)
	out := make(map[string]eval.Value, len(inst.Attrs))
	var diags hcl.Diagnostics
	for name, expr := range inst.Attrs {
		v, d := eval.Evaluate(expr, scope)
		diags = diags.Extend(d)
		if d.HasErrors() {
			continue
		}
		out[name] = v
	}
	return out, diags
}
