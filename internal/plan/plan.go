package plan

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/graph"
	"cloudless/internal/hcl"
	"cloudless/internal/provider"
	"cloudless/internal/schema"
	"cloudless/internal/state"
	"cloudless/internal/telemetry"
)

// refreshFanOut bounds concurrent refresh Gets; the provider runtime's
// adaptive window governs actual cloud concurrency underneath.
const refreshFanOut = 16

// Action is what the applier must do for one instance.
type Action int

// Actions.
const (
	ActionNoop Action = iota
	ActionCreate
	ActionUpdate
	ActionReplace
	ActionDelete
)

var actionNames = map[Action]string{
	ActionNoop:    "no-op",
	ActionCreate:  "create",
	ActionUpdate:  "update",
	ActionReplace: "replace",
	ActionDelete:  "delete",
}

// String names the action.
func (a Action) String() string { return actionNames[a] }

// Change is one planned operation on one resource instance.
type Change struct {
	Addr   string
	Action Action
	Type   string
	Region string
	// ID is the existing cloud ID for update/replace/delete.
	ID string
	// Before is the prior attribute set (nil for create).
	Before map[string]eval.Value
	// After is the desired attribute set; values referencing not-yet-created
	// resources are Unknown and resolve during apply.
	After map[string]eval.Value
	// ChangedAttrs lists attributes that differ, sorted.
	ChangedAttrs []string
	// ForcedBy lists the ForceNew attributes that escalate to replacement.
	ForcedBy []string
	// Instance is the configuration instance (nil for pure deletes).
	Instance *config.Instance
	// Deps are resource-level dependency addresses (from config for
	// create/update, from state for delete).
	Deps []string
}

// Plan is the full execution plan.
type Plan struct {
	Changes map[string]*Change
	// Graph covers exactly the non-noop changes.
	Graph *graph.Graph
	// Values is the value store seeded during planning; the applier
	// continues filling it.
	Values *ValueStore
	// PriorState is the (possibly refreshed) state planning ran against.
	PriorState *state.State
	// BaseSerial is the golden-state serial the plan is pinned at: the
	// serial of the snapshot planning read. Apply commits carry it so a
	// commit over a staler base than the current state aborts with a typed
	// conflict instead of silently clobbering concurrent work (§3.4).
	BaseSerial int
	// Stats.
	Creates, Updates, Replaces, Deletes, Noops int
	// RefreshReads counts cloud Get calls spent refreshing state.
	RefreshReads int
	// EvaluatedInstances counts instances whose attributes were evaluated
	// (the incremental planner's savings show up here).
	EvaluatedInstances int
}

// Options control planning.
type Options struct {
	// Refresh re-reads every (in-scope) state entry from the cloud before
	// diffing. The baseline always refreshes everything.
	Refresh bool
	// Cloud is required when Refresh is set.
	Cloud cloud.Interface
	// ImpactScope, when non-nil, confines planning to the given
	// resource-level addresses plus their transitive dependents; everything
	// else is assumed unchanged (the §3.3 incremental optimization).
	ImpactScope []string
}

// Compute builds a plan for the expansion against the prior state.
func Compute(ctx context.Context, ex *config.Expansion, prior *state.State, opts Options) (*Plan, hcl.Diagnostics) {
	var diags hcl.Diagnostics
	if prior == nil {
		prior = state.New()
	}
	p := &Plan{
		Changes:    map[string]*Change{},
		Graph:      graph.New(),
		Values:     NewValueStore(ex),
		BaseSerial: prior.Serial,
	}
	ctx, span := telemetry.StartSpan(ctx, "plan.compute")
	defer func() {
		span.SetAttr("base_serial", p.BaseSerial)
		span.SetAttr("refresh_reads", p.RefreshReads)
		span.SetAttr("evaluated_instances", p.EvaluatedInstances)
		span.SetAttr("creates", p.Creates)
		span.SetAttr("updates", p.Updates)
		span.SetAttr("replaces", p.Replaces)
		span.SetAttr("deletes", p.Deletes)
		span.SetAttr("noops", p.Noops)
		span.End()
		if rec := telemetry.FromContext(ctx); rec != nil {
			reg := rec.Metrics()
			reg.Counter("plan.computes").Inc()
			reg.Counter("plan.refresh_reads").Add(int64(p.RefreshReads))
			reg.Counter("plan.evaluated_instances").Add(int64(p.EvaluatedInstances))
		}
	}()

	// Resource-level dependency graph over configuration, used for
	// topological evaluation order and impact scoping.
	cfgGraph := graph.New()
	for _, inst := range ex.Instances {
		cfgGraph.AddNode(inst.ResourceAddr())
	}
	for _, inst := range ex.Instances {
		for _, dep := range inst.DependsOn {
			if cfgGraph.HasNode(dep) {
				if err := cfgGraph.AddEdge(inst.ResourceAddr(), dep); err != nil {
					diags = diags.Append(hcl.Errorf(inst.DeclRange, "dependency error: %s", err))
				}
			}
		}
	}
	if err := cfgGraph.Validate(); err != nil {
		return p, diags.Append(hcl.Errorf(hcl.Range{}, "configuration has a dependency cycle: %s", err))
	}

	// Impact scope: the set of resource-level addresses we must (re)plan.
	var scope map[string]struct{}
	if opts.ImpactScope != nil {
		scope = cfgGraph.ImpactScope(opts.ImpactScope...)
	}
	// Impact-scope size vs total graph size is the headline incremental-
	// planning metric (§3.3): the fraction of the graph a change touches.
	scopeSize := cfgGraph.Len()
	if scope != nil {
		scopeSize = len(scope)
	}
	span.SetAttr("graph_size", cfgGraph.Len())
	span.SetAttr("scope_size", scopeSize)
	if rec := telemetry.FromContext(ctx); rec != nil {
		reg := rec.Metrics()
		reg.Gauge("plan.graph_size").Set(float64(cfgGraph.Len()))
		reg.Gauge("plan.scope_size").Set(float64(scopeSize))
	}
	inScope := func(resourceAddr string) bool {
		if scope == nil {
			return true
		}
		_, ok := scope[resourceAddr]
		return ok
	}

	// Refresh. The full planner refreshes every state entry; the
	// incremental planner only those in scope. The Gets fan out through the
	// provider runtime as fresh reads (refresh exists to observe
	// out-of-band change, so cached values would defeat it); results are
	// folded back in address order so diagnostics stay deterministic.
	prior = prior.Clone()
	if opts.Refresh {
		if opts.Cloud == nil {
			return p, diags.Append(hcl.Errorf(hcl.Range{}, "refresh requested without a cloud connection"))
		}
		var addrs []string
		for _, addr := range prior.Addrs() {
			resourceAddr := addr
			if idx := indexOfBracket(addr); idx >= 0 {
				resourceAddr = addr[:idx]
			}
			if inScope(resourceAddr) {
				addrs = append(addrs, addr)
			}
		}
		type refreshed struct {
			cur *cloud.Resource
			err error
		}
		results := make([]refreshed, len(addrs))
		fctx := provider.WithFresh(ctx)
		sem := make(chan struct{}, refreshFanOut)
		var wg sync.WaitGroup
		for i, addr := range addrs {
			wg.Add(1)
			go func(i int, rs *state.ResourceState) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i].cur, results[i].err = opts.Cloud.Get(fctx, rs.Type, rs.ID)
			}(i, prior.Get(addr))
		}
		wg.Wait()
		p.RefreshReads = len(addrs)
		for i, addr := range addrs {
			rs := prior.Get(addr)
			cur, err := results[i].cur, results[i].err
			switch {
			case cloud.IsNotFound(err):
				prior.Remove(addr) // gone out-of-band; will be recreated
			case err != nil:
				diags = diags.Append(hcl.Errorf(hcl.Range{}, "refresh %s: %s", addr, err))
			default:
				rs.Attrs = cur.Attrs
				rs.Region = cur.Region
			}
		}
		if diags.HasErrors() {
			return p, diags
		}
	}
	p.PriorState = prior

	// Evaluate instances in dependency order and decide actions.
	order, err := cfgGraph.TopoSort()
	if err != nil {
		return p, diags.Append(hcl.Errorf(hcl.Range{}, "cycle: %s", err))
	}
	instByResource := map[string][]*config.Instance{}
	for _, inst := range ex.Instances {
		r := inst.ResourceAddr()
		instByResource[r] = append(instByResource[r], inst)
	}

	for _, resourceAddr := range order {
		for _, inst := range instByResource[resourceAddr] {
			if inst.Mode == config.DataMode {
				// Data sources are read locally at plan time.
				p.Values.Set(inst.Addr, dataSourceValue(inst, ex))
				continue
			}
			prior_ := prior.Get(inst.Addr)
			if !inScope(resourceAddr) {
				// Outside the impact scope: assume unchanged; expose the
				// recorded state value.
				if prior_ != nil {
					p.Values.Set(inst.Addr, eval.Object(prior_.Attrs))
					p.Noops++
				}
				continue
			}
			change, d := p.diffInstance(inst, prior_)
			diags = diags.Extend(d)
			if d.HasErrors() {
				continue
			}
			p.record(change)
		}
	}

	// Deletions: state entries with no configuration instance.
	for _, addr := range prior.Addrs() {
		if _, exists := ex.ByAddr[addr]; exists {
			continue
		}
		resourceAddr := addr
		if idx := indexOfBracket(addr); idx >= 0 {
			resourceAddr = addr[:idx]
		}
		if scope != nil && !inScope(resourceAddr) {
			// An orphan outside the scope is still an orphan; incremental
			// plans pick it up only when scoped to it. Skip.
			continue
		}
		rs := prior.Get(addr)
		p.record(&Change{
			Addr: addr, Action: ActionDelete, Type: rs.Type, Region: rs.Region,
			ID: rs.ID, Before: rs.Attrs, Deps: rs.Dependencies,
		})
	}

	diags = diags.Extend(p.buildGraph(ex, prior))
	return p, diags
}

func indexOfBracket(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '[' {
			return i
		}
	}
	return -1
}

// diffInstance evaluates desired attributes and compares with prior state.
func (p *Plan) diffInstance(inst *config.Instance, prior *state.ResourceState) (*Change, hcl.Diagnostics) {
	rs, _ := schema.LookupResource(inst.Type)
	desired, diags := p.Values.EvaluateAttrs(inst)
	if diags.HasErrors() {
		return nil, diags
	}
	p.EvaluatedInstances++
	// Apply schema defaults so the diff compares what the cloud will hold.
	if rs != nil {
		for name, a := range rs.Attrs {
			if _, set := desired[name]; !set && a.HasDefault {
				desired[name] = a.Default
			}
		}
	}

	ch := &Change{
		Addr: inst.Addr, Type: inst.Type, Region: inst.Region,
		After: desired, Instance: inst, Deps: inst.DependsOn,
	}

	if prior == nil {
		ch.Action = ActionCreate
		// Expose the post-create value: configured attrs plus unknown
		// computed attributes.
		p.Values.Set(inst.Addr, postApplyValue(rs, desired, nil))
		return ch, diags
	}

	ch.ID = prior.ID
	ch.Before = prior.Attrs
	for name, want := range desired {
		have, exists := prior.Attrs[name]
		if want.IsUnknown() {
			// Cannot prove equality yet; treat as a potential change that
			// the applier re-checks once the value resolves.
			ch.ChangedAttrs = append(ch.ChangedAttrs, name)
			continue
		}
		if !exists || !have.Equal(want) {
			ch.ChangedAttrs = append(ch.ChangedAttrs, name)
			if a := rs.Attr(name); a != nil && a.ForceNew {
				ch.ForcedBy = append(ch.ForcedBy, name)
			}
		}
	}
	sort.Strings(ch.ChangedAttrs)
	sort.Strings(ch.ForcedBy)

	switch {
	case len(ch.ChangedAttrs) == 0:
		ch.Action = ActionNoop
		p.Values.Set(inst.Addr, eval.Object(prior.Attrs))
	case len(ch.ForcedBy) > 0:
		ch.Action = ActionReplace
		p.Values.Set(inst.Addr, postApplyValue(rs, desired, nil))
	default:
		ch.Action = ActionUpdate
		// Computed attrs keep their current values across in-place update.
		p.Values.Set(inst.Addr, postApplyValue(rs, desired, prior.Attrs))
	}
	return ch, diags
}

// postApplyValue predicts the instance's object value after apply: desired
// attributes plus computed attributes (known from prior state for updates,
// unknown otherwise).
func postApplyValue(rs *schema.ResourceSchema, desired, priorAttrs map[string]eval.Value) eval.Value {
	obj := make(map[string]eval.Value, len(desired)+4)
	for k, v := range desired {
		obj[k] = v
	}
	if rs != nil {
		for name, a := range rs.Attrs {
			if !a.Computed {
				continue
			}
			if priorAttrs != nil {
				if v, ok := priorAttrs[name]; ok {
					obj[name] = v
					continue
				}
			}
			obj[name] = eval.Unknown
		}
	}
	return eval.Object(obj)
}

func (p *Plan) record(ch *Change) {
	if ch == nil {
		return
	}
	p.Changes[ch.Addr] = ch
	switch ch.Action {
	case ActionCreate:
		p.Creates++
	case ActionUpdate:
		p.Updates++
	case ActionReplace:
		p.Replaces++
	case ActionDelete:
		p.Deletes++
	case ActionNoop:
		p.Noops++
	}
}

// buildGraph wires the execution graph over non-noop changes.
func (p *Plan) buildGraph(ex *config.Expansion, prior *state.State) hcl.Diagnostics {
	var diags hcl.Diagnostics
	active := func(addr string) bool {
		ch, ok := p.Changes[addr]
		return ok && ch.Action != ActionNoop
	}
	// Instance addresses per resource-level address, across config & state.
	instancesOf := map[string][]string{}
	note := func(addr string) {
		r := addr
		if idx := indexOfBracket(addr); idx >= 0 {
			r = addr[:idx]
		}
		instancesOf[r] = append(instancesOf[r], addr)
	}
	for addr := range p.Changes {
		note(addr)
	}

	for addr, ch := range p.Changes {
		if ch.Action == ActionNoop {
			continue
		}
		p.Graph.AddNode(addr)
		for _, depResource := range ch.Deps {
			for _, depInst := range instancesOf[depResource] {
				if !active(depInst) || depInst == addr {
					continue
				}
				depCh := p.Changes[depInst]
				if ch.Action == ActionDelete && depCh.Action == ActionDelete {
					// Destroy order is the reverse of create order: the
					// dependent (this resource's user) must go first. Here
					// ch depends on depInst in config terms, so for deletes
					// the edge flips: depInst waits for ch.
					if err := p.Graph.AddEdge(depInst, addr); err != nil {
						diags = diags.Append(hcl.Errorf(hcl.Range{}, "graph: %s", err))
					}
					continue
				}
				if err := p.Graph.AddEdge(addr, depInst); err != nil {
					diags = diags.Append(hcl.Errorf(hcl.Range{}, "graph: %s", err))
				}
			}
		}
	}

	// A delete of an instance that others still depend on (shrinking count)
	// must wait for those dependents' updates; conversely creates that
	// reference deleted resources are configuration errors surfaced by the
	// cloud. Keep the graph acyclic check as the final guard.
	if err := p.Graph.Validate(); err != nil {
		diags = diags.Append(hcl.Errorf(hcl.Range{}, "plan graph: %s", err))
	}
	return diags
}

// PendingCount returns the number of operations the applier will perform.
func (p *Plan) PendingCount() int {
	return p.Creates + p.Updates + p.Replaces + p.Deletes
}

// Costs returns the estimated duration of each graph node from the schema's
// latency model, for critical-path scheduling.
func (p *Plan) Costs() func(addr string) time.Duration {
	return func(addr string) time.Duration {
		ch, ok := p.Changes[addr]
		if !ok {
			return 0
		}
		rs, ok := schema.LookupResource(ch.Type)
		if !ok {
			return time.Second
		}
		switch ch.Action {
		case ActionCreate:
			return rs.ProvisionTime
		case ActionUpdate:
			return rs.UpdateTime
		case ActionReplace:
			return rs.DeleteTime + rs.ProvisionTime
		case ActionDelete:
			return rs.DeleteTime
		default:
			return 0
		}
	}
}

// Summary renders a one-line plan summary like "3 to add, 1 to change,
// 0 to destroy".
func (p *Plan) Summary() string {
	return fmt.Sprintf("%d to add, %d to change, %d to replace, %d to destroy (%d unchanged)",
		p.Creates, p.Updates, p.Replaces, p.Deletes, p.Noops)
}

// dataSourceValue evaluates a data source locally: the simulated providers'
// data sources are pure functions of provider configuration.
func dataSourceValue(inst *config.Instance, ex *config.Expansion) eval.Value {
	region := inst.Region
	switch inst.Type {
	case "aws_region", "azure_location":
		return eval.Object(map[string]eval.Value{"name": eval.String(region)})
	case "aws_availability_zones":
		return eval.Object(map[string]eval.Value{
			"region": eval.String(region),
			"names":  eval.Strings(region+"a", region+"b", region+"c"),
		})
	default:
		rs, ok := schema.LookupResource(inst.Type)
		if !ok {
			return eval.Unknown
		}
		obj := map[string]eval.Value{}
		for name, a := range rs.Attrs {
			if a.Computed {
				obj[name] = eval.String(name + "-" + region)
			}
		}
		return eval.Object(obj)
	}
}
