package plan

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/graph"
	"cloudless/internal/hcl"
	"cloudless/internal/provider"
	"cloudless/internal/schema"
	"cloudless/internal/state"
	"cloudless/internal/telemetry"
)

// Action is what the applier must do for one instance.
type Action int

// Actions.
const (
	ActionNoop Action = iota
	ActionCreate
	ActionUpdate
	ActionReplace
	ActionDelete
)

var actionNames = map[Action]string{
	ActionNoop:    "no-op",
	ActionCreate:  "create",
	ActionUpdate:  "update",
	ActionReplace: "replace",
	ActionDelete:  "delete",
}

// String names the action.
func (a Action) String() string { return actionNames[a] }

// Change is one planned operation on one resource instance.
type Change struct {
	Addr   string
	Action Action
	Type   string
	Region string
	// ID is the existing cloud ID for update/replace/delete.
	ID string
	// Before is the prior attribute set (nil for create).
	Before map[string]eval.Value
	// After is the desired attribute set; values referencing not-yet-created
	// resources are Unknown and resolve during apply.
	After map[string]eval.Value
	// ChangedAttrs lists attributes that differ, sorted.
	ChangedAttrs []string
	// ForcedBy lists the ForceNew attributes that escalate to replacement.
	ForcedBy []string
	// Instance is the configuration instance (nil for pure deletes).
	Instance *config.Instance
	// Deps are resource-level dependency addresses (from config for
	// create/update, from state for delete).
	Deps []string
}

// Plan is the full execution plan.
type Plan struct {
	Changes map[string]*Change
	// Graph covers exactly the non-noop changes.
	Graph *graph.Graph
	// Values is the value store seeded during planning; the applier
	// continues filling it.
	Values *ValueStore
	// PriorState is the (possibly refreshed) state planning ran against.
	PriorState *state.State
	// BaseSerial is the golden-state serial the plan is pinned at: the
	// serial of the snapshot planning read. Apply commits carry it so a
	// commit over a staler base than the current state aborts with a typed
	// conflict instead of silently clobbering concurrent work (§3.4).
	BaseSerial int
	// Stats.
	Creates, Updates, Replaces, Deletes, Noops int
	// RefreshReads counts cloud Get calls spent refreshing state.
	RefreshReads int
	// EvaluatedInstances counts instances whose attributes were evaluated
	// (the incremental planner's savings show up here).
	EvaluatedInstances int
}

// Options control planning.
type Options struct {
	// Refresh re-reads every (in-scope) state entry from the cloud before
	// diffing. The baseline always refreshes everything.
	Refresh bool
	// Cloud is required when Refresh is set.
	Cloud cloud.Interface
	// ImpactScope, when non-nil, confines planning to the given
	// resource-level addresses plus their transitive dependents; everything
	// else is assumed unchanged (the §3.3 incremental optimization).
	ImpactScope []string
	// Concurrency is the worker count for partitioned parallel evaluation
	// (0 means GOMAXPROCS). The plan is byte-identical for every value:
	// workers only race on dependency-independent instances, and results
	// merge in address order.
	Concurrency int
	// Cache, when non-nil, makes the plan an incremental replan: only
	// declarations whose fingerprint changed, addresses whose recorded state
	// moved, and their transitive dependents are re-evaluated; everything
	// else replays its memoized diff from the previous plan through this
	// cache. The resulting plan is byte-identical to a full replan. Composes
	// with ImpactScope (intersection) and with Refresh (a refresh that
	// observes drift dirties exactly the drifted subtrees).
	Cache *ReplanCache
}

// Compute builds a plan for the expansion against the prior state.
func Compute(ctx context.Context, ex *config.Expansion, prior *state.State, opts Options) (*Plan, hcl.Diagnostics) {
	var diags hcl.Diagnostics
	if prior == nil {
		prior = state.New()
	}
	p := &Plan{
		Changes:    map[string]*Change{},
		Graph:      graph.New(),
		Values:     NewValueStore(ex),
		BaseSerial: prior.Serial,
	}
	ctx, span := telemetry.StartSpan(ctx, "plan.compute")
	defer func() {
		span.SetAttr("base_serial", p.BaseSerial)
		span.SetAttr("refresh_reads", p.RefreshReads)
		span.SetAttr("evaluated_instances", p.EvaluatedInstances)
		span.SetAttr("creates", p.Creates)
		span.SetAttr("updates", p.Updates)
		span.SetAttr("replaces", p.Replaces)
		span.SetAttr("deletes", p.Deletes)
		span.SetAttr("noops", p.Noops)
		span.End()
		if rec := telemetry.FromContext(ctx); rec != nil {
			reg := rec.Metrics()
			reg.Counter("plan.computes").Inc()
			reg.Counter("plan.refresh_reads").Add(int64(p.RefreshReads))
			reg.Counter("plan.evaluated_instances").Add(int64(p.EvaluatedInstances))
		}
	}()

	// Resource-level dependency graph over configuration, used for
	// topological evaluation order and impact scoping.
	cfgGraph := graph.New()
	for _, inst := range ex.Instances {
		cfgGraph.AddNode(inst.ResourceAddr())
	}
	for _, inst := range ex.Instances {
		for _, dep := range inst.DependsOn {
			if cfgGraph.HasNode(dep) {
				if err := cfgGraph.AddEdge(inst.ResourceAddr(), dep); err != nil {
					diags = diags.Append(hcl.Errorf(inst.DeclRange, "dependency error: %s", err))
				}
			}
		}
	}
	if err := cfgGraph.Validate(); err != nil {
		return p, diags.Append(hcl.Errorf(hcl.Range{}, "configuration has a dependency cycle: %s", err))
	}

	// Impact scope: the set of resource-level addresses we must (re)plan.
	var scope map[string]struct{}
	if opts.ImpactScope != nil {
		scope = cfgGraph.ImpactScope(opts.ImpactScope...)
	}
	// Impact-scope size vs total graph size is the headline incremental-
	// planning metric (§3.3): the fraction of the graph a change touches.
	scopeSize := cfgGraph.Len()
	if scope != nil {
		scopeSize = len(scope)
	}
	span.SetAttr("graph_size", cfgGraph.Len())
	span.SetAttr("scope_size", scopeSize)
	if rec := telemetry.FromContext(ctx); rec != nil {
		reg := rec.Metrics()
		reg.Gauge("plan.graph_size").Set(float64(cfgGraph.Len()))
		reg.Gauge("plan.scope_size").Set(float64(scopeSize))
	}
	inScope := func(resourceAddr string) bool {
		if scope == nil {
			return true
		}
		_, ok := scope[resourceAddr]
		return ok
	}

	// Refresh. The full planner refreshes every state entry; the
	// incremental planner only those in scope. The Gets fan out through the
	// provider runtime as fresh reads (refresh exists to observe
	// out-of-band change, so cached values would defeat it); results are
	// folded back in address order so diagnostics stay deterministic.
	prior = prior.Clone()
	if opts.Refresh {
		if opts.Cloud == nil {
			return p, diags.Append(hcl.Errorf(hcl.Range{}, "refresh requested without a cloud connection"))
		}
		var addrs []string
		for _, addr := range prior.Addrs() {
			resourceAddr := addr
			if idx := indexOfBracket(addr); idx >= 0 {
				resourceAddr = addr[:idx]
			}
			// A cached replan refreshes everything: refresh is how drift is
			// observed, and the cache turns an observed drift into a dirty
			// subtree, so narrowing the reads would blind the invalidation.
			// The reads are batched, so a full refresh is round-trip-cheap.
			if opts.Cache != nil || inScope(resourceAddr) {
				addrs = append(addrs, addr)
			}
		}
		// Refresh reads go out as batched gets: one wire call per
		// MaxBatchItems chunk instead of one per resource, so refreshing a
		// 10k-entry state costs ~40 round-trips, not 10k.
		keys := make([]cloud.ResourceKey, len(addrs))
		for i, addr := range addrs {
			rs := prior.Get(addr)
			keys[i] = cloud.ResourceKey{Type: rs.Type, ID: rs.ID}
		}
		fctx := provider.WithFresh(ctx)
		results := make([]cloud.BatchResult, 0, len(addrs))
		for start := 0; start < len(keys); start += cloud.MaxBatchItems {
			end := start + cloud.MaxBatchItems
			if end > len(keys) {
				end = len(keys)
			}
			batch, err := cloud.BatchGet(fctx, opts.Cloud, keys[start:end])
			if err != nil {
				return p, diags.Append(hcl.Errorf(hcl.Range{}, "refresh: %s", err))
			}
			results = append(results, batch...)
		}
		p.RefreshReads = len(addrs)
		for i, addr := range addrs {
			rs := prior.Get(addr)
			cur, err := results[i].Resource, results[i].Err
			switch {
			case cloud.IsNotFound(err):
				prior.Remove(addr) // gone out-of-band; will be recreated
			case err != nil:
				diags = diags.Append(hcl.Errorf(hcl.Range{}, "refresh %s: %s", addr, err))
			default:
				rs.Attrs = cur.Attrs
				rs.Region = cur.Region
			}
		}
		if diags.HasErrors() {
			return p, diags
		}
	}
	p.PriorState = prior

	// Evaluate instances in dependency order, partitioned across the
	// work-stealing pool. Workers touch only their own per-resource result
	// slot (plus the concurrency-safe ValueStore), and the fold below merges
	// everything in address order — so the plan (changes, counters,
	// diagnostics) is byte-identical for any worker count, including 1.
	instByResource := map[string][]*config.Instance{}
	for _, inst := range ex.Instances {
		r := inst.ResourceAddr()
		instByResource[r] = append(instByResource[r], inst)
	}

	// Incremental replan: fingerprint the declarations and ask the cache for
	// the dirty seeds, then close over dependents. A nil dirtyScope means
	// everything is dirty (no cache, or a cold one).
	var declHashes map[string]uint64
	var dirtyScope map[string]struct{}
	if opts.Cache != nil {
		declHashes = ex.DeclHashes()
		if seeds, cold := opts.Cache.dirtySeeds(declHashes, instByResource, prior, opts.Refresh); !cold {
			dirtyScope = cfgGraph.ImpactScope(seeds...)
		}
	}
	inDirty := func(resourceAddr string) bool {
		if dirtyScope == nil {
			return true
		}
		_, ok := dirtyScope[resourceAddr]
		return ok
	}

	type resourceResult struct {
		changes   []*Change
		diags     hcl.Diagnostics
		evaluated int
		noops     int
		outcome   replanOutcome
	}
	resourceAddrs := cfgGraph.Nodes()
	results := make(map[string]*resourceResult, len(resourceAddrs))
	for _, addr := range resourceAddrs {
		results[addr] = &resourceResult{}
	}
	workers := opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	walkErr := cfgGraph.StealWalk(workers, func(resourceAddr string) {
		res := results[resourceAddr]
		insts := instByResource[resourceAddr]

		// Clean resource under a warm cache: replay the memoized diffs and
		// planned values instead of re-evaluating. The replayed records are
		// exactly what evaluation would produce, so dirty dependents read
		// identical upstream values and the merged plan is byte-identical.
		if opts.Cache != nil && inScope(resourceAddr) && !inDirty(resourceAddr) {
			if entries, ok := opts.Cache.replay(insts); ok {
				for i, inst := range insts {
					if inst.Mode == config.DataMode {
						p.Values.Set(inst.Addr, dataSourceValue(inst, ex))
						continue
					}
					e := entries[i]
					if e.hasValue {
						p.Values.Set(inst.Addr, e.value)
					}
					if e.change != nil {
						ch := cloneChange(e.change)
						ch.Instance = inst
						res.changes = append(res.changes, ch)
					}
				}
				res.outcome = outcomeReplayed
				return
			}
		}

		res.outcome = outcomeEvaluated
		for _, inst := range insts {
			if inst.Mode == config.DataMode {
				// Data sources are read locally at plan time.
				p.Values.Set(inst.Addr, dataSourceValue(inst, ex))
				continue
			}
			prior_ := prior.Get(inst.Addr)
			if !inScope(resourceAddr) {
				// Outside the impact scope: assume unchanged; expose the
				// recorded state value.
				res.outcome = outcomeSkipped
				if prior_ != nil {
					p.Values.Set(inst.Addr, eval.Object(prior_.Attrs))
					res.noops++
				}
				continue
			}
			change, d := p.diffInstance(inst, prior_)
			res.diags = res.diags.Extend(d)
			if d.HasErrors() {
				res.outcome = outcomeFailed
				continue
			}
			res.evaluated++
			res.changes = append(res.changes, change)
		}
	})
	if walkErr != nil {
		return p, diags.Append(hcl.Errorf(hcl.Range{}, "cycle: %s", walkErr))
	}
	outcomes := make(map[string]replanOutcome, len(resourceAddrs))
	for _, resourceAddr := range resourceAddrs {
		res := results[resourceAddr]
		diags = diags.Extend(res.diags)
		p.EvaluatedInstances += res.evaluated
		p.Noops += res.noops
		outcomes[resourceAddr] = res.outcome
		for _, ch := range res.changes {
			p.record(ch)
		}
	}

	// Deletions: state entries with no configuration instance.
	for _, addr := range prior.Addrs() {
		if _, exists := ex.ByAddr[addr]; exists {
			continue
		}
		resourceAddr := addr
		if idx := indexOfBracket(addr); idx >= 0 {
			resourceAddr = addr[:idx]
		}
		if scope != nil && !inScope(resourceAddr) {
			// An orphan outside the scope is still an orphan; incremental
			// plans pick it up only when scoped to it. Skip.
			continue
		}
		rs := prior.Get(addr)
		p.record(&Change{
			Addr: addr, Action: ActionDelete, Type: rs.Type, Region: rs.Region,
			ID: rs.ID, Before: rs.Attrs, Deps: rs.Dependencies,
		})
	}

	diags = diags.Extend(p.buildGraph(ex, prior))

	// Seed the cache from this plan so the next Compute replays what did not
	// move. An errored plan never commits: its outcomes may be partial.
	if opts.Cache != nil && !diags.HasErrors() {
		opts.Cache.commit(declHashes, prior, instByResource, outcomes, p, opts.Refresh)
		st := opts.Cache.LastStats()
		span.SetAttr("replan_invalidation", st.Invalidation)
		span.SetAttr("replan_replayed", st.Replayed)
		span.SetAttr("replan_evaluated", st.Evaluated)
	}
	return p, diags
}

func indexOfBracket(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '[' {
			return i
		}
	}
	return -1
}

// diffInstance evaluates desired attributes and compares with prior state.
func (p *Plan) diffInstance(inst *config.Instance, prior *state.ResourceState) (*Change, hcl.Diagnostics) {
	rs, _ := schema.LookupResource(inst.Type)
	desired, diags := p.Values.EvaluateAttrs(inst)
	if diags.HasErrors() {
		return nil, diags
	}
	// Apply schema defaults so the diff compares what the cloud will hold.
	if rs != nil {
		for name, a := range rs.Attrs {
			if _, set := desired[name]; !set && a.HasDefault {
				desired[name] = a.Default
			}
		}
	}

	ch := &Change{
		Addr: inst.Addr, Type: inst.Type, Region: inst.Region,
		After: desired, Instance: inst, Deps: inst.DependsOn,
	}

	if prior == nil {
		ch.Action = ActionCreate
		// Expose the post-create value: configured attrs plus unknown
		// computed attributes.
		p.Values.Set(inst.Addr, postApplyValue(rs, desired, nil))
		return ch, diags
	}

	ch.ID = prior.ID
	ch.Before = prior.Attrs
	for name, want := range desired {
		have, exists := prior.Attrs[name]
		if want.IsUnknown() {
			// Cannot prove equality yet; treat as a potential change that
			// the applier re-checks once the value resolves.
			ch.ChangedAttrs = append(ch.ChangedAttrs, name)
			continue
		}
		if !exists || !have.Equal(want) {
			ch.ChangedAttrs = append(ch.ChangedAttrs, name)
			if a := rs.Attr(name); a != nil && a.ForceNew {
				ch.ForcedBy = append(ch.ForcedBy, name)
			}
		}
	}
	sort.Strings(ch.ChangedAttrs)
	sort.Strings(ch.ForcedBy)

	switch {
	case len(ch.ChangedAttrs) == 0:
		ch.Action = ActionNoop
		p.Values.Set(inst.Addr, eval.Object(prior.Attrs))
	case len(ch.ForcedBy) > 0:
		ch.Action = ActionReplace
		p.Values.Set(inst.Addr, postApplyValue(rs, desired, nil))
	default:
		ch.Action = ActionUpdate
		// Computed attrs keep their current values across in-place update.
		p.Values.Set(inst.Addr, postApplyValue(rs, desired, prior.Attrs))
	}
	return ch, diags
}

// postApplyValue predicts the instance's object value after apply: desired
// attributes plus computed attributes (known from prior state for updates,
// unknown otherwise).
func postApplyValue(rs *schema.ResourceSchema, desired, priorAttrs map[string]eval.Value) eval.Value {
	obj := make(map[string]eval.Value, len(desired)+4)
	for k, v := range desired {
		obj[k] = v
	}
	if rs != nil {
		for name, a := range rs.Attrs {
			if !a.Computed {
				continue
			}
			if priorAttrs != nil {
				if v, ok := priorAttrs[name]; ok {
					obj[name] = v
					continue
				}
			}
			obj[name] = eval.Unknown
		}
	}
	return eval.Object(obj)
}

func (p *Plan) record(ch *Change) {
	if ch == nil {
		return
	}
	p.Changes[ch.Addr] = ch
	switch ch.Action {
	case ActionCreate:
		p.Creates++
	case ActionUpdate:
		p.Updates++
	case ActionReplace:
		p.Replaces++
	case ActionDelete:
		p.Deletes++
	case ActionNoop:
		p.Noops++
	}
}

// buildGraph wires the execution graph over non-noop changes.
func (p *Plan) buildGraph(ex *config.Expansion, prior *state.State) hcl.Diagnostics {
	var diags hcl.Diagnostics
	active := func(addr string) bool {
		ch, ok := p.Changes[addr]
		return ok && ch.Action != ActionNoop
	}
	// Instance addresses per resource-level address, across config & state.
	instancesOf := map[string][]string{}
	note := func(addr string) {
		r := addr
		if idx := indexOfBracket(addr); idx >= 0 {
			r = addr[:idx]
		}
		instancesOf[r] = append(instancesOf[r], addr)
	}
	for addr := range p.Changes {
		note(addr)
	}

	for addr, ch := range p.Changes {
		if ch.Action == ActionNoop {
			continue
		}
		p.Graph.AddNode(addr)
		for _, depResource := range ch.Deps {
			for _, depInst := range instancesOf[depResource] {
				if !active(depInst) || depInst == addr {
					continue
				}
				depCh := p.Changes[depInst]
				if ch.Action == ActionDelete && depCh.Action == ActionDelete {
					// Destroy order is the reverse of create order: the
					// dependent (this resource's user) must go first. Here
					// ch depends on depInst in config terms, so for deletes
					// the edge flips: depInst waits for ch.
					if err := p.Graph.AddEdge(depInst, addr); err != nil {
						diags = diags.Append(hcl.Errorf(hcl.Range{}, "graph: %s", err))
					}
					continue
				}
				if err := p.Graph.AddEdge(addr, depInst); err != nil {
					diags = diags.Append(hcl.Errorf(hcl.Range{}, "graph: %s", err))
				}
			}
		}
	}

	// A delete of an instance that others still depend on (shrinking count)
	// must wait for those dependents' updates; conversely creates that
	// reference deleted resources are configuration errors surfaced by the
	// cloud. Keep the graph acyclic check as the final guard.
	if err := p.Graph.Validate(); err != nil {
		diags = diags.Append(hcl.Errorf(hcl.Range{}, "plan graph: %s", err))
	}
	return diags
}

// PendingCount returns the number of operations the applier will perform.
func (p *Plan) PendingCount() int {
	return p.Creates + p.Updates + p.Replaces + p.Deletes
}

// Costs returns the estimated duration of each graph node from the schema's
// latency model, for critical-path scheduling.
func (p *Plan) Costs() func(addr string) time.Duration {
	return func(addr string) time.Duration {
		ch, ok := p.Changes[addr]
		if !ok {
			return 0
		}
		rs, ok := schema.LookupResource(ch.Type)
		if !ok {
			return time.Second
		}
		switch ch.Action {
		case ActionCreate:
			return rs.ProvisionTime
		case ActionUpdate:
			return rs.UpdateTime
		case ActionReplace:
			return rs.DeleteTime + rs.ProvisionTime
		case ActionDelete:
			return rs.DeleteTime
		default:
			return 0
		}
	}
}

// Summary renders a one-line plan summary like "3 to add, 1 to change,
// 0 to destroy".
func (p *Plan) Summary() string {
	return fmt.Sprintf("%d to add, %d to change, %d to replace, %d to destroy (%d unchanged)",
		p.Creates, p.Updates, p.Replaces, p.Deletes, p.Noops)
}

// dataSourceValue evaluates a data source locally: the simulated providers'
// data sources are pure functions of provider configuration.
func dataSourceValue(inst *config.Instance, ex *config.Expansion) eval.Value {
	region := inst.Region
	switch inst.Type {
	case "aws_region", "azure_location":
		return eval.Object(map[string]eval.Value{"name": eval.String(region)})
	case "aws_availability_zones":
		return eval.Object(map[string]eval.Value{
			"region": eval.String(region),
			"names":  eval.Strings(region+"a", region+"b", region+"c"),
		})
	default:
		rs, ok := schema.LookupResource(inst.Type)
		if !ok {
			return eval.Unknown
		}
		obj := map[string]eval.Value{}
		for name, a := range rs.Attrs {
			if a.Computed {
				obj[name] = eval.String(name + "-" + region)
			}
		}
		return eval.Object(obj)
	}
}
