package plan

import (
	"testing"

	"cloudless/internal/config"
	"cloudless/internal/eval"
)

func expandForValues(t *testing.T, src string) *config.Expansion {
	t.Helper()
	m, diags := config.Load(map[string]string{"main.ccl": src})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	return ex
}

const valuesConfig = `
resource "aws_vpc" "main" {
  name       = "main"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "s" {
  count      = 3
  vpc_id     = aws_vpc.main.id
  cidr_block = "10.0.1.0/24"
}

resource "aws_storage_bucket" "kv" {
  for_each = { a = "x", b = "y" }
  name     = "bucket-${each.key}"
}

data "aws_region" "current" {}
`

func TestValueStoreCacheInvalidation(t *testing.T) {
	ex := expandForValues(t, valuesConfig)
	vs := NewValueStore(ex)
	vpc := ex.ByAddr["aws_vpc.main"]

	// Before any write, everything is unknown.
	scope := vs.ScopeFor(vpc)
	v, _ := scope.Lookup("aws_vpc")
	got, err := v.GetAttr("main")
	if err != nil || !got.IsUnknown() {
		t.Fatalf("pre-write value = %v, %v", got, err)
	}

	// Write, then the scope must expose the new value (cache invalidated).
	vs.Set("aws_vpc.main", eval.Object(map[string]eval.Value{"id": eval.String("vpc-1")}))
	scope = vs.ScopeFor(vpc)
	v, _ = scope.Lookup("aws_vpc")
	got, _ = v.GetAttr("main")
	id, err := got.GetAttr("id")
	if err != nil || id.AsString() != "vpc-1" {
		t.Fatalf("post-write id = %v, %v", id, err)
	}

	// Unrelated groups stay assembled across further writes: writing subnet
	// values must not disturb the vpc root.
	vs.Set("aws_subnet.s[1]", eval.Object(map[string]eval.Value{"id": eval.String("sub-1")}))
	scope = vs.ScopeFor(vpc)
	v, _ = scope.Lookup("aws_vpc")
	got, _ = v.GetAttr("main")
	if id, _ := got.GetAttr("id"); id.AsString() != "vpc-1" {
		t.Fatal("vpc value lost after unrelated write")
	}
}

func TestValueStoreCountGroupAssembly(t *testing.T) {
	ex := expandForValues(t, valuesConfig)
	vs := NewValueStore(ex)
	vs.Set("aws_subnet.s[0]", eval.Object(map[string]eval.Value{"id": eval.String("sub-0")}))
	vs.Set("aws_subnet.s[2]", eval.Object(map[string]eval.Value{"id": eval.String("sub-2")}))

	scope := vs.ScopeFor(ex.ByAddr["aws_vpc.main"])
	root, _ := scope.Lookup("aws_subnet")
	group, err := root.GetAttr("s")
	if err != nil || group.Kind() != eval.KindList {
		t.Fatalf("subnet group = %v, %v", group, err)
	}
	list := group.AsList()
	if len(list) != 3 {
		t.Fatalf("list len = %d", len(list))
	}
	if id, _ := list[0].GetAttr("id"); id.AsString() != "sub-0" {
		t.Errorf("s[0] = %v", list[0])
	}
	// The unwritten middle element is unknown, not missing.
	if !list[1].IsUnknown() {
		t.Errorf("s[1] = %v, want unknown", list[1])
	}
	if id, _ := list[2].GetAttr("id"); id.AsString() != "sub-2" {
		t.Errorf("s[2] = %v", list[2])
	}
}

func TestValueStoreForEachGroupAssembly(t *testing.T) {
	ex := expandForValues(t, valuesConfig)
	vs := NewValueStore(ex)
	vs.Set(`aws_storage_bucket.kv["a"]`, eval.Object(map[string]eval.Value{"id": eval.String("bkt-a")}))

	scope := vs.ScopeFor(ex.ByAddr["aws_vpc.main"])
	root, _ := scope.Lookup("aws_storage_bucket")
	group, err := root.GetAttr("kv")
	if err != nil || group.Kind() != eval.KindObject {
		t.Fatalf("kv group = %v, %v", group, err)
	}
	a, err := group.Index(eval.String("a"))
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := a.GetAttr("id"); id.AsString() != "bkt-a" {
		t.Errorf("kv[a] = %v", a)
	}
	b, _ := group.Index(eval.String("b"))
	if !b.IsUnknown() {
		t.Errorf("kv[b] = %v, want unknown", b)
	}
}

func TestValueStoreDataRoot(t *testing.T) {
	ex := expandForValues(t, valuesConfig)
	vs := NewValueStore(ex)
	vs.Set("data.aws_region.current", eval.Object(map[string]eval.Value{"name": eval.String("us-east-1")}))
	scope := vs.ScopeFor(ex.ByAddr["aws_vpc.main"])
	data, ok := scope.Lookup("data")
	if !ok {
		t.Fatal("data root missing")
	}
	region, err := data.GetAttr("aws_region")
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := region.GetAttr("current")
	if name, _ := cur.GetAttr("name"); name.AsString() != "us-east-1" {
		t.Errorf("data value = %v", cur)
	}
}

func TestValueStoreSetUnindexedAddrIsSafe(t *testing.T) {
	// Destroy plans use an empty store and Set addresses with no
	// configuration behind them; that must not panic or corrupt anything.
	vs := NewEmptyValueStore()
	vs.Set("aws_vpc.ghost", eval.Object(map[string]eval.Value{"id": eval.String("x")}))
	if v, ok := vs.Get("aws_vpc.ghost"); !ok || v.IsUnknown() {
		t.Fatalf("get = %v, %v", v, ok)
	}
}
