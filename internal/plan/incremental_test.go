package plan

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/state"
)

// encodePlan serializes everything plan consumers can observe — changes with
// full attribute sets, the execution graph, and the summary — so tests can
// assert byte-identity between plans produced by different strategies
// (sequential vs parallel, full vs cached).
func encodePlan(p *Plan) string {
	var b strings.Builder
	addrs := make([]string, 0, len(p.Changes))
	for a := range p.Changes {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	attrLine := func(m map[string]eval.Value) string {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		var sb strings.Builder
		for _, n := range names {
			fmt.Fprintf(&sb, " %s=%s", n, m[n].String())
		}
		return sb.String()
	}
	for _, a := range addrs {
		ch := p.Changes[a]
		fmt.Fprintf(&b, "%s %s type=%s region=%s id=%s\n", a, ch.Action, ch.Type, ch.Region, ch.ID)
		fmt.Fprintf(&b, "  before:%s\n  after:%s\n", attrLine(ch.Before), attrLine(ch.After))
		fmt.Fprintf(&b, "  changed=%v forced=%v deps=%v\n", ch.ChangedAttrs, ch.ForcedBy, ch.Deps)
	}
	for _, n := range p.Graph.Nodes() {
		deps := p.Graph.Dependencies(n)
		sort.Strings(deps)
		fmt.Fprintf(&b, "g %s <- %v\n", n, deps)
	}
	b.WriteString(p.Summary())
	return b.String()
}

// TestParallelPlanDeterminism: the partitioned parallel evaluator must
// produce byte-identical plans for every worker count.
func TestParallelPlanDeterminism(t *testing.T) {
	ex := expandSrc(t, webConfig)
	prior := stateFromPlanAssumingIDs(t, ex)
	// Perturb one resource so the plan is not all-noop.
	prior.Get("aws_vpc.main").Attrs["name"] = eval.String("drifted")

	base := encodePlan(computeOK(t, ex, prior, Options{Concurrency: 1}))
	for _, workers := range []int{2, 4, 16, 64} {
		got := encodePlan(computeOK(t, ex, prior, Options{Concurrency: workers}))
		if got != base {
			t.Fatalf("concurrency %d produced a different plan:\n--- c=1\n%s\n--- c=%d\n%s",
				workers, base, workers, got)
		}
	}
}

func TestReplanCacheCleanReplay(t *testing.T) {
	ex := expandSrc(t, webConfig)
	prior := stateFromPlanAssumingIDs(t, ex)
	cache := NewReplanCache()

	p1 := computeOK(t, ex, prior, Options{Cache: cache})
	if st := cache.LastStats(); st.Invalidation != "cold" {
		t.Fatalf("first plan invalidation = %q, want cold", st.Invalidation)
	}
	if p1.EvaluatedInstances == 0 {
		t.Fatal("cold plan evaluated nothing")
	}

	p2 := computeOK(t, ex, prior, Options{Cache: cache})
	if st := cache.LastStats(); st.Invalidation != "clean" {
		t.Fatalf("second plan invalidation = %q, want clean", st.Invalidation)
	}
	if p2.EvaluatedInstances != 0 {
		t.Fatalf("clean replan evaluated %d instances, want 0", p2.EvaluatedInstances)
	}
	full := computeOK(t, ex, prior, Options{})
	if encodePlan(p2) != encodePlan(full) {
		t.Fatalf("replayed plan differs from full plan:\n--- cached\n%s\n--- full\n%s",
			encodePlan(p2), encodePlan(full))
	}
}

func TestReplanCacheEditDirtiesOnlySubtree(t *testing.T) {
	ex := expandSrc(t, webConfig)
	prior := stateFromPlanAssumingIDs(t, ex)
	cache := NewReplanCache()
	computeOK(t, ex, prior, Options{Cache: cache})

	// Edit the NIC declaration: dirties nic and its dependent vm, but not
	// the vpc/subnet upstream or the data source.
	edited := strings.Replace(webConfig, `name      = "nic"`, `name      = "nic2"`, 1)
	ex2 := expandSrc(t, edited)

	cached := computeOK(t, ex2, prior, Options{Cache: cache})
	full := computeOK(t, ex2, prior, Options{})
	if encodePlan(cached) != encodePlan(full) {
		t.Fatalf("cached edit plan differs from full plan:\n--- cached\n%s\n--- full\n%s",
			encodePlan(cached), encodePlan(full))
	}
	st := cache.LastStats()
	if st.Invalidation != "config" {
		t.Errorf("invalidation = %q, want config", st.Invalidation)
	}
	// Only aws_network_interface.nic and aws_virtual_machine.web re-evaluate.
	if cached.EvaluatedInstances != 2 {
		t.Errorf("evaluated %d instances, want 2 (nic + vm)", cached.EvaluatedInstances)
	}
	if full.EvaluatedInstances <= cached.EvaluatedInstances {
		t.Errorf("full evaluated %d, cached %d: no savings", full.EvaluatedInstances, cached.EvaluatedInstances)
	}
}

func TestReplanCacheStateMoveDirtiesOnlySubtree(t *testing.T) {
	ex := expandSrc(t, webConfig)
	prior := stateFromPlanAssumingIDs(t, ex)
	cache := NewReplanCache()
	computeOK(t, ex, prior, Options{Cache: cache})

	// A commit elsewhere moved the serial and changed one address (as an
	// apply or drift reconcile would): only that subtree re-plans.
	moved := prior.Clone()
	moved.Serial++
	moved.Get("aws_subnet.s[1]").Attrs["cidr_block"] = eval.String("10.9.9.0/24")

	cached := computeOK(t, ex, moved, Options{Cache: cache})
	full := computeOK(t, ex, moved, Options{})
	if encodePlan(cached) != encodePlan(full) {
		t.Fatalf("cached state-move plan differs from full plan:\n--- cached\n%s\n--- full\n%s",
			encodePlan(cached), encodePlan(full))
	}
	st := cache.LastStats()
	if st.Invalidation != "state" {
		t.Errorf("invalidation = %q, want state", st.Invalidation)
	}
	if st.DirtyState != 1 {
		t.Errorf("dirty state seeds = %d, want 1", st.DirtyState)
	}
	if cached.EvaluatedInstances >= full.EvaluatedInstances {
		t.Errorf("cached evaluated %d >= full %d", cached.EvaluatedInstances, full.EvaluatedInstances)
	}
}

func TestReplanCacheComposesWithTargetScope(t *testing.T) {
	ex := expandSrc(t, webConfig)
	prior := stateFromPlanAssumingIDs(t, ex)
	cache := NewReplanCache()
	computeOK(t, ex, prior, Options{Cache: cache})

	// Edit two independent decls, then target only one of them: the cached
	// targeted plan must match the uncached targeted plan exactly.
	edited := strings.Replace(webConfig, `name       = "main"`, `name       = "main2"`, 1)
	edited = strings.Replace(edited, `name    = "web"`, `name    = "web2"`, 1)
	ex2 := expandSrc(t, edited)

	target := []string{"aws_virtual_machine.web"}
	cached := computeOK(t, ex2, prior, Options{Cache: cache, ImpactScope: target})
	full := computeOK(t, ex2, prior, Options{ImpactScope: target})
	if encodePlan(cached) != encodePlan(full) {
		t.Fatalf("cached targeted plan differs:\n--- cached\n%s\n--- full\n%s",
			encodePlan(cached), encodePlan(full))
	}
	if got := cached.Changes["aws_vpc.main"]; got != nil && got.Action != ActionNoop {
		t.Errorf("out-of-target vpc planned as %s", got.Action)
	}

	// After the targeted plan, a full cached plan must still see the vpc
	// edit (the skipped decl was not wrongly committed as clean).
	cachedFull := computeOK(t, ex2, prior, Options{Cache: cache})
	uncachedFull := computeOK(t, ex2, prior, Options{})
	if encodePlan(cachedFull) != encodePlan(uncachedFull) {
		t.Fatalf("post-target cached full plan differs:\n--- cached\n%s\n--- full\n%s",
			encodePlan(cachedFull), encodePlan(uncachedFull))
	}
	if cachedFull.Changes["aws_vpc.main"].Action != ActionUpdate {
		t.Errorf("vpc edit lost after targeted plan: %s", cachedFull.Changes["aws_vpc.main"].Action)
	}
}

func TestReplanCacheVariableEditDirtiesReaders(t *testing.T) {
	src := `
variable "vm_name" { default = "web" }

resource "aws_vpc" "main" {
  name       = "main"
  cidr_block = "10.0.0.0/16"
}

resource "aws_virtual_machine" "web" {
  name = var.vm_name
}
`
	exA := expandSrcVars(t, src, map[string]eval.Value{"vm_name": eval.String("web")})
	prior := state.New()
	cache := NewReplanCache()
	computeOK(t, exA, prior, Options{Cache: cache})

	exB := expandSrcVars(t, src, map[string]eval.Value{"vm_name": eval.String("web2")})
	cached := computeOK(t, exB, prior, Options{Cache: cache})
	full := computeOK(t, exB, prior, Options{})
	if encodePlan(cached) != encodePlan(full) {
		t.Fatalf("variable-edit cached plan differs from full:\n--- cached\n%s\n--- full\n%s",
			encodePlan(cached), encodePlan(full))
	}
	// Only the decl reading the variable re-evaluates.
	if cached.EvaluatedInstances != 1 {
		t.Errorf("evaluated %d instances, want 1 (vm only)", cached.EvaluatedInstances)
	}
}

func TestReplanCacheExplicitInvalidation(t *testing.T) {
	ex := expandSrc(t, webConfig)
	prior := stateFromPlanAssumingIDs(t, ex)
	cache := NewReplanCache()
	computeOK(t, ex, prior, Options{Cache: cache})

	cache.InvalidateAddrs("aws_subnet.s")
	p := computeOK(t, ex, prior, Options{Cache: cache})
	// subnet + dependents (nic, vm) re-evaluate: 2 subnet insts + nic + vm.
	if p.EvaluatedInstances != 4 {
		t.Errorf("evaluated %d instances after addr invalidation, want 4", p.EvaluatedInstances)
	}

	cache.InvalidateAll()
	p2 := computeOK(t, ex, prior, Options{Cache: cache})
	if st := cache.LastStats(); st.Invalidation != "cold" {
		t.Errorf("invalidation after InvalidateAll = %q, want cold", st.Invalidation)
	}
	if p2.EvaluatedInstances != 5 {
		t.Errorf("evaluated %d instances after full invalidation, want 5", p2.EvaluatedInstances)
	}
}

func expandSrcVars(t *testing.T, src string, vars map[string]eval.Value) *config.Expansion {
	t.Helper()
	m, diags := config.Load(map[string]string{"main.ccl": src})
	if diags.HasErrors() {
		t.Fatalf("load: %s", diags.Error())
	}
	ex, diags := config.Expand(m, vars, nil)
	if diags.HasErrors() {
		t.Fatalf("expand: %s", diags.Error())
	}
	return ex
}
