package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"serial":1}`),
		[]byte("x"),
		bytes.Repeat([]byte("abc"), 1000),
	}
	var log []byte
	for _, p := range payloads {
		log = append(log, Encode(p)...)
	}
	var got [][]byte
	durable := Scan(log, func(p []byte) bool {
		cp := append([]byte(nil), p...)
		got = append(got, cp)
		return true
	})
	if durable != len(log) {
		t.Fatalf("durable = %d, want %d", durable, len(log))
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("frame %d: got %q want %q", i, got[i], payloads[i])
		}
	}
}

func TestTornTailDropped(t *testing.T) {
	good := Encode([]byte("intact"))
	torn := Encode([]byte("this frame will be cut"))
	for cut := 1; cut < len(torn); cut++ {
		log := append(append([]byte(nil), good...), torn[:cut]...)
		n := 0
		durable := Scan(log, func([]byte) bool { n++; return true })
		if n != 1 {
			t.Fatalf("cut=%d: decoded %d frames, want 1", cut, n)
		}
		if durable != len(good) {
			t.Fatalf("cut=%d: durable = %d, want %d", cut, durable, len(good))
		}
	}
}

func TestCRCCorruptionStopsReplay(t *testing.T) {
	a := Encode([]byte("first"))
	b := Encode([]byte("second"))
	log := append(append([]byte(nil), a...), b...)
	// Flip one payload byte of the second frame.
	log[len(a)+HeaderSize] ^= 0xff
	n := 0
	durable := Scan(log, func([]byte) bool { n++; return true })
	if n != 1 || durable != len(a) {
		t.Fatalf("got %d frames, durable %d; want 1 frame, durable %d", n, durable, len(a))
	}
}

func TestLengthOverflowRejected(t *testing.T) {
	// A header claiming a payload far past the buffer (and past MaxFrameSize)
	// must be treated as torn, not allocated.
	hdr := make([]byte, HeaderSize)
	binary.LittleEndian.PutUint32(hdr, 0xffffffff)
	if _, _, ok := Next(hdr, 0); ok {
		t.Fatal("oversized length accepted")
	}
	if _, _, ok := Next(hdr, -4); ok {
		t.Fatal("negative offset accepted")
	}
	// Zero-length frames are invalid too.
	binary.LittleEndian.PutUint32(hdr, 0)
	if _, _, ok := Next(hdr, 0); ok {
		t.Fatal("zero length accepted")
	}
}

func TestScanEarlyStop(t *testing.T) {
	a := Encode([]byte("a"))
	b := Encode([]byte("b"))
	log := append(append([]byte(nil), a...), b...)
	n := 0
	durable := Scan(log, func([]byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("decoded %d frames, want 1 (early stop)", n)
	}
	if durable != len(a) {
		t.Fatalf("durable = %d, want %d", durable, len(a))
	}
}
