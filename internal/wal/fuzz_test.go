package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzScan feeds arbitrary bytes to the frame parser. Invariants: never
// panic, never allocate past MaxFrameSize, durable offset always lands on a
// frame boundary within the input, and every delivered payload re-encodes to
// exactly the bytes it was decoded from (CRC-intact frames only).
func FuzzScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode([]byte(`{"op":"begin","addr":"aws_vpc.a"}`)))
	f.Add(append(Encode([]byte("a")), Encode([]byte("bb"))...))
	// Torn tail seed.
	f.Add(append(Encode([]byte("good")), Encode([]byte("cut-here"))[:5]...))
	// Oversized length prefix seed.
	huge := make([]byte, HeaderSize)
	binary.LittleEndian.PutUint32(huge, 0xfffffff0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var frames [][]byte
		durable := Scan(data, func(p []byte) bool {
			frames = append(frames, append([]byte(nil), p...))
			return true
		})
		if durable < 0 || durable > len(data) {
			t.Fatalf("durable offset %d outside [0,%d]", durable, len(data))
		}
		// Re-encoding the decoded frames must reproduce the durable prefix
		// byte-for-byte: the parser accepted exactly what Encode produces.
		var rebuilt []byte
		for _, p := range frames {
			rebuilt = append(rebuilt, Encode(p)...)
		}
		if !bytes.Equal(rebuilt, data[:durable]) {
			t.Fatalf("durable prefix does not round-trip: %d decoded frames, prefix %d bytes", len(frames), durable)
		}
		// The byte right after the durable prefix must not itself start an
		// intact frame (otherwise Scan stopped early).
		if _, _, ok := Next(data, durable); ok {
			t.Fatalf("scan stopped at %d but an intact frame follows", durable)
		}
	})
}
