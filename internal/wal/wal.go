// Package wal implements the CRC-framed append-only record format shared by
// the golden-state WAL engine (internal/statedb) and the apply journal
// (internal/apply). Each record is framed as
//
//	[uint32 payload length][uint32 CRC-32 (IEEE) of payload][payload]
//
// with little-endian headers. The format is deliberately dumb: no file
// header, no compression, no record type — callers own the payload encoding
// (both current users store JSON). What the package does own is the crash
// contract: a frame is either durable and intact or it is dropped at read
// time, so a write torn by a crash (short header, short payload, corrupted
// bytes) can never surface a partial record to replay logic.
package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// HeaderSize is the fixed per-frame header length in bytes.
const HeaderSize = 8

// MaxFrameSize bounds a single frame's payload. Anything larger at decode
// time is treated as corruption: a torn or overwritten length prefix must not
// make replay attempt a multi-gigabyte allocation.
const MaxFrameSize = 64 << 20

// Encode frames one payload for appending to a log.
func Encode(payload []byte) []byte {
	frame := make([]byte, HeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[HeaderSize:], payload)
	return frame
}

// Next decodes the frame starting at off in data. It returns the payload and
// the offset just past the frame. ok is false for a torn or corrupt frame:
// short header, zero/oversized/overflowing length, short payload, or CRC
// mismatch — the caller must stop replay there and truncate to off.
func Next(data []byte, off int) (payload []byte, next int, ok bool) {
	if off < 0 || off+HeaderSize > len(data) {
		return nil, off, false
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n <= 0 || n > MaxFrameSize || off+HeaderSize+n > len(data) {
		return nil, off, false
	}
	payload = data[off+HeaderSize : off+HeaderSize+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, off, false
	}
	return payload, off + HeaderSize + n, true
}

// Scan walks every intact frame from the start of data, invoking fn with
// each payload, and returns the byte offset of the end of the last intact
// frame — the durable prefix. A caller recovering a log truncates the file
// to the returned offset to drop the torn tail. fn returning false stops the
// scan early (the returned offset still covers the frame just delivered).
func Scan(data []byte, fn func(payload []byte) bool) (durable int) {
	off := 0
	for {
		payload, next, ok := Next(data, off)
		if !ok {
			return off
		}
		cont := fn(payload)
		off = next
		if !cont {
			return off
		}
	}
}
