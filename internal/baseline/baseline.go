// Package baseline implements the behaviour of today's IaC engines as the
// paper describes it (§2.2, §3.3, §3.4), as the comparison point for every
// experiment:
//
//   - every plan re-queries all cloud-level resource state and recomputes
//     the deployment plan from the ground up — even for a single-resource
//     delta ("expensive queries on all cloud-level resource state and
//     recomputation of the deployment plan from the ground up");
//   - the apply walk is a best-effort FIFO graph walk with no cost model;
//   - a single lock serializes the entire infrastructure for modifications
//     at any scale;
//   - validation stops at the IaC level (structure and types); cloud-level
//     constraints surface only as deploy-time errors.
//
// The engine reuses the same planner/applier machinery in its baseline
// configuration, so measured differences come from algorithmic choices, not
// implementation quality.
package baseline

import (
	"context"
	"fmt"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/hcl"
	"cloudless/internal/plan"
	"cloudless/internal/schema"
	"cloudless/internal/state"
	"cloudless/internal/statedb"
	"cloudless/internal/validate"
)

// Engine is a Terraform-like IaC engine.
type Engine struct {
	Cloud cloud.Interface
	// DB guards the golden state behind a single global lock.
	DB *statedb.DB
	// Concurrency matches the classic default of 10.
	Concurrency int
}

// New builds a baseline engine over a cloud and initial state, on the
// default memory storage backend.
func New(cl cloud.Interface, initial *state.State) *Engine {
	return &Engine{
		Cloud:       cl,
		DB:          statedb.Open(initial, statedb.GlobalLock),
		Concurrency: 10,
	}
}

// NewWithEngine builds a baseline engine over an explicit storage backend.
// The global lock is kept regardless of backend — the baseline's defining
// §3.4 behaviour is the whole-infrastructure lock, not the storage layout —
// so backend comparisons isolate storage effects from locking effects.
func NewWithEngine(cl cloud.Interface, eng statedb.Engine) *Engine {
	return &Engine{
		Cloud:       cl,
		DB:          statedb.OpenEngine(eng, statedb.GlobalLock),
		Concurrency: 10,
	}
}

// Validate performs IaC-level validation only: schema structure and value
// types, without the cloud-level knowledge base. (An empty knowledge base
// models "the IaC-level compiler is not fully aware of the cloud-level
// expectations".)
func (e *Engine) Validate(ex *config.Expansion) *validate.Result {
	empty := schema.NewKnowledgeBase()
	full := validate.Validate(ex, empty)
	// Even semantic reference typing is beyond today's engines: drop
	// findings from the semantic type system, keeping only structural ones.
	out := &validate.Result{}
	for _, f := range full.Findings {
		if len(f.RuleID) >= 7 && f.RuleID[:7] == "schema/" {
			out.Findings = append(out.Findings, f)
		}
	}
	return out
}

// Plan computes a full plan: complete refresh of every state entry, full
// re-evaluation of every instance.
func (e *Engine) Plan(ctx context.Context, ex *config.Expansion) (*plan.Plan, hcl.Diagnostics) {
	return plan.Compute(ctx, ex, e.DB.Snapshot(), plan.Options{
		Refresh: true,
		Cloud:   e.Cloud,
	})
}

// Apply executes a plan under the global lock with the FIFO scheduler.
func (e *Engine) Apply(ctx context.Context, p *plan.Plan) (*apply.Result, error) {
	txn := e.DB.Begin("baseline apply")
	// The global lock covers everything; the address list is irrelevant in
	// GlobalLock mode but must be non-empty.
	if err := txn.Lock(ctx, "<all>"); err != nil {
		return nil, fmt.Errorf("baseline: acquire global lock: %w", err)
	}
	defer txn.Abort()

	res := apply.Apply(ctx, e.Cloud, p, apply.Options{
		Concurrency: e.Concurrency,
		Scheduler:   apply.FIFOScheduler,
		Principal:   "baseline",
	})
	// Publish the resulting state wholesale.
	for _, addr := range res.State.Addrs() {
		if err := txn.Put(res.State.Get(addr)); err != nil {
			return res, err
		}
	}
	for _, addr := range e.DB.Snapshot().Addrs() {
		if res.State.Get(addr) == nil {
			if err := txn.Delete(addr); err != nil {
				return res, err
			}
		}
	}
	if _, err := txn.Commit(); err != nil {
		return res, err
	}
	return res, res.Err()
}

// PlanAndApply is the end-to-end baseline cycle.
func (e *Engine) PlanAndApply(ctx context.Context, ex *config.Expansion) (*apply.Result, *plan.Plan, error) {
	p, diags := e.Plan(ctx, ex)
	if diags.HasErrors() {
		return nil, p, diags
	}
	res, err := e.Apply(ctx, p)
	return res, p, err
}
