package baseline

import (
	"context"
	"testing"

	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/state"
	"cloudless/internal/workload"
)

func newSim() *cloud.Sim {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	return cloud.NewSim(opts)
}

func expandFiles(t *testing.T, files map[string]string) *config.Expansion {
	t.Helper()
	m, diags := config.Load(files)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	return ex
}

func TestBaselineEndToEnd(t *testing.T) {
	sim := newSim()
	eng := New(sim, state.New())
	ex := expandFiles(t, workload.WebTier("web", 2, 4))

	res, p, err := eng.PlanAndApply(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	if p.Creates == 0 || res.Applied != p.Creates {
		t.Errorf("creates=%d applied=%d", p.Creates, res.Applied)
	}
	// The golden state was published.
	if eng.DB.Snapshot().Len() != p.Creates {
		t.Errorf("db state len = %d", eng.DB.Snapshot().Len())
	}
}

// TestBaselineAlwaysRefreshesEverything captures the §3.3 criticism: even a
// one-resource delta triggers a full state refresh.
func TestBaselineAlwaysRefreshesEverything(t *testing.T) {
	sim := newSim()
	eng := New(sim, state.New())
	ex := expandFiles(t, workload.WebTier("web", 2, 6))
	if _, _, err := eng.PlanAndApply(context.Background(), ex); err != nil {
		t.Fatal(err)
	}
	total := eng.DB.Snapshot().Len()

	// Replan with zero config changes: the baseline still reads every
	// resource from the cloud.
	p2, diags := eng.Plan(context.Background(), ex)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	if p2.RefreshReads != total {
		t.Errorf("refresh reads = %d, want %d (full refresh)", p2.RefreshReads, total)
	}
	if p2.EvaluatedInstances != len(ex.Instances) {
		t.Errorf("evaluated = %d, want all %d", p2.EvaluatedInstances, len(ex.Instances))
	}
	if p2.PendingCount() != 0 {
		t.Errorf("no-change plan = %s", p2.Summary())
	}
}

// TestBaselineValidationMissesCloudConstraints: the region-mismatch config
// passes baseline validation and only fails at deploy time — the exact
// failure mode §3.2 wants eliminated.
func TestBaselineValidationMissesCloudConstraints(t *testing.T) {
	src := map[string]string{"main.ccl": `
resource "azure_resource_group" "rg" {
  name     = "rg"
  location = "westus"
}
resource "azure_virtual_network" "v" {
  name           = "v"
  location       = "westus"
  resource_group = azure_resource_group.rg.id
  address_space  = ["10.0.0.0/16"]
}
resource "azure_subnet" "s" {
  virtual_network_id = azure_virtual_network.v.id
  address_prefix     = "10.0.1.0/24"
  location           = "westus"
}
resource "azure_network_interface" "nic" {
  name      = "nic"
  location  = "westus"
  subnet_id = azure_subnet.s.id
}
resource "azure_virtual_machine" "vm" {
  name     = "vm"
  location = "eastus"
  nic_ids  = [azure_network_interface.nic.id]
}
`}
	ex := expandFiles(t, src)
	sim := newSim()
	eng := New(sim, state.New())

	// Baseline validation: clean.
	if res := eng.Validate(ex); res.HasErrors() {
		t.Fatalf("baseline validation should miss the cloud constraint: %+v", res.Errors())
	}
	// Deploy: fails at the cloud with the misleading message.
	res, _, err := eng.PlanAndApply(context.Background(), ex)
	if err == nil {
		t.Fatal("deploy should fail")
	}
	found := false
	for _, e := range res.Errors {
		if e != nil {
			found = true
		}
	}
	if !found {
		t.Error("no per-resource error recorded")
	}
}

func TestBaselineGlobalLockBlocksConcurrentApply(t *testing.T) {
	sim := newSim()
	eng := New(sim, state.New())
	txn := eng.DB.Begin("other team")
	if err := txn.Lock(context.Background(), "anything"); err != nil {
		t.Fatal(err)
	}
	// With the global lock held, TryLock for a would-be apply fails.
	probe := eng.DB.Begin("probe")
	if probe.TryLock("something-else") {
		t.Fatal("global lock did not serialize")
	}
	txn.Abort()
	probe.Abort()
}
