package hcl

import (
	"strconv"
	"strings"
)

// Parse parses CCL source into a File. It always returns a non-nil file so
// that callers can surface partial results next to diagnostics.
func Parse(filename, src string) (*File, Diagnostics) {
	toks, diags := Lex(filename, src)
	p := &parser{toks: toks, filename: filename, diags: diags}
	body := p.parseBody(TokenEOF)
	return &File{Filename: filename, Body: body}, p.diags
}

// ParseExpression parses a standalone expression, used by tools that accept
// expression snippets (e.g. policy conditions).
func ParseExpression(filename, src string) (Expression, Diagnostics) {
	toks, diags := Lex(filename, src)
	p := &parser{toks: toks, filename: filename, diags: diags}
	p.skipNewlines()
	expr := p.parseExpr()
	p.skipNewlines()
	if p.peek().Type != TokenEOF {
		p.errorf(p.peek().Range, "extra characters after expression")
	}
	return expr, p.diags
}

type parser struct {
	toks     []Token
	pos      int
	filename string
	diags    Diagnostics
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peekN(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Type != TokenEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(tt TokenType) (Token, bool) {
	if p.peek().Type == tt {
		return p.next(), true
	}
	return Token{}, false
}

func (p *parser) expect(tt TokenType, context string) (Token, bool) {
	if t, ok := p.accept(tt); ok {
		return t, true
	}
	got := p.peek()
	p.errorf(got.Range, "expected %s %s, found %s", tt, context, got.Type)
	return got, false
}

func (p *parser) errorf(rng Range, format string, args ...any) {
	p.diags = p.diags.Append(Errorf(rng, format, args...))
}

func (p *parser) skipNewlines() {
	for p.peek().Type == TokenNewline {
		p.next()
	}
}

// recoverTo skips tokens until one of the given types (or EOF) is at the
// cursor, so a single syntax error does not cascade.
func (p *parser) recoverTo(types ...TokenType) {
	for {
		t := p.peek()
		if t.Type == TokenEOF {
			return
		}
		for _, tt := range types {
			if t.Type == tt {
				return
			}
		}
		p.next()
	}
}

// parseBody parses attributes and blocks until the terminator token.
func (p *parser) parseBody(end TokenType) *Body {
	body := &Body{}
	start := p.peek().Range
	for {
		p.skipNewlines()
		t := p.peek()
		if t.Type == end || t.Type == TokenEOF {
			if t.Type != end {
				p.errorf(t.Range, "unexpected %s; expected %s", t.Type, end)
			}
			body.Rng = RangeBetween(start, t.Range)
			return body
		}
		if t.Type != TokenIdent {
			p.errorf(t.Range, "expected attribute name or block type, found %s", t.Type)
			p.recoverTo(TokenNewline, end)
			continue
		}
		ident := p.next()
		switch p.peek().Type {
		case TokenAssign:
			p.next()
			expr := p.parseExpr()
			body.Attributes = append(body.Attributes, &Attribute{
				Name:      ident.Text,
				Expr:      expr,
				NameRange: ident.Range,
				Rng:       RangeBetween(ident.Range, expr.Range()),
			})
			if nt := p.peek(); nt.Type != TokenNewline && nt.Type != end && nt.Type != TokenEOF {
				p.errorf(nt.Range, "expected a newline after attribute %q, found %s", ident.Text, nt.Type)
				p.recoverTo(TokenNewline, end)
			}
		case TokenString, TokenIdent, TokenLBrace:
			blk := p.parseBlockRest(ident)
			if blk != nil {
				body.Blocks = append(body.Blocks, blk)
			}
		default:
			p.errorf(p.peek().Range,
				"expected %q (to define attribute %q) or a block body, found %s",
				"=", ident.Text, p.peek().Type)
			p.recoverTo(TokenNewline, end)
		}
	}
}

// parseBlockRest parses the labels and body of a block whose type keyword
// has already been consumed.
func (p *parser) parseBlockRest(typeTok Token) *Block {
	blk := &Block{Type: typeTok.Text, TypeRange: typeTok.Range}
	for {
		switch t := p.peek(); t.Type {
		case TokenString:
			p.next()
			label, ok := unquoteSimple(t.Text)
			if !ok {
				p.errorf(t.Range, "block label must be a plain quoted string without interpolation")
			}
			blk.Labels = append(blk.Labels, label)
			blk.LabelRanges = append(blk.LabelRanges, t.Range)
		case TokenIdent:
			p.next()
			blk.Labels = append(blk.Labels, t.Text)
			blk.LabelRanges = append(blk.LabelRanges, t.Range)
		case TokenLBrace:
			p.next()
			if nt := p.peek(); nt.Type != TokenNewline && nt.Type != TokenRBrace {
				// Single-line block bodies are accepted: attr parsing handles
				// the missing newline after "{" naturally.
				_ = nt
			}
			blk.Body = p.parseBody(TokenRBrace)
			endTok, _ := p.expect(TokenRBrace, "to close block")
			blk.Rng = RangeBetween(typeTok.Range, endTok.Range)
			return blk
		default:
			p.errorf(t.Range, "expected block label or %q for block %q, found %s",
				"{", blk.Type, t.Type)
			p.recoverTo(TokenNewline, TokenRBrace)
			return nil
		}
	}
}

// --- Expressions ---------------------------------------------------------

func (p *parser) parseExpr() Expression {
	return p.parseConditional()
}

func (p *parser) parseConditional() Expression {
	cond := p.parseBinary(0)
	if _, ok := p.accept(TokenQuestion); !ok {
		return cond
	}
	trueExpr := p.parseExpr()
	p.expect(TokenColon, "in conditional expression")
	falseExpr := p.parseExpr()
	return &ConditionalExpr{
		Cond: cond, True: trueExpr, False: falseExpr,
		Rng: RangeBetween(cond.Range(), falseExpr.Range()),
	}
}

type binaryLevel struct {
	toks map[TokenType]BinaryOp
}

// Precedence levels from loosest to tightest.
var binaryLevels = []binaryLevel{
	{toks: map[TokenType]BinaryOp{TokenOr: OpOr}},
	{toks: map[TokenType]BinaryOp{TokenAnd: OpAnd}},
	{toks: map[TokenType]BinaryOp{TokenEq: OpEq, TokenNotEq: OpNotEq}},
	{toks: map[TokenType]BinaryOp{TokenLT: OpLT, TokenGT: OpGT, TokenLTE: OpLTE, TokenGTE: OpGTE}},
	{toks: map[TokenType]BinaryOp{TokenPlus: OpAdd, TokenMinus: OpSub}},
	{toks: map[TokenType]BinaryOp{TokenStar: OpMul, TokenSlash: OpDiv, TokenPercent: OpMod}},
}

func (p *parser) parseBinary(level int) Expression {
	if level >= len(binaryLevels) {
		return p.parseUnary()
	}
	lhs := p.parseBinary(level + 1)
	for {
		op, ok := binaryLevels[level].toks[p.peek().Type]
		if !ok {
			return lhs
		}
		p.next()
		rhs := p.parseBinary(level + 1)
		lhs = &BinaryExpr{Op: op, LHS: lhs, RHS: rhs, Rng: RangeBetween(lhs.Range(), rhs.Range())}
	}
}

func (p *parser) parseUnary() Expression {
	switch t := p.peek(); t.Type {
	case TokenMinus:
		p.next()
		op := p.parseUnary()
		return &UnaryExpr{Op: OpNegate, Operand: op, Rng: RangeBetween(t.Range, op.Range())}
	case TokenBang:
		p.next()
		op := p.parseUnary()
		return &UnaryExpr{Op: OpNot, Operand: op, Rng: RangeBetween(t.Range, op.Range())}
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary expression followed by any number of
// attribute accesses, index operations, and splats.
func (p *parser) parsePostfix() Expression {
	expr := p.parsePrimary()
	for {
		switch p.peek().Type {
		case TokenDot:
			p.next()
			nameTok := p.peek()
			switch nameTok.Type {
			case TokenIdent:
				p.next()
				expr = extendTraversal(expr, TraverseAttr{Name: nameTok.Text}, nameTok.Range)
			case TokenNumber:
				p.next()
				idx, err := strconv.Atoi(nameTok.Text)
				if err != nil {
					p.errorf(nameTok.Range, "invalid index %q after %q", nameTok.Text, ".")
					continue
				}
				expr = extendTraversal(expr, TraverseIndex{Key: idx}, nameTok.Range)
			case TokenStar:
				p.next()
				expr = p.parseSplatRest(expr, nameTok.Range)
			default:
				p.errorf(nameTok.Range, "expected attribute name after %q, found %s", ".", nameTok.Type)
				return expr
			}
		case TokenLBracket:
			open := p.next()
			if star, ok := p.accept(TokenStar); ok {
				endTok, _ := p.expect(TokenRBracket, "to close splat")
				_ = star
				expr = p.parseSplatRest(expr, RangeBetween(open.Range, endTok.Range))
				continue
			}
			key := p.parseExpr()
			endTok, _ := p.expect(TokenRBracket, "to close index")
			rng := RangeBetween(expr.Range(), endTok.Range)
			// Static keys extend a traversal, keeping the reference analyzable.
			if lit, ok := key.(*LiteralExpr); ok {
				switch v := lit.Val.(type) {
				case string:
					expr = extendTraversal(expr, TraverseIndex{Key: v}, rng)
					continue
				case float64:
					if v == float64(int(v)) {
						expr = extendTraversal(expr, TraverseIndex{Key: int(v)}, rng)
						continue
					}
				}
			}
			expr = &IndexExpr{Collection: expr, Key: key, Rng: rng}
		default:
			return expr
		}
	}
}

// parseSplatRest parses the traversal that follows a [*] or .* splat marker.
func (p *parser) parseSplatRest(source Expression, markerRng Range) Expression {
	splat := &SplatExpr{Source: source, Rng: RangeBetween(source.Range(), markerRng)}
	for {
		if p.peek().Type != TokenDot {
			return splat
		}
		p.next()
		nameTok := p.peek()
		if nameTok.Type != TokenIdent {
			p.errorf(nameTok.Range, "expected attribute name after %q in splat, found %s", ".", nameTok.Type)
			return splat
		}
		p.next()
		splat.Each = append(splat.Each, TraverseAttr{Name: nameTok.Text})
		splat.Rng = RangeBetween(splat.Rng, nameTok.Range)
	}
}

// extendTraversal attaches a step to an expression, preserving pure scope
// traversals (ident chains) as ScopeTraversalExpr for dependency analysis.
func extendTraversal(base Expression, step Traverser, stepRng Range) Expression {
	rng := RangeBetween(base.Range(), stepRng)
	switch b := base.(type) {
	case *ScopeTraversalExpr:
		tr := make(Traversal, len(b.Traversal), len(b.Traversal)+1)
		copy(tr, b.Traversal)
		return &ScopeTraversalExpr{Traversal: append(tr, step), Rng: rng}
	case *RelativeTraversalExpr:
		tr := make(Traversal, len(b.Traversal), len(b.Traversal)+1)
		copy(tr, b.Traversal)
		return &RelativeTraversalExpr{Source: b.Source, Traversal: append(tr, step), Rng: rng}
	default:
		return &RelativeTraversalExpr{Source: base, Traversal: Traversal{step}, Rng: rng}
	}
}

func (p *parser) parsePrimary() Expression {
	t := p.peek()
	switch t.Type {
	case TokenNumber:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.errorf(t.Range, "invalid number literal %q", t.Text)
			f = 0
		}
		return &LiteralExpr{Val: f, Rng: t.Range}
	case TokenString:
		p.next()
		return p.parseTemplateToken(t)
	case TokenHeredoc:
		p.next()
		return p.parseHeredocToken(t)
	case TokenIdent:
		switch t.Text {
		case "true":
			p.next()
			return &LiteralExpr{Val: true, Rng: t.Range}
		case "false":
			p.next()
			return &LiteralExpr{Val: false, Rng: t.Range}
		case "null":
			p.next()
			return &LiteralExpr{Val: nil, Rng: t.Range}
		}
		p.next()
		if p.peek().Type == TokenLParen {
			return p.parseCallRest(t)
		}
		return &ScopeTraversalExpr{
			Traversal: Traversal{TraverseRoot{Name: t.Text}},
			Rng:       t.Range,
		}
	case TokenLParen:
		p.next()
		inner := p.parseExpr()
		p.expect(TokenRParen, "to close parenthesized expression")
		return inner
	case TokenLBracket:
		return p.parseTupleOrForList()
	case TokenLBrace:
		return p.parseObjectOrForObject()
	default:
		p.errorf(t.Range, "expected an expression, found %s", t.Type)
		p.next()
		return &LiteralExpr{Val: nil, Rng: t.Range}
	}
}

func (p *parser) parseCallRest(nameTok Token) Expression {
	open, _ := p.expect(TokenLParen, "to open function call")
	_ = open
	call := &FunctionCallExpr{Name: nameTok.Text, NameRange: nameTok.Range}
	for {
		if endTok, ok := p.accept(TokenRParen); ok {
			call.Rng = RangeBetween(nameTok.Range, endTok.Range)
			return call
		}
		arg := p.parseExpr()
		call.Args = append(call.Args, arg)
		if _, ok := p.accept(TokenEllipsis); ok {
			call.ExpandFinal = true
			endTok, _ := p.expect(TokenRParen, "after expansion argument")
			call.Rng = RangeBetween(nameTok.Range, endTok.Range)
			return call
		}
		if _, ok := p.accept(TokenComma); ok {
			continue
		}
		endTok, ok := p.expect(TokenRParen, "to close function call")
		if !ok {
			p.recoverTo(TokenRParen, TokenNewline)
			p.accept(TokenRParen)
		}
		call.Rng = RangeBetween(nameTok.Range, endTok.Range)
		return call
	}
}

func (p *parser) parseTupleOrForList() Expression {
	open := p.next() // '['
	if t := p.peek(); t.Type == TokenIdent && t.Text == "for" {
		return p.parseForRest(open, TokenRBracket)
	}
	tuple := &TupleExpr{}
	for {
		if endTok, ok := p.accept(TokenRBracket); ok {
			tuple.Rng = RangeBetween(open.Range, endTok.Range)
			return tuple
		}
		item := p.parseExpr()
		tuple.Items = append(tuple.Items, item)
		if _, ok := p.accept(TokenComma); ok {
			continue
		}
		endTok, ok := p.expect(TokenRBracket, "to close list")
		if !ok {
			p.recoverTo(TokenRBracket, TokenNewline)
			p.accept(TokenRBracket)
		}
		tuple.Rng = RangeBetween(open.Range, endTok.Range)
		return tuple
	}
}

func (p *parser) parseObjectOrForObject() Expression {
	open := p.next() // '{'
	p.skipNewlines()
	if t := p.peek(); t.Type == TokenIdent && t.Text == "for" {
		return p.parseForRest(open, TokenRBrace)
	}
	obj := &ObjectExpr{}
	for {
		p.skipNewlines()
		if endTok, ok := p.accept(TokenRBrace); ok {
			obj.Rng = RangeBetween(open.Range, endTok.Range)
			return obj
		}
		var key Expression
		kt := p.peek()
		switch kt.Type {
		case TokenIdent:
			p.next()
			key = &LiteralExpr{Val: kt.Text, Rng: kt.Range}
		case TokenString:
			p.next()
			key = p.parseTemplateToken(kt)
		case TokenLParen:
			p.next()
			key = p.parseExpr()
			p.expect(TokenRParen, "to close computed object key")
		default:
			p.errorf(kt.Range, "expected object key, found %s", kt.Type)
			p.recoverTo(TokenRBrace, TokenNewline)
			continue
		}
		if _, ok := p.accept(TokenAssign); !ok {
			if _, ok := p.accept(TokenColon); !ok {
				p.errorf(p.peek().Range, `expected "=" or ":" after object key`)
				p.recoverTo(TokenRBrace, TokenNewline)
				continue
			}
		}
		val := p.parseExpr()
		obj.Items = append(obj.Items, ObjectItem{Key: key, Value: val})
		if _, ok := p.accept(TokenComma); ok {
			continue
		}
		if p.peek().Type == TokenNewline {
			continue
		}
		endTok, ok := p.expect(TokenRBrace, "to close object")
		if !ok {
			p.recoverTo(TokenRBrace)
			p.accept(TokenRBrace)
		}
		obj.Rng = RangeBetween(open.Range, endTok.Range)
		return obj
	}
}

// parseForRest parses a comprehension after its opening bracket; the "for"
// keyword is at the cursor.
func (p *parser) parseForRest(open Token, end TokenType) Expression {
	p.next() // "for"
	fe := &ForExpr{}
	v1, ok := p.expect(TokenIdent, "as comprehension variable")
	if !ok {
		p.recoverTo(end)
		p.accept(end)
		return &LiteralExpr{Val: nil, Rng: open.Range}
	}
	fe.ValVar = v1.Text
	if _, ok := p.accept(TokenComma); ok {
		v2, _ := p.expect(TokenIdent, "as comprehension value variable")
		fe.KeyVar, fe.ValVar = v1.Text, v2.Text
	}
	inTok := p.peek()
	if inTok.Type != TokenIdent || inTok.Text != "in" {
		p.errorf(inTok.Range, `expected "in" in comprehension, found %s`, inTok.Type)
	} else {
		p.next()
	}
	fe.Coll = p.parseExpr()
	p.expect(TokenColon, "in comprehension")
	first := p.parseExpr()
	if _, ok := p.accept(TokenArrow); ok {
		if end != TokenRBrace {
			p.errorf(p.peek().Range, `"=>" is only valid in object comprehensions`)
		}
		fe.KeyExpr = first
		fe.ValExpr = p.parseExpr()
	} else {
		fe.ValExpr = first
	}
	if t := p.peek(); t.Type == TokenIdent && t.Text == "if" {
		p.next()
		fe.CondExpr = p.parseExpr()
	}
	endTok, ok := p.expect(end, "to close comprehension")
	if !ok {
		p.recoverTo(end)
		p.accept(end)
	}
	fe.Rng = RangeBetween(open.Range, endTok.Range)
	return fe
}

// --- Templates -----------------------------------------------------------

// unquoteSimple unquotes a string token that must not contain interpolation,
// used for block labels.
func unquoteSimple(raw string) (string, bool) {
	if strings.Contains(raw, "${") {
		return strings.Trim(raw, `"`), false
	}
	s, err := unescape(raw[1 : len(raw)-1])
	if err != nil {
		return strings.Trim(raw, `"`), false
	}
	return s, true
}

func unescape(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return b.String(), &Diagnostic{Severity: DiagError, Summary: "trailing backslash in string"}
		}
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case '$':
			b.WriteByte('$')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String(), nil
}

// parseTemplateToken turns a quoted-string token into either a LiteralExpr
// (no interpolation) or a TemplateExpr.
func (p *parser) parseTemplateToken(tok Token) Expression {
	inner := tok.Text[1 : len(tok.Text)-1]
	innerStart := tok.Range.Start
	innerStart.Byte++
	innerStart.Column++
	return p.parseTemplate(inner, innerStart, tok.Range, true)
}

// parseHeredocToken turns a heredoc token into a template expression. The
// heredoc body runs from after the first newline to the start of the line
// holding the closing tag. A trailing newline is preserved.
func (p *parser) parseHeredocToken(tok Token) Expression {
	raw := tok.Text
	nl := strings.IndexByte(raw, '\n')
	if nl < 0 {
		return &LiteralExpr{Val: "", Rng: tok.Range}
	}
	body := raw[nl+1:]
	// Drop the final line (the closing tag).
	lastNL := strings.LastIndexByte(strings.TrimRight(body, "\n \t"), '\n')
	if lastNL < 0 {
		body = ""
	} else {
		body = body[:lastNL+1]
	}
	start := tok.Range.Start
	start.Byte += nl + 1
	start.Line++
	start.Column = 1
	return p.parseTemplate(body, start, tok.Range, false)
}

// parseTemplate splits raw template text into literal and interpolated parts.
// escapes controls whether backslash escapes are processed (quoted strings:
// yes; heredocs: no). start is the source position of raw[0].
func (p *parser) parseTemplate(raw string, start Pos, whole Range, escapes bool) Expression {
	var parts []Expression
	var lit strings.Builder

	// posAt maps a byte index within raw to an absolute source position.
	posAt := func(i int) Pos {
		out := start
		for j := 0; j < i; j++ {
			if raw[j] == '\n' {
				out.Line++
				out.Column = 1
			} else {
				out.Column++
			}
			out.Byte++
		}
		return out
	}

	litStartIdx := 0
	i := 0
	flushLit := func(endIdx int) {
		if lit.Len() == 0 {
			return
		}
		s := lit.String()
		if escapes {
			if un, err := unescape(s); err == nil {
				s = un
			}
		}
		parts = append(parts, &LiteralExpr{
			Val: s,
			Rng: Range{Filename: whole.Filename, Start: posAt(litStartIdx), End: posAt(endIdx)},
		})
		lit.Reset()
	}

	for i < len(raw) {
		if escapes && raw[i] == '\\' && i+1 < len(raw) {
			lit.WriteByte(raw[i])
			lit.WriteByte(raw[i+1])
			i += 2
			continue
		}
		if strings.HasPrefix(raw[i:], "$${") {
			lit.WriteString("${")
			i += 3
			continue
		}
		if strings.HasPrefix(raw[i:], "${") {
			flushLit(i)
			markerStart := i
			i += 2
			exprStart := i
			depth := 1
			for i < len(raw) && depth > 0 {
				switch raw[i] {
				case '{':
					depth++
				case '}':
					depth--
					if depth == 0 {
						continue // leave i at the closing brace
					}
				case '"':
					i++
					for i < len(raw) && raw[i] != '"' {
						if raw[i] == '\\' && i+1 < len(raw) {
							i++
						}
						i++
					}
				}
				if depth > 0 {
					i++
				}
			}
			if depth > 0 {
				p.errorf(whole, "unterminated interpolation sequence")
				break
			}
			exprText := raw[exprStart:i]
			sub := subParser(p.filename, exprText, posAt(exprStart))
			expr := sub.parseExpr()
			sub.skipNewlines()
			if sub.peek().Type != TokenEOF {
				sub.errorf(sub.peek().Range, "extra characters in interpolation")
			}
			p.diags = p.diags.Extend(sub.diags)
			i++ // consume '}'
			exprRng := Range{Filename: whole.Filename, Start: posAt(markerStart), End: posAt(i)}
			parts = append(parts, withRange(expr, exprRng))
			litStartIdx = i
			continue
		}
		lit.WriteByte(raw[i])
		i++
	}
	flushLit(i)

	switch len(parts) {
	case 0:
		return &LiteralExpr{Val: "", Rng: whole}
	case 1:
		if l, ok := parts[0].(*LiteralExpr); ok {
			return &LiteralExpr{Val: l.Val, Rng: whole}
		}
	}
	return &TemplateExpr{Parts: parts, Rng: whole}
}

// subParser builds a parser over an expression substring, offsetting token
// ranges so diagnostics point into the original file.
func subParser(filename, src string, at Pos) *parser {
	toks, diags := Lex(filename, src)
	for i := range toks {
		toks[i].Range = offsetRange(toks[i].Range, at)
	}
	for _, d := range diags {
		d.Subject = offsetRange(d.Subject, at)
	}
	return &parser{toks: toks, filename: filename, diags: diags}
}

func offsetRange(r Range, at Pos) Range {
	r.Start = offsetPos(r.Start, at)
	r.End = offsetPos(r.End, at)
	return r
}

func offsetPos(p Pos, at Pos) Pos {
	out := p
	out.Byte += at.Byte
	if p.Line == 1 {
		out.Line = at.Line
		out.Column = at.Column + p.Column - 1
	} else {
		out.Line = at.Line + p.Line - 1
	}
	return out
}

// withRange rewraps an expression so its reported range covers the whole
// interpolation sequence including the "${" and "}" markers.
func withRange(e Expression, rng Range) Expression {
	switch t := e.(type) {
	case *ScopeTraversalExpr:
		t.Rng = rng
	case *FunctionCallExpr:
		t.Rng = rng
	case *LiteralExpr:
		t.Rng = rng
	}
	return e
}
