// Package hcl implements CCL, the Cloudless Configuration Language: a
// declarative, HCL-style language for describing cloud infrastructure.
//
// The package provides lexing, parsing, an AST with full source-position
// fidelity, structured diagnostics, and a canonical pretty-printer. Source
// positions are preserved on every AST node so that downstream tools — the
// validator, the diagnoser, and the policy controller — can point error
// reports back at exact lines of configuration, which is one of the core
// requirements the Cloudless paper places on an IaC debugger (§3.5).
package hcl

import "fmt"

// Pos is a position within a source file.
type Pos struct {
	Line   int // 1-based line number
	Column int // 1-based column number, in bytes
	Byte   int // 0-based byte offset
}

// String returns the position in "line:column" form.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Column) }

// Range identifies a contiguous span of characters in a source file.
type Range struct {
	Filename   string
	Start, End Pos
}

// RangeBetween returns a range spanning from the start of a to the end of b.
func RangeBetween(a, b Range) Range {
	return Range{Filename: a.Filename, Start: a.Start, End: b.End}
}

// String returns the range in "file:line:column" form.
func (r Range) String() string {
	if r.Filename == "" {
		return r.Start.String()
	}
	return fmt.Sprintf("%s:%s", r.Filename, r.Start)
}

// Contains reports whether the byte offset of pos falls inside the range.
func (r Range) Contains(pos Pos) bool {
	return pos.Byte >= r.Start.Byte && pos.Byte < r.End.Byte
}

// Severity classifies a diagnostic.
type Severity int

const (
	// DiagError indicates a problem that prevents further processing.
	DiagError Severity = iota
	// DiagWarning indicates a problem that does not block processing.
	DiagWarning
)

// String returns "error" or "warning".
func (s Severity) String() string {
	if s == DiagError {
		return "error"
	}
	return "warning"
}

// Diagnostic is a single problem found while processing configuration.
type Diagnostic struct {
	Severity Severity
	Summary  string
	Detail   string
	Subject  Range // the source construct the problem refers to
}

// Error implements the error interface so a Diagnostic can travel as an error.
func (d *Diagnostic) Error() string {
	if d.Detail == "" {
		return fmt.Sprintf("%s: %s: %s", d.Subject, d.Severity, d.Summary)
	}
	return fmt.Sprintf("%s: %s: %s; %s", d.Subject, d.Severity, d.Summary, d.Detail)
}

// Diagnostics is a collection of diagnostics that itself acts as an error.
type Diagnostics []*Diagnostic

// Append adds diags (or a single diagnostic) and returns the combined set.
func (ds Diagnostics) Append(more ...*Diagnostic) Diagnostics {
	return append(ds, more...)
}

// Extend concatenates another diagnostics set.
func (ds Diagnostics) Extend(more Diagnostics) Diagnostics {
	return append(ds, more...)
}

// HasErrors reports whether the set contains at least one error-severity item.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Severity == DiagError {
			return true
		}
	}
	return false
}

// Err returns the set as an error, or nil if it contains no errors.
func (ds Diagnostics) Err() error {
	if !ds.HasErrors() {
		return nil
	}
	return ds
}

// Error implements the error interface, summarizing up to three problems.
func (ds Diagnostics) Error() string {
	n := 0
	msg := ""
	for _, d := range ds {
		if d.Severity != DiagError {
			continue
		}
		if n < 3 {
			if n > 0 {
				msg += "; "
			}
			msg += d.Error()
		}
		n++
	}
	switch {
	case n == 0:
		return "no errors"
	case n > 3:
		return fmt.Sprintf("%s; and %d more errors", msg, n-3)
	default:
		return msg
	}
}

// Errorf builds an error diagnostic at the given range.
func Errorf(rng Range, format string, args ...any) *Diagnostic {
	return &Diagnostic{Severity: DiagError, Summary: fmt.Sprintf(format, args...), Subject: rng}
}

// Warnf builds a warning diagnostic at the given range.
func Warnf(rng Range, format string, args ...any) *Diagnostic {
	return &Diagnostic{Severity: DiagWarning, Summary: fmt.Sprintf(format, args...), Subject: rng}
}
