package hcl

import "fmt"

// TokenType identifies the lexical class of a token.
type TokenType int

// Token types produced by the lexer.
const (
	TokenEOF TokenType = iota
	TokenIdent
	TokenNumber
	TokenString   // quoted string literal, possibly with interpolations
	TokenHeredoc  // <<EOT ... EOT raw string
	TokenLBrace   // {
	TokenRBrace   // }
	TokenLBracket // [
	TokenRBracket // ]
	TokenLParen   // (
	TokenRParen   // )
	TokenComma    // ,
	TokenDot      // .
	TokenColon    // :
	TokenAssign   // =
	TokenArrow    // =>
	TokenPlus     // +
	TokenMinus    // -
	TokenStar     // *
	TokenSlash    // /
	TokenPercent  // %
	TokenEq       // ==
	TokenNotEq    // !=
	TokenLT       // <
	TokenGT       // >
	TokenLTE      // <=
	TokenGTE      // >=
	TokenAnd      // &&
	TokenOr       // ||
	TokenBang     // !
	TokenQuestion // ?
	TokenEllipsis // ...
	TokenNewline  // significant newline (attribute separator)
	TokenInvalid
)

var tokenNames = map[TokenType]string{
	TokenEOF:      "end of file",
	TokenIdent:    "identifier",
	TokenNumber:   "number",
	TokenString:   "string",
	TokenHeredoc:  "heredoc",
	TokenLBrace:   `"{"`,
	TokenRBrace:   `"}"`,
	TokenLBracket: `"["`,
	TokenRBracket: `"]"`,
	TokenLParen:   `"("`,
	TokenRParen:   `")"`,
	TokenComma:    `","`,
	TokenDot:      `"."`,
	TokenColon:    `":"`,
	TokenAssign:   `"="`,
	TokenArrow:    `"=>"`,
	TokenPlus:     `"+"`,
	TokenMinus:    `"-"`,
	TokenStar:     `"*"`,
	TokenSlash:    `"/"`,
	TokenPercent:  `"%"`,
	TokenEq:       `"=="`,
	TokenNotEq:    `"!="`,
	TokenLT:       `"<"`,
	TokenGT:       `">"`,
	TokenLTE:      `"<="`,
	TokenGTE:      `">="`,
	TokenAnd:      `"&&"`,
	TokenOr:       `"||"`,
	TokenBang:     `"!"`,
	TokenQuestion: `"?"`,
	TokenEllipsis: `"..."`,
	TokenNewline:  "newline",
	TokenInvalid:  "invalid token",
}

// String returns a human-readable name for the token type.
func (t TokenType) String() string {
	if n, ok := tokenNames[t]; ok {
		return n
	}
	return fmt.Sprintf("TokenType(%d)", int(t))
}

// Token is a single lexeme with its source range.
type Token struct {
	Type  TokenType
	Text  string // raw source text of the token
	Range Range
}

// String renders the token for debugging.
func (t Token) String() string {
	return fmt.Sprintf("%s %q @%s", t.Type, t.Text, t.Range)
}
