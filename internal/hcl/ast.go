package hcl

// Node is implemented by every AST element.
type Node interface {
	// Range returns the source range the node was parsed from.
	Range() Range
}

// File is a parsed configuration file.
type File struct {
	Filename string
	Body     *Body
}

// Range implements Node.
func (f *File) Range() Range { return f.Body.Rng }

// Body is the content of a file or block: an ordered mix of attributes and
// nested blocks.
type Body struct {
	Attributes []*Attribute
	Blocks     []*Block
	Rng        Range
}

// Range implements Node.
func (b *Body) Range() Range { return b.Rng }

// Attribute returns the attribute with the given name, or nil.
func (b *Body) Attribute(name string) *Attribute {
	for _, a := range b.Attributes {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// BlocksOfType returns all nested blocks with the given type keyword.
func (b *Body) BlocksOfType(typ string) []*Block {
	var out []*Block
	for _, blk := range b.Blocks {
		if blk.Type == typ {
			out = append(out, blk)
		}
	}
	return out
}

// Block is a labeled configuration block, e.g.
//
//	resource "aws_virtual_machine" "vm1" { ... }
type Block struct {
	Type        string
	Labels      []string
	Body        *Body
	TypeRange   Range
	LabelRanges []Range
	Rng         Range
}

// Range implements Node.
func (b *Block) Range() Range { return b.Rng }

// DefRange returns the range of the block header (type + labels), which is
// the natural "subject" for diagnostics about the block as a whole.
func (b *Block) DefRange() Range {
	if n := len(b.LabelRanges); n > 0 {
		return RangeBetween(b.TypeRange, b.LabelRanges[n-1])
	}
	return b.TypeRange
}

// Attribute is a single "name = expression" definition.
type Attribute struct {
	Name      string
	Expr      Expression
	NameRange Range
	Rng       Range
}

// Range implements Node.
func (a *Attribute) Range() Range { return a.Rng }

// Expression is implemented by all expression nodes.
type Expression interface {
	Node
	// Variables returns every scope traversal the expression refers to.
	// This is how the configuration loader discovers dependencies between
	// resources without evaluating anything.
	Variables() []Traversal
}

// --- Traversals ---------------------------------------------------------

// Traverser is one step of a traversal: an attribute access or an index.
type Traverser interface {
	traverserSigil()
	StepString() string
}

// TraverseRoot is the first step of an absolute traversal: a variable name.
type TraverseRoot struct{ Name string }

// TraverseAttr is a ".name" attribute access step.
type TraverseAttr struct{ Name string }

// TraverseIndex is a "[key]" step with a statically-known key
// (a string or an int).
type TraverseIndex struct{ Key any }

func (TraverseRoot) traverserSigil()  {}
func (TraverseAttr) traverserSigil()  {}
func (TraverseIndex) traverserSigil() {}

// StepString renders the step as it would appear in source.
func (t TraverseRoot) StepString() string { return t.Name }

// StepString renders the step as it would appear in source.
func (t TraverseAttr) StepString() string { return "." + t.Name }

// StepString renders the step as it would appear in source.
func (t TraverseIndex) StepString() string {
	switch k := t.Key.(type) {
	case string:
		return `["` + k + `"]`
	case int:
		return "[" + itoa(k) + "]"
	default:
		return "[?]"
	}
}

// Traversal is a chain of steps rooted at a variable name, such as
// "aws_virtual_machine.vm1.id" or `var.names[0]`.
type Traversal []Traverser

// RootName returns the name of the variable the traversal is rooted at.
func (t Traversal) RootName() string {
	if len(t) == 0 {
		return ""
	}
	if r, ok := t[0].(TraverseRoot); ok {
		return r.Name
	}
	return ""
}

// String renders the traversal as it would appear in source.
func (t Traversal) String() string {
	s := ""
	for _, step := range t {
		s += step.StepString()
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// --- Expression nodes ---------------------------------------------------

// LiteralExpr is a constant: string, number (float64), bool, or null (nil).
type LiteralExpr struct {
	Val any
	Rng Range
}

// TemplateExpr is a string with interpolated sub-expressions. Parts is a
// sequence of LiteralExpr (string pieces) and arbitrary expressions.
type TemplateExpr struct {
	Parts []Expression
	Rng   Range
}

// ScopeTraversalExpr is a bare reference such as var.name or
// aws_network_interface.n1.id.
type ScopeTraversalExpr struct {
	Traversal Traversal
	Rng       Range
}

// RelativeTraversalExpr applies further traversal steps to the result of an
// arbitrary expression, e.g. func().attr.
type RelativeTraversalExpr struct {
	Source    Expression
	Traversal Traversal // steps only; no root
	Rng       Range
}

// IndexExpr is collection[key] where the key is a runtime expression.
type IndexExpr struct {
	Collection Expression
	Key        Expression
	Rng        Range
}

// SplatExpr maps a traversal over every element of a list, e.g.
// aws_virtual_machine.web[*].id.
type SplatExpr struct {
	Source Expression
	Each   Traversal // steps applied to each element; no root
	Rng    Range
}

// FunctionCallExpr is name(arg, ...). If ExpandFinal is set, the last
// argument is a list expanded into individual arguments (the "..." syntax).
type FunctionCallExpr struct {
	Name        string
	Args        []Expression
	ExpandFinal bool
	NameRange   Range
	Rng         Range
}

// Binary operators.
type BinaryOp int

// Binary operator kinds, in no particular order.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNotEq
	OpLT
	OpGT
	OpLTE
	OpGTE
	OpAnd
	OpOr
)

var binaryOpNames = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNotEq: "!=", OpLT: "<", OpGT: ">", OpLTE: "<=", OpGTE: ">=",
	OpAnd: "&&", OpOr: "||",
}

// String returns the operator's source spelling.
func (op BinaryOp) String() string { return binaryOpNames[op] }

// BinaryExpr is lhs OP rhs.
type BinaryExpr struct {
	Op       BinaryOp
	LHS, RHS Expression
	Rng      Range
}

// UnaryOp is a unary operator.
type UnaryOp int

// Unary operator kinds.
const (
	OpNegate UnaryOp = iota // -
	OpNot                   // !
)

// UnaryExpr is OP operand.
type UnaryExpr struct {
	Op      UnaryOp
	Operand Expression
	Rng     Range
}

// ConditionalExpr is cond ? t : f.
type ConditionalExpr struct {
	Cond, True, False Expression
	Rng               Range
}

// TupleExpr is a list constructor [a, b, c].
type TupleExpr struct {
	Items []Expression
	Rng   Range
}

// ObjectItem is one key/value entry of an ObjectExpr.
type ObjectItem struct {
	Key   Expression // LiteralExpr string for bare keys
	Value Expression
}

// ObjectExpr is an object constructor { k = v, ... }.
type ObjectExpr struct {
	Items []ObjectItem
	Rng   Range
}

// ForExpr is a list or object comprehension:
//
//	[for k, v in coll : expr if cond]
//	{for k, v in coll : keyExpr => valExpr}
type ForExpr struct {
	KeyVar   string // empty when only a value variable is bound
	ValVar   string
	Coll     Expression
	KeyExpr  Expression // non-nil for object form
	ValExpr  Expression
	CondExpr Expression // optional filter
	Rng      Range
}

// Range implementations.
func (e *LiteralExpr) Range() Range           { return e.Rng }
func (e *TemplateExpr) Range() Range          { return e.Rng }
func (e *ScopeTraversalExpr) Range() Range    { return e.Rng }
func (e *RelativeTraversalExpr) Range() Range { return e.Rng }
func (e *IndexExpr) Range() Range             { return e.Rng }
func (e *SplatExpr) Range() Range             { return e.Rng }
func (e *FunctionCallExpr) Range() Range      { return e.Rng }
func (e *BinaryExpr) Range() Range            { return e.Rng }
func (e *UnaryExpr) Range() Range             { return e.Rng }
func (e *ConditionalExpr) Range() Range       { return e.Rng }
func (e *TupleExpr) Range() Range             { return e.Rng }
func (e *ObjectExpr) Range() Range            { return e.Rng }
func (e *ForExpr) Range() Range               { return e.Rng }

// Variables implementations.

func (e *LiteralExpr) Variables() []Traversal { return nil }

func (e *TemplateExpr) Variables() []Traversal {
	var out []Traversal
	for _, p := range e.Parts {
		out = append(out, p.Variables()...)
	}
	return out
}

func (e *ScopeTraversalExpr) Variables() []Traversal { return []Traversal{e.Traversal} }

func (e *RelativeTraversalExpr) Variables() []Traversal { return e.Source.Variables() }

func (e *IndexExpr) Variables() []Traversal {
	return append(e.Collection.Variables(), e.Key.Variables()...)
}

func (e *SplatExpr) Variables() []Traversal { return e.Source.Variables() }

func (e *FunctionCallExpr) Variables() []Traversal {
	var out []Traversal
	for _, a := range e.Args {
		out = append(out, a.Variables()...)
	}
	return out
}

func (e *BinaryExpr) Variables() []Traversal {
	return append(e.LHS.Variables(), e.RHS.Variables()...)
}

func (e *UnaryExpr) Variables() []Traversal { return e.Operand.Variables() }

func (e *ConditionalExpr) Variables() []Traversal {
	out := e.Cond.Variables()
	out = append(out, e.True.Variables()...)
	return append(out, e.False.Variables()...)
}

func (e *TupleExpr) Variables() []Traversal {
	var out []Traversal
	for _, it := range e.Items {
		out = append(out, it.Variables()...)
	}
	return out
}

func (e *ObjectExpr) Variables() []Traversal {
	var out []Traversal
	for _, it := range e.Items {
		out = append(out, it.Key.Variables()...)
		out = append(out, it.Value.Variables()...)
	}
	return out
}

// Variables omits references to the comprehension's own bound variables.
func (e *ForExpr) Variables() []Traversal {
	bound := map[string]bool{e.ValVar: true}
	if e.KeyVar != "" {
		bound[e.KeyVar] = true
	}
	var out []Traversal
	out = append(out, e.Coll.Variables()...)
	for _, sub := range []Expression{e.KeyExpr, e.ValExpr, e.CondExpr} {
		if sub == nil {
			continue
		}
		for _, tr := range sub.Variables() {
			if !bound[tr.RootName()] {
				out = append(out, tr)
			}
		}
	}
	return out
}
