package hcl

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, diags := Parse("test.ccl", src)
	if diags.HasErrors() {
		t.Fatalf("unexpected parse errors: %s", diags.Error())
	}
	return f
}

func parseExprOK(t *testing.T, src string) Expression {
	t.Helper()
	e, diags := ParseExpression("expr.ccl", src)
	if diags.HasErrors() {
		t.Fatalf("unexpected errors parsing %q: %s", src, diags.Error())
	}
	return e
}

// figure2 is the Cloudless paper's Figure 2 program, translated to CCL.
const figure2 = `
/* Simplified Terraform code snippet */

data "aws_region" "current" {}

variable "vmName" {
  type    = "string"
  default = "cloudless"
}

resource "aws_network_interface" "n1" {
  name     = "example-nic"
  location = data.aws_region.current.name
}

resource "aws_virtual_machine" "vm1" {
  name    = var.vmName
  nic_ids = [aws_network_interface.n1.id]
}
`

func TestParseFigure2(t *testing.T) {
	f := parseOK(t, figure2)
	if n := len(f.Body.Blocks); n != 4 {
		t.Fatalf("got %d top-level blocks, want 4", n)
	}
	data := f.Body.Blocks[0]
	if data.Type != "data" || data.Labels[0] != "aws_region" || data.Labels[1] != "current" {
		t.Errorf("data block = %q %v", data.Type, data.Labels)
	}
	vm := f.Body.Blocks[3]
	if vm.Type != "resource" || vm.Labels[1] != "vm1" {
		t.Fatalf("vm block = %q %v", vm.Type, vm.Labels)
	}
	nics := vm.Body.Attribute("nic_ids")
	if nics == nil {
		t.Fatal("nic_ids attribute missing")
	}
	vars := nics.Expr.Variables()
	if len(vars) != 1 || vars[0].String() != "aws_network_interface.n1.id" {
		t.Errorf("nic_ids refs = %v", vars)
	}
	// Source fidelity: the vm1 block header is on line 16 of the snippet.
	if vm.DefRange().Start.Line != 16 {
		t.Errorf("vm1 block at line %d, want 16", vm.DefRange().Start.Line)
	}
}

func TestParseNestedBlocks(t *testing.T) {
	f := parseOK(t, `
resource "aws_vpc" "main" {
  cidr = "10.0.0.0/16"
  tags {
    env  = "prod"
    team = "infra"
  }
}
`)
	vpc := f.Body.Blocks[0]
	tags := vpc.Body.BlocksOfType("tags")
	if len(tags) != 1 {
		t.Fatalf("got %d tags blocks", len(tags))
	}
	if tags[0].Body.Attribute("env") == nil {
		t.Error("env attribute missing in nested block")
	}
}

func TestParsePrecedence(t *testing.T) {
	e := parseExprOK(t, "1 + 2 * 3")
	bin, ok := e.(*BinaryExpr)
	if !ok || bin.Op != OpAdd {
		t.Fatalf("top = %T", e)
	}
	rhs, ok := bin.RHS.(*BinaryExpr)
	if !ok || rhs.Op != OpMul {
		t.Fatalf("rhs = %T; multiplication must bind tighter", bin.RHS)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	e := parseExprOK(t, "a || b && c == d")
	or, ok := e.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %T", e)
	}
	and, ok := or.RHS.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("rhs of || = %v", or.RHS)
	}
}

func TestParseConditional(t *testing.T) {
	e := parseExprOK(t, `x > 3 ? "big" : "small"`)
	c, ok := e.(*ConditionalExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if _, ok := c.Cond.(*BinaryExpr); !ok {
		t.Errorf("cond = %T", c.Cond)
	}
}

func TestParseTraversal(t *testing.T) {
	e := parseExprOK(t, "aws_virtual_machine.vm1.network.0.id")
	st, ok := e.(*ScopeTraversalExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if got := st.Traversal.String(); got != "aws_virtual_machine.vm1.network[0].id" {
		t.Errorf("traversal = %q", got)
	}
}

func TestParseIndexStaticBecomesTraversal(t *testing.T) {
	e := parseExprOK(t, `var.names["alpha"]`)
	st, ok := e.(*ScopeTraversalExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	last, ok := st.Traversal[len(st.Traversal)-1].(TraverseIndex)
	if !ok || last.Key != "alpha" {
		t.Errorf("last step = %#v", st.Traversal[len(st.Traversal)-1])
	}
}

func TestParseIndexDynamic(t *testing.T) {
	e := parseExprOK(t, "var.names[count.index]")
	if _, ok := e.(*IndexExpr); !ok {
		t.Fatalf("got %T, want IndexExpr for dynamic key", e)
	}
}

func TestParseSplat(t *testing.T) {
	e := parseExprOK(t, "aws_virtual_machine.web[*].id")
	sp, ok := e.(*SplatExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(sp.Each) != 1 || sp.Each[0].StepString() != ".id" {
		t.Errorf("splat steps = %v", sp.Each)
	}
	vars := sp.Variables()
	if len(vars) != 1 || vars[0].String() != "aws_virtual_machine.web" {
		t.Errorf("splat vars = %v", vars)
	}
}

func TestParseFunctionCall(t *testing.T) {
	e := parseExprOK(t, `cidrsubnet(var.base, 8, 3)`)
	fc, ok := e.(*FunctionCallExpr)
	if !ok || fc.Name != "cidrsubnet" || len(fc.Args) != 3 {
		t.Fatalf("got %#v", e)
	}
}

func TestParseFunctionCallExpand(t *testing.T) {
	e := parseExprOK(t, `max(var.nums...)`)
	fc, ok := e.(*FunctionCallExpr)
	if !ok || !fc.ExpandFinal {
		t.Fatalf("got %#v", e)
	}
}

func TestParseTupleAndObject(t *testing.T) {
	e := parseExprOK(t, `[1, "two", true, null]`)
	tu, ok := e.(*TupleExpr)
	if !ok || len(tu.Items) != 4 {
		t.Fatalf("got %#v", e)
	}
	e = parseExprOK(t, `{ name = "x", size = 3 }`)
	ob, ok := e.(*ObjectExpr)
	if !ok || len(ob.Items) != 2 {
		t.Fatalf("got %#v", e)
	}
}

func TestParseObjectNewlineSeparated(t *testing.T) {
	e := parseExprOK(t, "{\n  a = 1\n  b = 2\n}")
	ob, ok := e.(*ObjectExpr)
	if !ok || len(ob.Items) != 2 {
		t.Fatalf("got %#v", e)
	}
}

func TestParseForList(t *testing.T) {
	e := parseExprOK(t, `[for v in var.names : upper(v) if v != ""]`)
	fe, ok := e.(*ForExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if fe.ValVar != "v" || fe.CondExpr == nil || fe.KeyExpr != nil {
		t.Errorf("for = %#v", fe)
	}
	// Bound variable must not leak into Variables().
	for _, tr := range fe.Variables() {
		if tr.RootName() == "v" {
			t.Error("bound comprehension variable leaked into Variables()")
		}
	}
}

func TestParseForObject(t *testing.T) {
	e := parseExprOK(t, `{for k, v in var.m : k => v}`)
	fe, ok := e.(*ForExpr)
	if !ok || fe.KeyExpr == nil || fe.KeyVar != "k" || fe.ValVar != "v" {
		t.Fatalf("got %#v", e)
	}
}

func TestParseTemplate(t *testing.T) {
	e := parseExprOK(t, `"vm-${var.name}-${count.index}"`)
	te, ok := e.(*TemplateExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(te.Parts) != 4 { // "vm-", var.name, "-", count.index
		t.Fatalf("got %d parts", len(te.Parts))
	}
	vars := te.Variables()
	if len(vars) != 2 || vars[0].RootName() != "var" || vars[1].RootName() != "count" {
		t.Errorf("template vars = %v", vars)
	}
}

func TestParseTemplateEscapedDollar(t *testing.T) {
	e := parseExprOK(t, `"literal $${not_interp}"`)
	lit, ok := e.(*LiteralExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if lit.Val != "literal ${not_interp}" {
		t.Errorf("got %q", lit.Val)
	}
}

func TestParseStringEscapes(t *testing.T) {
	e := parseExprOK(t, `"a\nb\t\"c\""`)
	lit, ok := e.(*LiteralExpr)
	if !ok || lit.Val != "a\nb\t\"c\"" {
		t.Fatalf("got %#v", e)
	}
}

func TestParseHeredocTemplate(t *testing.T) {
	f := parseOK(t, "x = <<EOT\nhello ${var.name}\nworld\nEOT\n")
	attr := f.Body.Attributes[0]
	te, ok := attr.Expr.(*TemplateExpr)
	if !ok {
		t.Fatalf("got %T", attr.Expr)
	}
	vars := te.Variables()
	if len(vars) != 1 || vars[0].String() != "var.name" {
		t.Errorf("heredoc vars = %v", vars)
	}
}

func TestParseInterpolationPositions(t *testing.T) {
	f := parseOK(t, `x = "abc${var.foo}"`)
	te := f.Body.Attributes[0].Expr.(*TemplateExpr)
	ref := te.Parts[1]
	rng := ref.Range()
	// The ${...} sequence starts at column 9 (1-based) of line 1.
	if rng.Start.Line != 1 || rng.Start.Column != 9 {
		t.Errorf("interpolation range start = %v, want 1:9", rng.Start)
	}
}

func TestParseErrorRecovery(t *testing.T) {
	src := "a = = 1\nb = 2\n"
	f, diags := Parse("t.ccl", src)
	if !diags.HasErrors() {
		t.Fatal("expected errors")
	}
	// The parser must still deliver the following valid attribute.
	if f.Body.Attribute("b") == nil {
		t.Error("parser did not recover to parse attribute b")
	}
}

func TestParseMissingAssignDiagnostic(t *testing.T) {
	_, diags := Parse("t.ccl", "a 1\n")
	if !diags.HasErrors() {
		t.Fatal("expected errors")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Summary, `"="`) {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostic should mention '=': %s", diags.Error())
	}
}

func TestParseUnclosedBlock(t *testing.T) {
	_, diags := Parse("t.ccl", "resource \"a\" \"b\" {\n x = 1\n")
	if !diags.HasErrors() {
		t.Fatal("expected errors for unclosed block")
	}
}

func TestParseTwoAttributesOneLineRejected(t *testing.T) {
	_, diags := Parse("t.ccl", "a = 1 b = 2\n")
	if !diags.HasErrors() {
		t.Fatal("expected error: attributes must be newline-separated")
	}
}

func TestParseBlockDefRange(t *testing.T) {
	f := parseOK(t, `resource "aws_vpc" "main" {}`)
	def := f.Body.Blocks[0].DefRange()
	if def.Start.Column != 1 || def.End.Column != 26 {
		t.Errorf("def range = %v-%v", def.Start, def.End)
	}
}

func TestParseExpressionRejectsTrailing(t *testing.T) {
	_, diags := ParseExpression("e.ccl", "1 + 2 extra")
	if !diags.HasErrors() {
		t.Fatal("expected error for trailing tokens")
	}
}

func TestParseEmptyFile(t *testing.T) {
	f := parseOK(t, "")
	if len(f.Body.Attributes) != 0 || len(f.Body.Blocks) != 0 {
		t.Error("empty file should produce empty body")
	}
}

func TestParseCommentsOnlyFile(t *testing.T) {
	f := parseOK(t, "# just a comment\n// another\n")
	if len(f.Body.Blocks) != 0 {
		t.Error("comments-only file should have no blocks")
	}
}

func TestParseMultilineExpressionsInParens(t *testing.T) {
	f := parseOK(t, "x = (1 +\n 2 +\n 3)\n")
	if f.Body.Attribute("x") == nil {
		t.Fatal("x missing")
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	e := parseExprOK(t, "-4 + 2")
	bin, ok := e.(*BinaryExpr)
	if !ok || bin.Op != OpAdd {
		t.Fatalf("got %#v", e)
	}
	if _, ok := bin.LHS.(*UnaryExpr); !ok {
		t.Errorf("lhs = %T", bin.LHS)
	}
}
