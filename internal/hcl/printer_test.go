package hcl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatRoundTripIdempotent(t *testing.T) {
	srcs := []string{
		figure2,
		`
resource "aws_subnet" "s" {
  cidr  = cidrsubnet(var.base, 8, 2)
  count = var.n > 0 ? var.n : 1
  tags  = { env = "prod", zone = "a" }
  list  = [1, 2, 3]
}
`,
		`x = [for v in var.xs : upper(v) if v != ""]`,
		`y = {for k, v in var.m : k => v}`,
		`z = aws_vm.web[*].id`,
	}
	for _, src := range srcs {
		f1, diags := Parse("a.ccl", src)
		if diags.HasErrors() {
			t.Fatalf("parse 1: %s", diags.Error())
		}
		out1 := Format(f1)
		f2, diags := Parse("b.ccl", out1)
		if diags.HasErrors() {
			t.Fatalf("formatted output does not re-parse: %s\n--- output:\n%s", diags.Error(), out1)
		}
		out2 := Format(f2)
		if out1 != out2 {
			t.Errorf("format not idempotent:\n--- first:\n%s\n--- second:\n%s", out1, out2)
		}
	}
}

func TestFormatAlignment(t *testing.T) {
	f, _ := Parse("t.ccl", "a = 1\nlonger_name = 2\n")
	out := Format(f)
	if !strings.Contains(out, "a           = 1") {
		t.Errorf("attributes not aligned:\n%s", out)
	}
}

func TestFormatExprPrecedenceSafe(t *testing.T) {
	// The printer uses spaces, and the parser re-reads with the same
	// precedence, so the round trip preserves structure for these.
	exprs := []string{
		`1 + 2 * 3`,
		`a && b || c`,
		`x > 3 ? "big" : "small"`,
		`cidrsubnet(var.base, 8, 3)`,
	}
	for _, src := range exprs {
		e1, d := ParseExpression("e.ccl", src)
		if d.HasErrors() {
			t.Fatal(d.Error())
		}
		out := FormatExpr(e1)
		e2, d := ParseExpression("e2.ccl", out)
		if d.HasErrors() {
			t.Fatalf("%q re-parse: %s", out, d.Error())
		}
		if FormatExpr(e2) != out {
			t.Errorf("expr format not stable: %q -> %q", out, FormatExpr(e2))
		}
	}
}

func TestFormatStringEscaping(t *testing.T) {
	f := &File{Body: &Body{}}
	f.Body.SetAttr("s", NewLiteral("line\nwith \"quotes\" and ${marker}"))
	out := Format(f)
	f2, diags := Parse("t.ccl", out)
	if diags.HasErrors() {
		t.Fatalf("escaped output does not parse: %s\n%s", diags.Error(), out)
	}
	lit, ok := f2.Body.Attribute("s").Expr.(*LiteralExpr)
	if !ok {
		t.Fatalf("got %T (interpolation marker must stay literal)", f2.Body.Attribute("s").Expr)
	}
	if lit.Val != "line\nwith \"quotes\" and ${marker}" {
		t.Errorf("round trip = %q", lit.Val)
	}
}

// TestFormatLiteralStringsQuickCheck property-tests that any printable string
// literal survives a format→parse round trip.
func TestFormatLiteralStringsQuickCheck(t *testing.T) {
	roundTrip := func(s string) bool {
		// The language does not admit invalid UTF-8 or NUL in source.
		for _, r := range s {
			if r == 0 || r == 0xFFFD {
				return true
			}
		}
		f := &File{Body: &Body{}}
		f.Body.SetAttr("v", NewLiteral(s))
		out := Format(f)
		f2, diags := Parse("q.ccl", out)
		if diags.HasErrors() {
			return false
		}
		lit, ok := f2.Body.Attribute("v").Expr.(*LiteralExpr)
		if !ok {
			return false
		}
		got, ok := lit.Val.(string)
		return ok && got == s
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFormatNumberQuickCheck(t *testing.T) {
	roundTrip := func(n int32) bool {
		f := &File{Body: &Body{}}
		f.Body.SetAttr("v", NewLiteral(float64(n)))
		f2, diags := Parse("q.ccl", Format(f))
		if diags.HasErrors() {
			return false
		}
		expr := f2.Body.Attribute("v").Expr
		if n < 0 {
			u, ok := expr.(*UnaryExpr)
			if !ok || u.Op != OpNegate {
				return false
			}
			lit, ok := u.Operand.(*LiteralExpr)
			return ok && lit.Val == float64(-int64(n))
		}
		lit, ok := expr.(*LiteralExpr)
		return ok && lit.Val == float64(n)
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuilderHelpers(t *testing.T) {
	blk := NewBlock("resource", "aws_vpc", "main")
	blk.Body.SetAttr("cidr", NewLiteral("10.0.0.0/16"))
	blk.Body.SetAttr("name", NewTraversalExpr("var", "vpcName"))
	blk.Body.SetAttr("zones", NewTuple(NewLiteral("a"), NewLiteral("b")))
	f := &File{Body: &Body{Blocks: []*Block{blk}}}
	out := Format(f)
	f2, diags := Parse("gen.ccl", out)
	if diags.HasErrors() {
		t.Fatalf("generated program invalid: %s\n%s", diags.Error(), out)
	}
	got := f2.Body.Blocks[0]
	if got.Labels[0] != "aws_vpc" || got.Labels[1] != "main" {
		t.Errorf("labels = %v", got.Labels)
	}
	if len(got.Body.Attributes) != 3 {
		t.Errorf("attributes = %d", len(got.Body.Attributes))
	}
}

func TestSetAttrReplaces(t *testing.T) {
	b := &Body{}
	b.SetAttr("x", NewLiteral(1))
	b.SetAttr("x", NewLiteral(2))
	if len(b.Attributes) != 1 {
		t.Fatalf("got %d attributes", len(b.Attributes))
	}
	if b.Attribute("x").Expr.(*LiteralExpr).Val != float64(2) {
		t.Error("SetAttr did not replace value")
	}
}

func TestDiagnosticsError(t *testing.T) {
	var ds Diagnostics
	if ds.Err() != nil {
		t.Error("empty diagnostics should have nil Err")
	}
	ds = ds.Append(Warnf(Range{}, "just a warning"))
	if ds.Err() != nil {
		t.Error("warnings alone should not be an error")
	}
	ds = ds.Append(Errorf(Range{Filename: "f.ccl", Start: Pos{Line: 3, Column: 1}}, "boom"))
	if ds.Err() == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(ds.Error(), "f.ccl:3:1") {
		t.Errorf("error should carry position: %q", ds.Error())
	}
}
