package hcl

import (
	"math/rand"
	"testing"
)

// randExpr generates a random expression tree of bounded depth. The shapes
// cover every printable node type, so the property test exercises the whole
// printer/parser surface.
func randExpr(rng *rand.Rand, depth int) Expression {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return NewLiteral(float64(rng.Intn(1000)))
		case 1:
			return NewLiteral(randIdent(rng))
		case 2:
			return NewLiteral(rng.Intn(2) == 0)
		case 3:
			return NewTraversalExpr("var", randIdent(rng))
		default:
			return NewTraversalExpr("aws_vpc", randIdent(rng), "id")
		}
	}
	switch rng.Intn(8) {
	case 0:
		ops := []BinaryOp{OpAdd, OpSub, OpMul, OpEq, OpAnd, OpOr, OpLT}
		return &BinaryExpr{
			Op:  ops[rng.Intn(len(ops))],
			LHS: randExpr(rng, depth-1),
			RHS: randExpr(rng, depth-1),
		}
	case 1:
		return &UnaryExpr{Op: OpNot, Operand: &BinaryExpr{
			Op: OpEq, LHS: randExpr(rng, depth-1), RHS: randExpr(rng, depth-1),
		}}
	case 2:
		return &ConditionalExpr{
			Cond:  randExpr(rng, depth-1),
			True:  randExpr(rng, depth-1),
			False: randExpr(rng, depth-1),
		}
	case 3:
		n := 1 + rng.Intn(3)
		items := make([]Expression, n)
		for i := range items {
			items[i] = randExpr(rng, depth-1)
		}
		return NewTuple(items...)
	case 4:
		n := 1 + rng.Intn(3)
		obj := &ObjectExpr{}
		for i := 0; i < n; i++ {
			obj.Items = append(obj.Items, ObjectItem{
				Key:   NewLiteral(randIdent(rng)),
				Value: randExpr(rng, depth-1),
			})
		}
		return obj
	case 5:
		n := rng.Intn(3)
		args := make([]Expression, n)
		for i := range args {
			args[i] = randExpr(rng, depth-1)
		}
		return &FunctionCallExpr{Name: "coalesce", Args: args}
	case 6:
		return &TemplateExpr{Parts: []Expression{
			NewLiteral("pfx-"),
			NewTraversalExpr("var", randIdent(rng)),
			NewLiteral("-sfx"),
		}}
	default:
		return &IndexExpr{
			Collection: NewTraversalExpr("var", randIdent(rng)),
			Key:        randExpr(rng, depth-1),
		}
	}
}

var identPool = []string{"alpha", "beta", "gamma", "delta", "omega", "n1", "x_y"}

func randIdent(rng *rand.Rand) string { return identPool[rng.Intn(len(identPool))] }

// TestRandomExprPrintParseStable: print(x) must parse, and printing the
// parse must reproduce exactly the same text — with precedence-aware
// parenthesization, print∘parse is the identity on printer output, so no
// expression can silently reassociate through a port/refactor cycle.
func TestRandomExprPrintParseStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		expr := randExpr(rng, 3)
		out1 := FormatExpr(expr)
		parsed, diags := ParseExpression("rt.ccl", out1)
		if diags.HasErrors() {
			t.Fatalf("case %d: printer output does not parse: %s\n%s", i, diags.Error(), out1)
		}
		out2 := FormatExpr(parsed)
		if out1 != out2 {
			t.Fatalf("case %d: print∘parse changed the expression:\n  before: %s\n  after:  %s", i, out1, out2)
		}
	}
}

// TestAssociativityPreserved pins the classic reassociation bugs directly.
func TestAssociativityPreserved(t *testing.T) {
	aMinusBC := &BinaryExpr{Op: OpSub,
		LHS: NewTraversalExpr("var", "a"),
		RHS: &BinaryExpr{Op: OpSub, LHS: NewTraversalExpr("var", "b"), RHS: NewTraversalExpr("var", "c")},
	}
	if got := FormatExpr(aMinusBC); got != "var.a - (var.b - var.c)" {
		t.Errorf("right-nested subtraction = %q", got)
	}
	sumTimes := &BinaryExpr{Op: OpMul,
		LHS: &BinaryExpr{Op: OpAdd, LHS: NewLiteral(1), RHS: NewLiteral(2)},
		RHS: NewLiteral(3),
	}
	if got := FormatExpr(sumTimes); got != "(1 + 2) * 3" {
		t.Errorf("sum-times = %q", got)
	}
	noParens := &BinaryExpr{Op: OpAdd,
		LHS: &BinaryExpr{Op: OpMul, LHS: NewLiteral(1), RHS: NewLiteral(2)},
		RHS: NewLiteral(3),
	}
	if got := FormatExpr(noParens); got != "1 * 2 + 3" {
		t.Errorf("needless parens: %q", got)
	}
}

// TestRandomFilePrintParseStable does the same at whole-file granularity,
// with random blocks and attributes.
func TestRandomFilePrintParseStable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		f := &File{Body: &Body{}}
		nBlocks := 1 + rng.Intn(4)
		for b := 0; b < nBlocks; b++ {
			blk := NewBlock("resource", "aws_vpc", randIdent(rng)+itoa(b))
			nAttrs := 1 + rng.Intn(4)
			for a := 0; a < nAttrs; a++ {
				blk.Body.SetAttr(randIdent(rng), randExpr(rng, 2))
			}
			f.Body.Blocks = append(f.Body.Blocks, blk)
		}
		out1 := Format(f)
		parsed, diags := Parse("rt.ccl", out1)
		if diags.HasErrors() {
			t.Fatalf("case %d: %s\n%s", i, diags.Error(), out1)
		}
		out2 := Format(parsed)
		parsed2, diags := Parse("rt2.ccl", out2)
		if diags.HasErrors() {
			t.Fatalf("case %d second parse: %s", i, diags.Error())
		}
		if out2 != Format(parsed2) {
			t.Fatalf("case %d: file format not a fixpoint", i)
		}
	}
}
