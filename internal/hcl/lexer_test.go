package hcl

import (
	"testing"
)

func tokenTypes(toks []Token) []TokenType {
	out := make([]TokenType, len(toks))
	for i, t := range toks {
		out[i] = t.Type
	}
	return out
}

func lexOK(t *testing.T, src string) []Token {
	t.Helper()
	toks, diags := Lex("test.ccl", src)
	if diags.HasErrors() {
		t.Fatalf("unexpected lex errors: %s", diags.Error())
	}
	return toks
}

func TestLexSimpleAttribute(t *testing.T) {
	toks := lexOK(t, `name = "cloudless"`)
	want := []TokenType{TokenIdent, TokenAssign, TokenString, TokenEOF}
	got := tokenTypes(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
	if toks[2].Text != `"cloudless"` {
		t.Errorf("string token text = %q", toks[2].Text)
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexOK(t, `a == b != c <= d >= e && f || !g => ...`)
	want := []TokenType{
		TokenIdent, TokenEq, TokenIdent, TokenNotEq, TokenIdent,
		TokenLTE, TokenIdent, TokenGTE, TokenIdent, TokenAnd, TokenIdent,
		TokenOr, TokenBang, TokenIdent, TokenArrow, TokenEllipsis, TokenEOF,
	}
	got := tokenTypes(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexNewlinesSignificant(t *testing.T) {
	toks := lexOK(t, "a = 1\nb = 2\n")
	var newlines int
	for _, tok := range toks {
		if tok.Type == TokenNewline {
			newlines++
		}
	}
	if newlines != 2 {
		t.Errorf("got %d newline tokens, want 2", newlines)
	}
}

func TestLexNewlinesInsignificantInBrackets(t *testing.T) {
	toks := lexOK(t, "a = [1,\n2,\n3]")
	for _, tok := range toks {
		if tok.Type == TokenNewline {
			t.Errorf("unexpected newline token inside brackets at %s", tok.Range)
		}
	}
}

func TestLexBlankLinesCollapse(t *testing.T) {
	toks := lexOK(t, "a = 1\n\n\n\nb = 2")
	var newlines int
	for _, tok := range toks {
		if tok.Type == TokenNewline {
			newlines++
		}
	}
	if newlines != 1 {
		t.Errorf("got %d newline tokens, want 1 (blank lines collapse)", newlines)
	}
}

func TestLexComments(t *testing.T) {
	src := "# hash comment\n// slash comment\n/* block\ncomment */ a = 1"
	toks := lexOK(t, src)
	var idents int
	for _, tok := range toks {
		if tok.Type == TokenIdent {
			idents++
		}
	}
	if idents != 1 {
		t.Errorf("got %d idents, want 1; tokens: %v", idents, tokenTypes(toks))
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	_, diags := Lex("t.ccl", "/* never closed")
	if !diags.HasErrors() {
		t.Fatal("expected error for unterminated block comment")
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct{ src, want string }{
		{"42", "42"},
		{"3.14", "3.14"},
		{"1e9", "1e9"},
		{"2.5e-3", "2.5e-3"},
	}
	for _, c := range cases {
		toks := lexOK(t, c.src)
		if toks[0].Type != TokenNumber || toks[0].Text != c.want {
			t.Errorf("lex %q: got %v %q", c.src, toks[0].Type, toks[0].Text)
		}
	}
}

func TestLexNumberDotTraversal(t *testing.T) {
	// "a[0].id" style: after a number token, ".id" must not be absorbed.
	toks := lexOK(t, "x.0.id")
	want := []TokenType{TokenIdent, TokenDot, TokenNumber, TokenDot, TokenIdent, TokenEOF}
	got := tokenTypes(toks)
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestLexStringWithInterpolation(t *testing.T) {
	toks := lexOK(t, `x = "prefix-${var.name}-suffix"`)
	if toks[2].Type != TokenString {
		t.Fatalf("got %s", toks[2].Type)
	}
	if toks[2].Text != `"prefix-${var.name}-suffix"` {
		t.Errorf("interpolation not kept inside token: %q", toks[2].Text)
	}
}

func TestLexStringWithNestedBracesInInterpolation(t *testing.T) {
	toks := lexOK(t, `x = "${ { a = "b}" } }"`)
	if toks[2].Type != TokenString {
		t.Fatalf("nested interpolation mis-lexed: %v", tokenTypes(toks))
	}
}

func TestLexUnterminatedString(t *testing.T) {
	_, diags := Lex("t.ccl", `x = "never closed`)
	if !diags.HasErrors() {
		t.Fatal("expected error for unterminated string")
	}
}

func TestLexHeredoc(t *testing.T) {
	src := "x = <<EOT\nline one\nline two\nEOT\n"
	toks := lexOK(t, src)
	if toks[2].Type != TokenHeredoc {
		t.Fatalf("got %s, want heredoc; tokens %v", toks[2].Type, tokenTypes(toks))
	}
}

func TestLexUnterminatedHeredoc(t *testing.T) {
	_, diags := Lex("t.ccl", "x = <<EOT\nbody only")
	if !diags.HasErrors() {
		t.Fatal("expected error for unterminated heredoc")
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexOK(t, "a = 1\nbb = 22")
	// Token "bb" starts at line 2, column 1.
	var bb Token
	for _, tok := range toks {
		if tok.Text == "bb" {
			bb = tok
		}
	}
	if bb.Range.Start.Line != 2 || bb.Range.Start.Column != 1 {
		t.Errorf("bb position = %v, want 2:1", bb.Range.Start)
	}
	if bb.Range.End.Column != 3 {
		t.Errorf("bb end column = %d, want 3", bb.Range.End.Column)
	}
}

func TestLexInvalidCharacter(t *testing.T) {
	_, diags := Lex("t.ccl", "a = @")
	if !diags.HasErrors() {
		t.Fatal("expected error for invalid character")
	}
}

func TestLexIdentWithDashesAndDigits(t *testing.T) {
	toks := lexOK(t, "us-east-1a")
	if toks[0].Type != TokenIdent || toks[0].Text != "us-east-1a" {
		t.Errorf("got %v %q", toks[0].Type, toks[0].Text)
	}
}
