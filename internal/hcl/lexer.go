package hcl

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer scans CCL source into tokens. Newlines are significant (they
// terminate attribute definitions) except when they follow a token that
// cannot end an expression, or inside brackets/parens, mirroring the
// automatic statement termination rules of HCL.
type lexer struct {
	src      string
	filename string

	pos   Pos // position of next rune to read
	start Pos // start of token under construction

	// bracket depth: inside ( ) or [ ] newlines are insignificant.
	parenDepth int

	diags Diagnostics
}

func newLexer(filename, src string) *lexer {
	return &lexer{
		src:      src,
		filename: filename,
		pos:      Pos{Line: 1, Column: 1, Byte: 0},
	}
}

// Lex tokenizes the whole input.
func Lex(filename, src string) ([]Token, Diagnostics) {
	lx := newLexer(filename, src)
	var toks []Token
	for {
		t := lx.next()
		toks = append(toks, t)
		if t.Type == TokenEOF {
			break
		}
	}
	return toks, lx.diags
}

func (lx *lexer) errorf(rng Range, format string, args ...any) {
	lx.diags = lx.diags.Append(Errorf(rng, format, args...))
}

func (lx *lexer) peek() rune {
	if lx.pos.Byte >= len(lx.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.pos.Byte:])
	return r
}

func (lx *lexer) peek2() rune {
	if lx.pos.Byte >= len(lx.src) {
		return -1
	}
	_, w := utf8.DecodeRuneInString(lx.src[lx.pos.Byte:])
	if lx.pos.Byte+w >= len(lx.src) {
		return -1
	}
	r2, _ := utf8.DecodeRuneInString(lx.src[lx.pos.Byte+w:])
	return r2
}

func (lx *lexer) advance() rune {
	if lx.pos.Byte >= len(lx.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(lx.src[lx.pos.Byte:])
	lx.pos.Byte += w
	if r == '\n' {
		lx.pos.Line++
		lx.pos.Column = 1
	} else {
		lx.pos.Column += w
	}
	return r
}

func (lx *lexer) rangeFromStart() Range {
	return Range{Filename: lx.filename, Start: lx.start, End: lx.pos}
}

func (lx *lexer) token(t TokenType) Token {
	rng := lx.rangeFromStart()
	return Token{Type: t, Text: lx.src[lx.start.Byte:lx.pos.Byte], Range: rng}
}

// skipSpace consumes spaces, tabs, carriage returns, comments, and — when
// inside brackets — newlines. It reports whether a significant newline was
// crossed.
func (lx *lexer) skipSpace() bool {
	sawNewline := false
	for {
		switch r := lx.peek(); {
		case r == ' ' || r == '\t' || r == '\r':
			lx.advance()
		case r == '\n':
			if lx.parenDepth > 0 {
				lx.advance()
				continue
			}
			return sawNewline // caller emits the newline token
		case r == '#':
			lx.skipLineComment()
		case r == '/' && lx.peek2() == '/':
			lx.skipLineComment()
		case r == '/' && lx.peek2() == '*':
			lx.skipBlockComment()
		default:
			return sawNewline
		}
	}
}

func (lx *lexer) skipLineComment() {
	for {
		r := lx.peek()
		if r == -1 || r == '\n' {
			return
		}
		lx.advance()
	}
}

func (lx *lexer) skipBlockComment() {
	open := lx.pos
	lx.advance() // '/'
	lx.advance() // '*'
	for {
		r := lx.advance()
		if r == -1 {
			lx.errorf(Range{Filename: lx.filename, Start: open, End: lx.pos},
				"unterminated block comment")
			return
		}
		if r == '*' && lx.peek() == '/' {
			lx.advance()
			return
		}
	}
}

func (lx *lexer) next() Token {
	lx.skipSpace()
	lx.start = lx.pos

	r := lx.peek()
	switch {
	case r == -1:
		return lx.token(TokenEOF)
	case r == '\n':
		lx.advance()
		// Collapse consecutive blank lines into a single newline token.
		for {
			lx.skipSpace()
			if lx.peek() == '\n' {
				lx.advance()
				continue
			}
			break
		}
		return Token{Type: TokenNewline, Text: "\n", Range: lx.rangeFromStart()}
	case isIdentStart(r):
		return lx.lexIdent()
	case r >= '0' && r <= '9':
		return lx.lexNumber()
	case r == '"':
		return lx.lexString()
	case r == '<' && lx.peek2() == '<':
		return lx.lexHeredoc()
	}

	lx.advance()
	switch r {
	case '{':
		return lx.token(TokenLBrace)
	case '}':
		return lx.token(TokenRBrace)
	case '[':
		lx.parenDepth++
		return lx.token(TokenLBracket)
	case ']':
		if lx.parenDepth > 0 {
			lx.parenDepth--
		}
		return lx.token(TokenRBracket)
	case '(':
		lx.parenDepth++
		return lx.token(TokenLParen)
	case ')':
		if lx.parenDepth > 0 {
			lx.parenDepth--
		}
		return lx.token(TokenRParen)
	case ',':
		return lx.token(TokenComma)
	case ':':
		return lx.token(TokenColon)
	case '.':
		if lx.peek() == '.' && lx.peek2() == '.' {
			lx.advance()
			lx.advance()
			return lx.token(TokenEllipsis)
		}
		return lx.token(TokenDot)
	case '=':
		switch lx.peek() {
		case '=':
			lx.advance()
			return lx.token(TokenEq)
		case '>':
			lx.advance()
			return lx.token(TokenArrow)
		}
		return lx.token(TokenAssign)
	case '!':
		if lx.peek() == '=' {
			lx.advance()
			return lx.token(TokenNotEq)
		}
		return lx.token(TokenBang)
	case '<':
		if lx.peek() == '=' {
			lx.advance()
			return lx.token(TokenLTE)
		}
		return lx.token(TokenLT)
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			return lx.token(TokenGTE)
		}
		return lx.token(TokenGT)
	case '+':
		return lx.token(TokenPlus)
	case '-':
		return lx.token(TokenMinus)
	case '*':
		return lx.token(TokenStar)
	case '/':
		return lx.token(TokenSlash)
	case '%':
		return lx.token(TokenPercent)
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return lx.token(TokenAnd)
		}
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return lx.token(TokenOr)
		}
	case '?':
		return lx.token(TokenQuestion)
	}

	tok := lx.token(TokenInvalid)
	lx.errorf(tok.Range, "unexpected character %q", r)
	return tok
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *lexer) lexIdent() Token {
	for isIdentPart(lx.peek()) {
		lx.advance()
	}
	return lx.token(TokenIdent)
}

func (lx *lexer) lexNumber() Token {
	for {
		r := lx.peek()
		if r >= '0' && r <= '9' {
			lx.advance()
			continue
		}
		if r == '.' {
			// Only part of the number when followed by a digit; otherwise it
			// is an attribute traversal dot (e.g. in "8.id" never occurs, but
			// "1..." must not absorb the dot).
			if r2 := lx.peek2(); r2 >= '0' && r2 <= '9' {
				lx.advance()
				continue
			}
		}
		if r == 'e' || r == 'E' {
			r2 := lx.peek2()
			if (r2 >= '0' && r2 <= '9') || r2 == '+' || r2 == '-' {
				lx.advance() // e
				lx.advance() // sign or digit
				continue
			}
		}
		break
	}
	return lx.token(TokenNumber)
}

// lexString scans a quoted string. Interpolations ("${...}") are kept inside
// the token text; the parser re-scans them into template parts. Nested braces
// and quotes inside interpolations are tracked so the string does not end
// prematurely.
func (lx *lexer) lexString() Token {
	lx.advance() // opening quote
	for {
		r := lx.peek()
		switch r {
		case -1, '\n':
			tok := lx.token(TokenInvalid)
			lx.errorf(tok.Range, "unterminated string literal")
			return tok
		case '\\':
			lx.advance()
			lx.advance() // escaped char (validity checked during unquoting)
		case '$':
			if lx.peek2() == '{' {
				lx.advance() // $
				lx.advance() // {
				depth := 1
				for depth > 0 {
					ir := lx.advance()
					switch ir {
					case -1:
						tok := lx.token(TokenInvalid)
						lx.errorf(tok.Range, "unterminated interpolation in string literal")
						return tok
					case '{':
						depth++
					case '}':
						depth--
					case '"':
						// nested quoted string inside interpolation
						for {
							sr := lx.advance()
							if sr == -1 {
								tok := lx.token(TokenInvalid)
								lx.errorf(tok.Range, "unterminated string literal")
								return tok
							}
							if sr == '\\' {
								lx.advance()
								continue
							}
							if sr == '"' {
								break
							}
						}
					}
				}
			} else {
				lx.advance()
			}
		case '"':
			lx.advance()
			return lx.token(TokenString)
		default:
			lx.advance()
		}
	}
}

// lexHeredoc scans <<TAG ... TAG raw multi-line strings.
func (lx *lexer) lexHeredoc() Token {
	lx.advance() // <
	lx.advance() // <
	if lx.peek() == '-' {
		lx.advance() // indented heredoc marker; treated identically
	}
	tagStart := lx.pos.Byte
	for isIdentPart(lx.peek()) {
		lx.advance()
	}
	tag := lx.src[tagStart:lx.pos.Byte]
	if tag == "" {
		tok := lx.token(TokenInvalid)
		lx.errorf(tok.Range, "heredoc requires a delimiter identifier after <<")
		return tok
	}
	// Consume to end of line.
	for lx.peek() != '\n' && lx.peek() != -1 {
		lx.advance()
	}
	for {
		if lx.peek() == -1 {
			tok := lx.token(TokenInvalid)
			lx.errorf(tok.Range, "unterminated heredoc; expected closing %q", tag)
			return tok
		}
		lx.advance() // the newline
		lineStart := lx.pos.Byte
		for lx.peek() != '\n' && lx.peek() != -1 {
			lx.advance()
		}
		if strings.TrimSpace(lx.src[lineStart:lx.pos.Byte]) == tag {
			return lx.token(TokenHeredoc)
		}
	}
}
