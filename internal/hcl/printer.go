package hcl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Format renders a file in canonical CCL style: two-space indentation,
// attributes before nested blocks, single blank line between top-level
// items. The porter (§3.1) uses this to emit generated programs.
func Format(f *File) string {
	var b strings.Builder
	printBody(&b, f.Body, 0, true)
	return b.String()
}

// FormatBody renders a body at the given indent level.
func FormatBody(body *Body, indent int) string {
	var b strings.Builder
	printBody(&b, body, indent, false)
	return b.String()
}

// FormatExpr renders a single expression in canonical style.
func FormatExpr(e Expression) string {
	var b strings.Builder
	printExpr(&b, e)
	return b.String()
}

func printBody(b *strings.Builder, body *Body, indent int, topLevel bool) {
	pad := strings.Repeat("  ", indent)
	// Align attribute names within a run of attributes, gofmt-style.
	width := 0
	for _, a := range body.Attributes {
		if len(a.Name) > width {
			width = len(a.Name)
		}
	}
	for _, a := range body.Attributes {
		fmt.Fprintf(b, "%s%-*s = ", pad, width, a.Name)
		printExpr(b, a.Expr)
		b.WriteByte('\n')
	}
	for i, blk := range body.Blocks {
		if i > 0 || len(body.Attributes) > 0 {
			if topLevel || len(body.Attributes) > 0 || i > 0 {
				b.WriteByte('\n')
			}
		}
		printBlock(b, blk, indent)
	}
}

func printBlock(b *strings.Builder, blk *Block, indent int) {
	pad := strings.Repeat("  ", indent)
	b.WriteString(pad)
	b.WriteString(blk.Type)
	for _, l := range blk.Labels {
		fmt.Fprintf(b, " %q", l)
	}
	b.WriteString(" {\n")
	printBody(b, blk.Body, indent+1, false)
	b.WriteString(pad)
	b.WriteString("}\n")
}

func printExpr(b *strings.Builder, e Expression) {
	switch t := e.(type) {
	case *LiteralExpr:
		printLiteral(b, t.Val)
	case *TemplateExpr:
		b.WriteByte('"')
		for _, part := range t.Parts {
			if lit, ok := part.(*LiteralExpr); ok {
				if s, ok := lit.Val.(string); ok {
					b.WriteString(escapeString(s))
					continue
				}
			}
			b.WriteString("${")
			printExpr(b, part)
			b.WriteString("}")
		}
		b.WriteByte('"')
	case *ScopeTraversalExpr:
		b.WriteString(t.Traversal.String())
	case *RelativeTraversalExpr:
		printExpr(b, t.Source)
		b.WriteString(Traversal(t.Traversal).String())
	case *IndexExpr:
		printExpr(b, t.Collection)
		b.WriteByte('[')
		printExpr(b, t.Key)
		b.WriteByte(']')
	case *SplatExpr:
		printExpr(b, t.Source)
		b.WriteString("[*]")
		b.WriteString(Traversal(t.Each).String())
	case *FunctionCallExpr:
		b.WriteString(t.Name)
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, a)
		}
		if t.ExpandFinal {
			b.WriteString("...")
		}
		b.WriteByte(')')
	case *BinaryExpr:
		// Parenthesize operands whose precedence would otherwise cause the
		// parser to reassociate: strictly-lower on the left, lower-or-equal
		// on the right (operators are left-associative).
		printOperand(b, t.LHS, precedenceOf(t.Op), false)
		fmt.Fprintf(b, " %s ", t.Op)
		printOperand(b, t.RHS, precedenceOf(t.Op), true)
	case *UnaryExpr:
		if t.Op == OpNegate {
			b.WriteByte('-')
		} else {
			b.WriteByte('!')
		}
		printOperand(b, t.Operand, maxPrecedence, true)
	case *ConditionalExpr:
		printOperand(b, t.Cond, 1, true)
		b.WriteString(" ? ")
		printExpr(b, t.True)
		b.WriteString(" : ")
		printExpr(b, t.False)
	case *TupleExpr:
		b.WriteByte('[')
		for i, it := range t.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, it)
		}
		b.WriteByte(']')
	case *ObjectExpr:
		b.WriteByte('{')
		for i, it := range t.Items {
			if i > 0 {
				b.WriteString(", ")
			} else {
				b.WriteByte(' ')
			}
			printObjectKey(b, it.Key)
			b.WriteString(" = ")
			printExpr(b, it.Value)
		}
		if len(t.Items) > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('}')
	case *ForExpr:
		open, close := "[", "]"
		if t.KeyExpr != nil {
			open, close = "{", "}"
		}
		b.WriteString(open)
		b.WriteString("for ")
		if t.KeyVar != "" {
			b.WriteString(t.KeyVar)
			b.WriteString(", ")
		}
		b.WriteString(t.ValVar)
		b.WriteString(" in ")
		printExpr(b, t.Coll)
		b.WriteString(" : ")
		if t.KeyExpr != nil {
			printExpr(b, t.KeyExpr)
			b.WriteString(" => ")
		}
		printExpr(b, t.ValExpr)
		if t.CondExpr != nil {
			b.WriteString(" if ")
			printExpr(b, t.CondExpr)
		}
		b.WriteString(close)
	default:
		b.WriteString("<?expr>")
	}
}

// Operator precedence for parenthesization, matching the parser's levels
// (higher binds tighter).
var opPrecedence = map[BinaryOp]int{
	OpOr: 1, OpAnd: 2,
	OpEq: 3, OpNotEq: 3,
	OpLT: 4, OpGT: 4, OpLTE: 4, OpGTE: 4,
	OpAdd: 5, OpSub: 5,
	OpMul: 6, OpDiv: 6, OpMod: 6,
}

const maxPrecedence = 7

func precedenceOf(op BinaryOp) int { return opPrecedence[op] }

// printOperand prints a sub-expression of a binary/unary/conditional,
// parenthesizing when its precedence would change the parse.
func printOperand(b *strings.Builder, e Expression, parentPrec int, tightSide bool) {
	needParens := false
	switch t := e.(type) {
	case *BinaryExpr:
		p := precedenceOf(t.Op)
		needParens = p < parentPrec || (tightSide && p == parentPrec)
	case *ConditionalExpr:
		needParens = true
	}
	if needParens {
		b.WriteByte('(')
		printExpr(b, e)
		b.WriteByte(')')
		return
	}
	printExpr(b, e)
}

func printObjectKey(b *strings.Builder, key Expression) {
	if lit, ok := key.(*LiteralExpr); ok {
		if s, ok := lit.Val.(string); ok && isBareKey(s) {
			b.WriteString(s)
			return
		}
	}
	printExpr(b, key)
}

func isBareKey(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !isIdentStart(r) {
			return false
		}
		if i > 0 && !isIdentPart(r) {
			return false
		}
	}
	return true
}

func printLiteral(b *strings.Builder, v any) {
	switch t := v.(type) {
	case nil:
		b.WriteString("null")
	case bool:
		b.WriteString(strconv.FormatBool(t))
	case string:
		b.WriteByte('"')
		b.WriteString(escapeString(t))
		b.WriteByte('"')
	case float64:
		b.WriteString(formatNumber(t))
	case int:
		b.WriteString(strconv.Itoa(t))
	default:
		fmt.Fprintf(b, "%v", t)
	}
}

func formatNumber(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func escapeString(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		case '$':
			if i+1 < len(s) && s[i+1] == '{' {
				b.WriteString(`$$`)
			} else {
				b.WriteByte('$')
			}
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// --- AST construction helpers (used by the porter and the policy engine to
// synthesize programs programmatically) ----------------------------------

// NewLiteral builds a literal expression with no source range.
func NewLiteral(v any) *LiteralExpr {
	if i, ok := v.(int); ok {
		v = float64(i)
	}
	return &LiteralExpr{Val: v}
}

// NewTraversalExpr builds a scope traversal from a dotted path such as
// "var.region" plus optional extra steps.
func NewTraversalExpr(parts ...string) *ScopeTraversalExpr {
	if len(parts) == 0 {
		return &ScopeTraversalExpr{}
	}
	tr := Traversal{TraverseRoot{Name: parts[0]}}
	for _, p := range parts[1:] {
		tr = append(tr, TraverseAttr{Name: p})
	}
	return &ScopeTraversalExpr{Traversal: tr}
}

// NewTuple builds a tuple expression.
func NewTuple(items ...Expression) *TupleExpr { return &TupleExpr{Items: items} }

// NewAttribute builds an attribute definition.
func NewAttribute(name string, expr Expression) *Attribute {
	return &Attribute{Name: name, Expr: expr}
}

// NewBlock builds a block with the given type and labels.
func NewBlock(typ string, labels ...string) *Block {
	return &Block{Type: typ, Labels: labels, Body: &Body{}}
}

// SetAttr sets (or replaces) an attribute on a body.
func (b *Body) SetAttr(name string, expr Expression) {
	for _, a := range b.Attributes {
		if a.Name == name {
			a.Expr = expr
			return
		}
	}
	b.Attributes = append(b.Attributes, NewAttribute(name, expr))
}

// SortAttributes orders attributes by name; useful for canonical output of
// generated programs.
func (b *Body) SortAttributes() {
	sort.SliceStable(b.Attributes, func(i, j int) bool {
		return b.Attributes[i].Name < b.Attributes[j].Name
	})
}
