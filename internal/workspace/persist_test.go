package workspace_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cloudless/internal/statedb"
	"cloudless/internal/workspace"
)

// TestManagerRecoverRebuildsWorkspaces: workspaces opened with a Root
// persist their manifest; a fresh manager over the same root (a restarted
// daemon) reopens them with config, vars, and durable state intact.
func TestManagerRecoverRebuildsWorkspaces(t *testing.T) {
	root := t.TempDir()
	sim := newSim()
	ctx := context.Background()

	mgr := workspace.NewManager(workspace.ManagerOptions{
		Root: root, Cloud: sim, DefaultBackend: statedb.BackendWAL,
	})
	const n = 3
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("ws-%d", i)
		ws, err := mgr.Open(name, workspace.Config{Sources: tenantSource(name)})
		if err != nil {
			t.Fatal(err)
		}
		p, err := ws.Plan(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ws.Apply(ctx, p, workspace.ApplyOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Clean shutdown path: Close keeps the data dir (only Delete purges).
	if err := mgr.CloseAll(ctx); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new manager over the same root and cloud.
	mgr2 := workspace.NewManager(workspace.ManagerOptions{
		Root: root, Cloud: sim, DefaultBackend: statedb.BackendWAL,
	})
	rep, err := mgr2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("recover failures: %v", rep.Failed)
	}
	if len(rep.Reopened) != n {
		t.Fatalf("reopened %v, want %d workspaces", rep.Reopened, n)
	}
	for i := 0; i < n; i++ {
		ws, err := mgr2.Get(fmt.Sprintf("ws-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		// Durable state came back: the pre-restart apply's two resources.
		if snap := ws.DB().Snapshot(); len(snap.Addrs()) != 2 {
			t.Fatalf("ws-%d state after recover holds %d resources, want 2", i, len(snap.Addrs()))
		}
		// And the recovered config still plans cleanly to a no-op.
		p, err := ws.Plan(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if pending := p.Creates + p.Updates + p.Replaces + p.Deletes; pending != 0 {
			t.Fatalf("ws-%d plan after recover has %d pending ops, want 0", i, pending)
		}
	}
	if err := mgr2.CloseAll(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestManagerRecoverSkipsNonWorkspaceDirs: directories without a manifest
// (e.g. the job store root) are ignored, not errors.
func TestManagerRecoverSkipsNonWorkspaceDirs(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "jobs", "ws-a"), 0o755); err != nil {
		t.Fatal(err)
	}
	mgr := workspace.NewManager(workspace.ManagerOptions{Root: root, Cloud: newSim()})
	rep, err := mgr.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reopened) != 0 || len(rep.Failed) != 0 {
		t.Fatalf("recover over non-workspace dirs = %+v, want empty", rep)
	}
}

// TestManagerDeletePurges: Delete removes the workspace's directory so a
// recreated name inherits nothing, while Close preserves it for recovery.
func TestManagerDeletePurges(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()
	mgr := workspace.NewManager(workspace.ManagerOptions{Root: root, Cloud: newSim()})
	if _, err := mgr.Open("doomed", workspace.Config{Sources: tenantSource("doomed")}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "doomed", "workspace.json")); err != nil {
		t.Fatalf("manifest not persisted: %v", err)
	}
	if err := mgr.Delete(ctx, "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "doomed")); !os.IsNotExist(err) {
		t.Fatalf("workspace dir survived Delete: %v", err)
	}
	// Recover finds nothing to rebuild.
	rep, err := mgr.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reopened) != 0 {
		t.Fatalf("deleted workspace recovered: %v", rep.Reopened)
	}
}
