package workspace

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// manifestFile is the persisted workspace definition under Root/<name>/.
// It is what makes a daemon restart meaningful: without it the manager
// would come back empty and every replayed job would point at a workspace
// nobody can rebuild.
const manifestFile = "workspace.json"

// manifest is the durable subset of Config — the declarative inputs a
// restarted daemon needs to rebuild the workspace. Runtime handles (Cloud,
// Telemetry, Modules, InitialState) are re-wired by the manager; path
// fields (JournalPath, StateDir) are re-derived from Root so a relocated
// data dir keeps working.
type manifest struct {
	Sources      map[string]string `json:"sources,omitempty"`
	Dir          string            `json:"dir,omitempty"`
	Vars         map[string]any    `json:"vars,omitempty"`
	GlobalLock   bool              `json:"global_lock,omitempty"`
	StateBackend string            `json:"state_backend,omitempty"`
	Policies     string            `json:"policies,omitempty"`
	Principal    string            `json:"principal,omitempty"`

	ProviderCacheTTL    time.Duration `json:"provider_cache_ttl,omitempty"`
	ProviderMaxRetries  int           `json:"provider_max_retries,omitempty"`
	ProviderRetryBase   time.Duration `json:"provider_retry_base,omitempty"`
	ProviderMaxInFlight int           `json:"provider_max_in_flight,omitempty"`

	GuardApplies            bool    `json:"guard_applies,omitempty"`
	GuardCanary             float64 `json:"guard_canary,omitempty"`
	GuardMaxFailures        int     `json:"guard_max_failures,omitempty"`
	GuardMaxFailureFraction float64 `json:"guard_max_failure_fraction,omitempty"`
	HealthProbeTimeoutMS    int64   `json:"health_probe_timeout_ms,omitempty"`
	HealthProbeIntervalMS   int64   `json:"health_probe_interval_ms,omitempty"`
}

// persist writes the workspace manifest atomically (tmp + fsync + rename)
// so a crash mid-write leaves either the old manifest or the new one,
// never a torn file.
func (m *Manager) persist(name string, cfg Config) error {
	if m.opts.Root == "" {
		return nil
	}
	man := manifest{
		Sources: cfg.Sources, Dir: cfg.Dir, Vars: cfg.Vars,
		GlobalLock: cfg.GlobalLock, StateBackend: cfg.StateBackend,
		Policies: cfg.Policies, Principal: cfg.Principal,
		ProviderCacheTTL: cfg.ProviderCacheTTL, ProviderMaxRetries: cfg.ProviderMaxRetries,
		ProviderRetryBase: cfg.ProviderRetryBase, ProviderMaxInFlight: cfg.ProviderMaxInFlight,
		GuardApplies: cfg.GuardApplies, GuardCanary: cfg.GuardCanary,
		GuardMaxFailures:        cfg.GuardMaxFailures,
		GuardMaxFailureFraction: cfg.GuardMaxFailureFraction,
		HealthProbeTimeoutMS:    cfg.HealthProbeTimeout.Milliseconds(),
		HealthProbeIntervalMS:   cfg.HealthProbeInterval.Milliseconds(),
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("cloudless: persist workspace %s: %w", name, err)
	}
	dir := filepath.Join(m.opts.Root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cloudless: persist workspace %s: %w", name, err)
	}
	path := filepath.Join(dir, manifestFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cloudless: persist workspace %s: %w", name, err)
	}
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cloudless: persist workspace %s: %w", name, err)
	}
	return nil
}

// loadManifest reads a persisted workspace definition back into a Config
// skeleton (runtime handles unset — build fills them from defaults).
func (m *Manager) loadManifest(name string) (Config, error) {
	raw, err := os.ReadFile(filepath.Join(m.opts.Root, name, manifestFile))
	if err != nil {
		return Config{}, err
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return Config{}, fmt.Errorf("cloudless: workspace %s manifest: %w", name, err)
	}
	return Config{
		Sources: man.Sources, Dir: man.Dir, Vars: man.Vars,
		GlobalLock: man.GlobalLock, StateBackend: man.StateBackend,
		Policies: man.Policies, Principal: man.Principal,
		ProviderCacheTTL: man.ProviderCacheTTL, ProviderMaxRetries: man.ProviderMaxRetries,
		ProviderRetryBase: man.ProviderRetryBase, ProviderMaxInFlight: man.ProviderMaxInFlight,
		GuardApplies: man.GuardApplies, GuardCanary: man.GuardCanary,
		GuardMaxFailures:        man.GuardMaxFailures,
		GuardMaxFailureFraction: man.GuardMaxFailureFraction,
		HealthProbeTimeout:      time.Duration(man.HealthProbeTimeoutMS) * time.Millisecond,
		HealthProbeInterval:     time.Duration(man.HealthProbeIntervalMS) * time.Millisecond,
	}, nil
}

// RecoverReport summarizes a Manager.Recover pass.
type RecoverReport struct {
	// Reopened lists workspaces rebuilt from persisted manifests, sorted.
	Reopened []string
	// Journals lists reopened workspaces that have a stale apply journal
	// (they were mid-apply at the crash) and need apply-level recovery.
	Journals []string
	// Failed maps workspace names that could not be reopened to the error.
	Failed map[string]error
}

// Recover scans the data root for persisted workspace manifests and
// reopens every workspace it finds, restoring durable state (wal backend)
// and detecting stale apply journals. Call it once at daemon startup,
// before the HTTP listener accepts traffic. A workspace that fails to
// rebuild is reported in Failed and skipped; the rest still come up.
func (m *Manager) Recover(ctx context.Context) (*RecoverReport, error) {
	rep := &RecoverReport{Failed: map[string]error{}}
	if m.opts.Root == "" {
		return rep, nil
	}
	entries, err := os.ReadDir(m.opts.Root)
	if os.IsNotExist(err) {
		return rep, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cloudless: recover workspaces: %w", err)
	}
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		name := e.Name()
		if !e.IsDir() || !ValidName(name) {
			continue
		}
		cfg, err := m.loadManifest(name)
		if os.IsNotExist(err) {
			continue // a dir without a manifest isn't a workspace (e.g. the job store root)
		}
		if err != nil {
			rep.Failed[name] = err
			continue
		}
		w, err := m.Open(name, cfg)
		if err != nil {
			rep.Failed[name] = err
			continue
		}
		rep.Reopened = append(rep.Reopened, name)
		if w.HasStaleJournal() {
			rep.Journals = append(rep.Journals, name)
		}
	}
	sort.Strings(rep.Reopened)
	sort.Strings(rep.Journals)
	return rep, nil
}

// ErrWorkspaceBusy is returned by Delete while the workspace still has
// non-terminal jobs (the server maps it to HTTP 409).
type ErrWorkspaceBusy struct {
	Name   string
	Active int
}

// Error implements error.
func (e *ErrWorkspaceBusy) Error() string {
	return fmt.Sprintf("cloudless: workspace %s has %d active jobs; cancel or drain them first", e.Name, e.Active)
}

// Delete drain-closes a workspace and purges its data directory —
// manifest, journals, durable state — so a later workspace reusing the
// name inherits nothing. Contrast Close/CloseAll (the shutdown path),
// which keep the directory so the next daemon start can recover. The
// caller gates on active jobs (see ErrWorkspaceBusy) before calling.
func (m *Manager) Delete(ctx context.Context, name string) error {
	if err := m.Close(ctx, name); err != nil {
		return err
	}
	if m.opts.Root == "" {
		return nil
	}
	if err := os.RemoveAll(filepath.Join(m.opts.Root, name)); err != nil {
		return fmt.Errorf("cloudless: delete workspace %s: %w", name, err)
	}
	return nil
}
