package workspace

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"cloudless/internal/cloud"
	"cloudless/internal/statedb"
	"cloudless/internal/telemetry"
)

// ManagerOptions configure NewManager.
type ManagerOptions struct {
	// Root is the data directory: each workspace gets Root/<name>/ holding
	// its journal, flight-recorder artifact, and (for the wal backend) its
	// durable state log. Empty runs every workspace without durability
	// (no journal, memory-class state only) — fine for tests.
	Root string
	// Cloud is the default control plane for workspaces opened without
	// their own. Pass the raw endpoint (sim or HTTP client), not a
	// pre-wrapped runtime: each workspace wraps it in its own
	// provider.Runtime so tenants get separate AIMD windows, read caches,
	// and retry budgets over the shared transport.
	Cloud cloud.Interface
	// DefaultBackend is the statedb backend for workspaces that don't pick
	// one ("" keeps the engine default; "wal" requires Root).
	DefaultBackend string
	// Defaults seeds per-workspace knobs (provider limits, guard settings,
	// policies) for configs that leave them zero. Name, Sources, Dir,
	// Vars, Cloud, and path fields in Defaults are ignored.
	Defaults Config
}

// Manager hosts many named workspaces in one process. Each workspace owns
// its full engine stack — statedb, event bus, replan cache, provider
// runtime, journal, telemetry registry — so tenants are isolated by
// construction: no shared mutable state exists between two workspaces
// beyond the cloud endpoint itself. All methods are safe for concurrent
// use.
type Manager struct {
	opts ManagerOptions

	mu         sync.RWMutex
	workspaces map[string]*Workspace
}

// NewManager builds an empty manager.
func NewManager(opts ManagerOptions) *Manager {
	return &Manager{opts: opts, workspaces: map[string]*Workspace{}}
}

// ValidName reports whether a workspace name is acceptable: 1-64 chars of
// letters, digits, '-', '_', '.' — no path separators, not "." or "..", so
// names embed safely in filesystem paths and URLs.
func ValidName(name string) bool {
	if name == "" || len(name) > 64 || name == "." || name == ".." {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}

// ErrWorkspaceExists is returned by Open for a name already hosted.
type ErrWorkspaceExists struct{ Name string }

// Error implements error.
func (e *ErrWorkspaceExists) Error() string {
	return "cloudless: workspace " + e.Name + " already exists"
}

// ErrWorkspaceNotFound is returned for names the manager does not host.
type ErrWorkspaceNotFound struct{ Name string }

// Error implements error.
func (e *ErrWorkspaceNotFound) Error() string {
	return "cloudless: workspace " + e.Name + " not found"
}

// Open creates and hosts a workspace under the given name. The config's
// zero fields inherit the manager's defaults; when a Root is configured
// the workspace gets its own journal (Root/<name>/run.journal) and, for
// the wal backend, its own durable state dir. Opening a name that is
// already hosted fails with *ErrWorkspaceExists.
func (m *Manager) Open(name string, cfg Config) (*Workspace, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("cloudless: invalid workspace name %q", name)
	}
	// Reserve the name first so two concurrent Opens can't both wire an
	// engine for it; the slot is filled (or vacated) below.
	m.mu.Lock()
	if _, ok := m.workspaces[name]; ok {
		m.mu.Unlock()
		return nil, &ErrWorkspaceExists{Name: name}
	}
	m.workspaces[name] = nil
	m.mu.Unlock()

	w, err := m.build(name, cfg)
	if err == nil {
		// Persist the caller's declarative config (pre-merge) so a restarted
		// daemon rebuilds the workspace under its then-current defaults.
		if perr := m.persist(name, cfg); perr != nil {
			w.Close(context.Background())
			w, err = nil, perr
		}
	}

	m.mu.Lock()
	if err != nil {
		delete(m.workspaces, name)
	} else {
		m.workspaces[name] = w
	}
	m.mu.Unlock()
	return w, err
}

// build wires one workspace from the merged config, outside the manager
// lock (engine/journal setup can touch disk).
func (m *Manager) build(name string, cfg Config) (*Workspace, error) {
	d := m.opts.Defaults
	cfg.Name = name
	if cfg.Cloud == nil {
		cfg.Cloud = m.opts.Cloud
	}
	if cfg.StateBackend == "" {
		cfg.StateBackend = m.opts.DefaultBackend
	}
	if cfg.Policies == "" {
		cfg.Policies = d.Policies
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRecorder(telemetry.Config{})
	}
	if cfg.ProviderCacheTTL == 0 {
		cfg.ProviderCacheTTL = d.ProviderCacheTTL
	}
	if cfg.ProviderMaxRetries == 0 {
		cfg.ProviderMaxRetries = d.ProviderMaxRetries
	}
	if cfg.ProviderRetryBase == 0 {
		cfg.ProviderRetryBase = d.ProviderRetryBase
	}
	if cfg.ProviderMaxInFlight == 0 {
		cfg.ProviderMaxInFlight = d.ProviderMaxInFlight
	}
	if d.GuardApplies && !cfg.GuardApplies {
		cfg.GuardApplies = true
		cfg.GuardCanary = d.GuardCanary
		cfg.GuardMaxFailures = d.GuardMaxFailures
		cfg.GuardMaxFailureFraction = d.GuardMaxFailureFraction
		cfg.HealthProbeTimeout = d.HealthProbeTimeout
		cfg.HealthProbeInterval = d.HealthProbeInterval
	}
	if m.opts.Root != "" {
		dir := filepath.Join(m.opts.Root, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cloudless: workspace %s: %w", name, err)
		}
		if cfg.JournalPath == "" {
			cfg.JournalPath = filepath.Join(dir, "run.journal")
		}
		if cfg.StateBackend == statedb.BackendWAL && cfg.StateDir == "" {
			cfg.StateDir = filepath.Join(dir, "state.wal")
		}
	}
	return New(cfg)
}

// Get returns a hosted workspace, or *ErrWorkspaceNotFound.
func (m *Manager) Get(name string) (*Workspace, error) {
	m.mu.RLock()
	w := m.workspaces[name]
	m.mu.RUnlock()
	if w == nil {
		return nil, &ErrWorkspaceNotFound{Name: name}
	}
	return w, nil
}

// List returns hosted workspace names, sorted.
func (m *Manager) List() []string {
	m.mu.RLock()
	out := make([]string, 0, len(m.workspaces))
	for name, w := range m.workspaces {
		if w != nil {
			out = append(out, name)
		}
	}
	m.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len reports the hosted workspace count.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, w := range m.workspaces {
		if w != nil {
			n++
		}
	}
	return n
}

// Close drains and closes one workspace, then removes it from the manager.
// When ctx expires mid-drain the workspace stays hosted (and mid-drain) so
// a later Close can finish the job.
func (m *Manager) Close(ctx context.Context, name string) error {
	w, err := m.Get(name)
	if err != nil {
		return err
	}
	if err := w.Close(ctx); err != nil {
		if ctx.Err() != nil {
			return err // still draining; keep it hosted for a retry
		}
		// Released with an error (e.g. flight-recorder flush): the
		// workspace is unusable either way, so drop it.
	}
	m.mu.Lock()
	delete(m.workspaces, name)
	m.mu.Unlock()
	return err
}

// CloseAll drains every hosted workspace concurrently and returns the
// first error (workspaces that time out stay hosted, as in Close).
func (m *Manager) CloseAll(ctx context.Context) error {
	names := m.List()
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			errs[i] = m.Close(ctx, name)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
