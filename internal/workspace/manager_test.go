package workspace_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"cloudless/internal/cloud"
	"cloudless/internal/events"
	"cloudless/internal/workspace"
)

func newSim() cloud.Interface {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	return cloud.NewSim(opts)
}

// tenantSource gives each tenant its own tiny two-resource program. Names
// embed the tenant so the shared simulated account stays readable, though
// isolation must hold regardless.
func tenantSource(tenant string) map[string]string {
	return map[string]string{"main.ccl": fmt.Sprintf(`
resource "aws_vpc" "net" {
  name       = "net-%[1]s"
  cidr_block = "10.0.0.0/16"
}
resource "aws_subnet" "app" {
  vpc_id     = aws_vpc.net.id
  cidr_block = cidrsubnet(aws_vpc.net.cidr_block, 8, 1)
}
output "vpc_id" { value = aws_vpc.net.id }
`, tenant)}
}

// TestManagerHostsManyIsolatedWorkspaces drives 100 workspaces through
// open -> plan -> apply concurrently on one shared cloud endpoint and then
// checks there is zero cross-tenant observation: each workspace's golden
// state holds exactly its own two resources, serials advanced independently,
// and each event bus carries exactly one run's events.
func TestManagerHostsManyIsolatedWorkspaces(t *testing.T) {
	mgr := workspace.NewManager(workspace.ManagerOptions{Cloud: newSim()})
	ctx := context.Background()

	const n = 100
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%03d", i)
			ws, err := mgr.Open(name, workspace.Config{Sources: tenantSource(name)})
			if err != nil {
				errs[i] = err
				return
			}
			p, err := ws.Plan(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("%s plan: %w", name, err)
				return
			}
			if _, _, err := ws.Apply(ctx, p, workspace.ApplyOptions{}); err != nil {
				errs[i] = fmt.Errorf("%s apply: %w", name, err)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := mgr.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}

	vpcIDs := map[string]string{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("tenant-%03d", i)
		ws, err := mgr.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		snap := ws.DB().Snapshot()
		if len(snap.Addrs()) != 2 {
			t.Errorf("%s: state holds %d resources, want 2 (%v)", name, len(snap.Addrs()), snap.Addrs())
		}
		if snap.Serial < 1 {
			t.Errorf("%s: serial = %d, want >= 1", name, snap.Serial)
		}
		id, _ := ws.Outputs()["vpc_id"].(string)
		if id == "" {
			t.Errorf("%s: no vpc_id output", name)
		} else if prev, dup := vpcIDs[id]; dup {
			t.Errorf("%s: vpc_id %s already owned by %s", name, id, prev)
		} else {
			vpcIDs[id] = name
		}
		// Event-plane isolation: the bus must have seen exactly this
		// workspace's single run, nothing from its 99 neighbours.
		runs := map[string]bool{}
		finishes := 0
		for _, e := range ws.Events().Since(0) {
			if e.Run != "" {
				runs[e.Run] = true
			}
			if e.Kind == "apply.run_finish" {
				finishes++
			}
		}
		if len(runs) != 1 || finishes != 1 {
			t.Errorf("%s: bus saw %d runs / %d run_finish events, want 1/1", name, len(runs), finishes)
		}
	}

	if err := mgr.CloseAll(ctx); err != nil {
		t.Fatalf("CloseAll: %v", err)
	}
	if got := mgr.Len(); got != 0 {
		t.Fatalf("Len after CloseAll = %d, want 0", got)
	}
}

func TestManagerOpenValidation(t *testing.T) {
	mgr := workspace.NewManager(workspace.ManagerOptions{Cloud: newSim()})
	if _, err := mgr.Open("../evil", workspace.Config{Sources: tenantSource("x")}); err == nil {
		t.Fatal("path-traversal name accepted")
	}
	if _, err := mgr.Open("", workspace.Config{Sources: tenantSource("x")}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := mgr.Open("a", workspace.Config{Sources: tenantSource("a")}); err != nil {
		t.Fatal(err)
	}
	_, err := mgr.Open("a", workspace.Config{Sources: tenantSource("a")})
	var exists *workspace.ErrWorkspaceExists
	if !errors.As(err, &exists) {
		t.Fatalf("duplicate open: got %v, want *ErrWorkspaceExists", err)
	}
	_, err = mgr.Get("missing")
	var notFound *workspace.ErrWorkspaceNotFound
	if !errors.As(err, &notFound) {
		t.Fatalf("Get(missing): got %v, want *ErrWorkspaceNotFound", err)
	}
}

// TestWorkspaceCloseRejectsNewWork proves the drain gate: after Close
// returns, every lifecycle entry point fails with *ErrClosed and a second
// Close is an idempotent no-op.
func TestWorkspaceCloseRejectsNewWork(t *testing.T) {
	mgr := workspace.NewManager(workspace.ManagerOptions{Cloud: newSim()})
	ctx := context.Background()
	ws, err := mgr.Open("solo", workspace.Config{Sources: tenantSource("solo")})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(ctx, "solo"); err != nil {
		t.Fatalf("close: %v", err)
	}
	var closed *workspace.ErrClosed
	if _, err := ws.Plan(ctx); !errors.As(err, &closed) {
		t.Fatalf("Plan after close: got %v, want *ErrClosed", err)
	}
	if closed.Name != "solo" {
		t.Fatalf("ErrClosed.Name = %q", closed.Name)
	}
	if _, err := ws.ScanDrift(ctx); !errors.As(err, &closed) {
		t.Fatalf("ScanDrift after close: got %v, want *ErrClosed", err)
	}
	if err := ws.Close(ctx); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestWorkspaceCloseDrainsInFlight races many appliers against Close under
// the race detector: ops admitted before Close completes fully; ops arriving
// after are refused; Close itself returns only once nothing is in flight.
func TestWorkspaceCloseDrainsInFlight(t *testing.T) {
	mgr := workspace.NewManager(workspace.ManagerOptions{Cloud: newSim()})
	ctx := context.Background()
	ws, err := mgr.Open("drain", workspace.Config{Sources: tenantSource("drain")})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ws.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]error, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if i == 0 {
				_, _, results[i] = ws.Apply(ctx, p, workspace.ApplyOptions{})
				return
			}
			_, results[i] = ws.Plan(ctx)
		}(i)
	}
	close(start)
	if err := ws.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	// Every op either ran to completion before the drain or was refused with
	// the typed error — never a torn in-between.
	var closed *workspace.ErrClosed
	for i, err := range results {
		if err != nil && !errors.As(err, &closed) {
			t.Errorf("op %d: unexpected error %v", i, err)
		}
	}
	// The bus is closed with the workspace; subscriptions observe EOF rather
	// than hanging.
	sub := ws.Events().Subscribe(events.Filter{}, 1)
	if sub != nil {
		sub.Close()
	}
}
