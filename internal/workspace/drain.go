package workspace

import (
	"context"
	"sync"
)

// drainGate coordinates a draining close: lifecycle operations register
// through begin/end, close flips the gate so new operations fail fast,
// waits until the in-flight count hits zero, and elects exactly one caller
// to release resources. Everybody else (concurrent and repeated closers)
// waits for that release and returns its error.
type drainGate struct {
	mu          sync.Mutex
	inflight    int
	closing     bool
	drainClosed bool
	releasing   bool
	closeErr    error
	drained     chan struct{} // closed when closing && inflight == 0
	done        chan struct{} // closed after the elected releaser finishes
}

func (g *drainGate) init() {
	g.drained = make(chan struct{})
	g.done = make(chan struct{})
}

// begin admits one operation, or fails with *ErrClosed once close has begun.
func (g *drainGate) begin(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closing {
		return &ErrClosed{Name: name}
	}
	g.inflight++
	return nil
}

// end retires one operation admitted by begin.
func (g *drainGate) end() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inflight--
	if g.closing && g.inflight == 0 && !g.drainClosed {
		g.drainClosed = true
		close(g.drained)
	}
}

// close starts (or joins) the drain. It returns (true, nil) to exactly one
// caller — the elected releaser, which must call finish after freeing
// resources — and (false, err) to everyone else: ctx.Err() if the wait was
// cut short, otherwise the releaser's error once it finishes.
func (g *drainGate) close(ctx context.Context) (release bool, err error) {
	g.mu.Lock()
	if !g.closing {
		g.closing = true
		if g.inflight == 0 && !g.drainClosed {
			g.drainClosed = true
			close(g.drained)
		}
	}
	g.mu.Unlock()

	select {
	case <-g.drained:
	case <-ctx.Done():
		return false, ctx.Err()
	}

	g.mu.Lock()
	if !g.releasing {
		g.releasing = true
		g.mu.Unlock()
		return true, nil
	}
	g.mu.Unlock()
	select {
	case <-g.done:
		return false, g.closeErr
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// finish records the release outcome and unblocks every waiting closer.
func (g *drainGate) finish(err error) {
	g.mu.Lock()
	g.closeErr = err
	g.mu.Unlock()
	close(g.done)
}
