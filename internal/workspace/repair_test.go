package workspace

import (
	"context"
	"testing"

	"cloudless/internal/cloud"
	"cloudless/internal/drift"
	"cloudless/internal/workload"
)

// TestReconcileRepairFailureKeepsRecord pins the "never make things worse"
// bookkeeping contract: repairing a foreign-deleted resource plans a create
// (refresh prunes the dead record), so when that create fails its health
// gate and the guard rolls it back, the address would otherwise vanish from
// state — hiding the loss from every future scan and making the failed
// repair read as convergence. RepairDrift must restore the pre-repair
// record so the drift stays visible and retryable.
func TestReconcileRepairFailureKeepsRecord(t *testing.T) {
	ctx := context.Background()
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	sim := cloud.NewSim(opts)
	ws, err := New(Config{Name: "rk", Sources: workload.WebTier("rk", 2, 2), Cloud: sim})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close(ctx)
	p, err := ws.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ws.Apply(ctx, p, ApplyOptions{}); err != nil {
		t.Fatal(err)
	}

	// Foreign-delete the load balancer (the tier's only leaf the sim's
	// referential integrity allows out) and poison every recreate.
	sim.InjectUnhealthy(cloud.UnhealthySpec{Count: 100, Type: "aws_load_balancer"})
	lbs, err := sim.List(ctx, "aws_load_balancer", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, lb := range lbs {
		if err := sim.Delete(ctx, "aws_load_balancer", lb.ID, "intruder"); err != nil {
			t.Fatal(err)
		}
	}

	const addr = "aws_load_balancer.rk"
	rep, err := ws.ScanDriftAddrs(ctx, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Items) != 1 || rep.Items[0].Kind != drift.Deleted {
		t.Fatalf("scan = %+v, want one deleted-drift item", rep.Items)
	}

	out, rerr := ws.RepairDrift(ctx, rep)
	if rerr == nil {
		t.Fatal("repair of a poisoned recreate succeeded, want gate failure")
	}
	if out == nil || out.Errors[addr] == "" {
		t.Fatalf("repair outcome %+v lacks the per-address gate error", out)
	}
	if !out.Reverted {
		t.Fatalf("failed repair did not roll back: %+v", out)
	}

	// The contract: the failed repair leaves the managed estate exactly as
	// drifted as it found it — record retained, drift still detectable.
	if ws.db.Snapshot().Get(addr) == nil {
		t.Fatal("failed repair dropped the resource from state: the loss is now invisible to every future scan")
	}
	rep2, err := ws.ScanDriftAddrs(ctx, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Items) != 1 || rep2.Items[0].Kind != drift.Deleted {
		t.Fatalf("post-failure scan = %+v, want the deleted-drift item still visible", rep2.Items)
	}

	// Once the fault clears, the same repair path converges.
	sim.ClearInjections()
	rep3, err := ws.ScanDriftAddrs(ctx, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.RepairDrift(ctx, rep3); err != nil {
		t.Fatalf("repair after fault cleared: %v", err)
	}
	rep4, err := ws.ScanDriftAddrs(ctx, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep4.Items) != 0 {
		t.Fatalf("drift persisted after clean repair: %+v", rep4.Items)
	}
}
