package workspace

import (
	"context"
	"errors"
	"sort"
	"strings"

	"cloudless/internal/drift"
	"cloudless/internal/guard"
	"cloudless/internal/plan"
	"cloudless/internal/reconcile"
	"cloudless/internal/statedb"
)

// repairGuard is the guard configuration forced onto auto-repairs when the
// workspace itself was created without GuardApplies: a self-healing loop
// must never push an unguarded change. A 25% canary wave with rollback on
// failure keeps a bad repair's blast radius small and reverted.
var repairGuard = guard.Options{Canary: 0.25}

// ReconcilerOptions configures StartReconciler.
type ReconcilerOptions struct {
	// Mode is reconcile.ModeRepair (default) or reconcile.ModeDetect.
	Mode string
	// Watermark resumes the activity cursor (-1 = anchor at the log tail).
	Watermark int64
	// OnCheckpoint receives the acknowledged watermark as it advances; the
	// daemon persists it in the jobs journal so a restart resumes here.
	OnCheckpoint func(watermark int64)
	// Tuning overrides the controller's timing knobs (zero = defaults).
	Tuning reconcile.Tuning
}

// StartReconciler starts the workspace's continuous reconciliation
// controller (DESIGN.md S29). At most one controller runs per workspace;
// starting a second one fails. The controller's scans and repairs run as
// ordinary lifecycle operations through the drain gate, and Close stops the
// controller before draining.
func (w *Workspace) StartReconciler(opts ReconcilerOptions) (*reconcile.Controller, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	w.recMu.Lock()
	defer w.recMu.Unlock()
	if w.rec != nil {
		return nil, errors.New("cloudless: reconciler already running for workspace " + w.name)
	}
	cfg := reconcile.Config{
		Name:      w.name,
		Principal: w.principal,
		Cloud:     w.cloudAPI,
		Bus:       w.bus,
		Snapshot:  w.db.Snapshot,
		Verify:    w.ScanDriftAddrs,
		FullScan: func(ctx context.Context) (*drift.Report, error) {
			return w.ScanDrift(ctx)
		},
		Repair:       w.RepairDrift,
		Mode:         opts.Mode,
		Watermark:    opts.Watermark,
		OnCheckpoint: opts.OnCheckpoint,
		Tuning:       opts.Tuning,
	}
	if w.telemetry != nil {
		cfg.Registry = w.telemetry.Metrics()
	}
	c, err := reconcile.Start(cfg)
	if err != nil {
		return nil, err
	}
	w.rec = c
	return c, nil
}

// Reconciler returns the running controller, or nil.
func (w *Workspace) Reconciler() *reconcile.Controller {
	w.recMu.Lock()
	defer w.recMu.Unlock()
	return w.rec
}

// StopReconciler stops the controller if one is running. It is idempotent
// and safe to call on a workspace that never started one.
func (w *Workspace) StopReconciler(ctx context.Context) error {
	w.recMu.Lock()
	c := w.rec
	w.rec = nil
	w.recMu.Unlock()
	if c == nil {
		return nil
	}
	return c.Stop(ctx)
}

// ScanDriftAddrs runs a scoped drift verification over just the given state
// addresses — the cheap, targeted counterpart of ScanDrift that the
// reconciler uses to confirm event-implied drift.
func (w *Workspace) ScanDriftAddrs(ctx context.Context, addrs []string) (*drift.Report, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	ctx, span := w.lifecycle(ctx, "lifecycle.scan_drift_addrs")
	span.SetAttr("addrs", len(addrs))
	defer span.End()
	rep, err := drift.ScanAddrs(ctx, w.cloudAPI, w.db.Snapshot(), addrs)
	if rep != nil {
		span.SetAttr("drift_items", len(rep.Items))
	}
	return rep, err
}

// RepairDrift reverts a drift report by re-planning the impacted resources
// (the refresh folds the drifted cloud attributes in, so the plan is exactly
// the set of operations restoring declared intent) and applying the result
// through the guarded apply path. It fails with *drift.ErrStaleReport when
// the golden state has advanced past the report's baseline.
func (w *Workspace) RepairDrift(ctx context.Context, rep *drift.Report) (*reconcile.RepairOutcome, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	ctx, span := w.lifecycle(ctx, "lifecycle.repair_drift")
	defer span.End()

	preSnap := w.db.Snapshot()
	if rep.BaseSerial > 0 && preSnap.Serial != rep.BaseSerial {
		return nil, &drift.ErrStaleReport{ReportSerial: rep.BaseSerial, CurrentSerial: preSnap.Serial}
	}

	// Collapse instance addresses ("app.web[3]") to the resource-level
	// addresses plan.Options.ImpactScope expects.
	seen := map[string]bool{}
	var addrs []string
	for _, it := range rep.Items {
		if it.Addr == "" {
			continue // unmanaged: import/adopt is a policy decision, not a repair
		}
		addr := it.Addr
		if i := strings.IndexByte(addr, '['); i >= 0 {
			addr = addr[:i]
		}
		if !seen[addr] {
			seen[addr] = true
			addrs = append(addrs, addr)
		}
	}
	if len(addrs) == 0 {
		return &reconcile.RepairOutcome{}, nil
	}
	sort.Strings(addrs)
	span.SetAttr("repair_scope", len(addrs))

	p, err := w.PlanIncremental(ctx, addrs...)
	if err != nil {
		return nil, err
	}
	guardOpts := w.guardOpts
	if guardOpts == nil {
		g := repairGuard
		guardOpts = &g
	}
	res, _, aerr := w.Apply(ctx, p, ApplyOptions{Guard: guardOpts})
	out := &reconcile.RepairOutcome{}
	if res != nil {
		out.Applied = res.Applied
		out.Reverted = res.Reverted
		if len(res.Errors) > 0 {
			out.Errors = make(map[string]string, len(res.Errors))
			for addr, e := range res.Errors {
				out.Errors[addr] = e.Error()
			}
		}
	}
	// A concurrent apply moving the base serial under us is the same
	// condition ErrStaleReport names at the report level: translate it so
	// callers (the controller) re-verify instead of counting a failure.
	var sbe *statedb.StaleBaseError
	if errors.As(aerr, &sbe) {
		return out, &drift.ErrStaleReport{ReportSerial: sbe.Base, CurrentSerial: sbe.Committed}
	}

	// A failed repair must never shrink the estate. Repairing a deleted
	// resource plans a create (the refresh pruned the dead record), so when
	// that create fails its health gate and rolls back, the commit drops the
	// address from state entirely — the drift would vanish from every future
	// scan and a failed repair would read as convergence. Restore the
	// pre-repair records for failed creates so the loss stays visible as
	// deleted-drift and the controller keeps retrying (or backs off).
	if res != nil && len(res.Errors) > 0 {
		post := w.db.Snapshot()
		var restore []string
		for addr := range res.Errors {
			ch := p.Changes[addr]
			if ch == nil || ch.Action != plan.ActionCreate {
				continue
			}
			if post.Get(addr) == nil && preSnap.Get(addr) != nil {
				restore = append(restore, addr)
			}
		}
		if len(restore) > 0 {
			sort.Strings(restore)
			txn := w.db.Begin("repair-restore")
			if err := txn.Lock(ctx, restore...); err == nil {
				for _, addr := range restore {
					_ = txn.Put(preSnap.Get(addr))
				}
				_, _ = txn.Commit()
			}
			txn.Abort()
		}
	}
	return out, aerr
}
