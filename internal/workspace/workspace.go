// Package workspace is the hostable per-tenant core of cloudless (DESIGN.md
// S27). A Workspace owns everything one managed infrastructure needs — the
// expanded configuration, a golden-state engine, a policy engine, a drift
// watcher, a journal path, an event bus, a flight recorder, a replan cache,
// and a provider runtime with its own AIMD gates and read cache — so many
// workspaces can live in one process with per-tenant isolation by
// construction. The public cloudless.Stack facade is a thin single-workspace
// client of this core; cloudlessd's Manager hosts many of them.
package workspace

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/diagnose"
	"cloudless/internal/drift"
	"cloudless/internal/eval"
	"cloudless/internal/events"
	"cloudless/internal/guard"
	"cloudless/internal/hcl"
	"cloudless/internal/health"
	"cloudless/internal/plan"
	"cloudless/internal/policy"
	"cloudless/internal/provider"
	"cloudless/internal/reconcile"
	"cloudless/internal/rollback"
	"cloudless/internal/state"
	"cloudless/internal/statedb"
	"cloudless/internal/telemetry"
	"cloudless/internal/validate"
)

// Config configures New. It mirrors the public cloudless.Options field for
// field (the facade converts one into the other) plus the workspace name.
type Config struct {
	// Name identifies the workspace (tenant) in journals, events, and the
	// server API. Empty is allowed for single-workspace (facade) use.
	Name string
	// Sources maps filename to CCL source. Exactly one of Sources or Dir
	// must be set.
	Sources map[string]string
	// Dir loads all .ccl files from a directory.
	Dir string
	// Vars supplies input variable values (plain Go values).
	Vars map[string]any
	// Cloud is the control plane to deploy onto. Required. A raw endpoint
	// (simulator or HTTP client) is wrapped in this workspace's own
	// provider runtime — separate AIMD gates, read cache, and retry budget
	// per tenant; passing an existing *provider.Runtime shares it instead.
	Cloud cloud.Interface
	// Modules resolves module sources; defaults to directory resolution
	// relative to Dir when Dir is set.
	Modules config.ModuleResolver
	// InitialState seeds the golden-state database.
	InitialState *state.State
	// GlobalLock switches the lock manager to whole-infrastructure locking.
	GlobalLock bool
	// StateBackend selects the golden-state storage engine ("memory",
	// "mvcc", "wal").
	StateBackend string
	// StateDir is the durable directory for the wal backend.
	StateDir string
	// JournalPath makes mutating operations crash-safe (see cloudless.Options).
	JournalPath string
	// Policies is CCL policy source enforced across the lifecycle.
	Policies string
	// Principal identifies this workspace's changes in cloud activity logs.
	Principal string
	// Telemetry records lifecycle spans and metrics (nil disables).
	Telemetry *telemetry.Recorder

	// Provider runtime knobs (DESIGN.md S22).
	ProviderCacheTTL    time.Duration
	ProviderMaxRetries  int
	ProviderRetryBase   time.Duration
	ProviderMaxInFlight int

	// Guarded-apply knobs (DESIGN.md S24).
	GuardApplies            bool
	GuardCanary             float64
	GuardMaxFailures        int
	GuardMaxFailureFraction float64
	HealthProbeTimeout      time.Duration
	HealthProbeInterval     time.Duration
}

// ErrClosed is returned for lifecycle calls on a workspace that is closing
// or closed: Close drains in-flight operations but admits no new ones.
type ErrClosed struct{ Name string }

// Error implements error.
func (e *ErrClosed) Error() string {
	if e.Name == "" {
		return "cloudless: workspace is closed"
	}
	return "cloudless: workspace " + e.Name + " is closed"
}

// ErrPolicyDenied is returned when a plan-phase policy denies the apply.
type ErrPolicyDenied struct{ Message string }

// Error implements error.
func (e *ErrPolicyDenied) Error() string { return "cloudless: policy denied: " + e.Message }

// ErrJournalRecovered is returned by Apply when a crashed run's journal was
// found and recovered before the apply could start. The recovery moved the
// golden state, so the plan in hand predates it — re-plan and apply again.
type ErrJournalRecovered struct{ Report *apply.RecoverReport }

// Error implements error.
func (e *ErrJournalRecovered) Error() string {
	return "cloudless: recovered a crashed run's journal; the plan is stale — re-plan and retry"
}

// ApplyOptions tune Apply.
type ApplyOptions struct {
	Concurrency int
	Scheduler   apply.Scheduler
	// SkipPolicyCheck bypasses plan-phase policies.
	SkipPolicyCheck bool
	// BatchOps coalesces concurrent creates and reads into bulk cloud calls.
	BatchOps bool
	// OnEvent, when set, receives every ops-plane event published during
	// this apply, in order, on a dedicated goroutine; Apply drains the
	// queue before returning.
	OnEvent func(events.Event)
	// Guard overrides the workspace's guard configuration for this apply
	// only (nil = use the workspace default). The reconciler sets it so
	// auto-repairs always run guarded, even on workspaces that were
	// created without GuardApplies.
	Guard *guard.Options
}

// Workspace is one managed infrastructure: the unit of tenancy. All methods
// are safe for concurrent use; lifecycle methods fail with *ErrClosed once
// Close has begun.
type Workspace struct {
	name      string
	module    *config.Module
	expansion *config.Expansion
	vars      map[string]eval.Value
	resolver  config.ModuleResolver

	cloudAPI    cloud.Interface
	db          *statedb.DB
	engine      *policy.Engine
	watcher     *drift.Watcher
	principal   string
	telemetry   *telemetry.Recorder
	journalPath string
	guardOpts   *guard.Options
	bus         *events.Bus
	flight      *events.FlightRecorder
	replanCache *plan.ReplanCache

	// Draining close: beginOp/endOp track in-flight lifecycle operations;
	// Close flips closing, waits for the drained signal, then releases
	// resources exactly once.
	drain drainGate

	// The continuous reconciliation controller (nil unless enabled).
	recMu sync.Mutex
	rec   *reconcile.Controller
}

// New loads, expands, and binds a configuration into a workspace.
func New(cfg Config) (*Workspace, error) {
	if cfg.Cloud == nil {
		return nil, fmt.Errorf("cloudless: Options.Cloud is required")
	}
	var module *config.Module
	var diags hcl.Diagnostics
	switch {
	case cfg.Sources != nil:
		module, diags = config.Load(cfg.Sources)
	case cfg.Dir != "":
		module, diags = config.LoadDir(cfg.Dir)
		if cfg.Modules == nil {
			cfg.Modules = config.DirResolver{Root: cfg.Dir}
		}
	default:
		return nil, fmt.Errorf("cloudless: either Options.Sources or Options.Dir must be set")
	}
	if diags.HasErrors() {
		return nil, diags
	}

	vars := map[string]eval.Value{}
	for k, v := range cfg.Vars {
		vars[k] = eval.FromGo(v)
	}
	// Managed variables include declared defaults, so policy scale targets
	// work without the caller re-passing every default.
	for name, decl := range module.Variables {
		if _, given := vars[name]; !given && decl.HasDefault {
			vars[name] = decl.Default
		}
	}
	principal := cfg.Principal
	if principal == "" {
		if cfg.Name != "" {
			principal = cfg.Name
		} else {
			principal = "cloudless"
		}
	}

	mode := statedb.ResourceLock
	if cfg.GlobalLock {
		mode = statedb.GlobalLock
	}
	engine, err := statedb.NewEngine(cfg.StateBackend, cfg.InitialState, statedb.EngineOptions{
		Dir: cfg.StateDir,
	})
	if err != nil {
		return nil, fmt.Errorf("cloudless: %w", err)
	}

	// All cloud access routes through one provider runtime per workspace; a
	// caller that passes an already-wrapped Runtime (e.g. another stack's
	// Cloud()) shares that one instead of stacking dispatchers.
	// The live ops plane: one bus per workspace. Every layer below publishes
	// into it; Subscribe, ApplyOptions.OnEvent, and the flight recorder
	// consume it. Publishing with no subscribers is nearly free.
	bus := events.NewBus(nil)

	popts := provider.Options{
		CacheTTL:    cfg.ProviderCacheTTL,
		MaxRetries:  cfg.ProviderMaxRetries,
		RetryBase:   cfg.ProviderRetryBase,
		MaxInFlight: cfg.ProviderMaxInFlight,
		Bus:         bus,
	}
	if cfg.Telemetry != nil {
		popts.Registry = cfg.Telemetry.Metrics()
	}
	runtime := provider.New(cfg.Cloud, popts)

	w := &Workspace{
		name:        cfg.Name,
		module:      module,
		vars:        vars,
		resolver:    cfg.Modules,
		cloudAPI:    runtime,
		db:          statedb.OpenEngine(engine, mode),
		principal:   principal,
		telemetry:   cfg.Telemetry,
		journalPath: cfg.JournalPath,
		bus:         bus,
		replanCache: plan.NewReplanCache(),
	}
	w.drain.init()
	if cfg.JournalPath != "" {
		// Flight recorder: the journal's sibling artifact. A run that dies
		// with no live subscriber still leaves its event tail for
		// post-mortem reconstruction.
		fr, err := events.NewFlightRecorder(cfg.JournalPath+".events.jsonl", bus)
		if err != nil {
			return nil, fmt.Errorf("cloudless: open flight recorder: %w", err)
		}
		w.flight = fr
	}
	if cfg.GuardApplies {
		w.guardOpts = &guard.Options{
			Canary:             cfg.GuardCanary,
			MaxFailures:        cfg.GuardMaxFailures,
			MaxFailureFraction: cfg.GuardMaxFailureFraction,
			Probe: health.ProbeOptions{
				Timeout:  cfg.HealthProbeTimeout,
				Interval: cfg.HealthProbeInterval,
			},
		}
	}
	if sim, ok := provider.Unwrap(cfg.Cloud).(*cloud.Sim); ok && cfg.Telemetry != nil {
		// Route simulator counters (API calls, throttles, injected failures)
		// into the workspace's registry even for calls made without a
		// telemetry-carrying context.
		sim.AttachTelemetry(cfg.Telemetry.Metrics())
	}
	if err := w.reexpand(); err != nil {
		return nil, err
	}

	if cfg.Policies != "" {
		ps, diags := policy.ParsePolicies("policies.ccl", cfg.Policies)
		if diags.HasErrors() {
			return nil, diags
		}
		w.engine = policy.NewEngine(ps)
		for k, v := range vars {
			w.engine.Vars[k] = v
		}
	} else {
		w.engine = policy.NewEngine(nil)
	}
	return w, nil
}

// Name returns the workspace's name ("" for facade-opened workspaces).
func (w *Workspace) Name() string { return w.name }

// reexpand recomputes the expansion from the module and current vars.
func (w *Workspace) reexpand() error {
	ex, diags := config.Expand(w.module, w.vars, w.resolver)
	if diags.HasErrors() {
		return diags
	}
	w.expansion = ex
	return nil
}

// SetVar changes an input variable (e.g. applying a policy decision) and
// re-expands the configuration.
func (w *Workspace) SetVar(name string, value any) error {
	w.vars[name] = eval.FromGo(value)
	w.engine.Vars[name] = w.vars[name]
	return w.reexpand()
}

// Var reads a managed variable's current value.
func (w *Workspace) Var(name string) (any, bool) {
	v, ok := w.vars[name]
	if !ok {
		return nil, false
	}
	return eval.ToGo(v), true
}

// DB exposes the golden-state database (locks, history, snapshots).
func (w *Workspace) DB() *statedb.DB { return w.db }

// Close drains and releases the workspace: new lifecycle calls fail with
// *ErrClosed immediately, in-flight plan/apply/drift/recover operations run
// to completion (or until their own contexts cancel), and only then are the
// storage engine, flight recorder, and event bus released. Close is
// idempotent; concurrent and repeated calls all return the first close's
// error. ctx bounds the wait for in-flight operations: when it expires the
// workspace stays mid-drain (resources are NOT released) and Close returns
// ctx.Err() — call Close again to finish once the stragglers exit.
func (w *Workspace) Close(ctx context.Context) error {
	// The reconciler's loops run lifecycle operations (scoped scans, guarded
	// repairs) through the drain gate; stop it first or the drain would wait
	// on work the controller keeps submitting.
	_ = w.StopReconciler(ctx)
	release, err := w.drain.close(ctx)
	if err != nil || !release {
		return err
	}
	cerr := w.db.Close()
	if w.flight != nil {
		if ferr := w.flight.Close(); cerr == nil {
			cerr = ferr
		}
	}
	w.bus.Close()
	w.drain.finish(cerr)
	return cerr
}

// Telemetry exposes the workspace's recorder (nil when telemetry is disabled).
func (w *Workspace) Telemetry() *telemetry.Recorder { return w.telemetry }

// lifecycle attaches the workspace's recorder to the context (callers may
// also supply one via telemetry.WithRecorder) and opens a span covering one
// facade operation. With no recorder anywhere it returns (ctx, nil); every
// span method is nil-safe, so call sites need no guards.
func (w *Workspace) lifecycle(ctx context.Context, name string) (context.Context, *telemetry.Span) {
	if w.telemetry != nil && telemetry.FromContext(ctx) == nil {
		ctx = telemetry.WithRecorder(ctx, w.telemetry)
	}
	if events.FromContext(ctx) == nil {
		ctx = events.WithBus(ctx, w.bus)
	}
	return telemetry.StartSpan(ctx, name)
}

// begin admits one lifecycle operation, failing fast once Close has begun.
func (w *Workspace) begin() error { return w.drain.begin(w.name) }

// end retires one lifecycle operation admitted by begin.
func (w *Workspace) end() { w.drain.end() }

// Events exposes the workspace's live event bus.
func (w *Workspace) Events() *events.Bus { return w.bus }

// Subscribe registers a live consumer of the workspace's ops-plane events.
func (w *Workspace) Subscribe(filter events.Filter) *events.Subscription {
	return w.bus.Subscribe(filter, 0)
}

// FlightRecorderPath returns the JSONL events artifact location ("" when no
// journal path is configured).
func (w *Workspace) FlightRecorderPath() string { return w.flight.Path() }

// Cloud exposes the bound cloud interface — the workspace's provider
// runtime, so sharing it with another workspace shares cache, coalescing,
// and the AIMD window too.
func (w *Workspace) Cloud() cloud.Interface { return w.cloudAPI }

// Provider exposes the workspace's provider runtime for stats inspection.
// It returns nil when the bound cloud interface is not a runtime; callers
// must treat nil as "no runtime stats available".
func (w *Workspace) Provider() *provider.Runtime {
	rt, ok := w.cloudAPI.(*provider.Runtime)
	if !ok {
		return nil
	}
	return rt
}

// Instances lists the expanded instance addresses.
func (w *Workspace) Instances() []string {
	out := make([]string, 0, len(w.expansion.Instances))
	for _, inst := range w.expansion.Instances {
		out = append(out, inst.Addr)
	}
	sort.Strings(out)
	return out
}

// Validate runs compile-time validation: schema structure, semantic types,
// and the cloud-level knowledge base (§3.2).
func (w *Workspace) Validate() *validate.Result {
	_, span := w.lifecycle(context.Background(), "lifecycle.validate")
	res := validate.Validate(w.expansion, nil)
	span.SetAttr("findings", len(res.Findings))
	span.End()
	return res
}

// HasStaleJournal reports whether a crashed run's journal is waiting at
// Config.JournalPath.
func (w *Workspace) HasStaleJournal() bool {
	if w.journalPath == "" {
		return false
	}
	js, err := apply.ReadJournal(w.journalPath)
	return err == nil && js != nil
}

// Recover reconciles a crashed run's journal (apply, destroy, or rollback)
// against the cloud and commits the reconciled state: completed ops are
// folded in from their done records, in-doubt ops are re-driven under their
// original idempotency keys, and orphaned resources are adopted or deleted
// via the activity log. Returns (nil, nil) when there is nothing to recover.
// The journal is removed only after a fully clean recovery, so a crash
// during recovery itself is handled by calling Recover again.
func (w *Workspace) Recover(ctx context.Context) (*apply.RecoverReport, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	return w.recover(ctx)
}

// recover is Recover without the drain gate, for reuse under an already-
// admitted operation (the auto-recovery at the head of Plan and Apply).
func (w *Workspace) recover(ctx context.Context) (*apply.RecoverReport, error) {
	if w.journalPath == "" {
		return nil, nil
	}
	js, err := apply.ReadJournal(w.journalPath)
	if err != nil || js == nil {
		return nil, err
	}
	ctx, span := w.lifecycle(ctx, "lifecycle.recover")
	defer span.End()
	span.SetAttr("journal_id", js.Meta.ID)
	span.SetAttr("journal_kind", js.Meta.Kind)

	base := w.db.Snapshot()
	st, rep, err := apply.Recover(ctx, w.cloudAPI, js, base, apply.Options{Principal: w.principal})
	if err != nil {
		return rep, err
	}
	span.SetAttr("confirmed", rep.Confirmed)
	span.SetAttr("resumed", rep.Resumed)
	span.SetAttr("orphans_adopted", len(rep.OrphansAdopted))
	span.SetAttr("orphans_deleted", len(rep.OrphansDeleted))

	// Commit everything the reconciled state and the base disagree on.
	seen := map[string]bool{}
	var addrs []string
	for _, a := range base.Addrs() {
		seen[a] = true
		addrs = append(addrs, a)
	}
	for _, a := range st.Addrs() {
		if !seen[a] {
			addrs = append(addrs, a)
		}
	}
	sort.Strings(addrs)
	txn := w.db.Begin("recover")
	if err := txn.Lock(ctx, addrs...); err != nil {
		return rep, fmt.Errorf("cloudless: recover: acquire locks: %w", err)
	}
	defer txn.Abort()
	for _, addr := range addrs {
		if rs := st.Get(addr); rs != nil {
			if err := txn.Put(rs); err != nil {
				return rep, err
			}
		} else if err := txn.Delete(addr); err != nil {
			return rep, err
		}
	}
	if _, err := txn.Commit(); err != nil {
		return rep, err
	}
	if err := rep.Err(); err != nil {
		// Some in-doubt op could not be resolved (e.g. the cloud was
		// unreachable); keep the journal so a later Recover retries it.
		return rep, err
	}
	if err := os.Remove(w.journalPath); err != nil && !os.IsNotExist(err) {
		return rep, err
	}
	return rep, nil
}

// recoverStale runs recovery when a crashed run's journal is present; it is
// invoked automatically at the head of Plan and Apply so no run ever builds
// on a state the cloud has silently moved past.
func (w *Workspace) recoverStale(ctx context.Context) (*apply.RecoverReport, error) {
	if !w.HasStaleJournal() {
		return nil, nil
	}
	return w.recover(ctx)
}

// Plan computes a full plan against the golden state, refreshing every
// recorded resource from the cloud first. A stale journal from a crashed
// run is recovered (and committed) before planning.
func (w *Workspace) Plan(ctx context.Context) (*plan.Plan, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	if _, err := w.recoverStale(ctx); err != nil {
		return nil, err
	}
	ctx, span := w.lifecycle(ctx, "lifecycle.plan")
	defer span.End()
	p, diags := plan.Compute(ctx, w.expansion, w.db.Snapshot(), plan.Options{
		Refresh: true, Cloud: w.cloudAPI,
	})
	if diags.HasErrors() {
		return p, diags
	}
	return p, nil
}

// PlanIncremental computes an incremental plan confined to the impact scope
// of the given resource-level addresses (§3.3), skipping refresh and
// evaluation outside the scope.
func (w *Workspace) PlanIncremental(ctx context.Context, changed ...string) (*plan.Plan, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	if _, err := w.recoverStale(ctx); err != nil {
		return nil, err
	}
	ctx, span := w.lifecycle(ctx, "lifecycle.plan_incremental")
	span.SetAttr("changed", len(changed))
	defer span.End()
	p, diags := plan.Compute(ctx, w.expansion, w.db.Snapshot(), plan.Options{
		Refresh: true, Cloud: w.cloudAPI, ImpactScope: changed,
	})
	if diags.HasErrors() {
		return p, diags
	}
	return p, nil
}

// Replan computes a plan through the workspace's replan cache: declarations
// whose fingerprint is unchanged since the last (re)plan and whose recorded
// state has not moved replay their memoized diffs, and only the dirty
// subtree is re-evaluated. The result is byte-identical to Plan.
func (w *Workspace) Replan(ctx context.Context) (*plan.Plan, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	if _, err := w.recoverStale(ctx); err != nil {
		return nil, err
	}
	ctx, span := w.lifecycle(ctx, "lifecycle.replan")
	defer span.End()
	p, diags := plan.Compute(ctx, w.expansion, w.db.Snapshot(), plan.Options{
		Refresh: true, Cloud: w.cloudAPI, Cache: w.replanCache,
	})
	if diags.HasErrors() {
		return p, diags
	}
	return p, nil
}

// ReplanOffline is Replan without the cloud refresh: it trusts recorded
// state (like PlanOffline) and re-evaluates only the subtree dirtied by
// configuration edits or state commits since the previous cached plan.
func (w *Workspace) ReplanOffline(ctx context.Context) (*plan.Plan, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	ctx, span := w.lifecycle(ctx, "lifecycle.replan_offline")
	defer span.End()
	p, diags := plan.Compute(ctx, w.expansion, w.db.Snapshot(), plan.Options{
		Cache: w.replanCache,
	})
	if diags.HasErrors() {
		return p, diags
	}
	return p, nil
}

// ReplanStats reports what the last Replan/ReplanOffline did.
func (w *Workspace) ReplanStats() plan.CacheStats { return w.replanCache.LastStats() }

// InvalidateReplanCache forces the next Replan to be a full replan.
func (w *Workspace) InvalidateReplanCache() { w.replanCache.InvalidateAll() }

// PlanOffline plans without refreshing from the cloud (fast, trusts state).
func (w *Workspace) PlanOffline(ctx context.Context) (*plan.Plan, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	ctx, span := w.lifecycle(ctx, "lifecycle.plan_offline")
	defer span.End()
	p, diags := plan.Compute(ctx, w.expansion, w.db.Snapshot(), plan.Options{})
	if diags.HasErrors() {
		return p, diags
	}
	return p, nil
}

// PlanOfflineAt plans against the golden state as of a past serial instead
// of the latest. Requires a backend with version retention (mvcc).
func (w *Workspace) PlanOfflineAt(ctx context.Context, serial int) (*plan.Plan, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	ctx, span := w.lifecycle(ctx, "lifecycle.plan_offline_at")
	span.SetAttr("pinned_serial", serial)
	defer span.End()
	snap, err := w.db.SnapshotAt(serial)
	if err != nil {
		return nil, err
	}
	p, diags := plan.Compute(ctx, w.expansion, snap, plan.Options{})
	if diags.HasErrors() {
		return p, diags
	}
	return p, nil
}

// Apply executes a plan transactionally: plan-phase policies run first,
// per-resource (or global) locks are held for every pending address across
// the physical apply, and the golden state and time machine are updated
// atomically on completion. Failed operations yield IaC-level diagnoses.
func (w *Workspace) Apply(ctx context.Context, p *plan.Plan, opts ApplyOptions) (*apply.Result, []*diagnose.Diagnosis, error) {
	if err := w.begin(); err != nil {
		return nil, nil, err
	}
	defer w.end()
	if w.HasStaleJournal() {
		rep, err := w.recover(ctx)
		if err != nil {
			return nil, nil, err
		}
		return nil, nil, &ErrJournalRecovered{Report: rep}
	}
	ctx, span := w.lifecycle(ctx, "lifecycle.apply")
	span.SetAttr("pending", p.Creates+p.Updates+p.Replaces+p.Deletes)
	span.SetAttr("base_serial", p.BaseSerial)
	span.SetAttr("scheduler", opts.Scheduler.String())
	defer span.End()

	// OnEvent: a private subscription pumped to the callback. Registered
	// before run_start is published and drained after run_finish, so the
	// callback observes the complete run.
	if opts.OnEvent != nil {
		sub := w.bus.Subscribe(events.Filter{}, 4*events.DefaultBuffer)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for e := range sub.C() {
				opts.OnEvent(e)
			}
		}()
		defer func() {
			sub.Close()
			<-done
		}()
	}
	if !opts.SkipPolicyCheck {
		decisions, diags := w.engine.EvaluatePlan(p)
		if diags.HasErrors() {
			return nil, nil, diags
		}
		if denied, msg := policy.Denied(decisions); denied {
			return nil, nil, &ErrPolicyDenied{Message: msg}
		}
	}

	// The commit carries the plan's pinned serial: if other transactions
	// advanced any of these addresses past the plan's base, Commit aborts
	// with *StaleBaseError instead of clobbering their work.
	txn := w.db.Begin("apply")
	if p.BaseSerial > 0 {
		txn.SetBase(p.BaseSerial)
	}
	addrs := make([]string, 0, len(p.Changes))
	for addr, ch := range p.Changes {
		if ch.Action != plan.ActionNoop {
			addrs = append(addrs, addr)
		}
	}
	sort.Strings(addrs)
	if err := txn.Lock(ctx, addrs...); err != nil {
		return nil, nil, fmt.Errorf("cloudless: acquire locks: %w", err)
	}
	defer txn.Abort()

	var j *apply.Journal
	if w.journalPath != "" {
		nj, err := apply.NewJournal(w.journalPath, apply.Meta{
			Kind: "apply", BaseSerial: p.BaseSerial, Principal: w.principal,
		})
		if err != nil {
			return nil, nil, err
		}
		j = nj
	}
	applyOpts := apply.Options{
		Concurrency:     opts.Concurrency,
		Scheduler:       opts.Scheduler,
		Principal:       w.principal,
		ContinueOnError: true,
		Journal:         j,
		BatchOps:        opts.BatchOps,
	}
	runID := ""
	if j != nil {
		runID = j.Meta().ID
	}
	w.bus.Publish(events.Event{Kind: "apply.run_start", Run: runID,
		Principal: w.principal,
		N:         int64(p.Creates + p.Updates + p.Replaces + p.Deletes)})

	guardOpts := w.guardOpts
	if opts.Guard != nil {
		guardOpts = opts.Guard
	}
	var res *apply.Result
	if guardOpts != nil {
		span.SetAttr("guarded", true)
		res = guard.Run(ctx, w.cloudAPI, p, applyOpts, *guardOpts)
	} else {
		res = apply.Apply(ctx, w.cloudAPI, p, applyOpts)
	}
	PublishRunFinish(w.bus, w.Provider(), runID, res)
	keepJournal := true
	if j != nil {
		// The journal is discarded after a zero-error apply whose state
		// committed, or after a guarded apply whose auto-rollback fully
		// reverted the blast radius (the cloud matches what state records
		// either way); anything less leaves it for Recover to reconcile.
		defer func() {
			if keepJournal {
				_ = j.Close()
			} else {
				_ = j.Discard()
			}
		}()
	}

	// Publish results for the locked addresses.
	for _, addr := range addrs {
		if rs := res.State.Get(addr); rs != nil {
			if err := txn.Put(rs); err != nil {
				return res, nil, err
			}
		} else if err := txn.Delete(addr); err != nil {
			return res, nil, err
		}
	}
	txn.SetOutputs(res.State.Outputs)
	if _, err := txn.Commit(); err != nil {
		return res, nil, err
	}
	if res.Err() == nil || res.Reverted {
		keepJournal = false
	}
	span.SetAttr("applied", res.Applied)
	span.SetAttr("failed", len(res.Errors))
	span.SetAttr("retries", res.Retries)
	if guardOpts != nil {
		span.SetAttr("gate_failures", res.GateFailures)
		span.SetAttr("fuse_tripped", len(res.FuseTripped))
		span.SetAttr("reverted", res.Reverted)
	}
	// Record outputs on the lifecycle span with the same redaction the
	// display path applies: sensitive values never reach a trace file.
	for name, v := range w.DisplayOutputs() {
		span.SetAttr("output."+name, fmt.Sprint(v))
	}

	// Advance the drift watcher past our own activity so it doesn't chew
	// through events we caused (it filters by principal anyway).
	if w.watcher == nil {
		w.resetWatcher(ctx)
	}

	var diagnoses []*diagnose.Diagnosis
	for addr, applyErr := range res.Errors {
		inst := w.expansion.ByAddr[addr]
		diagnoses = append(diagnoses, diagnose.Explain(applyErr, inst, w.expansion))
	}
	sort.Slice(diagnoses, func(i, j int) bool { return diagnoses[i].Addr < diagnoses[j].Addr })
	return res, diagnoses, res.Err()
}

// PublishRunFinish emits the run-terminating event plus a provider-runtime
// stats snapshot (cache hit / coalesce / throttle counters), so a watcher
// sees how the dispatch layer behaved without polling Stats itself. It is
// exported for the facade's white-box seams; bus and rt may be nil.
func PublishRunFinish(bus *events.Bus, rt *provider.Runtime, runID string, res *apply.Result) {
	fin := events.Event{Kind: "apply.run_finish", Run: runID,
		N: int64(res.Applied), Retries: int64(res.Retries),
		Ms: float64(res.Elapsed) / float64(time.Millisecond)}
	if err := res.Err(); err != nil {
		fin.Err = err.Error()
	}
	bus.Publish(fin)
	if rt != nil {
		st := rt.Stats()
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"calls", st.Calls}, {"retries", st.Retries}, {"throttles", st.Throttles},
			{"cache_hits", st.CacheHits}, {"cache_misses", st.CacheMisses},
			{"coalesced", st.Coalesced},
		} {
			bus.Publish(events.Event{Kind: "provider.stats", Run: runID,
				Action: c.name, N: c.v})
		}
	}
}

// Destroy deletes everything in the golden state, in reverse dependency
// order, and commits the emptied state.
func (w *Workspace) Destroy(ctx context.Context) (*apply.Result, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	if w.HasStaleJournal() {
		if _, err := w.recover(ctx); err != nil {
			return nil, err
		}
	}
	ctx, span := w.lifecycle(ctx, "lifecycle.destroy")
	defer span.End()
	snapshot := w.db.Snapshot()
	txn := w.db.BeginAt("destroy", snapshot.Serial)
	if err := txn.Lock(ctx, snapshot.Addrs()...); err != nil {
		return nil, err
	}
	defer txn.Abort()
	var j *apply.Journal
	if w.journalPath != "" {
		nj, err := apply.NewJournal(w.journalPath, apply.Meta{
			Kind: "destroy", BaseSerial: snapshot.Serial, Principal: w.principal,
		})
		if err != nil {
			return nil, err
		}
		j = nj
	}
	runID := ""
	if j != nil {
		runID = j.Meta().ID
	}
	w.bus.Publish(events.Event{Kind: "apply.run_start", Run: runID,
		Principal: w.principal, Action: "destroy",
		N: int64(len(snapshot.Addrs()))})
	res := apply.Destroy(ctx, w.cloudAPI, snapshot, apply.Options{
		Principal: w.principal, ContinueOnError: true, Journal: j,
	})
	PublishRunFinish(w.bus, w.Provider(), runID, res)
	keepJournal := true
	if j != nil {
		defer func() {
			if keepJournal {
				_ = j.Close()
			} else {
				_ = j.Discard()
			}
		}()
	}
	for _, addr := range snapshot.Addrs() {
		if res.State.Get(addr) == nil {
			if err := txn.Delete(addr); err != nil {
				return res, err
			}
		}
	}
	if _, err := txn.Commit(); err != nil {
		return res, err
	}
	if res.Err() == nil {
		keepJournal = false
	}
	return res, res.Err()
}

// resetWatcher (re)starts the drift watcher at the cloud's current log tail.
func (w *Workspace) resetWatcher(ctx context.Context) {
	tail := int64(0)
	if events, err := w.cloudAPI.Activity(ctx, 0); err == nil && len(events) > 0 {
		tail = events[len(events)-1].Seq
	}
	w.watcher = drift.NewWatcher(w.cloudAPI, w.principal, tail)
}

// WatchDrift polls the activity log for out-of-band changes (§3.5). Call
// repeatedly; the cursor advances automatically.
func (w *Workspace) WatchDrift(ctx context.Context) (*drift.Report, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	ctx, span := w.lifecycle(ctx, "lifecycle.watch_drift")
	defer span.End()
	if w.watcher == nil {
		w.resetWatcher(ctx)
		return &drift.Report{Method: "activity-log"}, nil
	}
	return w.watcher.Poll(ctx, w.db.Snapshot())
}

// ScanDrift performs a full driftctl-style API scan (expensive).
func (w *Workspace) ScanDrift(ctx context.Context) (*drift.Report, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	ctx, span := w.lifecycle(ctx, "lifecycle.scan_drift")
	defer span.End()
	rep, err := drift.FullScan(ctx, w.cloudAPI, w.db.Snapshot())
	if rep != nil {
		span.SetAttr("drift_items", len(rep.Items))
	}
	return rep, err
}

// ReconcileDrift applies drift-phase policies (or the explicit choice) to a
// report and commits the updated state.
func (w *Workspace) ReconcileDrift(ctx context.Context, rep *drift.Report, action drift.Action) (*drift.ReconcileResult, error) {
	if err := w.begin(); err != nil {
		return nil, err
	}
	defer w.end()
	ctx, span := w.lifecycle(ctx, "lifecycle.reconcile_drift")
	defer span.End()
	snapshot := w.db.Snapshot()
	// A report computed against an older state serial describes drift
	// relative to a baseline that no longer exists; reverting it now could
	// undo a legitimate apply that landed in between. Mirror the apply
	// path's *StaleBaseError: fail typed, re-detect, retry.
	if rep.BaseSerial > 0 && snapshot.Serial != rep.BaseSerial {
		return nil, &drift.ErrStaleReport{ReportSerial: rep.BaseSerial, CurrentSerial: snapshot.Serial}
	}
	res := drift.Reconcile(ctx, w.cloudAPI, snapshot, rep, func(drift.Item) drift.Action { return action }, w.principal)
	txn := w.db.BeginAt("reconcile drift", snapshot.Serial)
	var addrs []string
	for _, it := range rep.Items {
		if it.Addr != "" {
			addrs = append(addrs, it.Addr)
		}
	}
	// Imported unmanaged resources get new addresses too.
	for _, a := range res.State.Addrs() {
		if snapshot.Get(a) == nil {
			addrs = append(addrs, a)
		}
	}
	if err := txn.Lock(ctx, addrs...); err != nil {
		return res, err
	}
	defer txn.Abort()
	for _, addr := range addrs {
		if rs := res.State.Get(addr); rs != nil {
			if err := txn.Put(rs); err != nil {
				return res, err
			}
		} else if err := txn.Delete(addr); err != nil {
			return res, err
		}
	}
	if _, err := txn.Commit(); err != nil {
		return res, err
	}
	return res, nil
}

// PolicyDecisionsForDrift evaluates drift-phase policies over a report.
func (w *Workspace) PolicyDecisionsForDrift(rep *drift.Report) ([]policy.Decision, error) {
	decs, diags := w.engine.EvaluateDrift(rep)
	if diags.HasErrors() {
		return decs, diags
	}
	return decs, nil
}

// Observe feeds runtime metrics to operate-phase policies (autoscaling).
// Returned set_variable/scale decisions are already applied to the
// workspace's variables; call Plan+Apply afterwards to enact them.
func (w *Workspace) Observe(metrics map[string]any) ([]policy.Decision, error) {
	m := make(map[string]eval.Value, len(metrics))
	for k, v := range metrics {
		m[k] = eval.FromGo(v)
	}
	decs, diags := w.engine.Observe(m)
	if diags.HasErrors() {
		return decs, diags
	}
	changed := false
	for _, d := range decs {
		if d.Kind == policy.ActionScale || d.Kind == policy.ActionSetVariable {
			w.vars[d.Variable] = d.NewValue
			changed = true
		}
	}
	if changed {
		if err := w.reexpand(); err != nil {
			return decs, err
		}
	}
	return decs, nil
}

// PlanRollback computes a minimal rollback to a historical serial (§3.4).
func (w *Workspace) PlanRollback(serial int) (*rollback.Plan, *state.State, error) {
	snap, err := w.db.History().At(serial)
	if err != nil {
		return nil, nil, err
	}
	current := w.db.Snapshot()
	return rollback.Compute(current, snap.State), snap.State, nil
}

// ExecuteRollback runs a rollback plan and commits the resulting state.
func (w *Workspace) ExecuteRollback(ctx context.Context, p *rollback.Plan, target *state.State) error {
	if err := w.begin(); err != nil {
		return err
	}
	defer w.end()
	ctx, span := w.lifecycle(ctx, "lifecycle.rollback")
	span.SetAttr("steps", len(p.Steps))
	defer span.End()
	current := w.db.Snapshot()
	txn := w.db.BeginAt("rollback", current.Serial)
	var addrs []string
	for _, step := range p.Steps {
		addrs = append(addrs, step.Addr)
	}
	if err := txn.Lock(ctx, addrs...); err != nil {
		return err
	}
	defer txn.Abort()
	var j *apply.Journal
	if w.journalPath != "" {
		nj, jerr := apply.NewJournal(w.journalPath, apply.Meta{
			Kind: "rollback", BaseSerial: current.Serial, Principal: w.principal,
		})
		if jerr != nil {
			return jerr
		}
		j = nj
	}
	after, err := rollback.ExecuteJournaled(ctx, w.cloudAPI, current, target, p,
		rollback.ExecOptions{Principal: w.principal, Journal: j})
	keepJournal := true
	if j != nil {
		defer func() {
			if keepJournal {
				_ = j.Close() // left for Recover
			} else {
				_ = j.Discard()
			}
		}()
	}
	if err != nil {
		return err
	}
	for _, addr := range addrs {
		if rs := after.Get(addr); rs != nil {
			if perr := txn.Put(rs); perr != nil {
				return perr
			}
		} else if derr := txn.Delete(addr); derr != nil {
			return derr
		}
	}
	if _, err = txn.Commit(); err != nil {
		return err
	}
	keepJournal = false
	return nil
}

// Outputs returns the last-applied root outputs as plain Go values.
func (w *Workspace) Outputs() map[string]any {
	out := map[string]any{}
	for k, v := range w.db.Snapshot().Outputs {
		out[k] = eval.ToGo(v)
	}
	return out
}

// OutputIsSensitive reports whether an output is declared sensitive;
// display layers substitute a redaction marker for such values.
func (w *Workspace) OutputIsSensitive(name string) bool {
	if spec, ok := w.expansion.Outputs[name]; ok {
		return spec.Sensitive
	}
	return false
}

// DisplayOutputs returns outputs with sensitive values redacted, for
// printing to terminals and logs.
func (w *Workspace) DisplayOutputs() map[string]any {
	out := w.Outputs()
	for name := range out {
		if w.OutputIsSensitive(name) {
			out[name] = telemetry.Redacted
		}
	}
	return out
}
