package state

import (
	"path/filepath"
	"testing"

	"cloudless/internal/eval"
)

func TestHistoryPersistenceRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "history")
	h := NewHistory(0)
	s := New()
	s.Set(&ResourceState{Addr: "aws_vpc.a", Type: "aws_vpc", ID: "vpc-1",
		Attrs: map[string]eval.Value{"cidr_block": eval.String("10.0.0.0/16")}})
	h.Commit(s, "deploy v1", "cfg-1")
	s.Get("aws_vpc.a").Attrs["cidr_block"] = eval.String("10.1.0.0/16")
	h.Commit(s, "retarget", "cfg-2")

	if err := h.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadHistoryDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("len = %d", back.Len())
	}
	snap1, err := back.At(1)
	if err != nil {
		t.Fatal(err)
	}
	if snap1.Description != "deploy v1" || snap1.ConfigFingerprint != "cfg-1" {
		t.Errorf("meta = %+v", snap1)
	}
	if !snap1.State.Get("aws_vpc.a").Attr("cidr_block").Equal(eval.String("10.0.0.0/16")) {
		t.Error("snapshot state content lost")
	}
	// The loaded history continues where it left off.
	serial := back.Commit(s, "post-load", "")
	if serial != 3 {
		t.Errorf("next serial = %d", serial)
	}
}

func TestLoadHistoryDirMissing(t *testing.T) {
	h, err := LoadHistoryDir(filepath.Join(t.TempDir(), "nope"))
	if err != nil || h.Len() != 0 {
		t.Fatalf("missing dir: %v, %v", h, err)
	}
}

func TestSaveSnapshotIdempotent(t *testing.T) {
	dir := t.TempDir()
	snap := &Snapshot{Serial: 7, Description: "x", State: New()}
	if err := SaveSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	h, err := LoadHistoryDir(dir)
	if err != nil || h.Len() != 1 {
		t.Fatalf("%v %v", h.Len(), err)
	}
}
