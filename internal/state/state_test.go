package state

import (
	"path/filepath"
	"testing"
	"time"

	"cloudless/internal/eval"
)

func sampleState() *State {
	s := New()
	s.Set(&ResourceState{
		Addr: "aws_vpc.main", Type: "aws_vpc", ID: "vpc-00000001", Region: "us-east-1",
		Attrs: map[string]eval.Value{
			"id":         eval.String("vpc-00000001"),
			"cidr_block": eval.String("10.0.0.0/16"),
			"enable_dns": eval.True,
		},
		CreatedAt: time.Now().UTC().Truncate(time.Second),
		UpdatedAt: time.Now().UTC().Truncate(time.Second),
	})
	s.Set(&ResourceState{
		Addr: "aws_subnet.s[0]", Type: "aws_subnet", ID: "subnet-00000001", Region: "us-east-1",
		Attrs: map[string]eval.Value{
			"id":     eval.String("subnet-00000001"),
			"vpc_id": eval.String("vpc-00000001"),
		},
		Dependencies: []string{"aws_vpc.main"},
	})
	s.Outputs["vpc_id"] = eval.String("vpc-00000001")
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleState()
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("len = %d", back.Len())
	}
	vpc := back.Get("aws_vpc.main")
	if vpc == nil || vpc.ID != "vpc-00000001" || !vpc.Attr("enable_dns").Equal(eval.True) {
		t.Errorf("vpc = %+v", vpc)
	}
	sub := back.Get("aws_subnet.s[0]")
	if len(sub.Dependencies) != 1 || sub.Dependencies[0] != "aws_vpc.main" {
		t.Errorf("deps = %v", sub.Dependencies)
	}
	if !back.Outputs["vpc_id"].Equal(eval.String("vpc-00000001")) {
		t.Errorf("outputs = %v", back.Outputs)
	}
	if s.Fingerprint() != back.Fingerprint() {
		t.Error("fingerprint changed across serialization")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cloudless.state.json")
	s := sampleState()
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != s.Fingerprint() {
		t.Error("file round trip changed state")
	}
	// Missing file -> empty state, no error.
	empty, err := LoadFile(filepath.Join(t.TempDir(), "missing.json"))
	if err != nil || empty.Len() != 0 {
		t.Errorf("missing file: %v, %v", empty, err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode([]byte(`{"version": 99}`)); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestCloneIsolation(t *testing.T) {
	s := sampleState()
	c := s.Clone()
	c.Get("aws_vpc.main").Attrs["cidr_block"] = eval.String("192.168.0.0/16")
	c.Remove("aws_subnet.s[0]")
	if !s.Get("aws_vpc.main").Attr("cidr_block").Equal(eval.String("10.0.0.0/16")) {
		t.Error("clone attr mutation leaked")
	}
	if s.Get("aws_subnet.s[0]") == nil {
		t.Error("clone removal leaked")
	}
}

func TestByID(t *testing.T) {
	s := sampleState()
	if rs := s.ByID("subnet-00000001"); rs == nil || rs.Addr != "aws_subnet.s[0]" {
		t.Errorf("ByID = %+v", rs)
	}
	if s.ByID("nope") != nil {
		t.Error("ByID on missing id")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a, b := sampleState(), sampleState()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical states fingerprint differently")
	}
	b.Get("aws_vpc.main").Attrs["enable_dns"] = eval.False
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("changed state has same fingerprint")
	}
}

func TestHistoryTimeMachine(t *testing.T) {
	h := NewHistory(0)
	s := New()
	s.Set(&ResourceState{Addr: "aws_vpc.a", Type: "aws_vpc", ID: "vpc-1",
		Attrs: map[string]eval.Value{"cidr_block": eval.String("10.0.0.0/16")}})
	v1 := h.Commit(s, "create vpc", "cfg-aaa")

	s.Get("aws_vpc.a").Attrs["cidr_block"] = eval.String("10.1.0.0/16")
	v2 := h.Commit(s, "retarget cidr", "cfg-bbb")

	if v2 != v1+1 {
		t.Errorf("serials = %d, %d", v1, v2)
	}
	snap1, err := h.At(v1)
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot is isolated from later mutation.
	if !snap1.State.Get("aws_vpc.a").Attr("cidr_block").Equal(eval.String("10.0.0.0/16")) {
		t.Error("history snapshot was mutated by later changes")
	}
	if h.Latest().Serial != v2 {
		t.Errorf("latest = %d", h.Latest().Serial)
	}
	if _, err := h.At(99); err == nil {
		t.Error("missing serial accepted")
	}
	// Config fingerprint lookup ("roll back to what cfg-aaa produced").
	if snap := h.FindByConfig("cfg-aaa"); snap == nil || snap.Serial != v1 {
		t.Errorf("FindByConfig = %+v", snap)
	}
	if h.FindByConfig("cfg-zzz") != nil {
		t.Error("unknown config fingerprint matched")
	}
}

func TestHistoryLimit(t *testing.T) {
	h := NewHistory(3)
	s := New()
	for i := 0; i < 10; i++ {
		h.Commit(s, "c", "")
	}
	if h.Len() != 3 {
		t.Errorf("len = %d", h.Len())
	}
	serials := h.Serials()
	if serials[0] != 8 || serials[2] != 10 {
		t.Errorf("serials = %v", serials)
	}
}

func TestDiffAddrs(t *testing.T) {
	a := sampleState()
	b := a.Clone()
	b.Remove("aws_subnet.s[0]")
	b.Get("aws_vpc.main").Attrs["enable_dns"] = eval.False
	b.Set(&ResourceState{Addr: "aws_vpc.extra", Type: "aws_vpc", ID: "vpc-2",
		Attrs: map[string]eval.Value{}})
	added, removed, changed := DiffAddrs(a, b)
	if len(added) != 1 || added[0] != "aws_vpc.extra" {
		t.Errorf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != "aws_subnet.s[0]" {
		t.Errorf("removed = %v", removed)
	}
	if len(changed) != 1 || changed[0] != "aws_vpc.main" {
		t.Errorf("changed = %v", changed)
	}
}
