// Package state models the recorded state of a deployed infrastructure: the
// mapping from configuration addresses to real cloud resources. It provides
// JSON serialization, deep cloning, fingerprinting, and a versioned history
// — the §3.4 "time machine" that tracks the mapping between past
// configurations and their corresponding states.
package state

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"cloudless/internal/eval"
)

// ResourceState records one deployed resource instance.
type ResourceState struct {
	// Addr is the instance address, e.g. "aws_subnet.s[0]".
	Addr string
	// Type is the resource type.
	Type string
	// ID is the cloud-assigned identifier.
	ID string
	// Region the resource lives in.
	Region string
	// Attrs is the full attribute set as last read from the cloud.
	Attrs map[string]eval.Value
	// Dependencies are resource-level addresses this instance depended on
	// at creation; destroy ordering reverses them.
	Dependencies []string
	// CreatedAt/UpdatedAt are bookkeeping timestamps.
	CreatedAt time.Time
	UpdatedAt time.Time
}

// Clone deep-copies the resource state.
func (rs *ResourceState) Clone() *ResourceState {
	cp := *rs
	cp.Attrs = make(map[string]eval.Value, len(rs.Attrs))
	for k, v := range rs.Attrs {
		cp.Attrs[k] = v
	}
	cp.Dependencies = append([]string(nil), rs.Dependencies...)
	return &cp
}

// Attr returns an attribute value or eval.Null.
func (rs *ResourceState) Attr(name string) eval.Value {
	if v, ok := rs.Attrs[name]; ok {
		return v
	}
	return eval.Null
}

// State is the complete recorded infrastructure state.
type State struct {
	// Serial increments on every commit.
	Serial int
	// Resources maps instance address to recorded state.
	Resources map[string]*ResourceState
	// Outputs are the root module outputs as of the last apply.
	Outputs map[string]eval.Value
}

// New creates an empty state.
func New() *State {
	return &State{Resources: map[string]*ResourceState{}, Outputs: map[string]eval.Value{}}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := New()
	c.Serial = s.Serial
	for addr, rs := range s.Resources {
		c.Resources[addr] = rs.Clone()
	}
	for k, v := range s.Outputs {
		c.Outputs[k] = v
	}
	return c
}

// Get returns the resource at an address, or nil.
func (s *State) Get(addr string) *ResourceState {
	return s.Resources[addr]
}

// Set inserts or replaces a resource record.
func (s *State) Set(rs *ResourceState) {
	s.Resources[rs.Addr] = rs
}

// Remove deletes a resource record.
func (s *State) Remove(addr string) {
	delete(s.Resources, addr)
}

// Addrs returns all instance addresses, sorted.
func (s *State) Addrs() []string {
	out := make([]string, 0, len(s.Resources))
	for a := range s.Resources {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of recorded resources.
func (s *State) Len() int { return len(s.Resources) }

// ByID finds the resource record holding a given cloud ID, or nil.
func (s *State) ByID(id string) *ResourceState {
	for _, rs := range s.Resources {
		if rs.ID == id {
			return rs
		}
	}
	return nil
}

// Fingerprint returns a stable hash of the entire state, used to detect
// divergence between two state snapshots cheaply.
func (s *State) Fingerprint() string {
	h := uint64(14695981039346656037)
	mix := func(str string) {
		for i := 0; i < len(str); i++ {
			h ^= uint64(str[i])
			h *= 1099511628211
		}
	}
	for _, addr := range s.Addrs() {
		rs := s.Resources[addr]
		mix(addr)
		mix(rs.ID)
		mix(strconv.FormatUint(eval.Object(rs.Attrs).Hash(), 16))
	}
	return strconv.FormatUint(h, 16)
}

// --- Serialization --------------------------------------------------------

type stateJSON struct {
	Version   int                     `json:"version"`
	Serial    int                     `json:"serial"`
	Resources map[string]resourceJSON `json:"resources"`
	Outputs   map[string]any          `json:"outputs,omitempty"`
}

type resourceJSON struct {
	Type         string         `json:"type"`
	ID           string         `json:"id"`
	Region       string         `json:"region"`
	Attrs        map[string]any `json:"attrs"`
	Dependencies []string       `json:"dependencies,omitempty"`
	CreatedAt    time.Time      `json:"created_at"`
	UpdatedAt    time.Time      `json:"updated_at"`
}

// Encode serializes the state as JSON.
func (s *State) Encode() ([]byte, error) {
	out := stateJSON{
		Version:   1,
		Serial:    s.Serial,
		Resources: map[string]resourceJSON{},
		Outputs:   map[string]any{},
	}
	for addr, rs := range s.Resources {
		attrs := make(map[string]any, len(rs.Attrs))
		for k, v := range rs.Attrs {
			attrs[k] = eval.ToGo(v)
		}
		out.Resources[addr] = resourceJSON{
			Type: rs.Type, ID: rs.ID, Region: rs.Region, Attrs: attrs,
			Dependencies: rs.Dependencies, CreatedAt: rs.CreatedAt, UpdatedAt: rs.UpdatedAt,
		}
	}
	for k, v := range s.Outputs {
		out.Outputs[k] = eval.ToGo(v)
	}
	return json.MarshalIndent(out, "", "  ")
}

// Decode parses a serialized state.
func Decode(data []byte) (*State, error) {
	var in stateJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("state: decode: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("state: unsupported version %d", in.Version)
	}
	s := New()
	s.Serial = in.Serial
	for addr, rj := range in.Resources {
		attrs := make(map[string]eval.Value, len(rj.Attrs))
		for k, v := range rj.Attrs {
			attrs[k] = eval.FromGoWithUnknowns(v)
		}
		s.Resources[addr] = &ResourceState{
			Addr: addr, Type: rj.Type, ID: rj.ID, Region: rj.Region,
			Attrs: attrs, Dependencies: rj.Dependencies,
			CreatedAt: rj.CreatedAt, UpdatedAt: rj.UpdatedAt,
		}
	}
	for k, v := range in.Outputs {
		s.Outputs[k] = eval.FromGoWithUnknowns(v)
	}
	return s, nil
}

// SaveFile writes the state to a file atomically (write + rename).
func (s *State) SaveFile(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("state: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("state: rename: %w", err)
	}
	return nil
}

// LoadFile reads a state file; a missing file yields an empty state.
func LoadFile(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return New(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("state: read %s: %w", path, err)
	}
	return Decode(data)
}
