package state

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// snapshotJSON is the on-disk form of one history snapshot.
type snapshotJSON struct {
	Serial            int             `json:"serial"`
	Time              time.Time       `json:"time"`
	Description       string          `json:"description"`
	ConfigFingerprint string          `json:"config_fingerprint,omitempty"`
	State             json.RawMessage `json:"state"`
}

func snapshotFileName(serial int) string {
	return fmt.Sprintf("snap-%08d.json", serial)
}

// SaveSnapshot writes one snapshot into a history directory, creating it if
// needed. Files are immutable once written, so re-saving is idempotent.
func SaveSnapshot(dir string, snap *Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("state: create history dir: %w", err)
	}
	stateData, err := snap.State.Encode()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(snapshotJSON{
		Serial:            snap.Serial,
		Time:              snap.Time,
		Description:       snap.Description,
		ConfigFingerprint: snap.ConfigFingerprint,
		State:             stateData,
	}, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, snapshotFileName(snap.Serial))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("state: write snapshot: %w", err)
	}
	return os.Rename(tmp, path)
}

// SaveHistoryDir persists every retained snapshot of a history.
func (h *History) SaveDir(dir string) error {
	h.mu.RLock()
	snaps := append([]*Snapshot(nil), h.snapshots...)
	h.mu.RUnlock()
	for _, s := range snaps {
		if err := SaveSnapshot(dir, s); err != nil {
			return err
		}
	}
	return nil
}

// LoadHistoryDir reads a history directory back into a History, in serial
// order. A missing directory yields an empty history.
func LoadHistoryDir(dir string) (*History, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return NewHistory(0), nil
	}
	if err != nil {
		return nil, fmt.Errorf("state: read history dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	h := NewHistory(0)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var sj snapshotJSON
		if err := json.Unmarshal(data, &sj); err != nil {
			return nil, fmt.Errorf("state: decode snapshot %s: %w", name, err)
		}
		st, err := Decode(sj.State)
		if err != nil {
			return nil, fmt.Errorf("state: decode snapshot state %s: %w", name, err)
		}
		st.Serial = sj.Serial
		h.mu.Lock()
		h.snapshots = append(h.snapshots, &Snapshot{
			Serial:            sj.Serial,
			Time:              sj.Time,
			Description:       sj.Description,
			ConfigFingerprint: sj.ConfigFingerprint,
			State:             st,
		})
		h.mu.Unlock()
	}
	return h, nil
}
