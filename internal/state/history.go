package state

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cloudless/internal/eval"
)

// Snapshot is one committed version in the time machine: a state together
// with the fingerprint of the configuration that produced it, so rollback
// plans can recover the exact config↔state pairing (§3.4).
type Snapshot struct {
	Serial      int
	Time        time.Time
	Description string
	// ConfigFingerprint identifies the configuration snapshot that was
	// applied to reach this state.
	ConfigFingerprint string
	State             *State
}

// History is the versioned state store — the paper's "time machine" for
// checkpointing resource states and generating precise rollback plans.
// It is safe for concurrent use.
type History struct {
	mu        sync.RWMutex
	snapshots []*Snapshot
	limit     int
}

// NewHistory creates a history retaining up to limit snapshots (0 means
// unlimited).
func NewHistory(limit int) *History {
	return &History{limit: limit}
}

// Commit stores a deep copy of the state as a new version and returns its
// serial number. When the state carries a serial greater than the last
// snapshot's, that serial is kept, so a state store's serial numbers and its
// history line up; otherwise the next sequential serial is assigned.
func (h *History) Commit(s *State, description, configFingerprint string) int {
	return h.commit(s.Clone(), description, configFingerprint)
}

// CommitOwned is Commit without the defensive clone: the caller hands over
// ownership of s, which must not be mutated afterwards. Storage engines use
// it to feed the time machine with snapshots they already materialized,
// avoiding a second full-state copy per commit.
func (h *History) CommitOwned(s *State, description, configFingerprint string) int {
	return h.commit(s, description, configFingerprint)
}

func (h *History) commit(cp *State, description, configFingerprint string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	last := 0
	if n := len(h.snapshots); n > 0 {
		last = h.snapshots[n-1].Serial
	}
	serial := cp.Serial
	if serial <= last {
		serial = last + 1
	}
	cp.Serial = serial
	h.snapshots = append(h.snapshots, &Snapshot{
		Serial:            serial,
		Time:              time.Now(),
		Description:       description,
		ConfigFingerprint: configFingerprint,
		State:             cp,
	})
	if h.limit > 0 && len(h.snapshots) > h.limit {
		h.snapshots = h.snapshots[len(h.snapshots)-h.limit:]
	}
	return serial
}

// Latest returns the newest snapshot, or nil when empty.
func (h *History) Latest() *Snapshot {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.snapshots) == 0 {
		return nil
	}
	return h.snapshots[len(h.snapshots)-1]
}

// At returns the snapshot with the given serial.
func (h *History) At(serial int) (*Snapshot, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	i := sort.Search(len(h.snapshots), func(i int) bool {
		return h.snapshots[i].Serial >= serial
	})
	if i >= len(h.snapshots) || h.snapshots[i].Serial != serial {
		return nil, fmt.Errorf("state history: no snapshot with serial %d", serial)
	}
	return h.snapshots[i], nil
}

// Len returns the number of retained snapshots.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.snapshots)
}

// Serials lists retained serial numbers in ascending order.
func (h *History) Serials() []int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]int, len(h.snapshots))
	for i, s := range h.snapshots {
		out[i] = s.Serial
	}
	return out
}

// FindByConfig returns the newest snapshot produced by the given
// configuration fingerprint, enabling "roll back to the state that config X
// produced".
func (h *History) FindByConfig(configFingerprint string) *Snapshot {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for i := len(h.snapshots) - 1; i >= 0; i-- {
		if h.snapshots[i].ConfigFingerprint == configFingerprint {
			return h.snapshots[i]
		}
	}
	return nil
}

// DiffAddrs compares two snapshots and reports which addresses were added,
// removed, or changed going from a to b.
func DiffAddrs(a, b *State) (added, removed, changed []string) {
	for addr, rb := range b.Resources {
		ra, ok := a.Resources[addr]
		switch {
		case !ok:
			added = append(added, addr)
		case !attrsEqual(ra.Attrs, rb.Attrs) || ra.ID != rb.ID:
			changed = append(changed, addr)
		}
	}
	for addr := range a.Resources {
		if _, ok := b.Resources[addr]; !ok {
			removed = append(removed, addr)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	sort.Strings(changed)
	return
}

func attrsEqual(a, b map[string]eval.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || !va.Equal(vb) {
			return false
		}
	}
	return true
}
