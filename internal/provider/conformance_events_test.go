package provider

import (
	"context"
	"sync"
	"testing"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	"cloudless/internal/events"
)

// mutate drives an identical mutation script against an endpoint: 3 creates,
// 1 update, 1 delete — 5 activity-log events.
func mutate(t *testing.T, rt *Runtime) {
	t.Helper()
	ctx := context.Background()
	var ids []string
	for _, name := range []string{"ev-a", "ev-b", "ev-c"} {
		res, err := rt.Create(ctx, cloud.CreateRequest{
			Type: "aws_vpc", Region: "us-east-1",
			Attrs:     map[string]eval.Value{"name": eval.String(name), "cidr_block": eval.String("10.0.0.0/16")},
			Principal: "conf",
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.ID)
	}
	if _, err := rt.Update(ctx, cloud.UpdateRequest{
		Type: "aws_vpc", ID: ids[0],
		Attrs:     map[string]eval.Value{"name": eval.String("ev-a2")},
		Principal: "conf",
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Delete(ctx, "aws_vpc", ids[2], "conf"); err != nil {
		t.Fatal(err)
	}
}

// drain consumes the endpoint's event stream via watermark long-polls until
// it has seen through lastSeq, simulating a consumer that disconnects after
// every batch and resumes from its watermark.
func drain(t *testing.T, rt *Runtime, since, lastSeq int64) []cloud.Event {
	t.Helper()
	var out []cloud.Event
	watermark := since
	for watermark < lastSeq {
		batch, err := rt.WaitActivity(context.Background(), watermark, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			t.Fatalf("long-poll timed out at watermark %d (want through %d)", watermark, lastSeq)
		}
		out = append(out, batch...)
		watermark = batch[len(batch)-1].Seq
	}
	return out
}

// TestConformanceEventStream proves the event stream behaves identically on
// the in-process and HTTP paths: the same mutation script yields the same
// event sequence, and a consumer that disconnects mid-stream and resumes
// from its watermark sees every event exactly once — no gaps, no duplicates.
func TestConformanceEventStream(t *testing.T) {
	sequences := map[string][]cloud.Event{}
	for _, ep := range endpoints() {
		t.Run(ep.name, func(t *testing.T) {
			opts := cloud.DefaultOptions()
			opts.DisableRateLimit = true
			opts.TimeScale = 0
			rt, sim := ep.make(t, opts, Options{})

			mutate(t, rt)
			last := sim.LastSeq()
			if last != 5 {
				t.Fatalf("LastSeq = %d, want 5", last)
			}

			// First leg: consume part of the stream, then "disconnect".
			first, err := rt.WaitActivity(context.Background(), 0, 2*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if len(first) == 0 {
				t.Fatal("no events on first poll")
			}
			cut := (len(first) + 1) / 2
			consumed := append([]cloud.Event(nil), first[:cut]...)

			// Resume from the watermark of the last PROCESSED event — not
			// from wherever the transport got to before the disconnect.
			consumed = append(consumed, drain(t, rt, consumed[cut-1].Seq, last)...)

			// Exactly once: seqs are 1..last with no gaps or duplicates.
			if int64(len(consumed)) != last {
				t.Fatalf("consumed %d events, want %d", len(consumed), last)
			}
			for i, e := range consumed {
				if e.Seq != int64(i+1) {
					t.Fatalf("event %d has seq %d: gap or duplicate in resumed stream", i, e.Seq)
				}
			}
			sequences[ep.name] = consumed
		})
	}

	// Cross-backend: identical observable sequences.
	simSeq, httpSeq := sequences["sim"], sequences["http"]
	if len(simSeq) == 0 || len(httpSeq) != len(simSeq) {
		t.Fatalf("sequence lengths differ: sim=%d http=%d", len(simSeq), len(httpSeq))
	}
	for i := range simSeq {
		a, b := simSeq[i], httpSeq[i]
		if a.Seq != b.Seq || a.Op != b.Op || a.Type != b.Type || a.Region != b.Region || a.Principal != b.Principal {
			t.Fatalf("event %d differs across backends:\nsim:  %+v\nhttp: %+v", i, a, b)
		}
	}
}

// TestConformanceActivityBusExactlyOnce proves the runtime's cloud.activity
// republication is exactly-once even when multiple readers race the same
// log: the CAS-claimed watermark ranges abut, so the bus carries each
// activity seq once per endpoint type.
func TestConformanceActivityBusExactlyOnce(t *testing.T) {
	for _, ep := range endpoints() {
		t.Run(ep.name, func(t *testing.T) {
			opts := cloud.DefaultOptions()
			opts.DisableRateLimit = true
			opts.TimeScale = 0
			bus := events.NewBus(nil)
			defer bus.Close()
			sub := bus.Subscribe(events.Filter{Kinds: []string{"cloud.activity"}}, 1024)
			rt, sim := ep.make(t, opts, Options{Bus: bus, CacheTTL: -1})

			mutate(t, rt)
			last := sim.LastSeq()

			// Racing readers over the full log: every event seq must reach
			// the bus exactly once.
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := rt.Activity(context.Background(), 0); err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()

			got := map[int64]int{}
			for done := false; !done; {
				select {
				case e := <-sub.C():
					got[e.CloudSeq]++
				default:
					done = true
				}
			}
			for seq := int64(1); seq <= last; seq++ {
				if got[seq] != 1 {
					t.Fatalf("activity seq %d republished %d times, want exactly 1 (all: %v)",
						seq, got[seq], got)
				}
			}
			if int64(len(got)) != last {
				t.Fatalf("bus carried %d distinct seqs, want %d", len(got), last)
			}
		})
	}
}
