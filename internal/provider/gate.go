package provider

import (
	"context"
	"sync"
	"time"
)

// gate is an AIMD concurrency limiter for one provider, in the spirit of
// TCP congestion control applied to control-plane calls: the window grows
// by 1/W per success (one full slot per round trip across the window) and
// halves on congestion — a 429 or a latency spike — with a cooldown so a
// burst of concurrent failures counts as one congestion event rather than
// collapsing the window multiplicatively per call.
//
// The window starts at the ceiling: cloud control planes advertise their
// limits via 429s, so the cheap strategy is to start optimistic and let
// multiplicative decrease find the real capacity.
type gate struct {
	mu       sync.Mutex
	window   float64 // current congestion window (slots)
	maxW     float64
	fixed    bool // DisableAdaptive: window pinned at maxW
	inflight int
	queued   int
	wake     chan struct{} // closed-and-remade broadcast on release/grow

	ewma         time.Duration // smoothed call latency
	lastDecrease time.Time
}

const (
	gateMinWindow    = 1.0
	gateCooldown     = 100 * time.Millisecond
	latencySpikeMult = 4 // latency > mult×EWMA counts as congestion
	latencySpikeMin  = 50 * time.Millisecond
)

func newGate(maxInFlight float64, fixed bool) *gate {
	return &gate{window: maxInFlight, maxW: maxInFlight, fixed: fixed, wake: make(chan struct{})}
}

// Acquire blocks until an in-flight slot is available under the current
// window, or ctx is done.
func (g *gate) Acquire(ctx context.Context) error {
	g.mu.Lock()
	for float64(g.inflight) >= g.window {
		g.queued++
		ch := g.wake
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			g.mu.Lock()
			g.queued--
			g.mu.Unlock()
			return ctx.Err()
		case <-ch:
		}
		g.mu.Lock()
		g.queued--
	}
	g.inflight++
	g.mu.Unlock()
	return nil
}

// Release frees the slot taken by Acquire.
func (g *gate) Release() {
	g.mu.Lock()
	g.inflight--
	g.broadcastLocked()
	g.mu.Unlock()
}

// OnSuccess applies additive increase and latency-spike detection.
func (g *gate) OnSuccess(latency time.Duration, now time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	spike := g.ewma > 0 && latency > latencySpikeMin && latency > latencySpikeMult*g.ewma
	// EWMA with α=0.3: responsive enough to track mode shifts, smooth
	// enough that one slow call is a spike, not the new normal.
	if g.ewma == 0 {
		g.ewma = latency
	} else {
		g.ewma = time.Duration(0.7*float64(g.ewma) + 0.3*float64(latency))
	}
	if g.fixed {
		return
	}
	if spike {
		g.decreaseLocked(now)
		return
	}
	if g.window < g.maxW {
		g.window += 1 / g.window
		if g.window > g.maxW {
			g.window = g.maxW
		}
		g.broadcastLocked()
	}
}

// OnCongestion applies multiplicative decrease (halving, floored) for an
// explicit throttle signal.
func (g *gate) OnCongestion(now time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fixed {
		return
	}
	g.decreaseLocked(now)
}

func (g *gate) decreaseLocked(now time.Time) {
	if now.Sub(g.lastDecrease) < gateCooldown {
		return
	}
	g.lastDecrease = now
	g.window /= 2
	if g.window < gateMinWindow {
		g.window = gateMinWindow
	}
}

// broadcastLocked wakes every goroutine blocked in Acquire.
func (g *gate) broadcastLocked() {
	close(g.wake)
	g.wake = make(chan struct{})
}

// Window returns the current congestion window.
func (g *gate) Window() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.window
}

// Queued returns how many callers are waiting for a slot.
func (g *gate) Queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queued
}
