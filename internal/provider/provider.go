// Package provider is the runtime dispatcher between the engine and the
// cloud control plane. Every layer that used to call cloud.Interface
// directly (apply, drift, plan refresh, diagnose via the facade) now routes
// through a Runtime, which owns the concerns those layers used to duplicate
// or skip:
//
//   - in-flight deduplication: identical concurrent reads (Get/List/
//     Activity) collapse into one upstream call whose result is shared by
//     every waiter (singleflight);
//   - a read-through cache keyed by (type, id) for Get and (type, region)
//     for List, invalidated by the runtime's own writes and by activity-log
//     events that flow through it;
//   - AIMD adaptive concurrency per provider: additive increase on success,
//     multiplicative decrease on 429s and latency spikes, replacing fixed
//     semaphores for cloud I/O;
//   - centralized retry with full-jitter exponential backoff and
//     Retry-After honoring — no other layer retries cloud calls.
//
// The Runtime satisfies cloud.Interface, so it is transparent to callers
// and composes with both the in-process simulator and the HTTP client.
// Everything is instrumented through internal/telemetry: queue depth,
// window size, cache hit and coalesce rates, retries.
package provider

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/events"
	"cloudless/internal/schema"
	"cloudless/internal/telemetry"
)

// Options configures a Runtime. The zero value gives production defaults.
type Options struct {
	// MaxRetries bounds attempts per logical call (default 4).
	MaxRetries int
	// RetryBase is the first backoff ceiling (default 50ms); attempt k
	// sleeps a uniform random duration in [0, min(RetryCap, RetryBase·2^k)).
	RetryBase time.Duration
	// RetryCap caps the backoff ceiling (default 2s).
	RetryCap time.Duration
	// CacheTTL bounds read-cache entry lifetime. 0 means the default of
	// 30s; negative disables the cache entirely.
	CacheTTL time.Duration
	// MaxInFlight is the AIMD window ceiling per provider (default 64).
	// The window starts wide (at the ceiling) and halves on congestion.
	MaxInFlight int
	// DisableCoalesce turns off in-flight read deduplication.
	DisableCoalesce bool
	// DisableAdaptive pins the window at MaxInFlight (no AIMD).
	DisableAdaptive bool
	// DisableJitter makes backoff deterministic exponential — the retry
	// policy the applier used to have. Kept as an ablation knob for the PV
	// experiment; production wants jitter.
	DisableJitter bool
	// IgnoreRetryAfter drops server backpressure hints (ablation knob).
	IgnoreRetryAfter bool
	// Clock supplies timestamps (latency EWMA, cache expiry). Defaults to
	// telemetry.System; tests inject a VirtualClock.
	Clock telemetry.Clock
	// Sleep, when non-nil, replaces the real backoff sleep. Tests use it
	// with a virtual clock to keep retry timing deterministic.
	Sleep func(ctx context.Context, d time.Duration) error
	// Registry receives runtime metrics when no recorder rides the call
	// context. May be nil.
	Registry *telemetry.Registry
	// Bus receives runtime signal events (throttles, AIMD gate resizes,
	// activity tail) when no bus rides the call context. May be nil.
	Bus *events.Bus
	// Seed seeds backoff jitter (default 1, deterministic).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 4
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 2 * time.Second
	}
	if o.CacheTTL == 0 {
		o.CacheTTL = 30 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.Clock == nil {
		o.Clock = telemetry.System
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Runtime dispatches cloud calls for one upstream endpoint. It is safe for
// concurrent use and satisfies cloud.Interface.
type Runtime struct {
	upstream cloud.Interface
	opts     Options

	flights flightGroup
	cache   *ttlCache

	gateMu sync.Mutex
	gates  map[string]*gate

	rngMu sync.Mutex
	rng   *rand.Rand

	// seen is the activity-log invalidation watermark: events at or below
	// it have already been applied to the cache.
	seen atomic.Int64

	stats statsCounters
}

var _ cloud.Interface = (*Runtime)(nil)

// New wraps upstream in a Runtime. If upstream already is a Runtime it is
// returned unchanged (opts are ignored), so layered wrapping — the facade
// wraps once, apply defensively wraps whatever it was handed — never stacks
// dispatchers.
func New(upstream cloud.Interface, opts Options) *Runtime {
	if rt, ok := upstream.(*Runtime); ok {
		return rt
	}
	opts = opts.withDefaults()
	return &Runtime{
		upstream: upstream,
		opts:     opts,
		cache:    newTTLCache(opts.CacheTTL),
		gates:    map[string]*gate{},
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
}

// Unwrap returns the upstream cloud implementation (the simulator or HTTP
// client the Runtime fronts). Unwrapping a non-Runtime returns it as-is.
func Unwrap(cl cloud.Interface) cloud.Interface {
	if rt, ok := cl.(*Runtime); ok {
		return rt.upstream
	}
	return cl
}

// freshKey marks contexts whose reads must bypass the cache lookup.
type freshKey struct{}

// WithFresh returns a context whose reads skip the cache and hit the cloud
// (results are still coalesced with concurrent identical reads, and still
// populate the cache). Drift scans and plan refresh use it: their whole
// point is observing out-of-band change, which no TTL heuristic can bound.
func WithFresh(ctx context.Context) context.Context {
	return context.WithValue(ctx, freshKey{}, true)
}

func isFresh(ctx context.Context) bool {
	v, _ := ctx.Value(freshKey{}).(bool)
	return v
}

// retryCounterKey carries a per-call retry counter through the context.
type retryCounterKey struct{}

// WithRetryCounter installs a counter that the Runtime increments once per
// retry attempt made under this context. The applier uses it to preserve
// per-op retry accounting now that retry lives here.
func WithRetryCounter(ctx context.Context) (context.Context, *atomic.Int64) {
	var n atomic.Int64
	return context.WithValue(ctx, retryCounterKey{}, &n), &n
}

func retryCounter(ctx context.Context) *atomic.Int64 {
	n, _ := ctx.Value(retryCounterKey{}).(*atomic.Int64)
	return n
}

// statsCounters are the always-on internal counters behind Stats().
type statsCounters struct {
	calls       atomic.Int64
	retries     atomic.Int64
	throttles   atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	coalesced   atomic.Int64
}

// Stats is a point-in-time snapshot of runtime behaviour.
type Stats struct {
	Calls       int64              // upstream attempts issued
	Retries     int64              // attempts beyond the first
	Throttles   int64              // 429s observed
	CacheHits   int64              // reads served from cache
	CacheMisses int64              // reads that went upstream
	Coalesced   int64              // reads that joined an in-flight call
	Windows     map[string]float64 // AIMD window per provider gate
}

// Stats snapshots the runtime counters and per-gate windows.
func (r *Runtime) Stats() Stats {
	s := Stats{
		Calls:       r.stats.calls.Load(),
		Retries:     r.stats.retries.Load(),
		Throttles:   r.stats.throttles.Load(),
		CacheHits:   r.stats.cacheHits.Load(),
		CacheMisses: r.stats.cacheMisses.Load(),
		Windows:     map[string]float64{},
	}
	r.gateMu.Lock()
	for k, g := range r.gates {
		s.Windows[k] = g.Window()
	}
	r.gateMu.Unlock()
	s.Coalesced = r.stats.coalesced.Load()
	return s
}

// registryFor resolves the metrics registry for one call: the context's
// recorder wins, then the configured registry, else nil (all telemetry
// types are nil-safe).
func (r *Runtime) registryFor(ctx context.Context) *telemetry.Registry {
	if rec := telemetry.FromContext(ctx); rec != nil {
		return rec.Metrics()
	}
	return r.opts.Registry
}

// busFor resolves the event bus for one call: the context's bus wins, then
// the configured bus, else nil (whose methods are all no-ops).
func (r *Runtime) busFor(ctx context.Context) *events.Bus {
	if b := events.FromContext(ctx); b != nil {
		return b
	}
	return r.opts.Bus
}

func (r *Runtime) now() time.Time { return r.opts.Clock.Now() }

// gateFor returns the AIMD gate for a resource type's provider.
func (r *Runtime) gateFor(typ string) (*gate, string) {
	name := "default"
	if p, ok := schema.ProviderForType(typ); ok {
		name = p.Name
	}
	r.gateMu.Lock()
	defer r.gateMu.Unlock()
	g, ok := r.gates[name]
	if !ok {
		g = newGate(float64(r.opts.MaxInFlight), r.opts.DisableAdaptive)
		r.gates[name] = g
	}
	return g, name
}

// backoff computes the sleep before retry attempt (attempt counts from 0 =
// first retry), honoring the server's Retry-After hint as a floor.
func (r *Runtime) backoff(attempt int, retryAfter time.Duration) time.Duration {
	ceil := r.opts.RetryBase << uint(attempt)
	if ceil > r.opts.RetryCap || ceil <= 0 {
		ceil = r.opts.RetryCap
	}
	d := ceil
	if !r.opts.DisableJitter {
		r.rngMu.Lock()
		d = time.Duration(r.rng.Float64() * float64(ceil))
		r.rngMu.Unlock()
	}
	if !r.opts.IgnoreRetryAfter && retryAfter > d {
		d = retryAfter
	}
	return d
}

func (r *Runtime) sleep(ctx context.Context, d time.Duration) error {
	if r.opts.Sleep != nil {
		return r.opts.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// call is the single chokepoint every upstream operation goes through: it
// acquires an AIMD slot per attempt, measures latency, classifies failures,
// and retries transient errors with full-jitter backoff.
func (r *Runtime) call(ctx context.Context, op, typ string, fn func(context.Context) (any, error)) (any, error) {
	g, gateKey := r.gateFor(typ)
	reg := r.registryFor(ctx)
	for attempt := 0; ; attempt++ {
		waitStart := r.now()
		if err := g.Acquire(ctx); err != nil {
			return nil, err
		}
		if wait := r.now().Sub(waitStart); wait > 0 {
			reg.Histogram("provider.acquire_wait_ms", "provider", gateKey).
				Observe(float64(wait) / float64(time.Millisecond))
		}
		reg.Gauge("provider.queue_depth", "provider", gateKey).Set(float64(g.Queued()))

		r.stats.calls.Add(1)
		start := r.now()
		v, err := fn(ctx)
		latency := r.now().Sub(start)
		g.Release()

		if err == nil {
			g.OnSuccess(latency, r.now())
			reg.Gauge("provider.window", "provider", gateKey).Set(g.Window())
			return v, nil
		}
		var retryAfter time.Duration
		if ae, ok := asAPIError(err); ok && ae.Code == cloud.CodeThrottled {
			r.stats.throttles.Add(1)
			retryAfter = ae.RetryAfter
			before := g.Window()
			g.OnCongestion(r.now())
			after := g.Window()
			reg.Gauge("provider.window", "provider", gateKey).Set(after)
			bus := r.busFor(ctx)
			bus.Publish(events.Event{Kind: "provider.throttled",
				Provider: gateKey, Action: op, Type: typ, Window: after})
			if after != before {
				bus.Publish(events.Event{Kind: "provider.gate_resize",
					Provider: gateKey, Window: after})
			}
		}
		if !cloud.IsRetryable(err) || ctx.Err() != nil {
			return nil, err
		}
		if attempt+1 >= r.opts.MaxRetries {
			return nil, fmt.Errorf("after %d attempts: %w", r.opts.MaxRetries, err)
		}
		r.stats.retries.Add(1)
		if n := retryCounter(ctx); n != nil {
			n.Add(1)
		}
		reg.Counter("provider.retries", "op", op, "type", typ).Inc()
		if err := r.sleep(ctx, r.backoff(attempt, retryAfter)); err != nil {
			return nil, err
		}
	}
}

func asAPIError(err error) (*cloud.APIError, bool) {
	var ae *cloud.APIError
	ok := errors.As(err, &ae)
	return ae, ok
}

// read is the shared Get/List/Activity path: cache lookup (unless fresh),
// then coalesced upstream call, then cache fill.
func (r *Runtime) read(ctx context.Context, op, typ, key string, cacheable bool, fn func(context.Context) (any, error)) (any, error) {
	reg := r.registryFor(ctx)
	if cacheable && !isFresh(ctx) {
		if v, ok := r.cache.get(key, r.now()); ok {
			r.stats.cacheHits.Add(1)
			reg.Counter("provider.cache_hits", "op", op).Inc()
			return v, nil
		}
	}
	if cacheable {
		r.stats.cacheMisses.Add(1)
		reg.Counter("provider.cache_misses", "op", op).Inc()
	}
	do := func(fctx context.Context) (any, error) {
		return r.call(fctx, op, typ, fn)
	}
	var (
		v   any
		err error
	)
	if r.opts.DisableCoalesce {
		v, err = do(ctx)
	} else {
		v, _, err = r.flights.Do(ctx, key, do, func() {
			r.stats.coalesced.Add(1)
			reg.Counter("provider.coalesced", "op", op).Inc()
		})
	}
	if err != nil {
		return nil, err
	}
	if cacheable {
		r.cache.put(key, v, r.now())
	}
	return v, nil
}

// Create implements cloud.Interface. The response write-throughs into the
// Get cache and invalidates the type's List entries.
func (r *Runtime) Create(ctx context.Context, req cloud.CreateRequest) (*cloud.Resource, error) {
	v, err := r.call(ctx, "create", req.Type, func(cctx context.Context) (any, error) {
		return r.upstream.Create(cctx, req)
	})
	if err != nil {
		return nil, err
	}
	res := v.(*cloud.Resource)
	r.cache.put(getKey(req.Type, res.ID), res.Clone(), r.now())
	r.cache.invalidatePrefix(listPrefix(req.Type))
	r.cache.invalidate(healthKey(req.Type, res.ID))
	return res, nil
}

// Get implements cloud.Interface.
func (r *Runtime) Get(ctx context.Context, typ, id string) (*cloud.Resource, error) {
	v, err := r.read(ctx, "get", typ, getKey(typ, id), true, func(cctx context.Context) (any, error) {
		return r.upstream.Get(cctx, typ, id)
	})
	if err != nil {
		return nil, err
	}
	return v.(*cloud.Resource).Clone(), nil
}

// Update implements cloud.Interface.
func (r *Runtime) Update(ctx context.Context, req cloud.UpdateRequest) (*cloud.Resource, error) {
	v, err := r.call(ctx, "update", req.Type, func(cctx context.Context) (any, error) {
		return r.upstream.Update(cctx, req)
	})
	if err != nil {
		return nil, err
	}
	res := v.(*cloud.Resource)
	r.cache.put(getKey(req.Type, res.ID), res.Clone(), r.now())
	r.cache.invalidatePrefix(listPrefix(req.Type))
	r.cache.invalidate(healthKey(req.Type, res.ID))
	return res, nil
}

// Delete implements cloud.Interface.
func (r *Runtime) Delete(ctx context.Context, typ, id, principal string) error {
	_, err := r.call(ctx, "delete", typ, func(cctx context.Context) (any, error) {
		return nil, r.upstream.Delete(cctx, typ, id, principal)
	})
	// Drop cache entries even on error: a failed delete may have partially
	// executed server-side, and a 404 means the entry is stale anyway.
	r.cache.invalidate(getKey(typ, id))
	r.cache.invalidatePrefix(listPrefix(typ))
	r.cache.invalidate(healthKey(typ, id))
	return err
}

// List implements cloud.Interface.
func (r *Runtime) List(ctx context.Context, typ, region string) ([]*cloud.Resource, error) {
	v, err := r.read(ctx, "list", typ, listKey(typ, region), true, func(cctx context.Context) (any, error) {
		rs, err := r.upstream.List(cctx, typ, region)
		if err != nil {
			return nil, err
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	cached := v.([]*cloud.Resource)
	out := make([]*cloud.Resource, len(cached))
	for i, res := range cached {
		out[i] = res.Clone()
	}
	return out, nil
}

// Health implements cloud.Interface. Probes are cacheable reads: concurrent
// probes of the same resource coalesce, and a cached report serves casual
// readers. The guarded apply's probe loop runs under WithFresh — readiness
// is exactly the kind of out-of-band change no TTL can bound — which still
// coalesces and refills the cache for everyone else.
func (r *Runtime) Health(ctx context.Context, typ, id string) (*cloud.HealthReport, error) {
	v, err := r.read(ctx, "health", typ, healthKey(typ, id), true, func(cctx context.Context) (any, error) {
		return r.upstream.Health(cctx, typ, id)
	})
	if err != nil {
		return nil, err
	}
	rep := *v.(*cloud.HealthReport)
	return &rep, nil
}

// Activity implements cloud.Interface. Results are never cached (the log
// only grows, so a cached tail is immediately stale) but concurrent reads
// of the same cursor coalesce. Every event flowing through invalidates the
// cache entries it touches — this is what keeps cached reads coherent with
// out-of-band change: the drift watcher always reads the log before it
// issues Gets, so by the time it looks, the stale entries are gone.
func (r *Runtime) Activity(ctx context.Context, afterSeq int64) ([]cloud.Event, error) {
	key := "activity/" + strconv.FormatInt(afterSeq, 10)
	v, err := r.read(ctx, "activity", "", key, false, func(cctx context.Context) (any, error) {
		return r.upstream.Activity(cctx, afterSeq)
	})
	if err != nil {
		return nil, err
	}
	evs := v.([]cloud.Event)
	r.observeEvents(ctx, evs)
	out := make([]cloud.Event, len(evs))
	copy(out, evs)
	return out, nil
}

// WaitActivity implements cloud.ActivityWaiter: it long-polls the upstream
// (natively when the upstream supports it, by polling otherwise), bypassing
// the runtime's gates and cache — activity reads are deliberately cheap and
// a parked poll must not hold an AIMD slot. Events still flow through
// observeEvents, so a tail keeps the cache coherent exactly like Activity.
func (r *Runtime) WaitActivity(ctx context.Context, afterSeq int64, wait time.Duration) ([]cloud.Event, error) {
	evs, err := cloud.WaitActivity(ctx, r.upstream, afterSeq, wait)
	if err != nil {
		return nil, err
	}
	r.observeEvents(ctx, evs)
	return evs, nil
}

// observeEvents applies activity-log invalidation: every event newer than
// the watermark evicts the cache entries for its resource and type. The
// watermark only advances after the evictions run, so overlapping readers
// at worst invalidate twice, never skip. The watermark advance doubles as
// an exactly-once claim for the bus: the reader whose CAS lands owns the
// (cur, last] range and republishes exactly those events as cloud.activity
// — overlapping readers never produce duplicates, and since ranges abut,
// never leave gaps.
func (r *Runtime) observeEvents(ctx context.Context, evs []cloud.Event) {
	if len(evs) == 0 {
		return
	}
	seen := r.seen.Load()
	last := seen
	for _, e := range evs {
		if e.Seq <= seen {
			continue
		}
		r.cache.invalidate(getKey(e.Type, e.ID))
		r.cache.invalidatePrefix(listPrefix(e.Type))
		r.cache.invalidate(healthKey(e.Type, e.ID))
		if e.Seq > last {
			last = e.Seq
		}
	}
	for {
		cur := r.seen.Load()
		if last <= cur {
			return
		}
		if r.seen.CompareAndSwap(cur, last) {
			bus := r.busFor(ctx)
			if bus == nil {
				return
			}
			for _, e := range evs {
				if e.Seq <= cur || e.Seq > last {
					continue
				}
				bus.Publish(events.Event{Kind: "cloud.activity",
					CloudSeq: e.Seq, Time: e.Time.UnixNano(),
					Action: string(e.Op), Type: e.Type, ID: e.ID,
					Region: e.Region, Principal: e.Principal})
			}
			return
		}
	}
}
