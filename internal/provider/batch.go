package provider

import (
	"context"
	"strconv"

	"cloudless/internal/cloud"
)

// Bulk operations on the Runtime. Gate accounting is batch-aware: one batch
// holds ONE AIMD slot regardless of item count — the window tracks in-flight
// requests, and a batch is one request on the wire — so batching multiplies
// effective throughput under the same window. Congestion feedback (a 429 on
// the batch) shrinks the window exactly once, like any other call.
//
// Batched reads are their own coalescing: the items of one batch already
// share one flight, so the runtime skips the per-key singleflight and goes
// straight to cache partitioning (hits served locally, misses batched
// upstream, results write-through). Per-item retryable failures inside an
// otherwise-successful batch are NOT retried here — the batch call itself
// succeeded; callers that need stragglers redriven fall back to the single
// call path, which carries the full retry policy.

var (
	_ cloud.BatchCreator = (*Runtime)(nil)
	_ cloud.BatchGetter  = (*Runtime)(nil)
	_ cloud.PageLister   = (*Runtime)(nil)
)

// BatchCreate dispatches creates in MaxBatchItems chunks through the gate
// and write-throughs every created resource into the read cache.
func (r *Runtime) BatchCreate(ctx context.Context, reqs []cloud.CreateRequest) ([]cloud.BatchResult, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	results := make([]cloud.BatchResult, 0, len(reqs))
	for start := 0; start < len(reqs); start += cloud.MaxBatchItems {
		end := start + cloud.MaxBatchItems
		if end > len(reqs) {
			end = len(reqs)
		}
		chunk := reqs[start:end]
		v, err := r.call(ctx, "batch_create", chunk[0].Type, func(cctx context.Context) (any, error) {
			return cloud.BatchCreate(cctx, r.upstream, chunk)
		})
		if err != nil {
			return nil, err
		}
		results = append(results, v.([]cloud.BatchResult)...)
	}
	types := map[string]bool{}
	for i, res := range results {
		if res.Resource == nil {
			continue
		}
		r.cache.put(getKey(reqs[i].Type, res.Resource.ID), res.Resource.Clone(), r.now())
		r.cache.invalidate(healthKey(reqs[i].Type, res.Resource.ID))
		types[reqs[i].Type] = true
	}
	for typ := range types {
		r.cache.invalidatePrefix(listPrefix(typ))
	}
	return results, nil
}

// BatchGet partitions keys into cache hits and misses (all keys miss under
// WithFresh), fetches the misses in batched upstream calls, and fills the
// cache so later single Gets hit.
func (r *Runtime) BatchGet(ctx context.Context, keys []cloud.ResourceKey) ([]cloud.BatchResult, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	reg := r.registryFor(ctx)
	results := make([]cloud.BatchResult, len(keys))
	var miss []int
	if isFresh(ctx) {
		miss = make([]int, len(keys))
		for i := range keys {
			miss[i] = i
		}
	} else {
		for i, k := range keys {
			if v, ok := r.cache.get(getKey(k.Type, k.ID), r.now()); ok {
				results[i] = cloud.BatchResult{Resource: v.(*cloud.Resource).Clone()}
				r.stats.cacheHits.Add(1)
				reg.Counter("provider.cache_hits", "op", "batch_get").Inc()
				continue
			}
			miss = append(miss, i)
		}
	}
	if len(miss) > 0 {
		r.stats.cacheMisses.Add(int64(len(miss)))
		reg.Counter("provider.cache_misses", "op", "batch_get").Add(int64(len(miss)))
	}
	for start := 0; start < len(miss); start += cloud.MaxBatchItems {
		end := start + cloud.MaxBatchItems
		if end > len(miss) {
			end = len(miss)
		}
		chunk := miss[start:end]
		missKeys := make([]cloud.ResourceKey, len(chunk))
		for j, i := range chunk {
			missKeys[j] = keys[i]
		}
		v, err := r.call(ctx, "batch_get", missKeys[0].Type, func(cctx context.Context) (any, error) {
			return cloud.BatchGet(cctx, r.upstream, missKeys)
		})
		if err != nil {
			return nil, err
		}
		batch := v.([]cloud.BatchResult)
		for j, i := range chunk {
			results[i] = batch[j]
			if res := batch[j].Resource; res != nil {
				r.cache.put(getKey(keys[i].Type, res.ID), res.Clone(), r.now())
			}
		}
	}
	return results, nil
}

// ListPage reads one page through the gate. Pages are cached under a
// per-page key below the type's list prefix, so the same write-driven
// invalidation that drops full-list entries drops stale pages too.
func (r *Runtime) ListPage(ctx context.Context, typ, region string, limit int, pageToken string) (*cloud.ListPageResult, error) {
	key := listKey(typ, region) + "?limit=" + strconv.Itoa(limit) + "&after=" + pageToken
	v, err := r.read(ctx, "list", typ, key, true, func(cctx context.Context) (any, error) {
		return cloud.ListPaged(cctx, r.upstream, typ, region, limit, pageToken)
	})
	if err != nil {
		return nil, err
	}
	page := v.(*cloud.ListPageResult)
	out := &cloud.ListPageResult{
		Resources:     make([]*cloud.Resource, len(page.Resources)),
		NextPageToken: page.NextPageToken,
	}
	for i, res := range page.Resources {
		out.Resources[i] = res.Clone()
	}
	return out, nil
}
