package provider

import (
	"strings"
	"sync"
	"time"
)

// Cache keys: Gets are keyed by (type, id), Lists by (type, region). The
// list prefix covers every region variant of a type — a write to any
// resource of a type invalidates all of its list entries, including the
// all-regions ("") one.
func getKey(typ, id string) string      { return "get/" + typ + "/" + id }
func healthKey(typ, id string) string   { return "health/" + typ + "/" + id }
func listKey(typ, region string) string { return "list/" + typ + "/" + region }
func listPrefix(typ string) string      { return "list/" + typ + "/" }

// cacheMaxEntries bounds the cache; on overflow the sweep drops expired
// entries first and then arbitrary ones (map order) until under the cap.
// The cache is a TTL cache, not an LRU: precision of eviction matters far
// less than never exceeding the bound.
const cacheMaxEntries = 8192

type cacheEntry struct {
	val     any
	expires time.Time
}

// ttlCache is the runtime's read-through cache. A nil-TTL (disabled) cache
// still accepts calls and just never stores anything.
type ttlCache struct {
	mu       sync.Mutex
	ttl      time.Duration
	disabled bool
	m        map[string]cacheEntry
}

func newTTLCache(ttl time.Duration) *ttlCache {
	return &ttlCache{ttl: ttl, disabled: ttl < 0, m: map[string]cacheEntry{}}
}

func (c *ttlCache) get(key string, now time.Time) (any, bool) {
	if c.disabled {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	if now.After(e.expires) {
		delete(c.m, key)
		return nil, false
	}
	return e.val, true
}

func (c *ttlCache) put(key string, val any, now time.Time) {
	if c.disabled {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= cacheMaxEntries {
		c.sweepLocked(now)
	}
	c.m[key] = cacheEntry{val: val, expires: now.Add(c.ttl)}
}

func (c *ttlCache) invalidate(key string) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}

func (c *ttlCache) invalidatePrefix(prefix string) {
	c.mu.Lock()
	for k := range c.m {
		if strings.HasPrefix(k, prefix) {
			delete(c.m, k)
		}
	}
	c.mu.Unlock()
}

// sweepLocked evicts expired entries, then arbitrary ones until the cache
// is at most half full — amortizing the sweep across many puts.
func (c *ttlCache) sweepLocked(now time.Time) {
	for k, e := range c.m {
		if now.After(e.expires) {
			delete(c.m, k)
		}
	}
	for k := range c.m {
		if len(c.m) <= cacheMaxEntries/2 {
			break
		}
		delete(c.m, k)
	}
}
