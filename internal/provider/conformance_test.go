package provider

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/eval"
)

// The conformance suite runs the same scenarios against the in-process
// simulator and the HTTP client (fronting the same simulator over a real
// network path) — both behind a Runtime — and asserts identical observable
// behaviour: a mid-request cancellation surfaces as the caller's context
// error on both paths, never a retryable transport error; injected 429
// bursts are absorbed by the runtime's retry on both paths.

type endpoint struct {
	name string
	make func(t *testing.T, opts cloud.Options, ropts Options) (*Runtime, *cloud.Sim)
}

func endpoints() []endpoint {
	return []endpoint{
		{name: "sim", make: func(t *testing.T, opts cloud.Options, ropts Options) (*Runtime, *cloud.Sim) {
			sim := cloud.NewSim(opts)
			return New(sim, ropts), sim
		}},
		{name: "http", make: func(t *testing.T, opts cloud.Options, ropts Options) (*Runtime, *cloud.Sim) {
			sim := cloud.NewSim(opts)
			srv := httptest.NewServer(cloud.NewServer(sim, slog.New(slog.NewTextHandler(io.Discard, nil))))
			t.Cleanup(srv.Close)
			return New(cloud.NewClient(srv.URL, nil), ropts), sim
		}},
	}
}

func seedVPC(t *testing.T, sim *cloud.Sim) *cloud.Resource {
	t.Helper()
	vpc, err := sim.Create(context.Background(), cloud.CreateRequest{
		Type: "aws_vpc", Region: "us-east-1",
		Attrs:     map[string]eval.Value{"name": eval.String("conf"), "cidr_block": eval.String("10.0.0.0/16")},
		Principal: "seed",
	})
	if err != nil {
		t.Fatal(err)
	}
	return vpc
}

func TestConformanceMidRequestCancellation(t *testing.T) {
	for _, ep := range endpoints() {
		t.Run(ep.name, func(t *testing.T) {
			opts := cloud.DefaultOptions()
			opts.DisableRateLimit = true
			// ~200ms wall reads (20s modeled × 0.01 scale) while creates
			// stay fast enough for test setup.
			opts.TimeScale = 0.01
			opts.ReadLatency = 20 * time.Second
			rt, sim := ep.make(t, opts, Options{})
			vpc := seedVPC(t, sim)

			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(20 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := rt.Get(ctx, "aws_vpc", vpc.ID)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: mid-request cancel => %v, want context.Canceled", ep.name, err)
			}
			// The call must abort near the cancel, not ride out the full
			// read latency (and must not burn retries on a dead context).
			if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
				t.Errorf("%s: canceled get took %v, want prompt abort", ep.name, elapsed)
			}
			if calls := sim.Metrics().Calls; calls > 2 {
				t.Errorf("%s: %d upstream calls after cancel, want no retry storm", ep.name, calls)
			}

			// List behaves the same.
			lctx, lcancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(20 * time.Millisecond)
				lcancel()
			}()
			if _, err := rt.List(lctx, "aws_vpc", "us-east-1"); !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: canceled list => %v, want context.Canceled", ep.name, err)
			}
		})
	}
}

func TestConformanceCancelDoesNotPoisonFollowers(t *testing.T) {
	for _, ep := range endpoints() {
		t.Run(ep.name, func(t *testing.T) {
			opts := cloud.DefaultOptions()
			opts.DisableRateLimit = true
			opts.TimeScale = 0.01
			opts.ReadLatency = 15 * time.Second
			rt, sim := ep.make(t, opts, Options{})
			vpc := seedVPC(t, sim)

			// One canceling reader and one patient reader coalesce onto the
			// same flight; the patient one must still get the resource.
			fctx := WithFresh(context.Background())
			cctx, cancel := context.WithCancel(fctx)
			var wg sync.WaitGroup
			var cancelErr, followErr error
			var followRes *cloud.Resource
			wg.Add(2)
			go func() {
				defer wg.Done()
				_, cancelErr = rt.Get(cctx, "aws_vpc", vpc.ID)
			}()
			go func() {
				defer wg.Done()
				time.Sleep(10 * time.Millisecond) // join the in-flight read
				followRes, followErr = rt.Get(fctx, "aws_vpc", vpc.ID)
			}()
			time.Sleep(40 * time.Millisecond)
			cancel()
			wg.Wait()
			if !errors.Is(cancelErr, context.Canceled) {
				t.Errorf("%s: canceling reader => %v, want Canceled", ep.name, cancelErr)
			}
			if followErr != nil || followRes == nil || followRes.ID != vpc.ID {
				t.Errorf("%s: patient reader => %v, %v; want the resource", ep.name, followRes, followErr)
			}
		})
	}
}

func TestConformance429Burst(t *testing.T) {
	for _, ep := range endpoints() {
		t.Run(ep.name, func(t *testing.T) {
			opts := cloud.DefaultOptions()
			opts.DisableRateLimit = true
			ropts := Options{RetryBase: time.Millisecond, MaxRetries: 8}
			rt, sim := ep.make(t, opts, ropts)
			vpc := seedVPC(t, sim)

			const burst = 6
			sim.InjectThrottles(burst)
			fctx := WithFresh(context.Background())
			var wg sync.WaitGroup
			errs := make([]error, 8)
			for i := range errs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// Distinct keys so the burst is absorbed by retries,
					// not hidden by coalescing.
					if i%2 == 0 {
						_, errs[i] = rt.Get(fctx, "aws_vpc", vpc.ID+string(rune('a'+i)))
					} else {
						_, errs[i] = rt.List(fctx, "aws_vpc", "us-east-1")
					}
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil && !cloud.IsNotFound(err) {
					t.Errorf("%s: caller %d => %v, want burst absorbed by retry", ep.name, i, err)
				}
			}
			if got := sim.Metrics().Throttled; got != burst {
				t.Errorf("%s: sim throttled %d calls, want %d", ep.name, got, burst)
			}
			st := rt.Stats()
			if st.Retries < burst {
				t.Errorf("%s: runtime retries = %d, want >= %d (every 429 retried)", ep.name, st.Retries, burst)
			}
			if st.Throttles != int64(burst) {
				t.Errorf("%s: runtime observed %d throttles, want %d", ep.name, st.Throttles, burst)
			}
		})
	}
}

func TestConformanceHealthLifecycle(t *testing.T) {
	for _, ep := range endpoints() {
		t.Run(ep.name, func(t *testing.T) {
			opts := cloud.DefaultOptions()
			opts.DisableRateLimit = true
			rt, sim := ep.make(t, opts, Options{})

			// Missing resources 404 identically on both paths.
			if _, err := rt.Health(context.Background(), "aws_vpc", "vpc-nope"); !cloud.IsNotFound(err) {
				t.Fatalf("%s: health of missing resource => %v, want 404", ep.name, err)
			}

			vpc := seedVPC(t, sim)
			rep, err := rt.Health(context.Background(), "aws_vpc", vpc.ID)
			if err != nil {
				t.Fatalf("%s: health: %s", ep.name, err)
			}
			if rep.Status != cloud.HealthReady {
				t.Fatalf("%s: status = %s, want ready", ep.name, rep.Status)
			}

			// Degrade server-side; a cached report must not mask it under
			// WithFresh (the guarded probe path).
			sim.SetHealth("aws_vpc", vpc.ID, cloud.HealthDegraded, "conformance")
			rep, err = rt.Health(WithFresh(context.Background()), "aws_vpc", vpc.ID)
			if err != nil {
				t.Fatalf("%s: fresh health: %s", ep.name, err)
			}
			if rep.Status != cloud.HealthDegraded || rep.Reason != "conformance" {
				t.Fatalf("%s: fresh report = %+v, want degraded/conformance", ep.name, rep)
			}
		})
	}
}
