package provider

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	"cloudless/internal/telemetry"
)

// fakeCloud is a scriptable upstream: per-op call counters, an error queue
// consumed before successes, and an optional hold channel that blocks reads
// until released (for coalescing tests).
type fakeCloud struct {
	mu      sync.Mutex
	gets    int
	lists   int
	acts    int
	creates int
	updates int
	errs    []error // popped per call until empty
	hold    chan struct{}

	res map[string]*cloud.Resource
}

func newFakeCloud() *fakeCloud {
	return &fakeCloud{res: map[string]*cloud.Resource{}}
}

func (f *fakeCloud) put(typ, id, region string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.res[typ+"/"+id] = &cloud.Resource{ID: id, Type: typ, Region: region,
		Attrs: map[string]eval.Value{"name": eval.String(id)}}
}

func (f *fakeCloud) popErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.errs) == 0 {
		return nil
	}
	err := f.errs[0]
	f.errs = f.errs[1:]
	return err
}

func (f *fakeCloud) waitHold(ctx context.Context) error {
	f.mu.Lock()
	hold := f.hold
	f.mu.Unlock()
	if hold == nil {
		return nil
	}
	select {
	case <-hold:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (f *fakeCloud) Get(ctx context.Context, typ, id string) (*cloud.Resource, error) {
	f.mu.Lock()
	f.gets++
	f.mu.Unlock()
	if err := f.waitHold(ctx); err != nil {
		return nil, err
	}
	if err := f.popErr(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.res[typ+"/"+id]
	if !ok {
		return nil, &cloud.APIError{Code: cloud.CodeNotFound, Op: "get", Type: typ, ID: id, Message: "ResourceNotFound"}
	}
	return r.Clone(), nil
}

func (f *fakeCloud) List(ctx context.Context, typ, region string) ([]*cloud.Resource, error) {
	f.mu.Lock()
	f.lists++
	f.mu.Unlock()
	if err := f.waitHold(ctx); err != nil {
		return nil, err
	}
	if err := f.popErr(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []*cloud.Resource
	for _, r := range f.res {
		if r.Type == typ && (region == "" || r.Region == region) {
			out = append(out, r.Clone())
		}
	}
	return out, nil
}

func (f *fakeCloud) Create(ctx context.Context, req cloud.CreateRequest) (*cloud.Resource, error) {
	f.mu.Lock()
	f.creates++
	f.mu.Unlock()
	if err := f.popErr(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r := &cloud.Resource{ID: "r-" + req.Type, Type: req.Type, Region: req.Region, Attrs: req.Attrs}
	f.res[req.Type+"/"+r.ID] = r
	return r.Clone(), nil
}

func (f *fakeCloud) Update(ctx context.Context, req cloud.UpdateRequest) (*cloud.Resource, error) {
	f.mu.Lock()
	f.updates++
	defer f.mu.Unlock()
	r, ok := f.res[req.Type+"/"+req.ID]
	if !ok {
		return nil, &cloud.APIError{Code: cloud.CodeNotFound, Op: "update", Type: req.Type, ID: req.ID, Message: "ResourceNotFound"}
	}
	for k, v := range req.Attrs {
		r.Attrs[k] = v
	}
	r.Generation++
	return r.Clone(), nil
}

func (f *fakeCloud) Delete(ctx context.Context, typ, id, principal string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.res, typ+"/"+id)
	return nil
}

func (f *fakeCloud) Health(ctx context.Context, typ, id string) (*cloud.HealthReport, error) {
	if err := f.popErr(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.res[typ+"/"+id]; !ok {
		return nil, &cloud.APIError{Code: cloud.CodeNotFound, Op: "health", Type: typ, ID: id, Message: "ResourceNotFound"}
	}
	return &cloud.HealthReport{Status: cloud.HealthReady}, nil
}

func (f *fakeCloud) Activity(ctx context.Context, afterSeq int64) ([]cloud.Event, error) {
	f.mu.Lock()
	f.acts++
	f.mu.Unlock()
	return nil, nil
}

func (f *fakeCloud) getCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gets
}

// testOptions: virtual clock, recorded no-op sleep, deterministic jitter.
func testOptions(sleeps *[]time.Duration) Options {
	var mu sync.Mutex
	return Options{
		Clock: telemetry.NewVirtualClock(time.Unix(1000, 0), time.Microsecond),
		Sleep: func(ctx context.Context, d time.Duration) error {
			if sleeps != nil {
				mu.Lock()
				*sleeps = append(*sleeps, d)
				mu.Unlock()
			}
			return ctx.Err()
		},
	}
}

func TestCacheServesRepeatReads(t *testing.T) {
	f := newFakeCloud()
	f.put("aws_vpc", "vpc-1", "us-east-1")
	rt := New(f, testOptions(nil))
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		r, err := rt.Get(ctx, "aws_vpc", "vpc-1")
		if err != nil || r.ID != "vpc-1" {
			t.Fatalf("get %d: %v %v", i, r, err)
		}
	}
	if got := f.getCount(); got != 1 {
		t.Errorf("upstream gets = %d, want 1 (cache)", got)
	}
	st := rt.Stats()
	if st.CacheHits != 4 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v, want 4 hits / 1 miss", st)
	}

	// Lists cache too, keyed by region.
	for i := 0; i < 3; i++ {
		if _, err := rt.List(ctx, "aws_vpc", "us-east-1"); err != nil {
			t.Fatal(err)
		}
	}
	f.mu.Lock()
	lists := f.lists
	f.mu.Unlock()
	if lists != 1 {
		t.Errorf("upstream lists = %d, want 1", lists)
	}
}

func TestWritesInvalidateAndWriteThrough(t *testing.T) {
	f := newFakeCloud()
	f.put("aws_vpc", "vpc-1", "us-east-1")
	rt := New(f, testOptions(nil))
	ctx := context.Background()

	if _, err := rt.Get(ctx, "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.List(ctx, "aws_vpc", ""); err != nil {
		t.Fatal(err)
	}
	// The update response write-throughs into the Get cache...
	upd, err := rt.Update(ctx, cloud.UpdateRequest{Type: "aws_vpc", ID: "vpc-1",
		Attrs: map[string]eval.Value{"name": eval.String("renamed")}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.Get(ctx, "aws_vpc", "vpc-1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Attr("name").Equal(upd.Attr("name")) {
		t.Errorf("cached get after update = %v, want renamed", got.Attr("name"))
	}
	if f.getCount() != 1 {
		t.Errorf("upstream gets = %d, want 1 (write-through serves the read)", f.getCount())
	}
	// ...and invalidates the type's list entries.
	f.mu.Lock()
	listsBefore := f.lists
	f.mu.Unlock()
	if _, err := rt.List(ctx, "aws_vpc", ""); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	listsAfter := f.lists
	f.mu.Unlock()
	if listsAfter != listsBefore+1 {
		t.Errorf("list after update served from cache (lists %d -> %d)", listsBefore, listsAfter)
	}

	// Delete drops the Get entry.
	if err := rt.Delete(ctx, "aws_vpc", "vpc-1", "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Get(ctx, "aws_vpc", "vpc-1"); !cloud.IsNotFound(err) {
		t.Errorf("get after delete = %v, want NotFound", err)
	}
}

func TestActivityEventsInvalidate(t *testing.T) {
	f := newFakeCloud()
	f.put("aws_vpc", "vpc-1", "us-east-1")
	rt := New(f, testOptions(nil))
	ctx := context.Background()

	if _, err := rt.Get(ctx, "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	// A foreign event for vpc-1 flows through the runtime.
	rt.observeEvents(context.Background(), []cloud.Event{{Seq: 7, Op: cloud.OpUpdate, Type: "aws_vpc", ID: "vpc-1", Principal: "legacy"}})
	if _, err := rt.Get(ctx, "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	if f.getCount() != 2 {
		t.Errorf("upstream gets = %d, want 2 (event invalidated the entry)", f.getCount())
	}
	// The same seq again must not invalidate twice.
	rt.observeEvents(context.Background(), []cloud.Event{{Seq: 7, Op: cloud.OpUpdate, Type: "aws_vpc", ID: "vpc-1", Principal: "legacy"}})
	if _, err := rt.Get(ctx, "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	if f.getCount() != 2 {
		t.Errorf("upstream gets = %d, want 2 (watermark suppresses replay)", f.getCount())
	}
}

func TestFreshBypassesCacheButStillStores(t *testing.T) {
	f := newFakeCloud()
	f.put("aws_vpc", "vpc-1", "us-east-1")
	rt := New(f, testOptions(nil))
	ctx := context.Background()

	if _, err := rt.Get(ctx, "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Get(WithFresh(ctx), "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	if f.getCount() != 2 {
		t.Errorf("fresh read did not hit upstream (gets = %d)", f.getCount())
	}
	// The fresh result refreshed the cache for subsequent cached reads.
	if _, err := rt.Get(ctx, "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	if f.getCount() != 2 {
		t.Errorf("cached read after fresh hit upstream (gets = %d)", f.getCount())
	}
}

func TestCoalescingSharesOneFlight(t *testing.T) {
	f := newFakeCloud()
	f.put("aws_vpc", "vpc-1", "us-east-1")
	f.hold = make(chan struct{})
	rt := New(f, Options{Clock: telemetry.NewVirtualClock(time.Unix(1000, 0), time.Microsecond)})
	ctx := WithFresh(context.Background()) // bypass cache so all readers race

	const readers = 8
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = rt.Get(ctx, "aws_vpc", "vpc-1")
		}(i)
	}
	// Wait until every reader has either joined the flight or is the leader.
	deadline := time.After(2 * time.Second)
	for {
		st := rt.Stats()
		if st.Coalesced >= readers-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("readers never coalesced: %+v", st)
		case <-time.After(time.Millisecond):
		}
	}
	close(f.hold)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	if got := f.getCount(); got != 1 {
		t.Errorf("upstream gets = %d, want 1 (singleflight)", got)
	}
}

func TestCoalescedFlightSurvivesLeaderCancel(t *testing.T) {
	f := newFakeCloud()
	f.put("aws_vpc", "vpc-1", "us-east-1")
	f.hold = make(chan struct{})
	rt := New(f, Options{Clock: telemetry.NewVirtualClock(time.Unix(1000, 0), time.Microsecond)})

	leaderCtx, cancelLeader := context.WithCancel(WithFresh(context.Background()))
	leaderErr := make(chan error, 1)
	go func() {
		_, err := rt.Get(leaderCtx, "aws_vpc", "vpc-1")
		leaderErr <- err
	}()
	// Wait for the leader's flight to be airborne.
	waitFor(t, func() bool { return f.getCount() == 1 })

	followerErr := make(chan error, 1)
	go func() {
		_, err := rt.Get(WithFresh(context.Background()), "aws_vpc", "vpc-1")
		followerErr <- err
	}()
	waitFor(t, func() bool { return rt.Stats().Coalesced == 1 })

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want Canceled", err)
	}
	close(f.hold)
	if err := <-followerErr; err != nil {
		t.Fatalf("follower err = %v, want success despite leader cancel", err)
	}
	if got := f.getCount(); got != 1 {
		t.Errorf("upstream gets = %d, want 1", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRetryFullJitterAndRetryAfter(t *testing.T) {
	f := newFakeCloud()
	f.put("aws_vpc", "vpc-1", "us-east-1")
	throttle := &cloud.APIError{Code: cloud.CodeThrottled, Retryable: true, Message: "TooManyRequests"}
	f.errs = []error{throttle, throttle, throttle}

	var sleeps []time.Duration
	opts := testOptions(&sleeps)
	opts.MaxRetries = 5
	opts.RetryBase = 50 * time.Millisecond
	rt := New(f, opts)

	ctx, counter := WithRetryCounter(context.Background())
	if _, err := rt.Get(ctx, "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	if counter.Load() != 3 {
		t.Errorf("retry counter = %d, want 3", counter.Load())
	}
	if len(sleeps) != 3 {
		t.Fatalf("sleeps = %v, want 3", sleeps)
	}
	for i, d := range sleeps {
		ceil := 50 * time.Millisecond << uint(i)
		if d < 0 || d >= ceil {
			t.Errorf("sleep %d = %v, want full jitter in [0, %v)", i, d, ceil)
		}
	}

	// Retry-After is a floor on the jittered backoff.
	f.errs = []error{&cloud.APIError{Code: cloud.CodeThrottled, Retryable: true,
		RetryAfter: 900 * time.Millisecond, Message: "TooManyRequests"}}
	sleeps = sleeps[:0]
	if _, err := rt.Get(WithFresh(ctx), "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	if len(sleeps) != 1 || sleeps[0] < 900*time.Millisecond {
		t.Errorf("sleeps = %v, want one sleep >= Retry-After", sleeps)
	}
}

func TestRetryExhaustionWrapsLastError(t *testing.T) {
	f := newFakeCloud()
	f.put("aws_vpc", "vpc-1", "us-east-1")
	throttle := &cloud.APIError{Code: cloud.CodeThrottled, Retryable: true, Message: "TooManyRequests"}
	f.errs = []error{throttle, throttle, throttle, throttle}

	opts := testOptions(nil)
	opts.MaxRetries = 2
	rt := New(f, opts)
	_, err := rt.Get(context.Background(), "aws_vpc", "vpc-1")
	if !cloud.IsThrottled(err) {
		t.Fatalf("err = %v, want wrapped throttle", err)
	}
	if f.getCount() != 2 {
		t.Errorf("attempts = %d, want MaxRetries = 2", f.getCount())
	}
}

func TestNonRetryableReturnsImmediately(t *testing.T) {
	f := newFakeCloud()
	opts := testOptions(nil)
	rt := New(f, opts)
	_, err := rt.Get(context.Background(), "aws_vpc", "nope")
	if !cloud.IsNotFound(err) {
		t.Fatalf("err = %v, want NotFound", err)
	}
	if f.getCount() != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on 404)", f.getCount())
	}
}

func TestAIMDWindowHalvesAndRecovers(t *testing.T) {
	f := newFakeCloud()
	f.put("aws_vpc", "vpc-1", "us-east-1")
	opts := testOptions(nil)
	opts.MaxInFlight = 16
	// Virtual clock steps 1µs per read; congestion cooldown is 100ms, so
	// halvings more than one burst apart need explicit Advance.
	clk := telemetry.NewVirtualClock(time.Unix(1000, 0), time.Microsecond)
	opts.Clock = clk
	rt := New(f, opts)
	ctx := context.Background()

	throttle := &cloud.APIError{Code: cloud.CodeThrottled, Retryable: true, Message: "TooManyRequests"}
	f.errs = []error{throttle}
	if _, err := rt.Get(ctx, "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if w := st.Windows["aws"]; w > 8.5 {
		t.Errorf("window after one 429 = %v, want halved from 16", w)
	}
	if st.Throttles != 1 {
		t.Errorf("throttles = %d, want 1", st.Throttles)
	}

	// A second congestion event inside the cooldown must NOT halve again.
	f.errs = []error{throttle}
	if _, err := rt.Get(WithFresh(ctx), "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	if w := rt.Stats().Windows["aws"]; w < 7.5 {
		t.Errorf("window halved inside cooldown: %v", w)
	}

	// Successes grow the window additively (1/W per success).
	before := rt.Stats().Windows["aws"]
	for i := 0; i < 40; i++ {
		if _, err := rt.Get(WithFresh(ctx), "aws_vpc", "vpc-1"); err != nil {
			t.Fatal(err)
		}
	}
	after := rt.Stats().Windows["aws"]
	if after <= before {
		t.Errorf("window did not grow on success: %v -> %v", before, after)
	}
	if after > float64(opts.MaxInFlight) {
		t.Errorf("window exceeded ceiling: %v", after)
	}
}

func TestGateBoundsInFlight(t *testing.T) {
	g := newGate(2, false)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- g.Acquire(ctx) }()
	select {
	case <-blocked:
		t.Fatal("third acquire should block at window 2")
	case <-time.After(20 * time.Millisecond):
	}
	g.Release()
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("release did not wake waiter")
	}
	// A canceled waiter returns promptly.
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- g.Acquire(cctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire = %v", err)
	}
}

func TestNewIsIdempotentAndUnwraps(t *testing.T) {
	f := newFakeCloud()
	rt := New(f, Options{})
	if again := New(rt, Options{MaxRetries: 99}); again != rt {
		t.Error("New on a Runtime must return it unchanged")
	}
	if up := Unwrap(rt); up != cloud.Interface(f) {
		t.Error("Unwrap must expose the upstream")
	}
	if up := Unwrap(f); up != cloud.Interface(f) {
		t.Error("Unwrap on a non-Runtime must be identity")
	}
}

func TestRuntimeMetricsFlow(t *testing.T) {
	f := newFakeCloud()
	f.put("aws_vpc", "vpc-1", "us-east-1")
	reg := telemetry.NewRegistry()
	opts := testOptions(nil)
	opts.Registry = reg
	throttle := &cloud.APIError{Code: cloud.CodeThrottled, Retryable: true, Message: "TooManyRequests"}
	f.errs = []error{throttle}
	rt := New(f, opts)
	ctx := context.Background()

	if _, err := rt.Get(ctx, "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Get(ctx, "aws_vpc", "vpc-1"); err != nil {
		t.Fatal(err)
	}
	if reg.CounterSum("provider.retries") != 1 {
		t.Errorf("provider.retries = %d, want 1", reg.CounterSum("provider.retries"))
	}
	if reg.CounterSum("provider.cache_hits") != 1 {
		t.Errorf("provider.cache_hits = %d, want 1", reg.CounterSum("provider.cache_hits"))
	}
}

func TestConcurrentMixedTrafficRace(t *testing.T) {
	// Hammer one runtime from many goroutines doing reads, writes, and
	// activity observation; -race is the assertion.
	f := newFakeCloud()
	f.put("aws_vpc", "vpc-1", "us-east-1")
	rt := New(f, Options{})
	ctx := context.Background()
	var wg sync.WaitGroup
	var seq atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				switch j % 5 {
				case 0:
					_, _ = rt.Get(ctx, "aws_vpc", "vpc-1")
				case 1:
					_, _ = rt.List(ctx, "aws_vpc", "")
				case 2:
					_, _ = rt.Update(ctx, cloud.UpdateRequest{Type: "aws_vpc", ID: "vpc-1",
						Attrs: map[string]eval.Value{"name": eval.String("x")}})
				case 3:
					rt.observeEvents(context.Background(), []cloud.Event{{Seq: seq.Add(1), Type: "aws_vpc", ID: "vpc-1"}})
				case 4:
					_, _ = rt.Get(WithFresh(ctx), "aws_vpc", "vpc-1")
				}
			}
		}(i)
	}
	wg.Wait()
}
