package provider

import (
	"context"
	"sync"
)

// flight is one in-progress upstream read shared by every caller that asked
// for the same key while it was in the air.
type flight struct {
	mu        sync.Mutex
	waiters   int
	abandoned bool // every waiter canceled; the flight is being torn down

	done   chan struct{}
	cancel context.CancelFunc
	val    any
	err    error
}

// flightGroup coalesces identical concurrent reads (singleflight). Unlike
// the classic implementation, a flight runs on its own context detached
// from the leader's: one caller canceling — even the one that launched the
// call — must not poison the result for everyone else. The flight context
// is canceled only when the last interested waiter has walked away.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// Do runs fn once per key among concurrent callers; every caller gets the
// same result. shared reports whether this caller joined an existing
// flight; onJoin (may be nil) fires at join time, before waiting, so
// coalescing is observable while the flight is still in the air. Callers
// whose ctx is done get their own ctx error immediately.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) (any, error), onJoin func()) (v any, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flight{}
	}
	if f, ok := g.m[key]; ok && f.join() {
		g.mu.Unlock()
		if onJoin != nil {
			onJoin()
		}
		return f.wait(ctx, true)
	}
	f := &flight{waiters: 1, done: make(chan struct{})}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f.cancel = cancel
	g.m[key] = f
	g.mu.Unlock()

	go func() {
		val, err := fn(fctx)
		f.mu.Lock()
		f.val, f.err = val, err
		f.mu.Unlock()
		g.mu.Lock()
		if g.m[key] == f {
			delete(g.m, key)
		}
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return f.wait(ctx, false)
}

// join registers interest in an existing flight; it fails if the flight is
// already being abandoned (the caller should start a new one).
func (f *flight) join() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.abandoned {
		return false
	}
	f.waiters++
	return true
}

// wait blocks until the flight lands or the caller's own context is done.
// A departing caller that is the last waiter cancels the flight.
func (f *flight) wait(ctx context.Context, shared bool) (any, bool, error) {
	select {
	case <-f.done:
		f.mu.Lock()
		v, err := f.val, f.err
		f.mu.Unlock()
		return v, shared, err
	case <-ctx.Done():
		f.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			f.abandoned = true
			f.cancel()
		}
		f.mu.Unlock()
		return nil, shared, ctx.Err()
	}
}
