package provider

// Crash/restart conformance: the idempotency-key contract and the activity
// log — the two observation channels recovery leans on — must behave
// identically on the in-process simulator and over the HTTP wire.

import (
	"context"
	"testing"

	"cloudless/internal/cloud"
	"cloudless/internal/eval"
)

// TestConformanceIdemKeyReplay creates with an idempotency key, then
// "restarts" (a fresh runtime over the same cloud, as a recovering process
// would build) and retries the create under the same key: both backends
// must hand back the original resource, record exactly one create in the
// activity log, and report the replay in metrics.
func TestConformanceIdemKeyReplay(t *testing.T) {
	for _, ep := range endpoints() {
		t.Run(ep.name, func(t *testing.T) {
			opts := cloud.DefaultOptions()
			opts.DisableRateLimit = true
			rt, sim := ep.make(t, opts, Options{})
			ctx := context.Background()

			req := cloud.CreateRequest{
				Type: "aws_vpc", Region: "us-east-1",
				Attrs:          map[string]eval.Value{"name": eval.String("crash"), "cidr_block": eval.String("10.1.0.0/16")},
				Principal:      "cloudless",
				IdempotencyKey: "run-1/aws_vpc.crash",
			}
			first, err := rt.Create(ctx, req)
			if err != nil {
				t.Fatal(err)
			}

			// Restart: a recovering process re-drives the in-doubt create
			// under the same key. The replay contract lives in the backend,
			// so a fresh process sees the same behaviour.
			replay, err := rt.Create(ctx, req)
			if err != nil {
				t.Fatalf("%s: replayed create: %s", ep.name, err)
			}
			if replay.ID != first.ID {
				t.Errorf("%s: replay ID = %s, want original %s (duplicate create)", ep.name, replay.ID, first.ID)
			}
			if got := sim.Metrics().Creates; got != 1 {
				t.Errorf("%s: %d creates reached the cloud, want 1", ep.name, got)
			}
			if got := sim.Metrics().IdemReplays; got != 1 {
				t.Errorf("%s: %d idempotent replays recorded, want 1", ep.name, got)
			}

			// A different key is a genuinely new create (name must differ —
			// the replay protection is the key, not the name).
			req2 := req
			req2.IdempotencyKey = "run-2/aws_vpc.other"
			req2.Attrs = map[string]eval.Value{"name": eval.String("crash-2"), "cidr_block": eval.String("10.2.0.0/16")}
			fresh, err := rt.Create(ctx, req2)
			if err != nil {
				t.Fatal(err)
			}
			if fresh.ID == first.ID {
				t.Errorf("%s: distinct key returned the original resource", ep.name)
			}
		})
	}
}

// TestConformanceActivityLogParity drives the same op sequence through both
// backends — including an idem-key replay that must NOT append a second
// create event — and asserts the activity-log views recovery's orphan sweep
// reads are identical.
func TestConformanceActivityLogParity(t *testing.T) {
	type view struct {
		Op        cloud.EventOp
		Type      string
		Principal string
	}
	var got [][]view
	for _, ep := range endpoints() {
		t.Run(ep.name, func(t *testing.T) {
			opts := cloud.DefaultOptions()
			opts.DisableRateLimit = true
			rt, _ := ep.make(t, opts, Options{})
			ctx := context.Background()

			vpc, err := rt.Create(ctx, cloud.CreateRequest{
				Type: "aws_vpc", Region: "us-east-1",
				Attrs:          map[string]eval.Value{"name": eval.String("p"), "cidr_block": eval.String("10.0.0.0/16")},
				Principal:      "cloudless",
				IdempotencyKey: "run-9/aws_vpc.p",
			})
			if err != nil {
				t.Fatal(err)
			}
			// Replay (no new event), an update, a doomed create, a delete.
			if _, err := rt.Create(ctx, cloud.CreateRequest{
				Type: "aws_vpc", Region: "us-east-1",
				Attrs:          map[string]eval.Value{"name": eval.String("p"), "cidr_block": eval.String("10.0.0.0/16")},
				Principal:      "cloudless",
				IdempotencyKey: "run-9/aws_vpc.p",
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := rt.Update(ctx, cloud.UpdateRequest{
				Type: "aws_vpc", ID: vpc.ID,
				Attrs:     map[string]eval.Value{"enable_dns": eval.True},
				Principal: "cloudless",
			}); err != nil {
				t.Fatal(err)
			}
			bkt, err := rt.Create(ctx, cloud.CreateRequest{
				Type: "aws_storage_bucket", Region: "us-east-1",
				Attrs:     map[string]eval.Value{"name": eval.String("tmp")},
				Principal: "cloudless",
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.Delete(ctx, "aws_storage_bucket", bkt.ID, "cloudless"); err != nil {
				t.Fatal(err)
			}

			events, err := rt.Activity(ctx, 0)
			if err != nil {
				t.Fatal(err)
			}
			v := make([]view, 0, len(events))
			for _, ev := range events {
				v = append(v, view{Op: ev.Op, Type: ev.Type, Principal: ev.Principal})
			}
			got = append(got, v)
		})
	}
	if len(got) != 2 {
		t.Fatalf("expected both backend views, got %d", len(got))
	}
	simView, httpView := got[0], got[1]
	if len(simView) != len(httpView) {
		t.Fatalf("activity log lengths differ: sim %d vs http %d\nsim: %+v\nhttp: %+v",
			len(simView), len(httpView), simView, httpView)
	}
	for i := range simView {
		if simView[i] != httpView[i] {
			t.Errorf("event %d differs: sim %+v vs http %+v", i, simView[i], httpView[i])
		}
	}
}
