package provider

import (
	"context"
	"time"
)

// AdmissionGate exports the runtime's AIMD congestion gate for reuse as an
// admission controller outside the dispatch layer (the jobs queue sits one
// of these in front of its workers, so sustained downstream congestion —
// throttled or latency-spiking jobs — shrinks how many jobs run at once
// instead of piling more load onto a struggling cloud).
type AdmissionGate struct{ g *gate }

// NewAdmissionGate builds a gate with the given concurrency ceiling.
// fixed pins the window at the ceiling (no adaptation).
func NewAdmissionGate(maxInFlight int, fixed bool) *AdmissionGate {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	return &AdmissionGate{g: newGate(float64(maxInFlight), fixed)}
}

// Acquire blocks until a slot is available under the current window, or
// ctx is done.
func (a *AdmissionGate) Acquire(ctx context.Context) error { return a.g.Acquire(ctx) }

// Release frees the slot taken by Acquire.
func (a *AdmissionGate) Release() { a.g.Release() }

// OnSuccess applies additive increase, with internal latency-spike
// detection (a call much slower than the smoothed latency counts as
// congestion).
func (a *AdmissionGate) OnSuccess(latency time.Duration, now time.Time) {
	a.g.OnSuccess(latency, now)
}

// OnCongestion applies multiplicative decrease for an explicit throttle
// signal.
func (a *AdmissionGate) OnCongestion(now time.Time) { a.g.OnCongestion(now) }

// Window returns the current congestion window (slots).
func (a *AdmissionGate) Window() float64 { return a.g.Window() }

// Queued returns how many callers are waiting for a slot.
func (a *AdmissionGate) Queued() int { return a.g.Queued() }
