package schema

import (
	"time"

	"cloudless/internal/eval"
)

// The AWS-like provider catalog. Types, attributes, and provisioning-time
// models approximate the real service's control-plane behaviour closely
// enough for scheduling and drift experiments (see DESIGN.md substitutions).
func init() {
	Register(&Provider{
		Name:          "aws",
		DefaultRegion: "us-east-1",
		Regions: []string{
			"us-east-1", "us-east-2", "us-west-1", "us-west-2",
			"eu-west-1", "eu-central-1", "ap-southeast-1", "ap-northeast-1",
		},
		APIRateLimit: 20,
		Resources: map[string]*ResourceSchema{
			"aws_region": {
				DataSource:    true,
				ProvisionTime: 50 * time.Millisecond,
				Attrs: map[string]*AttrSchema{
					"name": {Type: TypeString, Computed: true, Semantic: Semantic{Kind: SemRegion}},
				},
			},
			"aws_availability_zones": {
				DataSource:    true,
				ProvisionTime: 50 * time.Millisecond,
				Attrs: map[string]*AttrSchema{
					"region": {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"names":  {Type: TypeList, Elem: TypeString, Computed: true},
				},
			},
			"aws_vpc": {
				ProvisionTime: 15 * time.Second,
				UpdateTime:    5 * time.Second,
				DeleteTime:    10 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":         {Type: TypeString, Computed: true},
					"arn":        {Type: TypeString, Computed: true},
					"name":       {Type: TypeString, Semantic: Semantic{Kind: SemName}},
					"region":     {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"cidr_block": {Type: TypeString, Required: true, ForceNew: true, Semantic: Semantic{Kind: SemCIDR}},
					"enable_dns": {Type: TypeBool, Default: eval.True, HasDefault: true},
				},
			},
			"aws_subnet": {
				ProvisionTime: 5 * time.Second,
				UpdateTime:    3 * time.Second,
				DeleteTime:    4 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":                {Type: TypeString, Computed: true},
					"name":              {Type: TypeString, Semantic: Semantic{Kind: SemName}},
					"region":            {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"vpc_id":            {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("aws_vpc")},
					"cidr_block":        {Type: TypeString, Required: true, ForceNew: true, Semantic: Semantic{Kind: SemCIDR}},
					"availability_zone": {Type: TypeString},
				},
			},
			"aws_internet_gateway": {
				ProvisionTime: 10 * time.Second,
				DeleteTime:    8 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":     {Type: TypeString, Computed: true},
					"region": {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"vpc_id": {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("aws_vpc")},
				},
			},
			"aws_nat_gateway": {
				ProvisionTime: 95 * time.Second,
				DeleteTime:    60 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":        {Type: TypeString, Computed: true},
					"region":    {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"subnet_id": {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("aws_subnet")},
				},
			},
			"aws_route_table": {
				ProvisionTime: 5 * time.Second,
				UpdateTime:    3 * time.Second,
				DeleteTime:    4 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":     {Type: TypeString, Computed: true},
					"region": {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"vpc_id": {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("aws_vpc")},
				},
			},
			"aws_route": {
				ProvisionTime: 3 * time.Second,
				UpdateTime:    2 * time.Second,
				DeleteTime:    2 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":               {Type: TypeString, Computed: true},
					"region":           {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"route_table_id":   {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("aws_route_table")},
					"destination_cidr": {Type: TypeString, Required: true, Semantic: Semantic{Kind: SemCIDR}},
					"gateway_id":       {Type: TypeString, Semantic: RefTo("aws_internet_gateway", "aws_nat_gateway", "aws_vpn_gateway")},
				},
			},
			"aws_security_group": {
				ProvisionTime: 5 * time.Second,
				UpdateTime:    3 * time.Second,
				DeleteTime:    4 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":            {Type: TypeString, Computed: true},
					"region":        {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"name":          {Type: TypeString, Required: true, Semantic: Semantic{Kind: SemName}},
					"vpc_id":        {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("aws_vpc")},
					"ingress_ports": {Type: TypeList, Elem: TypeNumber},
					"egress_ports":  {Type: TypeList, Elem: TypeNumber},
				},
			},
			"aws_network_interface": {
				ProvisionTime: 8 * time.Second,
				UpdateTime:    4 * time.Second,
				DeleteTime:    5 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":                 {Type: TypeString, Computed: true},
					"mac_address":        {Type: TypeString, Computed: true},
					"name":               {Type: TypeString, Semantic: Semantic{Kind: SemName}},
					"region":             {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"subnet_id":          {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("aws_subnet")},
					"private_ip":         {Type: TypeString, Semantic: Semantic{Kind: SemIPAddress}},
					"security_group_ids": {Type: TypeList, Elem: TypeString, Semantic: RefTo("aws_security_group")},
				},
			},
			"aws_virtual_machine": {
				ProvisionTime: 90 * time.Second,
				UpdateTime:    30 * time.Second,
				DeleteTime:    45 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":         {Type: TypeString, Computed: true},
					"private_ip": {Type: TypeString, Computed: true},
					"public_ip":  {Type: TypeString, Computed: true},
					"state":      {Type: TypeString, Computed: true},
					"name":       {Type: TypeString, Required: true, Semantic: Semantic{Kind: SemName}},
					"region":     {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"instance_type": {Type: TypeString, Default: eval.String("t3.micro"), HasDefault: true,
						OneOf: []string{"t3.micro", "t3.small", "t3.medium", "m5.large", "m5.xlarge", "c5.xlarge"}},
					"image":     {Type: TypeString, ForceNew: true, Default: eval.String("ami-linux-2026"), HasDefault: true},
					"nic_ids":   {Type: TypeList, Elem: TypeString, Required: true, Semantic: RefTo("aws_network_interface")},
					"user_data": {Type: TypeString},
				},
			},
			"aws_load_balancer": {
				ProvisionTime: 180 * time.Second,
				UpdateTime:    60 * time.Second,
				DeleteTime:    90 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":         {Type: TypeString, Computed: true},
					"dns_name":   {Type: TypeString, Computed: true},
					"name":       {Type: TypeString, Required: true, Semantic: Semantic{Kind: SemName}},
					"region":     {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"subnet_ids": {Type: TypeList, Elem: TypeString, Required: true, Semantic: RefTo("aws_subnet")},
					"target_ids": {Type: TypeList, Elem: TypeString, Semantic: RefTo("aws_virtual_machine")},
					"scheme": {Type: TypeString, Default: eval.String("internet-facing"), HasDefault: true,
						OneOf: []string{"internet-facing", "internal"}},
				},
			},
			"aws_database_instance": {
				ProvisionTime: 420 * time.Second,
				UpdateTime:    120 * time.Second,
				DeleteTime:    180 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":       {Type: TypeString, Computed: true},
					"endpoint": {Type: TypeString, Computed: true},
					"name":     {Type: TypeString, Required: true, Semantic: Semantic{Kind: SemName}},
					"region":   {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"engine": {Type: TypeString, Required: true, ForceNew: true,
						OneOf: []string{"postgres", "mysql", "aurora"}},
					"instance_class": {Type: TypeString, Default: eval.String("db.t3.micro"), HasDefault: true,
						OneOf: []string{"db.t3.micro", "db.t3.medium", "db.m5.large"}},
					"storage_gb": {Type: TypeNumber, Default: eval.Int(20), HasDefault: true},
					"multi_az":   {Type: TypeBool, Default: eval.False, HasDefault: true},
					"password":   {Type: TypeString, Sensitive: true, Semantic: Semantic{Kind: SemSecret}},
					"subnet_ids": {Type: TypeList, Elem: TypeString, Required: true, Semantic: RefTo("aws_subnet")},
				},
			},
			"aws_storage_bucket": {
				ProvisionTime: 8 * time.Second,
				UpdateTime:    4 * time.Second,
				DeleteTime:    6 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":          {Type: TypeString, Computed: true},
					"domain_name": {Type: TypeString, Computed: true},
					"name":        {Type: TypeString, Required: true, ForceNew: true, Semantic: Semantic{Kind: SemName}},
					"region":      {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"versioning":  {Type: TypeBool, Default: eval.False, HasDefault: true},
				},
			},
			"aws_vpn_gateway": {
				ProvisionTime: 120 * time.Second,
				DeleteTime:    90 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":     {Type: TypeString, Computed: true},
					"region": {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"vpc_id": {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("aws_vpc")},
				},
			},
			"aws_vpn_tunnel": {
				ProvisionTime: 60 * time.Second,
				UpdateTime:    30 * time.Second,
				DeleteTime:    30 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":             {Type: TypeString, Computed: true},
					"region":         {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"vpn_gateway_id": {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("aws_vpn_gateway")},
					"peer_ip":        {Type: TypeString, Required: true, Semantic: Semantic{Kind: SemIPAddress}},
					"bandwidth_mbps": {Type: TypeNumber, Default: eval.Int(500), HasDefault: true},
				},
			},
			"aws_dns_record": {
				ProvisionTime: 12 * time.Second,
				UpdateTime:    8 * time.Second,
				DeleteTime:    8 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":     {Type: TypeString, Computed: true},
					"region": {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"name":   {Type: TypeString, Required: true, Semantic: Semantic{Kind: SemDNSName}},
					"type": {Type: TypeString, Default: eval.String("A"), HasDefault: true,
						OneOf: []string{"A", "AAAA", "CNAME", "TXT"}},
					"value": {Type: TypeString, Required: true},
					"ttl":   {Type: TypeNumber, Default: eval.Int(300), HasDefault: true},
				},
			},
		},
	})

	// Cloud-level constraints for the AWS-like provider.
	mustAdd(&Rule{
		ID:           "aws/subnet-cidr-within-vpc",
		Description:  "a subnet's CIDR block must be contained in its VPC's CIDR block",
		Kind:         RuleCIDRWithinParent,
		ResourceType: "aws_subnet",
		Attr:         "cidr_block",
		RefAttr:      "vpc_id",
		CIDRAttr:     "cidr_block",
	})
	mustAdd(&Rule{
		ID:           "aws/vm-nic-same-region",
		Description:  "a virtual machine and its network interfaces must be in the same region",
		Kind:         RuleSameRegion,
		ResourceType: "aws_virtual_machine",
		RefAttr:      "nic_ids",
		RegionAttr:   "region",
	})
	mustAdd(&Rule{
		ID:           "aws/nic-subnet-same-region",
		Description:  "a network interface must be in the same region as its subnet",
		Kind:         RuleSameRegion,
		ResourceType: "aws_network_interface",
		RefAttr:      "subnet_id",
		RegionAttr:   "region",
	})
	mustAdd(&Rule{
		ID:            "aws/db-password-postgres-only",
		Description:   "database passwords are only supported for the postgres engine; other engines use IAM auth",
		Kind:          RuleAttrRequiresValue,
		ResourceType:  "aws_database_instance",
		Attr:          "password",
		RequiresAttr:  "engine",
		RequiresValue: eval.String("postgres"),
	})
}
