package schema

import (
	"fmt"
	"sort"
	"sync"

	"cloudless/internal/eval"
)

// RuleKind classifies a cloud-level constraint in the knowledge base.
type RuleKind int

// Rule kinds. Each corresponds to a class of deployment-time error the paper
// calls out in §3.2 that cloudless computing should catch at compile time.
const (
	// RuleSameRegion: the resource and the resource referenced by RefAttr
	// must be in the same region (e.g. Azure VMs and their NICs).
	RuleSameRegion RuleKind = iota
	// RuleAttrRequiresValue: Attr may only be set when RequiresAttr has
	// the value RequiresValue (e.g. Azure VM passwords require
	// disable_password = false).
	RuleAttrRequiresValue
	// RuleNoCIDROverlapWhenPeered: the two networks referenced by PeerAttrA
	// and PeerAttrB must not have overlapping address spaces (Azure VNet
	// peering).
	RuleNoCIDROverlapWhenPeered
	// RuleRefWithinParent: the resource referenced by RefAttr must itself
	// reference the same parent as this resource via ParentAttr (e.g. a
	// subnet's route table must belong to the subnet's VPC).
	RuleRefWithinParent
	// RuleCIDRWithinParent: the CIDR in Attr must be contained within the
	// CIDR of the parent referenced by RefAttr (e.g. subnets within VPCs).
	RuleCIDRWithinParent
)

var ruleKindNames = map[RuleKind]string{
	RuleSameRegion:              "same-region",
	RuleAttrRequiresValue:       "attribute-co-requirement",
	RuleNoCIDROverlapWhenPeered: "no-cidr-overlap-when-peered",
	RuleRefWithinParent:         "reference-within-parent",
	RuleCIDRWithinParent:        "cidr-within-parent",
}

// String returns the kind's name.
func (k RuleKind) String() string { return ruleKindNames[k] }

// Rule is one cloud-level constraint, expressed declaratively so the
// knowledge base can evolve as cloud features change without recompiling
// the validator (§3.2: "update it as cloud features evolve").
type Rule struct {
	// ID is a stable identifier, e.g. "azure/vm-nic-same-region".
	ID string
	// Description is shown in diagnostics and in knowledge-base listings.
	Description string
	// Kind selects the checking algorithm.
	Kind RuleKind
	// ResourceType anchors the rule to the type it checks.
	ResourceType string

	// RefAttr names the attribute holding a resource reference.
	RefAttr string
	// RegionAttr names the region attribute on both ends of a same-region
	// rule ("location" for azure, "region" for aws).
	RegionAttr string
	// Attr is the governed attribute for co-requirement and CIDR rules.
	Attr string
	// RequiresAttr / RequiresValue define a co-requirement.
	RequiresAttr  string
	RequiresValue eval.Value
	// PeerAttrA / PeerAttrB name the two network references of a peering.
	PeerAttrA, PeerAttrB string
	// CIDRAttr names the address-space attribute on the referenced network.
	CIDRAttr string
	// ParentAttr names the parent reference on both resources for
	// RuleRefWithinParent.
	ParentAttr string
}

// KnowledgeBase is a versioned collection of constraint rules. Version
// increments on every mutation so cached validation results can be
// invalidated when the cloud's behaviour model changes.
type KnowledgeBase struct {
	mu      sync.RWMutex
	rules   map[string]*Rule // by ID
	byType  map[string][]*Rule
	version int
}

// NewKnowledgeBase builds an empty knowledge base.
func NewKnowledgeBase() *KnowledgeBase {
	return &KnowledgeBase{rules: map[string]*Rule{}, byType: map[string][]*Rule{}}
}

// Add inserts or replaces a rule.
func (kb *KnowledgeBase) Add(r *Rule) error {
	if r.ID == "" || r.ResourceType == "" {
		return fmt.Errorf("rule must have an ID and a resource type")
	}
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if old, ok := kb.rules[r.ID]; ok {
		kb.removeLocked(old)
	}
	kb.rules[r.ID] = r
	kb.byType[r.ResourceType] = append(kb.byType[r.ResourceType], r)
	kb.version++
	return nil
}

// Remove deletes a rule by ID, reporting whether it existed.
func (kb *KnowledgeBase) Remove(id string) bool {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	r, ok := kb.rules[id]
	if !ok {
		return false
	}
	kb.removeLocked(r)
	kb.version++
	return true
}

func (kb *KnowledgeBase) removeLocked(r *Rule) {
	delete(kb.rules, r.ID)
	list := kb.byType[r.ResourceType]
	for i, e := range list {
		if e.ID == r.ID {
			kb.byType[r.ResourceType] = append(list[:i], list[i+1:]...)
			break
		}
	}
}

// RulesFor returns the rules anchored on a resource type.
func (kb *KnowledgeBase) RulesFor(typ string) []*Rule {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	out := make([]*Rule, len(kb.byType[typ]))
	copy(out, kb.byType[typ])
	return out
}

// All returns every rule, sorted by ID.
func (kb *KnowledgeBase) All() []*Rule {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	out := make([]*Rule, 0, len(kb.rules))
	for _, r := range kb.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Version returns the current mutation counter.
func (kb *KnowledgeBase) Version() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return kb.version
}

// Len returns the number of rules.
func (kb *KnowledgeBase) Len() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return len(kb.rules)
}

// defaultKB is the built-in knowledge base, populated by provider catalogs.
var defaultKB = NewKnowledgeBase()

// DefaultKB returns the built-in knowledge base shared by the validator and
// the cloud simulator (which enforces the same rules at "deploy time" so the
// experiments can compare compile-time and deploy-time failure).
func DefaultKB() *KnowledgeBase { return defaultKB }

func mustAdd(r *Rule) {
	if err := defaultKB.Add(r); err != nil {
		panic("schema: " + err.Error())
	}
}
