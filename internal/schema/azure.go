package schema

import (
	"time"

	"cloudless/internal/eval"
)

// The Azure-like provider catalog. The constraint rules registered here are
// the paper's own §3.2 examples: VM/NIC region affinity, the
// disable_password co-requirement, and non-overlapping address spaces for
// peered virtual networks.
func init() {
	Register(&Provider{
		Name:          "azure",
		DefaultRegion: "eastus",
		Regions: []string{
			"eastus", "eastus2", "westus", "westeurope",
			"northeurope", "southeastasia", "japaneast",
		},
		APIRateLimit: 12,
		Resources: map[string]*ResourceSchema{
			"azure_location": {
				DataSource:    true,
				ProvisionTime: 50 * time.Millisecond,
				Attrs: map[string]*AttrSchema{
					"name": {Type: TypeString, Computed: true, Semantic: Semantic{Kind: SemRegion}},
				},
			},
			"azure_resource_group": {
				ProvisionTime: 5 * time.Second,
				UpdateTime:    3 * time.Second,
				DeleteTime:    20 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":       {Type: TypeString, Computed: true},
					"name":     {Type: TypeString, Required: true, ForceNew: true, Semantic: Semantic{Kind: SemName}},
					"location": {Type: TypeString, Required: true, ForceNew: true, Semantic: Semantic{Kind: SemRegion}},
				},
			},
			"azure_virtual_network": {
				ProvisionTime: 20 * time.Second,
				UpdateTime:    10 * time.Second,
				DeleteTime:    15 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":             {Type: TypeString, Computed: true},
					"name":           {Type: TypeString, Required: true, Semantic: Semantic{Kind: SemName}},
					"location":       {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"resource_group": {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("azure_resource_group")},
					"address_space":  {Type: TypeList, Elem: TypeString, Required: true, Semantic: Semantic{Kind: SemCIDR}},
				},
			},
			"azure_subnet": {
				ProvisionTime: 5 * time.Second,
				UpdateTime:    3 * time.Second,
				DeleteTime:    4 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":                 {Type: TypeString, Computed: true},
					"name":               {Type: TypeString, Semantic: Semantic{Kind: SemName}},
					"location":           {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"virtual_network_id": {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("azure_virtual_network")},
					"address_prefix":     {Type: TypeString, Required: true, ForceNew: true, Semantic: Semantic{Kind: SemCIDR}},
				},
			},
			"azure_network_interface": {
				ProvisionTime: 10 * time.Second,
				UpdateTime:    5 * time.Second,
				DeleteTime:    6 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":           {Type: TypeString, Computed: true},
					"name":         {Type: TypeString, Required: true, Semantic: Semantic{Kind: SemName}},
					"location":     {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"subnet_id":    {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("azure_subnet")},
					"private_ip":   {Type: TypeString, Semantic: Semantic{Kind: SemIPAddress}},
					"public_ip_id": {Type: TypeString, Semantic: RefTo("azure_public_ip")},
				},
			},
			"azure_public_ip": {
				ProvisionTime: 15 * time.Second,
				UpdateTime:    8 * time.Second,
				DeleteTime:    10 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":         {Type: TypeString, Computed: true},
					"ip_address": {Type: TypeString, Computed: true},
					"name":       {Type: TypeString, Required: true, Semantic: Semantic{Kind: SemName}},
					"location":   {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"allocation": {Type: TypeString, Default: eval.String("dynamic"), HasDefault: true,
						OneOf: []string{"static", "dynamic"}},
				},
			},
			"azure_virtual_machine": {
				ProvisionTime: 95 * time.Second,
				UpdateTime:    35 * time.Second,
				DeleteTime:    50 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":         {Type: TypeString, Computed: true},
					"private_ip": {Type: TypeString, Computed: true},
					"name":       {Type: TypeString, Required: true, Semantic: Semantic{Kind: SemName}},
					"location":   {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"size": {Type: TypeString, Default: eval.String("Standard_B1s"), HasDefault: true,
						OneOf: []string{"Standard_B1s", "Standard_B2s", "Standard_D2s_v3", "Standard_F4s"}},
					"image":            {Type: TypeString, ForceNew: true, Default: eval.String("ubuntu-22.04"), HasDefault: true},
					"nic_ids":          {Type: TypeList, Elem: TypeString, Required: true, Semantic: RefTo("azure_network_interface")},
					"admin_username":   {Type: TypeString, Default: eval.String("azureuser"), HasDefault: true},
					"admin_password":   {Type: TypeString, Sensitive: true, Semantic: Semantic{Kind: SemSecret}},
					"disable_password": {Type: TypeBool, Default: eval.True, HasDefault: true},
				},
			},
			"azure_vnet_peering": {
				ProvisionTime: 25 * time.Second,
				DeleteTime:    15 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":        {Type: TypeString, Computed: true},
					"name":      {Type: TypeString, Semantic: Semantic{Kind: SemName}},
					"location":  {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"vnet_a_id": {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("azure_virtual_network")},
					"vnet_b_id": {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("azure_virtual_network")},
				},
			},
			"azure_storage_account": {
				ProvisionTime: 30 * time.Second,
				UpdateTime:    15 * time.Second,
				DeleteTime:    20 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":       {Type: TypeString, Computed: true},
					"endpoint": {Type: TypeString, Computed: true},
					"name":     {Type: TypeString, Required: true, ForceNew: true, Semantic: Semantic{Kind: SemName}},
					"location": {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"tier": {Type: TypeString, Default: eval.String("standard"), HasDefault: true,
						OneOf: []string{"standard", "premium"}},
				},
			},
			"azure_sql_server": {
				ProvisionTime: 300 * time.Second,
				UpdateTime:    90 * time.Second,
				DeleteTime:    120 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":             {Type: TypeString, Computed: true},
					"fqdn":           {Type: TypeString, Computed: true},
					"name":           {Type: TypeString, Required: true, ForceNew: true, Semantic: Semantic{Kind: SemName}},
					"location":       {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"admin_login":    {Type: TypeString, Default: eval.String("sqladmin"), HasDefault: true},
					"admin_password": {Type: TypeString, Required: true, Sensitive: true, Semantic: Semantic{Kind: SemSecret}},
				},
			},
			"azure_vpn_gateway": {
				// Azure VPN gateways are famously slow to provision; this is
				// the long pole that makes critical-path scheduling matter.
				ProvisionTime: 900 * time.Second,
				DeleteTime:    300 * time.Second,
				Attrs: map[string]*AttrSchema{
					"id":        {Type: TypeString, Computed: true},
					"public_ip": {Type: TypeString, Computed: true},
					"name":      {Type: TypeString, Required: true, Semantic: Semantic{Kind: SemName}},
					"location":  {Type: TypeString, Semantic: Semantic{Kind: SemRegion}},
					"vnet_id":   {Type: TypeString, Required: true, ForceNew: true, Semantic: RefTo("azure_virtual_network")},
					"sku": {Type: TypeString, Default: eval.String("VpnGw1"), HasDefault: true,
						OneOf: []string{"VpnGw1", "VpnGw2", "VpnGw3"}},
				},
			},
		},
	})

	// The paper's three §3.2 example constraints, verbatim.
	mustAdd(&Rule{
		ID:           "azure/vm-nic-same-region",
		Description:  "Azure requires that VMs and their attached network interface cards must be in the same cloud region",
		Kind:         RuleSameRegion,
		ResourceType: "azure_virtual_machine",
		RefAttr:      "nic_ids",
		RegionAttr:   "location",
	})
	mustAdd(&Rule{
		ID:            "azure/vm-password-requires-enable",
		Description:   "Azure VMs could specify a password only if disable_password is explicitly set to false",
		Kind:          RuleAttrRequiresValue,
		ResourceType:  "azure_virtual_machine",
		Attr:          "admin_password",
		RequiresAttr:  "disable_password",
		RequiresValue: eval.False,
	})
	mustAdd(&Rule{
		ID:           "azure/peered-vnets-no-cidr-overlap",
		Description:  "Azure virtual networks cannot have overlapping address spaces if they are connected through peering",
		Kind:         RuleNoCIDROverlapWhenPeered,
		ResourceType: "azure_vnet_peering",
		PeerAttrA:    "vnet_a_id",
		PeerAttrB:    "vnet_b_id",
		CIDRAttr:     "address_space",
	})
	mustAdd(&Rule{
		ID:           "azure/nic-subnet-same-region",
		Description:  "a network interface must be in the same region as its subnet",
		Kind:         RuleSameRegion,
		ResourceType: "azure_network_interface",
		RefAttr:      "subnet_id",
		RegionAttr:   "location",
	})
	mustAdd(&Rule{
		ID:           "azure/subnet-prefix-within-vnet",
		Description:  "a subnet's address prefix must be contained in its virtual network's address space",
		Kind:         RuleCIDRWithinParent,
		ResourceType: "azure_subnet",
		Attr:         "address_prefix",
		RefAttr:      "virtual_network_id",
		CIDRAttr:     "address_space",
	})
}
