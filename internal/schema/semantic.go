package schema

import "fmt"

// SemKind classifies what a string-typed attribute semantically represents.
// This is the paper's §3.2 proposal made concrete: instead of treating every
// attribute as an opaque string, the validator knows that one string is a
// reference to a network interface and another is a CIDR block, and can
// reject compositions that mix them up before any API call is made.
type SemKind int

// Semantic kinds.
const (
	// SemNone means the attribute carries no extra semantics.
	SemNone SemKind = iota
	// SemResourceRef means the value must be the ID of a resource of the
	// type named in Semantic.RefTypes.
	SemResourceRef
	// SemRegion means the value must be one of the provider's regions.
	SemRegion
	// SemCIDR means the value must parse as an IPv4/IPv6 CIDR block.
	SemCIDR
	// SemIPAddress means the value must parse as a bare IP address.
	SemIPAddress
	// SemName means the value is a human-chosen resource name subject to
	// the provider's naming rules.
	SemName
	// SemSecret means the value is credential material.
	SemSecret
	// SemDNSName means the value must look like a DNS hostname.
	SemDNSName
)

var semKindNames = map[SemKind]string{
	SemNone:        "none",
	SemResourceRef: "resource-reference",
	SemRegion:      "region",
	SemCIDR:        "cidr",
	SemIPAddress:   "ip-address",
	SemName:        "name",
	SemSecret:      "secret",
	SemDNSName:     "dns-name",
}

// String returns the kind's name.
func (k SemKind) String() string { return semKindNames[k] }

// Semantic is the semantic type of an attribute.
type Semantic struct {
	Kind SemKind
	// RefTypes lists the resource types whose IDs are acceptable when Kind
	// is SemResourceRef. Multiple entries model attributes that accept any
	// of several types (e.g. a route target).
	RefTypes []string
}

// RefTo builds a resource-reference semantic type.
func RefTo(types ...string) Semantic {
	return Semantic{Kind: SemResourceRef, RefTypes: types}
}

// Accepts reports whether a reference to the given resource type satisfies
// this semantic type.
func (s Semantic) Accepts(resourceType string) bool {
	if s.Kind != SemResourceRef {
		return false
	}
	for _, t := range s.RefTypes {
		if t == resourceType {
			return true
		}
	}
	return false
}

// String renders the semantic type for diagnostics.
func (s Semantic) String() string {
	if s.Kind == SemResourceRef {
		return fmt.Sprintf("reference(%v)", s.RefTypes)
	}
	return s.Kind.String()
}
