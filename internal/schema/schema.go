// Package schema defines resource type schemas, the semantic type system the
// Cloudless paper proposes for IaC validation (§3.2), and the knowledge base
// of cloud-level constraints derived from provider documentation.
//
// The design follows the registry pattern: providers register their resource
// catalogs at init time, and every other subsystem (validator, planner, cloud
// simulator, porter) consults the same registry, so the "IaC-level compiler"
// and the "cloud level" can never disagree about a type's shape.
package schema

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cloudless/internal/eval"
)

// AttrType is the structural type of an attribute.
type AttrType int

// Structural attribute types.
const (
	TypeString AttrType = iota
	TypeNumber
	TypeBool
	TypeList // list of ElemType
	TypeMap  // map of string to ElemType
)

var attrTypeNames = map[AttrType]string{
	TypeString: "string",
	TypeNumber: "number",
	TypeBool:   "bool",
	TypeList:   "list",
	TypeMap:    "map",
}

// String returns the type's name.
func (t AttrType) String() string { return attrTypeNames[t] }

// AttrSchema describes one attribute of a resource type.
type AttrSchema struct {
	Name string
	Type AttrType
	// Elem is the element type for lists and maps.
	Elem AttrType
	// Required attributes must be set in configuration.
	Required bool
	// Computed attributes are assigned by the cloud (e.g. "id"); they may
	// not be set in configuration.
	Computed bool
	// ForceNew marks attributes whose change requires destroying and
	// recreating the resource — the planner turns such diffs into replace
	// actions and the rollback planner treats them as irreversible.
	ForceNew bool
	// Sensitive marks secrets; state rendering redacts them.
	Sensitive bool
	// Default is applied when the attribute is unset.
	Default eval.Value
	// HasDefault distinguishes an intentional default from the zero Value.
	HasDefault bool
	// Semantic is the attribute's semantic type (§3.2): what the string
	// *means*, not just that it is a string.
	Semantic Semantic
	// OneOf restricts string values to an allowed set when non-empty.
	OneOf []string
}

// ResourceSchema describes a resource (or data source) type.
type ResourceSchema struct {
	// Type is the full type name, e.g. "aws_virtual_machine".
	Type string
	// Provider is the owning provider name, e.g. "aws".
	Provider string
	// Attrs maps attribute name to schema.
	Attrs map[string]*AttrSchema
	// ProvisionTime is the simulated mean time to create one instance; the
	// critical-path scheduler and the cloud simulator share this model.
	ProvisionTime time.Duration
	// UpdateTime and DeleteTime are the simulated mean times for in-place
	// update and deletion.
	UpdateTime time.Duration
	DeleteTime time.Duration
	// DataSource marks read-only data sources such as "aws_region".
	DataSource bool
}

// Attr returns the schema for an attribute, or nil.
func (r *ResourceSchema) Attr(name string) *AttrSchema {
	return r.Attrs[name]
}

// AttrNames returns attribute names in sorted order.
func (r *ResourceSchema) AttrNames() []string {
	names := make([]string, 0, len(r.Attrs))
	for n := range r.Attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RequiredAttrs returns the names of required attributes, sorted.
func (r *ResourceSchema) RequiredAttrs() []string {
	var names []string
	for n, a := range r.Attrs {
		if a.Required {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Provider is a registered cloud provider with its resource catalog.
type Provider struct {
	// Name is the provider prefix, e.g. "aws" or "azure".
	Name string
	// Resources maps resource type name to schema.
	Resources map[string]*ResourceSchema
	// DefaultRegion is used when configuration does not pin one.
	DefaultRegion string
	// Regions lists the provider's available regions.
	Regions []string
	// APIRateLimit is the simulated control-plane rate limit in requests
	// per second; drift-scan experiments (§3.5) depend on it.
	APIRateLimit float64
}

// registry is the global provider registry, guarded for concurrent use
// because tests register scratch providers in parallel.
var (
	regMu    sync.RWMutex
	registry = map[string]*Provider{}
)

// Register adds a provider to the global registry. Registering the same name
// twice panics, mirroring gopacket's layer registry: it is a programmer
// error, not a runtime condition.
func Register(p *Provider) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("schema: provider %q registered twice", p.Name))
	}
	for typ, rs := range p.Resources {
		rs.Type = typ
		rs.Provider = p.Name
		for name, a := range rs.Attrs {
			a.Name = name
		}
	}
	registry[p.Name] = p
}

// LookupProvider returns a registered provider.
func LookupProvider(name string) (*Provider, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Providers returns registered provider names, sorted.
func Providers() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupResource resolves a resource type name (e.g. "aws_virtual_machine")
// to its schema by matching the provider prefix.
func LookupResource(typ string) (*ResourceSchema, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, p := range registry {
		if rs, ok := p.Resources[typ]; ok {
			return rs, true
		}
	}
	return nil, false
}

// ProviderForType returns the provider owning a resource type.
func ProviderForType(typ string) (*Provider, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, p := range registry {
		if _, ok := p.Resources[typ]; ok {
			return p, true
		}
	}
	return nil, false
}

// ResourceTypes returns all registered resource type names, sorted.
func ResourceTypes() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var names []string
	for _, p := range registry {
		for t := range p.Resources {
			names = append(names, t)
		}
	}
	sort.Strings(names)
	return names
}

// DefaultsFor returns the map of attribute defaults for a resource type.
func DefaultsFor(rs *ResourceSchema) map[string]eval.Value {
	out := map[string]eval.Value{}
	for name, a := range rs.Attrs {
		if a.HasDefault {
			out[name] = a.Default
		}
	}
	return out
}
