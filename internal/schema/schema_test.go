package schema

import (
	"strings"
	"testing"

	"cloudless/internal/eval"
)

func TestProvidersRegistered(t *testing.T) {
	for _, name := range []string{"aws", "azure"} {
		p, ok := LookupProvider(name)
		if !ok {
			t.Fatalf("provider %q not registered", name)
		}
		if len(p.Resources) == 0 {
			t.Errorf("provider %q has no resources", name)
		}
		if p.DefaultRegion == "" || len(p.Regions) == 0 {
			t.Errorf("provider %q missing region config", name)
		}
		if p.APIRateLimit <= 0 {
			t.Errorf("provider %q missing API rate limit", name)
		}
	}
}

func TestLookupResource(t *testing.T) {
	rs, ok := LookupResource("aws_virtual_machine")
	if !ok {
		t.Fatal("aws_virtual_machine not found")
	}
	if rs.Provider != "aws" || rs.Type != "aws_virtual_machine" {
		t.Errorf("backfilled identity: %q %q", rs.Provider, rs.Type)
	}
	if rs.ProvisionTime <= 0 {
		t.Error("missing provision time model")
	}
	if _, ok := LookupResource("gcp_nonexistent"); ok {
		t.Error("lookup of unknown type should fail")
	}
}

func TestSchemaShapeInvariants(t *testing.T) {
	// Every resource type must have a computed "id" (except data sources,
	// which may expose other computed attributes instead), and computed
	// attributes must not be required.
	for _, typ := range ResourceTypes() {
		rs, _ := LookupResource(typ)
		if !rs.DataSource {
			id := rs.Attr("id")
			if id == nil || !id.Computed {
				t.Errorf("%s: missing computed id attribute", typ)
			}
		}
		for name, a := range rs.Attrs {
			if a.Computed && a.Required {
				t.Errorf("%s.%s: computed attributes cannot be required", typ, name)
			}
			if a.Computed && a.HasDefault {
				t.Errorf("%s.%s: computed attributes cannot have defaults", typ, name)
			}
			if a.Name != name {
				t.Errorf("%s.%s: name not backfilled", typ, name)
			}
		}
	}
}

func TestReferenceSemanticsPointAtRealTypes(t *testing.T) {
	// Knowledge-base quality check: every RefTypes entry must name a
	// registered resource type.
	for _, typ := range ResourceTypes() {
		rs, _ := LookupResource(typ)
		for name, a := range rs.Attrs {
			if a.Semantic.Kind != SemResourceRef {
				continue
			}
			for _, ref := range a.Semantic.RefTypes {
				if _, ok := LookupResource(ref); !ok {
					t.Errorf("%s.%s references unknown type %q", typ, name, ref)
				}
			}
		}
	}
}

func TestRequiredAttrs(t *testing.T) {
	rs, _ := LookupResource("azure_virtual_machine")
	req := rs.RequiredAttrs()
	want := []string{"name", "nic_ids"}
	if len(req) != len(want) {
		t.Fatalf("required = %v, want %v", req, want)
	}
	for i := range want {
		if req[i] != want[i] {
			t.Errorf("required = %v, want %v", req, want)
		}
	}
}

func TestDefaultsFor(t *testing.T) {
	rs, _ := LookupResource("azure_virtual_machine")
	d := DefaultsFor(rs)
	if !d["disable_password"].Equal(eval.True) {
		t.Errorf("disable_password default = %v", d["disable_password"])
	}
	if d["size"].AsString() != "Standard_B1s" {
		t.Errorf("size default = %v", d["size"])
	}
}

func TestSemanticAccepts(t *testing.T) {
	s := RefTo("aws_vpc", "aws_subnet")
	if !s.Accepts("aws_subnet") || s.Accepts("aws_virtual_machine") {
		t.Error("RefTo acceptance wrong")
	}
	if (Semantic{Kind: SemCIDR}).Accepts("aws_vpc") {
		t.Error("non-ref semantics accept nothing")
	}
	if !strings.Contains(s.String(), "aws_vpc") {
		t.Errorf("semantic string = %q", s.String())
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	Register(&Provider{Name: "aws"})
}

func TestPaperExampleRulesPresent(t *testing.T) {
	kb := DefaultKB()
	for _, id := range []string{
		"azure/vm-nic-same-region",
		"azure/vm-password-requires-enable",
		"azure/peered-vnets-no-cidr-overlap",
		"aws/subnet-cidr-within-vpc",
	} {
		found := false
		for _, r := range kb.All() {
			if r.ID == id {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("paper example rule %q missing from knowledge base", id)
		}
	}
}

func TestKnowledgeBaseVersioning(t *testing.T) {
	kb := NewKnowledgeBase()
	v0 := kb.Version()
	r := &Rule{ID: "x/rule", ResourceType: "aws_vpc", Kind: RuleSameRegion}
	if err := kb.Add(r); err != nil {
		t.Fatal(err)
	}
	if kb.Version() != v0+1 {
		t.Error("Add must bump version")
	}
	if got := kb.RulesFor("aws_vpc"); len(got) != 1 || got[0].ID != "x/rule" {
		t.Errorf("RulesFor = %v", got)
	}
	// Replacing a rule must not duplicate it.
	if err := kb.Add(&Rule{ID: "x/rule", ResourceType: "aws_vpc", Kind: RuleAttrRequiresValue}); err != nil {
		t.Fatal(err)
	}
	if got := kb.RulesFor("aws_vpc"); len(got) != 1 || got[0].Kind != RuleAttrRequiresValue {
		t.Errorf("replace failed: %v", got)
	}
	if !kb.Remove("x/rule") {
		t.Error("Remove returned false")
	}
	if kb.Remove("x/rule") {
		t.Error("double remove returned true")
	}
	if kb.Len() != 0 {
		t.Errorf("Len = %d", kb.Len())
	}
}

func TestKnowledgeBaseRejectsAnonymousRules(t *testing.T) {
	kb := NewKnowledgeBase()
	if err := kb.Add(&Rule{ResourceType: "aws_vpc"}); err == nil {
		t.Error("rule without ID must be rejected")
	}
	if err := kb.Add(&Rule{ID: "a"}); err == nil {
		t.Error("rule without resource type must be rejected")
	}
}

func TestRuleDescriptionsAndNames(t *testing.T) {
	for _, r := range DefaultKB().All() {
		if r.Description == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
		if _, ok := LookupResource(r.ResourceType); !ok {
			t.Errorf("rule %s anchored on unknown type %q", r.ID, r.ResourceType)
		}
	}
}

func TestDataSourcesMarked(t *testing.T) {
	for _, typ := range []string{"aws_region", "aws_availability_zones", "azure_location"} {
		rs, ok := LookupResource(typ)
		if !ok || !rs.DataSource {
			t.Errorf("%s should be a data source", typ)
		}
	}
}

func TestProviderForType(t *testing.T) {
	p, ok := ProviderForType("azure_subnet")
	if !ok || p.Name != "azure" {
		t.Errorf("ProviderForType = %v, %v", p, ok)
	}
}
