package guard

import (
	"context"
	"testing"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/graph"
	"cloudless/internal/plan"
	"cloudless/internal/state"
)

const webConfig = `
resource "aws_vpc" "main" {
  name       = "main"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "s" {
  count      = 2
  name       = "s-${count.index}"
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(aws_vpc.main.cidr_block, 8, count.index)
}

resource "aws_network_interface" "nic" {
  name      = "nic"
  subnet_id = aws_subnet.s[0].id
}

resource "aws_virtual_machine" "web" {
  name    = "web"
  nic_ids = [aws_network_interface.nic.id]
}
`

func newSim() *cloud.Sim {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	return cloud.NewSim(opts)
}

func planFor(t *testing.T, src string, prior *state.State) *plan.Plan {
	t.Helper()
	m, diags := config.Load(map[string]string{"main.ccl": src})
	if diags.HasErrors() {
		t.Fatalf("load: %s", diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatalf("expand: %s", diags.Error())
	}
	p, diags := plan.Compute(context.Background(), ex, prior, plan.Options{})
	if diags.HasErrors() {
		t.Fatalf("plan: %s", diags.Error())
	}
	return p
}

func TestRunHealthyCanaryReleasesRest(t *testing.T) {
	sim := newSim()
	p := planFor(t, webConfig, state.New())
	res := Run(context.Background(), sim, p, apply.Options{ContinueOnError: true},
		Options{Canary: 0.4})
	if err := res.Err(); err != nil {
		t.Fatalf("guarded canary apply failed: %s", err)
	}
	done, failed, skipped := res.Report.Counts()
	if done != 5 || failed != 0 || skipped != 0 {
		t.Fatalf("counts done/failed/skipped = %d/%d/%d, want 5/0/0", done, failed, skipped)
	}
	if res.Applied != 5 {
		t.Errorf("Applied = %d, want 5", res.Applied)
	}
	if sim.TotalResources() != 5 {
		t.Errorf("cloud holds %d resources, want 5", sim.TotalResources())
	}
	if res.Reverted || len(res.RolledBack) != 0 {
		t.Errorf("healthy run reverted: %v", res.RolledBack)
	}
}

func TestRunCanaryFailureHoldsRestAndReverts(t *testing.T) {
	sim := newSim()
	// The canary slice (ceil(0.4*5)=2: vpc + subnet s[0]) is poisoned at its
	// root; the main wave must never be admitted, and the blast radius — only
	// what was actually built — is reverted.
	sim.InjectUnhealthy(cloud.UnhealthySpec{Type: "aws_vpc"})
	p := planFor(t, webConfig, state.New())
	res := Run(context.Background(), sim, p, apply.Options{ContinueOnError: true},
		Options{Canary: 0.4})

	if res.Err() == nil {
		t.Fatal("poisoned canary reported success")
	}
	if res.GateFailures != 1 {
		t.Errorf("GateFailures = %d, want 1", res.GateFailures)
	}
	// Everything outside the failed canary root is skipped, not failed.
	for _, addr := range []string{"aws_subnet.s[0]", "aws_subnet.s[1]",
		"aws_network_interface.nic", "aws_virtual_machine.web"} {
		if got := res.Report.Status[addr]; got != graph.StatusSkipped {
			t.Errorf("%s = %s, want skipped", addr, got)
		}
	}
	if !res.Reverted {
		t.Fatal("auto-rollback did not complete")
	}
	if len(res.RolledBack) != 1 || res.RolledBack[0] != "aws_vpc.main" {
		t.Errorf("RolledBack = %v, want [aws_vpc.main]", res.RolledBack)
	}
	if n := sim.TotalResources(); n != 0 {
		t.Errorf("cloud holds %d resources after revert, want 0", n)
	}
	if res.State.Get("aws_vpc.main") != nil {
		t.Error("reverted resource still in state")
	}
}

func TestRunAutoRollbackRevertsWholeConnectedSlice(t *testing.T) {
	sim := newSim()
	// The nic never turns ready: by then the vpc and both subnets exist and
	// are healthy — but they are the same connected slice of this run's work,
	// so "fully reverted" means they go too.
	sim.InjectUnhealthy(cloud.UnhealthySpec{Type: "aws_network_interface"})
	p := planFor(t, webConfig, state.New())
	res := Run(context.Background(), sim, p, apply.Options{ContinueOnError: true}, Options{})

	if res.GateFailures != 1 {
		t.Fatalf("GateFailures = %d, want 1", res.GateFailures)
	}
	if !res.Reverted {
		t.Fatal("auto-rollback did not complete")
	}
	want := []string{"aws_network_interface.nic", "aws_subnet.s[0]", "aws_subnet.s[1]", "aws_vpc.main"}
	if len(res.RolledBack) != len(want) {
		t.Fatalf("RolledBack = %v, want %v", res.RolledBack, want)
	}
	for i, a := range want {
		if res.RolledBack[i] != a {
			t.Fatalf("RolledBack = %v, want %v", res.RolledBack, want)
		}
	}
	if n := sim.TotalResources(); n != 0 {
		t.Errorf("cloud holds %d resources after revert, want 0 (broken or half-applied left behind)", n)
	}
}

func TestRunIndependentSubgraphSurvivesRevert(t *testing.T) {
	const src = `
resource "aws_vpc" "a" {
  name       = "a"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "a0" {
  name       = "a0"
  vpc_id     = aws_vpc.a.id
  cidr_block = "10.0.1.0/24"
}

resource "aws_vpc" "b" {
  name       = "b"
  cidr_block = "10.1.0.0/16"
}
`
	sim := newSim()
	sim.InjectUnhealthy(cloud.UnhealthySpec{Type: "aws_vpc", Name: "b"})
	p := planFor(t, src, state.New())
	res := Run(context.Background(), sim, p, apply.Options{ContinueOnError: true}, Options{})

	if !res.Reverted {
		t.Fatal("auto-rollback did not complete")
	}
	if len(res.RolledBack) != 1 || res.RolledBack[0] != "aws_vpc.b" {
		t.Fatalf("RolledBack = %v, want only the disconnected failure", res.RolledBack)
	}
	// The healthy component survives intact in cloud and state.
	for _, addr := range []string{"aws_vpc.a", "aws_subnet.a0"} {
		rs := res.State.Get(addr)
		if rs == nil {
			t.Fatalf("%s swept away by an unrelated failure", addr)
		}
		if _, err := sim.Get(context.Background(), rs.Type, rs.ID); err != nil {
			t.Errorf("%s missing from cloud: %s", addr, err)
		}
	}
	if res.State.Get("aws_vpc.b") != nil {
		t.Error("reverted resource still in state")
	}
	if n := sim.TotalResources(); n != 2 {
		t.Errorf("cloud holds %d resources, want 2", n)
	}
}

func TestRunDisableRollbackLeavesEvidence(t *testing.T) {
	sim := newSim()
	sim.InjectUnhealthy(cloud.UnhealthySpec{Type: "aws_vpc"})
	p := planFor(t, webConfig, state.New())
	res := Run(context.Background(), sim, p, apply.Options{ContinueOnError: true},
		Options{DisableRollback: true})

	if res.Reverted || len(res.RolledBack) != 0 {
		t.Fatalf("rollback ran despite DisableRollback: %v", res.RolledBack)
	}
	if res.State.Get("aws_vpc.main") == nil {
		t.Error("never-ready resource dropped from state; operators can't inspect it")
	}
	if sim.TotalResources() == 0 {
		t.Error("never-ready resource deleted from cloud despite DisableRollback")
	}
}
