// Package guard orchestrates health-gated progressive applies (DESIGN.md
// S24): it composes the primitives in internal/health — readiness probes,
// the per-domain failure fuse, canary wave selection — with the journal-backed
// rollback planner into a single "converge or revert" operation.
//
// guard.Run is what the facade's GuardApplies option and cloudlessctl's
// -guard flag invoke. It lives outside internal/apply because the
// orchestration needs internal/rollback, which itself builds on apply — the
// layering is cloud → apply → rollback → guard.
package guard

import (
	"context"
	"sort"
	"time"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/events"
	"cloudless/internal/graph"
	"cloudless/internal/health"
	"cloudless/internal/plan"
	"cloudless/internal/rollback"
	"cloudless/internal/state"
	"cloudless/internal/telemetry"
)

// Options configure a guarded apply.
type Options struct {
	// Canary in (0, 1) applies a dependency-closed fraction of the changeset
	// first and releases the rest only if every canary op converged healthy.
	// Outside that range the whole changeset runs as one guarded wave.
	Canary float64
	// Probe bounds the per-resource readiness wait.
	Probe health.ProbeOptions
	// MaxFailures / MaxFailureFraction are the fuse trip thresholds, applied
	// per failure domain (run + each region); zero means the health package
	// defaults.
	MaxFailures        int
	MaxFailureFraction float64
	// DisableRollback leaves failed and never-ready resources in place for
	// inspection instead of auto-reverting the blast radius.
	DisableRollback bool
}

// Run executes the plan under the health guard: every create/update must turn
// ready before its dependents unblock, a shared failure fuse spans all waves,
// and when resources fail their gate (or a fuse trips) the touched blast
// radius is reverted with the journal-backed rollback planner. The returned
// result is the merged view across waves; Reverted reports that the
// auto-rollback completed cleanly.
func Run(ctx context.Context, cl cloud.Interface, p *plan.Plan, applyOpts apply.Options, opts Options) *apply.Result {
	start := time.Now()
	reg := telemetry.FromContext(ctx).Metrics()
	bus := events.FromContext(ctx)

	// One fuse across all waves, seeded with the FULL plan's per-domain op
	// counts: a canary failure and a main-wave failure in the same region
	// accumulate toward the same trip threshold.
	fuse := health.NewFuse(health.FuseOptions{
		MaxFailures:        opts.MaxFailures,
		MaxFailureFraction: opts.MaxFailureFraction,
		OnTrip: func(domain string) {
			reg.Counter("apply.fuse_trips", "domain", domain).Inc()
			bus.Publish(events.Event{Kind: "apply.fuse_trip", Domain: domain})
		},
	})
	apply.SeedFuse(fuse, p)
	applyOpts.Guard = &apply.GuardConfig{Probe: opts.Probe, Fuse: fuse}

	pending := nonNoopAddrs(p)
	wave, rest := health.CanaryWave(p.Graph, pending, opts.Canary)

	var res *apply.Result
	if wave == nil {
		res = apply.Apply(ctx, cl, p, applyOpts)
	} else {
		// Wave 1: the canary slice. Changes and the value store are shared
		// with the full plan, so attribute references resolved during the
		// canary carry into the main wave.
		canaryOpts := applyOpts
		canaryOpts.Wave = "canary"
		canaryRes := apply.Apply(ctx, cl, subPlan(p, wave, p.PriorState), canaryOpts)
		res = canaryRes
		if len(canaryRes.Errors) == 0 && ctx.Err() == nil {
			// Canary converged healthy: release the rest, starting from the
			// state the canary produced.
			mainOpts := applyOpts
			mainOpts.Wave = "main"
			mainRes := apply.Apply(ctx, cl, subPlan(p, rest, canaryRes.State), mainOpts)
			res = mergeResults(canaryRes, mainRes)
		} else {
			// Canary failed: the rest is never admitted.
			res = holdResult(canaryRes, rest)
		}
	}
	res.FuseTripped = fuse.Tripped()

	// Auto-rollback: triggered by never-ready resources or a tripped fuse —
	// evidence something real was built broken. Definitive API rejections
	// alone (nothing created) don't revert healthy siblings.
	if !opts.DisableRollback && (res.GateFailures > 0 || len(res.FuseTripped) > 0) {
		autoRollback(ctx, cl, p, applyOpts, res)
	}
	res.Elapsed = time.Since(start)
	return res
}

// nonNoopAddrs lists the plan's actionable addresses, sorted.
func nonNoopAddrs(p *plan.Plan) []string {
	var out []string
	for addr, ch := range p.Changes {
		if ch.Action != plan.ActionNoop {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// subPlan carves a wave out of the full plan: the subgraph induced by the
// wave's addresses, sharing the parent's change set and value store so
// cross-wave references resolve, with the wave's own prior state.
func subPlan(p *plan.Plan, addrs []string, prior *state.State) *plan.Plan {
	keep := make(map[string]struct{}, len(addrs))
	for _, a := range addrs {
		keep[a] = struct{}{}
	}
	sp := &plan.Plan{
		Changes:    map[string]*plan.Change{},
		Graph:      p.Graph.Subgraph(keep),
		Values:     p.Values,
		PriorState: prior,
		BaseSerial: p.BaseSerial,
	}
	for _, a := range addrs {
		ch := p.Changes[a]
		if ch == nil {
			continue
		}
		sp.Changes[a] = ch
		switch ch.Action {
		case plan.ActionCreate:
			sp.Creates++
		case plan.ActionUpdate:
			sp.Updates++
		case plan.ActionReplace:
			sp.Replaces++
		case plan.ActionDelete:
			sp.Deletes++
		}
	}
	return sp
}

// mergeResults folds the canary and main-wave results into one. The main
// wave applied on top of the canary's state, so its state and outputs are
// cumulative already.
func mergeResults(canary, main *apply.Result) *apply.Result {
	out := &apply.Result{
		State:        main.State,
		Applied:      canary.Applied + main.Applied,
		Retries:      canary.Retries + main.Retries,
		Outputs:      main.Outputs,
		Errors:       map[string]error{},
		HealthWait:   canary.HealthWait + main.HealthWait,
		GateFailures: canary.GateFailures + main.GateFailures,
	}
	rep := &graph.WalkReport{Status: map[string]graph.NodeStatus{}, Errors: map[string]error{}}
	for _, r := range []*apply.Result{canary, main} {
		for a, err := range r.Errors {
			out.Errors[a] = err
		}
		if r.Report != nil {
			for a, s := range r.Report.Status {
				rep.Status[a] = s
			}
			for a, err := range r.Report.Errors {
				rep.Errors[a] = err
			}
		}
	}
	out.Report = rep
	return out
}

// holdResult extends a failed canary's result with the unreleased rest of
// the changeset, marked skipped: those ops were never admitted.
func holdResult(canary *apply.Result, rest []string) *apply.Result {
	if canary.Report == nil {
		canary.Report = &graph.WalkReport{Status: map[string]graph.NodeStatus{}, Errors: map[string]error{}}
	}
	for _, a := range rest {
		if _, seen := canary.Report.Status[a]; !seen {
			canary.Report.Status[a] = graph.StatusSkipped
		}
	}
	return canary
}

// autoRollback reverts the blast radius of a failed guarded apply: the
// connected slice of this run's executed ops reachable from the failures,
// over both dependency directions — a never-ready vm takes its fresh subnet
// and vpc down with it, while a disconnected healthy subgraph (a sibling
// region, an unrelated stack) is left exactly as applied. The rollback runs
// under the same journal as the apply, so a crash mid-revert is recovered by
// the ordinary journal machinery.
func autoRollback(ctx context.Context, cl cloud.Interface, p *plan.Plan,
	applyOpts apply.Options, res *apply.Result) {

	scope := blastRadius(p, res)
	if len(scope) == 0 {
		return
	}
	telemetry.FromContext(ctx).Metrics().Counter("apply.auto_rollbacks").Inc()
	bus := events.FromContext(ctx)
	rbStart := time.Now()
	bus.Publish(events.Event{Kind: "apply.rollback_start", N: int64(len(scope))})

	// Scoped views: what the run left behind vs what was there before, for
	// the blast radius only. Compute reverts updates in place and deletes
	// fresh creates; everything outside the scope is invisible to it.
	cur, tgt := state.New(), state.New()
	var rolled []string
	for a := range scope {
		if rs := res.State.Get(a); rs != nil {
			cur.Set(rs)
		}
		if rs := p.PriorState.Get(a); rs != nil {
			tgt.Set(rs)
		}
		rolled = append(rolled, a)
	}
	sort.Strings(rolled)

	rbPlan := rollback.Compute(cur, tgt)
	after, err := rollback.ExecuteJournaled(ctx, cl, cur, tgt, rbPlan, rollback.ExecOptions{
		Principal: applyOpts.Principal,
		Journal:   applyOpts.Journal,
	})
	// Merge the (possibly partial) reverted slice back into the run's state.
	// An address the rollback could not restore keeps its prior record when
	// one existed: the resource was managed before this run, and forgetting
	// it would silently shrink the estate — the record (even with a dead
	// cloud ID) keeps the loss visible as deleted-drift for the next
	// converge. Only fresh creates, with no prior record, are removed.
	for a := range scope {
		if rs := after.Get(a); rs != nil {
			res.State.Set(rs)
		} else if prior := p.PriorState.Get(a); prior != nil {
			res.State.Set(prior)
		} else {
			res.State.Remove(a)
		}
	}
	res.RolledBack = rolled
	res.Reverted = err == nil
	fin := events.Event{Kind: "apply.rollback_finish", N: int64(len(rolled)),
		Ms: float64(time.Since(rbStart)) / float64(time.Millisecond)}
	if err != nil {
		res.Errors["<rollback>"] = err
		fin.Err = err.Error()
	}
	bus.Publish(fin)
}

// blastRadius computes the addresses the auto-rollback must revert: the
// fixpoint closure of the failed addresses over transitive dependents AND
// dependencies, intersected with the ops this run actually executed. The
// two-directional closure walks the failure's whole connected component of
// touched work; the intersection keeps pre-existing (noop) resources and
// never-started siblings out of the revert.
func blastRadius(p *plan.Plan, res *apply.Result) map[string]struct{} {
	touched := map[string]struct{}{}
	if res.Report != nil {
		for a, s := range res.Report.Status {
			if s == graph.StatusDone || s == graph.StatusFailed {
				if ch := p.Changes[a]; ch != nil && ch.Action != plan.ActionNoop {
					touched[a] = struct{}{}
				}
			}
		}
	}
	scope := map[string]struct{}{}
	var frontier []string
	for a := range res.Errors {
		if _, ok := touched[a]; ok {
			scope[a] = struct{}{}
			frontier = append(frontier, a)
		}
	}
	for len(frontier) > 0 {
		var next []string
		reach := p.Graph.TransitiveDependents(frontier...)
		for d := range p.Graph.TransitiveDependencies(frontier...) {
			reach[d] = struct{}{}
		}
		for a := range reach {
			if _, executed := touched[a]; !executed {
				continue
			}
			if _, seen := scope[a]; seen {
				continue
			}
			scope[a] = struct{}{}
			next = append(next, a)
		}
		frontier = next
	}
	return scope
}
